(** Grid-level kernel execution on the simulator.

    [Full] interprets every thread block (correctness runs; also forced
    for kernels with [__global_sync], whose phases execute grid-wide in
    order with per-block thread state kept alive). [Sampled n] interprets
    representative blocks only and scales their statistics: [n] blocks
    spread over the grid for per-block averages, plus blocks spread over
    one resident wave whose aligned transaction streams estimate the
    partition efficiency. *)

type mode =
  | Full
  | Sampled of int

type result = {
  per_block : Stats.t;  (** average statistics of one thread block *)
  total : Stats.t;  (** scaled to the whole grid *)
  timing : Timing.result;
  sampled_blocks : int;  (** blocks whose statistics were averaged *)
  partition_eff : float;  (** 1.0 = traffic spread over all partitions *)
}

(** Split a kernel body at top-level [__global_sync] barriers. *)
val phases_of_body : Gpcc_ast.Ast.block -> Gpcc_ast.Ast.block list

(** Simulator backend: the warp-vectorized backend ({!Vector}) is the
    default; it and the closure-compiled backend ({!Compile}) are
    bit-identical to the tree-walking reference interpreter. Kernels a
    backend cannot compile fall back per run (vector -> compiled ->
    reference). *)
type backend =
  | Reference
  | Compiled
  | Vector

val backend_name : backend -> string

(** Backend selected by [GPCC_BACKEND] ([vector]/[vec], [compiled], or
    [ref]/[reference]); the older [GPCC_INTERP=ref] spelling still
    forces the reference backend. Default is [Vector]. *)
val backend_of_env : unit -> backend

(** Cumulative wall-clock seconds spent inside {!run} since program
    start (the [sim_wall_clock_s] bench field). *)
val sim_seconds : unit -> float

(** Cumulative accounting-cache counters across every backend run and
    worker domain since program start: the half-warp request memo, the
    plane-digest memo (both in {!Coalescer}), and the vector backend's
    closed-form uniform-loop replays. Read before/after a run to
    attribute deltas (bench JSON, perf tooling, tests). *)
type perf_counters = {
  pc_memo_hits : int;
  pc_memo_misses : int;
  pc_plane_hits : int;
  pc_plane_misses : int;
  pc_closed_form : int;
}

val perf_counters : unit -> perf_counters

(** Static memory-level-parallelism estimate (independent loads one warp
    keeps in flight), used by the timing model's latency term. *)
val mlp_estimate : Gpcc_ast.Ast.kernel -> float

(** Partition efficiency of a set of aligned per-block transaction
    streams: mean over time of (distinct partitions hit) / (ideal). *)
val partition_efficiency : Config.t -> int array list -> float

(** Run a kernel. Every [int] parameter must be bound via [k_sizes] and
    every global array allocated in the memory. [streams] bounds how many
    resident-wave blocks feed the partition estimate. [backend] defaults
    to {!backend_of_env}. [jobs] bounds the worker domains used to
    execute independent blocks of each phase in parallel ([1] forces
    serial; default [GPCC_JOBS] or the domain count). [GPCC_CHECK=1]
    forces the serial reference backend.

    [block_budget] enables partial simulation with early abort:
    [Full] interprets the prefix of that many linear block ids plus
    every partition-stream block beyond it, still phase-synchronised
    at grid barriers; [Sampled] caps only the representative
    statistics sample. In both modes the partition-estimate streams
    are never thinned — a budget-dependent subset would bias the
    camping estimate. Statistics stay per-block averages over the
    budgeted blocks and [total]/[timing] are still whole-grid
    estimates, but device memory holds a partial execution — never
    check it against a reference. *)
val run :
  ?mode:mode ->
  ?streams:int ->
  ?backend:backend ->
  ?jobs:int ->
  ?block_budget:int ->
  Config.t ->
  Gpcc_ast.Ast.kernel ->
  Gpcc_ast.Ast.launch ->
  Devmem.t ->
  result

(** One representative block (linear id 0), serially, through every
    phase: the cheapest whole-grid performance estimate the simulator
    can produce, used by the exploration funnel's analytic pre-ranking
    stage. Equivalent to
    [run ~mode:Full ~streams:1 ~block_budget:1 ~jobs:1]; [streams:1]
    requests a single transaction stream, so [partition_eff] is always
    1.0 (see {!Gpcc_analysis.Cost_model.memory_optimism}). *)
val run_block :
  ?backend:backend ->
  Config.t ->
  Gpcc_ast.Ast.kernel ->
  Gpcc_ast.Ast.launch ->
  Devmem.t ->
  result

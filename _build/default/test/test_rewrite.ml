(** Property tests for the AST rewriting utilities and the pass-level
    simplifier: substitution and simplification must preserve evaluation,
    renaming must be capture-free, fresh names must be fresh. *)

open Gpcc_ast
open Util

(* a tiny integer-expression evaluator over a fixed environment *)
let rec eval_int env (e : Ast.expr) : int =
  match e with
  | Int_lit n -> n
  | Var v -> ( match List.assoc_opt v env with Some x -> x | None -> 7)
  | Builtin b -> (
      match b with
      | Ast.Idx -> 21
      | Idy -> 9
      | Tidx -> 5
      | Tidy -> 1
      | Bidx -> 2
      | Bidy -> 3
      | Bdimx -> 16
      | Bdimy -> 1
      | Gdimx -> 8
      | Gdimy -> 8)
  | Unop (Neg, a) -> -eval_int env a
  | Binop (Add, a, b) -> eval_int env a + eval_int env b
  | Binop (Sub, a, b) -> eval_int env a - eval_int env b
  | Binop (Mul, a, b) -> eval_int env a * eval_int env b
  | _ -> QCheck.assume_fail ()

let gen_int_expr : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun n -> Ast.Int_lit n) (int_range (-20) 20);
        map (fun v -> Ast.Var v) (oneofl [ "u"; "v" ]);
        oneofl [ Ast.Builtin Ast.Idx; Builtin Tidx; Builtin Bidy ];
      ]
  in
  fix
    (fun self d ->
      if d = 0 then leaf
      else
        frequency
          [
            (2, leaf);
            ( 3,
              map3
                (fun o a b -> Ast.Binop (o, a, b))
                (oneofl [ Ast.Add; Sub; Mul ])
                (self (d - 1)) (self (d - 1)) );
            (1, map (fun a -> Ast.Unop (Neg, a)) (self (d - 1)));
          ])
    5

let arb_int_expr = QCheck.make gen_int_expr ~print:Pp.expr_to_string

let env = [ ("u", 4); ("v", -3) ]

let law_simplify_sound =
  QCheck.Test.make ~count:800 ~name:"simplify_expr preserves evaluation"
    arb_int_expr (fun e ->
      eval_int env (Gpcc_passes.Pass_util.simplify_expr e) = eval_int env e)

let law_simplify_idempotent =
  QCheck.Test.make ~count:500 ~name:"simplify_expr is idempotent" arb_int_expr
    (fun e ->
      let s1 = Gpcc_passes.Pass_util.simplify_expr e in
      Ast.equal_expr s1 (Gpcc_passes.Pass_util.simplify_expr s1))

let law_subst_builtin =
  QCheck.Test.make ~count:500
    ~name:"subst_builtin_expr = evaluation with rebound builtin" arb_int_expr
    (fun e ->
      (* idx := 2*tidx + 1, then evaluate *)
      let replaced =
        Rewrite.subst_builtin_expr Ast.Idx
          (Binop (Add, Binop (Mul, Int_lit 2, Builtin Ast.Tidx), Int_lit 1))
          e
      in
      let rec eval_with_idx env' idx_val (e : Ast.expr) =
        match e with
        | Builtin Ast.Idx -> idx_val
        | Int_lit n -> n
        | Var v -> ( match List.assoc_opt v env' with Some x -> x | None -> 7)
        | Builtin _ -> eval_int env' e
        | Unop (Neg, a) -> -eval_with_idx env' idx_val a
        | Binop (Add, a, b) ->
            eval_with_idx env' idx_val a + eval_with_idx env' idx_val b
        | Binop (Sub, a, b) ->
            eval_with_idx env' idx_val a - eval_with_idx env' idx_val b
        | Binop (Mul, a, b) ->
            eval_with_idx env' idx_val a * eval_with_idx env' idx_val b
        | _ -> QCheck.assume_fail ()
      in
      eval_int env replaced = eval_with_idx env ((2 * 5) + 1) e)

let test_subst_var_shadowing () =
  (* substitution stops at a shadowing declaration *)
  let b =
    [
      Ast.Assign (Lvar "out", Var "x");
      Ast.Decl { d_name = "x"; d_ty = Scalar Int; d_init = Some (Int_lit 9) };
      Ast.Assign (Lvar "out2", Var "x");
    ]
  in
  match Rewrite.subst_var "x" (Ast.Int_lit 1) b with
  | [ Assign (_, Int_lit 1); Decl _; Assign (_, Var "x") ] -> ()
  | b' -> Alcotest.failf "bad substitution: %s" (Pp.block_to_string b')

let test_subst_var_loop_shadowing () =
  let b =
    [
      Ast.For
        {
          l_var = "x";
          l_init = Var "x";
          (* init is evaluated in the outer scope *)
          l_limit = Int_lit 10;
          l_step = Int_lit 1;
          l_body = [ Ast.Assign (Lvar "o", Var "x") ];
        };
    ]
  in
  match Rewrite.subst_var "x" (Ast.Int_lit 5) b with
  | [ For { l_init = Int_lit 5; l_body = [ Assign (_, Var "x") ]; _ } ] -> ()
  | b' -> Alcotest.failf "loop shadowing broken: %s" (Pp.block_to_string b')

let test_rename_var () =
  let b =
    [
      Ast.decl_f "s" ~init:(Ast.flt 0.0);
      Ast.accum (Lvar "s") (Var "x");
      Ast.Assign (Lindex ("o", [ Ast.idx ]), Var "s");
    ]
  in
  let b' = Rewrite.rename_var "s" "s_0" b in
  let txt = Pp.block_to_string b' in
  assert_contains "declaration renamed" txt "float s_0 = 0.0f";
  assert_contains "accumulation renamed" txt "s_0 += x";
  assert_contains "use renamed" txt "o[idx] = s_0";
  Alcotest.(check bool) "no stale name" false (contains ~needle:"= s;" txt)

let test_fresh_name () =
  let used = [ "x"; "x_0"; "x_1" ] in
  Alcotest.(check string) "skips collisions" "x_2" (Rewrite.fresh_name used "x");
  Alcotest.(check string) "free name unchanged" "y" (Rewrite.fresh_name used "y")

let test_collect_accesses_order () =
  let k =
    parse_kernel
      {|#pragma gpcc output o
__kernel void f(float a[16], float b[16], float o[16]) {
  float x = a[idx];
  o[idx] = x + b[idx];
}|}
  in
  let acc = Rewrite.collect_accesses k.k_body in
  Alcotest.(check (list (pair string bool)))
    "order and store flags"
    [ ("a", false); ("o", true); ("b", false) ]
    (List.map (fun (a, _, st) -> (a, st)) acc)

let test_declared_vars () =
  let k =
    parse_kernel
      {|__kernel void f(float o[16]) {
  float s = 0;
  for (int i = 0; i < 4; i++) {
    __shared__ float sh[16];
    sh[tidx] = s;
    __syncthreads();
    s = sh[tidx];
  }
  o[idx] = s;
}|}
  in
  Alcotest.(check (list string))
    "all declarations found" [ "s"; "i"; "sh" ]
    (List.map fst (Rewrite.declared_vars k.k_body))

let law_map_stmts_id =
  QCheck.Test.make ~count:200 ~name:"map_stmts identity" arb_int_expr (fun e ->
      let b =
        [
          Ast.If
            ( Binop (Lt, e, Int_lit 3),
              [ Ast.Assign (Lvar "a", e) ],
              [ Ast.For
                  {
                    l_var = "q";
                    l_init = Int_lit 0;
                    l_limit = Int_lit 4;
                    l_step = Int_lit 1;
                    l_body = [ Ast.Assign (Lvar "b", e) ];
                  } ] );
        ]
      in
      Ast.equal_block b (Rewrite.map_stmts (fun s -> [ s ]) b))

let suite =
  let t n f = Alcotest.test_case n `Quick f in
  ( "rewrite",
    [
      QCheck_alcotest.to_alcotest law_simplify_sound;
      QCheck_alcotest.to_alcotest law_simplify_idempotent;
      QCheck_alcotest.to_alcotest law_subst_builtin;
      t "subst stops at shadowing decl" test_subst_var_shadowing;
      t "subst respects loop scoping" test_subst_var_loop_shadowing;
      t "rename_var is complete" test_rename_var;
      t "fresh_name" test_fresh_name;
      t "collect_accesses order" test_collect_accesses_order;
      t "declared_vars" test_declared_vars;
      QCheck_alcotest.to_alcotest law_map_stmts_id;
    ] )

(** Pretty-printer: emits kernels as CUDA-style C source.

    Understandability of the optimized code is one of the paper's selling
    points, so the printer works hard to produce idiomatic CUDA: [+=] for
    accumulations, minimal parentheses driven by C precedence, CUDA spellings
    for builtins ([blockIdx.x * blockDim.x + threadIdx.x] for [idx] is kept
    as the short alias [idx], declared in a preamble), [__shared__]
    qualifiers, and [#pragma] lines for the size bindings. *)

open Ast

let scalar_to_string = function
  | Int -> "int"
  | Float -> "float"
  | Float2 -> "float2"
  | Float4 -> "float4"
  | Bool -> "bool"

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | And -> "&&"
  | Or -> "||"

(* C operator precedence, higher binds tighter. *)
let prec_of = function
  | Mul | Div | Mod -> 10
  | Add | Sub -> 9
  | Lt | Le | Gt | Ge -> 8
  | Eq | Ne -> 7
  | And -> 5
  | Or -> 4

let float_lit f =
  if Float.is_integer f && Float.abs f < 1e16 then
    Printf.sprintf "%.1ff" f
  else Printf.sprintf "%gf" f

let rec expr_prec buf prec e =
  let paren p body =
    if p < prec then (
      Buffer.add_char buf '(';
      body ();
      Buffer.add_char buf ')')
    else body ()
  in
  match e with
  | Int_lit n ->
      if n < 0 then paren 11 (fun () -> Buffer.add_string buf (string_of_int n))
      else Buffer.add_string buf (string_of_int n)
  | Float_lit f -> Buffer.add_string buf (float_lit f)
  | Var v -> Buffer.add_string buf v
  | Builtin b -> Buffer.add_string buf (builtin_name b)
  | Unop (Neg, e) ->
      paren 11 (fun () ->
          Buffer.add_char buf '-';
          expr_prec buf 12 e)
  | Unop (Not, e) ->
      paren 11 (fun () ->
          Buffer.add_char buf '!';
          expr_prec buf 12 e)
  | Binop (op, a, b) ->
      let p = prec_of op in
      paren p (fun () ->
          expr_prec buf p a;
          Buffer.add_char buf ' ';
          Buffer.add_string buf (binop_to_string op);
          Buffer.add_char buf ' ';
          (* left-assoc: right operand needs one more level *)
          expr_prec buf (p + 1) b)
  | Index (a, es) ->
      Buffer.add_string buf a;
      List.iter
        (fun e ->
          Buffer.add_char buf '[';
          expr_prec buf 0 e;
          Buffer.add_char buf ']')
        es
  | Vload { v_arr; v_width; v_index } ->
      Buffer.add_string buf
        (Printf.sprintf "((float%d*)%s)[" v_width v_arr);
      expr_prec buf 0 v_index;
      Buffer.add_char buf ']'
  | Field (e, f) ->
      expr_prec buf 12 e;
      Buffer.add_char buf '.';
      Buffer.add_string buf (field_name f)
  | Call (f, args) ->
      Buffer.add_string buf f;
      Buffer.add_char buf '(';
      List.iteri
        (fun i a ->
          if i > 0 then Buffer.add_string buf ", ";
          expr_prec buf 0 a)
        args;
      Buffer.add_char buf ')'
  | Select (c, a, b) ->
      paren 3 (fun () ->
          expr_prec buf 4 c;
          Buffer.add_string buf " ? ";
          expr_prec buf 4 a;
          Buffer.add_string buf " : ";
          expr_prec buf 4 b)

let expr_to_string e =
  let buf = Buffer.create 64 in
  expr_prec buf 0 e;
  Buffer.contents buf

let lvalue_to_string lv =
  let rec go = function
    | Lvar v -> v
    | Lindex (a, es) ->
        a ^ String.concat "" (List.map (fun e -> "[" ^ expr_to_string e ^ "]") es)
    | Lfield (lv, f) -> go lv ^ "." ^ field_name f
    | Lvec { v_arr; v_width; v_index } ->
        Printf.sprintf "((float%d*)%s)[%s]" v_width v_arr
          (expr_to_string v_index)
  in
  go lv

let ty_prefix = function
  | Scalar s -> scalar_to_string s
  | Array { elt; space; _ } ->
      let q = match space with Shared -> "__shared__ " | Global | Register -> "" in
      q ^ scalar_to_string elt

let ty_suffix = function
  | Scalar _ -> ""
  | Array { dims; _ } ->
      String.concat "" (List.map (fun d -> Printf.sprintf "[%d]" d) dims)

(* Detect [lv = lv op e] so we can print the compound-assignment form. *)
let compound_form lv e =
  let lv_as_expr = function
    | Lvar v -> Some (Var v)
    | Lindex (v, es) -> Some (Index (v, es))
    | Lfield (Lvar v, f) -> Some (Field (Var v, f))
    | Lfield (Lindex (v, es), f) -> Some (Field (Index (v, es), f))
    | Lvec vl -> Some (Vload vl)
    | Lfield ((Lfield _ | Lvec _), _) -> None
  in
  match (lv_as_expr lv, e) with
  | Some le, Binop ((Add | Sub | Mul | Div) as op, a, b) when equal_expr le a ->
      Some (op, b)
  | _ -> None

let rec stmt buf indent s =
  let pad () = Buffer.add_string buf (String.make indent ' ') in
  match s with
  | Comment c ->
      pad ();
      Buffer.add_string buf ("/* " ^ c ^ " */\n")
  | Decl { d_name; d_ty; d_init } ->
      pad ();
      Buffer.add_string buf (ty_prefix d_ty);
      Buffer.add_char buf ' ';
      Buffer.add_string buf d_name;
      Buffer.add_string buf (ty_suffix d_ty);
      (match d_init with
      | None -> ()
      | Some e ->
          Buffer.add_string buf " = ";
          expr_prec buf 0 e);
      Buffer.add_string buf ";\n"
  | Assign (lv, e) -> (
      pad ();
      match compound_form lv e with
      | Some (op, rhs) ->
          Buffer.add_string buf (lvalue_to_string lv);
          Buffer.add_string buf (" " ^ binop_to_string op ^ "= ");
          expr_prec buf 0 rhs;
          Buffer.add_string buf ";\n"
      | None ->
          Buffer.add_string buf (lvalue_to_string lv);
          Buffer.add_string buf " = ";
          expr_prec buf 0 e;
          Buffer.add_string buf ";\n")
  | If (c, t, []) ->
      pad ();
      Buffer.add_string buf "if (";
      expr_prec buf 0 c;
      Buffer.add_string buf ") {\n";
      block buf (indent + 2) t;
      pad ();
      Buffer.add_string buf "}\n"
  | If (c, t, f) ->
      pad ();
      Buffer.add_string buf "if (";
      expr_prec buf 0 c;
      Buffer.add_string buf ") {\n";
      block buf (indent + 2) t;
      pad ();
      Buffer.add_string buf "} else {\n";
      block buf (indent + 2) f;
      pad ();
      Buffer.add_string buf "}\n"
  | For { l_var; l_init; l_limit; l_step; l_body } ->
      pad ();
      Buffer.add_string buf (Printf.sprintf "for (int %s = " l_var);
      expr_prec buf 0 l_init;
      Buffer.add_string buf (Printf.sprintf "; %s < " l_var);
      expr_prec buf 0 l_limit;
      (match l_step with
      | Int_lit 1 -> Buffer.add_string buf (Printf.sprintf "; %s++" l_var)
      | _ ->
          Buffer.add_string buf (Printf.sprintf "; %s += " l_var);
          expr_prec buf 0 l_step);
      Buffer.add_string buf ") {\n";
      block buf (indent + 2) l_body;
      pad ();
      Buffer.add_string buf "}\n"
  | Sync ->
      pad ();
      Buffer.add_string buf "__syncthreads();\n"
  | Global_sync ->
      pad ();
      Buffer.add_string buf "__global_sync();\n"

and block buf indent b = List.iter (stmt buf indent) b

let param_to_string p =
  match p.p_ty with
  | Scalar s -> scalar_to_string s ^ " " ^ p.p_name
  | Array { elt; dims; _ } ->
      scalar_to_string elt ^ " " ^ p.p_name
      ^ String.concat "" (List.map (fun d -> Printf.sprintf "[%d]" d) dims)

let kernel_to_string ?(launch : launch option) (k : kernel) =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (n, v) ->
      Buffer.add_string buf (Printf.sprintf "#pragma gpcc dim %s %d\n" n v))
    k.k_sizes;
  if k.k_output <> [] then
    Buffer.add_string buf
      ("#pragma gpcc output " ^ String.concat " " k.k_output ^ "\n");
  (match launch with
  | Some l ->
      Buffer.add_string buf
        (Printf.sprintf "/* launch: grid (%d, %d), block (%d, %d) */\n"
           l.grid_x l.grid_y l.block_x l.block_y)
  | None -> ());
  Buffer.add_string buf ("__kernel void " ^ k.k_name ^ "(");
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (param_to_string p))
    k.k_params;
  Buffer.add_string buf ") {\n";
  block buf 2 k.k_body;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let stmt_to_string s =
  let buf = Buffer.create 128 in
  stmt buf 0 s;
  Buffer.contents buf

let block_to_string b =
  let buf = Buffer.create 256 in
  block buf 0 b;
  Buffer.contents buf

(** Non-blank source lines, used to regenerate Table 1's LOC column. *)
let loc_count src =
  String.split_on_char '\n' src
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length

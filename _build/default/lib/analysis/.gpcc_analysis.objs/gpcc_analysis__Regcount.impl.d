lib/analysis/regcount.pp.ml: Ast Gpcc_ast List Rewrite

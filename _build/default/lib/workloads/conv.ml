(** 2-D convolution (paper Table 1: "conv", 12 LOC, 4kx4k image with a
    32x32 kernel). The input image carries a kernel-sized border so the
    naive kernel needs no boundary guards (standard padded-convolution
    layout); problem size [n] is the output image edge. *)

let ksize = 32

let source n =
  let padded = n + ksize in
  Printf.sprintf
    {|#pragma gpcc dim kw %d
#pragma gpcc output out
__kernel void conv(float img[%d][%d], float ker[%d][%d], float out[%d][%d], int kw) {
  float sum = 0;
  for (int j = 0; j < kw; j++) {
    for (int i = 0; i < kw; i++) {
      sum += img[idy + j][idx + i] * ker[j][i];
    }
  }
  out[idy][idx] = sum;
}
|}
    ksize padded padded ksize ksize n n

let inputs n =
  let padded = n + ksize in
  [
    ("img", Workload.gen ~seed:13 (padded * padded));
    ("ker", Workload.gen ~seed:14 (ksize * ksize));
  ]

let reference n input =
  let padded = n + ksize in
  let img = input "img" and ker = input "ker" in
  let out = Array.make (n * n) 0.0 in
  for y = 0 to n - 1 do
    for x = 0 to n - 1 do
      let s = ref 0.0 in
      for j = 0 to ksize - 1 do
        for i = 0 to ksize - 1 do
          s := !s +. (img.(((y + j) * padded) + x + i) *. ker.((j * ksize) + i))
        done
      done;
      out.((y * n) + x) <- !s
    done
  done;
  [ ("out", out) ]

let workload : Workload.t =
  {
    name = "conv";
    description = "2-D convolution (32x32 kernel)";
    source;
    inputs;
    reference;
    flops = (fun n -> 2.0 *. float_of_int (n * n * ksize * ksize));
    moved_bytes = (fun n -> 4.0 *. 2.0 *. float_of_int (n * n));
    sizes = [ 256; 512; 1024 ];
    test_size = 64;
    bench_size = 256;
    tolerance = 1e-3;
    in_cublas = false;
  }

examples/matmul_case_study.ml: Coalesce Gpcc_analysis Gpcc_ast Gpcc_core Gpcc_passes Gpcc_sim Gpcc_workloads List Merge Option Pass_util Printf

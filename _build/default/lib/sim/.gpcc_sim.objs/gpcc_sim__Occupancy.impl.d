lib/sim/occupancy.pp.ml: Config Ppx_deriving_runtime

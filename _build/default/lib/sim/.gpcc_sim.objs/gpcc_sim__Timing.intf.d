lib/sim/timing.pp.mli: Config Format Gpcc_ast Occupancy Stats

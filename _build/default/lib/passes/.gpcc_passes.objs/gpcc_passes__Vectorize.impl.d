lib/passes/vectorize.pp.ml: Affine Ast Gpcc_analysis Gpcc_ast List Pass_util Printf Rewrite String

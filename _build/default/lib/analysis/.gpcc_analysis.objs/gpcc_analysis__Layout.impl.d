lib/analysis/layout.pp.ml: Affine Ast Gpcc_ast List Printf Rewrite

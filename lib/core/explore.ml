(** Design-space exploration (paper Section 4).

    The number of threads per block (via thread-block merge) and the
    number of threads merged into one (via thread merge) interact
    non-linearly with occupancy and reuse, so — exactly like the paper —
    the compiler generates one kernel version per configuration and picks
    the best by empirically running each one (here: on the simulator; in
    the paper: on the GPU).

    Candidate configurations follow Section 4.1: 128, 256 or 512 threads
    per block, and thread-merge degrees 4, 8, 16 or 32.

    The sweep runs in two parallel phases on a {!Pool} of worker
    domains: first every configuration is compiled, then kernels that
    compiled identically (different knobs often coincide) are grouped by
    a digest of their printed text and each distinct version is measured
    once — consulting the optional {!Explore_cache} first — and the
    score is shared across the group. Per-candidate failures are
    isolated: a raising compile or measurement is recorded, never
    aborting the sweep. *)

open Gpcc_ast

type candidate = {
  target_block_threads : int;
  merge_degree : int;
  result : Pipeline.result;
  score : float;  (** measured GFLOPS (higher is better) *)
}

type failure = {
  failed_target : int;
  failed_degree : int;
  failed_stage : [ `Compile | `Verify | `Measure ];
  reason : string;
}

let default_block_targets = [ 16; 32; 64; 128; 256; 512 ]
let default_merge_degrees = [ 1; 4; 8; 16; 32 ]

(* phase-1 outcome for one (target, degree) configuration *)
type compiled = {
  c_target : int;
  c_degree : int;
  c_result : Pipeline.result;
  c_digest : string;  (** of the printed kernel + launch *)
}

let search_with_failures ?(cfg = Gpcc_sim.Config.gtx280)
    ?(block_targets = default_block_targets)
    ?(merge_degrees = default_merge_degrees) ?jobs ?cache
    ?(cache_prefix = "") (naive : Ast.kernel)
    ~(measure : Ast.kernel -> Ast.launch -> float) :
    candidate list * failure list =
  let configs =
    List.concat_map
      (fun target -> List.map (fun degree -> (target, degree)) merge_degrees)
      block_targets
  in
  Pool.with_pool ?jobs (fun pool ->
      (* phase 1: compile every configuration *)
      let compile (target, degree) =
        let pipeline =
          Pipeline.default ~cfg ~target_block_threads:target
            ~merge_degree:degree ()
        in
        let result = Pipeline.run ~pipeline naive in
        {
          c_target = target;
          c_degree = degree;
          c_result = result;
          c_digest =
            Digest.to_hex
              (Digest.string
                 (Pp.kernel_to_string ~launch:result.launch result.kernel));
        }
      in
      let compile_outcomes =
        List.combine configs (Pool.map_result pool compile configs)
      in
      let compiled, compile_failures =
        List.fold_left
          (fun (cs, fs) ((target, degree), outcome) ->
            match outcome with
            | Ok c -> (c :: cs, fs)
            | Error e ->
                ( cs,
                  {
                    failed_target = target;
                    failed_degree = degree;
                    failed_stage =
                      (if Pipeline.verifier_rejected e then `Verify
                       else `Compile);
                    reason = Printexc.to_string e;
                  }
                  :: fs ))
          ([], []) compile_outcomes
      in
      let compiled = List.rev compiled in
      let compile_failures = List.rev compile_failures in
      (* group identical kernel versions: measure each digest once *)
      let rep_tbl = Hashtbl.create 16 in
      let reps =
        List.filter
          (fun c ->
            if Hashtbl.mem rep_tbl c.c_digest then false
            else begin
              Hashtbl.add rep_tbl c.c_digest ();
              true
            end)
          compiled
      in
      (* phase 2: score each distinct version, cache first *)
      let score_rep (c : compiled) : float * [ `Cached | `Measured ] =
        let key = cache_prefix ^ "|" ^ c.c_digest in
        match Option.bind cache (fun cch -> Explore_cache.find cch key) with
        | Some s -> (s, `Cached)
        | None ->
            let s = measure c.c_result.kernel c.c_result.launch in
            Option.iter (fun cch -> Explore_cache.store cch key s) cache;
            (s, `Measured)
      in
      let scored = Pool.map_result pool score_rep reps in
      let score_tbl = Hashtbl.create 16 in
      let measure_failures =
        List.concat
          (List.map2
             (fun rep outcome ->
               match outcome with
               | Ok (s, _src) ->
                   Hashtbl.replace score_tbl rep.c_digest s;
                   []
               | Error e ->
                   Hashtbl.replace score_tbl rep.c_digest Float.neg_infinity;
                   [
                     {
                       failed_target = rep.c_target;
                       failed_degree = rep.c_degree;
                       failed_stage = `Measure;
                       reason = Printexc.to_string e;
                     };
                   ])
             reps scored)
      in
      let candidates =
        List.map
          (fun c ->
            {
              target_block_threads = c.c_target;
              merge_degree = c.c_degree;
              result = c.c_result;
              score = Hashtbl.find score_tbl c.c_digest;
            })
          compiled
      in
      (candidates, compile_failures @ measure_failures))

let search ?cfg ?block_targets ?merge_degrees ?jobs ?cache ?cache_prefix
    naive ~measure : candidate list =
  fst
    (search_with_failures ?cfg ?block_targets ?merge_degrees ?jobs ?cache
       ?cache_prefix naive ~measure)

(** Deduplicate candidates that compiled to the same kernel (different
    knobs can coincide), keeping the first. *)
let distinct (cands : candidate list) : candidate list =
  let seen = ref [] in
  List.filter
    (fun c ->
      let key = Pp.kernel_to_string ~launch:c.result.launch c.result.kernel in
      if List.mem key !seen then false
      else begin
        seen := key :: !seen;
        true
      end)
    cands

let best (cands : candidate list) : candidate option =
  List.fold_left
    (fun acc c ->
      match acc with
      | None -> Some c
      | Some b -> if c.score > b.score then Some c else acc)
    None cands

(** One-call empirical search, as the paper's compiler does before
    emitting the final version. *)
let pick ?cfg ?block_targets ?merge_degrees ?jobs ?cache ?cache_prefix naive
    ~measure : candidate option =
  best
    (search ?cfg ?block_targets ?merge_degrees ?jobs ?cache ?cache_prefix
       naive ~measure)

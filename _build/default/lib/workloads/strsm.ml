(** Matrix equation solver (paper Table 1: "strsm", 18 LOC, 1k-4k).

    Substitution note (recorded in DESIGN.md): a triangular solve is
    sequential across rows, so its GPU implementations are dominated by
    the triangular matrix-matrix update of the already-solved panel. The
    naive kernel here is that computational core — each fine-grain work
    item computes one element of [X = L * B] with [L] unit lower
    triangular (equivalently, the substitution update of strsm), guarded
    per iteration exactly as a naive data-parallel port would be. This
    preserves what the paper's evaluation exercises: an mm-like kernel
    with a thread-position-dependent guard. *)

let source n =
  Printf.sprintf
    {|#pragma gpcc dim w %d
#pragma gpcc output x
__kernel void strsm(float l[%d][%d], float b[%d][%d], float x[%d][%d], int w) {
  float sum = 0;
  for (int i = 0; i < w; i++) {
    if (i < idy) {
      sum += l[idy][i] * b[i][idx];
    }
  }
  x[idy][idx] = b[idy][idx] + sum;
}
|}
    n n n n n n n

let inputs n =
  [ ("l", Workload.gen ~seed:10 (n * n)); ("b", Workload.gen ~seed:11 (n * n)) ]

let reference n input =
  let l = input "l" and b = input "b" in
  let x = Array.make (n * n) 0.0 in
  for y = 0 to n - 1 do
    for c = 0 to n - 1 do
      let s = ref 0.0 in
      for i = 0 to y - 1 do
        s := !s +. (l.((y * n) + i) *. b.((i * n) + c))
      done;
      x.((y * n) + c) <- b.((y * n) + c) +. !s
    done
  done;
  [ ("x", x) ]

let workload : Workload.t =
  {
    name = "strsm";
    description = "matrix equation solver (triangular update)";
    source;
    inputs;
    reference;
    flops = (fun n -> float_of_int n ** 3.0);
    moved_bytes = (fun n -> 3.0 *. 4.0 *. float_of_int (n * n));
    sizes = [ 1024; 2048; 4096 ];
    test_size = 64;
    bench_size = 1024;
    tolerance = 1e-3;
    in_cublas = true;
  }

(** Persistent cache of design-space exploration scores.

    The Section-4 empirical search measures every candidate kernel on
    the simulator; the measurement is deterministic for a fixed
    (machine, workload, problem size, kernel), so repeated bench runs
    can skip already-measured points entirely. Each entry maps a key —
    by convention [gpu/workload/size/...] plus a digest of the compiled
    kernel text, see {!Explore.search} — to the measured score (GFLOPS).

    This is a thin typed view over {!Gpcc_util.Store} (the ["score"]
    kind): sharded layout, atomic writes, multi-process locking,
    corruption/collision recovery and eviction all live there. In front
    of the store each handle keeps an in-memory memo, so repeated
    lookups of a hot key never touch the disk. Entries are invalidated
    implicitly: keys embed the compiled kernel digest, so any compiler
    change that alters generated code changes the key; stale entries
    age out through the store GC (or {!clear}). *)

type t

val default_dir : unit -> string
(** {!Gpcc_util.Store.default_root}: [$GPCC_CACHE_DIR] if set, else
    [_gpcc_cache] under the nearest enclosing project root. *)

val open_dir : ?dir:string -> unit -> t
(** Open (creating if needed) the cache rooted at [dir] (default
    {!default_dir}). *)

val dir : t -> string

val find : t -> string -> float option
(** Look the key up, first in the in-memory memo, then in the store.
    Counts a hit or a miss (on this handle; store-tier lookups also
    count in the store's global counters). Corrupt entries are deleted
    and re-measured; digest collisions are kept and reported as a miss
    (both handled by the store). Thread-safe. *)

val store : t -> string -> float -> unit
(** Persist a score for a key (atomic write through the store; also
    memoized in memory). Thread-safe. *)

val hits : t -> int
(** Number of [find]s answered from memo or store since [open_dir]. *)

val misses : t -> int
(** Number of [find]s that found nothing since [open_dir]. *)

val entries : t -> int
(** Number of score entries currently on disk. *)

val gc : t -> Gpcc_util.Store.gc_stats
(** Run the store's garbage collector (budget from
    [$GPCC_CACHE_MAX_MB]). *)

val clear : t -> unit
(** Delete every score entry and reset the in-memory memo (counters
    are kept; other artifact kinds in the same store are untouched). *)

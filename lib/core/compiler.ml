(** Deprecated boolean-options facade over {!Pipeline}.

    The driver itself lives in {!Pipeline}: first-class pass records
    ({!Gpcc_passes.Pass}), a declarative pipeline value, per-pass remarks
    and timing, and a memoized analysis manager
    ({!Gpcc_analysis.Analysis_cache}). This module keeps the original
    [enable_*] options record compiling as a thin constructor over
    {!Pipeline.t} — new code should build a {!Pipeline.t} directly. *)

type options = {
  cfg : Gpcc_sim.Config.t;
  target_block_threads : int;  (** 128 / 256 / 512 (Section 4.1) *)
  merge_degree : int;  (** threads merged into one: 4 / 8 / 16 / 32 *)
  enable_vectorize : bool;
  enable_coalesce : bool;
  enable_merge : bool;
  enable_prefetch : bool;
  enable_partition : bool;
  verify : bool;  (** translation validation after every fired pass *)
}

let default_options ?(cfg = Gpcc_sim.Config.gtx280) () =
  {
    cfg;
    target_block_threads = 256;
    merge_degree = 16;
    enable_vectorize = true;
    enable_coalesce = true;
    enable_merge = true;
    enable_prefetch = true;
    enable_partition = true;
    verify = true;
  }

(** Translate the boolean options into the pass pipeline they denote.
    [enable_vectorize] covers both Section-3.1 passes; [enable_merge]
    covers the merge pass and the invariant hoisting that cleans up
    after it, matching the original driver's gating. *)
let pipeline_of_options (o : options) : Pipeline.t =
  let p =
    Pipeline.default ~cfg:o.cfg ~target_block_threads:o.target_block_threads
      ~merge_degree:o.merge_degree ~verify:o.verify ()
  in
  let off =
    List.concat
      [
        (if o.enable_vectorize then [] else [ "vectorize-wide"; "vectorize" ]);
        (if o.enable_coalesce then [] else [ "coalesce" ]);
        (if o.enable_merge then [] else [ "merge"; "licm" ]);
        (if o.enable_partition then [] else [ "partition-camping" ]);
        (if o.enable_prefetch then [] else [ "prefetch" ]);
      ]
  in
  Pipeline.disable off p

type step = Pipeline.step = {
  step_name : string;
  pass : string;
  fired : bool;
  remark : Remark.t;
  kernel_after : Gpcc_ast.Ast.kernel;
  launch_after : Gpcc_ast.Ast.launch;
  diagnostics : Gpcc_analysis.Verify.diagnostic list;
}

type result = Pipeline.result = {
  kernel : Gpcc_ast.Ast.kernel;
  launch : Gpcc_ast.Ast.launch;
  steps : step list;
}

exception Compile_error = Pipeline.Compile_error

let diagnostics = Pipeline.diagnostics
let verifier_rejected = Pipeline.verifier_rejected

let run ?opts (naive : Gpcc_ast.Ast.kernel) : result =
  let pipeline =
    match opts with
    | Some o -> pipeline_of_options o
    | None -> Pipeline.default ()
  in
  Pipeline.run ~pipeline naive

let staged = Pipeline.staged
let report = Pipeline.report

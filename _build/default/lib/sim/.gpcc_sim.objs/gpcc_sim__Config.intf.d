lib/sim/config.pp.mli:

#pragma gpcc dim w 1024
#pragma gpcc output c
__kernel void mv(float a[1024][1024], float b[1024], float c[1024], int w) {
  float sum = 0;
  for (int i = 0; i < w; i++) {
    sum += a[idx][i] * b[i];
  }
  c[idx] = sum;
}

(** Persistent on-disk cache of design-space exploration scores.

    The Section-4 empirical search measures every candidate kernel on
    the simulator; the measurement is deterministic for a fixed
    (machine, workload, problem size, kernel), so repeated bench runs
    can skip already-measured points entirely. Each entry maps a key —
    by convention [gpu/workload/size/...] plus a digest of the compiled
    kernel text, see {!Explore.search} — to the measured score (GFLOPS).

    Layout: one file per entry under the cache directory, named by the
    MD5 of the key; the file stores the full key (guarding against
    digest collisions) and the score. Writes go through a temp file and
    an atomic [rename], so concurrent writers (pool workers, or two
    bench processes) never expose a torn entry. Entries are invalidated
    implicitly: keys embed the compiled kernel digest, so any compiler
    change that alters generated code changes the key. Stale files are
    only reclaimed by {!clear} (or deleting the directory). *)

type t

val default_dir : unit -> string
(** [GPCC_CACHE_DIR] if set, else ["_gpcc_cache"] in the current
    working directory. *)

val open_dir : ?dir:string -> unit -> t
(** Open (creating if needed) the cache rooted at [dir] (default
    {!default_dir}). *)

val dir : t -> string

val find : t -> string -> float option
(** Look the key up, first in the in-memory memo, then on disk. Counts
    a hit or a miss. A corrupt entry file (torn or truncated by a killed
    writer or a full disk) is deleted and reported as a miss, so the
    score is simply re-measured; a file whose stored key differs (an MD5
    collision) is kept and reported as a miss. Thread-safe. *)

val store : t -> string -> float -> unit
(** Persist a score for a key (atomic write; also memoized in memory).
    Thread-safe. *)

val hits : t -> int
(** Number of [find]s answered from memo or disk since [open_dir]. *)

val misses : t -> int
(** Number of [find]s that found nothing since [open_dir]. *)

val entries : t -> int
(** Number of entry files currently on disk. *)

val clear : t -> unit
(** Delete every entry file and reset the in-memory memo (counters are
    kept). *)

(** Tests for the static kernel verifier (translation validation):
    negative kernels rejected with the right rule id, all registry
    workloads accepted before and after the pipeline, the compiler's
    verification gate, and agreement between the static verifier and the
    simulator's dynamic race detector ([GPCC_CHECK=1]). *)

open Gpcc_ast
open Util
module V = Gpcc_analysis.Verify

let check_src src =
  let k = parse_kernel src in
  let launch = Option.get (Gpcc_passes.Pass_util.naive_launch k) in
  (k, launch, V.check ~launch k)

let has_rule rule ds = List.exists (fun (d : V.diagnostic) -> d.rule = rule) ds

let assert_rejected name rule ds =
  if not (has_rule rule (V.errors ds)) then
    Alcotest.failf "%s: expected an %s error, got [%s]" name rule
      (String.concat "; " (List.map V.to_string ds))

(* --- negative kernels: each must be rejected with the right rule --- *)

let racy_src =
  {|#pragma gpcc dim n 64
#pragma gpcc output c
__kernel void racy(float a[64], float c[64], int n) {
  __shared__ float s[16];
  s[tidx] = a[idx];
  c[idx] = s[(tidx + 1) % 16];
}|}

let test_missing_sync () =
  let _, _, ds = check_src racy_src in
  assert_rejected "missing __syncthreads" V.rule_race_shared ds

let test_divergent_barrier () =
  let _, _, ds =
    check_src
      {|#pragma gpcc dim n 64
#pragma gpcc output c
__kernel void divb(float a[64], float c[64], int n) {
  __shared__ float s[16];
  s[tidx] = a[idx];
  if (tidx < 8) {
    __syncthreads();
  }
  c[idx] = s[tidx];
}|}
  in
  assert_rejected "divergent barrier" V.rule_barrier_divergence ds

let test_oob_global () =
  let _, _, ds =
    check_src
      {|#pragma gpcc dim n 64
#pragma gpcc output c
__kernel void oob(float a[64], float c[64], int n) {
  c[idx + 1] = a[idx];
}|}
  in
  assert_rejected "global overflow" V.rule_oob_global ds

let test_oob_shared () =
  let _, _, ds =
    check_src
      {|#pragma gpcc dim n 64
#pragma gpcc output c
__kernel void oobs(float a[64], float c[64], int n) {
  __shared__ float s[8];
  s[tidx] = a[idx];
  __syncthreads();
  c[idx] = s[tidx % 8];
}|}
  in
  assert_rejected "shared overflow" V.rule_oob_shared ds

let test_wraparound_race () =
  (* staging loop with a barrier after the stores but none at the end of
     the iteration: iteration k+1's stores race with iteration k's reads
     (the wrap-around interval) *)
  let _, _, ds =
    check_src
      {|#pragma gpcc dim n 64
#pragma gpcc output c
__kernel void wrapr(float a[64][64], float c[64], int n) {
  float sum = 0;
  for (int i = 0; i < n; i += 16) {
    __shared__ float s[16];
    s[tidx] = a[idx][i + tidx];
    __syncthreads();
    for (int k = 0; k < 16; k++) {
      sum = sum + s[k];
    }
  }
  c[idx] = sum;
}|}
  in
  assert_rejected "wrap-around race" V.rule_race_shared ds

let test_global_sync_in_loop () =
  (* the typechecker already rejects this shape in source, so build the
     AST directly: the verifier must catch it on its own for kernels
     produced mid-pipeline *)
  let k =
    parse_kernel
      {|#pragma gpcc dim n 64
#pragma gpcc output c
__kernel void gsl(float a[64], float c[64], int n) {
  c[idx] = a[idx];
}|}
  in
  let loop =
    Ast.for_ "i" ~from:(Ast.Int_lit 0) ~limit:(Ast.Int_lit 4)
      ~step:(Ast.Int_lit 1) [ Ast.Global_sync ]
  in
  let k = { k with k_body = loop :: k.k_body } in
  let launch = Option.get (Gpcc_passes.Pass_util.naive_launch k) in
  assert_rejected "__global_sync in a loop" V.rule_barrier_divergence
    (V.check ~launch k)

(* --- positives: sound patterns must stay clean --- *)

let staged_src =
  (* the mm-generated shape: staging, barrier, use, trailing barrier *)
  {|#pragma gpcc dim n 64
#pragma gpcc output c
__kernel void staged(float a[64][64], float c[64], int n) {
  float sum = 0;
  for (int i = 0; i < n; i += 16) {
    __shared__ float s[16];
    s[tidx] = a[idx][i + tidx];
    __syncthreads();
    for (int k = 0; k < 16; k++) {
      sum = sum + s[k];
    }
    __syncthreads();
  }
  c[idx] = sum;
}|}

let test_staged_clean () =
  let _, _, ds = check_src staged_src in
  Alcotest.(check bool)
    "staged kernel clean" true
    (V.is_clean ds
    && not (has_rule V.rule_oob_unproven ds || has_rule V.rule_oob_shared ds))

let test_uniform_guarded_sync_ok () =
  (* a barrier under a uniform guard is conservative but not divergent *)
  let _, _, ds =
    check_src
      {|#pragma gpcc dim n 64
#pragma gpcc output c
__kernel void ugs(float a[64], float c[64], int n) {
  __shared__ float s[16];
  s[tidx] = a[idx];
  if (n > 8) {
    __syncthreads();
  }
  c[idx] = s[tidx];
}|}
  in
  Alcotest.(check bool)
    "no barrier-divergence error" false
    (has_rule V.rule_barrier_divergence ds)

let test_bank_conflict_and_padding () =
  let column_src pad =
    Printf.sprintf
      {|#pragma gpcc dim n 256
#pragma gpcc output c
__kernel void bank(float a[256][16], float c[256][16], int n) {
  __shared__ float s[16][%d];
  s[tidx][tidy] = a[idy][idx];
  __syncthreads();
  c[idy][idx] = s[tidx][tidy];
}|}
      pad
  in
  let k = parse_kernel (column_src 16) in
  let launch = { Ast.grid_x = 1; grid_y = 16; block_x = 16; block_y = 16 } in
  let unpadded = V.check ~launch k in
  Alcotest.(check bool)
    "[16][16] column access conflicts" true
    (has_rule V.rule_bank_conflict unpadded);
  let k' = parse_kernel (column_src 17) in
  let padded = V.check ~launch k' in
  Alcotest.(check bool)
    "[16][17] padding removes conflicts" false
    (has_rule V.rule_bank_conflict padded)

(* --- every registry workload, naive and post-pipeline --- *)

let test_workloads_clean () =
  List.iter
    (fun (w : Gpcc_workloads.Workload.t) ->
      let k = Gpcc_workloads.Workload.parse w w.test_size in
      (match Gpcc_passes.Pass_util.naive_launch k with
      | Some launch ->
          let ds = V.check ~launch k in
          if not (V.is_clean ds) then
            Alcotest.failf "%s naive: %s" w.name
              (String.concat "; " (List.map V.to_string (V.errors ds)))
      | None -> ());
      (* default pipeline runs with translation validation on: reaching
         here at all means every pass was accepted *)
      let r = Gpcc_core.Compiler.run k in
      let ds = V.check ~launch:r.launch r.kernel in
      if not (V.is_clean ds) then
        Alcotest.failf "%s optimized: %s" w.name
          (String.concat "; " (List.map V.to_string (V.errors ds))))
    (Gpcc_workloads.Registry.all @ Gpcc_workloads.Registry.extras)

let test_cublas_clean () =
  List.iter
    (fun (c : Gpcc_workloads.Cublas_sim.comparator) ->
      let n = 64 in
      let k = Gpcc_workloads.Cublas_sim.kernel c n in
      let launch = c.c_launch n in
      let ds = V.check ~launch k in
      if not (V.is_clean ds) then
        Alcotest.failf "cublas %s: %s" c.c_for
          (String.concat "; " (List.map V.to_string (V.errors ds))))
    Gpcc_workloads.Cublas_sim.all

(* --- the compiler's translation-validation gate --- *)

let test_compile_rejects_racy_input () =
  let k = parse_kernel racy_src in
  match Gpcc_core.Compiler.run k with
  | _ -> Alcotest.fail "racy kernel compiled without a verifier error"
  | exception (Gpcc_core.Compiler.Compile_error _ as e) ->
      Alcotest.(check bool)
        "classified as verifier rejection" true
        (Gpcc_core.Compiler.verifier_rejected e)

let test_verifier_rejected_classifier () =
  Alcotest.(check bool)
    "other compile errors are not verifier rejections" false
    (Gpcc_core.Compiler.verifier_rejected
       (Gpcc_core.Compiler.Compile_error "cannot derive the thread domain"));
  Alcotest.(check bool)
    "non-compile exceptions are not verifier rejections" false
    (Gpcc_core.Compiler.verifier_rejected Not_found)

let test_step_diagnostics_recorded () =
  let w = Gpcc_workloads.Registry.find_exn "mm" in
  let k = Gpcc_workloads.Workload.parse w w.test_size in
  let r = compile k in
  Alcotest.(check bool)
    "no error diagnostics on any step" true
    (List.for_all
       (fun (s : Gpcc_core.Compiler.step) -> V.errors s.diagnostics = [])
       r.steps);
  (* disabling verification yields empty diagnostics *)
  let r' =
    Gpcc_core.Pipeline.run
      ~pipeline:(Gpcc_core.Pipeline.default ~verify:false ())
      k
  in
  Alcotest.(check int)
    "verify:false records no diagnostics" 0
    (List.length (Gpcc_core.Compiler.diagnostics r'))

let test_explore_classifies_verify_failures () =
  (* a racy input fails every configuration at the verify stage *)
  let k = parse_kernel racy_src in
  let cands, failures =
    Gpcc_core.Explore.search_with_failures ~jobs:2 ~block_targets:[ 64 ]
      ~merge_degrees:[ 1; 4 ] k
      ~measure:(fun _ _ -> 1.0)
  in
  Alcotest.(check int) "no candidates" 0 (List.length cands);
  Alcotest.(check int) "both configs failed" 2 (List.length failures);
  List.iter
    (fun (f : Gpcc_core.Explore.failure) ->
      if f.failed_stage <> `Verify then
        Alcotest.failf "t=%d d=%d: expected `Verify, got %s" f.failed_target
          f.failed_degree f.reason)
    failures

(* --- JSON emission --- *)

let test_json_shape () =
  let d =
    {
      V.severity = V.Error;
      rule = "race-shared";
      kernel = "k\"1";
      path = "for(i)";
      message = "line1\nline2";
    }
  in
  let j = V.json_of_diagnostics [ d ] in
  assert_contains "json" j {|"severity":"error"|};
  assert_contains "json" j {|"rule":"race-shared"|};
  assert_contains "json" j {|"kernel":"k\"1"|};
  assert_contains "json" j {|"message":"line1\nline2"|}

(* --- dynamic race detector (GPCC_CHECK=1) agreement --- *)

let with_dynamic_check f =
  Unix.putenv "GPCC_CHECK" "1";
  Fun.protect ~finally:(fun () -> Unix.putenv "GPCC_CHECK" "0") f

let test_dynamic_catches_racy () =
  let k, launch, ds = check_src racy_src in
  assert_rejected "static verdict" V.rule_race_shared ds;
  let inputs = [ ("a", Gpcc_workloads.Workload.gen ~seed:7 64) ] in
  with_dynamic_check (fun () ->
      match run_full k launch inputs "c" with
      | _ -> Alcotest.fail "dynamic detector missed the seeded race"
      | exception Gpcc_sim.Interp.Runtime_error m ->
          assert_contains "runtime error" m "data race")

let test_dynamic_clean_workloads () =
  (* every workload the static verifier accepts must also run clean
     under the dynamic detector, naive and optimized *)
  with_dynamic_check (fun () ->
      List.iter
        (fun (w : Gpcc_workloads.Workload.t) ->
          let n = w.test_size in
          let k = Gpcc_workloads.Workload.parse w n in
          (match Gpcc_passes.Pass_util.naive_launch k with
          | Some launch -> Gpcc_workloads.Workload.check cfg280 w n k launch
          | None -> ());
          let r = Gpcc_core.Compiler.run k in
          Gpcc_workloads.Workload.check cfg280 w n r.kernel r.launch)
        (Gpcc_workloads.Registry.all @ Gpcc_workloads.Registry.extras))

let suite =
  ( "verify",
    [
      Alcotest.test_case "negative: missing sync" `Quick test_missing_sync;
      Alcotest.test_case "negative: divergent barrier" `Quick
        test_divergent_barrier;
      Alcotest.test_case "negative: global overflow" `Quick test_oob_global;
      Alcotest.test_case "negative: shared overflow" `Quick test_oob_shared;
      Alcotest.test_case "negative: wrap-around race" `Quick
        test_wraparound_race;
      Alcotest.test_case "negative: global sync in loop" `Quick
        test_global_sync_in_loop;
      Alcotest.test_case "staged pattern clean" `Quick test_staged_clean;
      Alcotest.test_case "uniform guarded sync ok" `Quick
        test_uniform_guarded_sync_ok;
      Alcotest.test_case "bank conflicts and padding" `Quick
        test_bank_conflict_and_padding;
      Alcotest.test_case "registry workloads clean" `Slow test_workloads_clean;
      Alcotest.test_case "cublas comparators clean" `Quick test_cublas_clean;
      Alcotest.test_case "compiler rejects racy input" `Quick
        test_compile_rejects_racy_input;
      Alcotest.test_case "verifier_rejected classifier" `Quick
        test_verifier_rejected_classifier;
      Alcotest.test_case "step diagnostics recorded" `Quick
        test_step_diagnostics_recorded;
      Alcotest.test_case "explore classifies verify failures" `Quick
        test_explore_classifies_verify_failures;
      Alcotest.test_case "diagnostic json shape" `Quick test_json_shape;
      Alcotest.test_case "dynamic detector catches seeded race" `Quick
        test_dynamic_catches_racy;
      Alcotest.test_case "dynamic detector clean on workloads" `Slow
        test_dynamic_clean_workloads;
    ] )

(** Linear (affine) forms over thread-position variables and loop iterators.

    This is the machinery behind the paper's Section 3.2 index analysis:
    every array index is lowered, when possible, to

    {v c0 + c1*tidx + c2*tidy + c3*bidx + c4*bidy + sum ci*iter_i + sum cj*param_j v}

    The absolute ids [idx]/[idy] are canonicalized away using the current
    launch configuration ([idx = bidx*block_x + tidx]), and each in-scope
    loop variable [l] is replaced by [init(l) + Iter l * step(l)] where
    [Iter l] counts iterations — this matches the paper's rule of checking
    the first 16 iterations of a loop index, because alignment behaviour
    repeats with period 16 in the iteration count. *)

open Gpcc_ast

type var =
  | Tidx
  | Tidy
  | Bidx
  | Bidy
  | Iter of string  (** iteration counter of the named loop *)
  | Param of string  (** unbound scalar [int] parameter *)
  | Mod_of of var * int
      (** [v mod c] — introduced by sub-block privatization ([tidx %% 16]);
          opaque but lets the rest of the form stay analyzable *)
  | Div_of of var * int  (** [v / c], same purpose *)
[@@deriving show { with_path = false }, eq, ord]

(** Does the variable carry the half-warp lane (directly or through a
    mod/div of it)? *)
let rec lane_derived = function
  | Tidx -> true
  | Mod_of (v, _) | Div_of (v, _) -> lane_derived v
  | Tidy | Bidx | Bidy | Iter _ | Param _ -> false

type t = {
  const : int;
  terms : (var * int) list;  (** sorted by [compare_var], coefficients <> 0 *)
}
[@@deriving show { with_path = false }, eq]

let const c = { const = c; terms = [] }
let zero = const 0
let of_var v = { const = 0; terms = [ (v, 1) ] }

let normalize terms =
  terms
  |> List.filter (fun (_, c) -> c <> 0)
  |> List.sort (fun (a, _) (b, _) -> compare_var a b)

let add a b =
  let rec merge xs ys =
    match (xs, ys) with
    | [], l | l, [] -> l
    | (vx, cx) :: xs', (vy, cy) :: ys' ->
        let c = compare_var vx vy in
        if c = 0 then
          if cx + cy = 0 then merge xs' ys' else (vx, cx + cy) :: merge xs' ys'
        else if c < 0 then (vx, cx) :: merge xs' ys
        else (vy, cy) :: merge xs ys'
  in
  { const = a.const + b.const; terms = merge a.terms b.terms }

let scale k a =
  if k = 0 then zero
  else { const = k * a.const; terms = List.map (fun (v, c) -> (v, k * c)) a.terms }

let sub a b = add a (scale (-1) b)

let coeff v a =
  match List.assoc_opt v a.terms with Some c -> c | None -> 0

(** Drop the term for [v] (i.e. set its coefficient to zero). *)
let drop v a = { a with terms = List.filter (fun (v', _) -> not (equal_var v v')) a.terms }

let vars a = List.map fst a.terms
let is_const a = a.terms = []

(** Exact division by a positive constant, when every coefficient and the
    constant are divisible. *)
let div_exact a k =
  if k = 0 then None
  else if
    a.const mod k = 0 && List.for_all (fun (_, c) -> c mod k = 0) a.terms
  then
    Some
      { const = a.const / k; terms = normalize (List.map (fun (v, c) -> (v, c / k)) a.terms) }
  else None

(** [a mod k] when it is a compile-time constant (every coefficient
    divisible by [k]); uses the mathematical (non-negative) remainder,
    valid because index expressions are non-negative at runtime. *)
let mod_const a k =
  if k <= 0 then None
  else if List.for_all (fun (_, c) -> c mod k = 0) a.terms then
    Some (((a.const mod k) + k) mod k)
  else None

let eval (assignment : var -> int) a =
  List.fold_left (fun acc (v, c) -> acc + (c * assignment v)) a.const a.terms

(** Analysis context: the compile-time knowledge the paper's compiler has
    when it checks an access — the specialized input sizes, the current
    launch configuration, the enclosing loops, and affine-valued local
    [int] lets. *)
type ctx = {
  sizes : (string * int) list;
  block_x : int;
  block_y : int;
  grid_x : int;
  grid_y : int;
  loops : (string * loop_desc) list;  (** innermost first *)
  lets : (string * t) list;
}

and loop_desc = {
  ld_init : t;
  ld_step : int;
  ld_trips : int option;  (** trip count when the bounds are compile-time *)
}

let ctx_of_launch ?(sizes = []) (l : Ast.launch) =
  {
    sizes;
    block_x = l.block_x;
    block_y = l.block_y;
    grid_x = l.grid_x;
    grid_y = l.grid_y;
    loops = [];
    lets = [];
  }

let rec of_expr (ctx : ctx) (e : Ast.expr) : t option =
  let ( let* ) = Option.bind in
  match e with
  | Int_lit n -> Some (const n)
  | Float_lit _ -> None
  | Builtin b -> (
      match b with
      | Ast.Tidx -> Some (of_var Tidx)
      | Ast.Tidy -> Some (of_var Tidy)
      | Ast.Bidx -> Some (of_var Bidx)
      | Ast.Bidy -> Some (of_var Bidy)
      | Idx -> Some (add (scale ctx.block_x (of_var Bidx)) (of_var Tidx))
      | Idy -> Some (add (scale ctx.block_y (of_var Bidy)) (of_var Tidy))
      | Bdimx -> Some (const ctx.block_x)
      | Bdimy -> Some (const ctx.block_y)
      | Gdimx -> Some (const ctx.grid_x)
      | Gdimy -> Some (const ctx.grid_y))
  | Var v -> (
      match List.assoc_opt v ctx.loops with
      | Some ld -> Some (add ld.ld_init (scale ld.ld_step (of_var (Iter v))))
      | None -> (
          match List.assoc_opt v ctx.sizes with
          | Some n -> Some (const n)
          | None -> (
              match List.assoc_opt v ctx.lets with
              | Some form -> Some form
              | None -> Some (of_var (Param v)))))
  | Unop (Neg, a) ->
      let* fa = of_expr ctx a in
      Some (scale (-1) fa)
  | Unop (Not, _) -> None
  | Binop (Add, a, b) ->
      let* fa = of_expr ctx a in
      let* fb = of_expr ctx b in
      Some (add fa fb)
  | Binop (Sub, a, b) ->
      let* fa = of_expr ctx a in
      let* fb = of_expr ctx b in
      Some (sub fa fb)
  | Binop (Mul, a, b) -> (
      let* fa = of_expr ctx a in
      let* fb = of_expr ctx b in
      if is_const fa then Some (scale fa.const fb)
      else if is_const fb then Some (scale fb.const fa)
      else None)
  | Binop (Div, a, b) -> (
      let* fa = of_expr ctx a in
      let* fb = of_expr ctx b in
      if is_const fb then
        match div_exact fa fb.const with
        | Some f -> Some f
        | None -> (
            match (fa.const, fa.terms) with
            | 0, [ (v, 1) ] when fb.const > 0 ->
                Some (of_var (Div_of (v, fb.const)))
            | _ -> None)
      else None)
  | Binop (Mod, a, b) -> (
      let* fa = of_expr ctx a in
      let* fb = of_expr ctx b in
      if is_const fb then
        match mod_const fa fb.const with
        | Some c -> Some (const c)
        | None -> (
            match (fa.const, fa.terms) with
            | 0, [ (v, 1) ] when fb.const > 0 ->
                Some (of_var (Mod_of (v, fb.const)))
            | _ -> None)
      else None)
  | Binop ((Lt | Le | Gt | Ge | Eq | Ne | And | Or), _, _) -> None
  | Index _ | Vload _ | Field _ | Call _ | Select _ -> None

(** Evaluate an [int] expression to a compile-time constant under the
    context's size bindings (no thread-position or loop variables). *)
let eval_const (ctx : ctx) (e : Ast.expr) : int option =
  match of_expr ctx e with
  | Some f when is_const f -> Some f.const
  | _ -> None

(** Affine form of a loop's trip count, if compile-time. *)
let loop_trips (ctx : ctx) (l : Ast.loop) : int option =
  match (eval_const ctx l.l_init, eval_const ctx l.l_limit, eval_const ctx l.l_step) with
  | Some i0, Some lim, Some s when s > 0 ->
      Some (max 0 ((lim - i0 + s - 1) / s))
  | _ -> None

(** Push a loop onto the context (for analyses descending into bodies). *)
let enter_loop (ctx : ctx) (l : Ast.loop) : ctx option =
  match (of_expr ctx l.l_init, eval_const ctx l.l_step) with
  | Some init, Some step when step > 0 ->
      Some
        {
          ctx with
          loops =
            (l.l_var, { ld_init = init; ld_step = step; ld_trips = loop_trips ctx l })
            :: ctx.loops;
        }
  | _ -> None

(** Record an affine-valued local [int] binding ([int t = idx * 2;]). *)
let enter_let (ctx : ctx) name (e : Ast.expr) : ctx =
  match of_expr ctx e with
  | Some f -> { ctx with lets = (name, f) :: ctx.lets }
  | None -> { ctx with lets = List.remove_assoc name ctx.lets }

let to_string (a : t) =
  let rec var_name = function
    | Tidx -> "tidx"
    | Tidy -> "tidy"
    | Bidx -> "bidx"
    | Bidy -> "bidy"
    | Iter l -> "iter(" ^ l ^ ")"
    | Param p -> p
    | Mod_of (v, c) -> Printf.sprintf "(%s%%%d)" (var_name v) c
    | Div_of (v, c) -> Printf.sprintf "(%s/%d)" (var_name v) c
  in
  let term (v, c) =
    let vs = var_name v in
    if c = 1 then vs else Printf.sprintf "%d*%s" c vs
  in
  match (a.const, a.terms) with
  | c, [] -> string_of_int c
  | 0, ts -> String.concat " + " (List.map term ts)
  | c, ts -> String.concat " + " (List.map term ts) ^ " + " ^ string_of_int c

lib/workloads/fft.ml: Array Buffer Printf Workload

(** Differential fuzzing of the whole pipeline: generate random naive
    kernels (reduction loops, stencil neighborhoods, guards, interleaved
    pairs), compile them with random merge configurations, and check that
    the optimized kernel computes exactly what the naive kernel computes
    over the full grid. The interpreter itself is validated against CPU
    references elsewhere (test_workloads), so a mismatch here indicts a
    transformation. *)

open Util

let dim = 64

(* --- random kernel generation --- *)

type spec = {
  terms : string list;  (** summand expressions inside the loop *)
  guard : string option;
  post : string;  (** final combine of the accumulator *)
  step : int;
}

let term_pool =
  [|
    "a[idy][i]";
    "b[i][idx]";
    "a[idy][i] * b[i][idx]";
    "v[i]";
    "a[idy][i] + v[i]";
    "b[i][idx] * 2.0";
    "v[i] * a[idy][i]";
    "a[idy][i] - 1.0";
    "p[2 * i] + p[2 * i + 1]";
    "b[i][idx] * v[i]";
    (* strided/offset/reversed lane patterns: non-unit within-group
       strides and bases off the memo granularity, the shapes the
       plane-batched accounting must digest exactly *)
    "b[idx][i]";
    "p[idx + i]";
    "v[63 - idx]";
    "b[i][63 - idx]";
  |]

let guard_pool =
  [| "i < idy"; "i + 1 < idx"; "idx % 2 == 0"; "i % 2 == 0" |]

let post_pool =
  [| "s"; "s * 0.5"; "s + a[idy][idx]"; "s - b[idy][idx]"; "0.0 - s" |]

let gen_spec : spec QCheck.Gen.t =
  let open QCheck.Gen in
  let* nterms = int_range 1 3 in
  let* terms = list_repeat nterms (oneofa term_pool) in
  let* guard = opt (oneofa guard_pool) in
  let* post = oneofa post_pool in
  let* step = oneofl [ 1; 1; 1; 2 ] in
  return { terms; guard; post; step }

let source_of_spec (s : spec) : string =
  let body =
    String.concat "\n"
      (List.map (fun t -> Printf.sprintf "      s += %s;" t) s.terms)
  in
  let loop =
    match s.guard with
    | None ->
        Printf.sprintf "  for (int i = 0; i < w; i += %d) {\n%s\n  }" s.step
          body
    | Some g ->
        Printf.sprintf
          "  for (int i = 0; i < w; i += %d) {\n    if (%s) {\n  %s\n    }\n  }"
          s.step g
          (String.concat "\n"
             (List.map (fun t -> Printf.sprintf "      s += %s;" t) s.terms))
  in
  Printf.sprintf
    {|#pragma gpcc dim w %d
#pragma gpcc output out
__kernel void fuzz(float a[%d][%d], float b[%d][%d], float v[%d], float p[%d], float out[%d][%d], int w) {
  float s = 0;
%s
  out[idy][idx] = %s;
}|}
    dim dim dim dim dim dim (2 * dim) dim dim loop s.post

let spec_print s = source_of_spec s

let inputs =
  [
    ("a", Gpcc_workloads.Workload.gen ~seed:41 (dim * dim));
    ("b", Gpcc_workloads.Workload.gen ~seed:42 (dim * dim));
    ("v", Gpcc_workloads.Workload.gen ~seed:43 dim);
    ("p", Gpcc_workloads.Workload.gen ~seed:44 (2 * dim));
  ]

let knob_gen : (int * int * bool) QCheck.Gen.t =
  let open QCheck.Gen in
  let* target = oneofl [ 32; 64; 128; 256 ] in
  let* degree = oneofl [ 1; 2; 4; 8 ] in
  let* vec = bool in
  return (target, degree, vec)

let arb =
  QCheck.make
    QCheck.Gen.(pair gen_spec knob_gen)
    ~print:(fun (s, (t, d, v)) ->
      Printf.sprintf "target=%d degree=%d vectorize=%b\n%s" t d v
        (spec_print s))

let pipeline_preserves =
  QCheck.Test.make ~count:60 ~name:"random kernels: optimized == naive" arb
    (fun (spec, (target, degree, vec)) ->
      let src = source_of_spec spec in
      let k =
        try parse_kernel src
        with e ->
          QCheck.Test.fail_reportf "generated kernel rejected: %s\n%s"
            (Printexc.to_string e) src
      in
      let launch = Option.get (Gpcc_passes.Pass_util.initial_launch k) in
      let want, _ = run_full k launch inputs "out" in
      let pipeline =
        Gpcc_core.Pipeline.disable
          (if vec then [] else [ "vectorize-wide"; "vectorize" ])
          (Gpcc_core.Pipeline.default ~cfg:cfg280
             ~target_block_threads:target ~merge_degree:degree ())
      in
      match Gpcc_core.Pipeline.run ~pipeline k with
      | r -> (
          match run_full r.kernel r.launch inputs "out" with
          | got, _ ->
              if floats_close ~eps:1e-3 got want then true
              else
                QCheck.Test.fail_reportf
                  "outputs differ\n--- optimized ---\n%s"
                  (Gpcc_ast.Pp.kernel_to_string ~launch:r.launch r.kernel)
          | exception e ->
              QCheck.Test.fail_reportf "optimized kernel crashed: %s\n%s"
                (Printexc.to_string e)
                (Gpcc_ast.Pp.kernel_to_string ~launch:r.launch r.kernel))
      | exception Gpcc_core.Pipeline.Compile_error m ->
          QCheck.Test.fail_reportf "compile error: %s" m)

let pipeline_preserves_8800 =
  QCheck.Test.make ~count:25 ~name:"random kernels: optimized == naive (GTX8800)"
    arb
    (fun (spec, (target, degree, vec)) ->
      let src = source_of_spec spec in
      let k = parse_kernel src in
      let launch = Option.get (Gpcc_passes.Pass_util.initial_launch k) in
      let want, _ = run_full ~cfg:cfg8800 k launch inputs "out" in
      let pipeline =
        Gpcc_core.Pipeline.disable
          (if vec then [] else [ "vectorize-wide"; "vectorize" ])
          (Gpcc_core.Pipeline.default ~cfg:cfg8800
             ~target_block_threads:target ~merge_degree:degree ())
      in
      let r = Gpcc_core.Pipeline.run ~pipeline k in
      let got, _ = run_full ~cfg:cfg8800 r.kernel r.launch inputs "out" in
      floats_close ~eps:1e-3 got want)

let pipeline_verifies_clean =
  (* the pipeline's own translation validation is disabled so the
     property, not the compiler, does the checking: every generated
     kernel's optimized output must verify clean at the chosen launch *)
  QCheck.Test.make ~count:40
    ~name:"random kernels: optimized output verifies clean" arb
    (fun (spec, (target, degree, vec)) ->
      let module V = Gpcc_analysis.Verify in
      let k = parse_kernel (source_of_spec spec) in
      let pipeline =
        Gpcc_core.Pipeline.disable
          (if vec then [] else [ "vectorize-wide"; "vectorize" ])
          (Gpcc_core.Pipeline.default ~cfg:cfg280
             ~target_block_threads:target ~merge_degree:degree ~verify:false
             ())
      in
      let r = Gpcc_core.Pipeline.run ~pipeline k in
      match V.errors (V.check ~launch:r.launch r.kernel) with
      | [] -> true
      | errs ->
          QCheck.Test.fail_reportf "verifier rejected optimized kernel:\n%s\n%s"
            (String.concat "\n" (List.map V.to_string errs))
            (Gpcc_ast.Pp.kernel_to_string ~launch:r.launch r.kernel))

let suite =
  ( "fuzz",
    [
      QCheck_alcotest.to_alcotest ~long:true pipeline_preserves;
      QCheck_alcotest.to_alcotest ~long:true pipeline_preserves_8800;
      QCheck_alcotest.to_alcotest ~long:true pipeline_verifies_clean;
    ] )

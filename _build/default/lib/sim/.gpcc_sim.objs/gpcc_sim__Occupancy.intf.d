lib/sim/occupancy.pp.mli: Config Format

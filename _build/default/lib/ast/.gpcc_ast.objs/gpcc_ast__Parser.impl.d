lib/ast/parser.pp.ml: Ast Lexer List Printf String

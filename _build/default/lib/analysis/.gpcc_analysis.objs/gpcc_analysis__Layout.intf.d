lib/analysis/layout.pp.mli: Affine Gpcc_ast

(** Design-space exploration (the paper's Section 4 and Figure 10): one
    naive kernel, many optimized versions, empirical selection.

    The merge degrees trade register/shared-memory reuse against
    occupancy, so the compiler generates a version per configuration and
    test-runs each — here on the simulator, per target GPU.

    Run with:  dune exec examples/design_space.exe *)

let n = 512

let () =
  let w = Gpcc_workloads.Registry.find_exn "mm" in
  let naive = Gpcc_workloads.Workload.parse w n in
  List.iter
    (fun cfg ->
      Printf.printf "\n=== %s, mm %dx%d ===\n" cfg.Gpcc_sim.Config.name n n;
      Printf.printf "  %-8s %-6s %-14s %-10s %-8s %s\n" "threads" "merge"
        "launch" "GFLOPS" "occ" "bound";
      let measure = Gpcc_workloads.Workload.measure ~sample:1 ~streams:4 cfg w n in
      let cands =
        Gpcc_core.Explore.search ~cfg
          ~block_targets:[ 64; 128; 256; 512 ]
          ~merge_degrees:[ 4; 8; 16; 32 ] naive
          ~measure:(fun k l -> (measure k l).gflops)
        |> Gpcc_core.Explore.distinct
      in
      List.iter
        (fun (c : Gpcc_core.Explore.candidate) ->
          let t = measure c.result.kernel c.result.launch in
          Printf.printf "  %-8d %-6d (%d,%d)x(%d,%d)%s %-10.1f %-8d %s\n"
            c.target_block_threads c.merge_degree c.result.launch.grid_x
            c.result.launch.grid_y c.result.launch.block_x
            c.result.launch.block_y
            (String.make
               (max 1
                  (14
                   - String.length
                       (Printf.sprintf "(%d,%d)x(%d,%d)" c.result.launch.grid_x
                          c.result.launch.grid_y c.result.launch.block_x
                          c.result.launch.block_y)))
               ' ')
            c.score t.occupancy.blocks_per_sm t.bound)
        cands;
      match Gpcc_core.Explore.best cands with
      | Some b ->
          Printf.printf
            "  -> selected: %d threads/block, %d-way thread merge (%.1f GFLOPS)\n"
            b.target_block_threads b.merge_degree b.score
      | None -> print_endline "  -> no valid candidate")
    [ Gpcc_sim.Config.gtx8800; Gpcc_sim.Config.gtx280 ]

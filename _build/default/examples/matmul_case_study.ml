(** The paper's Section 5 case study, replayed: matrix multiplication
    through every pipeline stage, printing the kernel after each step so
    you can follow the transformations (Figures 2a -> 3a -> 5 -> 7).

    Run with:  dune exec examples/matmul_case_study.exe *)

open Gpcc_passes

let n = 256

let () =
  let w = Gpcc_workloads.Registry.find_exn "mm" in
  let naive = Gpcc_workloads.Workload.parse w n in
  let launch0 = Option.get (Pass_util.initial_launch naive) in

  let show title kernel launch =
    Printf.printf "\n--- %s (grid %dx%d, block %dx%d) ---\n" title
      launch.Gpcc_ast.Ast.grid_x launch.Gpcc_ast.Ast.grid_y
      launch.Gpcc_ast.Ast.block_x launch.Gpcc_ast.Ast.block_y;
    print_string (Gpcc_ast.Pp.kernel_to_string kernel)
  in

  show "Figure 2a: the naive kernel" naive launch0;

  (* Step 1: coalescing (paper Figure 3a) — a[idy][i] is not coalesced, so
     the loop is unrolled by 16 and the row slice staged in shared memory *)
  let c = Coalesce.apply naive launch0 in
  List.iter (Printf.printf "  * %s\n") c.notes;
  show "Figure 3a: after memory coalescing" c.kernel c.launch;

  (* Step 2: data sharing (paper Section 3.4/5) — a's staging is
     global-to-shared and bidx-independent (shared along X); b's load is
     global-to-register and bidy-independent (shared along Y) *)
  print_endline "\n--- data-sharing analysis (Section 3.4) ---";
  Gpcc_analysis.Sharing.analyze ~launch:c.launch c.kernel
  |> List.iter (fun s ->
         Printf.printf "  array %-3s role %-3s  shared along X: %-5b  along Y: %b\n"
           s.Gpcc_analysis.Sharing.arr
           (match s.role with Gpcc_analysis.Sharing.G2S -> "G2S" | G2R -> "G2R")
           s.share_x s.share_y);

  (* Step 3: thread-block merge along X (paper Figure 5) — G2S sharing
     prefers merging blocks; the redundant loads get the tidx guard *)
  let bm = Merge.block_merge_x c.kernel c.launch 8 in
  List.iter (Printf.printf "  * %s\n") bm.notes;
  show "Figure 5: after thread-block merge" bm.kernel bm.launch;

  (* Step 4: thread merge along Y (paper Figure 7) — G2R sharing prefers
     merging threads; b's load is hoisted into a register shared by all
     replicas *)
  let tm = Merge.thread_merge Merge.Y bm.kernel bm.launch 8 in
  List.iter (Printf.printf "  * %s\n") tm.notes;
  show "Figure 7: after thread merge" tm.kernel tm.launch;

  (* Step 5: the full pipeline end-to-end, and the empirical check that it
     computes the same matrix as the naive kernel *)
  let cfg = Gpcc_sim.Config.gtx280 in
  let opts =
    {
      (Gpcc_core.Compiler.default_options ~cfg ()) with
      target_block_threads = 128;
      merge_degree = 8;
    }
  in
  let r = Gpcc_core.Compiler.run ~opts naive in
  Gpcc_workloads.Workload.check cfg w n r.kernel r.launch;
  print_endline "\nfull pipeline output verified against the CPU reference.";

  let naive_t =
    let l = Option.get (Pass_util.naive_launch naive) in
    Gpcc_workloads.Workload.measure cfg w n naive l
  in
  let opt_t = Gpcc_workloads.Workload.measure cfg w n r.kernel r.launch in
  Printf.printf "simulated GTX 280: naive %.2f GFLOPS, optimized %.2f GFLOPS (%.1fx)\n"
    naive_t.gflops opt_t.gflops (opt_t.gflops /. naive_t.gflops)

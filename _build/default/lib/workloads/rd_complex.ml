(** Complex-number reduction (the paper's Figure 14 vectorization study,
    CUBLAS counterpart: CublasScasum — sum of |Re| + |Im|).

    The naive kernel reads the real and imaginary parts with two separate
    float accesses [a[2*i]] and [a[2*i+1]], exactly as the paper's
    modified rd kernel does; the vectorization pass is what turns the pair
    into one [float2] load. [n] is the number of complex elements. *)

let threads = 4096

let source n =
  Printf.sprintf
    {|#pragma gpcc dim len %d
#pragma gpcc dim nt %d
#pragma gpcc dim __threads_x %d
#pragma gpcc output out
__kernel void rdc(float a[%d], float partial[%d], float out[16], int len, int nt) {
  float sum = 0;
  for (int i = idx; i < len; i += nt) {
    sum += fabsf(a[2 * i]);
    sum += fabsf(a[2 * i + 1]);
  }
  partial[idx] = sum;
  __global_sync();
  if (idx == 0) {
    float total = 0;
    for (int j = 0; j < nt; j++)
      total += partial[j];
    out[0] = total;
  }
}
|}
    n threads threads (2 * n) threads

let inputs n = [ ("a", Workload.gen ~seed:17 (2 * n)) ]

let reference n input =
  let a = input "a" in
  let partial = Array.make threads 0.0 in
  for t = 0 to threads - 1 do
    let s = ref 0.0 in
    let i = ref t in
    while !i < n do
      s := !s +. Float.abs a.(2 * !i) +. Float.abs a.((2 * !i) + 1);
      i := !i + threads
    done;
    partial.(t) <- !s
  done;
  let out = Array.make 16 0.0 in
  out.(0) <- Array.fold_left ( +. ) 0.0 partial;
  [ ("out", out) ]

let workload : Workload.t =
  {
    name = "rd-complex";
    description = "complex reduction (scasum)";
    source;
    inputs;
    reference;
    flops = (fun n -> 4.0 *. float_of_int n);
    moved_bytes = (fun n -> 8.0 *. float_of_int n);
    sizes = [ 1048576; 4194304; 16777216 ];
    test_size = 65536;
    bench_size = 1048576;
    tolerance = 2e-2;
    in_cublas = true;
  }

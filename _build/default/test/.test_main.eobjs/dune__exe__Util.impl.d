test/util.ml: Alcotest Array Ast Float Fmt Gpcc_ast Gpcc_core Gpcc_sim Gpcc_workloads List Parser Pp Printf String Typecheck

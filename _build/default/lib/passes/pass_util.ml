(** Shared helpers for the optimization passes. *)

open Gpcc_ast

(** Outcome of one pass over one kernel: the (possibly) transformed kernel
    and launch configuration, plus a human-readable trace — the paper's
    "understandable optimization process". *)
type outcome = {
  kernel : Ast.kernel;
  launch : Ast.launch;
  fired : bool;
  notes : string list;
}

let unchanged ?(notes = []) kernel launch = { kernel; launch; fired = false; notes }
let changed ?(notes = []) kernel launch = { kernel; launch; fired = true; notes }

let global_arrays (k : Ast.kernel) : string list =
  List.filter_map
    (fun (p : Ast.param) ->
      match p.p_ty with
      | Array { space = Global; _ } -> Some p.p_name
      | _ -> None)
    k.k_params

let shared_arrays (b : Ast.block) : string list =
  Rewrite.declared_vars b
  |> List.filter_map (fun (n, ty) ->
         match ty with
         | Ast.Array { space = Shared; _ } -> Some n
         | _ -> None)

(** Every name already used in the kernel (params + declarations),
    for fresh-name generation. *)
let used_names (k : Ast.kernel) : string list =
  List.map (fun (p : Ast.param) -> p.p_name) k.k_params
  @ List.map fst (Rewrite.declared_vars k.k_body)

let fresh (k : Ast.kernel) base = Rewrite.fresh_name (used_names k) base

(** Fresh names [base0 ... base(n-1)]-style with a shared uniquifier. *)
let fresh_many (k : Ast.kernel) bases =
  let used = ref (used_names k) in
  List.map
    (fun b ->
      let n = Rewrite.fresh_name !used b in
      used := n :: !used;
      n)
    bases

(** Replace syntactic occurrences of one expression by another, everywhere
    in a block (used to swap a staged global access for its shared copy). *)
let replace_expr (from_e : Ast.expr) (to_e : Ast.expr) (b : Ast.block) :
    Ast.block =
  Rewrite.map_block_exprs
    (fun e -> if Ast.equal_expr e from_e then Some to_e else None)
    b

let replace_expr_in (from_e : Ast.expr) (to_e : Ast.expr) (e : Ast.expr) :
    Ast.expr =
  Rewrite.map_expr
    (fun e' -> if Ast.equal_expr e' from_e then Some to_e else None)
    e

(** Light constant folding / algebraic cleanup so that emitted kernels read
    like the paper's examples. *)
let simplify_expr (e : Ast.expr) : Ast.expr =
  Rewrite.map_expr
    (function
      | Binop (Add, Int_lit a, Int_lit b) -> Some (Int_lit (a + b))
      | Binop (Sub, Int_lit a, Int_lit b) -> Some (Int_lit (a - b))
      | Binop (Mul, Int_lit a, Int_lit b) -> Some (Int_lit (a * b))
      | Binop (Add, e, Int_lit 0) | Binop (Add, Int_lit 0, e) -> Some e
      | Binop (Sub, e, Int_lit 0) -> Some e
      | Binop (Mul, e, Int_lit 1) | Binop (Mul, Int_lit 1, e) -> Some e
      | Binop (Mul, _, Int_lit 0) | Binop (Mul, Int_lit 0, _) ->
          Some (Int_lit 0)
      | Binop (Add, Binop (Add, a, Int_lit b), Int_lit c) ->
          Some (Binop (Add, a, Int_lit (b + c)))
      | Binop (Sub, Binop (Add, a, b), b') when Ast.equal_expr b b' -> Some a
      | _ -> None)
    e

let simplify_block (b : Ast.block) : Ast.block =
  Rewrite.map_block_exprs (fun e -> Some (simplify_expr e)) b

(** The thread domain the kernel's fine-grain work items cover: the
    extents of [idx] and [idy]. Taken from the first output array's
    dimensions ([W] for 1-D, [H][W] -> (W, H)); kernels whose thread count
    is not its output shape (e.g. reductions) override via
    [#pragma gpcc dim __threads_x N] / [__threads_y N]. *)
let thread_domain (k : Ast.kernel) : (int * int) option =
  match
    ( List.assoc_opt "__threads_x" k.k_sizes,
      List.assoc_opt "__threads_y" k.k_sizes )
  with
  | Some x, Some y -> Some (x, y)
  | Some x, None -> Some (x, 1)
  | _ -> (
      match k.k_output with
      | out :: _ -> (
          match Ast.param_ty k out with
          | Some (Array { dims = [ w ]; _ }) -> Some (w, 1)
          | Some (Array { dims = [ h; w ]; _ }) -> Some (w, h)
          | _ -> None)
      | [] -> None)

(** Launch configuration the optimization pipeline starts from: one half
    warp per block (the coalescing phase's working shape). *)
let initial_launch (k : Ast.kernel) : Ast.launch option =
  match thread_domain k with
  | Some (dx, dy) when dx mod 16 = 0 ->
      Some { Ast.grid_x = dx / 16; grid_y = dy; block_x = 16; block_y = 1 }
  | _ -> None

(** A typical hand-written launch for the naive kernel (the baseline the
    paper's Figure 11 speedups are measured against): 16x16 blocks for 2-D
    domains, 256-wide blocks for 1-D. *)
let naive_launch (k : Ast.kernel) : Ast.launch option =
  match thread_domain k with
  | Some (dx, 1) when dx mod 256 = 0 ->
      Some { Ast.grid_x = dx / 256; grid_y = 1; block_x = 256; block_y = 1 }
  | Some (dx, 1) when dx mod 16 = 0 ->
      Some { Ast.grid_x = dx / 16; grid_y = 1; block_x = 16; block_y = 1 }
  | Some (dx, dy) when dx mod 16 = 0 && dy mod 16 = 0 ->
      Some { Ast.grid_x = dx / 16; grid_y = dy / 16; block_x = 16; block_y = 16 }
  | Some (dx, dy) when dx mod 16 = 0 ->
      Some { Ast.grid_x = dx / 16; grid_y = dy; block_x = 16; block_y = 1 }
  | _ -> None

(** Analytic timing model: converts measured events into cycles per
    resident wave as the max of compute, bandwidth (derated by partition
    efficiency and a per-SM cap) and latency pressures; register spill
    applies a flat slowdown. *)

type result = {
  occupancy : Occupancy.t;
  waves : int;
  cycles : float;
  time_ms : float;
  gflops : float;
  bandwidth_gbs : float;  (** useful off-chip traffic per second *)
  bound : string;  (** "compute" / "memory" / "latency" / "register-spill" *)
  partition_eff : float;
}

val show_result : result -> string
val pp_result : Format.formatter -> result -> unit

(** Fraction of peak bandwidth one SM's memory path can consume. *)
val sm_bandwidth_share : float

val estimate :
  Config.t ->
  per_block:Stats.t ->
  launch:Gpcc_ast.Ast.launch ->
  regs_per_thread:int ->
  shared_per_block:int ->
  partition_eff:float ->
  mlp:float ->
  result

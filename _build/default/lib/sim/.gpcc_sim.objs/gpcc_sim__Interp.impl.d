lib/sim/interp.pp.ml: Array Ast Coalescer Config Devmem Float Gpcc_analysis Gpcc_ast Hashtbl Layout List Printf Stats

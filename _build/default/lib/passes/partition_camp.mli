(** Partition-camping elimination (paper Section 3.7).

    Detection flags global accesses whose block-to-block address stride is
    a non-zero multiple of (partition width x number of partitions).
    Elimination inserts a per-block address offset that rotates 1-D
    reduction sweeps, or applies diagonal block reordering to square 2-D
    grids. *)

type detection = {
  d_arr : string;
  d_stride_bytes : int;
  d_outer_loop : string option;  (** outermost loop sweeping the access *)
}

val detect :
  Gpcc_sim.Config.t -> Gpcc_ast.Ast.kernel -> Gpcc_ast.Ast.launch ->
  detection list

val apply :
  ?cfg:Gpcc_sim.Config.t ->
  Gpcc_ast.Ast.kernel ->
  Gpcc_ast.Ast.launch ->
  Pass_util.outcome

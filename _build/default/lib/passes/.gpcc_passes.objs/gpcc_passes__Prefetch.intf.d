lib/passes/prefetch.pp.mli: Gpcc_ast Gpcc_sim Pass_util

(** GPU machine descriptions: exactly the parameters the paper's
    optimizations react to (register file, shared memory and its banks,
    warp widths, coalescing rules, memory partitions, clocks and
    bandwidth). *)

type coalesce_rules =
  | Strict_g80  (** thread k must access word k of an aligned segment *)
  | Relaxed_gt200  (** one transaction per distinct aligned segment *)

val equal_coalesce_rules : coalesce_rules -> coalesce_rules -> bool

type t = {
  name : string;
  num_sms : int;
  sps_per_sm : int;
  registers_per_sm : int;  (** 32-bit registers *)
  shared_bytes_per_sm : int;
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  max_threads_per_block : int;
  warp_size : int;
  shared_banks : int;
  num_partitions : int;
  partition_bytes : int;
  mem_latency_cycles : int;
  core_clock_ghz : float;
  mem_bandwidth_gbs : float;
  coalesce_rules : coalesce_rules;
  min_transaction_bytes : int;
  bw_efficiency_8b : float;
      (** sustained-bandwidth ratio of 8-byte accesses vs 4-byte ones *)
  bw_efficiency_16b : float;
  prefer_wide_vectors : bool;
      (** AMD-style target: vectorize aggressively (paper Section 3.1) *)
}

val show : t -> string

(** NVIDIA GeForce 8800 GTX (G80): 16 SMs, 32 kB registers/SM, 6
    partitions, strict coalescing. *)
val gtx8800 : t

(** NVIDIA GeForce GTX 280 (GT200): 30 SMs, 64 kB registers/SM, 8
    partitions, relaxed coalescing. *)
val gtx280 : t

(** ATI/AMD Radeon HD 5870: wide vector accesses pay (71/98/101 GB/s for
    float/float2/float4); compute modeled coarsely. *)
val hd5870 : t

val by_name : string -> t option
val half_warp : t -> int

(** Peak single-precision GFLOPS (multiply-add = 2 ops). *)
val peak_gflops : t -> float

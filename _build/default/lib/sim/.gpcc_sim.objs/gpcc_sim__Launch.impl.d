lib/sim/launch.pp.ml: Array Ast Config Devmem Gpcc_analysis Gpcc_ast Interp List Occupancy Printf Rewrite Stats Timing

(** Per-hardware deployment (paper Section 4.2): "an optimized code tuned
    for one GPU generation may not be optimal for the next... our compiler
    generates different versions of optimized code based on different
    machine descriptions so that they can be deployed on different GPU
    platforms."

    [build] runs the empirical search once per machine description and
    bundles the selected version per GPU; [pick] fetches the right kernel
    at "load time". *)

type entry = {
  gpu : Gpcc_sim.Config.t;
  chosen : Explore.candidate;
  alternatives : int;  (** distinct versions considered for this GPU *)
}

type bundle = {
  kernel_name : string;
  entries : entry list;
}

exception No_version of string

(* --- persistence ---------------------------------------------------- *)
(* A bundle is a pure function of (naive kernel, GPU list, measurement
   context), so it persists through the artifact store like any other
   search result: the whole per-hardware selection is skipped on a warm
   run. The caller's key must embed the measurement context (workload,
   problem size); [key_of] appends what the bundle itself determines. *)

module Store = Gpcc_util.Store

let bundle_kind : bundle Store.kind =
  Store.make_kind ~name:"bundle" ~version:"1"
    ~encode:(fun (b : bundle) -> Marshal.to_string b [])
    ~decode:(fun payload ->
      match (Marshal.from_string payload 0 : bundle) with
      | b -> Some b
      | exception _ -> None)

let key_of ~(prefix : string) ~(gpus : Gpcc_sim.Config.t list)
    (naive : Gpcc_ast.Ast.kernel) : string =
  String.concat "\x00"
    (prefix
    :: List.map (fun (g : Gpcc_sim.Config.t) -> g.name) gpus
    @ [ Gpcc_ast.Pp.kernel_to_string naive ])

let save ?store ~(prefix : string) ~(gpus : Gpcc_sim.Config.t list)
    (naive : Gpcc_ast.Ast.kernel) (b : bundle) : unit =
  let store =
    match store with Some s -> s | None -> Store.open_root ()
  in
  Store.store store bundle_kind ~key:(key_of ~prefix ~gpus naive) b

let load ?store ~(prefix : string) ~(gpus : Gpcc_sim.Config.t list)
    (naive : Gpcc_ast.Ast.kernel) : bundle option =
  let store =
    match store with Some s -> s | None -> Store.open_root ()
  in
  Store.find store bundle_kind ~key:(key_of ~prefix ~gpus naive)

(** Compile and empirically select one version per target GPU.
    [measure] scores a candidate on a given machine (typically a
    simulator run with the intended input sizes). *)
let build ?(gpus = [ Gpcc_sim.Config.gtx8800; Gpcc_sim.Config.gtx280 ])
    ~(measure :
       Gpcc_sim.Config.t -> Gpcc_ast.Ast.kernel -> Gpcc_ast.Ast.launch -> float)
    (naive : Gpcc_ast.Ast.kernel) : bundle =
  let entries =
    List.filter_map
      (fun gpu ->
        let cands =
          Explore.search ~cfg:gpu naive ~measure:(measure gpu)
          |> Explore.distinct
        in
        match Explore.best cands with
        | Some chosen -> Some { gpu; chosen; alternatives = List.length cands }
        | None -> None)
      gpus
  in
  { kernel_name = naive.Gpcc_ast.Ast.k_name; entries }

(** [build], memoized through the artifact store: a warm run skips the
    entire per-hardware search. [prefix] must name the measurement
    context (workload, problem size) so two contexts never share a
    bundle. *)
let build_cached ?store ~(prefix : string)
    ?(gpus = [ Gpcc_sim.Config.gtx8800; Gpcc_sim.Config.gtx280 ])
    ~(measure :
       Gpcc_sim.Config.t -> Gpcc_ast.Ast.kernel -> Gpcc_ast.Ast.launch -> float)
    (naive : Gpcc_ast.Ast.kernel) : bundle =
  match load ?store ~prefix ~gpus naive with
  | Some b -> b
  | None ->
      let b = build ~gpus ~measure naive in
      save ?store ~prefix ~gpus naive b;
      b

(** The version selected for a GPU (by config name). *)
let pick (b : bundle) (gpu_name : string) : Compiler.result =
  match
    List.find_opt
      (fun e -> String.equal e.gpu.Gpcc_sim.Config.name gpu_name)
      b.entries
  with
  | Some e -> e.chosen.result
  | None ->
      raise
        (No_version
           (Printf.sprintf "no version of %s for GPU %s" b.kernel_name
              gpu_name))

let describe (b : bundle) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "kernel %s:\n" b.kernel_name);
  List.iter
    (fun e ->
      let l = e.chosen.result.launch in
      Buffer.add_string buf
        (Printf.sprintf
           "  %-8s -> %d threads/block, %d-way merge, grid (%d,%d) x block \
            (%d,%d)  [%d versions tried, %.1f GFLOPS]\n"
           e.gpu.Gpcc_sim.Config.name e.chosen.target_block_threads
           e.chosen.merge_degree l.grid_x l.grid_y l.block_x l.block_y
           e.alternatives e.chosen.score))
    b.entries;
  Buffer.contents buf

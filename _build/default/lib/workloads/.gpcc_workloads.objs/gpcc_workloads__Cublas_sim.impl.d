lib/workloads/cublas_sim.ml: Ast Gpcc_ast List Parser Printf String Typecheck

(** gpcc — the GPGPU optimizing compiler, as a command-line tool.

    Subcommands:
    - [compile FILE]: run the Figure-1 pipeline on a naive kernel and
      print the optimized kernel, the launch configuration, and the
      per-pass report;
    - [check FILE]: parse and type-check a kernel, report the coalescing
      verdict of every global access (Section 3.2's analysis);
    - [explore FILE]: generate the Section-4 design space, simulate every
      version, and print the scored table;
    - [deploy FILE]: select one optimized version per GPU (Section 4.2);
    - [bench WORKLOAD]: compile a built-in workload and report
      naive/optimized simulated performance;
    - [list]: list the built-in workloads (the paper's Table 1). *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let gpu_conv =
  let parse s =
    match Gpcc_sim.Config.by_name s with
    | Some c -> Ok c
    | None -> Error (`Msg (Printf.sprintf "unknown GPU %S (try GTX8800 or GTX280)" s))
  in
  let print fmt (c : Gpcc_sim.Config.t) = Format.fprintf fmt "%s" c.name in
  Arg.conv (parse, print)

let gpu_arg =
  Arg.(
    value
    & opt gpu_conv Gpcc_sim.Config.gtx280
    & info [ "g"; "gpu" ] ~docv:"GPU" ~doc:"Target GPU model (GTX8800 or GTX280).")

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Kernel source file.")

let jobs_arg =
  Arg.(
    value
    & opt int (Gpcc_core.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the design-space sweep (defaults to \
           \\$(b,GPCC_JOBS) or the recommended domain count).")

let handle_errors f =
  try f () with
  | Gpcc_ast.Lexer.Error (m, line) ->
      Printf.eprintf "lex error (line %d): %s\n" line m;
      exit 1
  | Gpcc_ast.Parser.Error (m, line) ->
      Printf.eprintf "parse error (line %d): %s\n" line m;
      exit 1
  | Gpcc_ast.Typecheck.Type_error m ->
      Printf.eprintf "type error: %s\n" m;
      exit 1
  | Gpcc_core.Compiler.Compile_error m ->
      Printf.eprintf "compile error: %s\n" m;
      exit 1

(* --- compile --- *)

let compile_cmd =
  let run cfg target degree verbose file =
    handle_errors (fun () ->
        let k = Gpcc_ast.Parser.kernel_of_string (read_file file) in
        let opts =
          {
            (Gpcc_core.Compiler.default_options ~cfg ()) with
            target_block_threads = target;
            merge_degree = degree;
          }
        in
        let r = Gpcc_core.Compiler.run ~opts k in
        if verbose then print_string (Gpcc_core.Compiler.report r);
        print_string (Gpcc_ast.Pp.kernel_to_string ~launch:r.launch r.kernel))
  in
  let target =
    Arg.(value & opt int 256 & info [ "t"; "threads" ] ~doc:"Target threads per block.")
  in
  let degree =
    Arg.(value & opt int 16 & info [ "m"; "merge" ] ~doc:"Thread-merge degree.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the per-pass report.")
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Optimize a naive kernel")
    Term.(const run $ gpu_arg $ target $ degree $ verbose $ file_arg)

(* --- check --- *)

let check_cmd =
  let run file =
    handle_errors (fun () ->
        let k = Gpcc_ast.Parser.kernel_of_string (read_file file) in
        Gpcc_ast.Typecheck.check k;
        match Gpcc_passes.Pass_util.initial_launch k with
        | None ->
            print_endline "type check: OK (no thread domain; access analysis skipped)"
        | Some launch ->
            print_endline "type check: OK";
            Gpcc_analysis.Coalesce_check.analyze_kernel ~launch k
            |> List.iter (fun a ->
                   print_endline ("  " ^ Gpcc_analysis.Coalesce_check.to_string a)))
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Type-check a kernel and report coalescing verdicts")
    Term.(const run $ file_arg)

(* --- explore --- *)

let explore_cmd =
  let run cfg jobs file =
    handle_errors (fun () ->
        let k = Gpcc_ast.Parser.kernel_of_string (read_file file) in
        (* score by static occupancy x inverse instruction estimate when no
           workload data is attached; kernel versions are still printed *)
        let measure kernel launch =
          let regs = Gpcc_analysis.Regcount.estimate kernel in
          let shmem = Gpcc_analysis.Regcount.shared_bytes kernel in
          let occ =
            Gpcc_sim.Occupancy.calc cfg ~regs_per_thread:regs
              ~shared_per_block:shmem
              ~threads_per_block:(Gpcc_ast.Ast.threads_per_block launch)
          in
          float_of_int occ.active_warps
        in
        let cands =
          Gpcc_core.Explore.search ~cfg ~jobs k ~measure
          |> Gpcc_core.Explore.distinct
        in
        Printf.printf "%-8s %-8s %-10s %-8s\n" "threads" "merge" "score" "launch";
        List.iter
          (fun (c : Gpcc_core.Explore.candidate) ->
            Printf.printf "%-8d %-8d %-10.1f (%d,%d)x(%d,%d)\n"
              c.target_block_threads c.merge_degree c.score
              c.result.launch.grid_x c.result.launch.grid_y
              c.result.launch.block_x c.result.launch.block_y)
          cands)
  in
  Cmd.v
    (Cmd.info "explore" ~doc:"Enumerate the design space of merge configurations")
    Term.(const run $ gpu_arg $ jobs_arg $ file_arg)

(* --- bench --- *)

let bench_cmd =
  let run cfg name size =
    handle_errors (fun () ->
        match Gpcc_workloads.Registry.find name with
        | None ->
            Printf.eprintf "unknown workload %s (see `gpcc list`)\n" name;
            exit 1
        | Some w ->
            let n = Option.value size ~default:w.bench_size in
            let k = Gpcc_workloads.Workload.parse w n in
            let nl = Option.get (Gpcc_passes.Pass_util.naive_launch k) in
            let tn = Gpcc_workloads.Workload.measure cfg w n k nl in
            let r = Gpcc_core.Compiler.run ~opts:(Gpcc_core.Compiler.default_options ~cfg ()) k in
            let topt = Gpcc_workloads.Workload.measure cfg w n r.kernel r.launch in
            (* flop-free kernels (transpose) report effective bandwidth *)
            let metric (t : Gpcc_sim.Timing.result) =
              if w.flops n > 0.0 then Printf.sprintf "%8.2f GFLOPS" t.gflops
              else
                Printf.sprintf "%8.2f GB/s"
                  (Gpcc_workloads.Workload.effective_bandwidth w n t)
            in
            Printf.printf "%s on %s, n=%d\n" w.name cfg.name n;
            Printf.printf "  naive:     %s (%s-bound)\n" (metric tn) tn.bound;
            Printf.printf "  optimized: %s (%s-bound)  speedup %.1fx\n"
              (metric topt) topt.bound
              (tn.time_ms /. Float.max 1e-9 topt.time_ms))
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")
  in
  let size_arg =
    Arg.(value & opt (some int) None & info [ "n"; "size" ] ~doc:"Problem size.")
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Simulate a built-in workload, naive vs optimized")
    Term.(const run $ gpu_arg $ name_arg $ size_arg)

(* --- deploy --- *)

let deploy_cmd =
  let run file =
    handle_errors (fun () ->
        let k = Gpcc_ast.Parser.kernel_of_string (read_file file) in
        (* static scoring (occupancy-based), as in explore: deployment
           with measured scoring is what `bench` and the library API do *)
        let measure cfg kernel launch =
          let regs = Gpcc_analysis.Regcount.estimate kernel in
          let shmem = Gpcc_analysis.Regcount.shared_bytes kernel in
          let occ =
            Gpcc_sim.Occupancy.calc cfg ~regs_per_thread:regs
              ~shared_per_block:shmem
              ~threads_per_block:(Gpcc_ast.Ast.threads_per_block launch)
          in
          float_of_int occ.active_warps
        in
        let b =
          Gpcc_core.Deploy.build
            ~gpus:
              [ Gpcc_sim.Config.gtx8800; Gpcc_sim.Config.gtx280;
                Gpcc_sim.Config.hd5870 ]
            ~measure k
        in
        print_string (Gpcc_core.Deploy.describe b))
  in
  Cmd.v
    (Cmd.info "deploy"
       ~doc:"Select one optimized version per GPU (Section 4.2)")
    Term.(const run $ file_arg)

(* --- list --- *)

let list_cmd =
  let run () =
    List.iter
      (fun (w : Gpcc_workloads.Workload.t) ->
        Printf.printf "%-12s %-45s sizes %s\n" w.name w.description
          (String.concat "," (List.map string_of_int w.sizes)))
      (Gpcc_workloads.Registry.all @ Gpcc_workloads.Registry.extras)
  in
  Cmd.v (Cmd.info "list" ~doc:"List built-in workloads") Term.(const run $ const ())

let () =
  let doc = "an optimizing compiler for naive GPGPU kernels (PLDI 2010 reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "gpcc" ~version:"1.0.0" ~doc)
          [ compile_cmd; check_cmd; explore_cmd; deploy_cmd; bench_cmd; list_cmd ]))

examples/quickstart.ml: Gpcc_ast Gpcc_core Gpcc_passes Gpcc_sim Option Printf

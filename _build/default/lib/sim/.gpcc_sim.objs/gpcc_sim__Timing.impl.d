lib/sim/timing.pp.ml: Config Float Gpcc_ast Occupancy Ppx_deriving_runtime Stats

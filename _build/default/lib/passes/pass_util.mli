(** Shared helpers for the optimization passes. *)

(** Outcome of one pass: the (possibly) transformed kernel and launch,
    plus a human-readable trace — the paper's understandable optimization
    process. *)
type outcome = {
  kernel : Gpcc_ast.Ast.kernel;
  launch : Gpcc_ast.Ast.launch;
  fired : bool;
  notes : string list;
}

val unchanged :
  ?notes:string list -> Gpcc_ast.Ast.kernel -> Gpcc_ast.Ast.launch -> outcome

val changed :
  ?notes:string list -> Gpcc_ast.Ast.kernel -> Gpcc_ast.Ast.launch -> outcome

val global_arrays : Gpcc_ast.Ast.kernel -> string list
val shared_arrays : Gpcc_ast.Ast.block -> string list
val used_names : Gpcc_ast.Ast.kernel -> string list
val fresh : Gpcc_ast.Ast.kernel -> string -> string
val fresh_many : Gpcc_ast.Ast.kernel -> string list -> string list

(** Replace syntactic occurrences of one expression by another. *)
val replace_expr :
  Gpcc_ast.Ast.expr -> Gpcc_ast.Ast.expr -> Gpcc_ast.Ast.block ->
  Gpcc_ast.Ast.block

val replace_expr_in :
  Gpcc_ast.Ast.expr -> Gpcc_ast.Ast.expr -> Gpcc_ast.Ast.expr ->
  Gpcc_ast.Ast.expr

(** Light constant folding / algebraic cleanup (sound and idempotent,
    property-tested) so emitted kernels read like the paper's examples. *)
val simplify_expr : Gpcc_ast.Ast.expr -> Gpcc_ast.Ast.expr

val simplify_block : Gpcc_ast.Ast.block -> Gpcc_ast.Ast.block

(** The thread domain the kernel's fine-grain work items cover, from the
    first output array's shape or the [__threads_x]/[__threads_y]
    pragmas. *)
val thread_domain : Gpcc_ast.Ast.kernel -> (int * int) option

(** The pipeline's starting launch: one half warp per block. *)
val initial_launch : Gpcc_ast.Ast.kernel -> Gpcc_ast.Ast.launch option

(** A typical hand-written launch for the naive kernel (the Figure 11
    baseline): 16x16 blocks for 2-D domains, 256-wide for 1-D. *)
val naive_launch : Gpcc_ast.Ast.kernel -> Gpcc_ast.Ast.launch option

lib/ast/lexer.pp.ml: List Printf String

(** SM occupancy: how many thread blocks fit on one streaming
    multiprocessor given their register, shared-memory and thread-count
    footprints (paper Section 2c, "balanced resource usage"). *)

type t = {
  blocks_per_sm : int;
  active_threads : int;
  active_warps : int;
  limited_by : string;
  reg_spill : bool;
      (** even a single block exceeds the register file: the compiler
          would spill to off-chip local memory *)
}
[@@deriving show { with_path = false }]

let calc (cfg : Config.t) ~(regs_per_thread : int) ~(shared_per_block : int)
    ~(threads_per_block : int) : t =
  let tpb = max 1 threads_per_block in
  let limit_threads = cfg.max_threads_per_sm / tpb in
  let limit_blocks = cfg.max_blocks_per_sm in
  let limit_shared =
    if shared_per_block <= 0 then cfg.max_blocks_per_sm
    else cfg.shared_bytes_per_sm / shared_per_block
  in
  let regs_per_block = regs_per_thread * tpb in
  let limit_regs =
    if regs_per_block <= 0 then cfg.max_blocks_per_sm
    else cfg.registers_per_sm / regs_per_block
  in
  let reg_spill = limit_regs = 0 in
  let blocks =
    max (if reg_spill then 1 else 0)
      (min (min limit_threads limit_blocks) (min limit_shared limit_regs))
  in
  let blocks = max blocks (if limit_threads > 0 && limit_shared > 0 then 0 else 0) in
  let blocks = if blocks = 0 then 1 else blocks in
  let limited_by =
    if reg_spill then "register-spill"
    else if blocks = limit_regs then "registers"
    else if blocks = limit_shared then "shared-memory"
    else if blocks = limit_threads then "threads"
    else "max-blocks"
  in
  {
    blocks_per_sm = blocks;
    active_threads = blocks * tpb;
    active_warps = blocks * ((tpb + cfg.warp_size - 1) / cfg.warp_size);
    limited_by;
    reg_spill;
  }

(** Pretty-printer: emits kernels as CUDA-style C source.

    Understandability of the optimized code is one of the paper's
    distinguishing features; the printer produces idiomatic CUDA with
    compound assignments and minimal parentheses, and its output parses
    back to an equal AST (property-tested). *)

val expr_to_string : Ast.expr -> string
val lvalue_to_string : Ast.lvalue -> string
val stmt_to_string : Ast.stmt -> string
val block_to_string : Ast.block -> string

(** Print a whole kernel (pragmas first); [launch] adds the grid/block
    comment the compiler reports alongside the optimized code. *)
val kernel_to_string : ?launch:Ast.launch -> Ast.kernel -> string

(** Non-blank source lines — regenerates Table 1's LOC column. *)
val loc_count : string -> int

lib/passes/vectorize_wide.pp.mli: Gpcc_ast Pass_util

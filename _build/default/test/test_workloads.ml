(** Workload-level tests: naive kernels match their CPU references, the
    Table-1 registry is complete, input generation is deterministic, and
    the CUBLAS/SDK comparator kernels compute correct results. *)

open Util

let test_registry_complete () =
  let names = List.map (fun w -> w.Gpcc_workloads.Workload.name)
      Gpcc_workloads.Registry.all
  in
  (* the paper's Table 1 order *)
  Alcotest.(check (list string)) "Table 1"
    [ "tmv"; "mm"; "mv"; "vv"; "rd"; "strsm"; "conv"; "tp"; "demosaic"; "imregionmax" ]
    names

let test_gen_deterministic () =
  let a = Gpcc_workloads.Workload.gen ~seed:3 100 in
  let b = Gpcc_workloads.Workload.gen ~seed:3 100 in
  let c = Gpcc_workloads.Workload.gen ~seed:4 100 in
  Alcotest.(check bool) "same seed same data" true (a = b);
  Alcotest.(check bool) "different seed differs" true (a <> c);
  Array.iter
    (fun v -> Alcotest.(check bool) "in [-1,1)" true (v >= -1.0 && v < 1.0))
    a

let test_naive_kernels_correct () =
  List.iter
    (fun (w : Gpcc_workloads.Workload.t) ->
      let n = w.test_size in
      let k = Gpcc_workloads.Workload.parse w n in
      let launch = Option.get (Gpcc_passes.Pass_util.naive_launch k) in
      match Gpcc_workloads.Workload.check cfg280 w n k launch with
      | () -> ()
      | exception Gpcc_workloads.Workload.Check_failed m ->
          Alcotest.failf "%s naive: %s" w.name m)
    (Gpcc_workloads.Registry.all @ Gpcc_workloads.Registry.extras)

let test_naive_loc_plausible () =
  (* Table 1 lists naive-kernel LOC around 3..27; ours should be in the
     same ballpark (kernel signature + body, no pragmas) *)
  List.iter
    (fun (w : Gpcc_workloads.Workload.t) ->
      let loc = Gpcc_workloads.Workload.naive_loc w in
      Alcotest.(check bool)
        (Printf.sprintf "%s loc=%d" w.name loc)
        true
        (loc >= 3 && loc <= 30))
    Gpcc_workloads.Registry.all

let test_cublas_comparators_correct () =
  List.iter
    (fun (c : Gpcc_workloads.Cublas_sim.comparator) ->
      let w = Gpcc_workloads.Registry.find_exn c.c_for in
      let n = max w.test_size 128 in
      let k = Gpcc_workloads.Cublas_sim.kernel c n in
      match Gpcc_workloads.Workload.check cfg280 w n k (c.c_launch n) with
      | () -> ()
      | exception Gpcc_workloads.Workload.Check_failed m ->
          Alcotest.failf "cublas-%s: %s" c.c_for m)
    Gpcc_workloads.Cublas_sim.all

let test_cublas_covers_figure13 () =
  let covered =
    List.map (fun c -> c.Gpcc_workloads.Cublas_sim.c_for)
      Gpcc_workloads.Cublas_sim.all
  in
  List.iter
    (fun (w : Gpcc_workloads.Workload.t) ->
      Alcotest.(check bool)
        (w.name ^ " comparator present iff in_cublas") w.in_cublas
        (List.mem w.name covered))
    Gpcc_workloads.Registry.all

let test_sdk_transpose_correct () =
  let w = Gpcc_workloads.Registry.find_exn "tp" in
  let n = w.test_size in
  let kp, lp = Gpcc_workloads.Sdk_transpose.prev n in
  Gpcc_workloads.Workload.check cfg280 w n kp lp;
  let kn, ln = Gpcc_workloads.Sdk_transpose.new_ n in
  Gpcc_workloads.Workload.check cfg280 w n kn ln

let test_rd_uses_global_sync () =
  let w = Gpcc_workloads.Registry.find_exn "rd" in
  let k = Gpcc_workloads.Workload.parse w w.test_size in
  Alcotest.(check bool) "grid barrier present" true
    (List.mem Gpcc_ast.Ast.Global_sync k.k_body)

let test_flops_positive () =
  List.iter
    (fun (w : Gpcc_workloads.Workload.t) ->
      if w.name <> "tp" then
        Alcotest.(check bool) (w.name ^ " flops") true (w.flops 128 > 0.0);
      Alcotest.(check bool) (w.name ^ " bytes") true (w.moved_bytes 128 > 0.0))
    Gpcc_workloads.Registry.all

let suite =
  let q n f = Alcotest.test_case n `Quick f in
  let s n f = Alcotest.test_case n `Slow f in
  ( "workloads",
    [
      q "registry matches Table 1" test_registry_complete;
      q "deterministic inputs" test_gen_deterministic;
      s "naive kernels correct" test_naive_kernels_correct;
      q "naive LOC plausible" test_naive_loc_plausible;
      s "cublas comparators correct" test_cublas_comparators_correct;
      q "figure-13 coverage" test_cublas_covers_figure13;
      s "sdk transpose correct" test_sdk_transpose_correct;
      q "rd uses the grid barrier" test_rd_uses_global_sync;
      q "operation counts" test_flops_positive;
    ] )

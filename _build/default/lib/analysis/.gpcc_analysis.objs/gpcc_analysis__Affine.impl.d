lib/analysis/affine.pp.ml: Ast Gpcc_ast List Option Ppx_deriving_runtime Printf String

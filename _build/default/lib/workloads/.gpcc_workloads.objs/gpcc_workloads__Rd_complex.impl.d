lib/workloads/rd_complex.ml: Array Float Printf Workload

lib/analysis/sharing.pp.ml: Affine Ast Coalesce_check Gpcc_ast List Ppx_deriving_runtime Rewrite String

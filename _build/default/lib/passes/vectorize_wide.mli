(** AMD-style aggressive vectorization (paper Section 3.1): group [width]
    neighboring work items of an element-wise 1-D kernel into one thread
    using float2/float4 loads and stores; the grid shrinks by [width].
    Strictly applicable (straight-line element-wise bodies); everything
    else is left to the NVIDIA-style pair vectorization. *)

val applicable : Gpcc_ast.Ast.kernel -> bool

val apply :
  ?width:int ->
  Gpcc_ast.Ast.kernel ->
  Gpcc_ast.Ast.launch ->
  Pass_util.outcome

test/test_compiler.ml: Alcotest Gpcc_core Gpcc_passes Gpcc_sim Gpcc_workloads List Option Printexc Printf Util

lib/passes/vectorize.pp.mli: Gpcc_ast Pass_util

lib/workloads/vv.ml: Array Printf Workload

(** The optimizing-compiler driver: the paper's Figure 1 pipeline.

    naive kernel
    -> vectorization of memory accesses          (Section 3.1)
    -> coalescing check & conversion             (Sections 3.2-3.3)
    -> data-sharing analysis                     (Section 3.4)
    -> thread-block merge / thread merge         (Section 3.5)
    -> partition-camping elimination             (Section 3.7)
    -> data prefetching                          (Section 3.6)
    -> optimized kernel + launch configuration

    Merge selection implements Section 3.5.3: sharing caused by a
    global-to-shared access prefers thread-block merge (shared-memory
    reuse); sharing caused by a global-to-register access prefers thread
    merge (register reuse); and blocks that end up with too few threads
    are grown by thread-block merge even without sharing.

    Note on ordering: the paper runs prefetching before partition-camping
    elimination; we run camping elimination first because the 1-D
    address-offset rotation introduces a computed index that prefetching
    must not advance past the array end. Prefetching decisions are
    unaffected (its occupancy rule fires on register pressure, which the
    rotation does not change). *)

open Gpcc_ast
open Gpcc_passes

type options = {
  cfg : Gpcc_sim.Config.t;
  target_block_threads : int;  (** 128 / 256 / 512 (Section 4.1) *)
  merge_degree : int;  (** threads merged into one: 4 / 8 / 16 / 32 *)
  enable_vectorize : bool;
  enable_coalesce : bool;
  enable_merge : bool;
  enable_prefetch : bool;
  enable_partition : bool;
  verify : bool;  (** translation validation after every fired pass *)
}

let default_options ?(cfg = Gpcc_sim.Config.gtx280) () =
  {
    cfg;
    target_block_threads = 256;
    merge_degree = 16;
    enable_vectorize = true;
    enable_coalesce = true;
    enable_merge = true;
    enable_prefetch = true;
    enable_partition = true;
    verify = true;
  }

type step = {
  step_name : string;
  fired : bool;
  notes : string list;
  kernel_after : Ast.kernel;
  launch_after : Ast.launch;
  diagnostics : Gpcc_analysis.Verify.diagnostic list;
}

type result = {
  kernel : Ast.kernel;
  launch : Ast.launch;
  steps : step list;
}

let diagnostics (r : result) : Gpcc_analysis.Verify.diagnostic list =
  List.concat_map (fun s -> s.diagnostics) r.steps

exception Compile_error of string

let validation_prefix = "translation validation"

let verifier_rejected = function
  | Compile_error m ->
      String.length m >= String.length validation_prefix
      && String.sub m 0 (String.length validation_prefix) = validation_prefix
  | _ -> false

(* [Verify.check] is pure in the kernel + launch, and [Explore] compiles
   many configurations whose pipelines revisit identical intermediate
   kernels — memoize per worker domain (a shared table would need a
   lock) keyed by the printed kernel digest. *)
let verify_memo : (string, Gpcc_analysis.Verify.diagnostic list) Hashtbl.t
    Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let verify_kernel (k : Ast.kernel) (launch : Ast.launch) :
    Gpcc_analysis.Verify.diagnostic list =
  let memo = Domain.DLS.get verify_memo in
  let key = Digest.string (Pp.kernel_to_string ~launch k) in
  match Hashtbl.find_opt memo key with
  | Some ds -> ds
  | None ->
      let ds = Gpcc_analysis.Verify.check ~launch k in
      if Hashtbl.length memo > 512 then Hashtbl.reset memo;
      Hashtbl.add memo key ds;
      ds

(** Validate a pass result; errors blame [name]. Returns the full
    diagnostic list (warnings included) for the step record. *)
let validate (opts : options) name (k : Ast.kernel) (launch : Ast.launch) :
    Gpcc_analysis.Verify.diagnostic list =
  if not opts.verify then []
  else begin
    let ds = verify_kernel k launch in
    (match Gpcc_analysis.Verify.errors ds with
    | [] -> ()
    | errs ->
        raise
          (Compile_error
             (Printf.sprintf "%s failed after pass %S: %s" validation_prefix
                name
                (String.concat "; "
                   (List.map Gpcc_analysis.Verify.to_string errs)))));
    ds
  end

let record opts steps name (o : Pass_util.outcome) =
  let diagnostics =
    if o.fired then validate opts name o.kernel o.launch else []
  in
  steps :=
    {
      step_name = name;
      fired = o.fired;
      notes = o.notes;
      kernel_after = o.kernel;
      launch_after = o.launch;
      diagnostics;
    }
    :: !steps

(** The merge phase: pick merges per the Section 3.5.3 rules and the
    Section 4.1 thread-count targets. *)
let merge_phase (opts : options) (k : Ast.kernel) (launch : Ast.launch)
    (steps : step list ref) : Ast.kernel * Ast.launch =
  let sharing = Gpcc_analysis.Sharing.analyze ~launch k in
  let share_y_g2r =
    List.exists
      (fun s -> s.Gpcc_analysis.Sharing.share_y && s.role = Gpcc_analysis.Sharing.G2R)
      sharing
  in
  let share_y_g2s =
    List.exists
      (fun s -> s.Gpcc_analysis.Sharing.share_y && s.role = Gpcc_analysis.Sharing.G2S)
      sharing
  in
  let share_x_any =
    List.exists (fun s -> s.Gpcc_analysis.Sharing.share_x) sharing
  in
  let k = ref k and launch = ref launch in
  (* 1. thread-block merge along X: grow the block toward the target
     thread count; motivated by G2S X-sharing, and used even without
     sharing just to have enough threads per block. *)
  let bm = opts.target_block_threads / max 1 (!launch.block_x * !launch.block_y) in
  let block_merge_fired =
    if bm > 1 then begin
      let o = Merge.block_merge_x !k !launch bm in
      record opts steps (Printf.sprintf "thread-block merge X x%d" bm) o;
      k := o.kernel;
      launch := o.launch;
      o.fired
    end
    else true
  in
  (* 2. when block merge was blocked (per-sub-block staging, as in mv) but
     X-sharing exists, fall back to thread merge along X (register and
     shared reuse across the merged threads). *)
  if (not block_merge_fired) && share_x_any then begin
    let o = Merge.thread_merge Merge.X !k !launch opts.merge_degree in
    record opts steps
      (Printf.sprintf "thread merge X x%d (block merge blocked)"
         opts.merge_degree)
      o;
    k := o.kernel;
    launch := o.launch
  end;
  (* 3. Y-direction sharing: G2R prefers thread merge (paper's mm); G2S
     along Y would prefer a block merge, which our block merge does not
     implement along Y — thread merge still captures the reuse through
     replicated stagings, so it is used for both. *)
  if share_y_g2r || share_y_g2s then begin
    let o = Merge.thread_merge Merge.Y !k !launch opts.merge_degree in
    record opts steps (Printf.sprintf "thread merge Y x%d" opts.merge_degree) o;
    k := o.kernel;
    launch := o.launch
  end
  else if !launch.grid_y = 1 && !launch.grid_x > 1 && block_merge_fired then begin
    (* 1-D kernels without Y direction: give each thread more work along X
       (amortizes addressing and loop overhead; registers reused across
       the merged work items). *)
    let deg = min opts.merge_degree !launch.grid_x in
    if deg > 1 then begin
      let o = Merge.thread_merge Merge.X !k !launch deg in
      record opts steps (Printf.sprintf "thread merge X x%d (1-D)" deg) o;
      k := o.kernel;
      launch := o.launch
    end
  end;
  (!k, !launch)

(** Run the full pipeline on a parsed naive kernel. *)
let run ?(opts = default_options ()) (naive : Ast.kernel) : result =
  Typecheck.check naive;
  let launch =
    match Pass_util.initial_launch naive with
    | Some l -> l
    | None ->
        raise
          (Compile_error
             "cannot derive the thread domain: give an output array or \
              #pragma gpcc dim __threads_x/__threads_y")
  in
  ignore (validate opts "input" naive launch);
  let steps = ref [] in
  let k = ref naive and l = ref launch in
  let apply name enabled f =
    if enabled then begin
      let o : Pass_util.outcome = f !k !l in
      record opts steps name o;
      k := o.kernel;
      l := o.launch
    end
  in
  (* AMD targets vectorize aggressively, absorbing neighboring work items
     into float4/float2 accesses (Section 3.1) before anything else *)
  if opts.enable_vectorize && opts.cfg.Gpcc_sim.Config.prefer_wide_vectors
  then begin
    let width = if !l.grid_x mod 4 = 0 then 4 else 2 in
    apply "wide vectorization (AMD)" true (Vectorize_wide.apply ~width)
  end;
  apply "vectorization" opts.enable_vectorize Vectorize.apply;
  apply "memory coalescing" opts.enable_coalesce Coalesce.apply;
  if opts.enable_merge then begin
    let k', l' = merge_phase opts !k !l steps in
    k := k';
    l := l'
  end;
  apply "invariant hoisting" opts.enable_merge Licm.apply;
  apply "partition-camping elimination" opts.enable_partition
    (Partition_camp.apply ~cfg:opts.cfg);
  apply "data prefetching" opts.enable_prefetch (Prefetch.apply ~cfg:opts.cfg);
  (match Typecheck.check_result !k with
  | Ok () -> ()
  | Error m -> raise (Compile_error ("internal: optimized kernel ill-typed: " ^ m)));
  { kernel = !k; launch = !l; steps = List.rev !steps }

(** Cumulative pipeline prefixes, for the paper's Figure 12 (the effect of
    each optimization step). Returns [(label, kernel, launch)] per stage,
    starting from the naive kernel with its natural hand-written launch. *)
let staged ?(cfg = Gpcc_sim.Config.gtx280) ?(target_block_threads = 256)
    ?(merge_degree = 16) (naive : Ast.kernel) :
    (string * Ast.kernel * Ast.launch) list =
  let base = default_options ~cfg () in
  let base = { base with target_block_threads; merge_degree } in
  let configs =
    [
      ( "naive",
        {
          base with
          enable_vectorize = false;
          enable_coalesce = false;
          enable_merge = false;
          enable_prefetch = false;
          enable_partition = false;
        } );
      ( "+vectorization",
        {
          base with
          enable_coalesce = false;
          enable_merge = false;
          enable_prefetch = false;
          enable_partition = false;
        } );
      ( "+coalescing",
        {
          base with
          enable_merge = false;
          enable_prefetch = false;
          enable_partition = false;
        } );
      ( "+thread/block merge",
        { base with enable_prefetch = false; enable_partition = false } );
      ("+prefetching", { base with enable_partition = false });
      ("+partition camping elim.", base);
    ]
  in
  List.map
    (fun (label, opts) ->
      let r = run ~opts naive in
      (* a stage whose passes all declined leaves the kernel untouched;
         measure it at the hand-written naive launch, not at the
         pipeline's internal half-warp starting shape *)
      let launch =
        if Ast.equal_kernel r.kernel naive then
          Option.value (Pass_util.naive_launch naive) ~default:r.launch
        else r.launch
      in
      (label, r.kernel, launch))
    configs

let report (r : result) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "[%s] %s\n" (if s.fired then "*" else " ") s.step_name);
      List.iter
        (fun n -> Buffer.add_string buf (Printf.sprintf "      %s\n" n))
        s.notes)
    r.steps;
  Buffer.add_string buf
    (Printf.sprintf "launch: grid (%d, %d), block (%d, %d)\n" r.launch.grid_x
       r.launch.grid_y r.launch.block_x r.launch.block_y);
  Buffer.contents buf

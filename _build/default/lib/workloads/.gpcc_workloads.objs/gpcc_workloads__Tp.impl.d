lib/workloads/tp.ml: Array Printf Workload

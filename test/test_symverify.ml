(** Tests for the two-symbolic-thread verifier: differential agreement
    with the concrete {!Gpcc_analysis.Verify} tier over the registry
    kernels and a sampled launch grid, exact rule ids on negative
    kernels, a seeded property test over randomized affine kernels, the
    [Proved_when] constraint pruning Explore candidates, the parametric
    verdict's on-disk round trip, and the [verify-incomplete] warning
    when the concrete race check truncates its lane enumeration. *)

open Gpcc_ast
open Util
module V = Gpcc_analysis.Verify
module SV = Gpcc_analysis.Symverify
module Cache = Gpcc_analysis.Analysis_cache
module Registry = Gpcc_workloads.Registry
module Workload = Gpcc_workloads.Workload

(* Directional agreement: a symbolic [`Clean] must be confirmed by the
   concrete tier, and a symbolic [`Errors] must name rules the concrete
   tier also reports. [`Unknown] always falls back concretely, so it
   cannot disagree. *)
let check_agreement name (k : Ast.kernel) (res : SV.result)
    (launch : Ast.launch) =
  let where =
    Printf.sprintf "%s at (%d,%d)x(%d,%d)" name launch.Ast.grid_x
      launch.grid_y launch.block_x launch.block_y
  in
  match SV.decide res launch with
  | `Unknown _ -> ()
  | `Clean ->
      let conc = V.errors (V.check ~launch k) in
      if conc <> [] then
        Alcotest.failf "%s: symbolic Clean but concrete rejects: %s" where
          (V.to_string (List.hd conc))
  | `Errors ds ->
      let conc = V.errors (V.check ~launch k) in
      if conc = [] then
        Alcotest.failf "%s: symbolic violation fires but concrete is clean"
          where;
      let crules = List.map (fun (d : V.diagnostic) -> d.rule) conc in
      List.iter
        (fun (d : V.diagnostic) ->
          if not (List.mem d.rule crules) then
            Alcotest.failf "%s: symbolic rule %s not reported concretely"
              where d.rule)
        ds

(* --- registry kernels x sampled config grid, plus the proof floor --- *)

let launch_grid (l : Ast.launch) : Ast.launch list =
  List.concat_map
    (fun (mbx, mby) ->
      List.map
        (fun (mgx, mgy) ->
          {
            Ast.grid_x = l.grid_x * mgx;
            grid_y = l.grid_y * mgy;
            block_x = l.block_x * mbx;
            block_y = l.block_y * mby;
          })
        [ (1, 1); (2, 1); (1, 2) ])
    [ (1, 1); (2, 1); (1, 2); (4, 1) ]
  |> List.filter (fun l -> Ast.threads_per_block l <= 512)

let test_registry_differential () =
  let total = ref 0 and proved = ref 0 in
  List.iter
    (fun (w : Workload.t) ->
      let k = Workload.parse w w.test_size in
      let res = SV.check k in
      match Gpcc_passes.Pass_util.naive_launch k with
      | None -> ()
      | Some naive ->
          incr total;
          (match SV.decide res naive with `Clean -> incr proved | _ -> ());
          List.iter (check_agreement w.name k res) (launch_grid naive))
    Registry.all;
  if !proved * 3 < !total * 2 then
    Alcotest.failf
      "symbolic tier proved only %d of %d naive registry kernels (floor: 8 \
       of 12)"
      !proved !total

(* --- negative kernels: the defect must survive with its rule id --- *)

let negative_cases =
  [
    ( "missing sync",
      V.rule_race_shared,
      {|#pragma gpcc dim n 64
#pragma gpcc output c
__kernel void racy(float a[64], float c[64], int n) {
  __shared__ float s[16];
  s[tidx] = a[idx];
  c[idx] = s[(tidx + 1) % 16];
}|}
    );
    ( "divergent barrier",
      V.rule_barrier_divergence,
      {|#pragma gpcc dim n 64
#pragma gpcc output c
__kernel void divb(float a[64], float c[64], int n) {
  __shared__ float s[16];
  s[tidx] = a[idx];
  if (tidx < 8) {
    __syncthreads();
  }
  c[idx] = s[tidx];
}|}
    );
    ( "global overflow",
      V.rule_oob_global,
      {|#pragma gpcc dim n 64
#pragma gpcc output c
__kernel void oobg(float a[64], float c[64], int n) {
  c[idx + 1] = a[idx];
}|}
    );
    ( "shared overflow",
      V.rule_oob_shared,
      {|#pragma gpcc dim n 64
#pragma gpcc output c
__kernel void oobs(float a[64], float c[64], int n) {
  __shared__ float s[8];
  s[tidx] = a[idx];
  __syncthreads();
  c[idx] = s[tidx % 8];
}|}
    );
    ( "global write collision",
      V.rule_race_global,
      {|#pragma gpcc dim n 64
#pragma gpcc output c
__kernel void gcol(float a[64], float c[64], int n) {
  c[idx / 2] = a[idx];
}|}
    );
  ]

let test_negative_kernels () =
  List.iter
    (fun (name, rule, src) ->
      let k = parse_kernel src in
      let launch = Option.get (Gpcc_passes.Pass_util.naive_launch k) in
      let res = SV.check k in
      match SV.decide res launch with
      | `Clean ->
          Alcotest.failf "%s: symbolic proved a defective kernel clean" name
      | `Errors ds ->
          if
            not (List.exists (fun (d : V.diagnostic) -> d.rule = rule) ds)
          then
            Alcotest.failf "%s: symbolic error decision lacks rule %s" name
              rule
      | `Unknown _ ->
          (* transparent fallback: the concrete tier must still report
             the defect under the expected rule *)
          let ds = V.errors (V.check ~launch k) in
          if
            not (List.exists (fun (d : V.diagnostic) -> d.rule = rule) ds)
          then
            Alcotest.failf "%s: concrete fallback missed rule %s" name rule)
    negative_cases

(* --- property test: randomized affine kernels, seeded --- *)

let test_random_affine_agreement () =
  Random.init 42;
  for i = 0 to 39 do
    let c1 = Random.int 5 in
    let c0 = Random.int 17 in
    let guard =
      match Random.int 3 with 0 -> None | 1 -> Some 8 | _ -> Some 16
    in
    let sync = Random.bool () in
    let store = Printf.sprintf "s[(%d * tidx + %d) %% 64] = a[idx];" c1 c0 in
    let store =
      match guard with
      | None -> store
      | Some g -> Printf.sprintf "if (tidx < %d) { %s }" g store
    in
    let src =
      Printf.sprintf
        {|#pragma gpcc dim n 64
#pragma gpcc output c
__kernel void k%d(float a[64], float c[64], int n) {
  __shared__ float s[64];
  %s
  %s
  c[idx] = s[tidx %% 64];
}|}
        i store
        (if sync then "__syncthreads();" else "")
    in
    let k = parse_kernel src in
    let res = SV.check k in
    List.iter
      (fun (gx, bx) ->
        check_agreement
          (Printf.sprintf "affine#%d" i)
          k res
          { Ast.grid_x = gx; grid_y = 1; block_x = bx; block_y = 1 })
      [ (1, 16); (1, 64); (2, 32); (4, 16); (1, 512); (2, 64) ]
  done

(* --- Proved_when violations prune Explore's candidate set --- *)

let modwrap_src =
  (* each lane owns slot [lane mod 64]: clean up to 64 threads/block,
     racy beyond -- the violation is parametric in the launch *)
  {|#pragma gpcc dim n 64
#pragma gpcc output c
__kernel void modk(float a[64][64], float c[64][64], int n) {
  __shared__ float s[64];
  s[(tidx + bdimx * tidy) % 64] = a[idy][idx];
  __syncthreads();
  c[idy][idx] = s[(tidx + bdimx * tidy) % 64];
}|}

let test_proved_when_excludes_configs () =
  let k = parse_kernel modwrap_src in
  let res = SV.check k in
  (match SV.excludes_threads res ~threads:64 with
  | None -> ()
  | Some rule ->
      Alcotest.failf "64-thread blocks wrongly excluded under %s" rule);
  (match SV.excludes_threads res ~threads:256 with
  | Some rule ->
      Alcotest.(check string) "exclusion rule" V.rule_race_shared rule
  | None -> Alcotest.fail "256-thread blocks must be excluded");
  let cands, failures =
    Gpcc_core.Explore.search_with_failures ~cfg:Util.cfg280
      ~block_targets:[ 64; 256 ] ~merge_degrees:[ 1 ] ~jobs:1 k
      ~measure:(fun _ _ -> 1.0)
  in
  let excluded =
    List.filter
      (fun (f : Gpcc_core.Explore.failure) ->
        f.failed_target = 256 && f.failed_stage = `Verify)
      failures
  in
  Alcotest.(check bool)
    "256-thread config rejected at the Verify stage" true (excluded <> []);
  Alcotest.(check bool)
    "64-thread config survives into the candidate set" true
    (List.exists
       (fun (c : Gpcc_core.Explore.candidate) -> c.target_block_threads = 64)
       cands)

(* --- parametric verdicts survive the on-disk round trip --- *)

let test_pverdict_disk_round_trip () =
  let w = Registry.find_exn "tmv" in
  let k = Workload.parse w w.test_size in
  let fresh = SV.check k in
  let r1 = Cache.symbolic_result (Cache.create ()) k in
  let r2 = Cache.symbolic_result (Cache.create ()) k in
  Alcotest.(check bool)
    "first instance matches Symverify.check" true (r1 = fresh);
  Alcotest.(check bool) "disk round trip is lossless" true (r2 = fresh)

let test_pverdict_disk_corruption () =
  let w = Registry.find_exn "vv" in
  let k = Workload.parse w w.test_size in
  let fresh = SV.check k in
  let r1 = Cache.symbolic_result (Cache.create ()) k in
  Alcotest.(check bool) "baseline verdict" true (r1 = fresh);
  (* pverdicts live in the sharded artifact store, keyed by the full
     kernel text; find this kernel's entry by its stored key *)
  let root = Gpcc_util.Store.default_root () in
  let full = Pp.kernel_to_string k in
  let read_file p =
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let contains ~needle hay =
    let n = String.length needle and h = String.length hay in
    let rec scan i =
      i + n <= h && (String.equal (String.sub hay i n) needle || scan (i + 1))
    in
    scan 0
  in
  let path =
    Sys.readdir root |> Array.to_list
    |> List.concat_map (fun shard ->
           let d = Filename.concat root shard in
           if Sys.is_directory d then
             Sys.readdir d |> Array.to_list
             |> List.filter (fun f -> Filename.extension f = ".pverdict")
             |> List.map (Filename.concat d)
           else [])
    |> List.filter (fun p -> contains ~needle:full (read_file p))
    |> function
    | [ p ] -> p
    | ps ->
        Alcotest.failf "expected exactly one pverdict entry, got %d"
          (List.length ps)
  in
  Alcotest.(check bool) "pverdict file exists" true (Sys.file_exists path);
  let overwrite content =
    let oc = open_out_bin path in
    output_string oc content;
    close_out oc
  in
  List.iter
    (fun (what, content) ->
      overwrite content;
      let r = Cache.symbolic_result (Cache.create ()) k in
      Alcotest.(check bool) (what ^ ": verdict recomputed") true (r = fresh);
      let r2 = Cache.symbolic_result (Cache.create ()) k in
      Alcotest.(check bool)
        (what ^ ": rewritten file round-trips") true (r2 = fresh))
    [
      ("empty file", "");
      ("wrong header", "not-a-verdict\ngarbage");
      ("truncated payload", "gpcc-symverify-v1\n\000\000");
    ]

(* --- the concrete tier flags its own truncated race check --- *)

let test_verify_incomplete_warning () =
  let k =
    parse_kernel
      {|#pragma gpcc dim n 64
#pragma gpcc output c
__kernel void wide(float a[64], float c[64], int n) {
  __shared__ float s[16];
  s[tidx % 16] = a[idx % 64];
  __syncthreads();
  c[idx % 64] = s[tidx % 16];
}|}
  in
  let wide = { Ast.grid_x = 1; grid_y = 1; block_x = 1024; block_y = 1 } in
  let ds = V.check ~launch:wide k in
  Alcotest.(check bool)
    "truncated enumeration is flagged" true
    (List.exists
       (fun (d : V.diagnostic) ->
         d.rule = V.rule_verify_incomplete && d.severity = V.Warning)
       ds);
  let narrow = { Ast.grid_x = 4; grid_y = 1; block_x = 16; block_y = 1 } in
  let ds = V.check ~launch:narrow k in
  Alcotest.(check bool)
    "full enumeration stays silent" true
    (not
       (List.exists
          (fun (d : V.diagnostic) -> d.rule = V.rule_verify_incomplete)
          ds))

let suite =
  ( "symverify",
    [
      Alcotest.test_case "registry differential gate" `Slow
        test_registry_differential;
      Alcotest.test_case "negative kernels keep rule ids" `Quick
        test_negative_kernels;
      Alcotest.test_case "random affine agreement" `Slow
        test_random_affine_agreement;
      Alcotest.test_case "Proved_when prunes explore configs" `Quick
        test_proved_when_excludes_configs;
      Alcotest.test_case "parametric verdicts: disk round trip" `Quick
        test_pverdict_disk_round_trip;
      Alcotest.test_case "parametric verdicts: corrupt files recovered"
        `Quick test_pverdict_disk_corruption;
      Alcotest.test_case "verify-incomplete warning" `Quick
        test_verify_incomplete_warning;
    ] )

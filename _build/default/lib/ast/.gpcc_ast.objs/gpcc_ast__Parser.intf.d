lib/ast/parser.pp.mli: Ast

(** Lexer, parser and pretty-printer tests, including a QCheck
    print-parse round trip on randomly generated expressions. *)

open Gpcc_ast
open Util

let test_lex_tokens () =
  let toks = Lexer.tokenize "for (int i = 0; i < 16; i++) x += 2.5f;" in
  let kinds =
    List.map
      (fun (t, _) ->
        match t with
        | Lexer.KW s -> "kw:" ^ s
        | IDENT s -> "id:" ^ s
        | INT n -> "int:" ^ string_of_int n
        | FLOAT _ -> "float"
        | PUNCT p -> p
        | PRAGMA _ -> "pragma"
        | EOF -> "eof")
      toks
  in
  Alcotest.(check (list string))
    "token stream"
    [
      "kw:for"; "("; "kw:int"; "id:i"; "="; "int:0"; ";"; "id:i"; "<";
      "int:16"; ";"; "id:i"; "++"; ")"; "id:x"; "+="; "float"; ";"; "eof";
    ]
    kinds

let test_lex_comments () =
  let toks = Lexer.tokenize "a // line\n/* block\n comment */ b" in
  Alcotest.(check int) "two idents + eof" 3 (List.length toks)

let test_lex_line_numbers () =
  let toks = Lexer.tokenize "a\nb\n\nc" in
  let lines = List.map snd toks in
  Alcotest.(check (list int)) "line numbers" [ 1; 2; 4; 4 ] lines

let test_lex_pragma () =
  match Lexer.tokenize "#pragma gpcc dim w 42\nx" with
  | (Lexer.PRAGMA [ "dim"; "w"; "42" ], 1) :: _ -> ()
  | _ -> Alcotest.fail "pragma not lexed"

let test_lex_errors () =
  Alcotest.check_raises "bad char" (Lexer.Error ("unexpected character @", 1))
    (fun () -> ignore (Lexer.tokenize "@"));
  (match Lexer.tokenize "/* unterminated" with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail "unterminated comment accepted")

let test_expr_precedence () =
  check_expr "mul binds tighter"
    Ast.(Binop (Add, Var "a", Binop (Mul, Var "b", Var "c")))
    (expr "a + b * c");
  check_expr "parens override"
    Ast.(Binop (Mul, Binop (Add, Var "a", Var "b"), Var "c"))
    (expr "(a + b) * c");
  check_expr "comparison below arithmetic"
    Ast.(Binop (Lt, Binop (Add, Var "a", Int_lit 1), Var "b"))
    (expr "a + 1 < b");
  check_expr "and/or nesting"
    Ast.(Binop (Or, Binop (And, Var "a", Var "b"), Var "c"))
    (expr "a && b || c")

let test_expr_builtins () =
  check_expr "idx builtin" (Builtin Ast.Idx) (expr "idx");
  check_expr "tidy builtin" (Builtin Ast.Tidy) (expr "tidy");
  check_expr "not a builtin" (Var "idz") (expr "idz")

let test_expr_postfix () =
  check_expr "multi-dim index"
    (Index ("a", [ Builtin Ast.Idy; Var "i" ]))
    (expr "a[idy][i]");
  check_expr "vector field" (Field (Var "v", Ast.FY)) (expr "v.y");
  check_expr "call" (Call ("sqrtf", [ Var "x" ])) (expr "sqrtf(x)");
  check_expr "ternary"
    (Select (Binop (Gt, Var "a", Var "b"), Var "a", Var "b"))
    (expr "a > b ? a : b")

let test_expr_unary () =
  check_expr "negation" (Unop (Neg, Var "x")) (expr "-x");
  check_expr "double negative via sub"
    (Binop (Sub, Var "a", Unop (Neg, Var "b")))
    (expr "a - -b")

let mm_src =
  {|#pragma gpcc dim w 64
#pragma gpcc output c
__kernel void mm(float a[64][64], float b[64][64], float c[64][64], int w) {
  float sum = 0;
  for (int i = 0; i < w; i++)
    sum += a[idy][i] * b[i][idx];
  c[idy][idx] = sum;
}
|}

let test_parse_kernel () =
  let k = parse_kernel mm_src in
  Alcotest.(check string) "name" "mm" k.k_name;
  Alcotest.(check int) "params" 4 (List.length k.k_params);
  Alcotest.(check (list (pair string int))) "sizes" [ ("w", 64) ] k.k_sizes;
  Alcotest.(check (list string)) "outputs" [ "c" ] k.k_output;
  match k.k_body with
  | [ Decl _; For l; Assign _ ] ->
      Alcotest.(check string) "loop var" "i" l.l_var
  | _ -> Alcotest.fail "unexpected body shape"

let test_parse_roundtrip_kernel () =
  let k = parse_kernel mm_src in
  let printed = Pp.kernel_to_string k in
  let k2 = parse_kernel printed in
  Alcotest.(check bool) "kernel round trip" true (Ast.equal_kernel k k2)

let test_parse_shared_decl () =
  let k =
    parse_kernel
      {|__kernel void f(float a[16], float o[16]) {
        __shared__ float s[16];
        s[tidx] = a[idx];
        __syncthreads();
        o[idx] = s[tidx];
      }|}
  in
  match k.k_body with
  | Decl { d_ty = Array { space = Shared; dims = [ 16 ]; _ }; _ } :: _ -> ()
  | _ -> Alcotest.fail "shared decl not parsed"

let test_parse_compound_assign () =
  let k =
    parse_kernel
      {|__kernel void f(float o[16]) {
        float x = 1;
        x *= 3;
        x -= 2;
        x /= 2;
        o[idx] = x;
      }|}
  in
  match k.k_body with
  | [ _; Assign (_, Binop (Ast.Mul, _, _)); Assign (_, Binop (Ast.Sub, _, _));
      Assign (_, Binop (Ast.Div, _, _)); _ ] ->
      ()
  | _ -> Alcotest.fail "compound assignment sugar"

let test_parse_errors () =
  let bad src =
    match Parser.kernel_of_string src with
    | exception Parser.Error _ -> ()
    | exception Lexer.Error _ -> ()
    | _ -> Alcotest.failf "accepted bad input: %s" src
  in
  bad "__kernel void f( {";
  bad "__kernel void f() { for (int i = 0; j < 2; i++) x = 1; }";
  bad "__kernel void f() { 1 = x; }";
  bad "__kernel void f() { x = ; }";
  bad "#pragma gpcc dim w\n__kernel void f() { }";
  bad "__kernel void f() { if (x) { y = 1; }"

let test_parse_global_sync () =
  let k =
    parse_kernel
      {|__kernel void f(float o[16]) {
        o[idx] = 1;
        __global_sync();
        o[idx] = 2;
      }|}
  in
  Alcotest.(check bool) "has global sync" true
    (List.mem Ast.Global_sync k.k_body)

(* --- printer --- *)

let test_print_compound () =
  let s = Pp.stmt_to_string (Ast.accum (Lvar "sum") (Var "x")) in
  Alcotest.(check string) "prints +=" "sum += x;\n" s

let test_print_minimal_parens () =
  Alcotest.(check string)
    "no redundant parens" "a + b * c"
    (Pp.expr_to_string (expr "a + b * c"));
  Alcotest.(check string)
    "needed parens kept" "(a + b) * c"
    (Pp.expr_to_string (expr "(a + b) * c"));
  Alcotest.(check string)
    "sub assoc" "a - (b - c)"
    (Pp.expr_to_string (expr "a - (b - c)"))

let test_print_float_lit () =
  Alcotest.(check string) "integral float" "2.0f" (Pp.expr_to_string (Float_lit 2.0));
  Alcotest.(check string) "fraction" "0.25f" (Pp.expr_to_string (Float_lit 0.25))

let test_loc_count () =
  Alcotest.(check int) "loc of mm naive body" 8 (Pp.loc_count mm_src)

(* --- QCheck round trip --- *)

let gen_expr : Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun n -> Ast.Int_lit n) (int_range 0 100);
        map (fun v -> Ast.Var v) (oneofl [ "x"; "y"; "z" ]);
        oneofl
          [
            Ast.Builtin Ast.Idx; Builtin Ast.Idy; Builtin Ast.Tidx;
            Builtin Ast.Bidx;
          ];
        map (fun f -> Ast.Float_lit f) (map float_of_int (int_range 0 50));
      ]
  in
  let op =
    oneofl
      [ Ast.Add; Sub; Mul; Div; Mod; Lt; Le; Gt; Ge; Eq; Ne; And; Or ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [
            (2, leaf);
            ( 3,
              map3
                (fun o a b -> Ast.Binop (o, a, b))
                op (self (depth - 1)) (self (depth - 1)) );
            (1, map (fun a -> Ast.Unop (Neg, a)) (self (depth - 1)));
            ( 1,
              map2
                (fun a b -> Ast.Index ("arr", [ a; b ]))
                (self (depth - 1)) (self (depth - 1)) );
            ( 1,
              map3
                (fun c a b -> Ast.Select (c, a, b))
                (self (depth - 1)) (self (depth - 1)) (self (depth - 1)) );
          ])
    4

let qcheck_roundtrip =
  QCheck.Test.make ~count:500 ~name:"print/parse round trip"
    (QCheck.make gen_expr ~print:Pp.expr_to_string)
    (fun e ->
      let printed = Pp.expr_to_string e in
      match Parser.expr_of_string printed with
      | e2 -> Ast.equal_expr e e2
      | exception _ -> false)

let suite =
  let t n f = Alcotest.test_case n `Quick f in
  ( "parser",
    [
      t "lex tokens" test_lex_tokens;
      t "lex comments" test_lex_comments;
      t "lex line numbers" test_lex_line_numbers;
      t "lex pragma" test_lex_pragma;
      t "lex errors" test_lex_errors;
      t "expr precedence" test_expr_precedence;
      t "expr builtins" test_expr_builtins;
      t "expr postfix" test_expr_postfix;
      t "expr unary" test_expr_unary;
      t "parse kernel" test_parse_kernel;
      t "kernel round trip" test_parse_roundtrip_kernel;
      t "shared decl" test_parse_shared_decl;
      t "compound assignment" test_parse_compound_assign;
      t "parse errors" test_parse_errors;
      t "global sync" test_parse_global_sync;
      t "print +=" test_print_compound;
      t "print parens" test_print_minimal_parens;
      t "print float literals" test_print_float_lit;
      t "loc count" test_loc_count;
      QCheck_alcotest.to_alcotest qcheck_roundtrip;
    ] )

lib/passes/licm.pp.ml: Ast Gpcc_ast List Pass_util Printf Rewrite

(** AMD-style aggressive vectorization (paper Section 3.1): "for AMD/ATI
    GPUs, due to the much more profound impact on bandwidth, the compiler
    is more aggressive and also groups data accesses from neighboring
    threads along the X direction into float2/float4 data types."

    Each thread absorbs the work of [w] neighboring work items: an
    element-wise kernel over 1-D arrays ([c[idx] = f(a[idx], b[idx], ...)])
    becomes one over float2/float4 values — every load [a[idx]] turns into
    a vector load, every store into a vector store, the float temporaries
    become vector-typed, scalar literals broadcast, and the grid shrinks
    by [w]. Applicability is deliberately strict (straight-line
    element-wise bodies with +,-,*,/ arithmetic); anything else is left
    for the NVIDIA-style pair vectorization. *)

open Gpcc_ast
open Ast

let vec_scalar = function 2 -> Float2 | _ -> Float4

(** Is the body a straight-line element-wise computation over 1-D global
    arrays indexed exactly by [idx]? *)
let applicable (k : Ast.kernel) : bool =
  let globals = Pass_util.global_arrays k in
  let rec expr_ok = function
    | Float_lit _ -> true
    | Int_lit _ -> true
    | Var _ -> true
    | Index (a, [ Builtin Idx ]) -> List.mem a globals
    | Index _ -> false
    | Binop ((Add | Sub | Mul | Div), a, b) -> expr_ok a && expr_ok b
    | Unop (Neg, a) -> expr_ok a
    | _ -> false
  in
  let arrays_1d =
    List.for_all
      (fun (p : Ast.param) ->
        match p.p_ty with
        | Array { dims = [ _ ]; _ } | Scalar _ -> true
        | Array _ -> false)
      k.k_params
  in
  arrays_1d
  && k.k_body <> []
  && List.for_all
       (fun s ->
         match s with
         | Decl { d_ty = Scalar Float; d_init = Some e; _ } -> expr_ok e
         | Assign (Lvar _, e) -> expr_ok e
         | Assign (Lindex (a, [ Builtin Idx ]), e) ->
             List.mem a globals && expr_ok e
         | Comment _ -> true
         | _ -> false)
       k.k_body

(** Rewrite one expression into its [w]-wide form. *)
let rec widen (w : int) (float_vars : string list) (e : Ast.expr) : Ast.expr =
  match e with
  | Float_lit f ->
      let comps = List.init w (fun _ -> Ast.Float_lit f) in
      Call ((if w = 2 then "make_float2" else "make_float4"), comps)
  | Int_lit n ->
      let comps = List.init w (fun _ -> Ast.Float_lit (float_of_int n)) in
      Call ((if w = 2 then "make_float2" else "make_float4"), comps)
  | Var v when List.mem v float_vars -> Var v
  | Var v -> Var v
  | Index (a, [ Builtin Idx ]) ->
      Vload { v_arr = a; v_width = w; v_index = Ast.idx }
  | Binop (op, a, b) -> Binop (op, widen w float_vars a, widen w float_vars b)
  | Unop (Neg, a) -> Unop (Neg, widen w float_vars a)
  | e -> e

let apply ?(width = 2) (k : Ast.kernel) (launch : Ast.launch) :
    Pass_util.outcome =
  if width <> 2 && width <> 4 then
    Pass_util.unchanged ~notes:[ "vector width must be 2 or 4" ] k launch
  else if not (applicable k) then
    Pass_util.unchanged
      ~notes:[ "kernel is not a straight-line element-wise 1-D computation" ]
      k launch
  else if launch.grid_x mod width <> 0 then
    Pass_util.unchanged
      ~notes:[ "grid not divisible by the vector width" ]
      k launch
  else begin
    let float_vars =
      List.filter_map
        (function
          | Decl { d_name; d_ty = Scalar Float; _ } -> Some d_name
          | _ -> None)
        k.k_body
    in
    let body =
      List.map
        (fun s ->
          match s with
          | Decl ({ d_ty = Scalar Float; d_init; _ } as d) ->
              Decl
                {
                  d with
                  d_ty = Scalar (vec_scalar width);
                  d_init = Option.map (widen width float_vars) d_init;
                }
          | Assign (Lvar v, e) -> Assign (Lvar v, widen width float_vars e)
          | Assign (Lindex (a, [ Builtin Idx ]), e) ->
              Assign
                ( Lvec { v_arr = a; v_width = width; v_index = Ast.idx },
                  widen width float_vars e )
          | s -> s)
        k.k_body
    in
    Pass_util.changed
      ~notes:
        [
          Printf.sprintf
            "grouped %d neighboring work items per thread into float%d \
             accesses (AMD rule)"
            width width;
        ]
      { k with k_body = body }
      { launch with grid_x = launch.grid_x / width }
  end

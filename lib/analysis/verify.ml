(** Static kernel verifier (see the interface for the rule catalogue).

    The implementation has four moving parts:

    1. a {e walk} over the kernel body that numbers barrier intervals,
       snapshots every memory access with its guards, enclosing loops,
       scalar bindings and {!Affine} context, and reports barrier
       divergence on the way;
    2. a {e concrete evaluator} for integer expressions under one
       thread's coordinates plus loop-iteration bindings — this is what
       lets the race check intersect per-thread access sets exactly,
       including the mod/div index rotations the passes introduce;
    3. a {e strided-interval} range analysis (value range plus a
       congruence stride) with affine guard refinement, used to prove
       indices in-bounds;
    4. enumeration drivers that combine 1+2 to build per-interval
       address tables (races, bank conflicts) and to hunt concrete
       out-of-bounds witnesses when 3 cannot prove safety. *)

open Gpcc_ast

type severity =
  | Error
  | Warning

type diagnostic = {
  severity : severity;
  rule : string;
  kernel : string;
  path : string;
  message : string;
}

let rule_race_shared = "race-shared"
let rule_race_global = "race-global"
let rule_barrier_divergence = "barrier-divergence"
let rule_oob_shared = "oob-shared"
let rule_oob_global = "oob-global"
let rule_oob_unproven = "oob-unproven"
let rule_bank_conflict = "bank-conflict"
let rule_noncoalesced = "noncoalesced"
let rule_verify_incomplete = "verify-incomplete"
let severity_to_string = function Error -> "error" | Warning -> "warning"

let to_string d =
  Printf.sprintf "%s[%s] %s%s: %s"
    (severity_to_string d.severity)
    d.rule d.kernel
    (if d.path = "" then "" else " at " ^ d.path)
    d.message

let errors = List.filter (fun d -> d.severity = Error)
let warnings = List.filter (fun d -> d.severity = Warning)
let is_clean ds = errors ds = []

(* --- JSON emission (hand-rolled; bin and CI consume it) --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_diagnostic d =
  Printf.sprintf
    {|{"severity":"%s","rule":"%s","kernel":"%s","path":"%s","message":"%s"}|}
    (severity_to_string d.severity)
    (json_escape d.rule) (json_escape d.kernel) (json_escape d.path)
    (json_escape d.message)

let json_of_diagnostics ds =
  "[" ^ String.concat "," (List.map json_of_diagnostic ds) ^ "]"

(* --- concrete integer evaluation under one thread --- *)

(** A scalar binding at some program point. [Bexpr] keeps the defining
    expression (evaluated in the environment suffix {e after} the
    binding, so rebindings and self-references resolve lexically). *)
type binding =
  | Bexpr of Ast.expr
  | Bval of int
  | Bunknown

type cenv = {
  c_launch : Ast.launch;
  c_sizes : (string * int) list;
  c_tidx : int;
  c_tidy : int;
  c_bidx : int;
  c_bidy : int;
  c_binds : (string * binding) list;  (** innermost (most recent) first *)
}

exception Unknown

let rec assoc_split name = function
  | [] -> None
  | (n, b) :: rest ->
      if String.equal n name then Some (b, rest) else assoc_split name rest

let rec eval_int (env : cenv) (e : Ast.expr) : int =
  match e with
  | Int_lit n -> n
  | Float_lit _ -> raise Unknown
  | Builtin b -> (
      let l = env.c_launch in
      match b with
      | Tidx -> env.c_tidx
      | Tidy -> env.c_tidy
      | Bidx -> env.c_bidx
      | Bidy -> env.c_bidy
      | Bdimx -> l.block_x
      | Bdimy -> l.block_y
      | Gdimx -> l.grid_x
      | Gdimy -> l.grid_y
      | Idx -> (env.c_bidx * l.block_x) + env.c_tidx
      | Idy -> (env.c_bidy * l.block_y) + env.c_tidy)
  | Var v -> (
      match assoc_split v env.c_binds with
      | Some (Bval n, _) -> n
      | Some (Bexpr e', rest) -> eval_int { env with c_binds = rest } e'
      | Some (Bunknown, _) -> raise Unknown
      | None -> (
          match List.assoc_opt v env.c_sizes with
          | Some n -> n
          | None -> raise Unknown))
  | Unop (Neg, a) -> -eval_int env a
  | Unop (Not, a) -> if eval_int env a = 0 then 1 else 0
  | Binop (And, a, b) ->
      if eval_int env a = 0 then 0 else if eval_int env b <> 0 then 1 else 0
  | Binop (Or, a, b) ->
      if eval_int env a <> 0 then 1 else if eval_int env b <> 0 then 1 else 0
  | Binop (op, a, b) -> (
      let x = eval_int env a and y = eval_int env b in
      match op with
      | Add -> x + y
      | Sub -> x - y
      | Mul -> x * y
      | Div -> if y = 0 then raise Unknown else x / y
      (* mathematical mod, matching the simulator *)
      | Mod -> if y = 0 then raise Unknown else ((x mod y) + y) mod y
      | Lt -> if x < y then 1 else 0
      | Le -> if x <= y then 1 else 0
      | Gt -> if x > y then 1 else 0
      | Ge -> if x >= y then 1 else 0
      | Eq -> if x = y then 1 else 0
      | Ne -> if x <> y then 1 else 0
      | And | Or -> assert false)
  | Call ("min", [ a; b ]) -> min (eval_int env a) (eval_int env b)
  | Call ("max", [ a; b ]) -> max (eval_int env a) (eval_int env b)
  | Select (c, a, b) ->
      if eval_int env c <> 0 then eval_int env a else eval_int env b
  | Index _ | Vload _ | Field _ | Call _ -> raise Unknown

let eval_opt env e = try Some (eval_int env e) with Unknown -> None
let eval_bool_opt env e = try Some (eval_int env e <> 0) with Unknown -> None

(* --- strided intervals: value range plus congruence stride --- *)

(** Values of [s] lie in [[s.lo, s.hi]] and are all congruent to [s.lo]
    modulo [s.st]; a singleton ([lo = hi]) has [st = 0], meaning every
    stride divides it (so [gcd] combines it for free), otherwise
    [st >= 1] and [hi ≡ lo (mod st)]. The stride is what lets a guard
    like [i + 16 < w] on a step-16 loop round down to the last
    actually-reachable iterate. *)
type si = { lo : int; hi : int; st : int }

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)
let si_const n = { lo = n; hi = n; st = 0 }

let si_norm s =
  if s.hi <= s.lo then { s with hi = s.lo; st = 0 }
  else { s with hi = s.lo + ((s.hi - s.lo) / s.st * s.st) }

let si_add a b =
  si_norm { lo = a.lo + b.lo; hi = a.hi + b.hi; st = gcd a.st b.st }

let si_neg a = si_norm { lo = -a.hi; hi = -a.lo; st = a.st }
let si_sub a b = si_add a (si_neg b)

let si_scale k a =
  if k = 0 then si_const 0
  else if k > 0 then { lo = k * a.lo; hi = k * a.hi; st = k * a.st }
  else { lo = k * a.hi; hi = k * a.lo; st = -k * a.st }

let si_mul a b =
  if a.lo = a.hi then si_scale a.lo b
  else if b.lo = b.hi then si_scale b.lo a
  else
    let cs = [ a.lo * b.lo; a.lo * b.hi; a.hi * b.lo; a.hi * b.hi ] in
    si_norm
      {
        lo = List.fold_left min max_int cs;
        hi = List.fold_left max min_int cs;
        st = 1;
      }

(* for two-alternative combinations (hull / min / max) the stride must
   also divide the offset between the two residue classes *)
let si_hull a b =
  let st = gcd (gcd a.st b.st) (a.lo - b.lo) in
  si_norm { lo = min a.lo b.lo; hi = max a.hi b.hi; st }

let si_min a b =
  let st = gcd (gcd a.st b.st) (a.lo - b.lo) in
  si_norm { lo = min a.lo b.lo; hi = min a.hi b.hi; st }

let si_max a b =
  let st = gcd (gcd a.st b.st) (a.lo - b.lo) in
  si_norm { lo = max a.lo b.lo; hi = max a.hi b.hi; st }

(** [a mod c] under mathematical mod, for a constant [c > 0]. *)
let si_mod a c =
  if a.lo >= 0 && a.hi < c then a
  else
    let g = max 1 (gcd a.st c) in
    let lo = ((a.lo mod g) + g) mod g in
    si_norm { lo; hi = lo + ((c - 1 - lo) / g * g); st = g }

(** [a / c] (truncating division is monotone), for a constant [c > 0]. *)
let si_div a c = si_norm { lo = a.lo / c; hi = a.hi / c; st = 1 }

(** Clamp [b] into [[lo, hi]] respecting [b]'s residue class. [None]
    when the intersection is empty (the governing guards are
    unsatisfiable, so the access never executes). *)
let si_clamp b ~lo ~hi =
  if b.lo = b.hi then if b.lo >= lo && b.lo <= hi then Some b else None
  else
    let lo' =
      if b.lo >= lo then b.lo else b.lo + ((lo - b.lo + b.st - 1) / b.st * b.st)
    and hi' =
      if b.hi <= hi then b.hi
      else if hi < b.lo then b.lo - b.st (* below the whole range: empty *)
      else b.lo + ((hi - b.lo) / b.st * b.st)
    in
    if hi' < lo' then None else Some (si_norm { lo = lo'; hi = hi'; st = b.st })

(* --- access records collected by the walk --- *)

type frame = {
  fr_var : string;
  fr_init : Ast.expr;
  fr_limit : Ast.expr;
  fr_step : Ast.expr;
  fr_frozen : bool;  (** the loop body contains a barrier *)
  fr_offset : int;  (** 0, or 1 for the wrap-around symbolic pass *)
  fr_binds : (string * binding) list;  (** scalar env at loop entry *)
}

type guard = {
  g_cond : Ast.expr;  (** must evaluate true for the access to run *)
  g_binds : (string * binding) list;
}

type acc = {
  a_arr : string;
  a_space : [ `Shared | `Global ];
  a_kind : [ `Sc of Ast.expr list | `Vec of int * Ast.expr ];
  a_store : bool;
  a_interval : int;
  a_frames : frame list;  (** outermost first; frozen frames form a prefix *)
  a_guards : guard list;
  a_binds : (string * binding) list;
  a_ctx : Affine.ctx;
  a_path : string;
}

let acc_expr a =
  match a.a_kind with
  | `Sc idxs -> Pp.expr_to_string (Index (a.a_arr, idxs))
  | `Vec (w, ie) ->
      Pp.expr_to_string (Vload { v_arr = a.a_arr; v_width = w; v_index = ie })

(* --- the walk: intervals, accesses, barrier divergence --- *)

type wenv = {
  w_binds : (string * binding) list;
  w_frames : frame list;  (** innermost first *)
  w_guards : guard list;
  w_ctx : Affine.ctx;
  w_div : bool;  (** under thread-dependent control flow *)
  w_path : string list;  (** reversed segments *)
  w_frozen_depth : int;
}

type wstate = {
  ws_kernel : string;
  mutable ws_interval : int;
  mutable ws_accs : acc list;
  mutable ws_diags : diagnostic list;
  ws_uniform : (string * binding) list -> Ast.loop -> bool;
      (** can every thread of any one block be shown to run this loop the
          same number of times? (grid-strided loops like
          [for (i = idx; i < len; i += nt)] may contain barriers) *)
}

let truncate_str n s = if String.length s <= n then s else String.sub s 0 n ^ "…"
let path_of env = String.concat "/" (List.rev env.w_path)

(** Does the expression's value depend on the thread position?
    Conservative: array loads count (data-dependent), loop variables
    count when any of the loop's bounds do. *)
let rec thread_dep (binds : (string * binding) list) (frames : frame list)
    (e : Ast.expr) : bool =
  match e with
  | Builtin (Idx | Idy | Tidx | Tidy) -> true
  | Builtin _ | Int_lit _ | Float_lit _ -> false
  | Var v -> (
      match assoc_split v binds with
      | Some (Bexpr e', rest) -> thread_dep rest frames e'
      | Some (Bval _, _) -> false
      | Some (Bunknown, _) -> true
      | None -> (
          match List.find_opt (fun f -> String.equal f.fr_var v) frames with
          | Some f ->
              thread_dep f.fr_binds frames f.fr_init
              || thread_dep f.fr_binds frames f.fr_limit
              || thread_dep f.fr_binds frames f.fr_step
          | None -> false))
  | Index _ | Vload _ -> true
  | Unop (_, a) | Field (a, _) -> thread_dep binds frames a
  | Binop (_, a, b) -> thread_dep binds frames a || thread_dep binds frames b
  | Call (_, args) -> List.exists (thread_dep binds frames) args
  | Select (a, b, c) ->
      thread_dep binds frames a || thread_dep binds frames b
      || thread_dep binds frames c

let rec block_has_sync b = List.exists stmt_has_sync b

and stmt_has_sync = function
  | Ast.Sync | Global_sync -> true
  | If (_, t, f) -> block_has_sync t || block_has_sync f
  | For l -> block_has_sync l.l_body
  | Decl _ | Assign _ | Comment _ -> false

(** Scalar names (re)assigned or declared anywhere in a block — after a
    branch or loop their walk-time binding is no longer reliable. *)
let rec assigned_vars b = List.concat_map assigned_vars_stmt b

and assigned_vars_stmt = function
  | Ast.Decl d -> [ d.d_name ]
  | Assign (Lvar v, _) | Assign (Lfield (Lvar v, _), _) -> [ v ]
  | Assign ((Lindex _ | Lvec _ | Lfield _), _) -> []
  | If (_, t, f) -> assigned_vars t @ assigned_vars f
  | For l -> l.l_var :: assigned_vars l.l_body
  | Sync | Global_sync | Comment _ -> []

(* an rhs no affine analysis can see through, used to clear a ctx let *)
let opaque_rhs = Ast.Float_lit 0.0

let forget_vars env vars =
  {
    env with
    w_binds = List.map (fun v -> (v, Bunknown)) vars @ env.w_binds;
    w_ctx =
      List.fold_left (fun c v -> Affine.enter_let c v opaque_rhs) env.w_ctx vars;
  }

let diag st ?(severity = Error) ~rule ~path message =
  st.ws_diags <-
    { severity; rule; kernel = st.ws_kernel; path; message } :: st.ws_diags

let record_access st env spaces arr kind ~store =
  match List.assoc_opt arr spaces with
  | None -> ()
  | Some space ->
      st.ws_accs <-
        {
          a_arr = arr;
          a_space = space;
          a_kind = kind;
          a_store = store;
          a_interval = st.ws_interval;
          a_frames = List.rev env.w_frames;
          a_guards = env.w_guards;
          a_binds = env.w_binds;
          a_ctx = env.w_ctx;
          a_path = path_of env;
        }
        :: st.ws_accs

let rec collect_expr st env spaces (e : Ast.expr) : unit =
  match e with
  | Index (arr, idxs) ->
      record_access st env spaces arr (`Sc idxs) ~store:false;
      List.iter (collect_expr st env spaces) idxs
  | Vload { v_arr; v_width; v_index } ->
      record_access st env spaces v_arr (`Vec (v_width, v_index)) ~store:false;
      collect_expr st env spaces v_index
  | Unop (_, a) | Field (a, _) -> collect_expr st env spaces a
  | Binop (_, a, b) ->
      collect_expr st env spaces a;
      collect_expr st env spaces b
  | Call (_, args) -> List.iter (collect_expr st env spaces) args
  | Select (a, b, c) ->
      collect_expr st env spaces a;
      collect_expr st env spaces b;
      collect_expr st env spaces c
  | Int_lit _ | Float_lit _ | Var _ | Builtin _ -> ()

let rec walk_block st spaces env (b : Ast.block) : wenv =
  List.fold_left (fun e s -> walk_stmt st spaces e s) env b

and walk_stmt st spaces env (s : Ast.stmt) : wenv =
  match s with
  | Comment _ -> env
  | Decl { d_name; d_ty = Scalar _; d_init } -> (
      match d_init with
      | Some e ->
          collect_expr st env spaces e;
          {
            env with
            w_binds = (d_name, Bexpr e) :: env.w_binds;
            w_ctx = Affine.enter_let env.w_ctx d_name e;
          }
      | None ->
          {
            env with
            w_binds = (d_name, Bunknown) :: env.w_binds;
            w_ctx = Affine.enter_let env.w_ctx d_name opaque_rhs;
          })
  | Decl _ -> env (* shared arrays: layout table covers them *)
  | Assign (lv, e) -> (
      collect_expr st env spaces e;
      match lv with
      | Lvar v ->
          {
            env with
            w_binds = (v, Bexpr e) :: env.w_binds;
            w_ctx = Affine.enter_let env.w_ctx v e;
          }
      | Lfield (Lvar v, _) -> forget_vars env [ v ]
      | Lindex (arr, idxs) ->
          record_access st env spaces arr (`Sc idxs) ~store:true;
          List.iter (collect_expr st env spaces) idxs;
          env
      | Lvec { v_arr; v_width; v_index } ->
          record_access st env spaces v_arr
            (`Vec (v_width, v_index))
            ~store:true;
          collect_expr st env spaces v_index;
          env
      | Lfield (Lindex (arr, idxs), _) ->
          record_access st env spaces arr (`Sc idxs) ~store:true;
          List.iter (collect_expr st env spaces) idxs;
          env
      | Lfield _ -> env)
  | Sync ->
      if env.w_div then
        diag st ~rule:rule_barrier_divergence
          ~path:(path_of { env with w_path = "__syncthreads()" :: env.w_path })
          "__syncthreads() under thread-dependent control flow: threads \
           that skip the barrier deadlock or desynchronize the block";
      (* a guarded barrier may not execute: splitting the interval there
         would hide races between the code around it, so only an
         unconditional barrier starts a new interval *)
      if env.w_guards = [] then st.ws_interval <- st.ws_interval + 1;
      env
  | Global_sync ->
      if env.w_frames <> [] || env.w_guards <> [] then
        diag st ~rule:rule_barrier_divergence
          ~path:(path_of { env with w_path = "__global_sync()" :: env.w_path })
          "__global_sync() must appear at kernel top level";
      if env.w_guards = [] then st.ws_interval <- st.ws_interval + 1;
      env
  | If (cond, t, f) ->
      collect_expr st env spaces cond;
      let d = thread_dep env.w_binds env.w_frames cond in
      let seg =
        Printf.sprintf "if(%s)" (truncate_str 28 (Pp.expr_to_string cond))
      in
      let branch cond' =
        {
          env with
          w_guards = { g_cond = cond'; g_binds = env.w_binds } :: env.w_guards;
          w_div = env.w_div || d;
          w_path = seg :: env.w_path;
        }
      in
      ignore (walk_block st spaces (branch cond) t);
      ignore (walk_block st spaces (branch (Unop (Not, cond))) f);
      forget_vars env (assigned_vars t @ assigned_vars f)
  | For ({ l_var; l_init; l_limit; l_step; l_body } as lp) ->
      collect_expr st env spaces l_init;
      collect_expr st env spaces l_limit;
      collect_expr st env spaces l_step;
      let frozen = block_has_sync l_body in
      let tdep =
        thread_dep env.w_binds env.w_frames l_init
        || thread_dep env.w_binds env.w_frames l_limit
        || thread_dep env.w_binds env.w_frames l_step
      in
      (* lane-dependent bounds with a provably block-uniform trip count
         (the grid-strided idiom) execute any contained barrier in
         lockstep: not divergence *)
      let tdep = tdep && not (frozen && st.ws_uniform env.w_binds lp) in
      let fr offset =
        {
          fr_var = l_var;
          fr_init = l_init;
          fr_limit = l_limit;
          fr_step = l_step;
          fr_frozen = frozen;
          fr_offset = offset;
          fr_binds = env.w_binds;
        }
      in
      let ctx' =
        match Affine.enter_loop env.w_ctx lp with
        | Some c -> c
        | None -> env.w_ctx
      in
      let benv offset =
        {
          env with
          w_frames = fr offset :: env.w_frames;
          w_ctx = ctx';
          w_div = env.w_div || tdep;
          w_path = Printf.sprintf "for(%s)" l_var :: env.w_path;
          w_frozen_depth = (env.w_frozen_depth + if frozen then 1 else 0);
        }
      in
      if frozen && env.w_frozen_depth < 2 then begin
        (* two symbolic passes: iteration k, then k+1 — accesses of the
           second pass land in the interval opened by the last barrier of
           the first, which is exactly the wrap-around interval *)
        ignore (walk_block st spaces (benv 0) l_body);
        ignore (walk_block st spaces (benv 1) l_body)
      end
      else ignore (walk_block st spaces (benv 0) l_body);
      forget_vars env (l_var :: assigned_vars l_body)

(* --- enumeration: windows of loop-iteration values per thread --- *)

let race_window = 6
let witness_window = 8

let mk_cenv (launch : Ast.launch) sizes ~bidx ~bidy ~lane base dyn =
  {
    c_launch = launch;
    c_sizes = sizes;
    c_tidx = lane mod launch.block_x;
    c_tidy = lane / launch.block_x;
    c_bidx = bidx;
    c_bidy = bidy;
    c_binds = base @ dyn;
  }

(** First [w] iteration values plus the last; [Some []] when the loop
    does not execute for this thread, [None] when the bounds cannot be
    evaluated. Returns the values paired with the evaluated limit. *)
let frame_window (launch : Ast.launch) sizes ~bidx ~bidy ~lane ~dyn ~w
    (fr : frame) :
    (int list * int) option =
  let env = mk_cenv launch sizes ~bidx ~bidy ~lane fr.fr_binds dyn in
  match (eval_opt env fr.fr_init, eval_opt env fr.fr_step) with
  | Some v0, Some step when step > 0 -> (
      match eval_opt env fr.fr_limit with
      | Some lim when lim > v0 ->
          let trips = (lim - v0 + step - 1) / step in
          let wn = min w trips in
          let first = List.init wn (fun i -> v0 + (i * step)) in
          let last = v0 + ((trips - 1) * step) in
          Some ((if trips > wn then first @ [ last ] else first), lim)
      | Some lim -> Some ([], lim)
      | None -> None)
  | _ -> None

let sample_axis n cap =
  if n <= cap then List.init n Fun.id
  else List.sort_uniq compare (List.init cap (fun i -> i * (n - 1) / (cap - 1)))

(** Can every thread of any one block be shown to run the loop the same
    number of times? Concretely evaluates the trip count per (block,
    lane); large grids are sampled per axis (corners plus a strided
    interior), so acceptance is empirical beyond the cap — in keeping
    with the verifier's lint-grade charter — while rejection (returning
    [false]) merely defers to the conservative divergence flag. *)
let uniform_trip_count (launch : Ast.launch) sizes binds (lp : Ast.loop) : bool
    =
  let lanes = launch.block_x * launch.block_y in
  lanes <= 512
  &&
  let trip ~bidx ~bidy lane =
    let env = mk_cenv launch sizes ~bidx ~bidy ~lane binds [] in
    match
      (eval_opt env lp.l_init, eval_opt env lp.l_limit, eval_opt env lp.l_step)
    with
    | Some v0, Some lim, Some step when step > 0 ->
        Some (if lim <= v0 then 0 else (lim - v0 + step - 1) / step)
    | _ -> None
  in
  try
    List.iter
      (fun bidx ->
        List.iter
          (fun bidy ->
            match trip ~bidx ~bidy 0 with
            | None -> raise Exit
            | Some t0 ->
                for lane = 1 to lanes - 1 do
                  if trip ~bidx ~bidy lane <> Some t0 then raise Exit
                done)
          (sample_axis launch.grid_y 64))
      (sample_axis launch.grid_x 64);
    true
  with Exit -> false

(** Run [f] on every concrete environment of [acc]'s free (non-frozen)
    loop frames, with frozen frames pre-bound via [frozen]: a map from
    loop variable to [(base, step, limit)] computed at lane 0; the
    frame's [fr_offset] advances the base by one step, skipping
    iterations past the limit. When the loop's bounds evaluate per lane
    (grid-strided loops), the binding is rebased to this lane's own
    init so lane-dependent uniform-trip loops are modeled faithfully.
    Guards are checked; an unevaluable guard passes when [lenient]. *)
let enum_access (launch : Ast.launch) sizes ~bidx ~bidy ~lane ~lenient ~w
    ~(frozen : (string * (int * int * int)) list) (acc : acc)
    (f : cenv -> unit) : unit =
  let ok_frozen = ref true in
  let frozen_dyn =
    List.fold_left
      (fun dyn fr ->
        if not fr.fr_frozen then dyn
        else
          match List.assoc_opt fr.fr_var frozen with
          | None ->
              ok_frozen := false;
              dyn
          | Some (base, step, lim) ->
              let d = List.rev dyn in
              let env0 =
                mk_cenv launch sizes ~bidx ~bidy ~lane:0 fr.fr_binds d
              in
              let envl =
                mk_cenv launch sizes ~bidx ~bidy ~lane fr.fr_binds d
              in
              let v, vlim =
                match
                  ( eval_opt env0 fr.fr_init,
                    eval_opt envl fr.fr_init,
                    eval_opt envl fr.fr_limit )
                with
                | Some i0, Some il, Some ll ->
                    (base - i0 + il + (fr.fr_offset * step), ll)
                | _ -> (base + (fr.fr_offset * step), lim)
              in
              if v >= vlim then begin
                ok_frozen := false;
                dyn
              end
              else (fr.fr_var, Bval v) :: dyn)
      [] acc.a_frames
    |> List.rev
  in
  if !ok_frozen then begin
    let free = List.filter (fun fr -> not fr.fr_frozen) acc.a_frames in
    let rec go dyn = function
      | [] ->
          let guards_ok =
            List.for_all
              (fun g ->
                let genv =
                  mk_cenv launch sizes ~bidx ~bidy ~lane g.g_binds dyn
                in
                match eval_bool_opt genv g.g_cond with
                | Some b -> b
                | None -> lenient)
              acc.a_guards
          in
          if guards_ok then
            f (mk_cenv launch sizes ~bidx ~bidy ~lane acc.a_binds dyn)
      | fr :: rest -> (
          match frame_window launch sizes ~bidx ~bidy ~lane ~dyn ~w fr with
          | Some (vs, _) ->
              List.iter (fun v -> go ((fr.fr_var, Bval v) :: dyn) rest) vs
          | None -> ())
    in
    go frozen_dyn free
  end

(** Flattened element offsets touched by one access instance, or [None]
    when an index cannot be evaluated. *)
let acc_offsets (lay : Layout.t) (acc : acc) (env : cenv) : int list option =
  match acc.a_kind with
  | `Sc idxs ->
      let strides = Layout.strides lay in
      if List.length idxs <> List.length strides then None
      else begin
        try
          Some
            [
              List.fold_left2
                (fun off e st -> off + (eval_int env e * st))
                0 idxs strides;
            ]
        with Unknown -> None
      end
  | `Vec (w, ie) -> (
      match eval_opt env ie with
      | Some v -> Some (List.init w (fun q -> (v * w) + q))
      | None -> None)

(* --- race detection per barrier interval --- *)

(** Joint assignments of the frozen loop variables of an interval:
    windows are computed with lane 0 of the sampled block; lanes of a
    lane-dependent (uniform-trip) loop are rebased in {!enum_access}.
    Each assignment maps variable -> (base, step, limit). *)
let frozen_assignments (launch : Ast.launch) sizes ~bidx ~bidy
    (group : acc list) :
    (string * (int * int * int)) list list =
  let frames =
    List.fold_left
      (fun seen a ->
        List.fold_left
          (fun seen fr ->
            if
              fr.fr_frozen && fr.fr_offset = 0
              && not (List.exists (fun f -> String.equal f.fr_var fr.fr_var) seen)
            then seen @ [ fr ]
            else seen)
          seen a.a_frames)
      [] group
  in
  List.fold_left
    (fun asns fr ->
      List.concat_map
        (fun asn ->
          let dyn = List.map (fun (v, (b, _, _)) -> (v, Bval b)) asn in
          match
            frame_window launch sizes ~bidx ~bidy ~lane:0 ~dyn ~w:race_window
              fr
          with
          | Some (vs, lim) -> (
              match eval_opt
                      (mk_cenv launch sizes ~bidx ~bidy ~lane:0 fr.fr_binds dyn)
                      fr.fr_step
              with
              | Some step ->
                  List.map (fun v -> asn @ [ (fr.fr_var, (v, step, lim)) ]) vs
              | None -> [ asn ])
          | None -> [ asn ])
        asns)
    [ [] ] frames

let check_races st (launch : Ast.launch) sizes layouts ~max_lanes ~dedup_pairs
    (group : acc list) : unit =
  let n = launch.block_x * launch.block_y in
  if n > 1 then begin
    let lanes = min n max_lanes in
    let by_arr = Hashtbl.create 8 in
    List.iter
      (fun a ->
        Hashtbl.replace by_arr a.a_arr
          (a :: (try Hashtbl.find by_arr a.a_arr with Not_found -> [])))
      group;
    let blocks =
      List.sort_uniq compare
        [ (0, 0); (launch.grid_x - 1, launch.grid_y - 1) ]
    in
    Hashtbl.iter
      (fun arr accs ->
        let accs = List.rev accs in
        if List.exists (fun a -> a.a_store) accs then
          match Layout.find layouts arr with
          | None -> ()
          | Some lay -> (
              let space = (List.hd accs).a_space in
              let report lane1 st1 p1 lane2 st2 p2 ~bidx ~bidy off =
                let key = (arr, min p1 p2, max p1 p2) in
                if not (Hashtbl.mem dedup_pairs key) then begin
                  Hashtbl.replace dedup_pairs key ();
                  let rule =
                    if space = `Shared then rule_race_shared
                    else rule_race_global
                  in
                  let rw s = if s then "write" else "read" in
                  diag st ~rule ~path:p1
                    (Printf.sprintf
                       "threads %d and %d of block (%d,%d) touch %s element \
                        %d in the same barrier interval (%s at %s, %s at \
                        %s): insert __syncthreads() between the accesses"
                       lane1 lane2 bidx bidy arr off (rw st1)
                       (if p1 = "" then "top level" else p1)
                       (rw st2)
                       (if p2 = "" then "top level" else p2))
                end
              in
              let exception Found in
              try
                List.iter
                  (fun (bidx, bidy) ->
                    List.iter
                      (fun frozen ->
                        (* element -> one write and one read seen, if any *)
                        let writes = Hashtbl.create 64
                        and reads = Hashtbl.create 64 in
                        let conflict = ref None in
                        List.iter
                          (fun acc ->
                            for lane = 0 to lanes - 1 do
                              enum_access launch sizes ~bidx ~bidy ~lane
                                ~lenient:true ~w:race_window ~frozen acc
                                (fun env ->
                                  match acc_offsets lay acc env with
                                  | None -> ()
                                  | Some offs ->
                                      List.iter
                                        (fun off ->
                                          if !conflict = None then begin
                                            (match
                                               Hashtbl.find_opt writes off
                                             with
                                            | Some (l2, p2) when l2 <> lane ->
                                                conflict :=
                                                  Some
                                                    ( lane,
                                                      acc.a_store,
                                                      acc.a_path,
                                                      l2,
                                                      true,
                                                      p2,
                                                      off )
                                            | _ -> ());
                                            if acc.a_store then begin
                                              (match
                                                 Hashtbl.find_opt reads off
                                               with
                                              | Some (l2, p2) when l2 <> lane
                                                ->
                                                  conflict :=
                                                    Some
                                                      ( lane,
                                                        true,
                                                        acc.a_path,
                                                        l2,
                                                        false,
                                                        p2,
                                                        off )
                                              | _ -> ());
                                              Hashtbl.replace writes off
                                                (lane, acc.a_path)
                                            end
                                            else
                                              Hashtbl.replace reads off
                                                (lane, acc.a_path)
                                          end)
                                        offs)
                            done)
                          accs;
                        match !conflict with
                        | Some (l1, s1, p1, l2, s2, p2, off) ->
                            report l1 s1 p1 l2 s2 p2 ~bidx ~bidy off;
                            raise Found
                        | None -> ())
                      (frozen_assignments launch sizes ~bidx ~bidy accs))
                  blocks
              with Found -> ()))
      by_arr
  end

(* --- bounds checking: strided intervals + affine guard refinement --- *)

type renv = {
  r_launch : Ast.launch;
  r_sizes : (string * int) list;
  r_binds : (string * binding) list;
  r_iters : (string * si) list;  (** loop var -> range of its value *)
  r_trips : (string * si) list;  (** loop var -> range of [Affine.Iter] *)
  r_ctx : Affine.ctx;
  r_over : (Affine.var * (int option * int option)) list;
      (** guard-derived bounds per affine variable *)
}

let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)
let cdiv a b = if a >= 0 then (a + b - 1) / b else -((-a) / b)

let rec var_si (env : renv) (v : Affine.var) : si option =
  let dim n = Some (si_norm { lo = 0; hi = n - 1; st = 1 }) in
  let base =
    match v with
    | Affine.Tidx -> dim env.r_launch.block_x
    | Tidy -> dim env.r_launch.block_y
    | Bidx -> dim env.r_launch.grid_x
    | Bidy -> dim env.r_launch.grid_y
    | Iter name -> List.assoc_opt name env.r_trips
    | Param _ -> None
    | Mod_of (v', c) when c > 0 -> Option.map (fun s -> si_mod s c) (var_si env v')
    | Div_of (v', c) when c > 0 -> Option.map (fun s -> si_div s c) (var_si env v')
    | Mod_of _ | Div_of _ -> None
  in
  match (List.assoc_opt v env.r_over, base) with
  | None, b -> b
  | Some _, None -> None
  | Some (lo, hi), Some b ->
      si_clamp b
        ~lo:(Option.value lo ~default:b.lo)
        ~hi:(Option.value hi ~default:b.hi)

let si_of_affine (env : renv) (f : Affine.t) : si option =
  List.fold_left
    (fun acc (v, c) ->
      match (acc, var_si env v) with
      | Some a, Some s -> Some (si_add a (si_scale c s))
      | _ -> None)
    (Some (si_const f.const))
    f.terms

let rec range_expr (env : renv) (e : Ast.expr) : si option =
  let affine =
    match Affine.of_expr env.r_ctx e with
    | Some f -> si_of_affine env f
    | None -> None
  in
  (* the affine form is exact on correlations (e.g. [idx - tidx]) but
     decomposes a loop variable as init + step·iter, losing the limit
     clamp; the structural walk has the clamp but no correlations — so
     intersect the two *)
  match (affine, structural_range env e) with
  | Some a, Some s ->
      Some (Option.value (si_clamp a ~lo:s.lo ~hi:s.hi) ~default:a)
  | (Some _ as r), None | None, r -> r

and structural_range (env : renv) (e : Ast.expr) : si option =
  let ( let* ) = Option.bind in
  match e with
  | Int_lit n -> Some (si_const n)
  | Float_lit _ -> None
  | Builtin b ->
      let l = env.r_launch in
      let dim n = Some (si_norm { lo = 0; hi = n - 1; st = 1 }) in
      (match b with
      | Tidx -> dim l.block_x
      | Tidy -> dim l.block_y
      | Bidx -> dim l.grid_x
      | Bidy -> dim l.grid_y
      | Idx -> dim (l.grid_x * l.block_x)
      | Idy -> dim (l.grid_y * l.block_y)
      | Bdimx -> Some (si_const l.block_x)
      | Bdimy -> Some (si_const l.block_y)
      | Gdimx -> Some (si_const l.grid_x)
      | Gdimy -> Some (si_const l.grid_y))
  | Var v -> (
      match List.assoc_opt v env.r_iters with
      | Some s -> Some s
      | None -> (
          match assoc_split v env.r_binds with
          | Some (Bval n, _) -> Some (si_const n)
          | Some (Bexpr e', rest) ->
              range_expr { env with r_binds = rest } e'
          | Some (Bunknown, _) -> None
          | None -> Option.map si_const (List.assoc_opt v env.r_sizes)))
  | Unop (Neg, a) -> Option.map si_neg (range_expr env a)
  | Unop (Not, _) -> Some { lo = 0; hi = 1; st = 1 }
  | Binop (Add, a, b) ->
      let* x = range_expr env a in
      let* y = range_expr env b in
      Some (si_add x y)
  | Binop (Sub, a, b) ->
      let* x = range_expr env a in
      let* y = range_expr env b in
      Some (si_sub x y)
  | Binop (Mul, a, b) ->
      let* x = range_expr env a in
      let* y = range_expr env b in
      Some (si_mul x y)
  | Binop (Div, a, b) -> (
      let* y = range_expr env b in
      if y.lo = y.hi && y.lo > 0 then
        let* x = range_expr env a in
        Some (si_div x y.lo)
      else None)
  | Binop (Mod, a, b) -> (
      let* y = range_expr env b in
      if y.lo = y.hi && y.lo > 0 then
        let* x = range_expr env a in
        Some (si_mod x y.lo)
      else None)
  | Binop ((Lt | Le | Gt | Ge | Eq | Ne | And | Or), _, _) ->
      Some { lo = 0; hi = 1; st = 1 }
  | Call ("min", [ a; b ]) ->
      let* x = range_expr env a in
      let* y = range_expr env b in
      Some (si_min x y)
  | Call ("max", [ a; b ]) ->
      let* x = range_expr env a in
      let* y = range_expr env b in
      Some (si_max x y)
  | Select (_, a, b) ->
      let* x = range_expr env a in
      let* y = range_expr env b in
      Some (si_hull x y)
  | Index _ | Vload _ | Field _ | Call _ -> None

(** Refine per-variable bounds from one guard condition: a constraint
    whose affine difference has a single variable pins that variable. *)
let rec refine_guard (env : renv) (cond : Ast.expr) : renv =
  let add_le f bound env =
    (* constraint: f <= bound *)
    match f.Affine.terms with
    | [ (v, c) ] when c <> 0 ->
        let limit = bound - f.Affine.const in
        let lo0, hi0 =
          match List.assoc_opt v env.r_over with
          | Some b -> b
          | None -> (None, None)
        in
        let bnds =
          if c > 0 then
            let u = fdiv limit c in
            (lo0, Some (match hi0 with Some h -> min h u | None -> u))
          else
            let l = cdiv (-limit) (-c) in
            ((Some (match lo0 with Some l0 -> max l0 l | None -> l)), hi0)
        in
        { env with r_over = (v, bnds) :: List.remove_assoc v env.r_over }
    | _ -> env
  in
  match cond with
  | Binop (And, a, b) -> refine_guard (refine_guard env a) b
  | Unop (Not, Binop (Lt, a, b)) -> refine_guard env (Binop (Ge, a, b))
  | Unop (Not, Binop (Le, a, b)) -> refine_guard env (Binop (Gt, a, b))
  | Unop (Not, Binop (Gt, a, b)) -> refine_guard env (Binop (Le, a, b))
  | Unop (Not, Binop (Ge, a, b)) -> refine_guard env (Binop (Lt, a, b))
  | Binop (((Lt | Le | Gt | Ge | Eq) as op), a, b) -> (
      match (Affine.of_expr env.r_ctx a, Affine.of_expr env.r_ctx b) with
      | Some fa, Some fb -> (
          let d = Affine.sub fa fb in
          match op with
          | Lt -> add_le d (-1) env
          | Le -> add_le d 0 env
          | Gt -> add_le (Affine.scale (-1) d) (-1) env
          | Ge -> add_le (Affine.scale (-1) d) 0 env
          | Eq -> add_le (Affine.scale (-1) d) 0 (add_le d 0 env)
          | _ -> env)
      | _ -> env)
  | _ -> env

(** Build the range environment of one access: loop-variable ranges
    outer-to-inner, then guard refinement (two rounds, so a bound on one
    side of a comparison can tighten the other). *)
let renv_of_acc launch sizes (acc : acc) : renv =
  let base =
    {
      r_launch = launch;
      r_sizes = sizes;
      r_binds = acc.a_binds;
      r_iters = [];
      r_trips = [];
      r_ctx = acc.a_ctx;
      r_over = [];
    }
  in
  let env =
    List.fold_left
      (fun env fr ->
        let init = range_expr env fr.fr_init
        and limit = range_expr env fr.fr_limit
        and step = range_expr env fr.fr_step in
        match (init, limit, step) with
        | Some i, Some lim, Some st when st.lo = st.hi && st.lo > 0 ->
            let stv = max 1 (gcd i.st st.lo) in
            let hi_raw = lim.hi - 1 in
            let value =
              si_norm { lo = i.lo; hi = max i.lo hi_raw; st = stv }
            in
            let trips_hi = max 0 ((lim.hi - 1 - i.lo) / st.lo) in
            {
              env with
              r_iters = (fr.fr_var, value) :: env.r_iters;
              r_trips =
                (fr.fr_var, si_norm { lo = 0; hi = trips_hi; st = 1 })
                :: env.r_trips;
            }
        | _ -> env)
      base acc.a_frames
  in
  let refine env =
    List.fold_left (fun e g -> refine_guard e g.g_cond) env acc.a_guards
  in
  refine (refine env)

(** Hunt a concrete out-of-bounds witness by enumerating corner blocks,
    sampled lanes and iteration windows with guards evaluated strictly
    (an unevaluable guard skips the instance, so a hit is a real
    executable state). Returns [(dim, value, bound, lane, block)]. *)
let find_oob_witness (launch : Ast.launch) sizes lay (acc : acc) :
    (int * int * int * int * (int * int)) option =
  let gx = launch.grid_x and gy = launch.grid_y in
  let blocks =
    List.sort_uniq compare
      [
        (0, 0);
        (gx - 1, 0);
        (0, gy - 1);
        (gx - 1, gy - 1);
        ((gx - 1) / 2, (gy - 1) / 2);
      ]
  in
  let n = launch.block_x * launch.block_y in
  let lanes =
    if n <= 64 then List.init n (fun i -> i)
    else
      List.sort_uniq compare
        (List.concat
           [
             [ 0; 1; launch.block_x - 1; launch.block_x; n - 2; n - 1; n / 2 ];
             List.init 16 (fun i -> i * (n - 1) / 15);
           ])
      |> List.filter (fun l -> l >= 0 && l < n)
  in
  let found = ref None in
  let bounds =
    match acc.a_kind with
    | `Sc _ -> lay.Layout.pitches
    | `Vec _ -> [ Layout.size_elems lay ]
  in
  List.iter
    (fun (bidx, bidy) ->
      List.iter
        (fun lane ->
          if !found = None then
            enum_access launch sizes ~bidx ~bidy ~lane ~lenient:false
              ~w:witness_window ~frozen:[] acc (fun env ->
                if !found = None then
                  let idxs =
                    match acc.a_kind with
                    | `Sc idxs -> List.map (eval_opt env) idxs
                    | `Vec (w, ie) ->
                        [
                          Option.map
                            (fun v -> if v >= 0 then (v * w) + w - 1 else v * w)
                            (eval_opt env ie);
                        ]
                  in
                  List.iteri
                    (fun dim (value, bound) ->
                      match value with
                      | Some v when (v < 0 || v >= bound) && !found = None ->
                          found := Some (dim, v, bound, lane, (bidx, bidy))
                      | _ -> ())
                    (List.combine idxs bounds)))
        lanes)
    blocks;
  !found

let check_bounds st (launch : Ast.launch) sizes layouts (acc : acc) : unit =
  match Layout.find layouts acc.a_arr with
  | None -> ()
  | Some lay ->
      (* the frozen wrap pass duplicates each access; bounds are
         iteration-uniform, so treat every frame as free (offset 0) *)
      let acc =
        {
          acc with
          a_frames =
            List.map (fun f -> { f with fr_frozen = false; fr_offset = 0 })
              acc.a_frames;
        }
      in
      let env = renv_of_acc launch sizes acc in
      let dims =
        match acc.a_kind with
        | `Sc idxs ->
            if List.length idxs <> List.length lay.Layout.pitches then []
            else List.combine idxs lay.Layout.pitches
        | `Vec (w, ie) ->
            (* element range of the vector access against the flat size *)
            [ (Binop (Mul, ie, Int_lit w), Layout.size_elems lay - (w - 1)) ]
      in
      let unproven =
        List.filter_map
          (fun (e, bound) ->
            match range_expr env e with
            | Some s when s.lo >= 0 && s.hi < bound -> None
            | r -> Some (e, bound, r))
          dims
      in
      if unproven <> [] then begin
        let rule_err =
          if acc.a_space = `Shared then rule_oob_shared else rule_oob_global
        in
        match find_oob_witness launch sizes lay acc with
        | Some (_, v, bound, lane, (bx, by)) ->
            diag st ~rule:rule_err ~path:acc.a_path
              (Printf.sprintf
                 "%s indexes element %d of %s (extent %d) for thread %d of \
                  block (%d,%d)"
                 (acc_expr acc) v acc.a_arr bound lane bx by)
        | None ->
            let e, bound, r = List.hd unproven in
            diag st ~severity:Warning ~rule:rule_oob_unproven ~path:acc.a_path
              (Printf.sprintf
                 "cannot prove %s in bounds: index %s has %s, extent %d"
                 (acc_expr acc)
                 (Pp.expr_to_string e)
                 (match r with
                 | Some s -> Printf.sprintf "range [%d, %d]" s.lo s.hi
                 | None -> "no derivable range")
                 bound)
      end

(* --- bank conflicts on the first half-warp --- *)

let check_bank st (launch : Ast.launch) sizes layouts (acc : acc) : unit =
  if acc.a_space = `Shared then
    match Layout.find layouts acc.a_arr with
    | None -> ()
    | Some lay ->
        let n = launch.block_x * launch.block_y in
        let hw = min 16 n in
        if hw > 1 then begin
          (* first iteration of every loop, lenient guards: lanes whose
             guard fails do not participate in the request *)
          let acc =
            {
              acc with
              a_frames =
                List.map
                  (fun f -> { f with fr_frozen = false; fr_offset = 0 })
                  acc.a_frames;
            }
          in
          let addrs = ref [] in
          for lane = 0 to hw - 1 do
            enum_access launch sizes ~bidx:0 ~bidy:0 ~lane ~lenient:true ~w:1
              ~frozen:[] acc (fun env ->
                match acc_offsets lay acc env with
                | Some (off :: _) when not (List.mem_assoc lane !addrs) ->
                    addrs := (lane, off) :: !addrs
                | _ -> ())
          done;
          let banks = Hashtbl.create 16 in
          List.iter
            (fun (_, off) ->
              let b = ((off mod 16) + 16) mod 16 in
              let prev = try Hashtbl.find banks b with Not_found -> [] in
              if not (List.mem off prev) then
                Hashtbl.replace banks b (off :: prev))
            !addrs;
          let degree =
            Hashtbl.fold (fun _ offs m -> max m (List.length offs)) banks 1
          in
          if degree > 1 then
            diag st ~severity:Warning ~rule:rule_bank_conflict ~path:acc.a_path
              (Printf.sprintf
                 "%s serializes the first half-warp %d-way across shared \
                  banks (pad the minor dimension, e.g. [16][17])"
                 (acc_expr acc) degree)
        end

(* --- coalescing lint via Coalesce_check --- *)

let check_coalescing st launch (k : Ast.kernel) : unit =
  List.iter
    (fun (a : Coalesce_check.access) ->
      match a.verdict with
      | Coalesce_check.Noncoalesced reason ->
          let why =
            match reason with
            | Coalesce_check.Uniform ->
                "all 16 lanes of a half-warp read one address"
            | Strided s -> Printf.sprintf "lane-to-lane stride %d elements" s
            | Misaligned m -> "misaligned base: " ^ m
          in
          diag st ~severity:Warning ~rule:rule_noncoalesced ~path:""
            (Printf.sprintf "global access %s is not coalesced (%s)"
               (Pp.expr_to_string (Index (a.arr, a.indices)))
               why)
      | Coalesced | Unknown -> ())
    (Coalesce_check.analyze_kernel ~launch k)

(* --- driver --- *)

let spaces_of (k : Ast.kernel) : (string * [ `Shared | `Global ]) list =
  let from_params =
    List.filter_map
      (fun (p : Ast.param) ->
        match p.p_ty with
        | Array { space = Global; _ } -> Some (p.p_name, `Global)
        | Array { space = Shared; _ } -> Some (p.p_name, `Shared)
        | _ -> None)
      k.k_params
  in
  let from_decls =
    Rewrite.declared_vars k.k_body
    |> List.filter_map (fun (name, ty) ->
           match ty with
           | Ast.Array { space = Shared; _ } -> Some (name, `Shared)
           | _ -> None)
  in
  from_params @ from_decls

let check ?(max_lanes = 512) ~(launch : Ast.launch) (k : Ast.kernel) :
    diagnostic list =
  let sizes = k.k_sizes in
  let layouts = Layout.of_kernel k in
  let spaces = spaces_of k in
  let st =
    {
      ws_kernel = k.k_name;
      ws_interval = 0;
      ws_accs = [];
      ws_diags = [];
      ws_uniform = (fun binds lp -> uniform_trip_count launch sizes binds lp);
    }
  in
  let env0 =
    {
      w_binds = [];
      w_frames = [];
      w_guards = [];
      w_ctx = Affine.ctx_of_launch ~sizes launch;
      w_div = false;
      w_path = [];
      w_frozen_depth = 0;
    }
  in
  ignore (walk_block st spaces env0 k.k_body);
  let accs = List.rev st.ws_accs in
  (let n = launch.block_x * launch.block_y in
   if
     n > max_lanes
     && List.exists
          (fun a -> a.a_store && Layout.find layouts a.a_arr <> None)
          accs
   then
     diag st ~severity:Warning ~rule:rule_verify_incomplete ~path:""
       (Printf.sprintf
          "race check enumerated only %d of %d lanes; the verdict for this \
           launch is incomplete"
          max_lanes n));
  (* races, interval by interval; the pair table dedups across them *)
  let dedup_pairs = Hashtbl.create 32 in
  let intervals = Hashtbl.create 8 in
  List.iter
    (fun a ->
      Hashtbl.replace intervals a.a_interval
        (a :: (try Hashtbl.find intervals a.a_interval with Not_found -> [])))
    accs;
  Hashtbl.fold (fun i g acc -> (i, List.rev g) :: acc) intervals []
  |> List.sort compare
  |> List.iter (fun (_, group) ->
         check_races st launch sizes layouts ~max_lanes ~dedup_pairs group);
  (* bounds and bank conflicts, once per distinct syntactic access (the
     frozen wrap pass records duplicates) *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun a ->
      let key = (a.a_path, a.a_arr, a.a_store, acc_expr a) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        check_bounds st launch sizes layouts a;
        check_bank st launch sizes layouts a
      end)
    accs;
  check_coalescing st launch k;
  (* dedup, errors first, walk order otherwise *)
  let out = List.rev st.ws_diags in
  let seen = Hashtbl.create 32 in
  let out =
    List.filter
      (fun d ->
        let key = (d.severity, d.rule, d.path, d.message) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.replace seen key ();
          true
        end)
      out
  in
  List.stable_sort
    (fun a b ->
      compare
        (match a.severity with Error -> 0 | Warning -> 1)
        (match b.severity with Error -> 0 | Warning -> 1))
    out

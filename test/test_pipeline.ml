(** The pass-manager layer: declarative pipelines, the cached analysis
    manager, per-pass remarks, and the deprecated options facade.

    - bit-identity: the declarative driver and the legacy boolean-options
      facade produce byte-identical optimized kernels and launches for
      every registry workload, and repeated (analysis-cache-warm) runs
      change nothing;
    - staged: the single-instrumented-run Figure-12 prefixes equal the
      old per-prefix recompiles;
    - a property test that every registered pass declares its analysis
      invalidations soundly;
    - bounded LRU eviction of the analysis cache (hot entries survive);
    - structured remarks carry the required fields. *)

open Util
module Pipeline = Gpcc_core.Pipeline
module Pass = Gpcc_passes.Pass
module Cache = Gpcc_analysis.Analysis_cache
module Workload = Gpcc_workloads.Workload
module Registry = Gpcc_workloads.Registry

let printed (k : Gpcc_ast.Ast.kernel) (l : Gpcc_ast.Ast.launch) =
  Gpcc_ast.Pp.kernel_to_string ~launch:l k
  ^ Printf.sprintf "launch (%d,%d)x(%d,%d)\n" l.grid_x l.grid_y l.block_x
      l.block_y

(* --- bit-identity: Pipeline.run == the options facade, cold == warm --- *)

let test_bit_identity () =
  List.iter
    (fun (w : Workload.t) ->
      let k = Workload.parse w w.test_size in
      List.iter
        (fun (target, degree) ->
          let pipeline =
            Pipeline.default ~cfg:cfg280 ~target_block_threads:target
              ~merge_degree:degree ()
          in
          let r = Pipeline.run ~pipeline k in
          let via_options =
            let opts =
              {
                ((Gpcc_core.Compiler.default_options ~cfg:cfg280 ())
                 [@alert "-deprecated"])
                with
                target_block_threads = target;
                merge_degree = degree;
              }
            in
            Gpcc_core.Compiler.run ~opts k
          in
          Alcotest.(check string)
            (Printf.sprintf "%s (%d,%d): options facade" w.name target degree)
            (printed r.kernel r.launch)
            (printed via_options.kernel via_options.launch);
          (* a second, analysis-cache-warm run is byte-identical *)
          let r2 = Pipeline.run ~pipeline k in
          Alcotest.(check string)
            (Printf.sprintf "%s (%d,%d): warm rerun" w.name target degree)
            (printed r.kernel r.launch)
            (printed r2.kernel r2.launch))
        [ (256, 16); (128, 4) ])
    Registry.all

(* --- staged: one instrumented run == the old per-prefix recompiles --- *)

let test_staged_matches_prefix_recompiles () =
  List.iter
    (fun name ->
      let w = Registry.find_exn name in
      let naive = Workload.parse w w.test_size in
      let staged =
        Pipeline.staged ~cfg:cfg280 ~target_block_threads:128 ~merge_degree:4
          naive
      in
      (* the pre-refactor staged: one full recompile per cumulative
         prefix, a prefix being a set of disabled passes *)
      let prefixes =
        [
          ("naive",
           [ "vectorize-wide"; "vectorize"; "coalesce"; "merge"; "licm";
             "prefetch"; "partition-camping" ]);
          ("+vectorization",
           [ "coalesce"; "merge"; "licm"; "prefetch"; "partition-camping" ]);
          ("+coalescing", [ "merge"; "licm"; "prefetch"; "partition-camping" ]);
          ("+thread/block merge", [ "prefetch"; "partition-camping" ]);
          ("+prefetching", [ "partition-camping" ]);
          ("+partition camping elim.", []);
        ]
      in
      Alcotest.(check (list string))
        (name ^ ": stage labels") (List.map fst prefixes)
        (List.map (fun (l, _, _) -> l) staged);
      List.iter2
        (fun (label, off) (label', k, l) ->
          Alcotest.(check string) "label" label label';
          let r =
            Pipeline.run
              ~pipeline:
                (Pipeline.disable off
                   (Pipeline.default ~cfg:cfg280 ~target_block_threads:128
                      ~merge_degree:4 ()))
              naive
          in
          let launch =
            if Gpcc_ast.Ast.equal_kernel r.kernel naive then
              Option.value
                (Gpcc_passes.Pass_util.naive_launch naive)
                ~default:r.launch
            else r.launch
          in
          Alcotest.(check string)
            (Printf.sprintf "%s stage %S" name label)
            (printed r.kernel launch) (printed k l))
        prefixes staged)
    [ "mm"; "tp" ]

(* --- property: every pass declares its invalidations soundly --- *)

(* Thread each workload through the registry passes by hand, carrying
   the analyses each pass declares preserved; after every fired
   sub-step, a carried analysis must equal a fresh recomputation on the
   transformed kernel. An unsound [invalidates] declaration (a pass
   that changes an analysis it claims to preserve) fails here. *)
let test_invalidation_declarations_sound () =
  List.iter
    (fun name ->
      let w = Registry.find_exn name in
      let naive = Workload.parse w w.test_size in
      let cache = Cache.create () in
      let ctx =
        { Pass.cfg = cfg280; target_block_threads = 128; merge_degree = 4;
          cache }
      in
      let launch =
        Option.get (Gpcc_passes.Pass_util.initial_launch naive)
      in
      let prime k l =
        ignore (Cache.accesses cache ~launch:l k);
        ignore (Cache.coalesced cache ~launch:l k);
        ignore (Cache.sharing cache ~launch:l k);
        ignore (Cache.regcount cache k);
        ignore (Cache.verify cache ~launch:l k)
      in
      let check_preserved pass step (k : Gpcc_ast.Ast.kernel) l =
        List.iter
          (fun kind ->
            let ok =
              match kind with
              | Cache.Affine ->
                  Cache.accesses cache ~launch:l k
                  = Gpcc_analysis.Coalesce_check.analyze_kernel ~launch:l k
              | Cache.Coalesce ->
                  Cache.coalesced cache ~launch:l k
                  = Gpcc_analysis.Coalesce_check.all_coalesced
                      (Gpcc_analysis.Coalesce_check.analyze_kernel ~launch:l
                         k)
              | Cache.Sharing ->
                  Cache.sharing cache ~launch:l k
                  = Gpcc_analysis.Sharing.analyze ~launch:l k
              | Cache.Regcount ->
                  Cache.regcount cache k
                  = ( Gpcc_analysis.Regcount.estimate k,
                      Gpcc_analysis.Regcount.shared_bytes k )
              | Cache.Verify ->
                  Cache.verify cache ~launch:l k
                  = Gpcc_analysis.Verify.check ~launch:l k
            in
            if not ok then
              Alcotest.failf
                "%s: pass %s (step %S) declares it preserves %s but the \
                 carried value differs from a fresh recomputation"
                name pass step (Cache.kind_name kind))
          (Pass.preserved (Option.get (Pass.find pass)))
      in
      let k = ref naive and l = ref launch in
      List.iter
        (fun (p : Pass.t) ->
          match p.applies ctx !k !l with
          | Pass.Declined _ -> ()
          | Pass.Applies ->
              let emit step k0 l0 f =
                prime k0 l0;
                let o : Gpcc_passes.Pass_util.outcome = f k0 l0 in
                if o.fired then begin
                  Cache.preserve cache ~kinds:(Pass.preserved p)
                    ~from_:(k0, l0) ~to_:(o.kernel, o.launch);
                  check_preserved p.name step o.kernel o.launch
                end;
                o
              in
              let k', l' = p.transform ctx emit !k !l in
              k := k';
              l := l')
        Pass.registry)
    [ "mm"; "mv"; "tp"; "vv"; "rd" ]

(* --- bounded LRU eviction: hot entries survive past capacity --- *)

let test_lru_eviction_keeps_hot_entries () =
  let kernel i =
    parse_kernel
      (Printf.sprintf
         {|#pragma gpcc dim n 64
__kernel void k%d(float a[64], float o[64], int n) {
  o[idx] = a[idx] * %d;
}|}
         i i)
  in
  let cache = Cache.create ~capacity:4 () in
  let touch i = ignore (Cache.regcount cache (kernel i)) in
  touch 1;
  (* churn five cold entries through a capacity-4 slot, re-touching
     entry 1 after each insertion so it stays the hottest *)
  List.iter
    (fun i ->
      touch i;
      touch 1)
    [ 2; 3; 4; 5; 6 ];
  let hits_before = Cache.hits cache in
  touch 1;
  Alcotest.(check int)
    "hot entry survived the churn" (hits_before + 1) (Cache.hits cache);
  let misses_before = Cache.misses cache in
  touch 2;
  Alcotest.(check int)
    "cold entry was evicted" (misses_before + 1) (Cache.misses cache)

(* --- verifier verdicts survive the on-disk round trip --- *)

let test_verify_disk_round_trip () =
  let w = Registry.find_exn "mv" in
  let k = Workload.parse w w.test_size in
  let launch = Option.get (Gpcc_passes.Pass_util.naive_launch k) in
  let fresh = Gpcc_analysis.Verify.check ~launch k in
  (* first fresh instance computes (or reads) and persists the verdict;
     the second starts with an empty memory slot, so it must serve the
     marshalled file — the round trip has to be structurally lossless *)
  let d1 = Cache.verify (Cache.create ()) ~launch k in
  let d2 = Cache.verify (Cache.create ()) ~launch k in
  Alcotest.(check bool) "first instance matches Verify.check" true (d1 = fresh);
  Alcotest.(check bool) "disk round trip is lossless" true (d2 = fresh)

(* --- a corrupt on-disk verdict is dropped and recomputed, not fatal --- *)

let test_verify_disk_corruption () =
  let w = Registry.find_exn "vv" in
  let k = Workload.parse w w.test_size in
  let launch = Option.get (Gpcc_passes.Pass_util.naive_launch k) in
  let fresh = Gpcc_analysis.Verify.check ~launch k in
  let d1 = Cache.verify (Cache.create ()) ~launch k in
  Alcotest.(check bool) "baseline verdict" true (d1 = fresh);
  (* verdicts now live in the sharded artifact store; locate this
     kernel's entry by its stored key (the full kernel text) rather
     than re-deriving the digest scheme *)
  let root = Gpcc_util.Store.default_root () in
  let full = Gpcc_ast.Pp.kernel_to_string ~launch k in
  let read_file p =
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let contains ~needle hay =
    let n = String.length needle and h = String.length hay in
    let rec scan i =
      i + n <= h && (String.equal (String.sub hay i n) needle || scan (i + 1))
    in
    scan 0
  in
  let verdict_files () =
    Sys.readdir root |> Array.to_list
    |> List.concat_map (fun shard ->
           let d = Filename.concat root shard in
           if Sys.is_directory d then
             Sys.readdir d |> Array.to_list
                (* note: [check_suffix ".verdict"] would also match
                   the parametric ".pverdict" entries *)
             |> List.filter (fun f -> Filename.extension f = ".verdict")
             |> List.map (Filename.concat d)
           else [])
  in
  let path =
    match
      List.filter
        (fun p -> contains ~needle:full (read_file p))
        (verdict_files ())
    with
    | [ p ] -> p
    | ps ->
        Alcotest.failf "expected exactly one verdict entry for kernel, got %d"
          (List.length ps)
  in
  Alcotest.(check bool) "verdict file exists" true (Sys.file_exists path);
  let overwrite content =
    let oc = open_out_bin path in
    output_string oc content;
    close_out oc
  in
  let recovered what =
    (* a fresh instance must treat the damaged file as a miss, recompute
       the verdict, and leave a readable file behind *)
    let d = Cache.verify (Cache.create ()) ~launch k in
    Alcotest.(check bool) (what ^ ": verdict recomputed") true (d = fresh);
    let d2 = Cache.verify (Cache.create ()) ~launch k in
    Alcotest.(check bool) (what ^ ": rewritten file round-trips") true
      (d2 = fresh)
  in
  overwrite "";
  recovered "empty file";
  overwrite "gpcc-verify-v2\n";
  recovered "truncated after header";
  overwrite "gpcc-verify-v1\nstale-format-payload";
  recovered "old format version";
  overwrite "gpcc-verify-v2\nthis is not marshalled data";
  recovered "garbage payload"

(* --- remarks: structure and JSON emission --- *)

let test_remarks_structure () =
  let w = Registry.find_exn "mm" in
  let r = compile (Workload.parse w w.test_size) in
  let remarks = Pipeline.remarks r in
  Alcotest.(check bool) "one remark per step" true
    (List.length remarks = List.length r.steps && remarks <> []);
  List.iter
    (fun (rm : Gpcc_core.Remark.t) ->
      Alcotest.(check bool) "pass name non-empty" true (rm.pass <> "");
      Alcotest.(check bool) "step label non-empty" true (rm.step <> "");
      Alcotest.(check bool) "paper section non-empty" true (rm.section <> "");
      Alcotest.(check bool) "reason non-empty" true (rm.reason <> "");
      Alcotest.(check bool) "duration is a time" true (rm.duration_ms >= 0.0);
      Alcotest.(check bool) "metrics populated" true
        (rm.before_m.threads_per_block > 0 && rm.after_m.threads_per_block > 0);
      if not rm.fired then
        Alcotest.(check bool) "declined step keeps metrics equal" true
          (rm.before_m = rm.after_m))
    remarks;
  (* at least one fired merge sub-step reshapes the launch *)
  Alcotest.(check bool) "merge fired with metric delta" true
    (List.exists
       (fun (rm : Gpcc_core.Remark.t) ->
         rm.pass = "merge" && rm.fired && rm.after_m <> rm.before_m)
       remarks);
  let json = Pipeline.remarks_json r in
  List.iter
    (assert_contains "remarks json" json)
    [
      {|"schema":"gpcc-remarks-v1"|}; {|"pass":|}; {|"fired":|};
      {|"duration_ms":|}; {|"before":|}; {|"after":|}; {|"regs":|};
    ]

(* --- pipeline surgery: --passes / --disable-pass semantics --- *)

let test_pipeline_surgery () =
  let p = Pipeline.default () in
  Alcotest.(check (list string))
    "registry order"
    [ "vectorize-wide"; "vectorize"; "coalesce"; "merge"; "licm";
      "partition-camping"; "prefetch" ]
    (Pipeline.pass_names p);
  let disabled = Pipeline.disable [ "prefetch"; "merge" ] p in
  Alcotest.(check (list string))
    "disable removes from the enabled set"
    [ "vectorize-wide"; "vectorize"; "coalesce"; "licm"; "partition-camping" ]
    (Pipeline.enabled_names disabled);
  Alcotest.(check (list string))
    "with_passes keeps the user's order" [ "coalesce"; "vectorize" ]
    (Pipeline.enabled_names (Pipeline.with_passes [ "coalesce"; "vectorize" ] p));
  (match Pipeline.disable [ "no-such-pass" ] p with
  | exception Invalid_argument m ->
      assert_contains "unknown pass error lists the registry" m "coalesce"
  | _ -> Alcotest.fail "unknown pass name accepted");
  let descr = Pipeline.describe disabled in
  List.iter
    (assert_contains "describe" descr)
    [ "merge"; "3.5"; "invalidates" ]

(* --- the deprecated facade still routes through the pass manager --- *)

let test_options_facade_mapping () =
  let opts =
    ((Gpcc_core.Compiler.default_options ()) [@alert "-deprecated"])
  in
  Alcotest.(check (list string))
    "all-on options denote the full pipeline"
    (Pipeline.enabled_names (Pipeline.default ()))
    (Pipeline.enabled_names (Gpcc_core.Compiler.pipeline_of_options opts));
  Alcotest.(check (list string))
    "enable_merge gates merge and the hoisting cleanup"
    [ "vectorize-wide"; "vectorize"; "coalesce"; "partition-camping";
      "prefetch" ]
    (Pipeline.enabled_names
       (Gpcc_core.Compiler.pipeline_of_options { opts with enable_merge = false }));
  Alcotest.(check (list string))
    "enable_vectorize gates both Section-3.1 passes"
    [ "coalesce"; "merge"; "licm"; "partition-camping"; "prefetch" ]
    (Pipeline.enabled_names
       (Gpcc_core.Compiler.pipeline_of_options
          { opts with enable_vectorize = false }))

let suite =
  ( "pipeline",
    [
      Alcotest.test_case "bit-identity: driver == options facade, cold == warm"
        `Slow test_bit_identity;
      Alcotest.test_case "staged == per-prefix recompiles (mm, tp)" `Quick
        test_staged_matches_prefix_recompiles;
      Alcotest.test_case "pass invalidation declarations are sound" `Quick
        test_invalidation_declarations_sound;
      Alcotest.test_case "analysis cache: LRU keeps hot entries" `Quick
        test_lru_eviction_keeps_hot_entries;
      Alcotest.test_case "verifier verdicts: disk round trip" `Quick
        test_verify_disk_round_trip;
      Alcotest.test_case "verifier verdicts: corrupt files recovered" `Quick
        test_verify_disk_corruption;
      Alcotest.test_case "remarks: structure and JSON" `Quick
        test_remarks_structure;
      Alcotest.test_case "pipeline surgery: disable / with_passes / describe"
        `Quick test_pipeline_surgery;
      Alcotest.test_case "options facade maps onto the pass manager" `Quick
        test_options_facade_mapping;
    ] )

lib/workloads/conv.ml: Array Printf Workload

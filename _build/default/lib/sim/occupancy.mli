(** SM occupancy: thread blocks resident per streaming multiprocessor
    given register, shared-memory and thread-count footprints (paper
    Section 2c). *)

type t = {
  blocks_per_sm : int;
  active_threads : int;
  active_warps : int;
  limited_by : string;  (** "registers" / "shared-memory" / "threads" / "max-blocks" / "register-spill" *)
  reg_spill : bool;
      (** even one block exceeds the register file; the compiler would
          spill to off-chip local memory *)
}

val show : t -> string
val pp : Format.formatter -> t -> unit

val calc :
  Config.t ->
  regs_per_thread:int ->
  shared_per_block:int ->
  threads_per_block:int ->
  t

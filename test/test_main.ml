(** Test-suite entry point: every module contributes one Alcotest suite. *)

let () =
  Alcotest.run "gpcc"
    [
      Test_parser.suite;
      Test_typecheck.suite;
      Test_affine.suite;
      Test_rewrite.suite;
      Test_analysis.suite;
      Test_verify.suite;
      Test_symverify.suite;
      Test_sim.suite;
      Test_backend.suite;
      Test_passes.suite;
      Test_workloads.suite;
      Test_explore.suite;
      Test_compiler.suite;
      Test_pipeline.suite;
      Test_fuzz.suite;
    ]

(** Memory layouts of global and shared arrays.

    The paper pads input arrays so that "the row size of each array is a
    multiple of 16 words" (Section 3.3); we record the padded pitch of every
    dimension here so that both the analysis (flattened affine addresses)
    and the simulator (actual allocation) agree on addresses. *)

open Gpcc_ast

type t = {
  name : string;
  elt : Ast.scalar;
  dims : int list;  (** logical extents, outermost first *)
  pitches : int list;  (** padded extent of each dimension (minor padded) *)
}

(** Pad to the next multiple of [align] (16 words for coalescing). *)
let round_up n align = (n + align - 1) / align * align

(** Layout for a declared array; the minor dimension is padded to 16
    elements unless [pad] is [false]. *)
let make ?(pad = true) name (a : Ast.array_ty) : t =
  let rec pitches = function
    | [] -> []
    | [ minor ] -> [ (if pad then round_up minor 16 else minor) ]
    | d :: rest -> d :: pitches rest
  in
  { name; elt = a.elt; dims = a.dims; pitches = pitches a.dims }

(** Element stride of each dimension: product of the pitches of the inner
    dimensions. *)
let strides (t : t) : int list =
  let rec go = function
    | [] -> []
    | _ :: rest as l ->
        let inner = List.fold_left ( * ) 1 (List.tl l) in
        inner :: go rest
  in
  go t.pitches

(** Total padded size in elements. *)
let size_elems (t : t) = List.fold_left ( * ) 1 t.pitches

let size_bytes (t : t) = size_elems t * Ast.scalar_size t.elt

(** Flatten a multi-dimensional affine index into a single element offset. *)
let flatten (t : t) (indices : Affine.t list) : Affine.t =
  if List.length indices <> List.length t.dims then
    invalid_arg
      (Printf.sprintf "Layout.flatten: %s has rank %d, got %d indices" t.name
         (List.length t.dims) (List.length indices));
  List.fold_left2
    (fun acc idx stride -> Affine.add acc (Affine.scale stride idx))
    Affine.zero indices (strides t)

(** Layout table for a kernel: one entry per global array parameter and
    per shared array declared in the body. *)
type table = (string * t) list

let of_kernel ?(pad = true) (k : Ast.kernel) : table =
  let from_params =
    List.filter_map
      (fun (p : Ast.param) ->
        match p.p_ty with
        | Array a -> Some (p.p_name, make ~pad p.p_name a)
        | Scalar _ -> None)
      k.k_params
  in
  let from_decls =
    Rewrite.declared_vars k.k_body
    |> List.filter_map (fun (name, ty) ->
           match ty with
           | Ast.Array a -> Some (name, make ~pad:false name a)
           | Scalar _ -> None)
  in
  from_params @ from_decls

let find (tbl : table) name = List.assoc_opt name tbl

let find_exn (tbl : table) name =
  match find tbl name with
  | Some l -> l
  | None -> invalid_arg ("Layout.find_exn: unknown array " ^ name)

(** Static kernel verifier: translation validation for the pipeline.

    [check] analyzes one kernel at one launch configuration and reports
    diagnostics. Each thread's execution is split into {e barrier
    intervals} at [__syncthreads()] / [__global_sync()]; within one
    interval the per-thread access sets of every shared (and, per block,
    global) array are intersected by concretely enumerating the block's
    lanes over the affine/index machinery of {!Affine}, so two distinct
    threads touching one element with at least one store is a data race.
    Loops whose body contains no barrier contribute a free iteration
    window per access; loops that do contain a barrier keep a frozen
    iteration shared by the whole block, and the wrap-around interval
    (last sub-interval of iteration [k] joined with the first of
    [k+1]) is modeled so a missing trailing barrier is caught.

    Rules reported (severity in parentheses):
    - [race-shared] (error): two threads of a block touch the same
      shared-memory element in one barrier interval, at least one write;
    - [race-global] (error): same, for a global array within one block;
    - [barrier-divergence] (error): [__syncthreads] under
      thread-dependent control flow, or [__global_sync] not at kernel
      top level;
    - [oob-shared] / [oob-global] (error): an enumerated thread
      provably indexes outside the declared (padded) array shape;
    - [oob-unproven] (warning): an index could be neither proven
      in-bounds by the strided-interval analysis nor refuted by a
      concrete witness;
    - [bank-conflict] (warning): a shared access serializes the first
      half-warp across banks;
    - [noncoalesced] (warning): a global access fails the
      {!Coalesce_check} coalescing rules.

    Known limits (lint-grade, by design): races between threads of
    different blocks are not checked, iteration windows are capped (the
    paper's period-16 argument makes small windows representative), and
    accesses whose index cannot be evaluated are skipped by the race
    check (the bounds check still reports them as [oob-unproven]). *)

type severity =
  | Error
  | Warning

type diagnostic = {
  severity : severity;
  rule : string;  (** rule id, e.g. ["race-shared"] *)
  kernel : string;  (** kernel name *)
  path : string;  (** statement path, e.g. ["for(i)/if(tidx < 16)"] *)
  message : string;
}

val rule_race_shared : string
val rule_race_global : string
val rule_barrier_divergence : string
val rule_oob_shared : string
val rule_oob_global : string
val rule_oob_unproven : string
val rule_bank_conflict : string
val rule_noncoalesced : string

(** Warning emitted when the race check truncated the lane enumeration
    ([block_x * block_y > max_lanes]) and the verdict for this launch
    is therefore incomplete. *)
val rule_verify_incomplete : string

(** Verify a kernel at a launch configuration. [max_lanes] caps the
    per-block thread enumeration (default 512). Diagnostics are
    deduplicated and sorted errors-first. *)
val check :
  ?max_lanes:int -> launch:Gpcc_ast.Ast.launch -> Gpcc_ast.Ast.kernel -> diagnostic list

val errors : diagnostic list -> diagnostic list
val warnings : diagnostic list -> diagnostic list

(** No error-severity diagnostics ([warnings] are fine). *)
val is_clean : diagnostic list -> bool

val severity_to_string : severity -> string
val to_string : diagnostic -> string

(** One diagnostic as a JSON object (keys [severity], [rule], [kernel],
    [path], [message]). *)
val json_escape : string -> string
(** Escape a string for embedding in a JSON string literal. *)

val json_of_diagnostic : diagnostic -> string

(** A JSON array of diagnostics. *)
val json_of_diagnostics : diagnostic list -> string

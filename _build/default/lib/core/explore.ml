(** Design-space exploration (paper Section 4).

    The number of threads per block (via thread-block merge) and the
    number of threads merged into one (via thread merge) interact
    non-linearly with occupancy and reuse, so — exactly like the paper —
    the compiler generates one kernel version per configuration and picks
    the best by empirically running each one (here: on the simulator; in
    the paper: on the GPU).

    Candidate configurations follow Section 4.1: 128, 256 or 512 threads
    per block, and thread-merge degrees 4, 8, 16 or 32. *)

open Gpcc_ast

type candidate = {
  target_block_threads : int;
  merge_degree : int;
  result : Compiler.result;
  score : float;  (** measured GFLOPS (higher is better) *)
}

let default_block_targets = [ 16; 32; 64; 128; 256; 512 ]
let default_merge_degrees = [ 1; 4; 8; 16; 32 ]

(** Compile every configuration and score it with [measure] (which
    typically runs the kernel on the simulator with the intended input
    sizes). Configurations that fail to compile are dropped. *)
let search ?(cfg = Gpcc_sim.Config.gtx280)
    ?(block_targets = default_block_targets)
    ?(merge_degrees = default_merge_degrees) (naive : Ast.kernel)
    ~(measure : Ast.kernel -> Ast.launch -> float) : candidate list =
  List.concat_map
    (fun target_block_threads ->
      List.filter_map
        (fun merge_degree ->
          let opts =
            {
              (Compiler.default_options ~cfg ()) with
              target_block_threads;
              merge_degree;
            }
          in
          match Compiler.run ~opts naive with
          | result ->
              let score =
                match measure result.kernel result.launch with
                | s -> s
                | exception _ -> Float.neg_infinity
              in
              Some { target_block_threads; merge_degree; result; score }
          | exception _ -> None)
        merge_degrees)
    block_targets

(** Deduplicate candidates that compiled to the same kernel (different
    knobs can coincide), keeping the first. *)
let distinct (cands : candidate list) : candidate list =
  let seen = ref [] in
  List.filter
    (fun c ->
      let key = Pp.kernel_to_string ~launch:c.result.launch c.result.kernel in
      if List.mem key !seen then false
      else begin
        seen := key :: !seen;
        true
      end)
    cands

let best (cands : candidate list) : candidate option =
  List.fold_left
    (fun acc c ->
      match acc with
      | None -> Some c
      | Some b -> if c.score > b.score then Some c else acc)
    None cands

(** One-call empirical search, as the paper's compiler does before
    emitting the final version. *)
let pick ?cfg ?block_targets ?merge_degrees naive ~measure :
    candidate option =
  best (search ?cfg ?block_targets ?merge_degrees naive ~measure)

lib/core/explore.pp.ml: Ast Compiler Float Gpcc_ast Gpcc_sim List Pp

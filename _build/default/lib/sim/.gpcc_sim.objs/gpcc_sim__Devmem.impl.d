lib/sim/devmem.pp.ml: Array Gpcc_analysis Gpcc_ast Hashtbl Layout List Printf

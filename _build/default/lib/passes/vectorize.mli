(** Vectorization of memory accesses (paper Section 3.1): pairs of loads
    [a[2*e + N]] / [a[2*e + N + 1]] (N even) become one [float2] load with
    [.x]/[.y] uses. A paired register is only reused up to the next store
    to the array or barrier. *)

(** Syntactically halve an even index expression ([2*e] -> [e]). *)
val halve : Gpcc_ast.Ast.expr -> Gpcc_ast.Ast.expr option

val apply : Gpcc_ast.Ast.kernel -> Gpcc_ast.Ast.launch -> Pass_util.outcome

(** Per-hardware deployment (paper Section 4.2): one empirically selected
    kernel version per machine description. *)

type entry = {
  gpu : Gpcc_sim.Config.t;
  chosen : Explore.candidate;
  alternatives : int;  (** distinct versions considered for this GPU *)
}

type bundle = {
  kernel_name : string;
  entries : entry list;
}

exception No_version of string

val build :
  ?gpus:Gpcc_sim.Config.t list ->
  measure:
    (Gpcc_sim.Config.t -> Gpcc_ast.Ast.kernel -> Gpcc_ast.Ast.launch -> float) ->
  Gpcc_ast.Ast.kernel ->
  bundle

val build_cached :
  ?store:Gpcc_util.Store.t ->
  prefix:string ->
  ?gpus:Gpcc_sim.Config.t list ->
  measure:
    (Gpcc_sim.Config.t -> Gpcc_ast.Ast.kernel -> Gpcc_ast.Ast.launch -> float) ->
  Gpcc_ast.Ast.kernel ->
  bundle
(** [build] memoized through {!Gpcc_util.Store} (the ["bundle"] kind):
    a warm run skips the whole per-hardware search. [prefix] must name
    the measurement context (workload, problem size) — the key also
    embeds the GPU list and the naive kernel text, so any change to
    the kernel or target set invalidates implicitly. [store] defaults
    to the store at {!Gpcc_util.Store.default_root}. *)

val save :
  ?store:Gpcc_util.Store.t ->
  prefix:string ->
  gpus:Gpcc_sim.Config.t list ->
  Gpcc_ast.Ast.kernel ->
  bundle ->
  unit
(** Persist a bundle under the same key [build_cached] would use. *)

val load :
  ?store:Gpcc_util.Store.t ->
  prefix:string ->
  gpus:Gpcc_sim.Config.t list ->
  Gpcc_ast.Ast.kernel ->
  bundle option

(** The version selected for a GPU (by config name); raises
    {!No_version}. *)
val pick : bundle -> string -> Compiler.result

val describe : bundle -> string

(** Vectorization of memory accesses (paper Section 3.1).

    NVIDIA rule (the strict one the paper uses for CUDA targets): when a
    pair of accesses to the same array has indices [2*e + N] and
    [2*e + N + 1] with [N] even, the pair is replaced by a single [float2]
    load at vector offset [e + N/2], and the two uses become [.x] and
    [.y]. This is designed for complex numbers stored with the real part
    next to the imaginary part.

    The two paired accesses must live in the same block (straight-line
    region), where a [float2] declaration inserted before the first of the
    two statements dominates both uses. *)

open Gpcc_ast
open Ast
open Gpcc_analysis

(** Syntactically halve an even index expression: [2*e] -> [e],
    [2*e + 2c] -> [e + c]. *)
let rec halve (e : Ast.expr) : Ast.expr option =
  match e with
  | Int_lit n when n mod 2 = 0 -> Some (Int_lit (n / 2))
  | Binop (Mul, Int_lit 2, x) | Binop (Mul, x, Int_lit 2) -> Some x
  | Binop (Add, a, b) -> (
      match (halve a, halve b) with
      | Some a', Some b' -> Some (Ast.( +: ) a' b')
      | _ -> None)
  | Binop (Sub, a, b) -> (
      match (halve a, halve b) with
      | Some a', Some b' -> Some (Ast.( -: ) a' b')
      | _ -> None)
  | _ -> None

(** 1-D load accesses of global arrays appearing *directly* in a statement
    (not inside nested blocks, which the recursion handles at their own
    scope — a pair must be replaced where its loop variables are live). *)
let stmt_loads (globals : string list) (s : Ast.stmt) :
    (string * Ast.expr) list =
  let shallow =
    match s with
    | If (c, _, _) -> [ Assign (Lvar "_c", c) ]
    | For _ | Sync | Global_sync | Comment _ -> []
    | s -> [ s ]
  in
  Rewrite.collect_accesses shallow
  |> List.filter_map (fun (arr, idxs, is_store) ->
         match idxs with
         | [ ix ] when (not is_store) && List.mem arr globals -> Some (arr, ix)
         | _ -> None)

(** Find a pair ([2*e+N], [2*e+N+1]) among accesses to the same array. The
    affine engine checks the "+1" relation; [halve] extracts the vector
    offset syntactically so the emitted code stays readable. *)
let find_pair (ctx : Affine.ctx) (accesses : (string * Ast.expr) list) :
    (string * Ast.expr * Ast.expr * Ast.expr) option =
  let with_forms =
    List.filter_map
      (fun (arr, ix) ->
        match Affine.of_expr ctx ix with
        | Some f -> Some (arr, ix, f)
        | None -> None)
      accesses
  in
  let rec scan = function
    | [] -> None
    | (arr, ix1, f1) :: rest -> (
        let partner =
          List.find_opt
            (fun (arr2, _, f2) ->
              String.equal arr arr2
              && Affine.equal (Affine.sub f2 f1) (Affine.const 1))
            rest
        in
        match partner with
        | Some (_, ix2, _) -> (
            match halve ix1 with
            | Some v_index -> Some (arr, ix1, ix2, v_index)
            | None -> scan rest)
        | None -> scan rest)
  in
  scan with_forms

(** Vectorize one block: scan straight-line statements, pair accesses that
    may live in different adjacent statements of the same block. Returns
    the rewritten block and how many pairs were formed. [ctx] mirrors the
    walk in {!Coalesce_check.analyze_kernel} for loop handling. *)
let rec vectorize_block (k : Ast.kernel) (counter : int ref)
    (ctx : Affine.ctx) (globals : string list) (b : Ast.block) : Ast.block =
  (* first recurse into structured statements *)
  let b =
    List.map
      (fun s ->
        match s with
        | If (c, t, f) ->
            If
              ( c,
                vectorize_block k counter ctx globals t,
                vectorize_block k counter ctx globals f )
        | For l -> (
            match Affine.enter_loop ctx l with
            | Some ctx' ->
                For
                  { l with l_body = vectorize_block k counter ctx' globals l.l_body }
            | None ->
                For { l with l_body = vectorize_block k counter ctx globals l.l_body })
        | s -> s)
      b
  in
  (* then pair accesses across this block's straight-line statements *)
  let rec pair_pass b =
    let all = List.concat_map (stmt_loads globals) b in
    match find_pair ctx all with
    | None -> b
    | Some (arr, ix1, ix2, v_index) ->
        let name = Printf.sprintf "vec%d" !counter in
        let name = Rewrite.fresh_name (Pass_util.used_names k) name in
        incr counter;
        let decl =
          Decl
            {
              d_name = name;
              d_ty = Scalar Float2;
              d_init = Some (Vload { v_arr = arr; v_width = 2; v_index });
            }
        in
        let subst s =
          [ s ]
          |> Pass_util.replace_expr (Index (arr, [ ix1 ])) (Field (Var name, FX))
          |> Pass_util.replace_expr (Index (arr, [ ix2 ])) (Field (Var name, FY))
          |> List.hd
        in
        (* the register is only valid until the array is overwritten or a
           barrier lets other threads overwrite it; stop substituting
           there (later identical loads form their own pair next round) *)
        let kills s =
          match s with
          | Sync | Global_sync -> true
          | _ ->
              Rewrite.collect_accesses [ s ]
              |> List.exists (fun (a, _, st) -> st && String.equal a arr)
        in
        (* insert the float2 load before the first statement using either *)
        let rec insert = function
          | [] -> []
          | s :: rest ->
              let uses =
                stmt_loads globals s
                |> List.exists (fun (a, ix) ->
                       String.equal a arr
                       && (Ast.equal_expr ix ix1 || Ast.equal_expr ix ix2))
              in
              if uses then begin
                let rec live = function
                  | [] -> []
                  | s :: rest ->
                      if kills s then s :: rest else subst s :: live rest
                in
                decl :: subst s :: live rest
              end
              else s :: insert rest
        in
        pair_pass (insert b)
  in
  pair_pass b

(** The pass: returns the kernel with paired accesses vectorized. *)
let apply (k : Ast.kernel) (launch : Ast.launch) : Pass_util.outcome =
  let ctx = Affine.ctx_of_launch ~sizes:k.k_sizes launch in
  let counter = ref 0 in
  let globals = Pass_util.global_arrays k in
  let body = vectorize_block k counter ctx globals k.k_body in
  if !counter = 0 then
    Pass_util.unchanged ~notes:[ "no 2*e / 2*e+1 access pairs found" ] k launch
  else
    Pass_util.changed
      ~notes:
        [ Printf.sprintf "grouped %d access pairs into float2 loads" !counter ]
      { k with k_body = body }
      launch

(** Design-space exploration (paper Section 4): generate one kernel
    version per (threads-per-block, thread-merge-degree) configuration and
    select the best by empirically running each — on the simulator here,
    on the GPU in the paper. *)

type candidate = {
  target_block_threads : int;
  merge_degree : int;
  result : Compiler.result;
  score : float;  (** measured GFLOPS (higher is better) *)
}

val default_block_targets : int list
val default_merge_degrees : int list

(** Compile every configuration and score it with [measure]; failing
    configurations are dropped, failing measurements score [-inf]. *)
val search :
  ?cfg:Gpcc_sim.Config.t ->
  ?block_targets:int list ->
  ?merge_degrees:int list ->
  Gpcc_ast.Ast.kernel ->
  measure:(Gpcc_ast.Ast.kernel -> Gpcc_ast.Ast.launch -> float) ->
  candidate list

(** Drop candidates whose kernel and launch coincide with an earlier one
    (different knobs often converge to the same version). *)
val distinct : candidate list -> candidate list

val best : candidate list -> candidate option

(** [search] followed by [best]. *)
val pick :
  ?cfg:Gpcc_sim.Config.t ->
  ?block_targets:int list ->
  ?merge_degrees:int list ->
  Gpcc_ast.Ast.kernel ->
  measure:(Gpcc_ast.Ast.kernel -> Gpcc_ast.Ast.launch -> float) ->
  candidate option

examples/transpose_partition_camping.ml: Gpcc_ast Gpcc_passes Gpcc_sim Gpcc_workloads List Option Printf

(** Recursive-descent parser for the mini-CUDA kernel language.

    Menhir is not available in this environment, and a hand-written parser
    also reads well — in keeping with the paper's emphasis on code
    understandability. Grammar sketch:

    {v
    kernel  ::= pragma* ("__kernel"|"__global__") "void" ident "(" params ")" block
    param   ::= type ident ("[" int "]")*
    stmt    ::= decl | assign | if | for | "__syncthreads" "(" ")" ";"
              | "__global_sync" "(" ")" ";"
    decl    ::= "__shared__"? type ident ("[" int "]")* ("=" expr)? ";"
    assign  ::= lvalue ("="|"+="|"-="|"*="|"/=") expr ";"
    for     ::= "for" "(" "int" ident "=" expr ";" ident "<" expr ";"
                (ident "++" | ident "+=" expr) ")" stmt-or-block
    expr    ::= ternary with C precedence
    v} *)

open Ast

exception Error of string * int

type state = {
  mutable toks : (Lexer.token * int) list;
}

let current st =
  match st.toks with [] -> (Lexer.EOF, 0) | t :: _ -> t

let peek st = fst (current st)
let line st = snd (current st)

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let fail st msg =
  raise (Error (Printf.sprintf "%s (got %s)" msg (Lexer.token_to_string (peek st)), line st))

let expect_punct st p =
  match peek st with
  | Lexer.PUNCT q when String.equal p q -> advance st
  | _ -> fail st (Printf.sprintf "expected '%s'" p)

let expect_kw st k =
  match peek st with
  | Lexer.KW q when String.equal k q -> advance st
  | _ -> fail st (Printf.sprintf "expected keyword '%s'" k)

let expect_ident st =
  match peek st with
  | Lexer.IDENT v ->
      advance st;
      v
  | _ -> fail st "expected identifier"

let expect_int st =
  match peek st with
  | Lexer.INT n ->
      advance st;
      n
  | _ -> fail st "expected integer literal"

let accept_punct st p =
  match peek st with
  | Lexer.PUNCT q when String.equal p q ->
      advance st;
      true
  | _ -> false

let scalar_of_kw = function
  | "int" -> Some Int
  | "float" -> Some Float
  | "float2" -> Some Float2
  | "float4" -> Some Float4
  | "bool" -> Some Bool
  | _ -> None

(* --- expressions: precedence climbing --- *)

let binop_of_punct = function
  | "*" -> Some (Mul, 10)
  | "/" -> Some (Div, 10)
  | "%" -> Some (Mod, 10)
  | "+" -> Some (Add, 9)
  | "-" -> Some (Sub, 9)
  | "<" -> Some (Lt, 8)
  | "<=" -> Some (Le, 8)
  | ">" -> Some (Gt, 8)
  | ">=" -> Some (Ge, 8)
  | "==" -> Some (Eq, 7)
  | "!=" -> Some (Ne, 7)
  | "&&" -> Some (And, 5)
  | "||" -> Some (Or, 4)
  | _ -> None

let rec parse_expr st = parse_ternary st

and parse_ternary st =
  let c = parse_binary st 0 in
  if accept_punct st "?" then begin
    let t = parse_ternary st in
    expect_punct st ":";
    let f = parse_ternary st in
    Select (c, t, f)
  end
  else c

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.PUNCT p -> (
        match binop_of_punct p with
        | Some (op, prec) when prec >= min_prec ->
            advance st;
            let rhs = parse_binary st (prec + 1) in
            lhs := Binop (op, !lhs, rhs)
        | _ -> continue := false)
    | _ -> continue := false
  done;
  !lhs

and parse_unary st =
  if accept_punct st "-" then Unop (Neg, parse_unary st)
  else if accept_punct st "!" then Unop (Not, parse_unary st)
  else if accept_punct st "+" then parse_unary st
  else parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    if accept_punct st "[" then begin
      let i = parse_expr st in
      expect_punct st "]";
      match !e with
      | Var a -> e := Index (a, [ i ])
      | Index (a, es) -> e := Index (a, es @ [ i ])
      | _ -> fail st "array index on a non-array expression"
    end
    else if accept_punct st "." then begin
      let f = expect_ident st in
      match field_of_name f with
      | Some f -> e := Field (!e, f)
      | None -> fail st ("unknown vector field ." ^ f)
    end
    else continue := false
  done;
  !e

and parse_primary st =
  match peek st with
  | Lexer.INT n ->
      advance st;
      Int_lit n
  | Lexer.FLOAT f ->
      advance st;
      Float_lit f
  | Lexer.PUNCT "(" ->
      advance st;
      let e = parse_expr st in
      expect_punct st ")";
      e
  | Lexer.IDENT v -> (
      advance st;
      if accept_punct st "(" then begin
        let args = ref [] in
        if not (accept_punct st ")") then begin
          args := [ parse_expr st ];
          while accept_punct st "," do
            args := parse_expr st :: !args
          done;
          expect_punct st ")"
        end;
        Call (v, List.rev !args)
      end
      else
        match builtin_of_name v with
        | Some b -> Builtin b
        | None -> Var v)
  | _ -> fail st "expected expression"

(* --- lvalues --- *)

let lvalue_of_expr st e =
  let rec go = function
    | Var v -> Lvar v
    | Index (a, es) -> Lindex (a, es)
    | Field (inner, f) -> Lfield (go inner, f)
    | _ -> fail st "expression is not assignable"
  in
  go e

(* --- statements --- *)

let rec parse_stmt st : stmt =
  match peek st with
  | Lexer.KW "__syncthreads" ->
      advance st;
      expect_punct st "(";
      expect_punct st ")";
      expect_punct st ";";
      Sync
  | Lexer.KW "__global_sync" ->
      advance st;
      expect_punct st "(";
      expect_punct st ")";
      expect_punct st ";";
      Global_sync
  | Lexer.KW "if" ->
      advance st;
      expect_punct st "(";
      let c = parse_expr st in
      expect_punct st ")";
      let t = parse_stmt_or_block st in
      let f =
        match peek st with
        | Lexer.KW "else" ->
            advance st;
            parse_stmt_or_block st
        | _ -> []
      in
      If (c, t, f)
  | Lexer.KW "for" ->
      advance st;
      expect_punct st "(";
      expect_kw st "int";
      let v = expect_ident st in
      expect_punct st "=";
      let init = parse_expr st in
      expect_punct st ";";
      let v2 = expect_ident st in
      if not (String.equal v v2) then fail st "loop condition must test the loop variable";
      expect_punct st "<";
      let limit = parse_expr st in
      expect_punct st ";";
      let v3 = expect_ident st in
      if not (String.equal v v3) then fail st "loop step must update the loop variable";
      let step =
        if accept_punct st "++" then Int_lit 1
        else begin
          expect_punct st "+=";
          parse_expr st
        end
      in
      expect_punct st ")";
      let body = parse_stmt_or_block st in
      For { l_var = v; l_init = init; l_limit = limit; l_step = step; l_body = body }
  | Lexer.KW ("__shared__" | "int" | "float" | "float2" | "float4" | "bool") ->
      parse_decl st
  | _ ->
      (* assignment *)
      let e = parse_expr st in
      let lv = lvalue_of_expr st e in
      let stmt =
        match peek st with
        | Lexer.PUNCT "=" ->
            advance st;
            Assign (lv, parse_expr st)
        | Lexer.PUNCT (("+=" | "-=" | "*=" | "/=") as p) ->
            advance st;
            let rhs = parse_expr st in
            let op =
              match p with
              | "+=" -> Add
              | "-=" -> Sub
              | "*=" -> Mul
              | _ -> Div
            in
            Assign (lv, Binop (op, e, rhs))
        | _ -> fail st "expected assignment operator"
      in
      expect_punct st ";";
      stmt

and parse_decl st : stmt =
  let space =
    match peek st with
    | Lexer.KW "__shared__" ->
        advance st;
        Shared
    | _ -> Register
  in
  let elt =
    match peek st with
    | Lexer.KW k -> (
        match scalar_of_kw k with
        | Some s ->
            advance st;
            s
        | None -> fail st "expected a type")
    | _ -> fail st "expected a type"
  in
  let name = expect_ident st in
  let dims = ref [] in
  while accept_punct st "[" do
    dims := expect_int st :: !dims;
    expect_punct st "]"
  done;
  let dims = List.rev !dims in
  let ty =
    if dims = [] then Scalar elt else Array { elt; space; dims }
  in
  if space = Shared && dims = [] then fail st "__shared__ requires an array";
  let init = if accept_punct st "=" then Some (parse_expr st) else None in
  expect_punct st ";";
  Decl { d_name = name; d_ty = ty; d_init = init }

and parse_stmt_or_block st : block =
  if accept_punct st "{" then begin
    let stmts = ref [] in
    while not (accept_punct st "}") do
      if peek st = Lexer.EOF then fail st "unterminated block";
      stmts := parse_stmt st :: !stmts
    done;
    List.rev !stmts
  end
  else [ parse_stmt st ]

(* --- kernel --- *)

let parse_param st : param =
  let elt =
    match peek st with
    | Lexer.KW k -> (
        match scalar_of_kw k with
        | Some s ->
            advance st;
            s
        | None -> fail st "expected parameter type")
    | _ -> fail st "expected parameter type"
  in
  let name = expect_ident st in
  let dims = ref [] in
  while accept_punct st "[" do
    dims := expect_int st :: !dims;
    expect_punct st "]"
  done;
  let dims = List.rev !dims in
  let ty =
    if dims = [] then Scalar elt
    else Array { elt; space = Global; dims }
  in
  { p_name = name; p_ty = ty }

let parse_kernel_body st =
  (* pragmas *)
  let sizes = ref [] in
  let output = ref [] in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.PRAGMA words -> (
        advance st;
        match words with
        | [ "dim"; name; value ] -> (
            match int_of_string_opt value with
            | Some v -> sizes := (name, v) :: !sizes
            | None -> fail st "pragma dim expects an integer value")
        | "output" :: names -> output := !output @ names
        | _ -> fail st "unknown #pragma gpcc directive")
    | _ -> continue := false
  done;
  (match peek st with
  | Lexer.KW ("__kernel" | "__global__") -> advance st
  | _ -> fail st "expected __kernel or __global__");
  expect_kw st "void";
  let name = expect_ident st in
  expect_punct st "(";
  let params = ref [] in
  if not (accept_punct st ")") then begin
    params := [ parse_param st ];
    while accept_punct st "," do
      params := parse_param st :: !params
    done;
    expect_punct st ")"
  end;
  let body = parse_stmt_or_block st in
  {
    k_name = name;
    k_params = List.rev !params;
    k_body = body;
    k_output = !output;
    k_sizes = List.rev !sizes;
  }

(** Parse one kernel from source text. *)
let kernel_of_string (src : string) : kernel =
  let st = { toks = Lexer.tokenize src } in
  let k = parse_kernel_body st in
  (match peek st with
  | Lexer.EOF -> ()
  | _ -> fail st "trailing input after kernel");
  k

(** Parse a single expression (handy in tests). *)
let expr_of_string (src : string) : expr =
  let st = { toks = Lexer.tokenize src } in
  let e = parse_expr st in
  (match peek st with
  | Lexer.EOF -> ()
  | _ -> fail st "trailing input after expression");
  e

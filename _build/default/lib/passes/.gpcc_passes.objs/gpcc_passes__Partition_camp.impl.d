lib/passes/partition_camp.pp.ml: Affine Ast Coalesce_check Gpcc_analysis Gpcc_ast Gpcc_sim List Pass_util Printf Rewrite String

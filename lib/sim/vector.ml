(** Warp-vectorized simulator backend on flat Bigarray storage.

    The compiled backend ({!Compile}) stages the AST into closures but
    still allocates a fresh per-lane array for every expression node on
    every execution and walks lanes through [Array.iter] closures. This
    backend keeps the staging but replaces the value representation with
    a structure-of-arrays register file: one {e plane} (a contiguous
    [n]-lane row of a flat {!Devmem.fmem} / [int array]) per live value,
    assigned at plan time by a free-list allocator, so steady-state
    execution allocates nothing and the hot loops are dense
    [for]-ranges over [Bigarray.Array1] storage.

    Divergence is handled exactly like the other backends — masks are
    arrays of active lane ids — but the overwhelmingly common full-block
    mask is detected per node ([Array.length m = n]) and runs the dense
    unmasked loop. Expressions the analysis proves block-uniform use the
    same scalar [U*] channel as {!Compile}.

    Memory accounting is the same half-warp math as
    {!Interp.account_global}, but full-mask accesses are digested a
    whole {e plane} at a time: one dense pass classifies the access as
    segmented-strided and resolves it against {!Coalescer.plane_cost} —
    a per-domain plane-granularity memo — fronted by a per-site
    one-entry digest cache. Sites whose varying index is a tid plane
    are {e stable}: the plane never changes inside a block and only
    shifts uniformly across blocks, so uniform-loop iterations replay
    the cached digest after an O(1) congruence check — the closed-form
    loop credit — without walking any lane.

    Bit-identity with the reference interpreter is preserved the same
    way {!Compile} preserves it: identical float operations on identical
    values in identical order, identical exact-integer statistic sums,
    and the one inexact accumulator ([cost_bytes]) fed per half-warp in
    ascending order with the same per-half-warp byte counts. *)

open Gpcc_ast
open Gpcc_analysis

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

(* --- per-block runtime state --- *)

type vrt = {
  c : Interp.bctx;  (** stats, config, launch, tids, txparts *)
  n : int;  (** threads per block (= [c.n], cached for the loops) *)
  fp : Devmem.fmem;  (** float planes, [nf] rows of [n] lanes *)
  ip : int array;  (** int planes; bool planes hold 0/1 *)
  shareds : Devmem.fmem array;  (** shared arrays, one per name *)
  globals : Devmem.arr array;  (** resolved global parameters *)
  uregs : int array;  (** uniform int registers (loop variables) *)
  hw_addrs : int array;  (** 16-slot scratch for half-warp addresses *)
  pl_addrs : int array;  (** [n]-slot scratch for whole-plane addresses *)
  site_a0 : int array;
      (** per global site: lane-0 byte address the cached digest was
          built against ([min_int] = no digest yet) *)
  site_rel0 : int array;  (** per site: cached digest key, [a0 mod g] *)
  site_d : int array;
      (** per site: within-group byte stride of the cached digest
          ([min_int] = invalid, [max_int] = irregular stable shape) *)
  site_dd : int array;  (** per site: group-base delta of the digest *)
  site_dig : Coalescer.plane_digest array;
      (** per site: cached plane digest (totals + relative tx layout,
          so partition-recording runs replay it too) *)
  site_sh_d : int array;
      (** per shared site: word stride of the cached plane totals
          ([min_int] = invalid, [max_int] = irregular stable shape) *)
  site_sh_extra : int array;
      (** per shared site: total bank-conflict extra across the plane *)
  sh_counts : int array;  (** per-bank scratch, [cfg.shared_banks] slots *)
  tx_buf : int array;
      (** [addr; bytes] pairs of the last {!record_group}, 32 slots *)
  seg_s : int array;  (** 16-slot segment-formation scratch *)
  seg_lo : int array;
  seg_hi : int array;
  mutable site_hits : int;  (** digest-cache hits, flushed per phase *)
  mutable cf_credits : int;
      (** closed-form loop replays, flushed per phase *)
}

let inst rt = Interp.inst rt.c
let flops rt k = Interp.flops rt.c k

(* typed wrappers so the bigarray/array primitives specialize to direct
   unboxed loads and stores (a bare alias of the polymorphic external
   eta-expands into the generic C call, which would dominate the hot
   loops) *)
let[@inline] fget (a : Devmem.fmem) (i : int) : float =
  Bigarray.Array1.unsafe_get a i

let[@inline] fset (a : Devmem.fmem) (i : int) (v : float) : unit =
  Bigarray.Array1.unsafe_set a i v

let[@inline] iget (a : int array) (i : int) : int = Array.unsafe_get a i

let[@inline] iset (a : int array) (i : int) (v : int) : unit =
  Array.unsafe_set a i v

(* --- memory accounting ---

   Same per-half-warp math and emission order as the reference, but
   batched a plane at a time on the full block mask: the half warps are
   exactly the contiguous 16-lane groups with lane0 = 0, and one dense
   pass classifies the plane as segmented-strided — uniform byte stride
   [d] within each group, uniform delta [dd] between group bases, the
   shape of every flat and 2-D affine access. Such a plane resolves
   against {!Coalescer.plane_cost} (a per-domain memo of whole-plane
   digests), fronted by a per-site one-entry cache, and the digest is
   replayed with batched statistic adds instead of per-group work.
   Partition-stream recording ([record_tx]) needs absolute transaction
   addresses, which are not shift-invariant; but the transaction
   *offsets* from the first lane address are, so digests carry the
   layout and recording replays it against the current base.

   Sites marked [stable] by the planner read their varying index from a
   tid plane, whose contents never change inside a block and only shift
   uniformly across blocks. Once such a site has a digest, a loop
   iteration whose base moved by a multiple of the memo granularity
   replays it after an O(1) congruence check — no lane walk at all.
   That is the closed-form uniform-loop credit: the per-iteration cost
   is computed once and re-applied per trip ([cf_credits] counts the
   replays). Partial masks fall back to the per-group math. *)

let width_eff (cfg : Config.t) ~(elt_bytes : int) =
  if elt_bytes >= 16 then cfg.Config.bw_efficiency_16b
  else if elt_bytes >= 8 then cfg.Config.bw_efficiency_8b
  else 1.0

let apply_hw (c : Interp.bctx) ~(is_store : bool) ~(weff : float) ntx bytes =
  let s = c.Interp.stats in
  let ntx = float_of_int ntx and bytes = float_of_int bytes in
  s.Stats.cost_bytes <- s.Stats.cost_bytes +. (bytes /. weff);
  if is_store then begin
    s.Stats.gst_tx <- s.Stats.gst_tx +. ntx;
    s.Stats.gst_bytes <- s.Stats.gst_bytes +. bytes;
    s.Stats.gst_requests <- s.Stats.gst_requests +. 1.
  end
  else begin
    s.Stats.gld_tx <- s.Stats.gld_tx +. ntx;
    s.Stats.gld_bytes <- s.Stats.gld_bytes +. bytes;
    s.Stats.gld_requests <- s.Stats.gld_requests +. 1.
  end

(** Granularity below which the coalescing rules inspect addresses; see
    the memo note in {!Coalescer}. *)
let memo_granularity = Coalescer.memo_granularity

(** Closed-form loop replays across every block and domain; per-block
    counts accumulate in [rt.cf_credits] and flush here per phase. *)
let closed_form = Atomic.make 0

let closed_form_credits () = Atomic.get closed_form

(** Apply [reps] identical half-warp requests. The reference adds each
    group's byte cost in sequence; when the width-efficiency divisor is
    1 and the accumulator is still an exact integer, every partial sum
    is an exact integer too, so one batched add per field is bitwise
    identical. Otherwise fall back to the sequential loop. *)
let apply_hw_n (c : Interp.bctx) ~(is_store : bool) ~(weff : float)
    ~(reps : int) ntx bytes =
  if reps > 0 then begin
    let s = c.Interp.stats in
    if weff = 1.0 && Float.is_integer s.Stats.cost_bytes then begin
      let freps = float_of_int reps in
      s.Stats.cost_bytes <- s.Stats.cost_bytes +. float_of_int (reps * bytes);
      if is_store then begin
        s.Stats.gst_tx <- s.Stats.gst_tx +. float_of_int (reps * ntx);
        s.Stats.gst_bytes <- s.Stats.gst_bytes +. float_of_int (reps * bytes);
        s.Stats.gst_requests <- s.Stats.gst_requests +. freps
      end
      else begin
        s.Stats.gld_tx <- s.Stats.gld_tx +. float_of_int (reps * ntx);
        s.Stats.gld_bytes <- s.Stats.gld_bytes +. float_of_int (reps * bytes);
        s.Stats.gld_requests <- s.Stats.gld_requests +. freps
      end
    end
    else
      for _ = 1 to reps do
        apply_hw c ~is_store ~weff ntx bytes
      done
  end

(** Record one transaction's memory partition into the block's stream. *)
let[@inline] record_part (c : Interp.bctx) (tx_addr : int) : unit =
  let cfg = c.Interp.cfg in
  let p = tx_addr / cfg.Config.partition_bytes mod cfg.Config.num_partitions in
  c.Interp.txparts <- p :: c.Interp.txparts

(** Form and record the transactions of one gathered half warp, written
    into [rt.tx_buf] as [addr; bytes] pairs (recording needs the
    absolute addresses, so the shift-invariant
    {!Coalescer.request_cost} memo cannot serve it). Same math and
    first-touch emission order as {!Interp.account_global}'s fast path;
    lane 0 of the group is always thread 0 of its half warp here
    because full-mask groups start at multiples of 16. *)
let record_group (rt : vrt) ~(elt_bytes : int) (addrs : int array) (cnt : int)
    : int * int =
  let c = rt.c in
  let cfg = c.Interp.cfg in
  let buf = rt.tx_buf in
  let ntx = ref 0 and bytes = ref 0 in
  let emit a b =
    buf.(2 * !ntx) <- a;
    buf.((2 * !ntx) + 1) <- b;
    incr ntx;
    bytes := !bytes + b;
    record_part c a
  in
  let seg_bytes = 16 * elt_bytes in
  (match cfg.Config.coalesce_rules with
  | Config.Strict_g80 ->
      let base = addrs.(0) in
      let ok = ref (base mod seg_bytes = 0) in
      if !ok then
        for t = 0 to cnt - 1 do
          if addrs.(t) <> base + (t * elt_bytes) then ok := false
        done;
      if !ok then emit base seg_bytes
      else begin
        let min_tx = cfg.Config.min_transaction_bytes in
        for t = 0 to cnt - 1 do
          emit (addrs.(t) / min_tx * min_tx) min_tx
        done
      end
  | Config.Relaxed_gt200 ->
      let seg = if seg_bytes > 32 then seg_bytes else 32 in
      let seg_s = rt.seg_s and seg_lo = rt.seg_lo and seg_hi = rt.seg_hi in
      let nsegs = ref 0 in
      for t = 0 to cnt - 1 do
        let a = addrs.(t) in
        let s = a / seg * seg in
        let q = ref 0 in
        while !q < !nsegs && seg_s.(!q) <> s do
          incr q
        done;
        if !q < !nsegs then begin
          if a < seg_lo.(!q) then seg_lo.(!q) <- a;
          if a + elt_bytes > seg_hi.(!q) then seg_hi.(!q) <- a + elt_bytes
        end
        else begin
          seg_s.(!nsegs) <- s;
          seg_lo.(!nsegs) <- a;
          seg_hi.(!nsegs) <- a + elt_bytes;
          incr nsegs
        end
      done;
      for q = 0 to !nsegs - 1 do
        (* shrink to the smallest aligned power-of-two >= 32B *)
        let lo = seg_lo.(q) and hi' = seg_hi.(q) - 1 in
        let size = ref seg in
        let continue = ref true in
        while !continue do
          let half = !size / 2 in
          if half >= 32 && lo / half = hi' / half then size := half
          else continue := false
        done;
        emit (lo / !size * !size) !size
      done);
  (!ntx, !bytes)

(** Account one half-warp group of a partial mask whose lane addresses
    are already gathered in [rt.hw_addrs.(0..cnt-1)]: the same
    per-group math as {!Interp.account_global}'s fast path (vector
    masks are ascending by construction), on block scratch instead of
    per-call arrays. [m.(i..i+cnt-1)] are the group's lane ids. *)
let masked_group (rt : vrt) ~(is_store : bool) ~(elt_bytes : int)
    ~(weff : float) (m : int array) ~(i : int) ~(cnt : int) : unit =
  let c = rt.c in
  let cfg = c.Interp.cfg in
  let addrs = rt.hw_addrs in
  let record = c.Interp.record_tx in
  let ntx = ref 0 and bytes = ref 0 in
  let emit a b =
    incr ntx;
    bytes := !bytes + b;
    if record then record_part c a
  in
  let seg_bytes = 16 * elt_bytes in
  (match cfg.Config.coalesce_rules with
  | Config.Strict_g80 ->
      let lane0 = m.(i) mod 16 in
      let base = addrs.(0) - (lane0 * elt_bytes) in
      let ok = ref (base mod seg_bytes = 0) in
      if !ok then
        for t = 0 to cnt - 1 do
          if addrs.(t) <> base + (m.(i + t) mod 16 * elt_bytes) then ok := false
        done;
      if !ok then emit base seg_bytes
      else begin
        let min_tx = cfg.Config.min_transaction_bytes in
        for t = 0 to cnt - 1 do
          emit (addrs.(t) / min_tx * min_tx) min_tx
        done
      end
  | Config.Relaxed_gt200 ->
      let seg = if seg_bytes > 32 then seg_bytes else 32 in
      let seg_s = rt.seg_s and seg_lo = rt.seg_lo and seg_hi = rt.seg_hi in
      let nsegs = ref 0 in
      for t = 0 to cnt - 1 do
        let a = addrs.(t) in
        let s = a / seg * seg in
        let q = ref 0 in
        while !q < !nsegs && seg_s.(!q) <> s do
          incr q
        done;
        if !q < !nsegs then begin
          if a < seg_lo.(!q) then seg_lo.(!q) <- a;
          if a + elt_bytes > seg_hi.(!q) then seg_hi.(!q) <- a + elt_bytes
        end
        else begin
          seg_s.(!nsegs) <- s;
          seg_lo.(!nsegs) <- a;
          seg_hi.(!nsegs) <- a + elt_bytes;
          incr nsegs
        end
      done;
      for q = 0 to !nsegs - 1 do
        let lo = seg_lo.(q) and hi' = seg_hi.(q) - 1 in
        let size = ref seg in
        let continue = ref true in
        while !continue do
          let half = !size / 2 in
          if half >= 32 && lo / half = hi' / half then size := half
          else continue := false
        done;
        emit (lo / !size * !size) !size
      done);
  apply_hw c ~is_store ~weff !ntx !bytes

(** Replay a plane digest against the live lane-0 address [a0]: record
    the transaction layout when the partition stream is on, then apply
    the whole plane's statistics. The byte-cost accumulator batches
    into one add exactly when that is bitwise identical to the
    reference's per-group sequence (see {!apply_hw_n}); the integer
    counters always batch. *)
let replay_digest (c : Interp.bctx) ~(is_store : bool) ~(weff : float)
    ~(a0 : int) (dig : Coalescer.plane_digest) : unit =
  if c.Interp.record_tx then begin
    let lay = dig.Coalescer.pd_layout in
    let nn = Array.length lay in
    let q = ref 0 in
    while !q < nn do
      record_part c (a0 + lay.(!q));
      q := !q + 2
    done
  end;
  let s = c.Interp.stats in
  (if weff = 1.0 && Float.is_integer s.Stats.cost_bytes then
     s.Stats.cost_bytes <-
       s.Stats.cost_bytes +. float_of_int dig.Coalescer.pd_bytes
   else begin
     let hw = dig.Coalescer.pd_hw in
     for q = 0 to dig.Coalescer.pd_nhw - 1 do
       s.Stats.cost_bytes <-
         s.Stats.cost_bytes +. (float_of_int hw.((2 * q) + 1) /. weff)
     done
   end);
  let ntx = float_of_int dig.Coalescer.pd_ntx in
  let bytes = float_of_int dig.Coalescer.pd_bytes in
  let reqs = float_of_int dig.Coalescer.pd_nhw in
  if is_store then begin
    s.Stats.gst_tx <- s.Stats.gst_tx +. ntx;
    s.Stats.gst_bytes <- s.Stats.gst_bytes +. bytes;
    s.Stats.gst_requests <- s.Stats.gst_requests +. reqs
  end
  else begin
    s.Stats.gld_tx <- s.Stats.gld_tx +. ntx;
    s.Stats.gld_bytes <- s.Stats.gld_bytes +. bytes;
    s.Stats.gld_requests <- s.Stats.gld_requests +. reqs
  end

(** Digest the gathered addresses in [rt.pl_addrs] group by group, for
    planes that are not segmented-strided but belong to a stable site:
    the list-based formation cost is paid once per congruence class and
    then replayed. Layout offsets are relative to [a0]. *)
let digest_of_groups (rt : vrt) ~(elt_bytes : int) ~(a0 : int) :
    Coalescer.plane_digest =
  let cfg = rt.c.Interp.cfg in
  let rules = cfg.Config.coalesce_rules in
  let min_tx = cfg.Config.min_transaction_bytes in
  let pl = rt.pl_addrs in
  let n = rt.n in
  let nhw = (n + 15) / 16 in
  let hw = Array.make (2 * nhw) 0 in
  let lay = ref [] in
  let tot_tx = ref 0 and tot_bytes = ref 0 in
  for q = 0 to nhw - 1 do
    let cnt = min 16 (n - (16 * q)) in
    let pairs = List.init cnt (fun t -> (t, pl.((16 * q) + t))) in
    let txs = Coalescer.global_request rules ~min_tx ~elt_bytes pairs in
    let ntx = List.length txs in
    let bytes =
      List.fold_left (fun a t -> a + t.Coalescer.tx_bytes) 0 txs
    in
    hw.(2 * q) <- ntx;
    hw.((2 * q) + 1) <- bytes;
    tot_tx := !tot_tx + ntx;
    tot_bytes := !tot_bytes + bytes;
    List.iter
      (fun t ->
        lay := t.Coalescer.tx_bytes :: (t.Coalescer.tx_addr - a0) :: !lay)
      txs
  done;
  {
    Coalescer.pd_nhw = nhw;
    pd_hw = hw;
    pd_layout = Array.of_list (List.rev !lay);
    pd_ntx = !tot_tx;
    pd_bytes = !tot_bytes;
  }

(** Account one global access whose lane byte address is
    [base + ip.(po + l) * scale]. [stable] marks sites whose varying
    index is a tid plane (see the accounting note above). *)
let account_plane (rt : vrt) ~(is_store : bool) ~(elt_bytes : int)
    ~(stable : bool) (m : int array) ~(po : int) ~(base : int)
    ~(scale : int) ~(site : int) : unit =
  let c = rt.c in
  let ip = rt.ip in
  if Array.length m <> rt.n then begin
    let nm = Array.length m in
    let cfg = c.Interp.cfg in
    let weff = width_eff cfg ~elt_bytes in
    let addrs = rt.hw_addrs in
    let i = ref 0 in
    while !i < nm do
      let hw = m.(!i) / 16 in
      let j = ref (!i + 1) in
      while !j < nm && m.(!j) / 16 = hw do
        incr j
      done;
      let cnt = !j - !i in
      for t = 0 to cnt - 1 do
        addrs.(t) <- base + (iget ip (po + m.(!i + t)) * scale)
      done;
      masked_group rt ~is_store ~elt_bytes ~weff m ~i:!i ~cnt;
      i := !j
    done
  end
  else begin
    let cfg = c.Interp.cfg in
    let rules = cfg.Config.coalesce_rules in
    let min_tx = cfg.Config.min_transaction_bytes in
    let weff = width_eff cfg ~elt_bytes in
    let g = memo_granularity ~min_tx ~elt_bytes in
    let n = rt.n in
    let fast =
      stable && rt.site_a0.(site) <> min_int
      && begin
           let a0 = base + (iget ip po * scale) in
           if (a0 - rt.site_a0.(site)) mod g = 0 then begin
             (* closed-form credit: same digest at a congruent base *)
             rt.site_a0.(site) <- a0;
             replay_digest c ~is_store ~weff ~a0 rt.site_dig.(site);
             rt.cf_credits <- rt.cf_credits + 1;
             true
           end
           else if rt.site_d.(site) <> min_int && rt.site_d.(site) <> max_int
           then begin
             (* the plane only ever shifts uniformly, so the cached
                segmented shape holds at the new residue: fetch that
                digest from the plane memo without walking any lane *)
             let rel0 =
               let r = a0 mod g in
               if r < 0 then r + g else r
             in
             let dig =
               Coalescer.plane_cost rules ~min_tx ~elt_bytes ~n ~rel0
                 ~d:rt.site_d.(site) ~dd:rt.site_dd.(site)
             in
             rt.site_rel0.(site) <- rel0;
             rt.site_a0.(site) <- a0;
             rt.site_dig.(site) <- dig;
             replay_digest c ~is_store ~weff ~a0 dig;
             true
           end
           else false
         end
    in
    if not fast then begin
      (* one dense pass gathers the plane's addresses and checks the
         segmented-strided shape: stride [d] within half-warp groups,
         delta [dd] between consecutive group bases *)
      let pl = rt.pl_addrs in
      let a0 = base + (iget ip po * scale) in
      iset pl 0 a0;
      let d = ref 0 and dd = ref 0 in
      let seg_ok = ref true in
      for l = 1 to n - 1 do
        let a = base + (iget ip (po + l) * scale) in
        iset pl l a;
        if l land 15 <> 0 then begin
          let dl = a - iget pl (l - 1) in
          if l = 1 then d := dl else if dl <> !d then seg_ok := false
        end
        else begin
          let db = a - iget pl (l - 16) in
          if l = 16 then dd := db else if db <> !dd then seg_ok := false
        end
      done;
      if !seg_ok then begin
        let rel0 =
          let r = a0 mod g in
          if r < 0 then r + g else r
        in
        let dig =
          if
            rt.site_d.(site) = !d
            && rt.site_dd.(site) = !dd
            && rt.site_rel0.(site) = rel0
          then begin
            rt.site_hits <- rt.site_hits + 1;
            rt.site_dig.(site)
          end
          else begin
            let dig =
              Coalescer.plane_cost rules ~min_tx ~elt_bytes ~n ~rel0 ~d:!d
                ~dd:!dd
            in
            rt.site_rel0.(site) <- rel0;
            rt.site_d.(site) <- !d;
            rt.site_dd.(site) <- !dd;
            rt.site_dig.(site) <- dig;
            dig
          end
        in
        rt.site_a0.(site) <- a0;
        replay_digest c ~is_store ~weff ~a0 dig
      end
      else if stable then begin
        (* irregular but block-stable shape (e.g. a tid plane whose
           rows wrap inside a half warp): digest the actual groups
           once, replay while the base stays congruent *)
        let dig = digest_of_groups rt ~elt_bytes ~a0 in
        rt.site_rel0.(site) <- 0;
        rt.site_d.(site) <- max_int;
        rt.site_dd.(site) <- 0;
        rt.site_dig.(site) <- dig;
        rt.site_a0.(site) <- a0;
        replay_digest c ~is_store ~weff ~a0 dig
      end
      else begin
        (* irregular, unstable plane: per-group accounting *)
        let addrs = rt.hw_addrs in
        let record = c.Interp.record_tx in
        let i = ref 0 in
        while !i < n do
          let cnt = if n - !i < 16 then n - !i else 16 in
          Array.blit pl !i addrs 0 cnt;
          let ntx, bytes =
            if record then record_group rt ~elt_bytes addrs cnt
            else
              Coalescer.request_cost rules ~min_tx ~elt_bytes ~lane0:0 ~cnt
                addrs
          in
          apply_hw c ~is_store ~weff ntx bytes;
          i := !i + 16
        done
      end
    end
  end

(** Account one global access where every active lane touches [addr]
    (block-uniform index). *)
let account_const (rt : vrt) ~(is_store : bool) ~(elt_bytes : int)
    (m : int array) ~(addr : int) : unit =
  let c = rt.c in
  if Array.length m <> rt.n then begin
    let nm = Array.length m in
    let cfg = c.Interp.cfg in
    let weff = width_eff cfg ~elt_bytes in
    let i = ref 0 in
    while !i < nm do
      let hw = m.(!i) / 16 in
      let j = ref (!i + 1) in
      while !j < nm && m.(!j) / 16 = hw do
        incr j
      done;
      let cnt = !j - !i in
      Array.fill rt.hw_addrs 0 cnt addr;
      masked_group rt ~is_store ~elt_bytes ~weff m ~i:!i ~cnt;
      i := !j
    done
  end
  else begin
    let cfg = c.Interp.cfg in
    let rules = cfg.Config.coalesce_rules in
    let min_tx = cfg.Config.min_transaction_bytes in
    let weff = width_eff cfg ~elt_bytes in
    let record = c.Interp.record_tx in
    let n = rt.n in
    Array.fill rt.hw_addrs 0 16 addr;
    let nfull = n / 16 and tail = n mod 16 in
    (* every full group forms the same transactions: compute once *)
    if nfull > 0 then
      if record then begin
        let ntx, bytes = record_group rt ~elt_bytes rt.hw_addrs 16 in
        apply_hw c ~is_store ~weff ntx bytes;
        for _ = 2 to nfull do
          for q = 0 to ntx - 1 do
            record_part c rt.tx_buf.(2 * q)
          done;
          apply_hw c ~is_store ~weff ntx bytes
        done
      end
      else begin
        let ntx, bytes =
          Coalescer.request_cost rules ~min_tx ~elt_bytes ~lane0:0 ~cnt:16
            rt.hw_addrs
        in
        apply_hw_n c ~is_store ~weff ~reps:nfull ntx bytes
      end;
    if tail > 0 then
      if record then begin
        let ntx, bytes = record_group rt ~elt_bytes rt.hw_addrs tail in
        apply_hw c ~is_store ~weff ntx bytes
      end
      else begin
        let ntx, bytes =
          Coalescer.request_cost rules ~min_tx ~elt_bytes ~lane0:0 ~cnt:tail
            rt.hw_addrs
        in
        apply_hw c ~is_store ~weff ntx bytes
      end
  end

(* Shared-memory serialization cost of a strided half warp is invariant
   under any uniform word shift: banks rotate together and the
   same-address broadcast test depends only on word differences. So
   when every group of a plane steps by the same word stride, every
   full group costs the same and the whole plane's totals are keyed by
   that stride alone — and a stable site's cached totals hold on every
   call, since its plane only ever shifts uniformly. *)

let[@inline] shared_group_cost (rt : vrt) (cnt : int) : int =
  let banks = rt.c.Interp.cfg.Config.shared_banks in
  let words = rt.hw_addrs in
  let counts = rt.sh_counts in
  Array.fill counts 0 banks 0;
  for t = 0 to cnt - 1 do
    let w = iget words t in
    (* same-address lanes broadcast for free *)
    let dup = ref false in
    for t' = 0 to t - 1 do
      if iget words t' = w then dup := true
    done;
    if not !dup then begin
      let b = ((w mod banks) + banks) mod banks in
      counts.(b) <- counts.(b) + 1
    end
  done;
  Array.fold_left max 1 counts

let[@inline] apply_shared (c : Interp.bctx) (cost : int) : unit =
  let s = c.Interp.stats in
  s.Stats.shared_ops <- s.Stats.shared_ops +. 1.;
  if cost > 1 then
    s.Stats.bank_extra <- s.Stats.bank_extra +. float_of_int (cost - 1)

(** Batched stats for [groups] half-warp shared requests totalling
    [extra] serialization conflicts. Both counters only ever receive
    integer increments, so the batched adds are bitwise identical to
    the reference's per-group sequence. *)
let apply_shared_n (c : Interp.bctx) ~(groups : int) ~(extra : int) : unit =
  let s = c.Interp.stats in
  s.Stats.shared_ops <- s.Stats.shared_ops +. float_of_int groups;
  if extra > 0 then
    s.Stats.bank_extra <- s.Stats.bank_extra +. float_of_int extra

(** Account one shared access whose lane word address is
    [ip.(po + l) * scale + u]. [stable] marks sites whose varying index
    is a tid plane: bank costs are invariant under any uniform word
    shift, so their cached plane totals hold on every call. *)
let account_shared_plane (rt : vrt) ~(stable : bool) (m : int array)
    ~(po : int) ~(scale : int) ~(u : int) ~(site : int) : unit =
  let c = rt.c in
  let ip = rt.ip in
  if Array.length m <> rt.n then begin
    let nm = Array.length m in
    let words = rt.hw_addrs in
    let i = ref 0 in
    while !i < nm do
      let hw = m.(!i) / 16 in
      let j = ref (!i + 1) in
      while !j < nm && m.(!j) / 16 = hw do
        incr j
      done;
      let cnt = !j - !i in
      for t = 0 to cnt - 1 do
        iset words t ((iget ip (po + m.(!i + t)) * scale) + u)
      done;
      apply_shared c (shared_group_cost rt cnt);
      i := !j
    done
  end
  else begin
    let n = rt.n in
    let nhw = (n + 15) / 16 in
    if stable && rt.site_sh_d.(site) <> min_int then begin
      apply_shared_n c ~groups:nhw ~extra:rt.site_sh_extra.(site);
      rt.cf_credits <- rt.cf_credits + 1
    end
    else begin
      let pl = rt.pl_addrs in
      let w0 = (iget ip po * scale) + u in
      iset pl 0 w0;
      let d = ref 0 in
      let strided = ref true in
      for l = 1 to n - 1 do
        let w = (iget ip (po + l) * scale) + u in
        iset pl l w;
        if l land 15 <> 0 then begin
          let dl = w - iget pl (l - 1) in
          if l = 1 then d := dl else if dl <> !d then strided := false
        end
      done;
      let extra =
        if !strided then
          if rt.site_sh_d.(site) = !d then rt.site_sh_extra.(site)
          else begin
            let nfull = n / 16 and tail = n land 15 in
            let words = rt.hw_addrs in
            let full_extra =
              if nfull > 0 then begin
                Array.blit pl 0 words 0 16;
                nfull * (shared_group_cost rt 16 - 1)
              end
              else 0
            in
            let tail_extra =
              if tail > 0 then begin
                Array.blit pl (16 * nfull) words 0 tail;
                shared_group_cost rt tail - 1
              end
              else 0
            in
            let extra = full_extra + tail_extra in
            rt.site_sh_d.(site) <- !d;
            rt.site_sh_extra.(site) <- extra;
            extra
          end
        else begin
          (* irregular word plane: per-group costs from the gather *)
          let words = rt.hw_addrs in
          let extra = ref 0 in
          let i = ref 0 in
          while !i < n do
            let cnt = if n - !i < 16 then n - !i else 16 in
            Array.blit pl !i words 0 cnt;
            extra := !extra + (shared_group_cost rt cnt - 1);
            i := !i + 16
          done;
          if stable then begin
            rt.site_sh_d.(site) <- max_int;
            rt.site_sh_extra.(site) <- !extra
          end;
          !extra
        end
      in
      apply_shared_n c ~groups:nhw ~extra
    end
  end

(** Account one shared access where every active lane reads one word
    (block-uniform index): each half warp is a free broadcast. *)
let account_shared_const (rt : vrt) (m : int array) ~(addr : int) : unit =
  ignore addr;
  let c = rt.c in
  if Array.length m <> rt.n then begin
    (* every group is a one-word broadcast: cost 1, like the full-mask
       case, but grouped by the mask's half-warp ids *)
    let nm = Array.length m in
    let i = ref 0 in
    while !i < nm do
      let hw = m.(!i) / 16 in
      let j = ref (!i + 1) in
      while !j < nm && m.(!j) / 16 = hw do
        incr j
      done;
      apply_shared c 1;
      i := !j
    done
  end
  else apply_shared_n c ~groups:((rt.n + 15) / 16) ~extra:0

(* --- compiled expressions ---

   [U*] closures are the uniform scalar channel, identical in shape to
   {!Compile}. [X*] values name a destination plane plus a [fill] that
   computes it over the active mask; a node's fill runs its operand
   fills first (evaluation order is source order, as in the reference)
   and then one dense or masked loop into its own plane. *)

type fill = vrt -> int array -> unit

type vexpr =
  | UI of (vrt -> int array -> int)
  | UF of (vrt -> int array -> float)
  | UB of (vrt -> int array -> bool)
  | XI of int * fill  (** int plane *)
  | XF of int * fill  (** float plane *)
  | XB of int * fill  (** int plane constrained to 0/1 *)
  | XF2 of (int * int) * fill
  | XF4 of (int * int * int * int) * fill

type vstmt = vrt -> int array -> unit

let is_uniform = function
  | UI _ | UF _ | UB _ -> true
  | XI _ | XF _ | XB _ | XF2 _ | XF4 _ -> false

let nofill : fill = fun _ _ -> ()

(* --- plan-time plane allocator ---

   Planes are assigned like registers: a node's operands are compiled
   first (holding their result planes), the operand planes are released,
   and the destination is allocated — it may alias an operand plane,
   which is safe because every loop reads its operands at lane [l]
   before writing lane [l]. Compilation order equals evaluation order,
   so a released plane is only ever reused by code that runs after its
   last read. Declared variables and loop counters get permanent planes
   (never released); scoping is strict (no shadowing), as in
   {!Compile}. *)

type plane = PF of int | PI of int

type ve = vexpr * plane list
(** A compiled expression and the planes holding its result (empty when
    the result lives in a variable's permanent plane or a scalar). *)

module Smap = Map.Make (String)

type binding =
  | Bint of int
  | Bfloat of int
  | Bbool of int
  | Bf2 of int * int
  | Bf4 of int * int * int * int
  | Bloop_u of int  (** uniform loop variable: register index *)
  | Bloop_v of int  (** varying loop variable: int plane *)
  | Bshared of int * int array * int  (** slot, strides, padded length *)
  | Bglobal of int * int array * string  (** slot, expected strides, name *)
  | Bconst of int  (** [k_sizes]-bound int parameter *)

type cstate = {
  mutable nf : int;  (** float-plane high-water mark *)
  mutable ni : int;
  mutable free_f : int list;
  mutable free_i : int list;
  mutable nuregs : int;
  mutable nsites : int;  (** global-access sites (stride-cache entries) *)
  mutable shared_specs : (string * Layout.t * int * int) list;
      (** name, layout, padded length, slot *)
  mutable global_params : (string * int array) list;  (** slot order *)
  mutable tid_planes : (Ast.builtin * int) list;
      (** permanent planes for tidx/tidy/idx/idy, filled per block *)
  cn : int;  (** threads per block *)
  claunch : Ast.launch;
}

let alloc_f st =
  match st.free_f with
  | p :: tl ->
      st.free_f <- tl;
      p
  | [] ->
      let p = st.nf in
      st.nf <- p + 1;
      p

let alloc_i st =
  match st.free_i with
  | p :: tl ->
      st.free_i <- tl;
      p
  | [] ->
      let p = st.ni in
      st.ni <- p + 1;
      p

let release st (own : plane list) =
  List.iter
    (function
      | PF p -> st.free_f <- p :: st.free_f
      | PI p -> st.free_i <- p :: st.free_i)
    own

let fresh_ureg st =
  let r = st.nuregs in
  st.nuregs <- r + 1;
  r

let fresh_site st =
  let s = st.nsites in
  st.nsites <- s + 1;
  s

(* --- operand views ---

   Plan-time normalization of a compiled operand to the element type a
   consumer needs: either a uniform scalar closure or a plane (with the
   fill that produces it). Int-to-float conversion materializes through
   a temporary plane — same values as the reference's fused
   [float_of_int], no stats either way. *)

type fopnd = FU of (vrt -> int array -> float) | FP of int * fill
type iopnd = IU of (vrt -> int array -> int) | IP of int * fill
type bopnd = BU of (vrt -> int array -> bool) | BP of int * fill

let fopnd st ((ce, own) : ve) : fopnd * plane list =
  match ce with
  | UI f -> (FU (fun rt m -> float_of_int (f rt m)), own)
  | UF f -> (FU f, own)
  | XF (p, fill) -> (FP (p, fill), own)
  | XI (p, fill) ->
      let t = alloc_f st in
      let po = p * st.cn and toff = t * st.cn in
      let fill' rt m =
        fill rt m;
        let n = rt.n in
        let ip = rt.ip and fp = rt.fp in
        if Array.length m = n then
          for l = 0 to n - 1 do
            fset fp (toff + l) (float_of_int (iget ip (po + l)))
          done
        else
          Array.iter
            (fun l -> fset fp (toff + l) (float_of_int (iget ip (po + l))))
            m
      in
      (FP (t, fill'), PF t :: own)
  | UB _ | XB _ | XF2 _ | XF4 _ -> unsupported "expected a float value"

let iopnd ((ce, own) : ve) : iopnd * plane list =
  match ce with
  | UI f -> (IU f, own)
  | UB f -> (IU (fun rt m -> if f rt m then 1 else 0), own)
  | XI (p, fill) -> (IP (p, fill), own)
  | XB (p, fill) -> (IP (p, fill), own)  (* bool planes hold 0/1 *)
  | UF _ | XF _ | XF2 _ | XF4 _ -> unsupported "expected an int value"

let bopnd ((ce, own) : ve) : bopnd * plane list =
  match ce with
  | UB f -> (BU f, own)
  | UI f -> (BU (fun rt m -> f rt m <> 0), own)
  | XB (p, fill) -> (BP (p, fill), own)
  | XI (p, fill) -> (BP (p, fill), own)  (* read as [<> 0] *)
  | UF _ | XF _ | XF2 _ | XF4 _ -> unsupported "expected a boolean value"

(** Evaluate an operand at its source position: run the fill (plane
    case) or the scalar closure. Returns the scalar, or 0 for planes. *)
let feval (o : fopnd) rt m : float =
  match o with
  | FU f -> f rt m
  | FP (_, fill) ->
      fill rt m;
      0.0

let ieval (o : iopnd) rt m : int =
  match o with
  | IU f -> f rt m
  | IP (_, fill) ->
      fill rt m;
      0

let beval (o : bopnd) rt m : bool =
  match o with
  | BU f -> f rt m
  | BP (_, fill) ->
      fill rt m;
      false

(* --- loop builders ---

   Each builder mirrors one {!Compile} node shape, including the exact
   order of [inst]/[flops]/operand evaluation around the loop — that
   order is observable through the statistics. Dest planes may alias
   operand planes: every loop reads lane [l] before writing lane [l]. *)

let mk_fbin st ~(flops_first : bool) (fop : float -> float -> float) (ca : ve)
    (cb : ve) : ve =
  let fa, owna = fopnd st ca in
  let fb, ownb = fopnd st cb in
  release st owna;
  release st ownb;
  let d = alloc_f st in
  let doff = d * st.cn in
  let aoff = match fa with FP (p, _) -> p * st.cn | FU _ -> 0 in
  let boff = match fb with FP (p, _) -> p * st.cn | FU _ -> 0 in
  let fill rt m =
    inst rt;
    if flops_first then flops rt (Array.length m);
    let av = feval fa rt m in
    let bv = feval fb rt m in
    if not flops_first then flops rt (Array.length m);
    let n = rt.n in
    let fp = rt.fp in
    match (fa, fb) with
    | FP _, FP _ ->
        if Array.length m = n then
          for l = 0 to n - 1 do
            fset fp (doff + l) (fop (fget fp (aoff + l)) (fget fp (boff + l)))
          done
        else
          Array.iter
            (fun l ->
              fset fp (doff + l) (fop (fget fp (aoff + l)) (fget fp (boff + l))))
            m
    | FP _, FU _ ->
        if Array.length m = n then
          for l = 0 to n - 1 do
            fset fp (doff + l) (fop (fget fp (aoff + l)) bv)
          done
        else
          Array.iter (fun l -> fset fp (doff + l) (fop (fget fp (aoff + l)) bv)) m
    | FU _, FP _ ->
        if Array.length m = n then
          for l = 0 to n - 1 do
            fset fp (doff + l) (fop av (fget fp (boff + l)))
          done
        else
          Array.iter (fun l -> fset fp (doff + l) (fop av (fget fp (boff + l)))) m
    | FU _, FU _ ->
        let v = fop av bv in
        if Array.length m = n then
          for l = 0 to n - 1 do
            fset fp (doff + l) v
          done
        else Array.iter (fun l -> fset fp (doff + l) v) m
  in
  (XF (d, fill), [ PF d ])

let mk_ibin st (iop : int -> int -> int) (ca : ve) (cb : ve) : ve =
  let fa, owna = iopnd ca in
  let fb, ownb = iopnd cb in
  release st owna;
  release st ownb;
  let d = alloc_i st in
  let doff = d * st.cn in
  let aoff = match fa with IP (p, _) -> p * st.cn | IU _ -> 0 in
  let boff = match fb with IP (p, _) -> p * st.cn | IU _ -> 0 in
  let fill rt m =
    inst rt;
    let av = ieval fa rt m in
    let bv = ieval fb rt m in
    let n = rt.n in
    let ip = rt.ip in
    match (fa, fb) with
    | IP _, IP _ ->
        if Array.length m = n then
          for l = 0 to n - 1 do
            iset ip (doff + l) (iop (iget ip (aoff + l)) (iget ip (boff + l)))
          done
        else
          Array.iter
            (fun l ->
              iset ip (doff + l) (iop (iget ip (aoff + l)) (iget ip (boff + l))))
            m
    | IP _, IU _ ->
        if Array.length m = n then
          for l = 0 to n - 1 do
            iset ip (doff + l) (iop (iget ip (aoff + l)) bv)
          done
        else
          Array.iter (fun l -> iset ip (doff + l) (iop (iget ip (aoff + l)) bv)) m
    | IU _, IP _ ->
        if Array.length m = n then
          for l = 0 to n - 1 do
            iset ip (doff + l) (iop av (iget ip (boff + l)))
          done
        else
          Array.iter (fun l -> iset ip (doff + l) (iop av (iget ip (boff + l)))) m
    | IU _, IU _ ->
        let v = iop av bv in
        if Array.length m = n then
          for l = 0 to n - 1 do
            iset ip (doff + l) v
          done
        else Array.iter (fun l -> iset ip (doff + l) v) m
  in
  (XI (d, fill), [ PI d ])

(* readers for the rare-node generic loops; one closure call per lane,
   like the reference's [fread]/[iread] *)

let ird st (o : iopnd) : (vrt -> int -> int -> int) * int =
  match o with
  | IU _ -> ((fun _ v _ -> v), 0)
  | IP (p, _) ->
      let po = p * st.cn in
      ((fun rt _ l -> iget rt.ip (po + l)), po)

let frd st (o : fopnd) : vrt -> float -> int -> float =
  match o with
  | FU _ -> fun _ v _ -> v
  | FP (p, _) ->
      let po = p * st.cn in
      fun rt _ l -> fget rt.fp (po + l)

let brd st (o : bopnd) : vrt -> bool -> int -> bool =
  match o with
  | BU _ -> fun _ v _ -> v
  | BP (p, _) ->
      let po = p * st.cn in
      fun rt _ l -> iget rt.ip (po + l) <> 0

let mk_icmp st (iop : int -> int -> bool) (ca : ve) (cb : ve) : ve =
  let fa, owna = iopnd ca in
  let fb, ownb = iopnd cb in
  release st owna;
  release st ownb;
  let d = alloc_i st in
  let doff = d * st.cn in
  let ra, _ = ird st fa and rb, _ = ird st fb in
  let fill rt m =
    inst rt;
    let av = ieval fa rt m in
    let bv = ieval fb rt m in
    let n = rt.n in
    let ip = rt.ip in
    if Array.length m = n then
      for l = 0 to n - 1 do
        iset ip (doff + l) (if iop (ra rt av l) (rb rt bv l) then 1 else 0)
      done
    else
      Array.iter
        (fun l ->
          iset ip (doff + l) (if iop (ra rt av l) (rb rt bv l) then 1 else 0))
        m
  in
  (XB (d, fill), [ PI d ])

let mk_fcmp st (fop : float -> float -> bool) (ca : ve) (cb : ve) : ve =
  let fa, owna = fopnd st ca in
  let fb, ownb = fopnd st cb in
  release st owna;
  release st ownb;
  let d = alloc_i st in
  let doff = d * st.cn in
  let ra = frd st fa and rb = frd st fb in
  let fill rt m =
    inst rt;
    let av = feval fa rt m in
    let bv = feval fb rt m in
    let n = rt.n in
    let ip = rt.ip in
    if Array.length m = n then
      for l = 0 to n - 1 do
        iset ip (doff + l) (if fop (ra rt av l) (rb rt bv l) then 1 else 0)
      done
    else
      Array.iter
        (fun l ->
          iset ip (doff + l) (if fop (ra rt av l) (rb rt bv l) then 1 else 0))
        m
  in
  (XB (d, fill), [ PI d ])

let mk_bbin st ~(disj : bool) (ca : ve) (cb : ve) : ve =
  let fa, owna = bopnd ca in
  let fb, ownb = bopnd cb in
  release st owna;
  release st ownb;
  let d = alloc_i st in
  let doff = d * st.cn in
  let ra = brd st fa and rb = brd st fb in
  let fill rt m =
    inst rt;
    let av = beval fa rt m in
    let bv = beval fb rt m in
    let n = rt.n in
    let ip = rt.ip in
    if disj then
      if Array.length m = n then
        for l = 0 to n - 1 do
          iset ip (doff + l) (if ra rt av l || rb rt bv l then 1 else 0)
        done
      else
        Array.iter
          (fun l ->
            iset ip (doff + l) (if ra rt av l || rb rt bv l then 1 else 0))
          m
    else if Array.length m = n then
      for l = 0 to n - 1 do
        iset ip (doff + l) (if ra rt av l && rb rt bv l then 1 else 0)
      done
    else
      Array.iter
        (fun l -> iset ip (doff + l) (if ra rt av l && rb rt bv l then 1 else 0))
        m
  in
  (XB (d, fill), [ PI d ])

(* uniform-channel extraction (operands already known uniform) *)

let iu = function IU f -> f | IP _ -> assert false
let fu = function FU f -> f | FP _ -> assert false
let bu = function BU f -> f | BP _ -> assert false

(* --- index steps for array accesses --- *)

type ostep =
  | OU of (vrt -> int array -> int) * int  (** uniform index, stride *)
  | OV of int * fill * int  (** plane offset, fill, stride *)

let all_uniform_steps = List.for_all (function OU _ -> true | OV _ -> false)

let eval_usteps (steps : ostep list) rt m : int =
  List.fold_left
    (fun acc s ->
      match s with
      | OU (f, stride) -> acc + (f rt m * stride)
      | OV _ -> assert false)
    0 steps

(** A compiled varying index: the element offset of lane [l] is
    [ip.(xp_po + l) * xp_scale + u], where [u] is returned by [xp_run],
    which also brings the plane up to date. An index varying in exactly
    one dimension — the dominant [a[idy][k]] / [a[k][idx]] shapes — runs
    with no scratch plane and no combine pass: gathers and accounting
    read the dimension's own plane through the stride. Multi-plane
    indices combine into a scratch plane in index order. *)
type xplan = {
  xp_po : int;
  xp_scale : int;
  xp_run : vrt -> int array -> int;
}

(** Plan [steps] (which must contain at least one varying step; callers
    route all-uniform indices through {!eval_usteps}). Returns the
    scratch planes the plan owns; the caller must allocate destination
    planes before releasing them so gathers never read a reused plane.
    Step evaluation stays in index order — a uniform step's closure may
    account a nested uniform load, and byte-cost accumulation is
    order-sensitive. *)
let mk_xplan st (steps : ostep list) : xplan * plane list =
  let a = Array.of_list steps in
  let nov =
    Array.fold_left
      (fun k s -> match s with OV _ -> k + 1 | OU _ -> k)
      0 a
  in
  let single =
    if nov = 1 then
      Array.fold_left
        (fun acc s -> match s with OV (po, _, s') -> Some (po, s') | OU _ -> acc)
        None a
    else None
  in
  match single with
  | Some (po, sc) ->
      let run rt m =
        let u = ref 0 in
        Array.iter
          (function
            | OU (f, stride) -> u := !u + (f rt m * stride)
            | OV (_, fl, _) -> fl rt m)
          a;
        !u
      in
      ({ xp_po = po; xp_scale = sc; xp_run = run }, [])
  | None ->
      let offs = alloc_i st in
      let ooff = offs * st.cn in
      let run rt m =
        let n = rt.n in
        let ip = rt.ip in
        let u = ref 0 in
        let first = ref true in
        Array.iter
          (function
            | OU (f, stride) -> u := !u + (f rt m * stride)
            | OV (po, fl, stride) ->
                fl rt m;
                if !first then begin
                  first := false;
                  if Array.length m = n then
                    for l = 0 to n - 1 do
                      iset ip (ooff + l) (iget ip (po + l) * stride)
                    done
                  else
                    Array.iter
                      (fun l -> iset ip (ooff + l) (iget ip (po + l) * stride))
                      m
                end
                else if Array.length m = n then
                  for l = 0 to n - 1 do
                    iset ip (ooff + l)
                      (iget ip (ooff + l) + (iget ip (po + l) * stride))
                  done
                else
                  Array.iter
                    (fun l ->
                      iset ip (ooff + l)
                        (iget ip (ooff + l) + (iget ip (po + l) * stride)))
                    m)
          a;
        !u
      in
      ({ xp_po = ooff; xp_scale = 1; xp_run = run }, [ PI offs ])

(** A site is {e stable} when every varying plane its index reads is a
    tid plane: the contents never change inside a block and only shift
    uniformly across blocks (a sum of uniform shifts is uniform, so the
    property survives the multi-plane scratch combine), which makes the
    site's address layout rigid — the cached accounting digest survives
    with an O(1) congruence check instead of a lane walk (the
    closed-form uniform-loop credit). *)
let stable_plane st (po : int) : bool =
  List.exists (fun (_, p) -> p * st.cn = po) st.tid_planes

let stable_site st (steps : ostep list) : bool =
  List.for_all
    (function OU _ -> true | OV (po, _, _) -> stable_plane st po)
    steps

(* --- expression compilation --- *)

let rec comp_e (st : cstate) (env : binding Smap.t) (e : Ast.expr) : ve =
  match e with
  | Int_lit k -> (UI (fun _ _ -> k), [])
  | Float_lit f -> (UF (fun _ _ -> f), [])
  | Builtin b -> comp_builtin st b
  | Var v -> (
      match Smap.find_opt v env with
      | None -> unsupported "unbound variable %s" v
      | Some (Bconst k) -> (UI (fun _ _ -> k), [])
      | Some (Bloop_u r) -> (UI (fun rt _ -> rt.uregs.(r)), [])
      | Some (Bloop_v p) -> (XI (p, nofill), [])
      | Some (Bint p) -> (XI (p, nofill), [])
      | Some (Bfloat p) -> (XF (p, nofill), [])
      | Some (Bbool p) -> (XB (p, nofill), [])
      | Some (Bf2 (x, y)) -> (XF2 ((x, y), nofill), [])
      | Some (Bf4 (x, y, z, w)) -> (XF4 ((x, y, z, w), nofill), [])
      | Some (Bshared _ | Bglobal _) -> unsupported "array %s used as scalar" v)
  | Unop (Neg, a) -> comp_neg st env a
  | Unop (Not, a) -> (
      let fc, own = bopnd (comp_e st env a) in
      match fc with
      | BU f ->
          release st own;
          ( UB
              (fun rt m ->
                inst rt;
                not (f rt m)),
            [] )
      | BP (p, fl) ->
          release st own;
          let d = alloc_i st in
          let doff = d * st.cn and poff = p * st.cn in
          let fill rt m =
            inst rt;
            fl rt m;
            let n = rt.n in
            let ip = rt.ip in
            if Array.length m = n then
              for l = 0 to n - 1 do
                iset ip (doff + l) (if iget ip (poff + l) <> 0 then 0 else 1)
              done
            else
              Array.iter
                (fun l ->
                  iset ip (doff + l) (if iget ip (poff + l) <> 0 then 0 else 1))
                m
          in
          (XB (d, fill), [ PI d ]))
  | Binop (op, a, b) -> comp_binop st env op a b
  | Index (arr, idxs) -> comp_load st env arr idxs
  | Vload { v_arr; v_width; v_index } -> comp_vload st env v_arr v_width v_index
  | Field (a, f) -> comp_field st env a f
  | Call (f, args) -> comp_call st env f args
  | Select (cond, a, b) -> comp_select st env cond a b

and comp_builtin st (b : Ast.builtin) : ve =
  let l = st.claunch in
  match b with
  | Tidx | Tidy | Idx | Idy ->
      let p =
        match List.assoc_opt b st.tid_planes with
        | Some p -> p
        | None ->
            (* permanent plane, filled at block setup — never drawn from
               the free list (a recycled temp would be scribbled before
               the first read) *)
            let p = st.ni in
            st.ni <- p + 1;
            st.tid_planes <- st.tid_planes @ [ (b, p) ];
            p
      in
      (XI (p, nofill), [])
  | Bidx -> (UI (fun rt _ -> rt.c.Interp.bidx), [])
  | Bidy -> (UI (fun rt _ -> rt.c.Interp.bidy), [])
  | Bdimx ->
      let v = l.block_x in
      (UI (fun _ _ -> v), [])
  | Bdimy ->
      let v = l.block_y in
      (UI (fun _ _ -> v), [])
  | Gdimx ->
      let v = l.grid_x in
      (UI (fun _ _ -> v), [])
  | Gdimy ->
      let v = l.grid_y in
      (UI (fun _ _ -> v), [])

and comp_neg st env a : ve =
  match comp_e st env a with
  | UI f, own ->
      release st own;
      ( UI
          (fun rt m ->
            inst rt;
            -f rt m),
        [] )
  | UF f, own ->
      release st own;
      ( UF
          (fun rt m ->
            inst rt;
            let v = f rt m in
            flops rt (Array.length m);
            -.v),
        [] )
  | XI (p, fl), own ->
      release st own;
      let d = alloc_i st in
      let doff = d * st.cn and poff = p * st.cn in
      let fill rt m =
        inst rt;
        fl rt m;
        let n = rt.n in
        let ip = rt.ip in
        if Array.length m = n then
          for l = 0 to n - 1 do
            iset ip (doff + l) (-iget ip (poff + l))
          done
        else Array.iter (fun l -> iset ip (doff + l) (-iget ip (poff + l))) m
      in
      (XI (d, fill), [ PI d ])
  | XF (p, fl), own ->
      release st own;
      let d = alloc_f st in
      let doff = d * st.cn and poff = p * st.cn in
      let fill rt m =
        inst rt;
        fl rt m;
        flops rt (Array.length m);
        let n = rt.n in
        let fp = rt.fp in
        if Array.length m = n then
          for l = 0 to n - 1 do
            fset fp (doff + l) (-.fget fp (poff + l))
          done
        else Array.iter (fun l -> fset fp (doff + l) (-.fget fp (poff + l))) m
      in
      (XF (d, fill), [ PF d ])
  | XF2 ((px, py), fl), own ->
      (* destinations before releasing the source: a destination must
         not alias a component that a later write still has to read *)
      let dx = alloc_f st and dy = alloc_f st in
      release st own;
      let cn = st.cn in
      let fill rt m =
        inst rt;
        fl rt m;
        let n = rt.n in
        let fp = rt.fp in
        let neg poff doff =
          if Array.length m = n then
            for l = 0 to n - 1 do
              fset fp (doff + l) (-.fget fp (poff + l))
            done
          else Array.iter (fun l -> fset fp (doff + l) (-.fget fp (poff + l))) m
        in
        neg (px * cn) (dx * cn);
        neg (py * cn) (dy * cn)
      in
      (XF2 ((dx, dy), fill), [ PF dx; PF dy ])
  | XF4 ((px, py, pz, pw), fl), own ->
      let dx = alloc_f st
      and dy = alloc_f st
      and dz = alloc_f st
      and dw = alloc_f st in
      release st own;
      let cn = st.cn in
      let fill rt m =
        inst rt;
        fl rt m;
        let n = rt.n in
        let fp = rt.fp in
        let neg poff doff =
          if Array.length m = n then
            for l = 0 to n - 1 do
              fset fp (doff + l) (-.fget fp (poff + l))
            done
          else Array.iter (fun l -> fset fp (doff + l) (-.fget fp (poff + l))) m
        in
        neg (px * cn) (dx * cn);
        neg (py * cn) (dy * cn);
        neg (pz * cn) (dz * cn);
        neg (pw * cn) (dw * cn)
      in
      (XF4 ((dx, dy, dz, dw), fill), [ PF dx; PF dy; PF dz; PF dw ])
  | (UB _ | XB _), _ -> unsupported "negation of a boolean"

and comp_binop st env op a b : ve =
  comp_binop_c st op (comp_e st env a) (comp_e st env b)

and comp_binop_c st op (ca : ve) (cb : ve) : ve =
  let bothu = is_uniform (fst ca) && is_uniform (fst cb) in
  match op with
  | Add | Sub | Mul | Div -> (
      match (fst ca, fst cb) with
      | (UI _ | XI _), (UI _ | XI _) ->
          let iop =
            match op with
            | Add -> ( + )
            | Sub -> ( - )
            | Mul -> ( * )
            | _ -> fun a b -> if b = 0 then Interp.err "division by zero" else a / b
          in
          if bothu then begin
            let fa, owna = iopnd ca and fb, ownb = iopnd cb in
            release st owna;
            release st ownb;
            let fa = iu fa and fb = iu fb in
            ( UI
                (fun rt m ->
                  inst rt;
                  let x = fa rt m in
                  let y = fb rt m in
                  iop x y),
              [] )
          end
          else mk_ibin st iop ca cb
      | (XF2 _ | XF4 _), _ | _, (XF2 _ | XF4 _) -> comp_vec_arith st op ca cb
      | _ ->
          let fop =
            match op with
            | Add -> ( +. )
            | Sub -> ( -. )
            | Mul -> ( *. )
            | _ -> ( /. )
          in
          if bothu then begin
            let fa, owna = fopnd st ca in
            let fb, ownb = fopnd st cb in
            release st owna;
            release st ownb;
            let fa = fu fa and fb = fu fb in
            ( UF
                (fun rt m ->
                  inst rt;
                  let x = fa rt m in
                  let y = fb rt m in
                  flops rt (Array.length m);
                  fop x y),
              [] )
          end
          else mk_fbin st ~flops_first:false fop ca cb)
  | Mod -> (
      match (fst ca, fst cb) with
      | (UI _ | XI _), (UI _ | XI _) ->
          let emod x y =
            if y = 0 then Interp.err "mod by zero";
            ((x mod y) + y) mod y
          in
          if bothu then begin
            let fa, owna = iopnd ca and fb, ownb = iopnd cb in
            release st owna;
            release st ownb;
            let fa = iu fa and fb = iu fb in
            ( UI
                (fun rt m ->
                  inst rt;
                  let x = fa rt m in
                  let y = fb rt m in
                  emod x y),
              [] )
          end
          else mk_ibin st emod ca cb
      | _ -> unsupported "%% on non-int values")
  | Lt -> comp_cmp st ca cb ~iop:(fun x y -> x < y) ~fop:(fun x y -> x < y)
  | Le -> comp_cmp st ca cb ~iop:(fun x y -> x <= y) ~fop:(fun x y -> x <= y)
  | Gt -> comp_cmp st ca cb ~iop:(fun x y -> x > y) ~fop:(fun x y -> x > y)
  | Ge -> comp_cmp st ca cb ~iop:(fun x y -> x >= y) ~fop:(fun x y -> x >= y)
  | Eq -> comp_cmp st ca cb ~iop:(fun x y -> x = y) ~fop:(fun x y -> x = y)
  | Ne -> comp_cmp st ca cb ~iop:(fun x y -> x <> y) ~fop:(fun x y -> x <> y)
  | And | Or ->
      let disj = op = Or in
      if bothu then begin
        let fa, owna = bopnd ca and fb, ownb = bopnd cb in
        release st owna;
        release st ownb;
        let fa = bu fa and fb = bu fb in
        ( UB
            (fun rt m ->
              inst rt;
              let x = fa rt m in
              let y = fb rt m in
              if disj then x || y else x && y),
          [] )
      end
      else mk_bbin st ~disj ca cb

and comp_vec_arith st op ca cb : ve =
  let fop =
    match op with Add -> ( +. ) | Sub -> ( -. ) | Mul -> ( *. ) | _ -> ( /. )
  in
  let comb2 rt m poff qoff doff =
    let n = rt.n in
    let fp = rt.fp in
    if Array.length m = n then
      for l = 0 to n - 1 do
        fset fp (doff + l) (fop (fget fp (poff + l)) (fget fp (qoff + l)))
      done
    else
      Array.iter
        (fun l ->
          fset fp (doff + l) (fop (fget fp (poff + l)) (fget fp (qoff + l))))
        m
  in
  match (ca, cb) with
  | (XF2 ((ax, ay), fla), owna), (XF2 ((bx, by), flb), ownb) ->
      (* destinations before releasing the sources: with several result
         planes written one after another, a destination aliasing a
         not-yet-read source component would corrupt it *)
      let dx = alloc_f st and dy = alloc_f st in
      release st owna;
      release st ownb;
      let cn = st.cn in
      let fill rt m =
        inst rt;
        fla rt m;
        flb rt m;
        flops rt (2 * Array.length m);
        comb2 rt m (ax * cn) (bx * cn) (dx * cn);
        comb2 rt m (ay * cn) (by * cn) (dy * cn)
      in
      (XF2 ((dx, dy), fill), [ PF dx; PF dy ])
  | (XF4 ((ax, ay, az, aw), fla), owna), (XF4 ((bx, by, bz, bw), flb), ownb) ->
      let dx = alloc_f st
      and dy = alloc_f st
      and dz = alloc_f st
      and dw = alloc_f st in
      release st owna;
      release st ownb;
      let cn = st.cn in
      let fill rt m =
        inst rt;
        fla rt m;
        flb rt m;
        flops rt (4 * Array.length m);
        comb2 rt m (ax * cn) (bx * cn) (dx * cn);
        comb2 rt m (ay * cn) (by * cn) (dy * cn);
        comb2 rt m (az * cn) (bz * cn) (dz * cn);
        comb2 rt m (aw * cn) (bw * cn) (dw * cn)
      in
      (XF4 ((dx, dy, dz, dw), fill), [ PF dx; PF dy; PF dz; PF dw ])
  | _ -> unsupported "mixed vector/scalar arithmetic"

and comp_cmp st ca cb ~(iop : int -> int -> bool)
    ~(fop : float -> float -> bool) : ve =
  match (fst ca, fst cb) with
  | UI fa, UI fb ->
      release st (snd ca);
      release st (snd cb);
      ( UB
          (fun rt m ->
            inst rt;
            let x = fa rt m in
            let y = fb rt m in
            iop x y),
        [] )
  | (UI _ | XI _), (UI _ | XI _) -> mk_icmp st iop ca cb
  | _ ->
      if is_uniform (fst ca) && is_uniform (fst cb) then begin
        let fa, owna = fopnd st ca in
        let fb, ownb = fopnd st cb in
        release st owna;
        release st ownb;
        let fa = fu fa and fb = fu fb in
        ( UB
            (fun rt m ->
              inst rt;
              let x = fa rt m in
              let y = fb rt m in
              fop x y),
          [] )
      end
      else mk_fcmp st fop ca cb

and comp_offsets st env (strides : int array) (idxs : Ast.expr list) :
    ostep list * plane list =
  let owns = ref [] in
  let steps =
    List.mapi
      (fun d idx ->
        let stride = strides.(d) in
        match comp_e st env idx with
        | UI f, own ->
            owns := own @ !owns;
            OU (f, stride)
        | UB f, own ->
            owns := own @ !owns;
            OU ((fun rt m -> if f rt m then 1 else 0), stride)
        | ((XI _ | XB _), _) as v -> (
            let o, own = iopnd v in
            owns := own @ !owns;
            match o with
            | IP (p, fl) -> OV (p * st.cn, fl, stride)
            | IU _ -> assert false)
        | (UF _ | XF _ | XF2 _ | XF4 _), _ -> unsupported "expected an int value")
      idxs
  in
  (steps, !owns)

and comp_load st env arr idxs : ve =
  match Smap.find_opt arr env with
  | Some (Bglobal (gslot, strides, name)) ->
      if List.length idxs <> Array.length strides then
        unsupported "rank mismatch accessing %s" arr;
      let steps, owns = comp_offsets st env strides idxs in
      if all_uniform_steps steps then begin
        release st owns;
        ( UF
            (fun rt m ->
              inst rt;
              let g = rt.globals.(gslot) in
              let data = g.Devmem.data in
              let len = Bigarray.Array1.dim data in
              let o = eval_usteps steps rt m in
              if o < 0 || o >= len then
                Interp.err "out-of-bounds load %s[%d] (size %d)" name o len;
              let v = fget data o in
              let addr = g.Devmem.base + (o * 4) in
              account_const rt ~is_store:false ~elt_bytes:4 m ~addr;
              v),
          [] )
      end
      else begin
        let xp, tmp = mk_xplan st steps in
        (* dest allocated while the index planes are held: the gather
           and accounting read them through the plan *)
        let d = alloc_f st in
        release st owns;
        release st tmp;
        let doff = d * st.cn in
        let po = xp.xp_po and sc = xp.xp_scale in
        let run = xp.xp_run in
        let site = fresh_site st in
        let stable = stable_site st steps in
        let fill rt m =
          inst rt;
          let g = rt.globals.(gslot) in
          let data = g.Devmem.data in
          let len = Bigarray.Array1.dim data in
          let u = run rt m in
          let n = rt.n in
          let ip = rt.ip and fp = rt.fp in
          if Array.length m = n then
            if sc = 1 then
              for l = 0 to n - 1 do
                let o = iget ip (po + l) + u in
                if o < 0 || o >= len then
                  Interp.err "out-of-bounds load %s[%d] (size %d)" name o len;
                fset fp (doff + l) (fget data o)
              done
            else
              for l = 0 to n - 1 do
                let o = (iget ip (po + l) * sc) + u in
                if o < 0 || o >= len then
                  Interp.err "out-of-bounds load %s[%d] (size %d)" name o len;
                fset fp (doff + l) (fget data o)
              done
          else
            Array.iter
              (fun l ->
                let o = (iget ip (po + l) * sc) + u in
                if o < 0 || o >= len then
                  Interp.err "out-of-bounds load %s[%d] (size %d)" name o len;
                fset fp (doff + l) (fget data o))
              m;
          account_plane rt ~is_store:false ~elt_bytes:4 ~stable m ~po
            ~base:(g.Devmem.base + (4 * u))
            ~scale:(4 * sc) ~site
        in
        (XF (d, fill), [ PF d ])
      end
  | Some (Bshared (sslot, strides, len)) ->
      if List.length idxs <> Array.length strides then
        unsupported "rank mismatch accessing shared %s" arr;
      let steps, owns = comp_offsets st env strides idxs in
      let name = arr in
      if all_uniform_steps steps then begin
        release st owns;
        ( UF
            (fun rt m ->
              inst rt;
              let data = rt.shareds.(sslot) in
              let o = eval_usteps steps rt m in
              if o < 0 || o >= len then
                Interp.err "out-of-bounds shared load %s[%d] (size %d)" name o
                  len;
              let v = fget data o in
              account_shared_const rt m ~addr:o;
              v),
          [] )
      end
      else begin
        let xp, tmp = mk_xplan st steps in
        let d = alloc_f st in
        release st owns;
        release st tmp;
        let doff = d * st.cn in
        let po = xp.xp_po and sc = xp.xp_scale in
        let run = xp.xp_run in
        let site = fresh_site st in
        let stable = stable_site st steps in
        let fill rt m =
          inst rt;
          let data = rt.shareds.(sslot) in
          let u = run rt m in
          let n = rt.n in
          let ip = rt.ip and fp = rt.fp in
          if Array.length m = n then
            if sc = 1 then
              for l = 0 to n - 1 do
                let o = iget ip (po + l) + u in
                if o < 0 || o >= len then
                  Interp.err "out-of-bounds shared load %s[%d] (size %d)" name
                    o len;
                fset fp (doff + l) (fget data o)
              done
            else
              for l = 0 to n - 1 do
                let o = (iget ip (po + l) * sc) + u in
                if o < 0 || o >= len then
                  Interp.err "out-of-bounds shared load %s[%d] (size %d)" name
                    o len;
                fset fp (doff + l) (fget data o)
              done
          else
            Array.iter
              (fun l ->
                let o = (iget ip (po + l) * sc) + u in
                if o < 0 || o >= len then
                  Interp.err "out-of-bounds shared load %s[%d] (size %d)" name
                    o len;
                fset fp (doff + l) (fget data o))
              m;
          account_shared_plane rt ~stable m ~po ~scale:sc ~u ~site
        in
        (XF (d, fill), [ PF d ])
      end
  | Some _ -> unsupported "%s is not an array" arr
  | None -> unsupported "unbound variable %s" arr

and comp_vload st env arr width idx : ve =
  match Smap.find_opt arr env with
  | Some (Bglobal (gslot, _, name)) ->
      if width <> 2 && width <> 4 then unsupported "vector width %d" width;
      let fidx, owni = iopnd (comp_e st env idx) in
      (* dest planes allocated while the index plane is held: accounting
         reads the index after the component loops write the planes *)
      let ds = Array.init width (fun _ -> alloc_f st) in
      release st owni;
      let site = fresh_site st in
      let cn = st.cn in
      let doffs = Array.map (fun d -> d * cn) ds in
      let ioff = match fidx with IP (p, _) -> p * cn | IU _ -> 0 in
      let stable =
        match fidx with IP _ -> stable_plane st ioff | IU _ -> false
      in
      let fill rt m =
        inst rt;
        let g = rt.globals.(gslot) in
        let data = g.Devmem.data in
        let len = Bigarray.Array1.dim data in
        let n = rt.n in
        let fp = rt.fp in
        let iuv = ieval fidx rt m in
        (match fidx with
        | IU _ ->
            let i0 = iuv * width in
            for k = 0 to width - 1 do
              let o = i0 + k in
              if o < 0 || o >= len then
                Interp.err "out-of-bounds vector load %s[%d] (size %d)" name o
                  len;
              let v = fget data o in
              let doff = doffs.(k) in
              if Array.length m = n then
                for l = 0 to n - 1 do
                  fset fp (doff + l) v
                done
              else Array.iter (fun l -> fset fp (doff + l) v) m
            done;
            account_const rt ~is_store:false ~elt_bytes:(4 * width) m
              ~addr:(g.Devmem.base + (i0 * 4))
        | IP _ ->
            let ip = rt.ip in
            for k = 0 to width - 1 do
              let doff = doffs.(k) in
              if Array.length m = n then
                for l = 0 to n - 1 do
                  let o = (iget ip (ioff + l) * width) + k in
                  if o < 0 || o >= len then
                    Interp.err "out-of-bounds vector load %s[%d] (size %d)"
                      name o len;
                  fset fp (doff + l) (fget data o)
                done
              else
                Array.iter
                  (fun l ->
                    let o = (iget ip (ioff + l) * width) + k in
                    if o < 0 || o >= len then
                      Interp.err "out-of-bounds vector load %s[%d] (size %d)"
                        name o len;
                    fset fp (doff + l) (fget data o))
                  m
            done;
            account_plane rt ~is_store:false ~elt_bytes:(4 * width) ~stable m
              ~po:ioff ~base:g.Devmem.base ~scale:(4 * width) ~site)
      in
      if width = 2 then
        (XF2 ((ds.(0), ds.(1)), fill), [ PF ds.(0); PF ds.(1) ])
      else
        ( XF4 ((ds.(0), ds.(1), ds.(2), ds.(3)), fill),
          [ PF ds.(0); PF ds.(1); PF ds.(2); PF ds.(3) ] )
  | _ -> unsupported "vector load from non-global array %s" arr

and comp_field st env a f : ve =
  let keep_component own p fl =
    let keep, drop = List.partition (fun pl -> pl = PF p) own in
    release st drop;
    (XF (p, fl), keep)
  in
  match (comp_e st env a, f) with
  | (XF2 ((x, _), fl), own), Ast.FX -> keep_component own x fl
  | (XF2 ((_, y), fl), own), Ast.FY -> keep_component own y fl
  | (XF4 ((x, _, _, _), fl), own), Ast.FX -> keep_component own x fl
  | (XF4 ((_, y, _, _), fl), own), Ast.FY -> keep_component own y fl
  | (XF4 ((_, _, z, _), fl), own), Ast.FZ -> keep_component own z fl
  | (XF4 ((_, _, _, w), fl), own), Ast.FW -> keep_component own w fl
  | _ -> unsupported "bad vector field access"

and comp_call st env f args : ve =
  let unary g =
    match args with
    | [ a ] -> (
        match comp_e st env a with
        | ((UI _ | UF _), _) as v ->
            let fa, own = fopnd st v in
            release st own;
            let fa = fu fa in
            ( UF
                (fun rt m ->
                  inst rt;
                  flops rt (Array.length m);
                  g (fa rt m)),
              [] )
        | ((XI _ | XF _), _) as v ->
            let fa, own = fopnd st v in
            release st own;
            let d = alloc_f st in
            let doff = d * st.cn in
            let poff = match fa with FP (p, _) -> p * st.cn | FU _ -> 0 in
            let fill rt m =
              inst rt;
              flops rt (Array.length m);
              (match fa with FP (_, fl) -> fl rt m | FU _ -> ());
              let n = rt.n in
              let fp = rt.fp in
              if Array.length m = n then
                for l = 0 to n - 1 do
                  fset fp (doff + l) (g (fget fp (poff + l)))
                done
              else
                Array.iter (fun l -> fset fp (doff + l) (g (fget fp (poff + l)))) m
            in
            (XF (d, fill), [ PF d ])
        | _ -> unsupported "expected a float value")
    | _ -> unsupported "%s expects one argument" f
  in
  let binary_f g =
    match args with
    | [ a; b ] ->
        let ca = comp_e st env a in
        let cb = comp_e st env b in
        if is_uniform (fst ca) && is_uniform (fst cb) then begin
          let fa, owna = fopnd st ca in
          let fb, ownb = fopnd st cb in
          release st owna;
          release st ownb;
          let fa = fu fa and fb = fu fb in
          ( UF
              (fun rt m ->
                inst rt;
                flops rt (Array.length m);
                let x = fa rt m in
                let y = fb rt m in
                g x y),
            [] )
        end
        else mk_fbin st ~flops_first:true g ca cb
    | _ -> unsupported "%s expects two arguments" f
  in
  match f with
  | "sqrtf" -> unary sqrt
  | "fabsf" -> unary Float.abs
  | "expf" -> unary exp
  | "logf" -> unary log
  | "sinf" -> unary sin
  | "cosf" -> unary cos
  | "fmaxf" -> binary_f Float.max
  | "fminf" -> binary_f Float.min
  | "min" | "max" -> (
      match args with
      | [ a; b ] ->
          let ca = comp_e st env a in
          let cb = comp_e st env b in
          let g = if f = "min" then min else max in
          if is_uniform (fst ca) && is_uniform (fst cb) then begin
            let fa, owna = iopnd ca and fb, ownb = iopnd cb in
            release st owna;
            release st ownb;
            let fa = iu fa and fb = iu fb in
            ( UI
                (fun rt m ->
                  inst rt;
                  let x = fa rt m in
                  let y = fb rt m in
                  g x y),
              [] )
          end
          else mk_ibin st g ca cb
      | _ -> unsupported "%s expects two arguments" f)
  | "make_float2" -> (
      match args with
      | [ a; b ] ->
          let (px, evx), owna = vec_component st env a in
          let (py, evy), ownb = vec_component st env b in
          let fill rt m =
            inst rt;
            evx rt m;
            evy rt m
          in
          (XF2 ((px, py), fill), owna @ ownb)
      | _ -> unsupported "make_float2 expects two arguments")
  | "make_float4" -> (
      match args with
      | [ a; b; d; e ] ->
          let (px, evx), owna = vec_component st env a in
          let (py, evy), ownb = vec_component st env b in
          let (pz, evz), ownc = vec_component st env d in
          let (pw, evw), ownd = vec_component st env e in
          let fill rt m =
            inst rt;
            evx rt m;
            evy rt m;
            evz rt m;
            evw rt m
          in
          (XF4 ((px, py, pz, pw), fill), owna @ ownb @ ownc @ ownd)
      | _ -> unsupported "make_float4 expects four arguments")
  | _ -> unsupported "unknown intrinsic %s" f

(** One component of a [make_floatN] intrinsic: a float plane plus the
    evaluation action that produces it (the plane's own fill, or a
    masked broadcast of a uniform). *)
and vec_component st env (a : Ast.expr) : (int * fill) * plane list =
  match fopnd st (comp_e st env a) with
  | FP (p, fl), own -> ((p, fl), own)
  | FU f, own ->
      let t = alloc_f st in
      let toff = t * st.cn in
      let ev rt m =
        let v = f rt m in
        let n = rt.n in
        let fp = rt.fp in
        if Array.length m = n then
          for l = 0 to n - 1 do
            fset fp (toff + l) v
          done
        else Array.iter (fun l -> fset fp (toff + l) v) m
      in
      ((t, ev), PF t :: own)

and comp_select st env cond a b : ve =
  let cc = comp_e st env cond in
  let ca = comp_e st env a in
  let cb = comp_e st env b in
  let allu =
    is_uniform (fst cc) && is_uniform (fst ca) && is_uniform (fst cb)
  in
  let fc, ownc = bopnd cc in
  match (fst ca, fst cb) with
  | (UI _ | XI _), (UI _ | XI _) ->
      let fa, owna = iopnd ca and fb, ownb = iopnd cb in
      if allu then begin
        release st ownc;
        release st owna;
        release st ownb;
        let fc = bu fc and fa = iu fa and fb = iu fb in
        ( UI
            (fun rt m ->
              inst rt;
              let bv = fc rt m in
              let x = fa rt m in
              let y = fb rt m in
              if bv then x else y),
          [] )
      end
      else begin
        release st ownc;
        release st owna;
        release st ownb;
        let d = alloc_i st in
        let doff = d * st.cn in
        let rc = brd st fc in
        let ra, _ = ird st fa and rb, _ = ird st fb in
        let fill rt m =
          inst rt;
          let cv = beval fc rt m in
          let av = ieval fa rt m in
          let bv = ieval fb rt m in
          let n = rt.n in
          let ip = rt.ip in
          if Array.length m = n then
            for l = 0 to n - 1 do
              iset ip (doff + l)
                (if rc rt cv l then ra rt av l else rb rt bv l)
            done
          else
            Array.iter
              (fun l ->
                iset ip (doff + l)
                  (if rc rt cv l then ra rt av l else rb rt bv l))
              m
        in
        (XI (d, fill), [ PI d ])
      end
  | (UB _ | XB _), (UB _ | XB _) ->
      let fa, owna = bopnd ca and fb, ownb = bopnd cb in
      if allu then begin
        release st ownc;
        release st owna;
        release st ownb;
        let fc = bu fc and fa = bu fa and fb = bu fb in
        ( UB
            (fun rt m ->
              inst rt;
              let bv = fc rt m in
              let x = fa rt m in
              let y = fb rt m in
              if bv then x else y),
          [] )
      end
      else begin
        release st ownc;
        release st owna;
        release st ownb;
        let d = alloc_i st in
        let doff = d * st.cn in
        let rc = brd st fc in
        let ra = brd st fa and rb = brd st fb in
        let fill rt m =
          inst rt;
          let cv = beval fc rt m in
          let av = beval fa rt m in
          let bv = beval fb rt m in
          let n = rt.n in
          let ip = rt.ip in
          if Array.length m = n then
            for l = 0 to n - 1 do
              iset ip (doff + l)
                (if
                   if rc rt cv l then ra rt av l else rb rt bv l
                 then 1
                 else 0)
            done
          else
            Array.iter
              (fun l ->
                iset ip (doff + l)
                  (if
                     if rc rt cv l then ra rt av l else rb rt bv l
                   then 1
                   else 0))
              m
        in
        (XB (d, fill), [ PI d ])
      end
  | _ ->
      let fa, owna = fopnd st ca in
      let fb, ownb = fopnd st cb in
      if allu then begin
        release st ownc;
        release st owna;
        release st ownb;
        let fc = bu fc and fa = fu fa and fb = fu fb in
        ( UF
            (fun rt m ->
              inst rt;
              let bv = fc rt m in
              let x = fa rt m in
              let y = fb rt m in
              if bv then x else y),
          [] )
      end
      else begin
        release st ownc;
        release st owna;
        release st ownb;
        let d = alloc_f st in
        let doff = d * st.cn in
        let rc = brd st fc in
        let ra = frd st fa and rb = frd st fb in
        let fill rt m =
          inst rt;
          let cv = beval fc rt m in
          let av = feval fa rt m in
          let bv = feval fb rt m in
          let n = rt.n in
          let fp = rt.fp in
          if Array.length m = n then
            for l = 0 to n - 1 do
              fset fp (doff + l)
                (if rc rt cv l then ra rt av l else rb rt bv l)
            done
          else
            Array.iter
              (fun l ->
                fset fp (doff + l)
                  (if rc rt cv l then ra rt av l else rb rt bv l))
              m
        in
        (XF (d, fill), [ PF d ])
      end

(* --- statements --- *)


(** Masked store into a declared variable's permanent plane(s), with the
    reference interpreter's promotion rules (int->float, bool->int,
    int->bool). *)
let store_plane st (b : binding) (ve : ve) : vstmt =
  let cn = st.cn in
  match (b, fst ve) with
  | Bint d, (UI _ | XI _ | UB _ | XB _) ->
      let io, own = iopnd ve in
      release st own;
      let r, _ = ird st io in
      let doff = d * cn in
      fun rt m ->
        let v = ieval io rt m in
        let n = rt.n in
        let ip = rt.ip in
        if Array.length m = n then
          for l = 0 to n - 1 do
            iset ip (doff + l) (r rt v l)
          done
        else Array.iter (fun l -> iset ip (doff + l) (r rt v l)) m
  | Bfloat d, (UI _ | UF _ | XI _ | XF _) ->
      let fo, own = fopnd st ve in
      release st own;
      let r = frd st fo in
      let doff = d * cn in
      fun rt m ->
        let v = feval fo rt m in
        let n = rt.n in
        let fp = rt.fp in
        if Array.length m = n then
          for l = 0 to n - 1 do
            fset fp (doff + l) (r rt v l)
          done
        else Array.iter (fun l -> fset fp (doff + l) (r rt v l)) m
  | Bbool d, (UB _ | XB _ | UI _ | XI _) ->
      let bo, own = bopnd ve in
      release st own;
      let r = brd st bo in
      let doff = d * cn in
      fun rt m ->
        let v = beval bo rt m in
        let n = rt.n in
        let ip = rt.ip in
        if Array.length m = n then
          for l = 0 to n - 1 do
            iset ip (doff + l) (if r rt v l then 1 else 0)
          done
        else
          Array.iter (fun l -> iset ip (doff + l) (if r rt v l then 1 else 0)) m
  | Bf2 (dx, dy), XF2 ((sx, sy), fl) ->
      release st (snd ve);
      let copies = [| (sx * cn, dx * cn); (sy * cn, dy * cn) |] in
      fun rt m ->
        fl rt m;
        let n = rt.n in
        let fp = rt.fp in
        Array.iter
          (fun (so, dd) ->
            if Array.length m = n then
              for l = 0 to n - 1 do
                fset fp (dd + l) (fget fp (so + l))
              done
            else Array.iter (fun l -> fset fp (dd + l) (fget fp (so + l))) m)
          copies
  | Bf4 (dx, dy, dz, dw), XF4 ((sx, sy, sz, sw), fl) ->
      release st (snd ve);
      let copies =
        [|
          (sx * cn, dx * cn);
          (sy * cn, dy * cn);
          (sz * cn, dz * cn);
          (sw * cn, dw * cn);
        |]
      in
      fun rt m ->
        fl rt m;
        let n = rt.n in
        let fp = rt.fp in
        Array.iter
          (fun (so, dd) ->
            if Array.length m = n then
              for l = 0 to n - 1 do
                fset fp (dd + l) (fget fp (so + l))
              done
            else Array.iter (fun l -> fset fp (dd + l) (fget fp (so + l))) m)
          copies
  | _ -> unsupported "incompatible assignment"

let shared_slot st name (a : Ast.array_ty) : int * Layout.t * int =
  let lay = Layout.make ~pad:false name a in
  match List.find_opt (fun (n, _, _, _) -> n = name) st.shared_specs with
  | Some (_, lay0, len, slot) ->
      if lay0 <> lay then unsupported "conflicting shared layouts for %s" name;
      (slot, lay, len)
  | None ->
      let slot = List.length st.shared_specs in
      let len = max 1 (Layout.size_elems lay) in
      st.shared_specs <- st.shared_specs @ [ (name, lay, len, slot) ];
      (slot, lay, len)

let assigns_var name (b : Ast.block) : bool =
  let rec stmt = function
    | Ast.Assign (Lvar v, _) -> v = name
    | Ast.Assign (_, _) -> false
    | Ast.If (_, t, f) -> block t || block f
    | Ast.For l -> block l.l_body
    | Ast.Decl _ | Ast.Sync | Ast.Global_sync | Ast.Comment _ -> false
  and block b = List.exists stmt b in
  block b

(** Zero every lane of the planes backing one declared scalar — the
    analogue of the reference's fresh per-execution value arrays. *)
let fresh_planes st (b : binding) : vrt -> unit =
  let cn = st.cn in
  let fplanes =
    match b with
    | Bfloat p -> [| p * cn |]
    | Bf2 (x, y) -> [| x * cn; y * cn |]
    | Bf4 (x, y, z, w) -> [| x * cn; y * cn; z * cn; w * cn |]
    | _ -> [||]
  in
  let iplanes =
    match b with Bint p | Bbool p -> [| p * cn |] | _ -> [||]
  in
  fun rt ->
    let n = rt.n in
    Array.iter
      (fun o ->
        let fp = rt.fp in
        for l = 0 to n - 1 do
          fset fp (o + l) 0.0
        done)
      fplanes;
    Array.iter (fun o -> Array.fill rt.ip o n 0) iplanes

let rec comp_stmt st env (s : Ast.stmt) : binding Smap.t * vstmt option =
  match s with
  | Comment _ -> (env, None)
  | Global_sync ->
      (* top-level barriers are phase splits; a nested one is a no-op,
         exactly like the reference *)
      (env, None)
  | Sync ->
      ( env,
        Some
          (fun rt _ ->
            let s = rt.c.Interp.stats in
            s.Stats.syncs <- s.Stats.syncs +. 1.;
            rt.c.Interp.epoch <- rt.c.Interp.epoch + 1;
            inst rt) )
  | Decl { d_name; d_ty = Scalar sc; d_init } ->
      let b =
        match sc with
        | Ast.Int -> Bint (alloc_i st)
        | Ast.Bool -> Bbool (alloc_i st)
        | Ast.Float -> Bfloat (alloc_f st)
        | Ast.Float2 -> Bf2 (alloc_f st, alloc_f st)
        | Ast.Float4 -> Bf4 (alloc_f st, alloc_f st, alloc_f st, alloc_f st)
      in
      let zero = fresh_planes st b in
      let stm =
        match d_init with
        | None -> fun rt _ -> zero rt
        | Some e ->
            let store = store_plane st b (comp_e st env e) in
            fun rt m ->
              zero rt;
              inst rt;
              store rt m
      in
      (Smap.add d_name b env, Some stm)
  | Decl { d_name; d_ty = Array ({ space = Shared; _ } as a); _ } ->
      let slot, lay, len = shared_slot st d_name a in
      let strides = Array.of_list (Layout.strides lay) in
      (Smap.add d_name (Bshared (slot, strides, len)) env, None)
  | Decl { d_name; d_ty = Array _; _ } ->
      unsupported "declaration of non-shared array %s in kernel body" d_name
  | Assign (lv, e) -> (env, Some (comp_assign st env lv e))
  | If (cond, t, f) -> (
      let cc = comp_e st env cond in
      match fst cc with
      | UB _ | UI _ ->
          let fc, ownc = bopnd cc in
          release st ownc;
          let fc = bu fc in
          let tstm = comp_block st env t in
          let fstm = comp_block st env f in
          ( env,
            Some
              (fun rt m ->
                inst rt;
                if fc rt m then tstm rt m else fstm rt m) )
      | XB _ | XI _ ->
          let fc, ownc = bopnd cc in
          release st ownc;
          let rc = brd st fc in
          let tstm = comp_block st env t in
          let fstm = comp_block st env f in
          ( env,
            Some
              (fun rt m ->
                inst rt;
                let cv = beval fc rt m in
                let nt = ref 0 in
                Array.iter (fun l -> if rc rt cv l then incr nt) m;
                let nt = !nt in
                let nm = Array.length m in
                let tm = Array.make nt 0 and fm = Array.make (nm - nt) 0 in
                let ti = ref 0 and fi = ref 0 in
                Array.iter
                  (fun l ->
                    if rc rt cv l then begin
                      tm.(!ti) <- l;
                      incr ti
                    end
                    else begin
                      fm.(!fi) <- l;
                      incr fi
                    end)
                  m;
                if nt > 0 && nm - nt > 0 then begin
                  let s = rt.c.Interp.stats in
                  s.Stats.divergent_branches <-
                    s.Stats.divergent_branches +. 1.
                end;
                if nt > 0 then tstm rt tm;
                if nm - nt > 0 then fstm rt fm) )
      | UF _ | XF _ | XF2 _ | XF4 _ -> unsupported "expected a boolean value")
  | For { l_var; l_init; l_limit; l_step; l_body } -> (
      let init_ce = comp_e st env l_init in
      let init_uniform =
        match fst init_ce with UI _ | UB _ -> true | _ -> false
      in
      let uniform_candidate = init_uniform && not (assigns_var l_var l_body) in
      let uniform_compiled =
        if not uniform_candidate then None
        else begin
          let r = fresh_ureg st in
          let env_u = Smap.add l_var (Bloop_u r) env in
          match (comp_e st env_u l_limit, comp_e st env_u l_step) with
          | (((UI _ | UB _), _) as lim_ce), (((UI _ | UB _), _) as step_ce) ->
              let finit, owni = iopnd init_ce in
              let flim, ownl = iopnd lim_ce in
              let fstep, owns = iopnd step_ce in
              release st owni;
              release st ownl;
              release st owns;
              let finit = iu finit and flim = iu flim and fstep = iu fstep in
              let body = comp_block st env_u l_body in
              Some
                (fun rt m ->
                  inst rt;
                  rt.uregs.(r) <- finit rt m;
                  let rec loop () =
                    let lim = flim rt m in
                    let go = rt.uregs.(r) < lim in
                    inst rt;
                    if go then begin
                      body rt m;
                      rt.uregs.(r) <- rt.uregs.(r) + fstep rt m;
                      inst rt;
                      loop ()
                    end
                  in
                  loop ())
          | _ -> None
        end
      in
      match uniform_compiled with
      | Some stm -> (env, Some stm)
      | None ->
          let finit, owni = iopnd init_ce in
          let piv =
            (* permanent counter plane, allocated while the init's
               planes are held so they cannot alias *)
            let p = st.ni in
            st.ni <- p + 1;
            p
          in
          release st owni;
          let env_v = Smap.add l_var (Bloop_v piv) env in
          let flim, ownl = iopnd (comp_e st env_v l_limit) in
          let fstep, owns = iopnd (comp_e st env_v l_step) in
          release st ownl;
          release st owns;
          let rinit, _ = ird st finit in
          let rlim, _ = ird st flim in
          let rstep, _ = ird st fstep in
          let body = comp_block st env_v l_body in
          let ioff = piv * st.cn in
          ( env,
            Some
              (fun rt m ->
                let n = rt.n in
                let ip = rt.ip in
                Array.fill ip ioff n 0;
                inst rt;
                let iv = ieval finit rt m in
                Array.iter (fun l -> iset ip (ioff + l) (rinit rt iv l)) m;
                let rec loop active =
                  let lv = ieval flim rt active in
                  let ns = ref 0 in
                  Array.iter
                    (fun l ->
                      if iget ip (ioff + l) < rlim rt lv l then incr ns)
                    active;
                  let still = Array.make !ns 0 in
                  let si = ref 0 in
                  Array.iter
                    (fun l ->
                      if iget ip (ioff + l) < rlim rt lv l then begin
                        still.(!si) <- l;
                        incr si
                      end)
                    active;
                  inst rt;
                  if !ns > 0 then begin
                    body rt still;
                    let sv = ieval fstep rt still in
                    Array.iter
                      (fun l ->
                        iset ip (ioff + l) (iget ip (ioff + l) + rstep rt sv l))
                      still;
                    inst rt;
                    loop still
                  end
                in
                loop m) ))

(* In-place accumulation [v = v +/- rest] (and the mirrored
   [v = rest + v]) into the variable's own plane, skipping the
   temporary-plane + copy-back of the generic assign. When [rest] is an
   elementwise float product the multiply folds into the same pass — the
   [sum += a * b] inner-loop shape. Statistics stay identical to the
   generic path: [inst]/[flops] are exact order-free counters so only
   their totals must match, and the operand fills (which may contain
   accounted loads feeding the order-sensitive [cost_bytes]) run in the
   same relative order as {!mk_fbin} would run them. *)
and comp_acc st env (v : string) (pv : int) (e : Ast.expr) : vstmt =
  let cn = st.cn in
  let doff = pv * cn in
  let op, rest, sum_left =
    match e with
    | Ast.Binop (((Ast.Add | Ast.Sub) as op), Ast.Var v', rest) when v' = v ->
        (op, rest, true)
    | Ast.Binop (Ast.Add, rest, Ast.Var v') when v' = v -> (Ast.Add, rest, false)
    | _ -> unsupported "not an accumulation"
  in
  let fop = match op with Ast.Sub -> ( -. ) | _ -> ( +. ) in
  (* [Ok (a, aoff, b, boff)]: fused multiply-accumulate operands.
     [Error ve]: plain accumulate of an already-compiled [rest]. *)
  let fused =
    match rest with
    | Ast.Binop (Ast.Mul, e1, e2) -> (
        let ca = comp_e st env e1 in
        let cb = comp_e st env e2 in
        match (fst ca, fst cb) with
        | (UI _ | XI _), (UI _ | XI _) | (XF2 _ | XF4 _), _ | _, (XF2 _ | XF4 _)
          ->
            (* integer or vector multiply: not the float-plane shape *)
            Error (comp_binop_c st Ast.Mul ca cb)
        | ka, kb when is_uniform ka && is_uniform kb ->
            Error (comp_binop_c st Ast.Mul ca cb)
        | _ ->
            let fa, owna = fopnd st ca in
            let fb, ownb = fopnd st cb in
            release st owna;
            release st ownb;
            let aoff = match fa with FP (p, _) -> p * cn | FU _ -> 0 in
            let boff = match fb with FP (p, _) -> p * cn | FU _ -> 0 in
            Ok (fa, aoff, fb, boff))
    | _ -> Error (comp_e st env rest)
  in
  match fused with
  | Ok (fa, aoff, fb, boff) -> (
      let pre rt m =
        inst rt;
        (* assign *)
        inst rt;
        (* add/sub *)
        inst rt;
        (* mul *)
        let av = feval fa rt m in
        let bv = feval fb rt m in
        let k = Array.length m in
        flops rt k;
        flops rt k;
        (av, bv)
      in
      match (fa, fb) with
      | FP _, FP _ ->
          fun rt m ->
            ignore (pre rt m);
            let n = rt.n in
            let fp = rt.fp in
            if sum_left then
              if Array.length m = n then
                for l = 0 to n - 1 do
                  fset fp (doff + l)
                    (fop
                       (fget fp (doff + l))
                       (fget fp (aoff + l) *. fget fp (boff + l)))
                done
              else
                Array.iter
                  (fun l ->
                    fset fp (doff + l)
                      (fop
                         (fget fp (doff + l))
                         (fget fp (aoff + l) *. fget fp (boff + l))))
                  m
            else if Array.length m = n then
              for l = 0 to n - 1 do
                fset fp (doff + l)
                  (fop
                     (fget fp (aoff + l) *. fget fp (boff + l))
                     (fget fp (doff + l)))
              done
            else
              Array.iter
                (fun l ->
                  fset fp (doff + l)
                    (fop
                       (fget fp (aoff + l) *. fget fp (boff + l))
                       (fget fp (doff + l))))
                m
      | FP _, FU _ ->
          fun rt m ->
            let _, bv = pre rt m in
            let n = rt.n in
            let fp = rt.fp in
            if sum_left then
              if Array.length m = n then
                for l = 0 to n - 1 do
                  fset fp (doff + l)
                    (fop (fget fp (doff + l)) (fget fp (aoff + l) *. bv))
                done
              else
                Array.iter
                  (fun l ->
                    fset fp (doff + l)
                      (fop (fget fp (doff + l)) (fget fp (aoff + l) *. bv)))
                  m
            else if Array.length m = n then
              for l = 0 to n - 1 do
                fset fp (doff + l)
                  (fop (fget fp (aoff + l) *. bv) (fget fp (doff + l)))
              done
            else
              Array.iter
                (fun l ->
                  fset fp (doff + l)
                    (fop (fget fp (aoff + l) *. bv) (fget fp (doff + l))))
                m
      | FU _, FP _ ->
          fun rt m ->
            let av, _ = pre rt m in
            let n = rt.n in
            let fp = rt.fp in
            if sum_left then
              if Array.length m = n then
                for l = 0 to n - 1 do
                  fset fp (doff + l)
                    (fop (fget fp (doff + l)) (av *. fget fp (boff + l)))
                done
              else
                Array.iter
                  (fun l ->
                    fset fp (doff + l)
                      (fop (fget fp (doff + l)) (av *. fget fp (boff + l))))
                  m
            else if Array.length m = n then
              for l = 0 to n - 1 do
                fset fp (doff + l)
                  (fop (av *. fget fp (boff + l)) (fget fp (doff + l)))
              done
            else
              Array.iter
                (fun l ->
                  fset fp (doff + l)
                    (fop (av *. fget fp (boff + l)) (fget fp (doff + l))))
                m
      | FU _, FU _ ->
          (* excluded above: both-uniform products stay on the scalar
             channel *)
          assert false)
  | Error ((ce, _) as ve) -> (
      match ce with
      | XF2 _ | XF4 _ ->
          (* vector-valued rhs: keep the generic assign *)
          let cvar : ve = (XF (pv, nofill), []) in
          let sum_ve =
            if sum_left then comp_binop_c st op cvar ve
            else comp_binop_c st op ve cvar
          in
          let store = store_plane st (Bfloat pv) sum_ve in
          fun rt m ->
            inst rt;
            store rt m
      | _ -> (
          let fo, own = fopnd st ve in
          release st own;
          let aoff = match fo with FP (p, _) -> p * cn | FU _ -> 0 in
          match fo with
          | FP _ ->
              fun rt m ->
                inst rt;
                inst rt;
                ignore (feval fo rt m);
                let k = Array.length m in
                flops rt k;
                let n = rt.n in
                let fp = rt.fp in
                if sum_left then
                  if k = n then
                    for l = 0 to n - 1 do
                      fset fp (doff + l)
                        (fop (fget fp (doff + l)) (fget fp (aoff + l)))
                    done
                  else
                    Array.iter
                      (fun l ->
                        fset fp (doff + l)
                          (fop (fget fp (doff + l)) (fget fp (aoff + l))))
                      m
                else if k = n then
                  for l = 0 to n - 1 do
                    fset fp (doff + l)
                      (fop (fget fp (aoff + l)) (fget fp (doff + l)))
                  done
                else
                  Array.iter
                    (fun l ->
                      fset fp (doff + l)
                        (fop (fget fp (aoff + l)) (fget fp (doff + l))))
                    m
          | FU _ ->
              fun rt m ->
                inst rt;
                inst rt;
                let av = feval fo rt m in
                let k = Array.length m in
                flops rt k;
                let n = rt.n in
                let fp = rt.fp in
                if sum_left then
                  if k = n then
                    for l = 0 to n - 1 do
                      fset fp (doff + l) (fop (fget fp (doff + l)) av)
                    done
                  else
                    Array.iter
                      (fun l -> fset fp (doff + l) (fop (fget fp (doff + l)) av))
                      m
                else if k = n then
                  for l = 0 to n - 1 do
                    fset fp (doff + l) (fop av (fget fp (doff + l)))
                  done
                else
                  Array.iter
                    (fun l -> fset fp (doff + l) (fop av (fget fp (doff + l))))
                    m))

and comp_assign st env (lv : Ast.lvalue) (e : Ast.expr) : vstmt =
  match lv with
  | Lvar v -> (
      match Smap.find_opt v env with
      | Some (Bfloat pv)
        when (match e with
             | Ast.Binop ((Ast.Add | Ast.Sub), Ast.Var v', _) when v' = v ->
                 true
             | Ast.Binop (Ast.Add, _, Ast.Var v') when v' = v -> true
             | _ -> false) ->
          comp_acc st env v pv e
      | Some ((Bint _ | Bfloat _ | Bbool _ | Bf2 _ | Bf4 _) as b) ->
          let store = store_plane st b (comp_e st env e) in
          fun rt m ->
            inst rt;
            store rt m
      | Some (Bloop_v p) ->
          let store = store_plane st (Bint p) (comp_e st env e) in
          fun rt m ->
            inst rt;
            store rt m
      | Some (Bloop_u _) -> unsupported "assignment to uniform loop variable"
      | Some _ | None -> unsupported "assignment to non-scalar %s" v)
  | Lfield (Lvar v, fcomp) -> (
      match (comp_e st env e, Smap.find_opt v env, fcomp) with
      | src, Some (Bf2 (x, _)), Ast.FX -> store_component st src x
      | src, Some (Bf2 (_, y)), Ast.FY -> store_component st src y
      | src, Some (Bf4 (x, _, _, _)), Ast.FX -> store_component st src x
      | src, Some (Bf4 (_, y, _, _)), Ast.FY -> store_component st src y
      | src, Some (Bf4 (_, _, z, _)), Ast.FZ -> store_component st src z
      | src, Some (Bf4 (_, _, _, w)), Ast.FW -> store_component st src w
      | _ -> unsupported "bad vector component assignment to %s" v)
  | Lfield _ -> unsupported "unsupported field assignment"
  | Lvec { v_arr; v_width; v_index } -> (
      match Smap.find_opt v_arr env with
      | Some (Bglobal (gslot, _, name)) -> (
          let fidx, owni = iopnd (comp_e st env v_index) in
          let src = comp_e st env e in
          let comps =
            match (fst src, v_width) with
            | XF2 ((x, y), fl), 2 -> ([| x * st.cn; y * st.cn |], fl)
            | XF4 ((x, y, z, w), fl), 4 ->
                ([| x * st.cn; y * st.cn; z * st.cn; w * st.cn |], fl)
            | _ -> unsupported "vector store width mismatch on %s" v_arr
          in
          release st (snd src);
          release st owni;
          let site = fresh_site st in
          let coffs, cfl = comps in
          match fidx with
          | IU fi ->
              fun rt m ->
                inst rt;
                let i0 = fi rt m in
                cfl rt m;
                let g = rt.globals.(gslot) in
                let data = g.Devmem.data in
                let len = Bigarray.Array1.dim data in
                let fp = rt.fp in
                Array.iter
                  (fun l ->
                    let i0 = i0 * v_width in
                    for q = 0 to v_width - 1 do
                      let o = i0 + q in
                      if o < 0 || o >= len then
                        Interp.err
                          "out-of-bounds vector store %s[%d] (size %d)" name o
                          len;
                      fset data o (fget fp (coffs.(q) + l))
                    done)
                  m;
                account_const rt ~is_store:true ~elt_bytes:(4 * v_width) m
                  ~addr:(g.Devmem.base + (i0 * v_width * 4))
          | IP (p, fl) ->
              let po = p * st.cn in
              let stable = stable_plane st po in
              fun rt m ->
                inst rt;
                fl rt m;
                cfl rt m;
                let g = rt.globals.(gslot) in
                let data = g.Devmem.data in
                let len = Bigarray.Array1.dim data in
                let fp = rt.fp and ip = rt.ip in
                Array.iter
                  (fun l ->
                    let i0 = iget ip (po + l) * v_width in
                    for q = 0 to v_width - 1 do
                      let o = i0 + q in
                      if o < 0 || o >= len then
                        Interp.err
                          "out-of-bounds vector store %s[%d] (size %d)" name o
                          len;
                      fset data o (fget fp (coffs.(q) + l))
                    done)
                  m;
                account_plane rt ~is_store:true ~elt_bytes:(4 * v_width)
                  ~stable m ~po ~base:g.Devmem.base ~scale:(4 * v_width) ~site)
      | _ -> unsupported "vector store to non-global array %s" v_arr)
  | Lindex (arr, idxs) -> (
      let src, owns_src = fopnd st (comp_e st env e) in
      let rs = frd st src in
      match Smap.find_opt arr env with
      | Some (Bglobal (gslot, strides, name)) ->
          if List.length idxs <> Array.length strides then
            unsupported "rank mismatch accessing %s" arr;
          let steps, owns_i = comp_offsets st env strides idxs in
          if all_uniform_steps steps then begin
            release st owns_i;
            release st owns_src;
            fun rt m ->
              inst rt;
              let sv = feval src rt m in
              let g = rt.globals.(gslot) in
              let data = g.Devmem.data in
              let len = Bigarray.Array1.dim data in
              let o = eval_usteps steps rt m in
              if o < 0 || o >= len then
                Interp.err "out-of-bounds store %s[%d] (size %d)" name o len;
              Array.iter (fun l -> fset data o (rs rt sv l)) m;
              let addr = g.Devmem.base + (o * 4) in
              account_const rt ~is_store:true ~elt_bytes:4 m ~addr
          end
          else begin
            let xp, tmp = mk_xplan st steps in
            release st owns_i;
            release st owns_src;
            release st tmp;
            let po = xp.xp_po and sc = xp.xp_scale in
            let run = xp.xp_run in
            let site = fresh_site st in
            let stable = stable_site st steps in
            fun rt m ->
              inst rt;
              let sv = feval src rt m in
              let g = rt.globals.(gslot) in
              let data = g.Devmem.data in
              let len = Bigarray.Array1.dim data in
              let u = run rt m in
              let ip = rt.ip in
              if Array.length m = rt.n then
                for l = 0 to rt.n - 1 do
                  let o = (iget ip (po + l) * sc) + u in
                  if o < 0 || o >= len then
                    Interp.err "out-of-bounds store %s[%d] (size %d)" name o
                      len;
                  fset data o (rs rt sv l)
                done
              else
                Array.iter
                  (fun l ->
                    let o = (iget ip (po + l) * sc) + u in
                    if o < 0 || o >= len then
                      Interp.err "out-of-bounds store %s[%d] (size %d)" name o
                        len;
                    fset data o (rs rt sv l))
                  m;
              account_plane rt ~is_store:true ~elt_bytes:4 ~stable m ~po
                ~base:(g.Devmem.base + (4 * u))
                ~scale:(4 * sc) ~site
          end
      | Some (Bshared (sslot, strides, len)) ->
          if List.length idxs <> Array.length strides then
            unsupported "rank mismatch accessing shared %s" arr;
          let steps, owns_i = comp_offsets st env strides idxs in
          let name = arr in
          if all_uniform_steps steps then begin
            release st owns_i;
            release st owns_src;
            fun rt m ->
              inst rt;
              let sv = feval src rt m in
              let data = rt.shareds.(sslot) in
              let o = eval_usteps steps rt m in
              if o < 0 || o >= len then
                Interp.err "out-of-bounds shared store %s[%d] (size %d)" name
                  o len;
              Array.iter (fun l -> fset data o (rs rt sv l)) m;
              account_shared_const rt m ~addr:o
          end
          else begin
            let xp, tmp = mk_xplan st steps in
            release st owns_i;
            release st owns_src;
            release st tmp;
            let po = xp.xp_po and sc = xp.xp_scale in
            let run = xp.xp_run in
            let site = fresh_site st in
            let stable = stable_site st steps in
            fun rt m ->
              inst rt;
              let sv = feval src rt m in
              let data = rt.shareds.(sslot) in
              let u = run rt m in
              let ip = rt.ip in
              if Array.length m = rt.n then
                for l = 0 to rt.n - 1 do
                  let o = (iget ip (po + l) * sc) + u in
                  if o < 0 || o >= len then
                    Interp.err "out-of-bounds shared store %s[%d] (size %d)"
                      name o len;
                  fset data o (rs rt sv l)
                done
              else
                Array.iter
                  (fun l ->
                    let o = (iget ip (po + l) * sc) + u in
                    if o < 0 || o >= len then
                      Interp.err "out-of-bounds shared store %s[%d] (size %d)"
                        name o len;
                    fset data o (rs rt sv l))
                  m;
              account_shared_plane rt ~stable m ~po ~scale:sc ~u ~site
          end
      | Some _ | None -> unsupported "%s is not an array" arr)

and store_component st (src : ve) (dplane : int) : vstmt =
  let fo, own = fopnd st src in
  release st own;
  let r = frd st fo in
  let doff = dplane * st.cn in
  fun rt m ->
    inst rt;
    let v = feval fo rt m in
    let fp = rt.fp in
    Array.iter (fun l -> fset fp (doff + l) (r rt v l)) m

and comp_block st env (b : Ast.block) : vstmt =
  snd (comp_block_env st env b)

and comp_block_env st env (b : Ast.block) : binding Smap.t * vstmt =
  let env', rev_stms =
    List.fold_left
      (fun (env, acc) s ->
        let env', stm = comp_stmt st env s in
        (env', match stm with None -> acc | Some f -> f :: acc))
      (env, []) b
  in
  match List.rev rev_stms with
  | [] -> (env', fun _ _ -> ())
  | [ f ] -> (env', f)
  | fs ->
      let a = Array.of_list fs in
      (env', fun rt m -> Array.iter (fun f -> f rt m) a)

(* --- top-level compilation --- *)

type code = {
  co_nf : int;  (** float planes *)
  co_ni : int;  (** int planes *)
  co_nuregs : int;
  co_nsites : int;
  co_shared_lens : int array;  (** padded length per shared slot *)
  co_globals : (string * int array) array;
      (** per global slot: parameter name and expected padded strides *)
  co_phases : vstmt array;
  co_tid_planes : (Ast.builtin * int) list;
  co_tidx : int array;
  co_tidy : int array;
  co_full_mask : int array;
  co_n : int;
  co_warps : float;
  co_launch : Ast.launch;
  co_pool : vrt list ref;
      (** retired block states, reused across runs to skip plane
          allocation (see {!retire}); guarded by [co_pool_mu] *)
  co_pool_mu : Mutex.t;
}

let compile_uncached (k : Ast.kernel) (launch : Ast.launch) : code =
  let n = launch.block_x * launch.block_y in
  let st =
    {
      nf = 0;
      ni = 0;
      free_f = [];
      free_i = [];
      nuregs = 0;
      nsites = 0;
      shared_specs = [];
      global_params = [];
      tid_planes = [];
      cn = n;
      claunch = launch;
    }
  in
  let layouts = Layout.of_kernel k in
  let env =
    List.fold_left
      (fun env (p : Ast.param) ->
        match p.p_ty with
        | Array { space = Global; _ } ->
            let lay =
              match List.assoc_opt p.p_name layouts with
              | Some l -> l
              | None -> unsupported "no layout for %s" p.p_name
            in
            let strides = Array.of_list (Layout.strides lay) in
            let slot = List.length st.global_params in
            st.global_params <- st.global_params @ [ (p.p_name, strides) ];
            Smap.add p.p_name (Bglobal (slot, strides, p.p_name)) env
        | Scalar Int -> (
            match List.assoc_opt p.p_name k.k_sizes with
            | Some v -> Smap.add p.p_name (Bconst v) env
            | None ->
                unsupported "int parameter %s has no #pragma gpcc dim binding"
                  p.p_name)
        | Scalar _ ->
            unsupported "unsupported scalar parameter type for %s" p.p_name
        | Array _ -> unsupported "non-global array parameter %s" p.p_name)
      Smap.empty k.k_params
  in
  let phases =
    let rec go env acc = function
      | [] -> List.rev acc
      | phase :: rest ->
          let env', stm = comp_block_env st env phase in
          go env' (stm :: acc) rest
    in
    Array.of_list (go env [] (Compile.phases_of_body k.k_body))
  in
  let shared_lens =
    let a = Array.make (List.length st.shared_specs) 0 in
    List.iter (fun (_, _, len, slot) -> a.(slot) <- len) st.shared_specs;
    a
  in
  {
    co_nf = st.nf;
    co_ni = st.ni;
    co_nuregs = st.nuregs;
    co_nsites = st.nsites;
    co_shared_lens = shared_lens;
    co_globals = Array.of_list st.global_params;
    co_phases = phases;
    co_tid_planes = st.tid_planes;
    co_tidx = Array.init n (fun l -> l mod launch.block_x);
    co_tidy = Array.init n (fun l -> l / launch.block_x);
    co_full_mask = Array.init n Fun.id;
    co_n = n;
    co_warps = float_of_int ((n + 31) / 32);
    co_launch = launch;
    co_pool = ref [];
    co_pool_mu = Mutex.create ();
  }

(* --- memoization: one plan per (kernel, launch) pair --- *)

let memo : (string, (code, string) result) Hashtbl.t = Hashtbl.create 32
let memo_mutex = Mutex.create ()
let memo_max = 128

(* The digest key walks and pretty-prints the whole kernel — measurable
   per-run overhead for small grids, where one [Launch.run] is tens of
   microseconds. One identity-keyed entry in front of it serves the
   common run-same-kernel-again case without hashing anything. *)
let last : (Ast.kernel * Ast.launch * (code, string) result) option ref =
  ref None

(** Compile a kernel for a launch, memoized by the analysis-cache digest
    of both (plus a physical-identity fast path for the last pair).
    Returns [Error reason] when the kernel uses a shape this backend
    does not support (the caller falls back). *)
let compile (k : Ast.kernel) (launch : Ast.launch) : (code, string) result =
  Mutex.lock memo_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock memo_mutex)
    (fun () ->
      match !last with
      | Some (k', launch', r) when k' == k && launch' = launch -> r
      | _ ->
          let key = "vec:" ^ Analysis_cache.key k launch in
          let r =
            match Hashtbl.find_opt memo key with
            | Some r -> r
            | None ->
                let r =
                  try Ok (compile_uncached k launch) with
                  | Unsupported msg -> Error msg
                  | e -> Error (Printexc.to_string e)
                in
                if Hashtbl.length memo >= memo_max then Hashtbl.reset memo;
                Hashtbl.add memo key r;
                r
          in
          last := Some (k, launch, r);
          r)

(* --- per-run preparation and per-block state --- *)

type prepared = { p_code : code; p_globals : Devmem.arr array }

let prepare (code : code) (mem : Devmem.t) : prepared =
  let globals =
    Array.map
      (fun (name, strides) ->
        match Devmem.find mem name with
        | None -> unsupported "array %s not allocated" name
        | Some arr ->
            if arr.Devmem.strides <> strides then
              unsupported "layout mismatch for %s" name;
            arr)
      code.co_globals
  in
  { p_code = code; p_globals = globals }

(* shared, never-mutated placeholders: vector code neither reads nor
   writes the reference environment or the race-check shadow state *)
let dummy_env : (string, Interp.entry) Hashtbl.t = Hashtbl.create 1
let dummy_shadow : (string, Interp.shadow) Hashtbl.t = Hashtbl.create 1

let init_tid_planes (code : code) (rt : vrt) ~(bidx : int) ~(bidy : int) :
    unit =
  let n = code.co_n in
  List.iter
    (fun (b, pl) ->
      let o = pl * n in
      let bx = code.co_launch.block_x in
      match b with
      | Ast.Tidx ->
          for l = 0 to n - 1 do
            rt.ip.(o + l) <- l mod bx
          done
      | Ast.Tidy ->
          for l = 0 to n - 1 do
            rt.ip.(o + l) <- l / bx
          done
      | Ast.Idx ->
          for l = 0 to n - 1 do
            rt.ip.(o + l) <- (bidx * bx) + (l mod bx)
          done
      | Ast.Idy ->
          for l = 0 to n - 1 do
            rt.ip.(o + l) <- (bidy * code.co_launch.block_y) + (l / bx)
          done
      | _ -> assert false)
    code.co_tid_planes

let fresh_block (p : prepared) (cfg : Config.t) (stats : Stats.t)
    ~(record_tx : bool) ~(bidx : int) ~(bidy : int) : vrt =
  let code = p.p_code in
  let n = code.co_n in
  let c : Interp.bctx =
    {
      cfg;
      stats;
      launch = code.co_launch;
      n;
      warps = code.co_warps;
      tidx = code.co_tidx;
      tidy = code.co_tidy;
      bidx;
      bidy;
      env = dummy_env;
      record_tx;
      txparts = [];
      check = false;
      epoch = 1;
      shadow = dummy_shadow;
    }
  in
  let rt =
    {
      c;
      n;
      fp = Devmem.falloc (max 1 (code.co_nf * n));
      ip = Array.make (max 1 (code.co_ni * n)) 0;
      shareds = Array.map Devmem.falloc code.co_shared_lens;
      globals = p.p_globals;
      uregs = Array.make (max 1 code.co_nuregs) 0;
      hw_addrs = Array.make 16 0;
      pl_addrs = Array.make n 0;
      site_a0 = Array.make (max 1 code.co_nsites) min_int;
      site_rel0 = Array.make (max 1 code.co_nsites) 0;
      site_d = Array.make (max 1 code.co_nsites) min_int;
      site_dd = Array.make (max 1 code.co_nsites) 0;
      site_dig = Array.make (max 1 code.co_nsites) Coalescer.empty_digest;
      site_sh_d = Array.make (max 1 code.co_nsites) min_int;
      site_sh_extra = Array.make (max 1 code.co_nsites) 0;
      sh_counts = Array.make (max 1 cfg.Config.shared_banks) 0;
      tx_buf = Array.make 32 0;
      seg_s = Array.make 16 0;
      seg_lo = Array.make 16 0;
      seg_hi = Array.make 16 0;
      site_hits = 0;
      cf_credits = 0;
    }
  in
  init_tid_planes code rt ~bidx ~bidy;
  rt

(** Re-initialize an existing block state for a new block of the {e same}
    prepared code, reusing every plane and scratch array. Shared arrays
    are re-zeroed (fresh per block in the reference) and tid planes are
    refilled; float/int planes carry stale lanes, which is sound because
    every declared scalar re-zeroes its planes at its [Decl] and every
    temporary is written before it is read. The per-site stride caches
    carry over — they are keyed by access pattern, not block id. *)
let remake_block (p : prepared) (cfg : Config.t) (stats : Stats.t)
    ~(record_tx : bool) ~(bidx : int) ~(bidy : int) (old : vrt) : vrt =
  let code = p.p_code in
  let n = code.co_n in
  let c : Interp.bctx =
    {
      cfg;
      stats;
      launch = code.co_launch;
      n;
      warps = code.co_warps;
      tidx = code.co_tidx;
      tidy = code.co_tidy;
      bidx;
      bidy;
      env = dummy_env;
      record_tx;
      txparts = [];
      check = false;
      epoch = 1;
      shadow = dummy_shadow;
    }
  in
  Array.iter (fun sh -> Bigarray.Array1.fill sh 0.0) old.shareds;
  Array.fill old.uregs 0 (Array.length old.uregs) 0;
  let rt = { old with c; globals = p.p_globals; site_hits = 0; cf_credits = 0 } in
  init_tid_planes code rt ~bidx ~bidy;
  rt

let pool_cap = 128

(** Return a finished block's state to its code's reuse pool so the next
    {!make_block} for the same code skips the plane allocations. Callers
    must be done with the block: its transaction stream has been read and
    device memory will not be checked against it again. *)
let retire (p : prepared) (rt : vrt) : unit =
  let code = p.p_code in
  Mutex.lock code.co_pool_mu;
  if List.length !(code.co_pool) < pool_cap then
    code.co_pool := rt :: !(code.co_pool);
  Mutex.unlock code.co_pool_mu

let make_block (p : prepared) (cfg : Config.t) (stats : Stats.t)
    ~(record_tx : bool) ~(bidx : int) ~(bidy : int) : vrt =
  let code = p.p_code in
  let reused =
    Mutex.lock code.co_pool_mu;
    let r =
      match !(code.co_pool) with
      | rt :: rest
        when Array.length rt.sh_counts = max 1 cfg.Config.shared_banks ->
          code.co_pool := rest;
          Some rt
      | _ -> None
    in
    Mutex.unlock code.co_pool_mu;
    r
  in
  match reused with
  | Some old ->
      (* the per-site digest caches are only valid under the coalescing
         rules and bank count they were filled with *)
      if old.c.Interp.cfg != cfg && old.c.Interp.cfg <> cfg then begin
        Array.fill old.site_a0 0 (Array.length old.site_a0) min_int;
        Array.fill old.site_d 0 (Array.length old.site_d) min_int;
        Array.fill old.site_sh_d 0 (Array.length old.site_sh_d) min_int
      end;
      remake_block p cfg stats ~record_tx ~bidx ~bidy old
  | None -> fresh_block p cfg stats ~record_tx ~bidx ~bidy

let nphases (code : code) = Array.length code.co_phases

(** Execute one phase of the kernel over one block, like
    {!Interp.run_block} on the corresponding phase body. *)
let run_phase (p : prepared) (rt : vrt) (i : int) : unit =
  rt.c.Interp.epoch <- rt.c.Interp.epoch + 1;
  p.p_code.co_phases.(i) rt p.p_code.co_full_mask;
  if rt.site_hits > 0 then begin
    Coalescer.bump_plane_hits rt.site_hits;
    rt.site_hits <- 0
  end;
  if rt.cf_credits > 0 then begin
    ignore (Atomic.fetch_and_add closed_form rt.cf_credits);
    rt.cf_credits <- 0
  end

(* --- fallback accounting (for tests and the bench harness) --- *)

let fallbacks = Atomic.make 0
let note_fallback () = Atomic.incr fallbacks
let fallback_count () = Atomic.get fallbacks

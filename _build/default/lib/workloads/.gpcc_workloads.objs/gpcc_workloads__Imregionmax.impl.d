lib/workloads/imregionmax.ml: Array Float Printf Workload

(** Persistent exploration-score cache: a thin typed view over
    {!Gpcc_util.Store} (the ["score"] kind) with an in-memory memo tier
    in front. See the mli. *)

module Store = Gpcc_util.Store

(* %h round-trips every finite float losslessly *)
let score_kind : float Store.kind =
  Store.make_kind ~name:"score" ~version:"1"
    ~encode:(fun s -> Printf.sprintf "%h" s)
    ~decode:(fun payload -> float_of_string_opt (String.trim payload))

type t = {
  store : Store.t;
  memo : (string, float) Hashtbl.t;
  mutex : Mutex.t;
  mutable hit_count : int;
  mutable miss_count : int;
}

let default_dir () = Store.default_root ()

let open_dir ?dir () : t =
  {
    store = Store.open_root ?root:dir ();
    memo = Hashtbl.create 64;
    mutex = Mutex.create ();
    hit_count = 0;
    miss_count = 0;
  }

let dir (c : t) = Store.root c.store

let locked (c : t) (f : unit -> 'a) : 'a =
  Mutex.lock c.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.mutex) f

let find (c : t) (key : string) : float option =
  locked c (fun () ->
      let result =
        match Hashtbl.find_opt c.memo key with
        | Some _ as s -> s
        | None -> (
            match Store.find c.store score_kind ~key with
            | Some s ->
                Hashtbl.replace c.memo key s;
                Some s
            | None -> None)
      in
      (match result with
      | Some _ -> c.hit_count <- c.hit_count + 1
      | None -> c.miss_count <- c.miss_count + 1);
      result)

let store (c : t) (key : string) (score : float) : unit =
  locked c (fun () -> Hashtbl.replace c.memo key score);
  Store.store c.store score_kind ~key score

let hits (c : t) : int = locked c (fun () -> c.hit_count)
let misses (c : t) : int = locked c (fun () -> c.miss_count)
let entries (c : t) : int = Store.entries ~kind:"score" c.store
let gc (c : t) : Store.gc_stats = Store.gc c.store

let clear (c : t) : unit =
  locked c (fun () -> Hashtbl.reset c.memo);
  Store.clear ~kind:"score" c.store

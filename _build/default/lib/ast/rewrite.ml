(** Generic AST traversal and rewriting utilities used by all passes. *)

open Ast

(** Bottom-up expression rewriting. [f] sees each node after its children
    were rewritten; returning [None] keeps the node. *)
let rec map_expr (f : expr -> expr option) (e : expr) : expr =
  let e' =
    match e with
    | Int_lit _ | Float_lit _ | Var _ | Builtin _ -> e
    | Unop (op, a) -> Unop (op, map_expr f a)
    | Binop (op, a, b) -> Binop (op, map_expr f a, map_expr f b)
    | Index (a, es) -> Index (a, List.map (map_expr f) es)
    | Vload v -> Vload { v with v_index = map_expr f v.v_index }
    | Field (a, fl) -> Field (map_expr f a, fl)
    | Call (name, args) -> Call (name, List.map (map_expr f) args)
    | Select (c, a, b) -> Select (map_expr f c, map_expr f a, map_expr f b)
  in
  match f e' with Some e'' -> e'' | None -> e'

let map_lvalue (f : expr -> expr option) (lv : lvalue) : lvalue =
  let rec go = function
    | Lvar v -> Lvar v
    | Lindex (a, es) -> Lindex (a, List.map (map_expr f) es)
    | Lfield (lv, fl) -> Lfield (go lv, fl)
    | Lvec vl -> Lvec { vl with v_index = map_expr f vl.v_index }
  in
  go lv

(** Rewrite every expression in a block (declarations' initializers, loop
    bounds, conditions, l-value indices, right-hand sides). *)
let rec map_block_exprs (f : expr -> expr option) (b : block) : block =
  List.map (map_stmt_exprs f) b

and map_stmt_exprs f = function
  | Decl d -> Decl { d with d_init = Option.map (map_expr f) d.d_init }
  | Assign (lv, e) -> Assign (map_lvalue f lv, map_expr f e)
  | If (c, t, e) -> If (map_expr f c, map_block_exprs f t, map_block_exprs f e)
  | For l ->
      For
        {
          l with
          l_init = map_expr f l.l_init;
          l_limit = map_expr f l.l_limit;
          l_step = map_expr f l.l_step;
          l_body = map_block_exprs f l.l_body;
        }
  | (Sync | Global_sync | Comment _) as s -> s

(** Structural statement rewriting: [f] maps each statement to a list of
    replacement statements, applied bottom-up (children first). *)
let rec map_stmts (f : stmt -> stmt list) (b : block) : block =
  List.concat_map
    (fun s ->
      let s' =
        match s with
        | If (c, t, e) -> If (c, map_stmts f t, map_stmts f e)
        | For l -> For { l with l_body = map_stmts f l.l_body }
        | s -> s
      in
      f s')
    b

(** Substitute free occurrences of variable [v]. Shadowing by an inner
    declaration or loop variable of the same name stops the substitution. *)
let subst_var (v : string) (replacement : expr) (b : block) : block =
  let rec go_block b =
    let shadowed = ref false in
    List.map
      (fun s -> if !shadowed then s else go_stmt (ref shadowed) s)
      b
  and go_stmt shadowed s =
    match s with
    | Decl d ->
        let d' = { d with d_init = Option.map go_expr d.d_init } in
        if String.equal d.d_name v then !shadowed := true;
        Decl d'
    | Assign (lv, e) -> Assign (go_lvalue lv, go_expr e)
    | If (c, t, e) -> If (go_expr c, go_block t, go_block e)
    | For l ->
        let l_init = go_expr l.l_init in
        if String.equal l.l_var v then
          For { l with l_init }
        else
          For
            {
              l with
              l_init;
              l_limit = go_expr l.l_limit;
              l_step = go_expr l.l_step;
              l_body = go_block l.l_body;
            }
    | (Sync | Global_sync | Comment _) as s -> s
  and go_expr e =
    map_expr
      (function Var v' when String.equal v v' -> Some replacement | _ -> None)
      e
  and go_lvalue lv =
    match lv with
    | Lvar _ -> lv
    | Lindex (a, es) -> Lindex (a, List.map go_expr es)
    | Lfield (inner, fl) -> Lfield (go_lvalue inner, fl)
    | Lvec vl -> Lvec { vl with v_index = go_expr vl.v_index }
  in
  go_block b

(** Substitute a thread-position builtin everywhere (builtins cannot be
    shadowed). *)
let subst_builtin (bn : builtin) (replacement : expr) (b : block) : block =
  map_block_exprs
    (function Builtin b' when equal_builtin bn b' -> Some replacement | _ -> None)
    b

let subst_builtin_expr (bn : builtin) (replacement : expr) (e : expr) : expr =
  map_expr
    (function Builtin b' when equal_builtin bn b' -> Some replacement | _ -> None)
    e

(** Rename declared variable [old] to [fresh] (declaration and uses). *)
let rename_var (old : string) (fresh : string) (b : block) : block =
  let b =
    map_stmts
      (function
        | Decl d when String.equal d.d_name old ->
            [ Decl { d with d_name = fresh } ]
        | Assign (Lvar v, e) when String.equal v old ->
            [ Assign (Lvar fresh, e) ]
        | Assign (Lindex (a, es), e) when String.equal a old ->
            [ Assign (Lindex (fresh, es), e) ]
        | Assign (Lfield (Lvar v, fl), e) when String.equal v old ->
            [ Assign (Lfield (Lvar fresh, fl), e) ]
        | Assign (Lvec vl, e) when String.equal vl.v_arr old ->
            [ Assign (Lvec { vl with v_arr = fresh }, e) ]
        | s -> [ s ])
      b
  in
  map_block_exprs
    (function
      | Var v when String.equal v old -> Some (Var fresh)
      | Index (a, es) when String.equal a old -> Some (Index (fresh, es))
      | _ -> None)
    b

(* --- queries --- *)

let rec exists_expr (p : expr -> bool) (e : expr) : bool =
  p e
  ||
  match e with
  | Int_lit _ | Float_lit _ | Var _ | Builtin _ -> false
  | Unop (_, a) | Field (a, _) -> exists_expr p a
  | Binop (_, a, b) -> exists_expr p a || exists_expr p b
  | Index (_, es) | Call (_, es) -> List.exists (exists_expr p) es
  | Vload v -> exists_expr p v.v_index
  | Select (c, a, b) ->
      exists_expr p c || exists_expr p a || exists_expr p b

let rec fold_exprs_block : 'a. ('a -> expr -> 'a) -> 'a -> block -> 'a =
 fun f acc b -> List.fold_left (fold_exprs_stmt f) acc b

and fold_exprs_stmt : 'a. ('a -> expr -> 'a) -> 'a -> stmt -> 'a =
 fun f acc s ->
  match s with
  | Decl { d_init = Some e; _ } -> f acc e
  | Decl { d_init = None; _ } | Sync | Global_sync | Comment _ -> acc
  | Assign (lv, e) ->
      let acc = fold_exprs_lvalue f acc lv in
      f acc e
  | If (c, t, e) ->
      let acc = f acc c in
      let acc = fold_exprs_block f acc t in
      fold_exprs_block f acc e
  | For l ->
      let acc = f acc l.l_init in
      let acc = f acc l.l_limit in
      let acc = f acc l.l_step in
      fold_exprs_block f acc l.l_body

and fold_exprs_lvalue : 'a. ('a -> expr -> 'a) -> 'a -> lvalue -> 'a =
 fun f acc -> function
  | Lvar _ -> acc
  | Lindex (_, es) -> List.fold_left f acc es
  | Lfield (lv, _) -> fold_exprs_lvalue f acc lv
  | Lvec vl -> f acc vl.v_index

(** Does the block mention a given builtin anywhere? *)
let block_uses_builtin (bn : builtin) (b : block) : bool =
  fold_exprs_block
    (fun acc e ->
      acc
      || exists_expr
           (function Builtin b' -> equal_builtin bn b' | _ -> false)
           e)
    false b

let expr_uses_builtin (bn : builtin) (e : expr) : bool =
  exists_expr (function Builtin b' -> equal_builtin bn b' | _ -> false) e

let expr_uses_var (v : string) (e : expr) : bool =
  exists_expr (function Var v' -> String.equal v v' | _ -> false) e

(** All array accesses (name, indices, [is_store]) in a block, outermost
    statement order, including those inside loops and branches. *)
let collect_accesses (b : block) : (string * expr list * bool) list =
  let acc = ref [] in
  let rec on_expr e =
    (match e with
    | Index (a, es) -> acc := (a, es, false) :: !acc
    | _ -> ());
    match e with
    | Int_lit _ | Float_lit _ | Var _ | Builtin _ -> ()
    | Unop (_, a) | Field (a, _) -> on_expr a
    | Binop (_, a, b) ->
        on_expr a;
        on_expr b
    | Index (_, es) | Call (_, es) -> List.iter on_expr es
    | Vload v -> on_expr v.v_index
    | Select (c, a, b) ->
        on_expr c;
        on_expr a;
        on_expr b
  in
  let on_lvalue = function
    | Lvar _ -> ()
    | Lindex (a, es) ->
        acc := (a, es, true) :: !acc;
        List.iter on_expr es
    | Lfield (Lindex (a, es), _) ->
        acc := (a, es, true) :: !acc;
        List.iter on_expr es
    | Lvec vl ->
        acc := (vl.v_arr, [ vl.v_index ], true) :: !acc;
        on_expr vl.v_index
    | Lfield _ -> ()
  in
  let rec on_block b = List.iter on_stmt b
  and on_stmt = function
    | Decl { d_init = Some e; _ } -> on_expr e
    | Decl _ | Sync | Global_sync | Comment _ -> ()
    | Assign (lv, e) ->
        on_lvalue lv;
        on_expr e
    | If (c, t, e) ->
        on_expr c;
        on_block t;
        on_block e
    | For l ->
        on_expr l.l_init;
        on_expr l.l_limit;
        on_expr l.l_step;
        on_block l.l_body
  in
  on_block b;
  List.rev !acc

(** Names declared anywhere in the block, with their types. *)
let rec declared_vars (b : block) : (string * ty) list =
  List.concat_map
    (function
      | Decl d -> [ (d.d_name, d.d_ty) ]
      | If (_, t, e) -> declared_vars t @ declared_vars e
      | For l -> (l.l_var, Scalar Int) :: declared_vars l.l_body
      | Assign _ | Sync | Global_sync | Comment _ -> [])
    b

(** A fresh name based on [base] avoiding every name in [used]. *)
let fresh_name used base =
  if not (List.mem base used) then base
  else
    let rec go i =
      let cand = Printf.sprintf "%s_%d" base i in
      if List.mem cand used then go (i + 1) else cand
    in
    go 0

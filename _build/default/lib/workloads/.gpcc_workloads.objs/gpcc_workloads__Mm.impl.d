lib/workloads/mm.ml: Array Printf Workload

lib/sim/launch.pp.mli: Config Devmem Gpcc_ast Stats Timing

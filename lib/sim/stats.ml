(** Execution statistics gathered by the interpreter.

    Counters are floats so that scaled (sampled-block) statistics do not
    overflow and average cleanly. *)

type t = {
  mutable warp_insts : float;  (** dynamic instructions, per warp *)
  mutable flops : float;  (** per-lane floating-point operations *)
  mutable gld_tx : float;  (** global load transactions *)
  mutable gst_tx : float;
  mutable gld_bytes : float;
  mutable gst_bytes : float;
  mutable cost_bytes : float;
      (** bytes derated by the width-dependent sustained-bandwidth
          efficiency: what the memory system effectively charges *)
  mutable gld_requests : float;  (** half-warp load requests *)
  mutable gst_requests : float;
  mutable shared_ops : float;  (** shared accesses after conflict serialization *)
  mutable bank_extra : float;  (** extra cycles from bank conflicts *)
  mutable syncs : float;
  mutable divergent_branches : float;
  mutable loads_in_flight : float;
      (** distinct global-load sites in the innermost loops; proxy for
          memory-level parallelism *)
}

let create () =
  {
    warp_insts = 0.;
    flops = 0.;
    gld_tx = 0.;
    gst_tx = 0.;
    gld_bytes = 0.;
    gst_bytes = 0.;
    cost_bytes = 0.;
    gld_requests = 0.;
    gst_requests = 0.;
    shared_ops = 0.;
    bank_extra = 0.;
    syncs = 0.;
    divergent_branches = 0.;
    loads_in_flight = 1.;
  }

let global_bytes t = t.gld_bytes +. t.gst_bytes
let global_tx t = t.gld_tx +. t.gst_tx

let scale k t =
  {
    warp_insts = t.warp_insts *. k;
    flops = t.flops *. k;
    gld_tx = t.gld_tx *. k;
    gst_tx = t.gst_tx *. k;
    gld_bytes = t.gld_bytes *. k;
    gst_bytes = t.gst_bytes *. k;
    cost_bytes = t.cost_bytes *. k;
    gld_requests = t.gld_requests *. k;
    gst_requests = t.gst_requests *. k;
    shared_ops = t.shared_ops *. k;
    bank_extra = t.bank_extra *. k;
    syncs = t.syncs *. k;
    divergent_branches = t.divergent_branches *. k;
    loads_in_flight = t.loads_in_flight;
  }

let add into t =
  into.warp_insts <- into.warp_insts +. t.warp_insts;
  into.flops <- into.flops +. t.flops;
  into.gld_tx <- into.gld_tx +. t.gld_tx;
  into.gst_tx <- into.gst_tx +. t.gst_tx;
  into.gld_bytes <- into.gld_bytes +. t.gld_bytes;
  into.gst_bytes <- into.gst_bytes +. t.gst_bytes;
  into.cost_bytes <- into.cost_bytes +. t.cost_bytes;
  into.gld_requests <- into.gld_requests +. t.gld_requests;
  into.gst_requests <- into.gst_requests +. t.gst_requests;
  into.shared_ops <- into.shared_ops +. t.shared_ops;
  into.bank_extra <- into.bank_extra +. t.bank_extra;
  into.syncs <- into.syncs +. t.syncs;
  into.divergent_branches <- into.divergent_branches +. t.divergent_branches;
  into.loads_in_flight <- Float.max into.loads_in_flight t.loads_in_flight

(* the canonical field enumeration: differential tests compare backends
   field by field, and bench tooling prints from the same list so a new
   counter cannot be added to [t] without showing up everywhere *)
let fields t =
  [
    ("warp_insts", t.warp_insts);
    ("flops", t.flops);
    ("gld_tx", t.gld_tx);
    ("gst_tx", t.gst_tx);
    ("gld_bytes", t.gld_bytes);
    ("gst_bytes", t.gst_bytes);
    ("cost_bytes", t.cost_bytes);
    ("gld_requests", t.gld_requests);
    ("gst_requests", t.gst_requests);
    ("shared_ops", t.shared_ops);
    ("bank_extra", t.bank_extra);
    ("syncs", t.syncs);
    ("divergent_branches", t.divergent_branches);
    ("loads_in_flight", t.loads_in_flight);
  ]

let to_string t =
  Printf.sprintf
    "insts=%.0f flops=%.0f gld(tx=%.0f B=%.0f) gst(tx=%.0f B=%.0f) shared=%.0f+%.0f syncs=%.0f div=%.0f"
    t.warp_insts t.flops t.gld_tx t.gld_bytes t.gst_tx t.gst_bytes t.shared_ops
    t.bank_extra t.syncs t.divergent_branches

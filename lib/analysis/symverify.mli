(** Launch-parametric symbolic verifier.

    Verifies race-freedom, array bounds, and barrier uniformity for a
    kernel {e once}, producing a verdict parametric in the launch
    configuration instead of one verdict per [(kernel, launch)] pair.
    The abstraction tracks two symbolic threads [s <> t] of the same
    block with symbolic block dims [(bx, by)]; races are refuted by
    affine disequality over the thread-index difference, bounds by
    interval/guard reasoning, and barrier uniformity by the same
    thread-dependence test the concrete verifier uses.

    Soundness contract (directional): whenever {!decide} answers
    [`Clean] for a launch, the concrete {!Verify.check} reports no
    error-severity diagnostic for that launch. Anything the symbolic
    tier cannot prove degrades to [`Unknown], and callers fall back to
    the concrete verifier — precision can regress, soundness cannot.
    Certain violations (guard-free races, divergent barriers) are
    additionally reported as {!type:violation}s so explore-style
    callers can exclude entire launch families without compiling
    them. *)

(** Conjunctions of linear inequalities over the launch dimensions. *)
module Constraint : sig
  type dim = Bx | By | Gx | Gy

  (** A monomial is a sorted product of launch dimensions; [[]] is 1. *)
  type mono = dim list

  type atom = { a_mono : mono; a_cmp : [ `Le | `Ge ]; a_k : int }

  (** A conjunction of atoms. [[]] is the trivial constraint. *)
  type t = atom list

  val tt : t
  val holds : Gpcc_ast.Ast.launch -> t -> bool

  (** Keep only the strongest atom per (monomial, direction). *)
  val normalize : t -> t

  val conj : t -> t -> t

  (** [holds_at_threads ~threads c] decides [c] when every atom is
      over the [bx*by] monomial, substituting [threads]; [false] when
      any atom mentions another monomial. *)
  val holds_at_threads : threads:int -> t -> bool

  val to_string : t -> string
end

type violation = {
  v_when : Constraint.t;  (** fires at launches satisfying this *)
  v_rule : string;  (** a {!Verify} rule id, e.g. [race-shared] *)
  v_path : string;
  v_message : string;
}

type verdict =
  | Proved  (** clean at every launch configuration *)
  | Proved_when of Constraint.t  (** clean where the constraint holds *)
  | Unknown of string  (** could not prove; fall back to {!Verify.check} *)

type result = {
  res_kernel : string;
  verdict : verdict;
  violations : violation list;
}

(** Analyse a kernel once, for all launches. Never raises: internal
    failures collapse to [Unknown]. *)
val check : Gpcc_ast.Ast.kernel -> result

(** Decide a concrete launch against a parametric result. [`Errors]
    carries error-severity diagnostics for violations that provably
    fire at this launch; [`Unknown] means the caller must run the
    concrete verifier. *)
val decide :
  result ->
  Gpcc_ast.Ast.launch ->
  [ `Clean | `Errors of Verify.diagnostic list | `Unknown of string ]

(** [excludes_threads r ~threads] returns the rule id of a violation
    that provably fires at every launch with [block_x * block_y =
    threads], if any — usable to prune explore candidates before
    compilation. *)
val excludes_threads : result -> threads:int -> string option

val verdict_to_string : verdict -> string

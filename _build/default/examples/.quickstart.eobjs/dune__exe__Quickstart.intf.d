examples/quickstart.mli:

(** Tests for the paper's Section 3.2/3.4 analyses: index classification,
    coalescing verdicts on the paper's own examples, layouts, sharing
    analysis, and register estimation. *)

open Gpcc_ast
open Gpcc_analysis
open Util

let launch = { Ast.grid_x = 8; grid_y = 8; block_x = 16; block_y = 1 }

let mk_kernel body_arrays_src = parse_kernel body_arrays_src

(** Verdict of the [nth] global access in a kernel. *)
let access_of src n =
  let k = mk_kernel src in
  List.nth (Coalesce_check.analyze_kernel ~launch k) n

let verdict src n = (access_of src n).Coalesce_check.verdict

let is_coalesced = function Coalesce_check.Coalesced -> true | _ -> false

(* --- the paper's Section 3.2 examples --- *)

let mm_like =
  {|#pragma gpcc dim w 128
#pragma gpcc output c
__kernel void f(float a[128][128], float b[128][128], float c[128][128], int w) {
  float sum = 0;
  for (int i = 0; i < w; i++)
    sum += a[idy][i] * b[i][idx];
  c[idy][idx] = sum;
}|}

let test_paper_a_idy_i () =
  (* "the array access a[idy][i] is not coalesced" — offsets all zero *)
  match verdict mm_like 0 with
  | Coalesce_check.Noncoalesced Coalesce_check.Uniform -> ()
  | v -> Alcotest.failf "a[idy][i]: %s" (Coalesce_check.show_verdict v)

let test_paper_b_i_idx () =
  (* "the array access b[i][idx] is coalesced as long as each row is
     aligned" (the layout pads rows to 16 words) *)
  Alcotest.(check bool) "b[i][idx] coalesced" true (is_coalesced (verdict mm_like 1))

let test_paper_store_coalesced () =
  Alcotest.(check bool) "c[idy][idx] coalesced" true (is_coalesced (verdict mm_like 2))

let test_paper_b_idx_plus_i () =
  (* "for the array access b[idx+i] ... it is not a coalesced access since
     the base address is not always a multiple of 16 words" *)
  let src =
    {|#pragma gpcc dim w 128
#pragma gpcc output c
__kernel void f(float b[256], float c[128], int w) {
  float sum = 0;
  for (int i = 0; i < w; i++)
    sum += b[idx + i];
  c[idx] = sum;
}|}
  in
  match verdict src 0 with
  | Coalesce_check.Noncoalesced (Coalesce_check.Misaligned _) -> ()
  | v -> Alcotest.failf "b[idx+i]: %s" (Coalesce_check.show_verdict v)

let test_paper_higher_dim_idx () =
  (* idx used in a higher dimension: A[idx][0] is not coalesced *)
  let src =
    {|#pragma gpcc output c
__kernel void f(float a[128][128], float c[128]) {
  c[idx] = a[idx][0];
}|}
  in
  (* access 0 is the store's lvalue; the load is access 1 *)
  match verdict src 1 with
  | Coalesce_check.Noncoalesced (Coalesce_check.Strided s) ->
      Alcotest.(check int) "stride is the pitch" 128 s
  | v -> Alcotest.failf "a[idx][0]: %s" (Coalesce_check.show_verdict v)

let test_strided_2 () =
  let src =
    {|#pragma gpcc output c
__kernel void f(float a[256], float c[128]) {
  c[idx] = a[2 * idx];
}|}
  in
  match verdict src 1 with
  | Coalesce_check.Noncoalesced (Coalesce_check.Strided 2) -> ()
  | v -> Alcotest.failf "a[2*idx]: %s" (Coalesce_check.show_verdict v)

let test_unresolved_index () =
  (* indirect access: the compiler "simply skips" such accesses *)
  let src =
    {|#pragma gpcc output c
__kernel void f(float a[128], float b[128], float c[128]) {
  float x = b[idx];
  c[idx] = a[idx * idx];
}|}
  in
  (* accesses: b load, c store, a load *)
  Alcotest.(check bool) "unknown verdict" true
    (verdict src 2 = Coalesce_check.Unknown)

let test_loop_step_alignment () =
  (* i stepping by 16 keeps idx+i aligned: coalesced *)
  let src =
    {|#pragma gpcc dim w 128
#pragma gpcc output c
__kernel void f(float b[256], float c[128], int w) {
  float sum = 0;
  for (int i = 0; i < w; i += 16)
    sum += b[idx + i];
  c[idx] = sum;
}|}
  in
  Alcotest.(check bool) "aligned steps coalesce" true (is_coalesced (verdict src 0))

let test_index_classification () =
  let k = mk_kernel mm_like in
  let ctx = Affine.ctx_of_launch ~sizes:k.k_sizes launch in
  Alcotest.(check bool) "constant" true
    (Coalesce_check.classify_index ctx (expr "5") = Coalesce_check.Constant);
  Alcotest.(check bool) "predefined" true
    (Coalesce_check.classify_index ctx (expr "idy + 3") = Coalesce_check.Predefined);
  Alcotest.(check bool) "unresolved" true
    (Coalesce_check.classify_index ctx (expr "idx * idy") = Coalesce_check.Unresolved)

let test_divergence_tracking () =
  let src =
    {|#pragma gpcc dim w 64
#pragma gpcc output c
__kernel void f(float a[64][64], float c[64][64], int w) {
  float s = 0;
  if (idx == 0) {
    for (int j = 0; j < w; j++)
      s += a[idy][j];
  }
  c[idy][idx] = s;
}|}
  in
  let a = access_of src 0 in
  Alcotest.(check bool) "divergent" true a.Coalesce_check.divergent;
  Alcotest.(check (list string)) "no safe loops" [] a.Coalesce_check.safe_loops

let test_safe_loops () =
  let src =
    {|#pragma gpcc dim w 64
#pragma gpcc output c
__kernel void f(float a[64][64], float c[64][64], int w) {
  float s = 0;
  for (int i = 0; i < w; i++)
    if (i < idy)
      s += a[idy][i];
  c[idy][idx] = s;
}|}
  in
  let a = access_of src 0 in
  Alcotest.(check bool) "divergent at access" true a.Coalesce_check.divergent;
  Alcotest.(check (list string)) "loop itself is safe" [ "i" ]
    a.Coalesce_check.safe_loops

(* --- transaction formation: G80 strict vs GT200 relaxed --- *)

let tx_count rules addrs =
  List.length (Gpcc_sim.Coalescer.global_request rules ~min_tx:32 ~elt_bytes:4 addrs)

let half_warp f = List.init 16 (fun l -> (l, f l))

let test_txs_misaligned_base () =
  (* base off by one element: strict serializes all 16 lanes, relaxed
     touches two 64B segments *)
  let addrs = half_warp (fun l -> (l + 1) * 4) in
  Alcotest.(check int) "G80 misaligned" 16 (tx_count Gpcc_sim.Config.Strict_g80 addrs);
  Alcotest.(check int) "GT200 misaligned" 2
    (tx_count Gpcc_sim.Config.Relaxed_gt200 addrs)

let test_txs_stride_2 () =
  (* stride-2 floats span two segments: strict pays 16 transactions,
     relaxed one per segment *)
  let addrs = half_warp (fun l -> l * 8) in
  Alcotest.(check int) "G80 stride-2" 16 (tx_count Gpcc_sim.Config.Strict_g80 addrs);
  Alcotest.(check int) "GT200 stride-2" 2
    (tx_count Gpcc_sim.Config.Relaxed_gt200 addrs)

let test_txs_unit_stride () =
  let addrs = half_warp (fun l -> 256 + (l * 4)) in
  Alcotest.(check int) "G80 aligned" 1 (tx_count Gpcc_sim.Config.Strict_g80 addrs);
  Alcotest.(check int) "GT200 aligned" 1
    (tx_count Gpcc_sim.Config.Relaxed_gt200 addrs)

let test_shared_padding_banks () =
  (* column access through a [16][p] shared array: word l*p for lane l.
     p=16 lands every lane in bank 0; the paper's p=17 padding spreads
     them across all 16 banks *)
  let column pitch = List.init 16 (fun l -> l * pitch) in
  Alcotest.(check int) "unpadded column serializes" 16
    (Gpcc_sim.Coalescer.shared_request ~banks:16 (column 16));
  Alcotest.(check int) "[16][17] padding conflict-free" 1
    (Gpcc_sim.Coalescer.shared_request ~banks:16 (column 17));
  (* same-address lanes broadcast for free *)
  Alcotest.(check int) "broadcast" 1
    (Gpcc_sim.Coalescer.shared_request ~banks:16 (List.init 16 (fun _ -> 5)))

(* --- layout --- *)

let test_layout_padding () =
  let lay =
    Layout.make "a" { Ast.elt = Float; space = Global; dims = [ 100; 100 ] }
  in
  Alcotest.(check (list int)) "minor padded to 16" [ 100; 112 ] lay.pitches;
  Alcotest.(check (list int)) "strides" [ 112; 1 ] (Layout.strides lay);
  Alcotest.(check int) "size" (100 * 112) (Layout.size_elems lay)

let test_layout_flatten () =
  let lay =
    Layout.make "a" { Ast.elt = Float; space = Global; dims = [ 4; 32 ] }
  in
  let f =
    Layout.flatten lay [ Affine.const 2; Affine.of_var Affine.Tidx ]
  in
  Alcotest.(check int) "flat const" 64 f.Affine.const;
  Alcotest.(check int) "lane coeff" 1 (Affine.coeff Affine.Tidx f)

let test_layout_rank_mismatch () =
  let lay = Layout.make "a" { Ast.elt = Float; space = Global; dims = [ 4; 4 ] } in
  Alcotest.check_raises "rank mismatch"
    (Invalid_argument "Layout.flatten: a has rank 2, got 1 indices") (fun () ->
      ignore (Layout.flatten lay [ Affine.zero ]))

(* --- sharing (Section 3.4) --- *)

let test_sharing_mm () =
  let w = Gpcc_workloads.Registry.find_exn "mm" in
  let k = Gpcc_workloads.Workload.parse w 64 in
  let launch = Option.get (Gpcc_passes.Pass_util.initial_launch k) in
  let o = Gpcc_passes.Coalesce.apply k launch in
  let sharing = Sharing.analyze ~launch:o.launch o.kernel in
  let find a = List.find (fun s -> s.Sharing.arr = a) sharing in
  (* the paper's case study: a is G2S shared along X; b is G2R shared
     along Y *)
  Alcotest.(check bool) "a is G2S" true ((find "a").role = Sharing.G2S);
  Alcotest.(check bool) "a shares along X" true (find "a").share_x;
  Alcotest.(check bool) "b is G2R" true ((find "b").role = Sharing.G2R);
  Alcotest.(check bool) "b shares along Y" true (find "b").share_y;
  Alcotest.(check bool) "b not along X" false (find "b").share_x

let test_sharing_ignores_loop_free_loads () =
  let w = Gpcc_workloads.Registry.find_exn "strsm" in
  let k = Gpcc_workloads.Workload.parse w 64 in
  let launch = Option.get (Gpcc_passes.Pass_util.initial_launch k) in
  let o = Gpcc_passes.Coalesce.apply k launch in
  let sharing = Sharing.analyze ~launch:o.launch o.kernel in
  let b = List.find (fun s -> s.Sharing.arr = "b") sharing in
  (* b has a loop-free load b[idy][idx] that depends on bidy, but the
     repeated b[i+k][idx] load still makes it Y-shared *)
  Alcotest.(check bool) "b shares along Y" true b.share_y

(* --- register estimation --- *)

let test_regcount () =
  let k =
    parse_kernel
      {|#pragma gpcc output o
__kernel void f(float a[64], float o[64]) {
  float x = a[idx];
  float2 v = make_float2(x, x);
  __shared__ float s[32];
  s[tidx] = x;
  __syncthreads();
  o[idx] = v.x + s[tidx];
}|}
  in
  (* base 4 + x 1 + v 2 + params 2 + idx/tidx 2 = 11 *)
  Alcotest.(check int) "registers" 11 (Regcount.estimate k);
  Alcotest.(check int) "shared bytes" 128 (Regcount.shared_bytes k)

let suite =
  let t n f = Alcotest.test_case n `Quick f in
  ( "analysis",
    [
      t "paper: a[idy][i] uniform" test_paper_a_idy_i;
      t "paper: b[i][idx] coalesced" test_paper_b_i_idx;
      t "paper: store coalesced" test_paper_store_coalesced;
      t "paper: b[idx+i] misaligned" test_paper_b_idx_plus_i;
      t "paper: idx in higher dim" test_paper_higher_dim_idx;
      t "strided by 2" test_strided_2;
      t "unresolved index skipped" test_unresolved_index;
      t "aligned loop steps" test_loop_step_alignment;
      t "index classification" test_index_classification;
      t "divergence tracking" test_divergence_tracking;
      t "safe loops under guards" test_safe_loops;
      t "txs: misaligned base" test_txs_misaligned_base;
      t "txs: stride 2" test_txs_stride_2;
      t "txs: unit stride" test_txs_unit_stride;
      t "shared bank padding" test_shared_padding_banks;
      t "layout padding" test_layout_padding;
      t "layout flattening" test_layout_flatten;
      t "layout rank mismatch" test_layout_rank_mismatch;
      t "sharing: mm case study" test_sharing_mm;
      t "sharing: loop-free loads" test_sharing_ignores_loop_free_loads;
      t "register estimation" test_regcount;
    ] )

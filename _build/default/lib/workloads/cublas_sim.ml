(** Hand-tuned comparator kernels standing in for NVIDIA CUBLAS 2.2
    (paper Figure 13) — fixed artifacts written directly in the kernel
    language, never touched by the optimizing compiler.

    Tuning levels mirror the documented state of CUBLAS 2.2 that the paper
    measured against (see DESIGN.md, substitutions):
    - sgemm: Volkov & Demmel's register-blocked kernel (what CUBLAS 2.2
      shipped): 64-wide blocks, A panel in shared memory, B streamed
      through registers, 16 outputs per thread — the paper reports its own
      mm within 2% of this library kernel;
    - sgemv (mv): coalesced 16x16-tile version without thread/block merge
      and without partition-camping elimination — the gap the paper's
      Figure 16 exposes;
    - sgemv-T (tmv): direct column-per-thread kernel (already coalesced);
    - vv: direct element-wise kernel;
    - sasum (rd): strided partials + per-block shared fold;
    - strsm: one-element-per-thread tiled triangular update. *)

open Gpcc_ast

type comparator = {
  c_for : string;  (** workload name this stands in for *)
  c_source : int -> string;
  c_launch : int -> Ast.launch;
}

let mm =
  (* Volkov & Demmel's sgemm, the algorithm inside CUBLAS 2.2 (the paper
     cites exactly this lineage): 64-wide blocks, a 16x16 A-panel staged in
     shared memory, B streamed through registers, 16 outputs per thread. *)
  let sums = List.init 16 (fun q -> Printf.sprintf "s%d" q) in
  let decls =
    String.concat "\n"
      (List.map (fun s -> Printf.sprintf "  float %s = 0;" s) sums)
  in
  let madds =
    String.concat "\n"
      (List.mapi
         (fun q s -> Printf.sprintf "      %s += as[%d][kk] * bv;" s q)
         sums)
  in
  let stores =
    String.concat "\n"
      (List.mapi
         (fun q s -> Printf.sprintf "  c[bidy * 16 + %d][idx] = %s;" q s)
         sums)
  in
  {
    c_for = "mm";
    c_source =
      (fun n ->
        Printf.sprintf
          {|#pragma gpcc dim w %d
#pragma gpcc output c
__kernel void cublas_mm(float a[%d][%d], float b[%d][%d], float c[%d][%d], int w) {
%s
  __shared__ float as[16][17];
  for (int m = 0; m < w; m += 16) {
    if (tidx < 16) {
      for (int l = 0; l < 16; l++)
        as[l][tidx] = a[bidy * 16 + l][m + tidx];
    }
    __syncthreads();
    for (int kk = 0; kk < 16; kk++) {
      float bv = b[m + kk][idx];
%s
    }
    __syncthreads();
  }
%s
}
|}
          n n n n n n n decls madds stores);
    c_launch =
      (fun n ->
        { Ast.grid_x = n / 64; grid_y = n / 16; block_x = 64; block_y = 1 });
  }

let mv =
  {
    c_for = "mv";
    c_source =
      (fun n ->
        Printf.sprintf
          {|#pragma gpcc dim w %d
#pragma gpcc output c
__kernel void cublas_mv(float a[%d][%d], float b[%d], float c[%d], int w) {
  float sum = 0;
  __shared__ float as[16][17];
  __shared__ float bs[16];
  for (int i = 0; i < w; i += 16) {
    bs[tidx] = b[i + tidx];
    for (int l = 0; l < 16; l++)
      as[l][tidx] = a[idx - tidx + l][i + tidx];
    __syncthreads();
    for (int kk = 0; kk < 16; kk++)
      sum += as[tidx][kk] * bs[kk];
    __syncthreads();
  }
  c[idx] = sum;
}
|}
          n n n n n);
    c_launch =
      (fun n -> { Ast.grid_x = n / 16; grid_y = 1; block_x = 16; block_y = 1 });
  }

let tmv =
  {
    c_for = "tmv";
    c_source =
      (fun n ->
        Printf.sprintf
          {|#pragma gpcc dim w %d
#pragma gpcc output c
__kernel void cublas_tmv(float a[%d][%d], float b[%d], float c[%d], int w) {
  float sum = 0;
  for (int i = 0; i < w; i++)
    sum += a[i][idx] * b[i];
  c[idx] = sum;
}
|}
          n n n n n);
    c_launch =
      (fun n ->
        {
          Ast.grid_x = max 1 (n / 128);
          grid_y = 1;
          block_x = min n 128;
          block_y = 1;
        });
  }

let vv =
  {
    c_for = "vv";
    c_source =
      (fun n ->
        Printf.sprintf
          {|#pragma gpcc output c
__kernel void cublas_vv(float a[%d], float b[%d], float c[%d]) {
  c[idx] = a[idx] * b[idx];
}
|}
          n n n);
    c_launch =
      (fun n ->
        {
          Ast.grid_x = max 1 (n / 256);
          grid_y = 1;
          block_x = min n 256;
          block_y = 1;
        });
  }

let rd =
  let blocks = 64 in
  let bwidth = 256 in
  {
    c_for = "rd";
    c_source =
      (fun n ->
        let nt = blocks * bwidth in
        Printf.sprintf
          {|#pragma gpcc dim len %d
#pragma gpcc dim nt %d
#pragma gpcc output out
__kernel void cublas_rd(float a[%d], float partial[%d], float out[16], int len, int nt) {
  __shared__ float s[%d];
  float sum = 0;
  for (int i = idx; i < len; i += nt)
    sum += a[i];
  s[tidx] = sum;
  __syncthreads();
  if (tidx == 0) {
    float t = 0;
    for (int j = 0; j < %d; j++)
      t += s[j];
    partial[bidx] = t;
  }
  __global_sync();
  if (idx == 0) {
    float tt = 0;
    for (int j = 0; j < %d; j++)
      tt += partial[j];
    out[0] = tt;
  }
}
|}
          n nt n blocks bwidth bwidth blocks);
    c_launch =
      (fun _ ->
        { Ast.grid_x = blocks; grid_y = 1; block_x = bwidth; block_y = 1 });
  }

let strsm =
  {
    c_for = "strsm";
    c_source =
      (fun n ->
        Printf.sprintf
          {|#pragma gpcc dim w %d
#pragma gpcc output x
__kernel void cublas_strsm(float l[%d][%d], float b[%d][%d], float x[%d][%d], int w) {
  float sum = 0;
  __shared__ float bs[16][17];
  for (int m = 0; m < w; m += 16) {
    bs[tidy][tidx] = b[m + tidy][idx];
    __syncthreads();
    for (int kk = 0; kk < 16; kk++) {
      if (m + kk < idy) {
        sum += l[idy][m + kk] * bs[kk][tidx];
      }
    }
    __syncthreads();
  }
  x[idy][idx] = b[idy][idx] + sum;
}
|}
          n n n n n n n);
    c_launch =
      (fun n ->
        { Ast.grid_x = n / 16; grid_y = n / 16; block_x = 16; block_y = 16 });
  }

let all = [ mm; mv; tmv; vv; rd; strsm ]

let find name = List.find_opt (fun c -> String.equal c.c_for name) all

(** The reference comparator for rd's CUBLAS launch uses a different
    partial-array shape than the workload's; rd's reference only checks
    [out], so the shared {!Workload.t} machinery still applies. *)
let kernel (c : comparator) (n : int) : Ast.kernel =
  let k = Parser.kernel_of_string (c.c_source n) in
  Typecheck.check k;
  k

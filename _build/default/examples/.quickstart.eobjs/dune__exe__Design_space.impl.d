examples/design_space.ml: Gpcc_core Gpcc_sim Gpcc_workloads List Printf String

(** The content-addressed artifact store: layout, recovery, root
    resolution, eviction, and multi-process safety. *)

module Store = Gpcc_util.Store

let fresh_root () = Filename.temp_dir "gpcc_test_store" ""

(* a fixed-width codec so eviction byte-accounting is predictable *)
let text_kind =
  Store.make_kind ~name:"text" ~version:"1"
    ~encode:(fun s -> s)
    ~decode:(fun s -> Some s)

let float_kind =
  Store.make_kind ~name:"fval" ~version:"1"
    ~encode:(fun f -> Printf.sprintf "%h" f)
    ~decode:(fun s -> float_of_string_opt (String.trim s))

(* every entry file of the store under [root], relative then absolute *)
let entry_files root =
  Sys.readdir root |> Array.to_list |> List.sort compare
  |> List.concat_map (fun shard ->
         let d = Filename.concat root shard in
         if Sys.is_directory d then
           Sys.readdir d |> Array.to_list |> List.sort compare
           |> List.map (fun f ->
                  (Filename.concat shard f, Filename.concat d f))
         else [])

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let backdate path seconds_ago =
  let t = Unix.gettimeofday () -. seconds_ago in
  Unix.utimes path t t

(* --- round trip, sharded layout, typed kinds --- *)

let test_roundtrip_and_layout () =
  let root = fresh_root () in
  let s = Store.open_root ~root () in
  Alcotest.(check (option string)) "empty" None
    (Store.find s text_kind ~key:"k1");
  Store.store s text_kind ~key:"k1" "hello";
  Store.store s float_kind ~key:"k1" 42.5;
  Alcotest.(check (option string))
    "round trip" (Some "hello")
    (Store.find s text_kind ~key:"k1");
  Alcotest.(check bool)
    "kinds are disjoint namespaces" true
    (Store.find s float_kind ~key:"k1" = Some 42.5);
  Alcotest.(check int) "per-handle hits" 2 (Store.hits s);
  Alcotest.(check int) "per-handle misses" 1 (Store.misses s);
  (* layout: <root>/<2 hex>/<30 hex>.<kind> *)
  List.iter
    (fun (rel, _) ->
      let shard = Filename.dirname rel and base = Filename.basename rel in
      Alcotest.(check int) "shard is two chars" 2 (String.length shard);
      let stem = Filename.remove_extension base in
      Alcotest.(check int) "stem is the remaining 30 digits" 30
        (String.length stem);
      Alcotest.(check bool)
        "hex shard + stem" true
        (String.for_all
           (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false)
           (shard ^ stem)))
    (entry_files root);
  Alcotest.(check int) "two entries on disk" 2 (Store.entries s);
  Alcotest.(check int) "one text entry" 1 (Store.entries ~kind:"text" s);
  let d = Store.disk_stats s in
  Alcotest.(check int) "disk_stats entries" 2 d.ds_entries;
  Alcotest.(check int) "disk_stats kinds" 2 (List.length d.ds_kinds);
  (* a fresh handle reads the same bytes back *)
  let s2 = Store.open_root ~root () in
  Alcotest.(check (option string))
    "fresh handle" (Some "hello")
    (Store.find s2 text_kind ~key:"k1");
  Store.clear ~kind:"text" s2;
  Alcotest.(check int) "kind-filtered clear" 0 (Store.entries ~kind:"text" s2);
  Alcotest.(check int) "other kind untouched" 1
    (Store.entries ~kind:"fval" s2);
  Store.clear s2;
  Alcotest.(check int) "full clear" 0 (Store.entries s2)

(* --- corruption is reclaimed; collisions and version skew are not --- *)

let test_corruption_and_versioning () =
  let root = fresh_root () in
  let s = Store.open_root ~root () in
  Store.store s text_kind ~key:"k1" "payload";
  let path =
    match entry_files root with
    | [ (_, p) ] -> p
    | fs -> Alcotest.failf "expected one entry, got %d" (List.length fs)
  in
  let overwrite content =
    let oc = open_out_bin path in
    output_string oc content;
    close_out oc
  in
  let dropped what =
    Alcotest.(check (option string))
      (what ^ " is a miss") None
      (Store.find s text_kind ~key:"k1");
    Alcotest.(check bool) (what ^ " deleted") false (Sys.file_exists path);
    Store.store s text_kind ~key:"k1" "payload"
  in
  overwrite "";
  dropped "empty file";
  overwrite "gpcc-store-v1 text 1 2 7\nk1";
  dropped "truncated payload";
  overwrite "gpcc-store-v1 text 1 2 7\nk1payloadEXTRA";
  dropped "trailing bytes";
  overwrite "gpcc-store-v0 text 1 2 7\nk1payload";
  dropped "wrong format version";
  (* a well-formed entry under the same path but a different key — a
     digest collision — must be preserved and reported as a miss *)
  overwrite "gpcc-store-v1 text 1 2 7\nkXpayload";
  Alcotest.(check (option string))
    "foreign key is a miss" None
    (Store.find s text_kind ~key:"k1");
  Alcotest.(check bool) "foreign entry kept" true (Sys.file_exists path);
  (* a codec version bump addresses different files entirely *)
  let text_v2 =
    Store.make_kind ~name:"text" ~version:"2"
      ~encode:(fun s -> s)
      ~decode:(fun s -> Some s)
  in
  Store.store s text_kind ~key:"k1" "payload";
  Alcotest.(check (option string))
    "old codec version is invisible to the new one" None
    (Store.find s text_v2 ~key:"k1");
  Alcotest.(check (option string))
    "old entries still served to the old codec" (Some "payload")
    (Store.find s text_kind ~key:"k1")

(* --- root resolution --- *)

let test_root_resolution () =
  (* the env override must not leak between cases: empty = unset *)
  let saved = Sys.getenv_opt "GPCC_CACHE_DIR" in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "GPCC_CACHE_DIR" (Option.value saved ~default:""))
    (fun () ->
      Unix.putenv "GPCC_CACHE_DIR" "";
      let top = Filename.temp_dir "gpcc_test_root" "" in
      let nested = Filename.concat (Filename.concat top "a") "b" in
      let rec mkdir_p p =
        if not (Sys.file_exists p) then begin
          mkdir_p (Filename.dirname p);
          Sys.mkdir p 0o755
        end
      in
      mkdir_p nested;
      (* no marker anywhere above: fall back to the cwd itself *)
      Alcotest.(check string)
        "no marker: cwd"
        (Filename.concat nested "_gpcc_cache")
        (Store.resolve_root ~cwd:nested ());
      (* a dune-project at the top wins from any depth *)
      let oc = open_out (Filename.concat top "dune-project") in
      close_out oc;
      Alcotest.(check string)
        "marker: project root"
        (Filename.concat top "_gpcc_cache")
        (Store.resolve_root ~cwd:nested ());
      Alcotest.(check string)
        "marker: from the root itself"
        (Filename.concat top "_gpcc_cache")
        (Store.resolve_root ~cwd:top ());
      (* .git marks a root too, and the nearest marker wins *)
      Sys.mkdir (Filename.concat (Filename.concat top "a") ".git") 0o755;
      Alcotest.(check string)
        "nearest marker wins"
        (Filename.concat (Filename.concat top "a") "_gpcc_cache")
        (Store.resolve_root ~cwd:nested ());
      (* the env override beats everything *)
      Unix.putenv "GPCC_CACHE_DIR" "/somewhere/else";
      Alcotest.(check string)
        "GPCC_CACHE_DIR override" "/somewhere/else"
        (Store.resolve_root ~cwd:nested ());
      Unix.putenv "GPCC_CACHE_DIR" "")

(* --- stale temp files are swept; fresh ones are not --- *)

let test_tmp_sweep () =
  let root = fresh_root () in
  let s = Store.open_root ~root () in
  Store.store s text_kind ~key:"live" "v";
  let make_tmp dir name age =
    let p = Filename.concat dir name in
    let oc = open_out_bin p in
    output_string oc "partial write";
    close_out oc;
    backdate p age;
    p
  in
  (* a stray at the root (legacy layout) and one inside a shard *)
  let shard_dir =
    match entry_files root with
    | (rel, _) :: _ -> Filename.concat root (Filename.dirname rel)
    | [] -> Alcotest.fail "no entry"
  in
  let old1 = make_tmp root "deadbeef.score.tmp.1234.0" 7200. in
  let old2 = make_tmp shard_dir "cafe.text.tmp.99.3.ab12cd" 7200. in
  let fresh = make_tmp shard_dir "face.text.tmp.99.4.ef34ab" 10. in
  let g = Store.gc ~tmp_ttl_s:3600. s in
  Alcotest.(check int) "two stale tmps swept" 2 g.gc_swept_tmps;
  Alcotest.(check bool) "old root tmp gone" false (Sys.file_exists old1);
  Alcotest.(check bool) "old shard tmp gone" false (Sys.file_exists old2);
  Alcotest.(check bool) "fresh tmp kept" true (Sys.file_exists fresh);
  Alcotest.(check (option string))
    "live entry untouched" (Some "v")
    (Store.find s text_kind ~key:"live")

(* --- LRU eviction under a byte budget --- *)

let test_lru_eviction () =
  let root = fresh_root () in
  let s = Store.open_root ~root () in
  (* three entries of identical size, with distinct ages *)
  let payload = String.make 100 'x' in
  List.iter
    (fun k -> Store.store s text_kind ~key:k payload)
    [ "e1"; "e2"; "e3" ];
  let path_of k =
    match
      List.filter
        (fun (_, p) ->
          let c = read_file p in
          let n = String.length k in
          String.length c >= n
          && String.sub c (String.index c '\n' + 1) n = k)
        (entry_files root)
    with
    | [ (_, p) ] -> p
    | _ -> Alcotest.failf "entry for %s not found" k
  in
  backdate (path_of "e1") 300.;
  backdate (path_of "e2") 200.;
  backdate (path_of "e3") 100.;
  (* a read hit touches e1: it becomes the most recent *)
  ignore (Store.find s text_kind ~key:"e1");
  let size = String.length (read_file (path_of "e2")) in
  let before = Store.global_evictions () in
  (* budget for exactly two entries: the least-recently-used (e2) goes *)
  let g = Store.gc ~max_bytes:(2 * size) s in
  Alcotest.(check int) "one entry evicted" 1 g.gc_evicted;
  Alcotest.(check int) "live count" 2 g.gc_live;
  Alcotest.(check int) "eviction counter advanced" (before + 1)
    (Store.global_evictions ());
  Alcotest.(check (option string))
    "touched entry survived" (Some payload)
    (Store.find s text_kind ~key:"e1");
  Alcotest.(check (option string))
    "most recent entry survived" (Some payload)
    (Store.find s text_kind ~key:"e3");
  Alcotest.(check (option string))
    "LRU entry evicted" None
    (Store.find s text_kind ~key:"e2");
  (* age policy: everything older than 50s goes (both survivors are) *)
  backdate (path_of "e1") 300.;
  backdate (path_of "e3") 100.;
  let g = Store.gc ~max_age_s:50. s in
  Alcotest.(check int) "age policy evicted the rest" 2 g.gc_evicted;
  Alcotest.(check int) "store is empty" 0 (Store.entries s)

(* --- eviction never removes an entry written during the GC pass --- *)

let test_gc_never_evicts_fresh_write () =
  let root = fresh_root () in
  let s = Store.open_root ~root () in
  Store.store s text_kind ~key:"fresh" "just written";
  (* simulate a pass that started before the write by backdating [now]:
     the entry's mtime is >= pass start, so even a zero-byte budget and
     a zero age limit must not touch it *)
  let pass_start = Unix.gettimeofday () -. 30. in
  let g = Store.gc ~max_bytes:0 ~max_age_s:0. ~now:pass_start s in
  Alcotest.(check int) "nothing evicted" 0 g.gc_evicted;
  Alcotest.(check (option string))
    "entry written during the pass survives" (Some "just written")
    (Store.find s text_kind ~key:"fresh")

(* --- multi-process stress --- *)

(* Deterministic final state: every child writes the same value for the
   same key, so any interleaving of N children must converge to the
   same bytes a serial writer produces. The children are fresh copies
   of this very executable (OCaml 5 forbids [fork] once any domain has
   been spawned, and earlier suites use the domain pool): the test
   entry point calls {!maybe_run_child} before Alcotest, which diverts
   the process into {!stress_child} when the env var is set. *)
let stress_keys = 32
let stress_key i = Printf.sprintf "stress-key-%04d" i
let stress_value i = Printf.sprintf "value-%04d-%s" i (String.make 40 'v')

let stress_child root seed : unit =
  let s = Store.open_root ~root () in
  let order = Array.init stress_keys (fun i -> i) in
  (* a child-specific deterministic shuffle so writers interleave *)
  let st = Random.State.make [| seed |] in
  for i = stress_keys - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- t
  done;
  Array.iter
    (fun i ->
      Store.store s text_kind ~key:(stress_key i) (stress_value i);
      (* interleave reads of keys other children may be writing *)
      (match Store.find s text_kind ~key:(stress_key ((i + 7) mod stress_keys)) with
      | Some v ->
          if not (String.equal v (stress_value ((i + 7) mod stress_keys)))
          then Unix._exit 3
      | None -> ());
      (* and the occasional concurrent GC (no budget: tmp sweep only) *)
      if i mod 11 = seed mod 11 then ignore (Store.gc s))
    order;
  (* every key this child wrote must be readable *)
  Array.iter
    (fun i ->
      match Store.find s text_kind ~key:(stress_key i) with
      | Some v when String.equal v (stress_value i) -> ()
      | _ -> Unix._exit 4)
    order

let child_env_var = "GPCC_STORE_STRESS_CHILD"

(* called by the test entry point before Alcotest: in a child process
   (env var "<seed>:<root>") run the stress loop and exit *)
let maybe_run_child () =
  match Sys.getenv_opt child_env_var with
  | None -> ()
  | Some spec -> (
      match String.index_opt spec ':' with
      | Some i -> (
          let seed = int_of_string (String.sub spec 0 i) in
          let root =
            String.sub spec (i + 1) (String.length spec - i - 1)
          in
          try
            stress_child root seed;
            Unix._exit 0
          with _ -> Unix._exit 5)
      | None -> Unix._exit 6)

let test_multiprocess_stress () =
  let root = fresh_root () in
  let children =
    List.init 4 (fun seed ->
        let env =
          Array.append (Unix.environment ())
            [| Printf.sprintf "%s=%d:%s" child_env_var seed root |]
        in
        Unix.create_process_env Sys.executable_name
          [| Sys.executable_name |]
          env Unix.stdin Unix.stdout Unix.stderr)
  in
  List.iter
    (fun pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED c -> Alcotest.failf "child failed with exit %d" c
      | _ -> Alcotest.fail "child killed")
    children;
  (* no lost updates, no corrupt entries *)
  let s = Store.open_root ~root () in
  for i = 0 to stress_keys - 1 do
    Alcotest.(check (option string))
      (Printf.sprintf "key %d survived" i)
      (Some (stress_value i))
      (Store.find s text_kind ~key:(stress_key i))
  done;
  Alcotest.(check int) "exactly one entry per key" stress_keys
    (Store.entries s);
  (* no tmp litter: everything was renamed in or cleaned up *)
  let d = Store.disk_stats s in
  Alcotest.(check int) "no stray tmp files" 0 d.ds_tmp_files;
  (* byte-identical to a serial run: same relative file names, same
     contents (mtimes aside, which are not part of the format) *)
  let serial_root = fresh_root () in
  let serial = Store.open_root ~root:serial_root () in
  for i = 0 to stress_keys - 1 do
    Store.store serial text_kind ~key:(stress_key i) (stress_value i)
  done;
  let concurrent_files = entry_files root
  and serial_files = entry_files serial_root in
  Alcotest.(check (list string))
    "identical file sets"
    (List.map fst serial_files)
    (List.map fst concurrent_files);
  List.iter2
    (fun (rel, p_serial) (_, p_concurrent) ->
      Alcotest.(check string)
        (Printf.sprintf "%s byte-identical" rel)
        (read_file p_serial) (read_file p_concurrent))
    serial_files concurrent_files

(* --- in-process concurrency: domains hammering one root --- *)

let test_domain_stress () =
  let root = fresh_root () in
  let worker d () =
    let s = Store.open_root ~root () in
    for i = 0 to 63 do
      let key = Printf.sprintf "dom-%d" (i mod 16) in
      Store.store s text_kind ~key (Printf.sprintf "v-%d" (i mod 16));
      ignore (Store.find s text_kind ~key);
      if i mod 17 = d then ignore (Store.gc s)
    done
  in
  let domains = List.init 4 (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join domains;
  let s = Store.open_root ~root () in
  for i = 0 to 15 do
    Alcotest.(check (option string))
      (Printf.sprintf "dom key %d" i)
      (Some (Printf.sprintf "v-%d" i))
      (Store.find s text_kind ~key:(Printf.sprintf "dom-%d" i))
  done

let suite =
  ( "store",
    [
      Alcotest.test_case "round trip + sharded layout" `Quick
        test_roundtrip_and_layout;
      Alcotest.test_case "corruption reclaimed, collisions kept" `Quick
        test_corruption_and_versioning;
      Alcotest.test_case "root resolution" `Quick test_root_resolution;
      Alcotest.test_case "stale tmp sweep" `Quick test_tmp_sweep;
      Alcotest.test_case "LRU + age eviction" `Quick test_lru_eviction;
      Alcotest.test_case "gc never evicts a same-pass write" `Quick
        test_gc_never_evicts_fresh_write;
      Alcotest.test_case "multi-process stress (fork)" `Slow
        test_multiprocess_stress;
      Alcotest.test_case "multi-domain stress" `Slow test_domain_stress;
    ] )

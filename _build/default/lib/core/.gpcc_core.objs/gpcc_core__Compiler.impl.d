lib/core/compiler.pp.ml: Ast Buffer Coalesce Gpcc_analysis Gpcc_ast Gpcc_passes Gpcc_sim Licm List Merge Option Partition_camp Pass_util Prefetch Printf Typecheck Vectorize Vectorize_wide

lib/workloads/sdk_transpose.ml: Ast Gpcc_ast Parser Printf Typecheck

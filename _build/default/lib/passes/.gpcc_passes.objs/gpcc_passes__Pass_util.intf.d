lib/passes/pass_util.pp.mli: Gpcc_ast

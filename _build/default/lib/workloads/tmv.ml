(** Transposed-matrix-vector multiplication (paper Table 1: "tmv", 11 LOC,
    1k-4k): [c = A^T b], reading [a] column-wise per output — which on the
    row-major layout makes the matrix access coalesced and the vector
    access a loop-index access to stage. *)

let source n =
  Printf.sprintf
    {|#pragma gpcc dim w %d
#pragma gpcc output c
__kernel void tmv(float a[%d][%d], float b[%d], float c[%d], int w) {
  float sum = 0;
  for (int i = 0; i < w; i++) {
    sum += a[i][idx] * b[i];
  }
  c[idx] = sum;
}
|}
    n n n n n

let inputs n =
  [ ("a", Workload.gen ~seed:5 (n * n)); ("b", Workload.gen ~seed:6 n) ]

let reference n input =
  let a = input "a" and b = input "b" in
  let c = Array.make n 0.0 in
  for col = 0 to n - 1 do
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      s := !s +. (a.((i * n) + col) *. b.(i))
    done;
    c.(col) <- !s
  done;
  [ ("c", c) ]

let workload : Workload.t =
  {
    name = "tmv";
    description = "transposed-matrix-vector multiplication";
    source;
    inputs;
    reference;
    flops = (fun n -> 2.0 *. float_of_int (n * n));
    moved_bytes = (fun n -> 4.0 *. float_of_int ((n * n) + (2 * n)));
    sizes = [ 1024; 2048; 4096 ];
    test_size = 64;
    bench_size = 2048;
    tolerance = 1e-3;
    in_cublas = true;
  }

(** First-class optimization passes: each Figure-1 pipeline stage as a
    record — name, paper section, [applies]/[transform], declared
    analysis dependencies and invalidations — consumed generically by
    the {!Gpcc_core.Pipeline} driver. *)

module Cache = Gpcc_analysis.Analysis_cache

(** Per-compilation context a pass sees. *)
type ctx = {
  cfg : Gpcc_sim.Config.t;  (** target machine description *)
  target_block_threads : int;  (** 128 / 256 / 512 (Section 4.1) *)
  merge_degree : int;  (** threads merged into one: 4 / 8 / 16 / 32 *)
  cache : Cache.t;  (** memoized analyses *)
}

(** Outcome of [applies]: run the transform, or skip with a recorded
    reason. *)
type decision =
  | Applies
  | Declined of string

(** Provided by the pipeline driver: [emit label k l f] runs [f k l] as
    one recorded sub-step (timed, translation-validated when it fires,
    analysis-cache bookkeeping applied) and returns its outcome. *)
type emit =
  string ->
  Gpcc_ast.Ast.kernel ->
  Gpcc_ast.Ast.launch ->
  (Gpcc_ast.Ast.kernel -> Gpcc_ast.Ast.launch -> Pass_util.outcome) ->
  Pass_util.outcome

type t = {
  name : string;  (** stable registry id, e.g. ["merge"] *)
  label : string;  (** default human step label *)
  section : string;  (** paper section implemented *)
  summary : string;  (** one line for [--print-pipeline] *)
  uses : Cache.kind list;  (** analyses consulted (served from the cache) *)
  invalidates : Cache.kind list;
      (** analyses a fired transform may change; the rest are carried
          forward to the transformed kernel by the driver *)
  applies : ctx -> Gpcc_ast.Ast.kernel -> Gpcc_ast.Ast.launch -> decision;
  transform :
    ctx ->
    emit ->
    Gpcc_ast.Ast.kernel ->
    Gpcc_ast.Ast.launch ->
    Gpcc_ast.Ast.kernel * Gpcc_ast.Ast.launch;
}

val preserved : t -> Cache.kind list
(** The complement of [invalidates]: analyses carried forward when the
    pass fires. *)

(** The individual passes (see each one's [summary]). *)

val vectorize_wide : t
val vectorize : t
val coalesce : t
val merge : t
val licm : t
val partition_camp : t
val prefetch : t

val registry : t list
(** The Figure-1 pipeline in execution order. The [merge] record
    implements both of Section 3.5's transforms (thread-block merge and
    thread merge). *)

val find : string -> t option
val names : unit -> string list

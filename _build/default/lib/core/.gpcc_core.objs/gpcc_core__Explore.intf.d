lib/core/explore.pp.mli: Compiler Gpcc_ast Gpcc_sim

test/test_sim.ml: Alcotest Array Ast Coalescer Config Devmem Gpcc_ast Gpcc_passes Gpcc_sim List Occupancy Printf Stats Timing Util

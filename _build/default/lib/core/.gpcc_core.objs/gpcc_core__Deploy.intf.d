lib/core/deploy.pp.mli: Compiler Explore Gpcc_ast Gpcc_sim

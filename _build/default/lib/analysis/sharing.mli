(** Inter-thread-block data-sharing analysis (paper Section 3.4): which
    arrays' repeated loads touch the same data in the neighboring block
    along X or Y, and whether each load feeds shared memory (G2S) or a
    register (G2R) — the inputs to the Section 3.5.3 merge selection. *)

type role =
  | G2S
  | G2R

val equal_role : role -> role -> bool

type direction =
  | Along_x
  | Along_y

type array_sharing = {
  arr : string;
  role : role;
  share_x : bool;
  share_y : bool;
  loads : int;  (** number of load sites *)
}

val show_array_sharing : array_sharing -> string

(** Global arrays loaded directly into a shared array. *)
val g2s_arrays : Gpcc_ast.Ast.kernel -> string list

val analyze :
  ?launch:Gpcc_ast.Ast.launch -> Gpcc_ast.Ast.kernel -> array_sharing list

val merge_opportunities :
  array_sharing list -> (direction * role * string) list

(** Persistent on-disk exploration-score cache. See the mli for the
    layout and concurrency story. *)

type t = {
  root : string;
  memo : (string, float) Hashtbl.t;
  mutex : Mutex.t;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable tmp_seq : int;
}

(* bump when the entry format changes: old files stop resolving *)
let format_version = "gpcc-cache-v1"

let default_dir () =
  match Sys.getenv_opt "GPCC_CACHE_DIR" with
  | Some d when String.trim d <> "" -> d
  | _ -> Filename.concat (Sys.getcwd ()) "_gpcc_cache"

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755
    with Sys_error _ when Sys.file_exists path -> ()
  end

let open_dir ?dir () : t =
  let root = match dir with Some d -> d | None -> default_dir () in
  mkdir_p root;
  {
    root;
    memo = Hashtbl.create 64;
    mutex = Mutex.create ();
    hit_count = 0;
    miss_count = 0;
    tmp_seq = 0;
  }

let dir (c : t) = c.root

let path_of_key (c : t) (key : string) : string =
  Filename.concat c.root
    (Digest.to_hex (Digest.string (format_version ^ "\n" ^ key)) ^ ".score")

(* entry file: line 1 the full key, line 2 the score in %h (lossless) *)
type entry_read =
  | Hit of float
  | Miss  (** no file, or a different key (digest-collision guard) *)
  | Corrupt  (** torn / truncated / unparsable: the file is garbage *)

let read_entry (path : string) (key : string) : entry_read =
  match open_in_bin path with
  | exception Sys_error _ -> Miss
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match
            let stored_key = input_line ic in
            let score_line = input_line ic in
            (stored_key, score_line)
          with
          | stored_key, score_line when String.equal stored_key key -> (
              match float_of_string_opt (String.trim score_line) with
              | Some s -> Hit s
              | None -> Corrupt)
          | _ -> Miss
          | exception End_of_file -> Corrupt)

let locked (c : t) (f : unit -> 'a) : 'a =
  Mutex.lock c.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.mutex) f

let find (c : t) (key : string) : float option =
  locked c (fun () ->
      let result =
        match Hashtbl.find_opt c.memo key with
        | Some _ as s -> s
        | None -> (
            let path = path_of_key c key in
            match read_entry path key with
            | Hit s ->
                Hashtbl.replace c.memo key s;
                Some s
            | Miss -> None
            | Corrupt ->
                (* a torn or truncated entry (killed writer, full disk)
                   must not poison future runs: drop it and re-measure *)
                (try Sys.remove path with Sys_error _ -> ());
                None)
      in
      (match result with
      | Some _ -> c.hit_count <- c.hit_count + 1
      | None -> c.miss_count <- c.miss_count + 1);
      result)

let store (c : t) (key : string) (score : float) : unit =
  let path = path_of_key c key in
  let tmp =
    locked c (fun () ->
        Hashtbl.replace c.memo key score;
        c.tmp_seq <- c.tmp_seq + 1;
        Printf.sprintf "%s.tmp.%d.%d" path
          (Domain.self () :> int)
          c.tmp_seq)
  in
  let oc = open_out_bin tmp in
  (try
     output_string oc key;
     output_char oc '\n';
     output_string oc (Printf.sprintf "%h\n" score);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  try Sys.rename tmp path
  with Sys_error _ -> ( (* racing writer won; our value is equivalent *)
    try Sys.remove tmp with Sys_error _ -> ())

let hits (c : t) : int = locked c (fun () -> c.hit_count)
let misses (c : t) : int = locked c (fun () -> c.miss_count)

let entry_files (c : t) : string list =
  match Sys.readdir c.root with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun n -> Filename.check_suffix n ".score")
      |> List.map (Filename.concat c.root)

let entries (c : t) : int = List.length (entry_files c)

let clear (c : t) : unit =
  locked c (fun () -> Hashtbl.reset c.memo);
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    (entry_files c)

(** Structured per-pass optimization remarks: fired/declined reason,
    before/after kernel-shape metrics, per-pass wall-clock, and the
    pass's human-readable notes. Emitted as JSON by
    [gpcc compile --remarks-json] and folded into the bench output. *)

(** Kernel-shape metrics at a pipeline point. *)
type metrics = {
  regs : int;  (** estimated registers per thread *)
  shared_bytes : int;  (** shared memory per block *)
  threads_per_block : int;
  grid : int * int;
  block : int * int;
}

type t = {
  pass : string;  (** registry pass name, e.g. ["merge"] *)
  step : string;  (** instance label, e.g. ["thread-block merge X x16"] *)
  section : string;  (** paper section the pass implements *)
  fired : bool;
  reason : string;  (** what the pass did, or why it declined *)
  notes : string list;  (** the pass's full human-readable trace *)
  before_m : metrics;
  after_m : metrics;  (** equals [before_m] when the pass did not fire *)
  duration_ms : float;
}

val metrics :
  Gpcc_analysis.Analysis_cache.t ->
  Gpcc_ast.Ast.kernel ->
  Gpcc_ast.Ast.launch ->
  metrics
(** Measure a pipeline point (register/shared estimates served from the
    analysis cache). *)

val escape : string -> string
(** JSON string escaping (shared with {!Pipeline.remarks_json}). *)

val json_of_metrics : metrics -> string
val json_of : t -> string
val json_of_list : t list -> string

(** Backend equivalence: the closure-compiled simulator backend must be
    bit-identical to the tree-walking reference interpreter — output
    arrays and every {!Gpcc_sim.Stats} field — on every registry
    workload, naive and optimized, in Full and Sampled modes; and
    parallel grid execution must reproduce serial execution exactly. *)

open Util
module W = Gpcc_workloads.Workload
module L = Gpcc_sim.Launch
module S = Gpcc_sim.Stats

let stats_fields (s : S.t) =
  [
    ("warp_insts", s.S.warp_insts);
    ("flops", s.S.flops);
    ("gld_tx", s.S.gld_tx);
    ("gst_tx", s.S.gst_tx);
    ("gld_bytes", s.S.gld_bytes);
    ("gst_bytes", s.S.gst_bytes);
    ("cost_bytes", s.S.cost_bytes);
    ("gld_requests", s.S.gld_requests);
    ("gst_requests", s.S.gst_requests);
    ("shared_ops", s.S.shared_ops);
    ("bank_extra", s.S.bank_extra);
    ("syncs", s.S.syncs);
    ("divergent_branches", s.S.divergent_branches);
    ("loads_in_flight", s.S.loads_in_flight);
  ]

let global_arrays (k : Gpcc_ast.Ast.kernel) =
  List.filter_map
    (fun (p : Gpcc_ast.Ast.param) ->
      match p.p_ty with
      | Array { space = Global; _ } -> Some p.p_name
      | _ -> None)
    k.k_params

(** Run [k] on fresh memory and return the simulator result plus the
    final contents of every global array. *)
let exec ~backend ?jobs ~mode (w : W.t) n (k : Gpcc_ast.Ast.kernel) launch =
  let mem = Gpcc_sim.Devmem.of_kernel k in
  List.iter
    (fun (name, d) -> Gpcc_sim.Devmem.write mem name d)
    (w.W.inputs n);
  let r = L.run ~mode ~backend ?jobs cfg280 k launch mem in
  (r, List.map (fun a -> (a, Gpcc_sim.Devmem.read mem a)) (global_arrays k))

(** Bitwise comparison ([compare] treats nan = nan, unlike [=]). *)
let bit_identical label ((ra : L.result), oa) ((rb : L.result), ob) =
  List.iter2
    (fun (n1, a) (n2, b) ->
      Alcotest.(check string) (label ^ " array order") n1 n2;
      if compare a b <> 0 then
        Alcotest.failf "%s: array %s differs between backends" label n1)
    oa ob;
  List.iter2
    (fun (f, x) (_, y) ->
      if compare x y <> 0 then
        Alcotest.failf "%s: stats field %s: %.17g <> %.17g" label f x y)
    (stats_fields ra.L.per_block)
    (stats_fields rb.L.per_block);
  if compare ra.L.partition_eff rb.L.partition_eff <> 0 then
    Alcotest.failf "%s: partition_eff %.17g <> %.17g" label ra.L.partition_eff
      rb.L.partition_eff;
  Alcotest.(check int) (label ^ " sampled_blocks") ra.L.sampled_blocks
    rb.L.sampled_blocks

(** Naive and pipeline-optimized variants of one workload. *)
let kernels_of (w : W.t) n =
  let k = W.parse w n in
  let launch = Option.get (Gpcc_passes.Pass_util.naive_launch k) in
  let r = compile k in
  [ (w.W.name ^ "/naive", k, launch); (w.W.name ^ "/opt", r.kernel, r.launch) ]

let test_compiled_matches_reference () =
  List.iter
    (fun (w : W.t) ->
      let n = w.W.test_size in
      List.iter
        (fun (label, k, launch) ->
          List.iter
            (fun (mname, mode) ->
              let fb0 = Gpcc_sim.Compile.fallback_count () in
              let rr = exec ~backend:L.Reference ~jobs:1 ~mode w n k launch in
              let rc = exec ~backend:L.Compiled ~jobs:1 ~mode w n k launch in
              Alcotest.(check int)
                (label ^ "/" ^ mname ^ " compiled without fallback")
                fb0
                (Gpcc_sim.Compile.fallback_count ());
              bit_identical (label ^ "/" ^ mname) rr rc)
            [ ("full", L.Full); ("sampled", L.Sampled 4) ])
        (kernels_of w n))
    Gpcc_workloads.Registry.all

let test_parallel_matches_serial () =
  List.iter
    (fun (w : W.t) ->
      let n = w.W.test_size in
      List.iter
        (fun (label, k, launch) ->
          let serial =
            exec ~backend:L.Compiled ~jobs:1 ~mode:L.Full w n k launch
          in
          let par =
            exec ~backend:L.Compiled ~jobs:4 ~mode:L.Full w n k launch
          in
          bit_identical (label ^ " parallel==serial") serial par)
        (kernels_of w n))
    Gpcc_workloads.Registry.all

let test_parallel_reference_matches_serial () =
  (* the parallel grid executor is backend-independent *)
  let w = Gpcc_workloads.Registry.find_exn "mm" in
  let n = w.W.test_size in
  List.iter
    (fun (label, k, launch) ->
      let serial =
        exec ~backend:L.Reference ~jobs:1 ~mode:L.Full w n k launch
      in
      let par = exec ~backend:L.Reference ~jobs:4 ~mode:L.Full w n k launch in
      bit_identical (label ^ " ref parallel==serial") serial par)
    (kernels_of w n)

let test_backend_of_env () =
  let set v = Unix.putenv "GPCC_INTERP" v in
  set "ref";
  Alcotest.(check string) "ref" "reference" (L.backend_name (L.backend_of_env ()));
  set "reference";
  Alcotest.(check string)
    "reference" "reference"
    (L.backend_name (L.backend_of_env ()));
  set "compiled";
  Alcotest.(check string) "compiled" "compiled"
    (L.backend_name (L.backend_of_env ()));
  set "";
  Alcotest.(check string) "default" "compiled"
    (L.backend_name (L.backend_of_env ()))

let test_unsupported_falls_back () =
  (* a float scalar parameter is outside the compiled subset: the run
     must fall back to the reference interpreter and still fail with the
     reference's runtime error *)
  let k =
    Gpcc_ast.Parser.kernel_of_string
      {|__kernel void f(float s, float a[64]) {
  a[idx] = s;
}|}
  in
  let launch =
    { Gpcc_ast.Ast.grid_x = 1; grid_y = 1; block_x = 64; block_y = 1 }
  in
  let mem = Gpcc_sim.Devmem.of_kernel k in
  let fb0 = Gpcc_sim.Compile.fallback_count () in
  (match L.run ~backend:L.Compiled ~jobs:1 cfg280 k launch mem with
  | _ -> Alcotest.fail "expected a runtime error"
  | exception Gpcc_sim.Interp.Runtime_error m ->
      assert_contains "reference error surfaces" m
        "unsupported scalar parameter type");
  Alcotest.(check bool) "fallback recorded" true
    (Gpcc_sim.Compile.fallback_count () > fb0)

let suite =
  let q n f = Alcotest.test_case n `Quick f in
  let s n f = Alcotest.test_case n `Slow f in
  ( "backend",
    [
      s "compiled == reference (bit-identical)" test_compiled_matches_reference;
      s "parallel Full == serial Full" test_parallel_matches_serial;
      s "reference parallel == serial" test_parallel_reference_matches_serial;
      q "GPCC_INTERP selection" test_backend_of_env;
      q "unsupported kernels fall back" test_unsupported_falls_back;
    ] )

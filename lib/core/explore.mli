(** Design-space exploration (paper Section 4): generate one kernel
    version per (threads-per-block, thread-merge-degree) configuration and
    select the best by empirically running each — on the simulator here,
    on the GPU in the paper.

    The sweep is embarrassingly parallel, so candidates are fanned out
    across a {!Pool} of worker domains, and measured scores can be
    persisted in an {!Explore_cache} so repeated searches skip
    already-measured points. The outcome is deterministic: for a fixed
    candidate grid the chosen best is byte-identical whatever [jobs] is
    and whether scores came from the cache or fresh measurement. *)

type candidate = {
  target_block_threads : int;
  merge_degree : int;
  result : Pipeline.result;
  score : float;  (** measured GFLOPS (higher is better) *)
}

type failure = {
  failed_target : int;  (** requested threads per block *)
  failed_degree : int;  (** requested thread-merge degree *)
  failed_stage : [ `Compile | `Verify | `Measure ];
      (** [`Verify]: the pipeline ran but translation validation rejected
          the result (see {!Pipeline.verifier_rejected}) *)
  reason : string;  (** printed exception *)
}

val default_block_targets : int list
val default_merge_degrees : int list

(** Compile every configuration (in parallel on [jobs] domains, default
    {!Pool.default_jobs}) and score it with [measure]. Candidates whose
    kernels coincide are measured once and share the score. A candidate
    that raises is isolated, never aborting the sweep: compile failures
    are dropped from the candidate list, measure failures score
    [Float.neg_infinity]; both are reported in the [failure] list.

    When [cache] is given, measured scores are looked up / persisted
    under [cache_prefix] plus a digest of the compiled kernel text, so
    any compiler change that alters generated code invalidates the entry
    implicitly. [cache_prefix] must identify everything else the score
    depends on (machine, workload, problem size). *)
val search_with_failures :
  ?cfg:Gpcc_sim.Config.t ->
  ?block_targets:int list ->
  ?merge_degrees:int list ->
  ?jobs:int ->
  ?cache:Explore_cache.t ->
  ?cache_prefix:string ->
  Gpcc_ast.Ast.kernel ->
  measure:(Gpcc_ast.Ast.kernel -> Gpcc_ast.Ast.launch -> float) ->
  candidate list * failure list

(** [search_with_failures] without the failure report. *)
val search :
  ?cfg:Gpcc_sim.Config.t ->
  ?block_targets:int list ->
  ?merge_degrees:int list ->
  ?jobs:int ->
  ?cache:Explore_cache.t ->
  ?cache_prefix:string ->
  Gpcc_ast.Ast.kernel ->
  measure:(Gpcc_ast.Ast.kernel -> Gpcc_ast.Ast.launch -> float) ->
  candidate list

(** Drop candidates whose kernel and launch coincide with an earlier one
    (different knobs often converge to the same version). *)
val distinct : candidate list -> candidate list

val best : candidate list -> candidate option
(** Highest score; earliest in list order on ties (which makes the
    winner independent of [jobs]). *)

(** [search] followed by [best]. *)
val pick :
  ?cfg:Gpcc_sim.Config.t ->
  ?block_targets:int list ->
  ?merge_degrees:int list ->
  ?jobs:int ->
  ?cache:Explore_cache.t ->
  ?cache_prefix:string ->
  Gpcc_ast.Ast.kernel ->
  measure:(Gpcc_ast.Ast.kernel -> Gpcc_ast.Ast.launch -> float) ->
  candidate option

(** Content-addressed artifact store. See the mli for the layout,
    locking protocol, eviction policy and versioning story. *)

(* bump when the on-disk envelope changes: old files stop resolving
   (their digests no longer match) and age out through the GC *)
let format_version = "gpcc-store-v1"

(* ------------------------------------------------------------------ *)
(* Process-global counters                                             *)
(* ------------------------------------------------------------------ *)

let hit_counter = Atomic.make 0
let miss_counter = Atomic.make 0
let eviction_counter = Atomic.make 0
let contention_counter = Atomic.make 0
let global_hits () = Atomic.get hit_counter
let global_misses () = Atomic.get miss_counter
let global_evictions () = Atomic.get eviction_counter
let global_lock_contention () = Atomic.get contention_counter

(* ------------------------------------------------------------------ *)
(* Advisory locking: lockf across processes, a readers-writer monitor  *)
(* across domains of this process (POSIX record locks do not exclude   *)
(* the owning process from itself)                                     *)
(* ------------------------------------------------------------------ *)

module Lock = struct
  type state = {
    lock_path : string;
    m : Mutex.t;
    cv : Condition.t;
    mutable fd : Unix.file_descr option;
    mutable readers : int;
    mutable writer : bool;
    mutable waiting_writers : int;
  }

  (* one state per store root, shared by every handle in the process so
     the in-process monitor actually excludes concurrent handles *)
  let registry : (string, state) Hashtbl.t = Hashtbl.create 8
  let registry_mutex = Mutex.create ()

  let for_root (root : string) : state =
    let key = try Unix.realpath root with Unix.Unix_error _ -> root in
    Mutex.lock registry_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock registry_mutex)
      (fun () ->
        match Hashtbl.find_opt registry key with
        | Some s -> s
        | None ->
            let s =
              {
                lock_path = Filename.concat root ".lock";
                m = Mutex.create ();
                cv = Condition.create ();
                fd = None;
                readers = 0;
                writer = false;
                waiting_writers = 0;
              }
            in
            Hashtbl.add registry key s;
            s)

  (* the fd stays open for the life of the process: closing any fd on a
     lockf-locked file would drop the process's locks *)
  let fd_of (s : state) : Unix.file_descr =
    match s.fd with
    | Some fd -> fd
    | None ->
        let fd =
          Unix.openfile s.lock_path
            [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ]
            0o644
        in
        s.fd <- Some fd;
        fd

  (* best-effort: a filesystem without record locks (some network
     mounts) degrades to in-process safety plus atomic renames *)
  let file_lock (s : state) ~(try_cmd : Unix.lock_command)
      ~(block_cmd : Unix.lock_command) : unit =
    match fd_of s with
    | exception Unix.Unix_error _ -> ()
    | fd -> (
        ignore (Unix.lseek fd 0 Unix.SEEK_SET);
        try Unix.lockf fd try_cmd 0
        with
        | Unix.Unix_error ((EAGAIN | EACCES | EWOULDBLOCK), _, _) -> (
            Atomic.incr contention_counter;
            try Unix.lockf fd block_cmd 0 with Unix.Unix_error _ -> ())
        | Unix.Unix_error _ -> ())

  let file_unlock (s : state) : unit =
    match s.fd with
    | None -> ()
    | Some fd -> (
        ignore (Unix.lseek fd 0 Unix.SEEK_SET);
        try Unix.lockf fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ())

  let acquire_shared (s : state) : unit =
    Mutex.lock s.m;
    if s.writer || s.waiting_writers > 0 then begin
      Atomic.incr contention_counter;
      while s.writer || s.waiting_writers > 0 do
        Condition.wait s.cv s.m
      done
    end;
    s.readers <- s.readers + 1;
    if s.readers = 1 then
      file_lock s ~try_cmd:Unix.F_TRLOCK ~block_cmd:Unix.F_RLOCK;
    Mutex.unlock s.m

  let release_shared (s : state) : unit =
    Mutex.lock s.m;
    s.readers <- s.readers - 1;
    if s.readers = 0 then file_unlock s;
    Condition.broadcast s.cv;
    Mutex.unlock s.m

  let acquire_exclusive (s : state) : unit =
    Mutex.lock s.m;
    s.waiting_writers <- s.waiting_writers + 1;
    if s.readers > 0 || s.writer then begin
      Atomic.incr contention_counter;
      while s.readers > 0 || s.writer do
        Condition.wait s.cv s.m
      done
    end;
    s.waiting_writers <- s.waiting_writers - 1;
    s.writer <- true;
    file_lock s ~try_cmd:Unix.F_TLOCK ~block_cmd:Unix.F_LOCK;
    Mutex.unlock s.m

  let release_exclusive (s : state) : unit =
    Mutex.lock s.m;
    s.writer <- false;
    file_unlock s;
    Condition.broadcast s.cv;
    Mutex.unlock s.m

  let with_shared (s : state) (f : unit -> 'a) : 'a =
    acquire_shared s;
    Fun.protect ~finally:(fun () -> release_shared s) f

  let with_exclusive (s : state) (f : unit -> 'a) : 'a =
    acquire_exclusive s;
    Fun.protect ~finally:(fun () -> release_exclusive s) f
end

(* ------------------------------------------------------------------ *)
(* Kinds                                                               *)
(* ------------------------------------------------------------------ *)

type 'a kind = {
  k_name : string;
  k_version : string;
  k_encode : 'a -> string;
  k_decode : string -> 'a option;
}

let valid_token (s : string) : bool =
  s <> ""
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> true
         | _ -> false)
       s

let make_kind ~name ~version ~encode ~decode : _ kind =
  if not (valid_token name) then
    invalid_arg (Printf.sprintf "Store.make_kind: bad kind name %S" name);
  if not (valid_token version) then
    invalid_arg
      (Printf.sprintf "Store.make_kind: bad kind version %S" version);
  { k_name = name; k_version = version; k_encode = encode; k_decode = decode }

let kind_name (k : _ kind) = k.k_name

(* ------------------------------------------------------------------ *)
(* Roots                                                               *)
(* ------------------------------------------------------------------ *)

let cache_dir_name = "_gpcc_cache"

let resolve_root ?cwd () : string =
  match Sys.getenv_opt "GPCC_CACHE_DIR" with
  | Some d when String.trim d <> "" -> d
  | _ ->
      let cwd = match cwd with Some c -> c | None -> Sys.getcwd () in
      let marked d =
        Sys.file_exists (Filename.concat d "dune-project")
        || Sys.file_exists (Filename.concat d ".git")
      in
      let rec up d =
        if marked d then Some d
        else
          let parent = Filename.dirname d in
          if String.equal parent d then None else up parent
      in
      Filename.concat (Option.value (up cwd) ~default:cwd) cache_dir_name

let default_root () = resolve_root ()

let default_max_bytes () : int option =
  match Sys.getenv_opt "GPCC_CACHE_MAX_MB" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some mb when mb > 0 -> Some (mb * 1024 * 1024)
      | _ -> None)

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755
    with Sys_error _ when Sys.file_exists path -> ()
  end

type t = {
  t_root : string;
  t_lock : Lock.state;
  t_hits : int Atomic.t;
  t_misses : int Atomic.t;
}

let root (t : t) = t.t_root
let hits (t : t) = Atomic.get t.t_hits
let misses (t : t) = Atomic.get t.t_misses

(* ------------------------------------------------------------------ *)
(* Paths                                                               *)
(* ------------------------------------------------------------------ *)

let digest_hex (kind : _ kind) (key : string) : string =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [ format_version; kind.k_name; kind.k_version; key ]))

let shard_of_hex (hex : string) = String.sub hex 0 2

let path_of (t : t) (kind : _ kind) (key : string) : string =
  let hex = digest_hex kind key in
  Filename.concat
    (Filename.concat t.t_root (shard_of_hex hex))
    (String.sub hex 2 (String.length hex - 2) ^ "." ^ kind.k_name)

let is_shard_dir (name : string) : bool =
  String.length name = 2
  && String.for_all
       (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false)
       name

(* temp names carry ".tmp." so a sweep can recognize strays by name *)
let is_tmp_name (name : string) : bool =
  let marker = ".tmp." in
  let n = String.length name and m = String.length marker in
  let rec scan i =
    i + m <= n && (String.equal (String.sub name i m) marker || scan (i + 1))
  in
  scan 0

let tmp_seq = Atomic.make 0

(* pid + sequence + random suffix: unique across concurrent processes
   (pid), within the process (sequence), and across pid reuse after a
   crash (random) — no per-process counter file to coordinate *)
let random_suffix = lazy (Random.State.make_self_init ())

let fresh_tmp_path (path : string) : string =
  Printf.sprintf "%s.tmp.%d.%d.%06x" path (Unix.getpid ())
    (Atomic.fetch_and_add tmp_seq 1)
    (Random.State.bits (Lazy.force random_suffix) land 0xFFFFFF)

(* ------------------------------------------------------------------ *)
(* Entry envelope                                                      *)
(* ------------------------------------------------------------------ *)

(* <format_version> <kind> <kind-version> <key bytes> <payload bytes>\n
   followed by the raw key then the raw payload; the explicit lengths
   make truncation detectable before the payload is ever decoded *)
let encode_entry (kind : _ kind) ~(key : string) ~(payload : string) : string
    =
  let b = Buffer.create (String.length key + String.length payload + 64) in
  Buffer.add_string b
    (Printf.sprintf "%s %s %s %d %d\n" format_version kind.k_name
       kind.k_version (String.length key) (String.length payload));
  Buffer.add_string b key;
  Buffer.add_string b payload;
  Buffer.contents b

type entry_read =
  | Hit of string  (** the payload *)
  | Foreign  (** a different key (digest collision): keep, miss *)
  | Corrupt  (** torn / truncated / wrong format: reclaim, miss *)
  | Absent

let read_entry (kind : _ kind) ~(key : string) (path : string) : entry_read =
  match open_in_bin path with
  | exception Sys_error _ -> Absent
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match input_line ic with
          | exception End_of_file -> Corrupt
          | header -> (
              match String.split_on_char ' ' header with
              | [ fmt; kname; kver; klen; plen ]
                when String.equal fmt format_version
                     && String.equal kname kind.k_name
                     && String.equal kver kind.k_version -> (
                  match (int_of_string_opt klen, int_of_string_opt plen) with
                  | Some klen, Some plen when klen >= 0 && plen >= 0 -> (
                      match
                        let stored_key = really_input_string ic klen in
                        let payload = really_input_string ic plen in
                        (stored_key, payload)
                      with
                      | exception End_of_file -> Corrupt
                      | stored_key, _ when not (String.equal stored_key key)
                        ->
                          Foreign
                      | _, payload ->
                          (* trailing bytes mean a torn concatenation *)
                          if pos_in ic <> in_channel_length ic then Corrupt
                          else Hit payload)
                  | _ -> Corrupt)
              | _ -> Corrupt))

(* ------------------------------------------------------------------ *)
(* Scanning                                                            *)
(* ------------------------------------------------------------------ *)

let scan_entries (t : t) :
    (string * int * float) list * (string * float) list =
  (* (entry path, bytes, mtime) and (tmp path, mtime); tmp strays are
     collected at the root level too (pre-store cache layouts kept
     their temp files there) *)
  let entries = ref [] and tmps = ref [] in
  let consider dir name =
    let path = Filename.concat dir name in
    match Unix.lstat path with
    | exception Unix.Unix_error _ -> ()
    | st when st.Unix.st_kind <> Unix.S_REG -> ()
    | st ->
        if is_tmp_name name then tmps := (path, st.Unix.st_mtime) :: !tmps
        else
          entries := (path, st.Unix.st_size, st.Unix.st_mtime) :: !entries
  in
  (match Sys.readdir t.t_root with
  | exception Sys_error _ -> ()
  | names ->
      Array.iter
        (fun name ->
          let sub = Filename.concat t.t_root name in
          if is_shard_dir name && Sys.is_directory sub then (
            match Sys.readdir sub with
            | exception Sys_error _ -> ()
            | files -> Array.iter (consider sub) files)
          else if is_tmp_name name then
            match Unix.lstat sub with
            | exception Unix.Unix_error _ -> ()
            | st when st.Unix.st_kind = Unix.S_REG ->
                tmps := (sub, st.Unix.st_mtime) :: !tmps
            | _ -> ())
        names);
  (!entries, !tmps)

let total_bytes (t : t) : int =
  let entries, _ = scan_entries t in
  List.fold_left (fun a (_, b, _) -> a + b) 0 entries

let ext_of (path : string) : string =
  let base = Filename.basename path in
  match String.rindex_opt base '.' with
  | None -> ""
  | Some i -> String.sub base (i + 1) (String.length base - i - 1)

let entries ?kind (t : t) : int =
  let entries, _ = scan_entries t in
  match kind with
  | None -> List.length entries
  | Some k ->
      List.length
        (List.filter (fun (p, _, _) -> String.equal (ext_of p) k) entries)

type kind_stats = {
  ks_kind : string;
  ks_entries : int;
  ks_bytes : int;
}

type disk_stats = {
  ds_entries : int;
  ds_bytes : int;
  ds_tmp_files : int;
  ds_kinds : kind_stats list;
}

let disk_stats (t : t) : disk_stats =
  let entries, tmps = scan_entries t in
  let by_kind : (string, int * int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (p, bytes, _) ->
      let k = ext_of p in
      let n, b = Option.value (Hashtbl.find_opt by_kind k) ~default:(0, 0) in
      Hashtbl.replace by_kind k (n + 1, b + bytes))
    entries;
  {
    ds_entries = List.length entries;
    ds_bytes = List.fold_left (fun a (_, b, _) -> a + b) 0 entries;
    ds_tmp_files = List.length tmps;
    ds_kinds =
      Hashtbl.fold
        (fun k (n, b) acc ->
          { ks_kind = k; ks_entries = n; ks_bytes = b } :: acc)
        by_kind []
      |> List.sort (fun a b -> compare a.ks_kind b.ks_kind);
  }

(* ------------------------------------------------------------------ *)
(* Eviction                                                            *)
(* ------------------------------------------------------------------ *)

type gc_stats = {
  gc_live : int;
  gc_live_bytes : int;
  gc_evicted : int;
  gc_evicted_bytes : int;
  gc_swept_tmps : int;
}

let default_tmp_ttl_s = 3600.

let remove_if_empty (dir : string) : unit =
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let gc ?max_bytes ?max_age_s ?(tmp_ttl_s = default_tmp_ttl_s) ?now (t : t) :
    gc_stats =
  let max_bytes =
    match max_bytes with Some _ as b -> b | None -> default_max_bytes ()
  in
  Lock.with_exclusive t.t_lock (fun () ->
      let pass_start =
        match now with Some n -> n | None -> Unix.gettimeofday ()
      in
      let entries, tmps = scan_entries t in
      (* 1. stale temp files: a crashed writer's tmp can never be
         renamed in, so anything older than the TTL is garbage *)
      let swept =
        List.fold_left
          (fun n (path, mtime) ->
            if pass_start -. mtime > tmp_ttl_s then
              match Sys.remove path with
              | () -> n + 1
              | exception Sys_error _ -> n
            else n)
          0 tmps
      in
      let evicted = ref 0 and evicted_bytes = ref 0 in
      let try_evict (path, bytes, _) : bool =
        match Sys.remove path with
        | () ->
            incr evicted;
            evicted_bytes := !evicted_bytes + bytes;
            Atomic.incr eviction_counter;
            remove_if_empty (Filename.dirname path);
            true
        | exception Sys_error _ -> false
      in
      (* entries touched at or after the pass start are pinned: the GC
         must never reclaim what a concurrent writer just renamed in
         (the exclusive lock already serializes against in-flight
         renames; the mtime guard additionally covers the [?now] of a
         backdated test pass and any clock races) *)
      let pinned, evictable =
        List.partition (fun (_, _, mtime) -> mtime >= pass_start) entries
      in
      (* 2. age policy *)
      let evictable =
        match max_age_s with
        | None -> evictable
        | Some age ->
            List.filter
              (fun ((_, _, mtime) as e) ->
                not (pass_start -. mtime > age && try_evict e))
              evictable
      in
      (* 3. size policy: least-recently-touched first *)
      let evictable =
        List.sort (fun (_, _, a) (_, _, b) -> compare a b) evictable
      in
      let live_bytes =
        List.fold_left
          (fun a (_, b, _) -> a + b)
          (List.fold_left (fun a (_, b, _) -> a + b) 0 pinned)
          evictable
      in
      let rec shrink total = function
        | [] -> total
        | ((_, bytes, _) as e) :: rest -> (
            match max_bytes with
            | Some budget when total > budget ->
                shrink (if try_evict e then total - bytes else total) rest
            | _ -> total)
      in
      let live_bytes = shrink live_bytes evictable in
      {
        gc_live = List.length entries - !evicted;
        gc_live_bytes = live_bytes;
        gc_evicted = !evicted;
        gc_evicted_bytes = !evicted_bytes;
        gc_swept_tmps = swept;
      })

(* ------------------------------------------------------------------ *)
(* Opening                                                             *)
(* ------------------------------------------------------------------ *)

let open_root ?root ?(auto_gc = true) () : t =
  let root = match root with Some r -> r | None -> default_root () in
  mkdir_p root;
  let t =
    {
      t_root = root;
      t_lock = Lock.for_root root;
      t_hits = Atomic.make 0;
      t_misses = Atomic.make 0;
    }
  in
  (if auto_gc then
     match default_max_bytes () with
     | Some budget when total_bytes t > budget ->
         ignore (gc ~max_bytes:budget t)
     | _ -> ());
  t

(* ------------------------------------------------------------------ *)
(* Reading and writing                                                 *)
(* ------------------------------------------------------------------ *)

let count_hit (t : t) =
  Atomic.incr t.t_hits;
  Atomic.incr hit_counter

let count_miss (t : t) =
  Atomic.incr t.t_misses;
  Atomic.incr miss_counter

(* a hit advances the entry's LRU clock *)
let touch (path : string) : unit =
  try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ()

let remove_locked (t : t) (path : string) : unit =
  Lock.with_shared t.t_lock (fun () ->
      try Sys.remove path with Sys_error _ -> ())

let find (t : t) (kind : 'a kind) ~(key : string) : 'a option =
  let path = path_of t kind key in
  match read_entry kind ~key path with
  | Absent | Foreign ->
      count_miss t;
      None
  | Corrupt ->
      (* a torn or wrong-format file can never be read again; reclaim
         it so it cannot poison future runs *)
      remove_locked t path;
      count_miss t;
      None
  | Hit payload -> (
      match kind.k_decode payload with
      | Some v ->
          touch path;
          count_hit t;
          Some v
      | None ->
          remove_locked t path;
          count_miss t;
          None)

let store (t : t) (kind : 'a kind) ~(key : string) (v : 'a) : unit =
  let path = path_of t kind key in
  let content = encode_entry kind ~key ~payload:(kind.k_encode v) in
  mkdir_p (Filename.dirname path);
  let tmp = fresh_tmp_path path in
  let oc = open_out_bin tmp in
  (try
     output_string oc content;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Lock.with_shared t.t_lock (fun () ->
      try Sys.rename tmp path
      with Sys_error _ -> (
        (* a racing writer won, or the GC swept our tmp: the entry is
           content-addressed, so the surviving value is equivalent *)
        try Sys.remove tmp with Sys_error _ -> ()))

(* ------------------------------------------------------------------ *)
(* Clearing                                                            *)
(* ------------------------------------------------------------------ *)

let rec remove_tree (path : string) : unit =
  if Sys.is_directory path then begin
    (match Sys.readdir path with
    | exception Sys_error _ -> ()
    | names ->
        Array.iter (fun n -> remove_tree (Filename.concat path n)) names);
    try Unix.rmdir path with Unix.Unix_error _ -> ()
  end
  else try Sys.remove path with Sys_error _ -> ()

let clear ?kind (t : t) : unit =
  Lock.with_exclusive t.t_lock (fun () ->
      match kind with
      | Some k ->
          let entries, _ = scan_entries t in
          List.iter
            (fun (p, _, _) ->
              if String.equal (ext_of p) k then begin
                (try Sys.remove p with Sys_error _ -> ());
                remove_if_empty (Filename.dirname p)
              end)
            entries
      | None -> (
          (* everything goes, including legacy flat-layout files and
             stray temps — but not the lock file, whose inode other
             processes may already hold locks on *)
          match Sys.readdir t.t_root with
          | exception Sys_error _ -> ()
          | names ->
              Array.iter
                (fun n ->
                  if not (String.equal n ".lock") then
                    remove_tree (Filename.concat t.t_root n))
                names))

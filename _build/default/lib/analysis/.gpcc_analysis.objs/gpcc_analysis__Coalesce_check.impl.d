lib/analysis/coalesce_check.pp.ml: Affine Ast Gpcc_ast Layout List Option Pp Ppx_deriving_runtime Printf Rewrite String

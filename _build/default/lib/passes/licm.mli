(** Loop-invariant code motion for thread-position arithmetic: hoists,
    out of nested loops, integer expressions built only from builtins and
    constants (the address/guard arithmetic thread merge replicates), at
    the classic cost of one register per hoisted value. *)

val apply : Gpcc_ast.Ast.kernel -> Gpcc_ast.Ast.launch -> Pass_util.outcome

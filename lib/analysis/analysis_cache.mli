(** Memoized kernel analyses with bounded LRU eviction.

    Memoizes the five analyses the compiler keeps re-deriving — the
    affine access table, the coalescing verdict, inter-block data
    sharing, register/shared-memory estimation, and the static
    verifier — keyed by a digest of the printed kernel (plus the launch
    configuration for launch-dependent analyses). Changing the kernel
    text changes the key, so results can never go stale; passes that
    declare an analysis {e preserved} carry its result forward to the
    transformed kernel with {!preserve}.

    When a slot reaches capacity the least-recently-used entry is
    evicted, so hot entries survive long design-space explorations. *)

(** The analyses the cache memoizes — the vocabulary passes use to
    declare invalidations. *)
type kind =
  | Affine  (** the affine access table: {!Coalesce_check.analyze_kernel} *)
  | Sharing  (** inter-block data sharing: {!Sharing.analyze} *)
  | Coalesce  (** the all-accesses-coalesced verdict *)
  | Regcount  (** registers/thread and shared bytes/block: {!Regcount} *)
  | Verify  (** static verifier diagnostics: {!Verify.check} *)

val all_kinds : kind list
val kind_name : kind -> string

type t

val default_capacity : int
(** 512 entries per analysis slot. *)

val create : ?capacity:int -> unit -> t
val capacity : t -> int

val length : t -> int
(** Total entries currently cached, across every slot. *)

val hits : t -> int
val misses : t -> int

val global_hits : unit -> int
(** Hits aggregated across every instance of every domain. *)

val global_misses : unit -> int

val global_symbolic_proofs : unit -> int
(** Launches discharged by a symbolic [Proved]/[Proved_when] verdict
    (no concrete verification ran), across every domain. *)

val global_concrete_fallbacks : unit -> int
(** Launches the symbolic tier could not discharge, handed to the
    concrete {!Verify.check} path, across every domain. *)

val global_verify_wall_clock_s : unit -> float
(** Total wall-clock seconds spent inside {!verify} and {!verify_sym},
    across every domain. *)

val key : Gpcc_ast.Ast.kernel -> Gpcc_ast.Ast.launch -> string
(** Digest of the printed kernel at the launch — the cache key of the
    launch-dependent slots. *)

val kernel_key : Gpcc_ast.Ast.kernel -> string
(** Launch-independent key ({!regcount}). *)

val accesses :
  t -> launch:Gpcc_ast.Ast.launch -> Gpcc_ast.Ast.kernel ->
  Coalesce_check.access list
(** The affine access table ([Affine] slot). *)

val coalesced : t -> launch:Gpcc_ast.Ast.launch -> Gpcc_ast.Ast.kernel -> bool
(** Whether every global access is coalesced ([Coalesce] slot). *)

val sharing :
  t -> launch:Gpcc_ast.Ast.launch -> Gpcc_ast.Ast.kernel ->
  Sharing.array_sharing list
(** The data-sharing summary ([Sharing] slot). *)

val regcount : t -> Gpcc_ast.Ast.kernel -> int * int
(** (registers/thread, shared bytes/block) ([Regcount] slot). *)

val verify :
  t -> launch:Gpcc_ast.Ast.launch -> Gpcc_ast.Ast.kernel ->
  Verify.diagnostic list
(** Verifier diagnostics ([Verify] slot). *)

val symbolic_result : t -> Gpcc_ast.Ast.kernel -> Symverify.result
(** The launch-parametric symbolic verdict for a kernel — one
    digest-keyed entry per kernel text, persisted on disk as a
    [.pverdict] entry next to the concrete [.verdict] files. *)

val verify_sym :
  t -> launch:Gpcc_ast.Ast.launch -> Gpcc_ast.Ast.kernel ->
  Verify.diagnostic list
(** Symbolic-first verification: returns [[]] when the parametric
    verdict proves this launch clean, and otherwise falls back to
    {!verify} (identical diagnostics to a non-symbolic run). The
    symbolic tier is sound but incomplete, so the fallback keeps
    precision intact. *)

val preserve :
  t ->
  kinds:kind list ->
  from_:Gpcc_ast.Ast.kernel * Gpcc_ast.Ast.launch ->
  to_:Gpcc_ast.Ast.kernel * Gpcc_ast.Ast.launch ->
  unit
(** Carry the listed analyses' cached results (when present) from the
    pre-transform kernel to the post-transform kernel. Called by the
    pipeline for the analyses a fired pass does {e not} declare
    invalidated. *)

val domain : unit -> t
(** The current worker domain's instance (one per domain: exploration
    fans compiles out across domains, and a shared table would need a
    lock on the hot path). *)

lib/passes/vectorize_wide.pp.ml: Ast Gpcc_ast List Option Pass_util Printf

(** Hand-written lexer for the mini-CUDA kernel language. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | KW of string
  | PUNCT of string
  | PRAGMA of string list  (** words after [#pragma gpcc] *)
  | EOF

exception Error of string * int  (** message, line *)

let token_to_string = function
  | IDENT s -> "identifier " ^ s
  | INT n -> "integer " ^ string_of_int n
  | FLOAT f -> "float " ^ string_of_float f
  | KW s -> "keyword " ^ s
  | PUNCT s -> "'" ^ s ^ "'"
  | PRAGMA ws -> "#pragma gpcc " ^ String.concat " " ws
  | EOF -> "end of input"

let keywords =
  [
    "int"; "float"; "float2"; "float4"; "bool"; "void"; "if"; "else"; "for";
    "__shared__"; "__kernel"; "__global__"; "__syncthreads"; "__global_sync";
  ]

let is_keyword s = List.mem s keywords
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(** Tokenize the whole input; each token is paired with its 1-based line. *)
let tokenize (src : string) : (token * int) list =
  let n = String.length src in
  let line = ref 1 in
  let toks = ref [] in
  let emit t = toks := (t, !line) :: !toks in
  let pos = ref 0 in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let rec skip_block_comment () =
    if !pos + 1 >= n then raise (Error ("unterminated comment", !line));
    if src.[!pos] = '*' && src.[!pos + 1] = '/' then pos := !pos + 2
    else (
      if src.[!pos] = '\n' then incr line;
      incr pos;
      skip_block_comment ())
  in
  let read_line_rest () =
    let start = !pos in
    while !pos < n && src.[!pos] <> '\n' do
      incr pos
    done;
    String.sub src start (!pos - start)
  in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then (
      incr line;
      incr pos)
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '/' && peek 1 = Some '/' then ignore (read_line_rest ())
    else if c = '/' && peek 1 = Some '*' then (
      pos := !pos + 2;
      skip_block_comment ())
    else if c = '#' then begin
      let rest = read_line_rest () in
      let words =
        String.split_on_char ' ' rest
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun w -> w <> "")
      in
      match words with
      | "#pragma" :: "gpcc" :: tail -> emit (PRAGMA tail)
      | _ -> raise (Error ("unrecognized directive: " ^ rest, !line))
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      let word = String.sub src start (!pos - start) in
      if is_keyword word then emit (KW word) else emit (IDENT word)
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done;
      let is_float = ref false in
      if !pos < n && src.[!pos] = '.' then begin
        is_float := true;
        incr pos;
        while !pos < n && is_digit src.[!pos] do
          incr pos
        done
      end;
      if !pos < n && (src.[!pos] = 'e' || src.[!pos] = 'E') then begin
        is_float := true;
        incr pos;
        if !pos < n && (src.[!pos] = '+' || src.[!pos] = '-') then incr pos;
        while !pos < n && is_digit src.[!pos] do
          incr pos
        done
      end;
      let text = String.sub src start (!pos - start) in
      if !pos < n && src.[!pos] = 'f' then begin
        incr pos;
        emit (FLOAT (float_of_string text))
      end
      else if !is_float then emit (FLOAT (float_of_string text))
      else emit (INT (int_of_string text))
    end
    else begin
      let two =
        if !pos + 1 < n then Some (String.sub src !pos 2) else None
      in
      match two with
      | Some (("<=" | ">=" | "==" | "!=" | "&&" | "||" | "+=" | "-=" | "*=" | "/=" | "++") as p)
        ->
          emit (PUNCT p);
          pos := !pos + 2
      | _ -> (
          match c with
          | '(' | ')' | '[' | ']' | '{' | '}' | ';' | ',' | '.' | '+' | '-'
          | '*' | '/' | '%' | '<' | '>' | '=' | '!' | '?' | ':' | '&' ->
              emit (PUNCT (String.make 1 c));
              incr pos
          | _ ->
              raise
                (Error (Printf.sprintf "unexpected character %c" c, !line)))
    end
  done;
  emit EOF;
  List.rev !toks

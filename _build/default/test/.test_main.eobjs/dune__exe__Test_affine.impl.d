test/test_affine.ml: Affine Alcotest Gpcc_analysis Gpcc_ast List QCheck QCheck_alcotest Test Util

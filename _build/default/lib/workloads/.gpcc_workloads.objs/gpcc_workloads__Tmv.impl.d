lib/workloads/tmv.ml: Array Printf Workload

(** Memory-transaction formation for half-warp requests. *)

type tx = {
  tx_addr : int;  (** byte address of the transaction start *)
  tx_bytes : int;
}

(** Transactions for one half-warp global request. [addrs] are the byte
    addresses of the active lanes as [(lane, addr)] with lane in 0..15;
    [elt_bytes] is the per-lane access width. The strict G80 rule needs
    thread [k] at word [k] of an aligned segment (else every active lane
    pays a [min_tx]-byte transaction); the relaxed GT200 rule issues one
    transaction per distinct aligned segment, shrunk to the smallest
    covering power of two >= 32 B. *)
val global_request :
  Config.coalesce_rules ->
  min_tx:int ->
  elt_bytes:int ->
  (int * int) list ->
  tx list

(** Serialized cost (in conflict-free request units) of one half-warp
    shared-memory request; same-address lanes broadcast for free. *)
val shared_request : banks:int -> int list -> int

(** Memoized (transactions, bytes) of one half-warp request whose
    active lanes are the contiguous run [lane0 .. lane0+cnt-1] (lane0 in
    0..15) with byte addresses [addrs.(0..cnt-1)]. The result is keyed
    by the access pattern digest — addresses modulo the coarsest
    alignment the rules inspect — so identical patterns across blocks
    cost one table lookup. Transaction {e addresses} are not
    shift-invariant: callers recording the partition stream must use
    {!global_request} directly. *)
val request_cost :
  Config.coalesce_rules ->
  min_tx:int ->
  elt_bytes:int ->
  lane0:int ->
  cnt:int ->
  int array ->
  int * int

(** Cost digest for one full access plane (every half-warp group of a
    block's active lanes at one memory site). Per-group totals live in
    [pd_hw] ((ntx, bytes) pairs, groups ascending); [pd_layout] holds
    (offset-from-first-lane-address, bytes) per transaction in the exact
    order the reference backend emits them, so partition-stream
    recording replays against any live base address. *)
type plane_digest = {
  pd_nhw : int;  (** number of half-warp groups, [(n+15)/16] *)
  pd_hw : int array;  (** [2*pd_nhw]: per-group transactions, bytes *)
  pd_layout : int array;  (** [2*pd_ntx]: per-tx offset from lane 0, bytes *)
  pd_ntx : int;  (** total transactions across the plane *)
  pd_bytes : int;  (** total bytes across the plane *)
}

(** Memoized digest of a segmented-strided access plane of [n] lanes:
    half-warp group [q] covers lanes [16q .. 16q+cnt-1] whose byte
    addresses are [a0 + q*dd + t*d]; [rel0] is [a0] reduced modulo the
    memo granularity (in [0, g)). Both cost totals and the relative
    transaction layout are shift-invariant, so one digest serves every
    base address congruent to [rel0]. *)
val plane_cost :
  Config.coalesce_rules ->
  min_tx:int ->
  elt_bytes:int ->
  n:int ->
  rel0:int ->
  d:int ->
  dd:int ->
  plane_digest

val empty_digest : plane_digest
(** Sentinel for unfilled per-site digest caches (all fields zero). *)

val memo_granularity : min_tx:int -> elt_bytes:int -> int
(** The coarsest alignment the rules inspect: request cost and relative
    layout are invariant under address shifts by multiples of this. *)

val memo_hits : unit -> int
(** Pattern-cache hits across every worker domain, including domains
    that have since exited (bench reporting). *)

val memo_misses : unit -> int

val plane_memo_hits : unit -> int
(** Plane-digest cache hits across every worker domain. *)

val plane_memo_misses : unit -> int

val bump_hits : int -> unit
(** Credit hits taken by a caller-side cache layered over the memo. *)

val bump_plane_hits : int -> unit
(** Credit hits taken by a caller-side cache layered over the plane
    memo (per-site digest caches, closed-form loop replays). *)

(** SIMT interpreter for kernel thread blocks.

    A whole thread block executes in lockstep, one statement at a time,
    with an active-lane mask for divergence — the same discipline real warps
    follow, coarsened to block granularity (valid because cross-thread
    communication goes through shared memory between statements, and
    [__syncthreads] separates conflicting accesses in well-formed kernels).

    Per-lane values are stored in unboxed arrays ([float array]/[int
    array]) indexed by the linear thread id within the block. While
    executing, the interpreter feeds {!Stats}: dynamic warp instructions,
    per-lane flops, global-memory transactions formed by {!Coalescer},
    shared-memory bank-conflict serialization, syncs and divergence. *)

open Gpcc_ast
open Gpcc_analysis

exception Runtime_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

type vals =
  | VI of int array
  | VF of float array
  | VF2 of float array * float array
  | VF4 of float array * float array * float array * float array
  | VB of bool array

type entry =
  | Escalar of vals
  | Eshared of Layout.t * float array
  | Eglobal of Devmem.arr
  | Euniform of int  (** compile-time-bound int parameter *)

type bctx = {
  cfg : Config.t;
  stats : Stats.t;
  launch : Ast.launch;
  n : int;  (** threads per block *)
  warps : float;
  tidx : int array;
  tidy : int array;
  bidx : int;
  bidy : int;
  env : (string, entry) Hashtbl.t;
  record_tx : bool;
  mutable txparts : int list;
      (** partitions of issued transactions, most recent first, when
          [record_tx]; consumed by the partition-camping model *)
  check : bool;  (** dynamic race detection (GPCC_CHECK=1) *)
  mutable epoch : int;  (** barrier-interval counter for [check] *)
  shadow : (string, shadow) Hashtbl.t;
      (** per shared array: last write / read per element, as
          [(epoch, lane)]; lane [-2] marks multiple readers *)
}

and shadow = { sh_w : (int * int) array; sh_r : (int * int) array }

let inst (c : bctx) = c.stats.warp_insts <- c.stats.warp_insts +. c.warps

let flops (c : bctx) k =
  c.stats.flops <- c.stats.flops +. float_of_int k


(* --- dynamic race detection (GPCC_CHECK=1) ---

   Shadow state per shared-memory element: the last write and the last
   read, each tagged with the barrier-interval epoch it happened in.
   Two threads touching one element in the same epoch with at least one
   write is a race; reads by two distinct lanes collapse to lane [-2]
   (any same-epoch write to a multi-read element races). This mirrors
   the static verifier's barrier-interval rule at runtime. *)

let check_shared_load (c : bctx) arr lane o =
  match Hashtbl.find_opt c.shadow arr with
  | None -> ()
  | Some sh ->
      let wep, wl = sh.sh_w.(o) in
      if wep = c.epoch && wl <> lane then
        err
          "data race on shared %s[%d]: read by thread %d after write by \
           thread %d in the same barrier interval"
          arr o lane wl;
      let rep, rl = sh.sh_r.(o) in
      if rep <> c.epoch then sh.sh_r.(o) <- (c.epoch, lane)
      else if rl <> lane then sh.sh_r.(o) <- (c.epoch, -2)

let check_shared_store (c : bctx) arr lane o =
  match Hashtbl.find_opt c.shadow arr with
  | None -> ()
  | Some sh ->
      let wep, wl = sh.sh_w.(o) in
      if wep = c.epoch && wl <> lane then
        err
          "data race on shared %s[%d]: threads %d and %d both write in one \
           barrier interval"
          arr o wl lane;
      let rep, rl = sh.sh_r.(o) in
      if rep = c.epoch && (rl = -2 || rl <> lane) then
        err
          "data race on shared %s[%d]: write by thread %d after read by \
           thread %s in the same barrier interval"
          arr o lane
          (if rl = -2 then "(multiple)" else string_of_int rl);
      sh.sh_w.(o) <- (c.epoch, lane)

(* --- value helpers --- *)

let as_int (_c : bctx) = function
  | VI a -> a
  | VB a -> Array.map (fun b -> if b then 1 else 0) a
  | VF _ | VF2 _ | VF4 _ -> err "expected an int value"

let as_float (_c : bctx) = function
  | VF a -> a
  | VI a -> Array.map float_of_int a
  | VB _ | VF2 _ | VF4 _ -> err "expected a float value"

let as_bool = function
  | VB a -> a
  | VI a -> Array.map (fun i -> i <> 0) a
  | VF _ | VF2 _ | VF4 _ -> err "expected a boolean value"

(* --- memory accounting --- *)

(** Group active lanes into half warps and run [f] on each group, in
    increasing half-warp order with lanes ascending within a group.
    Masks are built in ascending lane order everywhere, so the groups
    are contiguous runs of the mask — one linear scan, no hashing; a
    (never expected) unsorted mask falls back to hash-grouping. *)
let iter_half_warps (mask : int array) (f : int list -> unit) =
  let n = Array.length mask in
  if n = 0 then ()
  else begin
    let ascending = ref true in
    for i = 1 to n - 1 do
      if mask.(i - 1) >= mask.(i) then ascending := false
    done;
    if !ascending then begin
      let i = ref 0 in
      while !i < n do
        let hw = mask.(!i) / 16 in
        let j = ref (!i + 1) in
        while !j < n && mask.(!j) / 16 = hw do
          incr j
        done;
        let lanes = ref [] in
        for t = !j - 1 downto !i do
          lanes := mask.(t) :: !lanes
        done;
        f !lanes;
        i := !j
      done
    end
    else begin
      let tbl = Hashtbl.create 8 in
      Array.iter
        (fun lane ->
          let hw = lane / 16 in
          Hashtbl.replace tbl hw
            (lane :: (try Hashtbl.find tbl hw with Not_found -> [])))
        mask;
      (* deterministic order *)
      Hashtbl.fold (fun hw lanes acc -> (hw, lanes) :: acc) tbl []
      |> List.sort compare
      |> List.iter (fun (_, lanes) -> f (List.rev lanes))
    end
  end

(** List-based accounting via {!Coalescer} — the reference semantics,
    used by the slow path and kept as executable documentation. *)
let account_global_slow (c : bctx) ~(is_store : bool) ~(elt_bytes : int)
    (mask : int array) (byte_addr : int -> int) =
  iter_half_warps mask (fun lanes ->
      let addrs =
        List.map (fun lane -> (lane mod 16, byte_addr lane)) lanes
      in
      let txs =
        Coalescer.global_request c.cfg.Config.coalesce_rules
          ~min_tx:c.cfg.Config.min_transaction_bytes ~elt_bytes addrs
      in
      let ntx = float_of_int (List.length txs) in
      let bytes =
        float_of_int (List.fold_left (fun a t -> a + t.Coalescer.tx_bytes) 0 txs)
      in
      let width_eff =
        if elt_bytes >= 16 then c.cfg.Config.bw_efficiency_16b
        else if elt_bytes >= 8 then c.cfg.Config.bw_efficiency_8b
        else 1.0
      in
      c.stats.cost_bytes <- c.stats.cost_bytes +. (bytes /. width_eff);
      if c.record_tx then
        List.iter
          (fun t ->
            let p =
              t.Coalescer.tx_addr / c.cfg.Config.partition_bytes
              mod c.cfg.Config.num_partitions
            in
            c.txparts <- p :: c.txparts)
          txs;
      if is_store then begin
        c.stats.gst_tx <- c.stats.gst_tx +. ntx;
        c.stats.gst_bytes <- c.stats.gst_bytes +. bytes;
        c.stats.gst_requests <- c.stats.gst_requests +. 1.
      end
      else begin
        c.stats.gld_tx <- c.stats.gld_tx +. ntx;
        c.stats.gld_bytes <- c.stats.gld_bytes +. bytes;
        c.stats.gld_requests <- c.stats.gld_requests +. 1.
      end)

(* Memory accounting runs once per access per half warp — it dominates
   simulation time on bandwidth-bound kernels. The fast path below walks
   the (always ascending) mask in contiguous half-warp runs and forms
   transactions in fixed 16-slot scratch arrays: same math, same
   first-touch emission order, no per-access allocation. *)

let account_global (c : bctx) ~(is_store : bool) ~(elt_bytes : int)
    (mask : int array) (byte_addr : int -> int) =
  let n = Array.length mask in
  if n = 0 then ()
  else begin
    let ascending = ref true in
    for i = 1 to n - 1 do
      if mask.(i - 1) >= mask.(i) then ascending := false
    done;
    if not !ascending then
      account_global_slow c ~is_store ~elt_bytes mask byte_addr
    else begin
      let cfg = c.cfg in
      let seg_bytes = 16 * elt_bytes in
      let width_eff =
        if elt_bytes >= 16 then cfg.Config.bw_efficiency_16b
        else if elt_bytes >= 8 then cfg.Config.bw_efficiency_8b
        else 1.0
      in
      (* scratch: lane addresses of one half warp, and its segments in
         first-touch order *)
      let addrs = Array.make 16 0 in
      let seg_s = Array.make 16 0 in
      let seg_lo = Array.make 16 0 in
      let seg_hi = Array.make 16 0 in
      let i = ref 0 in
      while !i < n do
        let hw = mask.(!i) / 16 in
        let j = ref (!i + 1) in
        while !j < n && mask.(!j) / 16 = hw do
          incr j
        done;
        let cnt = !j - !i in
        for t = 0 to cnt - 1 do
          addrs.(t) <- byte_addr mask.(!i + t)
        done;
        let emit tx_addr tx_bytes =
          if c.record_tx then begin
            let p =
              tx_addr / cfg.Config.partition_bytes
              mod cfg.Config.num_partitions
            in
            c.txparts <- p :: c.txparts
          end;
          tx_bytes
        in
        let ntx = ref 0 and bytes = ref 0 in
        (match cfg.Config.coalesce_rules with
        | Config.Strict_g80 ->
            let lane0 = mask.(!i) mod 16 in
            let base = addrs.(0) - (lane0 * elt_bytes) in
            let ok = ref (base mod seg_bytes = 0) in
            if !ok then
              for t = 0 to cnt - 1 do
                if addrs.(t) <> base + (mask.(!i + t) mod 16 * elt_bytes)
                then ok := false
              done;
            if !ok then begin
              ntx := 1;
              bytes := emit base seg_bytes
            end
            else begin
              let min_tx = cfg.Config.min_transaction_bytes in
              ntx := cnt;
              for t = 0 to cnt - 1 do
                bytes := !bytes + emit (addrs.(t) / min_tx * min_tx) min_tx
              done
            end
        | Config.Relaxed_gt200 ->
            let seg = if seg_bytes > 32 then seg_bytes else 32 in
            let nsegs = ref 0 in
            for t = 0 to cnt - 1 do
              let a = addrs.(t) in
              let s = a / seg * seg in
              let q = ref 0 in
              while !q < !nsegs && seg_s.(!q) <> s do
                incr q
              done;
              if !q < !nsegs then begin
                if a < seg_lo.(!q) then seg_lo.(!q) <- a;
                if a + elt_bytes > seg_hi.(!q) then
                  seg_hi.(!q) <- a + elt_bytes
              end
              else begin
                seg_s.(!nsegs) <- s;
                seg_lo.(!nsegs) <- a;
                seg_hi.(!nsegs) <- a + elt_bytes;
                incr nsegs
              end
            done;
            ntx := !nsegs;
            for q = 0 to !nsegs - 1 do
              (* shrink to the smallest aligned power-of-two >= 32B *)
              let lo = seg_lo.(q) and hi' = seg_hi.(q) - 1 in
              let size = ref seg in
              let continue = ref true in
              while !continue do
                let half = !size / 2 in
                if half >= 32 && lo / half = hi' / half then size := half
                else continue := false
              done;
              bytes := !bytes + emit (lo / !size * !size) !size
            done);
        let ntx = float_of_int !ntx and bytes = float_of_int !bytes in
        c.stats.cost_bytes <- c.stats.cost_bytes +. (bytes /. width_eff);
        if is_store then begin
          c.stats.gst_tx <- c.stats.gst_tx +. ntx;
          c.stats.gst_bytes <- c.stats.gst_bytes +. bytes;
          c.stats.gst_requests <- c.stats.gst_requests +. 1.
        end
        else begin
          c.stats.gld_tx <- c.stats.gld_tx +. ntx;
          c.stats.gld_bytes <- c.stats.gld_bytes +. bytes;
          c.stats.gld_requests <- c.stats.gld_requests +. 1.
        end;
        i := !j
      done
    end
  end

let account_shared_slow (c : bctx) (mask : int array) (word_addr : int -> int)
    =
  iter_half_warps mask (fun lanes ->
      let cost =
        Coalescer.shared_request ~banks:c.cfg.Config.shared_banks
          (List.map word_addr lanes)
      in
      c.stats.shared_ops <- c.stats.shared_ops +. 1.;
      if cost > 1 then
        c.stats.bank_extra <- c.stats.bank_extra +. float_of_int (cost - 1))

let account_shared (c : bctx) (mask : int array) (word_addr : int -> int) =
  let n = Array.length mask in
  if n = 0 then ()
  else begin
    let ascending = ref true in
    for i = 1 to n - 1 do
      if mask.(i - 1) >= mask.(i) then ascending := false
    done;
    if not !ascending then account_shared_slow c mask word_addr
    else begin
      let banks = c.cfg.Config.shared_banks in
      let words = Array.make 16 0 in
      let counts = Array.make banks 0 in
      let i = ref 0 in
      while !i < n do
        let hw = mask.(!i) / 16 in
        let j = ref (!i + 1) in
        while !j < n && mask.(!j) / 16 = hw do
          incr j
        done;
        let cnt = !j - !i in
        Array.fill counts 0 banks 0;
        for t = 0 to cnt - 1 do
          let w = word_addr mask.(!i + t) in
          words.(t) <- w;
          (* same-address lanes broadcast for free *)
          let dup = ref false in
          for t' = 0 to t - 1 do
            if words.(t') = w then dup := true
          done;
          if not !dup then begin
            let b = ((w mod banks) + banks) mod banks in
            counts.(b) <- counts.(b) + 1
          end
        done;
        let cost = Array.fold_left max 1 counts in
        c.stats.shared_ops <- c.stats.shared_ops +. 1.;
        if cost > 1 then
          c.stats.bank_extra <- c.stats.bank_extra +. float_of_int (cost - 1);
        i := !j
      done
    end
  end

(* --- expression evaluation --- *)

let lookup (c : bctx) v =
  match Hashtbl.find_opt c.env v with
  | Some e -> e
  | None -> err "unbound variable %s" v

let rec eval (c : bctx) (mask : int array) (e : Ast.expr) : vals =
  match e with
  | Int_lit k -> VI (Array.make c.n k)
  | Float_lit f -> VF (Array.make c.n f)
  | Builtin b -> eval_builtin c b
  | Var v -> (
      match lookup c v with
      | Escalar vs -> vs
      | Euniform k -> VI (Array.make c.n k)
      | Eshared _ | Eglobal _ -> err "array %s used as scalar" v)
  | Unop (Neg, a) -> (
      inst c;
      match eval c mask a with
      | VI x -> VI (map_mask mask x (fun v -> -v))
      | VF x ->
          flops c (Array.length mask);
          VF (map_mask_f mask x (fun v -> -.v))
      | VF2 (x, y) -> VF2 (map_mask_f mask x (fun v -> -.v), map_mask_f mask y (fun v -> -.v))
      | VF4 (x, y, z, w) ->
          VF4
            ( map_mask_f mask x (fun v -> -.v),
              map_mask_f mask y (fun v -> -.v),
              map_mask_f mask z (fun v -> -.v),
              map_mask_f mask w (fun v -> -.v) )
      | VB _ -> err "negation of a boolean")
  | Unop (Not, a) ->
      inst c;
      VB (map_mask_b mask (as_bool (eval c mask a)) not)
  | Binop (op, a, b) -> eval_binop c mask op a b
  | Index (arr, idxs) -> eval_load c mask arr idxs
  | Vload { v_arr; v_width; v_index } -> eval_vload c mask v_arr v_width v_index
  | Field (a, f) -> (
      match (eval c mask a, f) with
      | VF2 (x, _), FX -> VF x
      | VF2 (_, y), FY -> VF y
      | VF4 (x, _, _, _), FX -> VF x
      | VF4 (_, y, _, _), FY -> VF y
      | VF4 (_, _, z, _), FZ -> VF z
      | VF4 (_, _, _, w), FW -> VF w
      | _ -> err "bad vector field access")
  | Call (f, args) -> eval_call c mask f args
  | Select (cond, a, b) ->
      inst c;
      let bv = as_bool (eval c mask cond) in
      let va = eval c mask a and vb = eval c mask b in
      merge_select c mask bv va vb

and map_mask mask (src : int array) f =
  let out = Array.make (Array.length src) 0 in
  Array.iter (fun l -> out.(l) <- f src.(l)) mask;
  out

and map_mask_f mask (src : float array) f =
  let out = Array.make (Array.length src) 0.0 in
  Array.iter (fun l -> out.(l) <- f src.(l)) mask;
  out

and map_mask_b mask (src : bool array) f =
  let out = Array.make (Array.length src) false in
  Array.iter (fun l -> out.(l) <- f src.(l)) mask;
  out

and eval_builtin (c : bctx) (b : Ast.builtin) : vals =
  let l = c.launch in
  match b with
  | Tidx -> VI c.tidx
  | Tidy -> VI c.tidy
  | Bidx -> VI (Array.make c.n c.bidx)
  | Bidy -> VI (Array.make c.n c.bidy)
  | Bdimx -> VI (Array.make c.n l.block_x)
  | Bdimy -> VI (Array.make c.n l.block_y)
  | Gdimx -> VI (Array.make c.n l.grid_x)
  | Gdimy -> VI (Array.make c.n l.grid_y)
  | Idx ->
      let base = c.bidx * l.block_x in
      VI (Array.map (fun t -> base + t) c.tidx)
  | Idy ->
      let base = c.bidy * l.block_y in
      VI (Array.map (fun t -> base + t) c.tidy)

and eval_binop c mask op a b : vals =
  inst c;
  let va = eval c mask a and vb = eval c mask b in
  let bool_out f =
    let xa = as_float c va and xb = as_float c vb in
    let out = Array.make c.n false in
    Array.iter (fun l -> out.(l) <- f xa.(l) xb.(l)) mask;
    VB out
  in
  match op with
  | Add | Sub | Mul | Div -> (
      match (va, vb) with
      | VI x, VI y ->
          let f =
            match op with
            | Add -> ( + )
            | Sub -> ( - )
            | Mul -> ( * )
            | _ -> fun a b -> if b = 0 then err "division by zero" else a / b
          in
          let out = Array.make c.n 0 in
          Array.iter (fun l -> out.(l) <- f x.(l) y.(l)) mask;
          VI out
      | (VF2 _ | VF4 _), _ | _, (VF2 _ | VF4 _) -> (
          let fop =
            match op with
            | Add -> ( +. )
            | Sub -> ( -. )
            | Mul -> ( *. )
            | _ -> ( /. )
          in
          let comb x y =
            let out = Array.make c.n 0.0 in
            Array.iter (fun l -> out.(l) <- fop x.(l) y.(l)) mask;
            out
          in
          match (va, vb) with
          | VF2 (x1, y1), VF2 (x2, y2) ->
              flops c (2 * Array.length mask);
              VF2 (comb x1 x2, comb y1 y2)
          | VF4 (a1, b1, c1, d1), VF4 (a2, b2, c2, d2) ->
              flops c (4 * Array.length mask);
              VF4 (comb a1 a2, comb b1 b2, comb c1 c2, comb d1 d2)
          | _ -> err "mixed vector/scalar arithmetic")
      | _ ->
          let x = as_float c va and y = as_float c vb in
          let out = Array.make c.n 0.0 in
          flops c (Array.length mask);
          (match op with
          | Add -> Array.iter (fun l -> out.(l) <- x.(l) +. y.(l)) mask
          | Sub -> Array.iter (fun l -> out.(l) <- x.(l) -. y.(l)) mask
          | Mul -> Array.iter (fun l -> out.(l) <- x.(l) *. y.(l)) mask
          | _ -> Array.iter (fun l -> out.(l) <- x.(l) /. y.(l)) mask);
          VF out)
  | Mod -> (
      match (va, vb) with
      | VI x, VI y ->
          let out = Array.make c.n 0 in
          Array.iter
            (fun l ->
              if y.(l) = 0 then err "mod by zero";
              out.(l) <- ((x.(l) mod y.(l)) + y.(l)) mod y.(l))
            mask;
          VI out
      | _ -> err "%% on non-int values")
  | Lt -> bool_out ( < )
  | Le -> bool_out ( <= )
  | Gt -> bool_out ( > )
  | Ge -> bool_out ( >= )
  | Eq -> bool_out ( = )
  | Ne -> bool_out ( <> )
  | And | Or ->
      let xa = as_bool va and xb = as_bool vb in
      let out = Array.make c.n false in
      let f = if op = And then ( && ) else ( || ) in
      Array.iter (fun l -> out.(l) <- f xa.(l) xb.(l)) mask;
      VB out

and flat_offsets (c : bctx) (mask : int array) (strides : int list)
    (idxs : Ast.expr list) : int array =
  let offs = Array.make c.n 0 in
  List.iter2
    (fun idx stride ->
      let iv = as_int c (eval c mask idx) in
      Array.iter (fun l -> offs.(l) <- offs.(l) + (iv.(l) * stride)) mask)
    idxs strides;
  offs

and eval_load (c : bctx) (mask : int array) arr idxs : vals =
  inst c;
  match lookup c arr with
  | Eglobal g ->
      let strides = Layout.strides g.Devmem.lay in
      if List.length idxs <> List.length strides then
        err "rank mismatch accessing %s" arr;
      let offs = flat_offsets c mask strides idxs in
      let data = g.Devmem.data in
      let len = Bigarray.Array1.dim data in
      let out = Array.make c.n 0.0 in
      Array.iter
        (fun l ->
          let o = offs.(l) in
          if o < 0 || o >= len then
            err "out-of-bounds load %s[%d] (size %d)" arr o len;
          out.(l) <- data.{o})
        mask;
      account_global c ~is_store:false ~elt_bytes:4 mask (fun l ->
          g.Devmem.base + (offs.(l) * 4));
      VF out
  | Eshared (lay, data) ->
      let strides = Layout.strides lay in
      if List.length idxs <> List.length strides then
        err "rank mismatch accessing shared %s" arr;
      let offs = flat_offsets c mask strides idxs in
      let len = Array.length data in
      let out = Array.make c.n 0.0 in
      Array.iter
        (fun l ->
          let o = offs.(l) in
          if o < 0 || o >= len then
            err "out-of-bounds shared load %s[%d] (size %d)" arr o len;
          if c.check then check_shared_load c arr l o;
          out.(l) <- data.(o))
        mask;
      account_shared c mask (fun l -> offs.(l));
      VF out
  | Escalar _ | Euniform _ -> err "%s is not an array" arr

and eval_vload (c : bctx) (mask : int array) arr width idx : vals =
  inst c;
  match lookup c arr with
  | Eglobal g ->
      let iv = as_int c (eval c mask idx) in
      let data = g.Devmem.data in
      let len = Bigarray.Array1.dim data in
      let get l k =
        let o = (iv.(l) * width) + k in
        if o < 0 || o >= len then
          err "out-of-bounds vector load %s[%d] (size %d)" arr o len;
        data.{o}
      in
      let comp k =
        let out = Array.make c.n 0.0 in
        Array.iter (fun l -> out.(l) <- get l k) mask;
        out
      in
      account_global c ~is_store:false ~elt_bytes:(4 * width) mask (fun l ->
          g.Devmem.base + (iv.(l) * width * 4));
      if width = 2 then VF2 (comp 0, comp 1)
      else VF4 (comp 0, comp 1, comp 2, comp 3)
  | _ -> err "vector load from non-global array %s" arr

and eval_call (c : bctx) (mask : int array) f args : vals =
  inst c;
  let unary g =
    match args with
    | [ a ] ->
        flops c (Array.length mask);
        VF (map_mask_f mask (as_float c (eval c mask a)) g)
    | _ -> err "%s expects one argument" f
  in
  let binary_f g =
    match args with
    | [ a; b ] ->
        flops c (Array.length mask);
        let x = as_float c (eval c mask a) and y = as_float c (eval c mask b) in
        let out = Array.make c.n 0.0 in
        Array.iter (fun l -> out.(l) <- g x.(l) y.(l)) mask;
        VF out
    | _ -> err "%s expects two arguments" f
  in
  match f with
  | "sqrtf" -> unary sqrt
  | "fabsf" -> unary Float.abs
  | "expf" -> unary exp
  | "logf" -> unary log
  | "sinf" -> unary sin
  | "cosf" -> unary cos
  | "fmaxf" -> binary_f Float.max
  | "fminf" -> binary_f Float.min
  | "min" | "max" -> (
      match args with
      | [ a; b ] ->
          let x = as_int c (eval c mask a) and y = as_int c (eval c mask b) in
          let g = if f = "min" then min else max in
          let out = Array.make c.n 0 in
          Array.iter (fun l -> out.(l) <- g x.(l) y.(l)) mask;
          VI out
      | _ -> err "%s expects two arguments" f)
  | "make_float2" -> (
      match args with
      | [ a; b ] ->
          VF2 (as_float c (eval c mask a), as_float c (eval c mask b))
      | _ -> err "make_float2 expects two arguments")
  | "make_float4" -> (
      match args with
      | [ a; b; d; e ] ->
          VF4
            ( as_float c (eval c mask a),
              as_float c (eval c mask b),
              as_float c (eval c mask d),
              as_float c (eval c mask e) )
      | _ -> err "make_float4 expects four arguments")
  | _ -> err "unknown intrinsic %s" f

and merge_select (c : bctx) mask (bv : bool array) va vb : vals =
  match (va, vb) with
  | VI x, VI y ->
      let out = Array.make c.n 0 in
      Array.iter (fun l -> out.(l) <- (if bv.(l) then x.(l) else y.(l))) mask;
      VI out
  | VB x, VB y ->
      let out = Array.make c.n false in
      Array.iter (fun l -> out.(l) <- (if bv.(l) then x.(l) else y.(l))) mask;
      VB out
  | _ ->
      let x = as_float c va and y = as_float c vb in
      let out = Array.make c.n 0.0 in
      Array.iter (fun l -> out.(l) <- (if bv.(l) then x.(l) else y.(l))) mask;
      VF out

(* --- statements --- *)

let fresh_vals (c : bctx) (s : Ast.scalar) : vals =
  match s with
  | Int -> VI (Array.make c.n 0)
  | Float -> VF (Array.make c.n 0.0)
  | Bool -> VB (Array.make c.n false)
  | Float2 -> VF2 (Array.make c.n 0.0, Array.make c.n 0.0)
  | Float4 ->
      VF4
        ( Array.make c.n 0.0,
          Array.make c.n 0.0,
          Array.make c.n 0.0,
          Array.make c.n 0.0 )

(** Write [src] into [dst] at the masked lanes, with int->float promotion. *)
let store_masked (c : bctx) mask (dst : vals) (src : vals) : unit =
  match (dst, src) with
  | VI d, (VI _ | VB _) ->
      let s = as_int c src in
      Array.iter (fun l -> d.(l) <- s.(l)) mask
  | VF d, _ ->
      let s = as_float c src in
      Array.iter (fun l -> d.(l) <- s.(l)) mask
  | VB d, _ ->
      let s = as_bool src in
      Array.iter (fun l -> d.(l) <- s.(l)) mask
  | VF2 (dx, dy), VF2 (sx, sy) ->
      Array.iter
        (fun l ->
          dx.(l) <- sx.(l);
          dy.(l) <- sy.(l))
        mask
  | VF4 (da, db, dc, dd), VF4 (sa, sb, sc, sd) ->
      Array.iter
        (fun l ->
          da.(l) <- sa.(l);
          db.(l) <- sb.(l);
          dc.(l) <- sc.(l);
          dd.(l) <- sd.(l))
        mask
  | _ -> err "incompatible assignment"

let rec exec_block (c : bctx) (mask : int array) (b : Ast.block) : unit =
  List.iter (exec_stmt c mask) b

and exec_stmt (c : bctx) (mask : int array) (s : Ast.stmt) : unit =
  match s with
  | Comment _ -> ()
  | Sync ->
      c.stats.syncs <- c.stats.syncs +. 1.;
      c.epoch <- c.epoch + 1;
      inst c
  | Global_sync -> ()  (* handled by Launch at grid level *)
  | Decl { d_name; d_ty = Scalar sc; d_init } ->
      let vs = fresh_vals c sc in
      Hashtbl.replace c.env d_name (Escalar vs);
      (match d_init with
      | Some e ->
          inst c;
          store_masked c mask vs (eval c mask e)
      | None -> ())
  | Decl { d_name; d_ty = Array ({ space = Shared; _ } as a); _ } ->
      if not (Hashtbl.mem c.env d_name) then begin
        let lay = Layout.make ~pad:false d_name a in
        let len = max 1 (Layout.size_elems lay) in
        Hashtbl.replace c.env d_name (Eshared (lay, Array.make len 0.0));
        if c.check then
          Hashtbl.replace c.shadow d_name
            {
              sh_w = Array.make len (-1, -1);
              sh_r = Array.make len (-1, -1);
            }
      end
  | Decl { d_name; d_ty = Array _; _ } ->
      err "declaration of non-shared array %s in kernel body" d_name
  | Assign (lv, e) -> exec_assign c mask lv e
  | If (cond, t, f) ->
      inst c;
      let bv = as_bool (eval c mask cond) in
      let tm = Array.of_list (List.filter (fun l -> bv.(l)) (Array.to_list mask)) in
      let fm =
        Array.of_list (List.filter (fun l -> not bv.(l)) (Array.to_list mask))
      in
      if Array.length tm > 0 && Array.length fm > 0 then
        c.stats.divergent_branches <- c.stats.divergent_branches +. 1.;
      if Array.length tm > 0 then exec_block c tm t;
      if Array.length fm > 0 then exec_block c fm f
  | For { l_var; l_init; l_limit; l_step; l_body } ->
      let vs = fresh_vals c Int in
      Hashtbl.replace c.env l_var (Escalar vs);
      inst c;
      store_masked c mask vs (eval c mask l_init);
      let iv = match vs with VI a -> a | _ -> assert false in
      let rec loop active =
        let lim = as_int c (eval c active l_limit) in
        let still =
          Array.of_list
            (List.filter (fun l -> iv.(l) < lim.(l)) (Array.to_list active))
        in
        inst c;
        (* condition test *)
        if Array.length still > 0 then begin
          exec_block c still l_body;
          let st = as_int c (eval c still l_step) in
          Array.iter (fun l -> iv.(l) <- iv.(l) + st.(l)) still;
          inst c;
          (* increment *)
          loop still
        end
      in
      loop mask

and exec_assign (c : bctx) mask (lv : Ast.lvalue) (e : Ast.expr) : unit =
  match lv with
  | Lvar v -> (
      inst c;
      let src = eval c mask e in
      match lookup c v with
      | Escalar dst -> store_masked c mask dst src
      | _ -> err "assignment to non-scalar %s" v)
  | Lfield (Lvar v, f) -> (
      inst c;
      let src = as_float c (eval c mask e) in
      match (lookup c v, f) with
      | Escalar (VF2 (x, _)), FX -> Array.iter (fun l -> x.(l) <- src.(l)) mask
      | Escalar (VF2 (_, y)), FY -> Array.iter (fun l -> y.(l) <- src.(l)) mask
      | Escalar (VF4 (x, _, _, _)), FX ->
          Array.iter (fun l -> x.(l) <- src.(l)) mask
      | Escalar (VF4 (_, y, _, _)), FY ->
          Array.iter (fun l -> y.(l) <- src.(l)) mask
      | Escalar (VF4 (_, _, z, _)), FZ ->
          Array.iter (fun l -> z.(l) <- src.(l)) mask
      | Escalar (VF4 (_, _, _, w)), FW ->
          Array.iter (fun l -> w.(l) <- src.(l)) mask
      | _ -> err "bad vector component assignment to %s" v)
  | Lfield _ -> err "unsupported field assignment"
  | Lvec { v_arr; v_width; v_index } -> (
      inst c;
      let iv = as_int c (eval c mask v_index) in
      match lookup c v_arr with
      | Eglobal g ->
          let data = g.Devmem.data in
          let len = Bigarray.Array1.dim data in
          let comps =
            match eval c mask e with
            | VF2 (x, y) when v_width = 2 -> [| x; y |]
            | VF4 (x, y, z, w) when v_width = 4 -> [| x; y; z; w |]
            | _ -> err "vector store width mismatch on %s" v_arr
          in
          Array.iter
            (fun l ->
              for q = 0 to v_width - 1 do
                let o = (iv.(l) * v_width) + q in
                if o < 0 || o >= len then
                  err "out-of-bounds vector store %s[%d] (size %d)" v_arr o
                    len;
                data.{o} <- comps.(q).(l)
              done)
            mask;
          account_global c ~is_store:true ~elt_bytes:(4 * v_width) mask
            (fun l -> g.Devmem.base + (iv.(l) * v_width * 4))
      | _ -> err "vector store to non-global array %s" v_arr)
  | Lindex (arr, idxs) -> (
      inst c;
      let src = as_float c (eval c mask e) in
      match lookup c arr with
      | Eglobal g ->
          let strides = Layout.strides g.Devmem.lay in
          let offs = flat_offsets c mask strides idxs in
          let data = g.Devmem.data in
          let len = Bigarray.Array1.dim data in
          Array.iter
            (fun l ->
              let o = offs.(l) in
              if o < 0 || o >= len then
                err "out-of-bounds store %s[%d] (size %d)" arr o len;
              data.{o} <- src.(l))
            mask;
          account_global c ~is_store:true ~elt_bytes:4 mask (fun l ->
              g.Devmem.base + (offs.(l) * 4))
      | Eshared (lay, data) ->
          let strides = Layout.strides lay in
          let offs = flat_offsets c mask strides idxs in
          let len = Array.length data in
          Array.iter
            (fun l ->
              let o = offs.(l) in
              if o < 0 || o >= len then
                err "out-of-bounds shared store %s[%d] (size %d)" arr o len;
              if c.check then check_shared_store c arr l o;
              data.(o) <- src.(l))
            mask;
          account_shared c mask (fun l -> offs.(l))
      | Escalar _ | Euniform _ -> err "%s is not an array" arr)

(* --- block-level driver --- *)

(** Build the execution context of one thread block. Thread linearization
    is row-major: lane = tidy*block_x + tidx, so consecutive lanes vary
    [tidx] first — matching CUDA's warp packing. *)
let env_check () =
  match Sys.getenv_opt "GPCC_CHECK" with
  | Some ("1" | "true") -> true
  | _ -> false

let make_bctx ?(record_tx = false) ?check (cfg : Config.t) (stats : Stats.t)
    (k : Ast.kernel) (launch : Ast.launch) (mem : Devmem.t) ~(bidx : int)
    ~(bidy : int) : bctx =
  let check = match check with Some b -> b | None -> env_check () in
  let n = launch.block_x * launch.block_y in
  let tidx = Array.init n (fun l -> l mod launch.block_x) in
  let tidy = Array.init n (fun l -> l / launch.block_x) in
  let env = Hashtbl.create 16 in
  List.iter
    (fun (p : Ast.param) ->
      match p.p_ty with
      | Array { space = Global; _ } ->
          Hashtbl.replace env p.p_name (Eglobal (Devmem.find_exn mem p.p_name))
      | Scalar Int -> (
          match List.assoc_opt p.p_name k.k_sizes with
          | Some v -> Hashtbl.replace env p.p_name (Euniform v)
          | None ->
              err "int parameter %s has no #pragma gpcc dim binding" p.p_name)
      | Scalar _ -> err "unsupported scalar parameter type for %s" p.p_name
      | Array _ -> err "non-global array parameter %s" p.p_name)
    k.k_params;
  {
    cfg;
    stats;
    launch;
    n;
    warps = float_of_int ((n + 31) / 32);
    tidx;
    tidy;
    bidx;
    bidy;
    env;
    record_tx;
    txparts = [];
    check;
    epoch = 1;
    shadow = Hashtbl.create 4;
  }

let full_mask (c : bctx) = Array.init c.n (fun i -> i)

(** Execute one thread block over [body] (which may be a phase of the
    kernel when [__global_sync] is present). *)
let run_block (c : bctx) (body : Ast.block) : unit =
  c.epoch <- c.epoch + 1;
  exec_block c (full_mask c) body

(** First-class optimization passes.

    Each pass of the paper's Figure 1 pipeline is a {!t} record: a
    stable name, the paper section it implements, an [applies] predicate
    (which may consult cached analyses and explains a refusal), the
    [transform] itself, and the pass's declared analysis dependencies
    ([uses]) and invalidations ([invalidates]). The pipeline driver in
    {!Gpcc_core.Pipeline} is generic over this record: it owns timing,
    translation validation, remark recording and analysis-cache
    bookkeeping, while the pass owns the decision logic — including the
    Section 3.5.3 merge-selection heuristics, which previously lived
    inline in the compiler driver.

    [invalidates] lists the analyses a {e fired} transform may change;
    everything else is carried forward in the {!Gpcc_analysis.Analysis_cache}
    to the transformed kernel without recomputation. Declarations are
    property-tested: a preserved analysis recomputed on the transformed
    kernel must equal the carried value. *)

open Gpcc_ast
module Cache = Gpcc_analysis.Analysis_cache

(** Per-compilation context a pass sees: the target machine, the two
    Section-4 knobs, and the analysis cache. *)
type ctx = {
  cfg : Gpcc_sim.Config.t;
  target_block_threads : int;  (** 128 / 256 / 512 (Section 4.1) *)
  merge_degree : int;  (** threads merged into one: 4 / 8 / 16 / 32 *)
  cache : Cache.t;
}

(** Outcome of [applies]: run the transform, or skip it with a reason
    (recorded as a declined remark). *)
type decision =
  | Applies
  | Declined of string

(** Provided by the pipeline driver to [transform]: [emit label k l f]
    runs [f k l] as one recorded sub-step — timed, translation-validated
    when it fires, cache bookkeeping applied — and returns its outcome.
    Multi-step passes (merge) call it once per sub-transform. *)
type emit =
  string ->
  Ast.kernel ->
  Ast.launch ->
  (Ast.kernel -> Ast.launch -> Pass_util.outcome) ->
  Pass_util.outcome

type t = {
  name : string;  (** stable registry id, e.g. ["merge"] *)
  label : string;  (** default human step label, e.g. ["vectorization"] *)
  section : string;  (** paper section implemented *)
  summary : string;  (** one line for [--print-pipeline] *)
  uses : Cache.kind list;  (** analyses consulted (served from the cache) *)
  invalidates : Cache.kind list;
      (** analyses a fired transform may change; the rest are carried
          forward to the transformed kernel *)
  applies : ctx -> Ast.kernel -> Ast.launch -> decision;
  transform : ctx -> emit -> Ast.kernel -> Ast.launch -> Ast.kernel * Ast.launch;
}

let preserved (p : t) : Cache.kind list =
  List.filter (fun k -> not (List.mem k p.invalidates)) Cache.all_kinds

let always _ _ _ = Applies

(* Most passes are a single sub-step around an existing [apply]. *)
let single label f : emit -> Ast.kernel -> Ast.launch -> Ast.kernel * Ast.launch
    =
 fun emit k l ->
  let o = emit label k l f in
  (o.Pass_util.kernel, o.Pass_util.launch)

(* --- Section 3.1: vectorization --- *)

let vectorize_wide : t =
  {
    name = "vectorize-wide";
    label = "wide vectorization (AMD)";
    section = "3.1";
    summary =
      "absorb neighboring work items into float2/float4 accesses \
       (AMD-style aggressive vectorization)";
    uses = [];
    invalidates = Cache.all_kinds;
    applies =
      (fun ctx _ _ ->
        if ctx.cfg.Gpcc_sim.Config.prefer_wide_vectors then Applies
        else Declined "target does not prefer wide vector accesses");
    transform =
      (fun _ctx emit k l ->
        let width = if l.Ast.grid_x mod 4 = 0 then 4 else 2 in
        single "wide vectorization (AMD)" (Vectorize_wide.apply ~width) emit k
          l);
  }

let vectorize : t =
  {
    name = "vectorize";
    label = "vectorization";
    section = "3.1";
    summary = "pair adjacent loads into float2 accesses";
    uses = [];
    invalidates = Cache.all_kinds;
    applies = always;
    transform = (fun _ctx emit k l -> single "vectorization" Vectorize.apply emit k l);
  }

(* --- Sections 3.2-3.3: coalescing --- *)

let coalesce : t =
  {
    name = "coalesce";
    label = "memory coalescing";
    section = "3.2-3.3";
    summary =
      "stage non-coalesced global accesses through shared memory \
       (loop/row/apron staging, idx/idy exchange)";
    uses = [ Cache.Affine; Cache.Coalesce ];
    invalidates = Cache.all_kinds;
    applies = always;
    transform =
      (fun _ctx emit k l -> single "memory coalescing" Coalesce.apply emit k l);
  }

(* --- Section 3.5: thread-block merge and thread merge --- *)

(* The Section 3.5.3 selection heuristics, over the cached Section 3.4
   sharing analysis: sharing caused by a global-to-shared access prefers
   thread-block merge (shared-memory reuse); sharing caused by a
   global-to-register access prefers thread merge (register reuse); and
   blocks that end up with too few threads are grown by thread-block
   merge even without sharing. *)

let sharing_facts ctx (k : Ast.kernel) (launch : Ast.launch) =
  let sharing = Cache.sharing ctx.cache ~launch k in
  let share_y_g2r =
    List.exists
      (fun s ->
        s.Gpcc_analysis.Sharing.share_y
        && s.role = Gpcc_analysis.Sharing.G2R)
      sharing
  in
  let share_y_g2s =
    List.exists
      (fun s ->
        s.Gpcc_analysis.Sharing.share_y
        && s.role = Gpcc_analysis.Sharing.G2S)
      sharing
  in
  let share_x_any =
    List.exists (fun s -> s.Gpcc_analysis.Sharing.share_x) sharing
  in
  (share_x_any, share_y_g2r, share_y_g2s)

let merge : t =
  {
    name = "merge";
    label = "thread/block merge";
    section = "3.5";
    summary =
      "grow blocks by thread-block merge and aggregate work items by \
       thread merge, selected per the Section 3.5.3 sharing rules";
    uses = [ Cache.Sharing ];
    invalidates = Cache.all_kinds;
    applies =
      (fun ctx k launch ->
        let _, share_y_g2r, share_y_g2s = sharing_facts ctx k launch in
        let bm =
          ctx.target_block_threads
          / max 1 (launch.Ast.block_x * launch.Ast.block_y)
        in
        let one_d =
          launch.Ast.grid_y = 1 && launch.Ast.grid_x > 1
          && min ctx.merge_degree launch.Ast.grid_x > 1
        in
        if bm > 1 || share_y_g2r || share_y_g2s || one_d then Applies
        else
          Declined
            "block already at the target thread count and no Y-direction \
             sharing or 1-D work to aggregate");
    transform =
      (fun ctx emit k launch ->
        let share_x_any, share_y_g2r, share_y_g2s =
          sharing_facts ctx k launch
        in
        let k = ref k and launch = ref launch in
        (* 1. thread-block merge along X: grow the block toward the target
           thread count; motivated by G2S X-sharing, and used even without
           sharing just to have enough threads per block. *)
        let bm =
          ctx.target_block_threads
          / max 1 (!launch.Ast.block_x * !launch.Ast.block_y)
        in
        let block_merge_fired =
          if bm > 1 then begin
            let o =
              emit
                (Printf.sprintf "thread-block merge X x%d" bm)
                !k !launch
                (fun k l -> Merge.block_merge_x k l bm)
            in
            k := o.kernel;
            launch := o.launch;
            o.fired
          end
          else true
        in
        (* 2. when block merge was blocked (per-sub-block staging, as in
           mv) but X-sharing exists, fall back to thread merge along X
           (register and shared reuse across the merged threads). *)
        if (not block_merge_fired) && share_x_any then begin
          let o =
            emit
              (Printf.sprintf "thread merge X x%d (block merge blocked)"
                 ctx.merge_degree)
              !k !launch
              (fun k l -> Merge.thread_merge Merge.X k l ctx.merge_degree)
          in
          k := o.kernel;
          launch := o.launch
        end;
        (* 3. Y-direction sharing: G2R prefers thread merge (paper's mm);
           G2S along Y would prefer a block merge, which our block merge
           does not implement along Y — thread merge still captures the
           reuse through replicated stagings, so it is used for both. *)
        if share_y_g2r || share_y_g2s then begin
          let o =
            emit
              (Printf.sprintf "thread merge Y x%d" ctx.merge_degree)
              !k !launch
              (fun k l -> Merge.thread_merge Merge.Y k l ctx.merge_degree)
          in
          k := o.kernel;
          launch := o.launch
        end
        else if
          !launch.Ast.grid_y = 1 && !launch.Ast.grid_x > 1
          && block_merge_fired
        then begin
          (* 1-D kernels without Y direction: give each thread more work
             along X (amortizes addressing and loop overhead; registers
             reused across the merged work items). *)
          let deg = min ctx.merge_degree !launch.Ast.grid_x in
          if deg > 1 then begin
            let o =
              emit
                (Printf.sprintf "thread merge X x%d (1-D)" deg)
                !k !launch
                (fun k l -> Merge.thread_merge Merge.X k l deg)
            in
            k := o.kernel;
            launch := o.launch
          end
        end;
        (!k, !launch));
  }

(* --- loop-invariant hoisting of the arithmetic merges replicate --- *)

let licm : t =
  {
    name = "licm";
    label = "invariant hoisting";
    section = "3.5";
    summary =
      "hoist loop-invariant thread-position arithmetic replicated by the \
       merges";
    uses = [];
    (* Hoisting only rebinds integer address arithmetic to names the
       affine machinery resolves, so the data-sharing summary and the
       coalescing verdict survive; the access table (whose contexts
       record the new bindings), register pressure and the verifier's
       view do not. Property-tested in test_pipeline. *)
    invalidates = [ Cache.Affine; Cache.Regcount; Cache.Verify ];
    applies = always;
    transform =
      (fun _ctx emit k l -> single "invariant hoisting" Licm.apply emit k l);
  }

(* --- Section 3.7: partition-camping elimination --- *)

let partition_camp : t =
  {
    name = "partition-camping";
    label = "partition-camping elimination";
    section = "3.7";
    summary =
      "rotate 1-D sweeps / diagonally reorder 2-D grids whose block \
       stride camps on one memory partition";
    uses = [ Cache.Affine ];
    invalidates = Cache.all_kinds;
    applies = always;
    transform =
      (fun ctx emit k l ->
        single "partition-camping elimination"
          (Partition_camp.apply ~cfg:ctx.cfg)
          emit k l);
  }

(* --- Section 3.6: data prefetching --- *)

let prefetch : t =
  {
    name = "prefetch";
    label = "data prefetching";
    section = "3.6";
    summary =
      "double-buffer global-to-shared loads through a register unless \
       the extra registers cost occupancy";
    uses = [ Cache.Regcount ];
    invalidates = Cache.all_kinds;
    applies = always;
    transform =
      (fun ctx emit k l ->
        single "data prefetching" (Prefetch.apply ~cfg:ctx.cfg) emit k l);
  }

(** The paper's Figure 1 pipeline, in the order the compiler runs it.
    Note the ordering deviation documented in {!Gpcc_core.Pipeline}:
    partition-camping elimination runs before prefetching because the
    1-D address-offset rotation introduces a computed index that
    prefetching must not advance past the array end. The [merge] pass
    implements both of Section 3.5's transforms (thread-block merge and
    thread merge), so the registry's seven records cover the paper's
    eight transformations. *)
let registry : t list =
  [ vectorize_wide; vectorize; coalesce; merge; licm; partition_camp; prefetch ]

let find (name : string) : t option =
  List.find_opt (fun p -> String.equal p.name name) registry

let names () : string list = List.map (fun p -> p.name) registry

(** Regional maxima (paper Table 1: "imregionmax", 26 LOC, 1k-4k): a pixel
    is a regional maximum when it is strictly greater than its 8
    neighbors. The input carries a 1-pixel border so the naive kernel
    reads its neighborhood unguarded. *)

let source n =
  let p = n + 2 in
  Printf.sprintf
    {|#pragma gpcc output out
__kernel void imregionmax(float a[%d][%d], float out[%d][%d]) {
  float c = a[idy + 1][idx + 1];
  float m = a[idy][idx];
  m = fmaxf(m, a[idy][idx + 1]);
  m = fmaxf(m, a[idy][idx + 2]);
  m = fmaxf(m, a[idy + 1][idx]);
  m = fmaxf(m, a[idy + 1][idx + 2]);
  m = fmaxf(m, a[idy + 2][idx]);
  m = fmaxf(m, a[idy + 2][idx + 1]);
  m = fmaxf(m, a[idy + 2][idx + 2]);
  out[idy][idx] = c > m ? 1.0 : 0.0;
}
|}
    p p n n

let inputs n =
  let p = n + 2 in
  [ ("a", Workload.gen ~seed:16 (p * p)) ]

let reference n input =
  let p = n + 2 in
  let a = input "a" in
  let at y x = a.((y * p) + x) in
  let out = Array.make (n * n) 0.0 in
  for y = 0 to n - 1 do
    for x = 0 to n - 1 do
      let c = at (y + 1) (x + 1) in
      let m = ref neg_infinity in
      for dy = 0 to 2 do
        for dx = 0 to 2 do
          if not (dy = 1 && dx = 1) then m := Float.max !m (at (y + dy) (x + dx))
        done
      done;
      out.((y * n) + x) <- (if c > !m then 1.0 else 0.0)
    done
  done;
  [ ("out", out) ]

let workload : Workload.t =
  {
    name = "imregionmax";
    description = "regional maxima of an image";
    source;
    inputs;
    reference;
    flops = (fun n -> 9.0 *. float_of_int (n * n));
    moved_bytes = (fun n -> 4.0 *. 2.0 *. float_of_int (n * n));
    sizes = [ 512; 1024; 2048 ];
    test_size = 64;
    bench_size = 1024;
    tolerance = 0.0;
    in_cublas = false;
  }

(** gpcc — the GPGPU optimizing compiler, as a command-line tool.

    Subcommands:
    - [compile FILE]: run the Figure-1 pipeline on a naive kernel and
      print the optimized kernel, the launch configuration, and the
      per-pass report;
    - [check FILE]: parse and type-check a kernel, report the coalescing
      verdict of every global access (Section 3.2's analysis);
    - [explore FILE]: generate the Section-4 design space, simulate every
      version, and print the scored table (exits non-zero when every
      candidate fails);
    - [lint FILE | --workloads]: run the static kernel verifier and
      report diagnostics (races, barrier divergence, bounds, bank
      conflicts, coalescing), humanly or as JSON;
    - [deploy FILE]: select one optimized version per GPU (Section 4.2);
    - [bench WORKLOAD]: compile a built-in workload and report
      naive/optimized simulated performance;
    - [list]: list the built-in workloads (the paper's Table 1). *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let gpu_conv =
  let parse s =
    match Gpcc_sim.Config.by_name s with
    | Some c -> Ok c
    | None -> Error (`Msg (Printf.sprintf "unknown GPU %S (try GTX8800 or GTX280)" s))
  in
  let print fmt (c : Gpcc_sim.Config.t) = Format.fprintf fmt "%s" c.name in
  Arg.conv (parse, print)

let gpu_arg =
  Arg.(
    value
    & opt gpu_conv Gpcc_sim.Config.gtx280
    & info [ "g"; "gpu" ] ~docv:"GPU" ~doc:"Target GPU model (GTX8800 or GTX280).")

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Kernel source file.")

let jobs_arg =
  Arg.(
    value
    & opt int (Gpcc_core.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the design-space sweep (defaults to \
           \\$(b,GPCC_JOBS) or the recommended domain count).")

let backend_conv =
  let parse s =
    match s with
    | "vector" | "vec" | "compiled" | "compile" | "ref" | "reference" -> Ok s
    | _ ->
        Error
          (`Msg
            (Printf.sprintf "unknown backend %S (vector, compiled, or reference)"
               s))
  in
  Arg.conv (parse, Format.pp_print_string)

let backend_arg =
  Arg.(
    value
    & opt (some backend_conv) None
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Simulator backend: $(b,vector) (default; executes a half-warp \
           at a time over flat per-register planes), $(b,compiled) \
           (per-thread OCaml closures), or $(b,reference) (tree-walking \
           interpreter). Equivalent to setting \\$(b,GPCC_BACKEND); all \
           backends are bit-identical.")

(** The simulator reads the backend from the environment at each run, so
    the flag just seeds it for this process. *)
let apply_backend = function
  | Some b -> Unix.putenv "GPCC_BACKEND" b
  | None -> ()

let handle_errors f =
  try f () with
  | Gpcc_ast.Lexer.Error (m, line) ->
      Printf.eprintf "lex error (line %d): %s\n" line m;
      exit 1
  | Gpcc_ast.Parser.Error (m, line) ->
      Printf.eprintf "parse error (line %d): %s\n" line m;
      exit 1
  | Gpcc_ast.Typecheck.Type_error m ->
      Printf.eprintf "type error: %s\n" m;
      exit 1
  | Gpcc_core.Pipeline.Compile_error m ->
      Printf.eprintf "compile error: %s\n" m;
      exit 1
  | Invalid_argument m ->
      Printf.eprintf "error: %s\n" m;
      exit 1

(* --- compile --- *)

let compile_cmd =
  let run cfg target degree verbose passes disabled print_pipeline
      remarks_json file =
    handle_errors (fun () ->
        let pipeline =
          let p =
            Gpcc_core.Pipeline.default ~cfg ~target_block_threads:target
              ~merge_degree:degree ()
          in
          let p =
            match passes with
            | Some names -> Gpcc_core.Pipeline.with_passes names p
            | None -> p
          in
          Gpcc_core.Pipeline.disable disabled p
        in
        if print_pipeline then
          print_string (Gpcc_core.Pipeline.describe pipeline)
        else begin
          let k = Gpcc_ast.Parser.kernel_of_string (read_file file) in
          let r = Gpcc_core.Pipeline.run ~pipeline k in
          if remarks_json then
            print_endline (Gpcc_core.Pipeline.remarks_json r)
          else begin
            if verbose then print_string (Gpcc_core.Pipeline.report r);
            print_string
              (Gpcc_ast.Pp.kernel_to_string ~launch:r.launch r.kernel)
          end
        end)
  in
  let target =
    Arg.(value & opt int 256 & info [ "t"; "threads" ] ~doc:"Target threads per block.")
  in
  let degree =
    Arg.(value & opt int 16 & info [ "m"; "merge" ] ~doc:"Thread-merge degree.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the per-pass report.")
  in
  let passes =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "passes" ] ~docv:"P1,P2,..."
          ~doc:
            "Run exactly these passes, in this order (registry names; see \
             $(b,--print-pipeline)).")
  in
  let disabled =
    Arg.(
      value & opt_all string []
      & info [ "disable-pass" ] ~docv:"PASS"
          ~doc:"Disable one pass by registry name (repeatable).")
  in
  let print_pipeline =
    Arg.(
      value & flag
      & info [ "print-pipeline" ]
          ~doc:
            "Print the resolved pass pipeline (names, paper sections, \
             analysis uses/invalidations) and exit without compiling.")
  in
  let remarks_json =
    Arg.(
      value & flag
      & info [ "remarks-json" ]
          ~doc:
            "Emit the structured per-pass optimization remarks (fired, \
             reason, before/after metrics, wall-clock) as one JSON document \
             instead of the optimized kernel.")
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Optimize a naive kernel")
    Term.(
      const run $ gpu_arg $ target $ degree $ verbose $ passes $ disabled
      $ print_pipeline $ remarks_json $ file_arg)

(* --- check --- *)

let check_cmd =
  let run file =
    handle_errors (fun () ->
        let k = Gpcc_ast.Parser.kernel_of_string (read_file file) in
        Gpcc_ast.Typecheck.check k;
        match Gpcc_passes.Pass_util.initial_launch k with
        | None ->
            print_endline "type check: OK (no thread domain; access analysis skipped)"
        | Some launch ->
            print_endline "type check: OK";
            Gpcc_analysis.Coalesce_check.analyze_kernel ~launch k
            |> List.iter (fun a ->
                   print_endline ("  " ^ Gpcc_analysis.Coalesce_check.to_string a)))
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Type-check a kernel and report coalescing verdicts")
    Term.(const run $ file_arg)

(* --- explore --- *)

let explore_cmd =
  let run cfg jobs backend prune threshold file =
    handle_errors (fun () ->
        apply_backend backend;
        let source = read_file file in
        let k = Gpcc_ast.Parser.kernel_of_string source in
        (* persist scores through the shared artifact store so repeated
           and concurrent invocations skip already-measured points; the
           prefix pins everything the score depends on besides the
           compiled kernel digest (appended by Explore itself) *)
        let cache = Gpcc_core.Explore_cache.open_dir () in
        let cache_prefix =
          Printf.sprintf "cli/%s/%s/%s" cfg.Gpcc_sim.Config.name
            (if prune then "funnel" else "occ")
            (Digest.to_hex (Digest.string source))
        in
        (* score by static occupancy x inverse instruction estimate when no
           workload data is attached; kernel versions are still printed *)
        let static_measure kernel launch =
          let regs = Gpcc_analysis.Regcount.estimate kernel in
          let shmem = Gpcc_analysis.Regcount.shared_bytes kernel in
          let occ =
            Gpcc_sim.Occupancy.calc cfg ~regs_per_thread:regs
              ~shared_per_block:shmem
              ~threads_per_block:(Gpcc_ast.Ast.threads_per_block launch)
          in
          float_of_int occ.active_warps
        in
        let cands, failures =
          if not prune then
            Gpcc_core.Explore.search_with_failures ~cfg ~jobs ~cache
              ~cache_prefix k ~measure:static_measure
          else begin
            (* --prune runs the model-guided funnel on the simulator over
               zero-initialized device memory (the tool has no workload
               inputs): analytic ranking on single-block probes, then
               successive halving on partial simulations *)
            let predict kernel launch =
              let mem = Gpcc_sim.Devmem.of_kernel kernel in
              let r = Gpcc_sim.Launch.run_block cfg kernel launch mem in
              let t = r.Gpcc_sim.Launch.timing in
              let occ = t.Gpcc_sim.Timing.occupancy in
              let probe =
                {
                  Gpcc_analysis.Cost_model.p_gflops = t.gflops;
                  p_bound = t.bound;
                  p_active_warps = occ.active_warps;
                  p_blocks_per_sm = occ.blocks_per_sm;
                  p_reg_spill = occ.reg_spill;
                  p_waves = t.waves;
                  p_total_blocks = Gpcc_ast.Ast.total_blocks launch;
                }
              in
              (Gpcc_analysis.Cost_model.predict probe).score
            in
            let measure ?blocks kernel launch =
              let mem = Gpcc_sim.Devmem.of_kernel kernel in
              (Gpcc_sim.Launch.run
                 ~mode:(Gpcc_sim.Launch.Sampled 1)
                 ~streams:3 ?block_budget:blocks cfg kernel launch mem)
                .timing
                .gflops
            in
            let budget_sensitive =
              List.length (Gpcc_sim.Launch.phases_of_body k.k_body) > 1
            in
            let cands, failures, stats =
              Gpcc_core.Explore.search_funnel ~cfg ~jobs ~cache
                ~cache_prefix ~prune_threshold:threshold ~budget_sensitive k
                ~predict ~measure
            in
            Printf.eprintf
              "funnel: %d configs, %d distinct, %d pruned by the model, %d \
               halving rungs (%d partial runs), %d fully measured, spearman \
               %.2f\n"
              stats.f_configs stats.f_distinct stats.f_pruned stats.f_rungs
              stats.f_partial_runs stats.f_measured stats.f_spearman;
            (cands, failures)
          end
        in
        let cands = Gpcc_core.Explore.distinct cands in
        List.iter
          (fun (f : Gpcc_core.Explore.failure) ->
            Printf.eprintf "failed t=%d m=%d (%s): %s\n" f.failed_target
              f.failed_degree
              (match f.failed_stage with
              | `Compile -> "compile"
              | `Verify -> "verify"
              | `Predict -> "predict"
              | `Measure -> "measure")
              f.reason)
          failures;
        let usable =
          List.filter
            (fun (c : Gpcc_core.Explore.candidate) ->
              c.score > Float.neg_infinity)
            cands
        in
        if usable = [] then begin
          Printf.eprintf
            "explore: every candidate failed (%d compile/verify, %d \
             unusable scores)\n"
            (List.length failures)
            (List.length cands);
          exit 1
        end;
        Printf.printf "%-8s %-8s %-10s %-14s %-8s\n" "threads" "merge" "score"
          "provenance" "launch";
        List.iter
          (fun (c : Gpcc_core.Explore.candidate) ->
            Printf.printf "%-8d %-8d %-10.1f %-14s (%d,%d)x(%d,%d)\n"
              c.target_block_threads c.merge_degree c.score
              (match c.provenance with
              | `Measured -> "measured"
              | `Halved r -> Printf.sprintf "halved@%d" r
              | `Pruned -> "pruned"
              | `Predicted -> "predicted")
              c.result.launch.grid_x c.result.launch.grid_y
              c.result.launch.block_x c.result.launch.block_y)
          cands)
  in
  let prune =
    Arg.(
      value
      & vflag false
          [
            ( true,
              info [ "prune" ]
                ~doc:
                  "Score candidates with the model-guided funnel (analytic \
                   pre-ranking on single-block simulator probes, successive \
                   halving on partial simulations, full measurement of the \
                   finalists) instead of the static occupancy score. Device \
                   memory is zero-initialized." );
            ( false,
              info [ "no-prune" ]
                ~doc:"Static occupancy scoring of every candidate (default)."
            );
          ])
  in
  let threshold =
    Arg.(
      value
      & opt float Gpcc_core.Explore.default_prune_threshold
      & info [ "prune-threshold" ] ~docv:"FRACTION"
          ~doc:
            "With $(b,--prune): discard candidates whose predicted score is \
             below FRACTION of the best prediction (0 disables pruning, 1 \
             keeps only ties with the best).")
  in
  Cmd.v
    (Cmd.info "explore" ~doc:"Enumerate the design space of merge configurations")
    Term.(
      const run $ gpu_arg $ jobs_arg $ backend_arg $ prune $ threshold
      $ file_arg)


(* --- lint --- *)

let lint_cmd =
  let module V = Gpcc_analysis.Verify in
  let module SV = Gpcc_analysis.Symverify in
  (* one lint unit: kernel name, variant label, launch, diagnostics,
     and (with --symbolic) the parametric verdict, its decision at this
     launch, and whether it agrees with the concrete verdict *)
  let lint_kernel ~symbolic ~variant (k : Gpcc_ast.Ast.kernel)
      (launch : Gpcc_ast.Ast.launch) =
    let ds = V.check ~launch k in
    let sym =
      if not symbolic then None
      else
        let r = SV.check k in
        let decision, sym_errs =
          match SV.decide r launch with
          | `Clean -> ("clean", [])
          | `Errors es -> ("errors", es)
          | `Unknown _ -> ("unknown", [])
        in
        let conc_errs = V.errors ds in
        let agree =
          match decision with
          | "clean" -> conc_errs = []
          | "errors" ->
              (* same failure, same rule ids *)
              conc_errs <> []
              && List.for_all
                   (fun (e : V.diagnostic) ->
                     List.exists
                       (fun (c : V.diagnostic) -> String.equal c.rule e.rule)
                       conc_errs)
                   sym_errs
          | _ -> true (* unknown: the concrete fallback decides *)
        in
        Some (SV.verdict_to_string r.verdict, decision, agree)
    in
    (k.k_name, variant, launch, ds, sym)
  in
  let optimize cfg k =
    let pipeline = Gpcc_core.Pipeline.default ~cfg ~verify:false () in
    let r = Gpcc_core.Pipeline.run ~pipeline k in
    (r.kernel, r.launch)
  in
  let launch_of k =
    match Gpcc_passes.Pass_util.naive_launch k with
    | Some l -> Some l
    | None -> Gpcc_passes.Pass_util.initial_launch k
  in
  let results_of_file cfg optimized symbolic file =
    let k = Gpcc_ast.Parser.kernel_of_string (read_file file) in
    Gpcc_ast.Typecheck.check k;
    match launch_of k with
    | None ->
        Printf.eprintf "lint: cannot derive a launch configuration for %s\n"
          file;
        exit 1
    | Some launch ->
        if optimized then begin
          let k', l' = optimize cfg k in
          [ lint_kernel ~symbolic ~variant:"optimized" k' l' ]
        end
        else [ lint_kernel ~symbolic ~variant:"naive" k launch ]
  in
  let results_of_workloads cfg symbolic =
    let of_workload (w : Gpcc_workloads.Workload.t) =
      let k = Gpcc_workloads.Workload.parse w w.test_size in
      let naive =
        match launch_of k with
        | Some launch -> [ lint_kernel ~symbolic ~variant:"naive" k launch ]
        | None -> []
      in
      let k', l' = optimize cfg k in
      naive @ [ lint_kernel ~symbolic ~variant:"optimized" k' l' ]
    in
    let of_comparator (c : Gpcc_workloads.Cublas_sim.comparator) =
      let n = 64 in
      let k = Gpcc_workloads.Cublas_sim.kernel c n in
      [ lint_kernel ~symbolic ~variant:"cublas" k (c.c_launch n) ]
    in
    List.concat_map of_workload
      (Gpcc_workloads.Registry.all @ Gpcc_workloads.Registry.extras)
    @ List.concat_map of_comparator Gpcc_workloads.Cublas_sim.all
  in
  let emit_json results nerr nwarn =
    let result_json (name, variant, (l : Gpcc_ast.Ast.launch), ds, sym) =
      let sym_json =
        match sym with
        | None -> ""
        | Some (verdict, decision, agree) ->
            Printf.sprintf
              {|,"symbolic":{"verdict":"%s","decision":"%s","agree":%b}|}
              (V.json_escape verdict) (V.json_escape decision) agree
      in
      Printf.sprintf
        {|{"kernel":"%s","variant":"%s","launch":"(%d,%d)x(%d,%d)","diagnostics":%s%s}|}
        name variant l.grid_x l.grid_y l.block_x l.block_y
        (V.json_of_diagnostics ds) sym_json
    in
    Printf.printf
      {|{"schema":"gpcc-lint-v1","errors":%d,"warnings":%d,"results":[%s]}|}
      nerr nwarn
      (String.concat "," (List.map result_json results));
    print_newline ()
  in
  let emit_human results nerr nwarn =
    List.iter
      (fun (name, variant, (l : Gpcc_ast.Ast.launch), ds, sym) ->
        Printf.printf "%s (%s) at (%d,%d)x(%d,%d): %s\n" name variant
          l.grid_x l.grid_y l.block_x l.block_y
          (if ds = [] then "clean"
           else
             Printf.sprintf "%d error(s), %d warning(s)"
               (List.length (V.errors ds))
               (List.length (V.warnings ds)));
        (match sym with
        | None -> ()
        | Some (verdict, decision, agree) ->
            Printf.printf "  symbolic: %s -> %s at this launch%s\n" verdict
              decision
              (if agree then "" else "  ** DISAGREES with concrete verdict"));
        List.iter (fun d -> Printf.printf "  %s\n" (V.to_string d)) ds)
      results;
    Printf.printf "lint: %d error(s), %d warning(s)\n" nerr nwarn
  in
  let run cfg json optimized workloads symbolic file =
    handle_errors (fun () ->
        let results =
          if workloads then results_of_workloads cfg symbolic
          else
            match file with
            | Some f -> results_of_file cfg optimized symbolic f
            | None ->
                Printf.eprintf "lint: give a FILE or --workloads\n";
                exit 1
        in
        let all = List.concat_map (fun (_, _, _, ds, _) -> ds) results in
        let nerr = List.length (V.errors all)
        and nwarn = List.length (V.warnings all) in
        if json then emit_json results nerr nwarn
        else emit_human results nerr nwarn;
        let disagreements =
          List.filter
            (fun (_, _, _, _, sym) ->
              match sym with Some (_, _, false) -> true | _ -> false)
            results
        in
        if nerr > 0 || disagreements <> [] then exit 1)
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")
  in
  let optimized_arg =
    Arg.(
      value & flag
      & info [ "O"; "optimized" ]
          ~doc:"Lint the pipeline's optimized output instead of the input.")
  in
  let symbolic_arg =
    Arg.(
      value & flag
      & info [ "symbolic" ]
          ~doc:
            "Also run the launch-parametric symbolic verifier and report \
             its verdict and its agreement with the concrete verdict; \
             exit non-zero on any disagreement.")
  in
  let workloads_arg =
    Arg.(
      value & flag
      & info [ "workloads" ]
          ~doc:
            "Lint every built-in workload (naive and optimized) and the \
             CUBLAS comparator kernels instead of a file.")
  in
  let opt_file_arg =
    Arg.(
      value & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Kernel source file.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically verify kernels: data races, barrier divergence, \
          bounds, bank conflicts, coalescing")
    Term.(
      const run $ gpu_arg $ json_arg $ optimized_arg $ workloads_arg
      $ symbolic_arg $ opt_file_arg)

(* --- bench --- *)

let bench_cmd =
  let run cfg backend name size =
    handle_errors (fun () ->
        apply_backend backend;
        match Gpcc_workloads.Registry.find name with
        | None ->
            Printf.eprintf "unknown workload %s (see `gpcc list`)\n" name;
            exit 1
        | Some w ->
            let n = Option.value size ~default:w.bench_size in
            let k = Gpcc_workloads.Workload.parse w n in
            let nl = Option.get (Gpcc_passes.Pass_util.naive_launch k) in
            let tn = Gpcc_workloads.Workload.measure cfg w n k nl in
            let r =
              Gpcc_core.Pipeline.run
                ~pipeline:(Gpcc_core.Pipeline.default ~cfg ()) k
            in
            let topt = Gpcc_workloads.Workload.measure cfg w n r.kernel r.launch in
            (* flop-free kernels (transpose) report effective bandwidth *)
            let metric (t : Gpcc_sim.Timing.result) =
              if w.flops n > 0.0 then Printf.sprintf "%8.2f GFLOPS" t.gflops
              else
                Printf.sprintf "%8.2f GB/s"
                  (Gpcc_workloads.Workload.effective_bandwidth w n t)
            in
            Printf.printf "%s on %s, n=%d\n" w.name cfg.name n;
            Printf.printf "  naive:     %s (%s-bound)\n" (metric tn) tn.bound;
            Printf.printf "  optimized: %s (%s-bound)  speedup %.1fx\n"
              (metric topt) topt.bound
              (tn.time_ms /. Float.max 1e-9 topt.time_ms))
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD")
  in
  let size_arg =
    Arg.(value & opt (some int) None & info [ "n"; "size" ] ~doc:"Problem size.")
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"Simulate a built-in workload, naive vs optimized")
    Term.(const run $ gpu_arg $ backend_arg $ name_arg $ size_arg)

(* --- deploy --- *)

let deploy_cmd =
  let run file =
    handle_errors (fun () ->
        let k = Gpcc_ast.Parser.kernel_of_string (read_file file) in
        (* static scoring (occupancy-based), as in explore: deployment
           with measured scoring is what `bench` and the library API do *)
        let measure cfg kernel launch =
          let regs = Gpcc_analysis.Regcount.estimate kernel in
          let shmem = Gpcc_analysis.Regcount.shared_bytes kernel in
          let occ =
            Gpcc_sim.Occupancy.calc cfg ~regs_per_thread:regs
              ~shared_per_block:shmem
              ~threads_per_block:(Gpcc_ast.Ast.threads_per_block launch)
          in
          float_of_int occ.active_warps
        in
        let b =
          (* bundles persist through the artifact store: the key embeds
             the GPU list and the naive kernel text, the prefix the
             scoring mode *)
          Gpcc_core.Deploy.build_cached ~prefix:"cli/static-occupancy"
            ~gpus:
              [ Gpcc_sim.Config.gtx8800; Gpcc_sim.Config.gtx280;
                Gpcc_sim.Config.hd5870 ]
            ~measure k
        in
        print_string (Gpcc_core.Deploy.describe b))
  in
  Cmd.v
    (Cmd.info "deploy"
       ~doc:"Select one optimized version per GPU (Section 4.2)")
    Term.(const run $ file_arg)

(* --- cache --- *)

let cache_cmds =
  let module Store = Gpcc_util.Store in
  let dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Cache directory (default: \\$(b,GPCC_CACHE_DIR), else \
             $(b,_gpcc_cache) under the nearest enclosing project root).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")
  in
  let open_store dir = Store.open_root ?root:dir ~auto_gc:false () in
  let stats_cmd =
    let run dir json =
      handle_errors (fun () ->
          let s = open_store dir in
          let d = Store.disk_stats s in
          if json then begin
            let kind_json (k : Store.kind_stats) =
              Printf.sprintf {|{"kind":"%s","entries":%d,"bytes":%d}|}
                k.ks_kind k.ks_entries k.ks_bytes
            in
            Printf.printf
              {|{"schema":"gpcc-cache-v1","root":"%s","entries":%d,"bytes":%d,"tmp_files":%d,"kinds":[%s]}|}
              (Gpcc_analysis.Verify.json_escape (Store.root s))
              d.ds_entries d.ds_bytes d.ds_tmp_files
              (String.concat "," (List.map kind_json d.ds_kinds));
            print_newline ()
          end
          else begin
            Printf.printf "root: %s\n" (Store.root s);
            Printf.printf "entries: %d (%d bytes), %d stale tmp file(s)\n"
              d.ds_entries d.ds_bytes d.ds_tmp_files;
            List.iter
              (fun (k : Store.kind_stats) ->
                Printf.printf "  %-10s %6d entries  %10d bytes\n" k.ks_kind
                  k.ks_entries k.ks_bytes)
              d.ds_kinds
          end)
    in
    Cmd.v
      (Cmd.info "stats" ~doc:"Show artifact-store contents per kind")
      Term.(const run $ dir_arg $ json_arg)
  in
  let gc_cmd =
    let run dir json max_mb max_age =
      handle_errors (fun () ->
          let s = open_store dir in
          let max_bytes =
            match max_mb with
            | Some mb -> Some (mb * 1024 * 1024)
            | None -> Store.default_max_bytes ()
          in
          let g = Store.gc ?max_bytes ?max_age_s:max_age s in
          if json then begin
            Printf.printf
              {|{"schema":"gpcc-cache-gc-v1","live":%d,"live_bytes":%d,"evicted":%d,"evicted_bytes":%d,"swept_tmps":%d}|}
              g.gc_live g.gc_live_bytes g.gc_evicted g.gc_evicted_bytes
              g.gc_swept_tmps;
            print_newline ()
          end
          else
            Printf.printf
              "gc: %d live (%d bytes), %d evicted (%d bytes), %d stale tmp \
               file(s) swept\n"
              g.gc_live g.gc_live_bytes g.gc_evicted g.gc_evicted_bytes
              g.gc_swept_tmps)
    in
    let max_mb =
      Arg.(
        value
        & opt (some int) None
        & info [ "max-mb" ] ~docv:"MB"
            ~doc:
              "Evict least-recently-used entries until the store fits in MB \
               megabytes (default: \\$(b,GPCC_CACHE_MAX_MB), else no size \
               limit).")
    in
    let max_age =
      Arg.(
        value
        & opt (some float) None
        & info [ "max-age-s" ] ~docv:"SECONDS"
            ~doc:"Evict entries not touched for SECONDS (default: no limit).")
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:
           "Sweep stale temp files and evict by age/size (LRU); always safe \
            under concurrent readers and writers")
      Term.(const run $ dir_arg $ json_arg $ max_mb $ max_age)
  in
  let clear_cmd =
    let run dir kind =
      handle_errors (fun () -> Store.clear ?kind (open_store dir))
    in
    let kind_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "kind" ] ~docv:"KIND"
            ~doc:
              "Only delete entries of this kind (e.g. $(b,score), \
               $(b,verdict), $(b,pverdict), $(b,bundle)); default: \
               everything.")
    in
    Cmd.v
      (Cmd.info "clear" ~doc:"Delete cached artifacts")
      Term.(const run $ dir_arg $ kind_arg)
  in
  Cmd.group
    (Cmd.info "cache"
       ~doc:"Inspect and maintain the shared artifact store")
    [ stats_cmd; gc_cmd; clear_cmd ]

(* --- list --- *)

let list_cmd =
  let run () =
    List.iter
      (fun (w : Gpcc_workloads.Workload.t) ->
        Printf.printf "%-12s %-45s sizes %s\n" w.name w.description
          (String.concat "," (List.map string_of_int w.sizes)))
      (Gpcc_workloads.Registry.all @ Gpcc_workloads.Registry.extras)
  in
  Cmd.v (Cmd.info "list" ~doc:"List built-in workloads") Term.(const run $ const ())

let () =
  let doc = "an optimizing compiler for naive GPGPU kernels (PLDI 2010 reproduction)" in
  let man =
    [
      `S Manpage.s_environment;
      `P "$(b,GPCC_BACKEND) — simulator backend: $(b,vector) (default) \
          executes a half-warp at a time over flat per-register planes; \
          $(b,compiled) stages each kernel into per-thread OCaml closures \
          once per launch; $(b,ref) selects the tree-walking reference \
          interpreter. All three are bit-identical; kernels outside a \
          backend's subset fall back per run (vector, then compiled, then \
          reference). The $(b,--backend) flag on $(b,explore) and \
          $(b,bench) sets this for one invocation.";
      `P "$(b,GPCC_INTERP) — legacy spelling: $(b,ref) selects the \
          reference interpreter, any other value the compiled backend; \
          consulted only when $(b,GPCC_BACKEND) is unset.";
      `P "$(b,GPCC_JOBS) — worker domains for the design-space sweep and \
          parallel grid execution (default: recommended domain count).";
      `P "$(b,GPCC_CHECK) — enable the dynamic race checker (forces the \
          serial reference backend).";
      `P "$(b,GPCC_CACHE_DIR) — artifact-store directory (exploration \
          scores, verifier verdicts, deployment bundles). Default: \
          $(b,_gpcc_cache) under the nearest enclosing directory with a \
          $(b,dune-project) or $(b,.git) marker, so every invocation in a \
          project shares one cache; see $(b,gpcc cache).";
      `P "$(b,GPCC_CACHE_MAX_MB) — artifact-store size budget in \
          megabytes; when set, opening the store garbage-collects \
          least-recently-used entries down to the budget (also the \
          default for $(b,gpcc cache gc)).";
    ]
  in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "gpcc" ~version:"1.0.0" ~doc ~man)
          [ compile_cmd; check_cmd; explore_cmd; lint_cmd; deploy_cmd; bench_cmd;
            cache_cmds; list_cmd ]))

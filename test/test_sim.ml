(** Simulator tests: device memory, the coalescer's strict and relaxed
    rules, shared-memory bank conflicts, the SIMT interpreter's semantics
    (divergence, loops, shared memory, vectors, grid barriers), occupancy,
    and the timing model's monotonicity. *)

open Gpcc_ast
open Gpcc_sim
open Util

(* --- devmem --- *)

let test_devmem_roundtrip () =
  let k =
    parse_kernel
      "__kernel void f(float a[10][10], float o[16]) { o[idx] = a[0][0]; }"
  in
  let mem = Devmem.of_kernel k in
  let data = Array.init 100 float_of_int in
  Devmem.write mem "a" data;
  Alcotest.(check bool) "write/read round trip" true (Devmem.read mem "a" = data);
  (* padded pitch: logical row 1 starts at padded offset 16 *)
  let a = Devmem.find_exn mem "a" in
  Alcotest.(check int) "padded offset" 16 (Devmem.offset a [ 1; 0 ]);
  Alcotest.(check (float 0.0)) "padded storage" 10.0 a.Devmem.data.{16}

let test_devmem_bases_aligned () =
  let k =
    parse_kernel
      "__kernel void f(float a[100], float b[100], float o[16]) { o[idx] = a[0] + b[0]; }"
  in
  let mem = Devmem.of_kernel k in
  let a = Devmem.find_exn mem "a" and b = Devmem.find_exn mem "b" in
  Alcotest.(check int) "a base aligned" 0 (a.Devmem.base mod 256);
  Alcotest.(check int) "b base aligned" 0 (b.Devmem.base mod 256);
  Alcotest.(check bool) "disjoint" true (b.Devmem.base >= a.Devmem.base + 400)

let test_devmem_size_mismatch () =
  let k = parse_kernel "__kernel void f(float a[10], float o[16]) { o[idx] = a[0]; }" in
  let mem = Devmem.of_kernel k in
  match Devmem.write mem "a" (Array.make 11 0.0) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "size mismatch accepted"

(* --- coalescer --- *)

let lanes16 f = List.init 16 (fun l -> (l, f l))

let test_strict_coalesced () =
  let txs =
    Coalescer.global_request Config.Strict_g80 ~min_tx:32 ~elt_bytes:4
      (lanes16 (fun l -> 1024 + (4 * l)))
  in
  Alcotest.(check int) "one transaction" 1 (List.length txs);
  Alcotest.(check int) "64 bytes" 64 (List.hd txs).Coalescer.tx_bytes

let test_strict_misaligned_serializes () =
  let txs =
    Coalescer.global_request Config.Strict_g80 ~min_tx:32 ~elt_bytes:4
      (lanes16 (fun l -> 1028 + (4 * l)))
  in
  Alcotest.(check int) "16 transactions" 16 (List.length txs);
  Alcotest.(check int) "each pays min size" 32 (List.hd txs).Coalescer.tx_bytes

let test_strict_permuted_serializes () =
  (* same segment but wrong lane order: G80 still serializes *)
  let txs =
    Coalescer.global_request Config.Strict_g80 ~min_tx:32 ~elt_bytes:4
      (lanes16 (fun l -> 1024 + (4 * (15 - l))))
  in
  Alcotest.(check int) "16 transactions" 16 (List.length txs)

let test_relaxed_misaligned () =
  (* GT200: a misaligned half warp touches two segments, not sixteen *)
  let txs =
    Coalescer.global_request Config.Relaxed_gt200 ~min_tx:32 ~elt_bytes:4
      (lanes16 (fun l -> 1028 + (4 * l)))
  in
  Alcotest.(check int) "two segments" 2 (List.length txs)

let test_relaxed_uniform () =
  let txs =
    Coalescer.global_request Config.Relaxed_gt200 ~min_tx:32 ~elt_bytes:4
      (lanes16 (fun _ -> 2048))
  in
  Alcotest.(check int) "single segment" 1 (List.length txs);
  Alcotest.(check int) "shrunk to 32B" 32 (List.hd txs).Coalescer.tx_bytes

let test_relaxed_strided () =
  (* stride-2 floats span 128 bytes: two 64B segments, twice the traffic *)
  let txs =
    Coalescer.global_request Config.Relaxed_gt200 ~min_tx:32 ~elt_bytes:4
      (lanes16 (fun l -> 4096 + (8 * l)))
  in
  Alcotest.(check int) "two segments" 2 (List.length txs);
  Alcotest.(check int) "double traffic" 128
    (List.fold_left (fun a t -> a + t.Coalescer.tx_bytes) 0 txs)

let test_float2_coalesced () =
  let txs =
    Coalescer.global_request Config.Strict_g80 ~min_tx:32 ~elt_bytes:8
      (lanes16 (fun l -> 2048 + (8 * l)))
  in
  Alcotest.(check int) "one transaction" 1 (List.length txs);
  Alcotest.(check int) "128 bytes" 128 (List.hd txs).Coalescer.tx_bytes

let test_partial_halfwarp () =
  (* inactive lanes do not break the pattern when the active ones fit it *)
  let txs =
    Coalescer.global_request Config.Strict_g80 ~min_tx:32 ~elt_bytes:4
      (List.init 4 (fun l -> (l, 1024 + (4 * l))))
  in
  Alcotest.(check int) "still one transaction" 1 (List.length txs);
  (* but an active lane off-pattern serializes everyone *)
  let txs =
    Coalescer.global_request Config.Strict_g80 ~min_tx:32 ~elt_bytes:4
      [ (0, 1024); (1, 1028); (2, 1036) ]
  in
  Alcotest.(check int) "serialized" 3 (List.length txs)

(* --- banks --- *)

let test_banks_conflict_free () =
  Alcotest.(check int) "unit stride" 1
    (Coalescer.shared_request ~banks:16 (List.init 16 (fun l -> l)));
  Alcotest.(check int) "padded stride 17" 1
    (Coalescer.shared_request ~banks:16 (List.init 16 (fun l -> 17 * l)))

let test_banks_conflicts () =
  Alcotest.(check int) "stride 16: all one bank" 16
    (Coalescer.shared_request ~banks:16 (List.init 16 (fun l -> 16 * l)));
  Alcotest.(check int) "stride 2: pairs" 2
    (Coalescer.shared_request ~banks:16 (List.init 16 (fun l -> 2 * l)))

let test_banks_broadcast () =
  Alcotest.(check int) "same word broadcasts" 1
    (Coalescer.shared_request ~banks:16 (List.init 16 (fun _ -> 5)))

(* --- interpreter semantics --- *)

let launch1 ?(gx = 1) ?(gy = 1) ?(bx = 16) ?(by = 1) () =
  { Ast.grid_x = gx; grid_y = gy; block_x = bx; block_y = by }

let test_interp_arith () =
  let k =
    parse_kernel
      {|#pragma gpcc output o
__kernel void f(float o[16]) {
  float x = idx * 2 + 1;
  float y = x / 2.0;
  o[idx] = y - 0.5 + fmaxf(0.0, 1.0) + sqrtf(4.0);
}|}
  in
  let out, _ = run_full k (launch1 ()) [] "o" in
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "o[%d]" i)
        (float_of_int i +. 3.0)
        v)
    out

let test_interp_int_ops () =
  let k =
    parse_kernel
      {|#pragma gpcc output o
__kernel void f(float o[16]) {
  int a = idx % 3;
  int b = idx / 4;
  int c = min(a, b) + max(1, 2);
  o[idx] = c;
}|}
  in
  let out, _ = run_full k (launch1 ()) [] "o" in
  Array.iteri
    (fun i v ->
      let want = float_of_int (min (i mod 3) (i / 4) + 2) in
      Alcotest.(check (float 0.0)) (Printf.sprintf "o[%d]" i) want v)
    out

let test_interp_divergence () =
  let k =
    parse_kernel
      {|#pragma gpcc output o
__kernel void f(float o[16]) {
  float x = 0;
  if (idx % 2 == 0) {
    x = 1;
  } else {
    x = 2;
  }
  if (idx < 4) x = x + 10;
  o[idx] = x;
}|}
  in
  let out, r = run_full k (launch1 ()) [] "o" in
  Array.iteri
    (fun i v ->
      let base = if i mod 2 = 0 then 1.0 else 2.0 in
      let want = if i < 4 then base +. 10.0 else base in
      Alcotest.(check (float 0.0)) (Printf.sprintf "o[%d]" i) want v)
    out;
  Alcotest.(check bool) "divergence counted" true
    (r.Gpcc_sim.Launch.per_block.Gpcc_sim.Stats.divergent_branches >= 2.0)

let test_interp_loop_thread_dependent () =
  let k =
    parse_kernel
      {|#pragma gpcc output o
__kernel void f(float o[16]) {
  float s = 0;
  for (int i = 0; i < idx; i++)
    s += 1;
  o[idx] = s;
}|}
  in
  let out, _ = run_full k (launch1 ()) [] "o" in
  Array.iteri
    (fun i v -> Alcotest.(check (float 0.0)) "trip count" (float_of_int i) v)
    out

let test_interp_shared_memory () =
  (* reverse within a block through shared memory: exercises sync + banks *)
  let k =
    parse_kernel
      {|#pragma gpcc output o
__kernel void f(float a[16], float o[16]) {
  __shared__ float s[16];
  s[tidx] = a[idx];
  __syncthreads();
  o[idx] = s[15 - tidx];
}|}
  in
  let input = Array.init 16 (fun i -> float_of_int (i * i)) in
  let out, r = run_full k (launch1 ()) [ ("a", input) ] "o" in
  Array.iteri
    (fun i v -> Alcotest.(check (float 0.0)) "reversed" input.(15 - i) v)
    out;
  Alcotest.(check bool) "syncs counted" true
    (r.Gpcc_sim.Launch.per_block.Gpcc_sim.Stats.syncs >= 1.0)

let test_interp_vector_ops () =
  let k =
    parse_kernel
      {|#pragma gpcc output o
__kernel void f(float o[16]) {
  float2 v = make_float2(3.0, 4.0);
  float2 w = make_float2(1.0, 2.0);
  float2 u = v + w;
  u.x = u.x * 2;
  o[idx] = u.x + u.y;
}|}
  in
  let out, _ = run_full k (launch1 ()) [] "o" in
  Array.iter (fun v -> Alcotest.(check (float 1e-6)) "vector arith" 14.0 v) out

let test_interp_vload () =
  (* Vload built programmatically: o[idx] = a2[idx].x + a2[idx].y *)
  let k =
    parse_kernel
      {|#pragma gpcc output o
__kernel void f(float a[32], float o[16]) {
  o[idx] = a[2 * idx] + a[2 * idx + 1];
}|}
  in
  let launch = launch1 () in
  let o = Gpcc_passes.Vectorize.apply k launch in
  Alcotest.(check bool) "vectorizer fired" true o.fired;
  let input = Array.init 32 float_of_int in
  let out, r = run_full o.kernel launch [ ("a", input) ] "o" in
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 0.0)) "pair sum" (float_of_int (4 * i) +. 1.0) v)
    out;
  Alcotest.(check bool) "8-byte transactions" true
    (r.Gpcc_sim.Launch.per_block.Gpcc_sim.Stats.gld_bytes = 128.0)

let test_interp_multi_block_grid () =
  let k =
    parse_kernel
      {|#pragma gpcc output o
__kernel void f(float o[64][64]) {
  o[idy][idx] = idy * 64 + idx;
}|}
  in
  let out, _ =
    run_full k (launch1 ~gx:4 ~gy:4 ~bx:16 ~by:16 ()) [] "o"
  in
  Alcotest.(check int) "size" 4096 (Array.length out);
  Array.iteri
    (fun i v -> Alcotest.(check (float 0.0)) "identity" (float_of_int i) v)
    out

let test_interp_global_sync () =
  (* two phases: phase 2 reads what *other* blocks wrote in phase 1, and
     registers survive the barrier *)
  let k =
    parse_kernel
      {|#pragma gpcc output o
__kernel void f(float t[64], float o[64]) {
  float mine = idx;
  t[idx] = idx * 2;
  __global_sync();
  o[idx] = t[63 - idx] + mine;
}|}
  in
  let out, _ = run_full k (launch1 ~gx:4 ()) [] "o" in
  Array.iteri
    (fun i v ->
      Alcotest.(check (float 0.0)) "cross-block + live register"
        (float_of_int (((63 - i) * 2) + i))
        v)
    out

let test_interp_oob () =
  let k =
    parse_kernel
      {|#pragma gpcc output o
__kernel void f(float a[8], float o[32]) {
  o[idx] = a[idx];
}|}
  in
  (* a[8] pads to 16 elements; lanes 16..31 overrun even the padding *)
  match run_full k (launch1 ~bx:32 ()) [] "o" with
  | exception Gpcc_sim.Interp.Runtime_error _ -> ()
  | _ -> Alcotest.fail "out-of-bounds access not caught"

let test_interp_flop_count () =
  let k =
    parse_kernel
      {|#pragma gpcc output o
__kernel void f(float a[16], float o[16]) {
  o[idx] = a[idx] * 2.0 + 1.0;
}|}
  in
  let _, r = run_full k (launch1 ()) [] "o" in
  Alcotest.(check (float 0.0))
    "2 flops x 16 lanes" 32.0
    r.Gpcc_sim.Launch.per_block.Gpcc_sim.Stats.flops

(* --- occupancy --- *)

let test_occupancy_limits () =
  let occ ~regs ~shared ~tpb =
    Occupancy.calc cfg280 ~regs_per_thread:regs ~shared_per_block:shared
      ~threads_per_block:tpb
  in
  let o = occ ~regs:10 ~shared:0 ~tpb:256 in
  Alcotest.(check int) "thread-limited" 4 o.blocks_per_sm;
  let o = occ ~regs:10 ~shared:9000 ~tpb:128 in
  Alcotest.(check int) "shared-limited" 1 o.blocks_per_sm;
  Alcotest.(check string) "labeled" "shared-memory" o.limited_by;
  let o = occ ~regs:64 ~shared:0 ~tpb:256 in
  Alcotest.(check int) "register-limited" 1 o.blocks_per_sm;
  let o = occ ~regs:100 ~shared:0 ~tpb:512 in
  Alcotest.(check bool) "spill" true o.reg_spill

(* the cost model's pre-ranking keys on exactly these fields: the spill
   flag, the shared-memory limit label and the bound classification must
   stay trustworthy for the exploration funnel to prune safely *)
let test_occupancy_spill_classification () =
  let occ ~regs ~shared ~tpb =
    Occupancy.calc cfg280 ~regs_per_thread:regs ~shared_per_block:shared
      ~threads_per_block:tpb
  in
  (* 100 regs x 512 threads = 51200 > the 16384-register file: even one
     block does not fit, so the block still "runs" but spills *)
  let o = occ ~regs:100 ~shared:0 ~tpb:512 in
  Alcotest.(check bool) "spill flag" true o.reg_spill;
  Alcotest.(check int) "spilling block still scheduled" 1 o.blocks_per_sm;
  Alcotest.(check string) "spill label wins" "register-spill" o.limited_by;
  (* exact fit: 32 regs x 512 threads = 16384 — no spill *)
  let o = occ ~regs:32 ~shared:0 ~tpb:512 in
  Alcotest.(check bool) "exact fit is not a spill" false o.reg_spill;
  Alcotest.(check int) "exact fit runs one block" 1 o.blocks_per_sm;
  (* shared memory binds before registers or threads here *)
  let o = occ ~regs:10 ~shared:6000 ~tpb:64 in
  Alcotest.(check string) "shared label" "shared-memory" o.limited_by;
  Alcotest.(check int) "16KB / 6000B = 2 blocks" 2 o.blocks_per_sm

let test_timing_spill_slowdown () =
  let launch = launch1 ~gx:64 ~bx:512 () in
  let s = Stats.create () in
  s.Stats.warp_insts <- 1000.0;
  s.Stats.flops <- 10000.0;
  s.Stats.gld_bytes <- 1.0e6;
  s.Stats.gld_requests <- 100.0;
  let est regs =
    Timing.estimate cfg280 ~per_block:s ~launch ~regs_per_thread:regs
      ~shared_per_block:0 ~partition_eff:1.0 ~mlp:2.0
  in
  let fits = est 32 and spills = est 100 in
  Alcotest.(check string) "bound overridden" "register-spill" spills.bound;
  Alcotest.(check bool) "spill slows the kernel" true
    (spills.time_ms > fits.time_ms);
  Alcotest.(check bool) "no false spill" true (fits.bound <> "register-spill")

let test_timing_bound_classification () =
  let launch = launch1 ~gx:64 ~bx:256 () in
  let mk ~insts ~bytes ~requests =
    let s = Stats.create () in
    s.Stats.warp_insts <- insts;
    s.Stats.flops <- 1000.0;
    s.Stats.gld_bytes <- bytes;
    s.Stats.gld_requests <- requests;
    Timing.estimate cfg280 ~per_block:s ~launch ~regs_per_thread:16
      ~shared_per_block:0 ~partition_eff:1.0 ~mlp:1.0
  in
  Alcotest.(check string) "instruction-heavy" "compute"
    (mk ~insts:1.0e6 ~bytes:1.0e4 ~requests:10.0).bound;
  Alcotest.(check string) "byte-heavy" "memory"
    (mk ~insts:100.0 ~bytes:1.0e8 ~requests:100.0).bound;
  Alcotest.(check string) "request-heavy" "latency"
    (mk ~insts:100.0 ~bytes:1.0e4 ~requests:1.0e4).bound

let test_occupancy_8800_smaller () =
  let o280 =
    Occupancy.calc cfg280 ~regs_per_thread:32 ~shared_per_block:0
      ~threads_per_block:256
  in
  let o8800 =
    Occupancy.calc cfg8800 ~regs_per_thread:32 ~shared_per_block:0
      ~threads_per_block:256
  in
  Alcotest.(check bool) "smaller register file binds earlier" true
    (o8800.blocks_per_sm < o280.blocks_per_sm)

(* --- timing model --- *)

let test_timing_monotone_in_bytes () =
  let launch = launch1 ~gx:64 ~bx:256 () in
  let base = Stats.create () in
  base.Stats.warp_insts <- 1000.0;
  base.Stats.flops <- 10000.0;
  base.Stats.gld_bytes <- 1.0e6;
  base.Stats.gld_requests <- 100.0;
  let t1 =
    Timing.estimate cfg280 ~per_block:base ~launch ~regs_per_thread:16
      ~shared_per_block:1024 ~partition_eff:1.0 ~mlp:2.0
  in
  let more = Stats.scale 1.0 base in
  more.Stats.gld_bytes <- 4.0e6;
  let t2 =
    Timing.estimate cfg280 ~per_block:more ~launch ~regs_per_thread:16
      ~shared_per_block:1024 ~partition_eff:1.0 ~mlp:2.0
  in
  Alcotest.(check bool) "more bytes, more time" true (t2.time_ms >= t1.time_ms)

let test_timing_camping_penalty () =
  let launch = launch1 ~gx:64 ~bx:256 () in
  let s = Stats.create () in
  s.Stats.warp_insts <- 100.0;
  s.Stats.flops <- 1000.0;
  s.Stats.gld_bytes <- 1.0e6;
  s.Stats.gld_requests <- 100.0;
  let good =
    Timing.estimate cfg280 ~per_block:s ~launch ~regs_per_thread:16
      ~shared_per_block:0 ~partition_eff:1.0 ~mlp:2.0
  in
  let bad =
    Timing.estimate cfg280 ~per_block:s ~launch ~regs_per_thread:16
      ~shared_per_block:0 ~partition_eff:0.125 ~mlp:2.0
  in
  Alcotest.(check bool) "camping is slower" true (bad.time_ms > good.time_ms *. 4.0)

(* regression: a Full-mode block budget must run every partition-stream
   block, not just those inside the budget prefix — a thinned stream set
   biases partition_eff and once flipped a funnel winner (mv) *)
let test_full_budget_keeps_stream_set () =
  let k =
    parse_kernel
      {|#pragma gpcc output o
__kernel void f(float o[256][256]) {
  o[idx][idy] = idx + idy;
}|}
  in
  let launch = launch1 ~gx:16 ~gy:16 ~bx:16 ~by:16 () in
  let run budget =
    let mem = Devmem.of_kernel k in
    Launch.run ?block_budget:budget ~jobs:1 cfg280 k launch mem
  in
  let full = run None in
  (* 32 < the resident wave, so some stream blocks lie beyond the budget *)
  let budgeted = run (Some 32) in
  Alcotest.(check int) "statistics averaged over the budget prefix" 32
    budgeted.Launch.sampled_blocks;
  Alcotest.(check (float 0.0)) "partition_eff unbiased by the budget"
    full.Launch.partition_eff budgeted.Launch.partition_eff

let test_partition_efficiency_calc () =
  let same = [ [| 0; 0; 0 |]; [| 0; 0; 0 |]; [| 0; 0; 0 |]; [| 0; 0; 0 |] ] in
  let spread = [ [| 0; 1 |]; [| 2; 3 |]; [| 4; 5 |]; [| 6; 7 |] ] in
  Alcotest.(check (float 0.01)) "camped" 0.125
    (Gpcc_sim.Launch.partition_efficiency cfg280 same);
  Alcotest.(check (float 0.01)) "spread" 1.0
    (Gpcc_sim.Launch.partition_efficiency cfg280 spread)

let suite =
  let t n f = Alcotest.test_case n `Quick f in
  ( "sim",
    [
      t "devmem round trip" test_devmem_roundtrip;
      t "devmem base alignment" test_devmem_bases_aligned;
      t "devmem size mismatch" test_devmem_size_mismatch;
      t "strict: coalesced" test_strict_coalesced;
      t "strict: misaligned serializes" test_strict_misaligned_serializes;
      t "strict: permuted serializes" test_strict_permuted_serializes;
      t "relaxed: misaligned" test_relaxed_misaligned;
      t "relaxed: uniform" test_relaxed_uniform;
      t "relaxed: strided" test_relaxed_strided;
      t "float2 coalescing" test_float2_coalesced;
      t "partial half warp" test_partial_halfwarp;
      t "banks: conflict-free" test_banks_conflict_free;
      t "banks: conflicts" test_banks_conflicts;
      t "banks: broadcast" test_banks_broadcast;
      t "interp: arithmetic" test_interp_arith;
      t "interp: int ops" test_interp_int_ops;
      t "interp: divergence" test_interp_divergence;
      t "interp: thread-dependent loops" test_interp_loop_thread_dependent;
      t "interp: shared memory" test_interp_shared_memory;
      t "interp: vector load" test_interp_vload;
      t "interp: vector arithmetic" test_interp_vector_ops;
      t "interp: multi-block grid" test_interp_multi_block_grid;
      t "interp: global sync" test_interp_global_sync;
      t "interp: out of bounds" test_interp_oob;
      t "interp: flop counting" test_interp_flop_count;
      t "occupancy limits" test_occupancy_limits;
      t "occupancy: spill classification" test_occupancy_spill_classification;
      t "occupancy: 8800 vs 280" test_occupancy_8800_smaller;
      t "timing: spill slowdown" test_timing_spill_slowdown;
      t "timing: bound classification" test_timing_bound_classification;
      t "timing: bytes monotone" test_timing_monotone_in_bytes;
      t "timing: camping penalty" test_timing_camping_penalty;
      t "partition efficiency" test_partition_efficiency_calc;
      t "block budget keeps the stream set" test_full_budget_keeps_stream_set;
    ] )

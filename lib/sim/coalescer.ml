(** Memory-transaction formation.

    Global accesses are issued per half warp (16 threads). Under the G80
    strict rule a request coalesces into a single 64-byte (or 128-byte for
    8-byte elements) transaction only when thread [k] accesses word [k] of
    an aligned segment; otherwise every active lane pays a separate
    minimum-size transaction. Under the GT200 relaxed rule the hardware
    issues one transaction per distinct aligned segment touched.

    Shared-memory requests are checked against the 16 banks: the cost of a
    request is the maximum number of distinct addresses mapping to one bank
    (same-address lanes broadcast for free). *)

type tx = {
  tx_addr : int;  (** byte address of the transaction start *)
  tx_bytes : int;
}

(** Transactions for one half-warp global request.
    [addrs] are byte addresses of the *active* lanes (lane, addr) with
    lane in 0..15; [elt_bytes] is the access width per lane. *)
let global_request (rules : Config.coalesce_rules) ~(min_tx : int)
    ~(elt_bytes : int) (addrs : (int * int) list) : tx list =
  if addrs = [] then []
  else
    let seg_bytes = 16 * elt_bytes in
    match rules with
    | Config.Strict_g80 ->
        (* need every active lane k at base + k*elt, base aligned; the
           hardware checks the full half-warp pattern, so any deviation
           serializes all lanes *)
        let base = snd (List.hd addrs) - (fst (List.hd addrs) * elt_bytes) in
        let ok =
          base mod seg_bytes = 0
          && List.for_all
               (fun (lane, a) -> a = base + (lane * elt_bytes))
               addrs
        in
        if ok then [ { tx_addr = base; tx_bytes = seg_bytes } ]
        else
          List.map
            (fun (_, a) ->
              { tx_addr = a / min_tx * min_tx; tx_bytes = min_tx })
            addrs
    | Config.Relaxed_gt200 ->
        (* one transaction per distinct aligned segment; segment size is
           the smallest of 32/64/128 bytes covering the lanes in it. A
           half warp touches at most 16 segments (usually 1 or 2), so a
           small association list in first-touch order — the order the
           lanes issue them — beats hashing *)
        let seg = max 32 seg_bytes in
        let segs = ref [] in
        List.iter
          (fun (_, a) ->
            let s = a / seg * seg in
            match List.find_opt (fun (s', _, _) -> s' = s) !segs with
            | Some (_, lo, hi) ->
                lo := min !lo a;
                hi := max !hi (a + elt_bytes)
            | None -> segs := (s, ref a, ref (a + elt_bytes)) :: !segs)
          addrs;
        List.rev_map
          (fun (_s, lo, hi) ->
            (* shrink to the smallest aligned power-of-two region >= 32B *)
            let lo = !lo and hi' = !hi - 1 in
            let rec shrink size =
              let half = size / 2 in
              if half >= 32 && lo / half = hi' / half then shrink half
              else size
            in
            let size = shrink seg in
            { tx_addr = lo / size * size; tx_bytes = size })
          !segs

(** Cost in serialized cycles of one half-warp shared-memory request.
    [word_addrs] are the 4-byte word indices accessed by active lanes. *)
let shared_request ~(banks : int) (word_addrs : int list) : int =
  if word_addrs = [] then 0
  else begin
    (* at most 16 lanes per request: count distinct words per bank with
       a quadratic dedup scan instead of per-request hash tables *)
    let counts = Array.make banks 0 in
    let rec go seen = function
      | [] -> ()
      | w :: tl ->
          if List.mem w seen then go seen tl
          else begin
            let b = ((w mod banks) + banks) mod banks in
            counts.(b) <- counts.(b) + 1;
            go (w :: seen) tl
          end
    in
    go [] word_addrs;
    Array.fold_left max 1 counts
  end

(* --- memoized transaction counts ---

   Timing only needs (transactions, bytes) per half-warp request, and
   those are invariant under shifting every lane address by a multiple
   of the coarsest alignment the rules inspect: the G80 base-alignment
   check works modulo [16*elt_bytes], the GT200 segment split and
   power-of-two shrink work modulo the segment size (whose halves all
   divide it), and the uncoalesced fallback rounds to [min_tx]. So a
   request digest of (rules, widths, lanes, addresses mod granularity)
   keys a cache that turns the per-block recomputation of identical
   access patterns into one table lookup. Absolute transaction
   addresses are NOT shift-invariant, so partition-stream recording
   ([record_tx]) must bypass this path. *)

type mstate = {
  tbl : (int array, int * int) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let memo_mutex = Mutex.create ()

(* one state per worker domain (no lock on the hot path); the registry
   is only touched on domain-first-use and by the counter readers *)
let memo_states : mstate list ref = ref []

let memo_state : mstate Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s = { tbl = Hashtbl.create 256; hits = 0; misses = 0 } in
      Mutex.lock memo_mutex;
      memo_states := s :: !memo_states;
      Mutex.unlock memo_mutex;
      s)

let sum_states f =
  Mutex.lock memo_mutex;
  let v = List.fold_left (fun acc s -> acc + f s) 0 !memo_states in
  Mutex.unlock memo_mutex;
  v

let memo_hits () = sum_states (fun s -> s.hits)
let memo_misses () = sum_states (fun s -> s.misses)

(** Credit [n] hits taken by a caller-side cache layered over this memo
    (the vector backend's per-site stride cache). *)
let bump_hits n =
  let st = Domain.DLS.get memo_state in
  st.hits <- st.hits + n

(* patterns per launch are few (tens); the cap only guards degenerate
   address soups from e.g. fuzzed kernels *)
let memo_max = 8192

let request_cost (rules : Config.coalesce_rules) ~(min_tx : int)
    ~(elt_bytes : int) ~(lane0 : int) ~(cnt : int) (addrs : int array) :
    int * int =
  let st = Domain.DLS.get memo_state in
  let g =
    let s = max 32 (16 * elt_bytes) in
    if s mod min_tx = 0 then s else s * min_tx
  in
  let amin = ref addrs.(0) in
  for t = 1 to cnt - 1 do
    if addrs.(t) < !amin then amin := addrs.(t)
  done;
  let base = !amin / g * g in
  let key = Array.make (5 + cnt) 0 in
  key.(0) <- (match rules with Config.Strict_g80 -> 0 | Config.Relaxed_gt200 -> 1);
  key.(1) <- min_tx;
  key.(2) <- elt_bytes;
  key.(3) <- lane0;
  key.(4) <- cnt;
  for t = 0 to cnt - 1 do
    key.(5 + t) <- addrs.(t) - base
  done;
  match Hashtbl.find_opt st.tbl key with
  | Some r ->
      st.hits <- st.hits + 1;
      r
  | None ->
      st.misses <- st.misses + 1;
      let pairs =
        List.init cnt (fun t -> (lane0 + t, addrs.(t) - base))
      in
      let txs = global_request rules ~min_tx ~elt_bytes pairs in
      let ntx = List.length txs in
      let bytes = List.fold_left (fun a t -> a + t.tx_bytes) 0 txs in
      if Hashtbl.length st.tbl >= memo_max then Hashtbl.reset st.tbl;
      Hashtbl.add st.tbl key (ntx, bytes);
      (ntx, bytes)

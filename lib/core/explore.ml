(** Design-space exploration (paper Section 4).

    The number of threads per block (via thread-block merge) and the
    number of threads merged into one (via thread merge) interact
    non-linearly with occupancy and reuse, so — exactly like the paper —
    the compiler generates one kernel version per configuration and picks
    the best by empirically running each one (here: on the simulator; in
    the paper: on the GPU).

    The candidate space widens the paper's Section-4 grid: targets
    {!default_block_targets} and merge degrees {!default_merge_degrees}
    (see the mli for why).

    Two search strategies share the compile phase (every configuration
    compiled in parallel on a {!Pool}, kernels that compiled identically
    grouped by a digest of their printed text and scored once):

    - {!search_with_failures}: the paper's exhaustive sweep — every
      distinct version fully measured;
    - {!search_funnel}: the model-guided funnel — rank every version
      with a single-block probe through {!Gpcc_analysis.Cost_model},
      prune dominated predictions, run the survivors through successive
      halving on growing block budgets (partial simulation), and fully
      measure only the final rung.

    Per-candidate failures are isolated in both: a raising compile,
    probe or measurement is recorded, never aborting the sweep. *)

open Gpcc_ast
module Cost_model = Gpcc_analysis.Cost_model

type provenance =
  [ `Measured  (** fully measured (possibly served from the cache) *)
  | `Halved of int  (** eliminated at this halving rung (1-based);
                        score is the partial-simulation estimate *)
  | `Pruned  (** dominated at stage 1; score is the model prediction *)
  | `Predicted  (** score is the model prediction and no empirical run
                    happened (the probe failed, or halving was cut) *) ]

type candidate = {
  target_block_threads : int;
  merge_degree : int;
  result : Pipeline.result;
  score : float;  (** GFLOPS, higher is better; see [provenance] *)
  provenance : provenance;
}

type failure = {
  failed_target : int;
  failed_degree : int;
  failed_stage : [ `Compile | `Verify | `Predict | `Measure ];
  reason : string;
}

let default_block_targets = [ 16; 32; 64; 128; 256; 512 ]
let default_merge_degrees = [ 1; 4; 8; 16; 32 ]
let default_prune_threshold = 0.5

type funnel = {
  f_configs : int;  (** (target, degree) points compiled *)
  f_distinct : int;  (** distinct kernel versions (digest groups) *)
  f_predicted : int;  (** stage-1 probes (predictions computed) *)
  f_pruned : int;  (** groups discarded on the prediction alone *)
  f_rungs : int;  (** successive-halving rungs run *)
  f_partial_runs : int;
      (** partial-simulation measurements that actually executed (cache
          hits are not counted, so a warm replay reports 0) *)
  f_measured : int;  (** groups fully measured (the final rung) *)
  f_spearman : float;
      (** Spearman rank correlation of prediction vs the best empirical
          score, over the stage-1 survivors *)
}

(* phase-1 outcome for one (target, degree) configuration *)
type compiled = {
  c_target : int;
  c_degree : int;
  c_result : Pipeline.result;
  c_digest : string;  (** of the printed kernel + launch *)
}

(* cache keys embed the block budget so a partial-simulation estimate
   can never masquerade as a full measurement (and vice versa) *)
let full_key prefix digest = prefix ^ "|full|" ^ digest
let probe_key prefix digest = prefix ^ "|probe|" ^ digest

let rung_key prefix budget digest =
  Printf.sprintf "%s|b%d|%s" prefix budget digest

(* the [bool] reports a cache hit, so callers can count only the
   simulations that actually executed (e.g. [f_partial_runs]) *)
let cached_score cache key compute : float * bool =
  match Option.bind cache (fun c -> Explore_cache.find c key) with
  | Some s -> (s, true)
  | None ->
      let s = compute () in
      Option.iter (fun c -> Explore_cache.store c key s) cache;
      (s, false)

(* --- phase 1: compile every configuration ---------------------------- *)

let compile_all pool ~cfg configs naive :
    compiled list * failure list =
  (* symbolic pre-filter: one launch-parametric proof covers the whole
     grid, and a violation that provably fires at every launch with a
     config's block-thread product excludes that config before any
     compilation (the pipeline's verifier would reject it anyway) *)
  let sym =
    Gpcc_analysis.Analysis_cache.symbolic_result
      (Gpcc_analysis.Analysis_cache.domain ())
      naive
  in
  let configs, excluded =
    List.partition_map
      (fun (target, degree) ->
        match
          Gpcc_analysis.Symverify.excludes_threads sym ~threads:target
        with
        | None -> Left (target, degree)
        | Some rule ->
            Right
              {
                failed_target = target;
                failed_degree = degree;
                failed_stage = `Verify;
                reason =
                  Printf.sprintf
                    "symbolic verifier: %s fires at every launch with %d \
                     threads/block"
                    rule target;
              })
      configs
  in
  let compile (target, degree) =
    let pipeline =
      Pipeline.default ~cfg ~target_block_threads:target ~merge_degree:degree
        ()
    in
    let result = Pipeline.run ~pipeline naive in
    {
      c_target = target;
      c_degree = degree;
      c_result = result;
      c_digest =
        Digest.to_hex
          (Digest.string
             (Pp.kernel_to_string ~launch:result.launch result.kernel));
    }
  in
  let outcomes = List.combine configs (Pool.map_result pool compile configs) in
  let compiled, failures =
    List.fold_left
      (fun (cs, fs) ((target, degree), outcome) ->
        match outcome with
        | Ok c -> (c :: cs, fs)
        | Error e ->
            ( cs,
              {
                failed_target = target;
                failed_degree = degree;
                failed_stage =
                  (if Pipeline.verifier_rejected e then `Verify else `Compile);
                reason = Printexc.to_string e;
              }
              :: fs ))
      ([], []) outcomes
  in
  (List.rev compiled, excluded @ List.rev failures)

let configs_of block_targets merge_degrees =
  List.concat_map
    (fun target -> List.map (fun degree -> (target, degree)) merge_degrees)
    block_targets

(* group identical kernel versions: score each digest once *)
let distinct_reps (compiled : compiled list) : compiled list =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun c ->
      if Hashtbl.mem seen c.c_digest then false
      else begin
        Hashtbl.add seen c.c_digest ();
        true
      end)
    compiled

let failure_of (c : compiled) stage e =
  {
    failed_target = c.c_target;
    failed_degree = c.c_degree;
    failed_stage = stage;
    reason = Printexc.to_string e;
  }

let candidates_of compiled score_tbl =
  List.map
    (fun c ->
      let score, provenance = Hashtbl.find score_tbl c.c_digest in
      {
        target_block_threads = c.c_target;
        merge_degree = c.c_degree;
        result = c.c_result;
        score;
        provenance;
      })
    compiled

(* --- the exhaustive sweep (the paper's Section 4, verbatim) ---------- *)

let search_with_failures ?(cfg = Gpcc_sim.Config.gtx280)
    ?(block_targets = default_block_targets)
    ?(merge_degrees = default_merge_degrees) ?jobs ?cache
    ?(cache_prefix = "") (naive : Ast.kernel)
    ~(measure : Ast.kernel -> Ast.launch -> float) :
    candidate list * failure list =
  let configs = configs_of block_targets merge_degrees in
  Pool.with_pool ?jobs (fun pool ->
      let compiled, compile_failures = compile_all pool ~cfg configs naive in
      let reps = distinct_reps compiled in
      (* phase 2: score each distinct version, cache first *)
      let score_rep (c : compiled) : float =
        fst
          (cached_score cache
             (full_key cache_prefix c.c_digest)
             (fun () -> measure c.c_result.kernel c.c_result.launch))
      in
      let scored = Pool.map_result pool score_rep reps in
      let score_tbl = Hashtbl.create 16 in
      let measure_failures =
        List.concat
          (List.map2
             (fun rep outcome ->
               match outcome with
               | Ok s ->
                   Hashtbl.replace score_tbl rep.c_digest (s, `Measured);
                   []
               | Error e ->
                   Hashtbl.replace score_tbl rep.c_digest
                     (Float.neg_infinity, `Measured);
                   [ failure_of rep `Measure e ])
             reps scored)
      in
      ( candidates_of compiled score_tbl,
        compile_failures @ measure_failures ))

let search ?cfg ?block_targets ?merge_degrees ?jobs ?cache ?cache_prefix
    naive ~measure : candidate list =
  fst
    (search_with_failures ?cfg ?block_targets ?merge_degrees ?jobs ?cache
       ?cache_prefix naive ~measure)

(* --- the model-guided funnel: rank, halve, measure ------------------- *)

let search_funnel ?(cfg = Gpcc_sim.Config.gtx280)
    ?(block_targets = default_block_targets)
    ?(merge_degrees = default_merge_degrees) ?jobs ?cache
    ?(cache_prefix = "") ?(prune_threshold = default_prune_threshold)
    ?(budget_sensitive = true) (naive : Ast.kernel)
    ~(predict : Ast.kernel -> Ast.launch -> float)
    ~(measure : ?blocks:int -> Ast.kernel -> Ast.launch -> float) :
    candidate list * failure list * funnel =
  let configs = configs_of block_targets merge_degrees in
  Pool.with_pool ?jobs (fun pool ->
      let compiled, compile_failures = compile_all pool ~cfg configs naive in
      let reps = distinct_reps compiled in
      let failures = ref (List.rev compile_failures) in
      let fail c stage e = failures := failure_of c stage e :: !failures in
      let score_tbl : (string, float * provenance) Hashtbl.t =
        Hashtbl.create 16
      in
      let set c score prov = Hashtbl.replace score_tbl c.c_digest (score, prov) in
      (* stage 1 (rank): probe every distinct version once — a
         single-block simulation through the cost model — in parallel *)
      let probe (c : compiled) : float =
        fst
          (cached_score cache
             (probe_key cache_prefix c.c_digest)
             (fun () -> predict c.c_result.kernel c.c_result.launch))
      in
      let probed =
        List.map2
          (fun c outcome -> (c, outcome))
          reps
          (Pool.map_result pool probe reps)
      in
      let predictions =
        List.filter_map
          (fun (c, outcome) ->
            match outcome with
            | Ok p -> Some (c, p)
            | Error e ->
                (* a crashing probe means the kernel cannot run; score
                   it like the exhaustive sweep scores a crashing
                   measurement *)
                fail c `Predict e;
                set c Float.neg_infinity `Predicted;
                None)
          probed
      in
      let n_predicted = List.length predictions in
      let best_prediction =
        List.fold_left (fun b (_, p) -> Float.max b p) Float.neg_infinity
          predictions
      in
      let survivors, pruned =
        List.partition
          (fun (_, p) ->
            Cost_model.keep ~threshold:prune_threshold ~best:best_prediction p)
          predictions
      in
      List.iter (fun (c, p) -> set c p `Pruned) pruned;
      (* stage 2 (halve): growing block budgets, bottom half out at each
         rung; the final rung is the only full-grid measurement *)
      let n_partial = ref 0 in
      let n_rungs = ref 0 in
      (* best empirical estimate per digest, for the rank correlation *)
      let empirical : (string, float) Hashtbl.t = Hashtbl.create 16 in
      (* full-grid scores already obtained by a whole-grid-covering rung *)
      let full_scores : (string, float) Hashtbl.t = Hashtbl.create 16 in
      let max_blocks =
        List.fold_left
          (fun m (c, _) -> max m (Ast.total_blocks c.c_result.launch))
          1 survivors
      in
      let rec halve rung budget (survivors : (compiled * float) list) =
        if List.length survivors <= 2 || budget >= max_blocks then survivors
        else begin
          incr n_rungs;
          let measure_rung (c : compiled) =
            let total = Ast.total_blocks c.c_result.launch in
            let b = min budget total in
            (* a budget covering the candidate's whole grid IS the full
               measurement: store it under the full key, so the final
               stage (and the exhaustive sweep) hit instead of re-running *)
            let key =
              if b >= total then full_key cache_prefix c.c_digest
              else rung_key cache_prefix b c.c_digest
            in
            cached_score cache key (fun () ->
                measure ~blocks:b c.c_result.kernel c.c_result.launch)
          in
          let reps = List.map fst survivors in
          let outcomes = Pool.map_result pool measure_rung reps in
          (* count only rung simulations that executed: a cache hit ran
             nothing, an error means the measurement ran and raised *)
          List.iter
            (function
              | Ok (_, true) -> ()
              | Ok (_, false) | Error _ -> incr n_partial)
            outcomes;
          let scored =
            List.concat
              (List.map2
                 (fun c outcome ->
                   match outcome with
                   | Ok (s, _) ->
                       Hashtbl.replace empirical c.c_digest s;
                       if budget >= Ast.total_blocks c.c_result.launch then
                         Hashtbl.replace full_scores c.c_digest s;
                       [ (c, s) ]
                   | Error e ->
                       fail c `Measure e;
                       set c Float.neg_infinity (`Halved rung);
                       [])
                 reps outcomes)
          in
          let kept = Cost_model.halve scored in
          List.iter
            (fun (c, s) ->
              if not (List.exists (fun (k, _) -> k == c) kept) then
                set c s (`Halved rung))
            scored;
          halve (rung + 1)
            (Cost_model.next_budget ~total:max_blocks budget)
            kept
        end
      in
      (* when [measure]'s cost does not shrink with the budget (sampled
         single-phase simulation interprets a handful of blocks no
         matter what), a rung run costs as much as the full measurement
         it approximates: skip straight to stage 3 and fully measure
         every survivor — pruning is then the only saving, but no work
         is duplicated *)
      let finalists =
        if budget_sensitive then
          halve 1 (Cost_model.initial_budget ~total:max_blocks) survivors
        else survivors
      in
      (* stage 3 (measure): full-grid scores for the finalists, shared
         with — and cached under the same key as — the exhaustive sweep *)
      let measure_full (c : compiled) =
        match Hashtbl.find_opt full_scores c.c_digest with
        | Some s -> s
        | None ->
            fst
              (cached_score cache
                 (full_key cache_prefix c.c_digest)
                 (fun () -> measure c.c_result.kernel c.c_result.launch))
      in
      let finalist_reps = List.map fst finalists in
      let final_outcomes = Pool.map_result pool measure_full finalist_reps in
      List.iter2
        (fun c outcome ->
          match outcome with
          | Ok s ->
              Hashtbl.replace empirical c.c_digest s;
              set c s `Measured
          | Error e ->
              fail c `Measure e;
              set c Float.neg_infinity `Measured)
        finalist_reps final_outcomes;
      let spearman =
        Cost_model.spearman
          (List.filter_map
             (fun (c, p) ->
               Option.map (fun m -> (p, m)) (Hashtbl.find_opt empirical c.c_digest))
             survivors)
      in
      let stats =
        {
          f_configs = List.length configs;
          f_distinct = List.length reps;
          f_predicted = n_predicted;
          f_pruned = List.length pruned;
          f_rungs = !n_rungs;
          f_partial_runs = !n_partial;
          f_measured = List.length finalists;
          f_spearman = spearman;
        }
      in
      (candidates_of compiled score_tbl, List.rev !failures, stats))

(** Deduplicate candidates that compiled to the same kernel (different
    knobs can coincide), keeping the first. *)
let distinct (cands : candidate list) : candidate list =
  let seen = ref [] in
  List.filter
    (fun c ->
      let key = Pp.kernel_to_string ~launch:c.result.launch c.result.kernel in
      if List.mem key !seen then false
      else begin
        seen := key :: !seen;
        true
      end)
    cands

let best (cands : candidate list) : candidate option =
  List.fold_left
    (fun acc c ->
      match acc with
      | None -> Some c
      | Some b -> if c.score > b.score then Some c else acc)
    None cands

(** Winner of a funnel sweep: the best fully measured candidate. Scores
    with other provenances are estimates on a slightly different scale
    (predictions, partial simulations) and must not outrank an actual
    measurement. *)
let best_measured (cands : candidate list) : candidate option =
  match best (List.filter (fun c -> c.provenance = `Measured) cands) with
  | Some b when b.score > Float.neg_infinity -> Some b
  | _ -> best cands

(** One-call empirical search, as the paper's compiler does before
    emitting the final version. *)
let pick ?cfg ?block_targets ?merge_degrees ?jobs ?cache ?cache_prefix naive
    ~measure : candidate option =
  best
    (search ?cfg ?block_targets ?merge_degrees ?jobs ?cache ?cache_prefix
       naive ~measure)

(** The content-addressed artifact store: one persistent, concurrent-safe
    home for every durable result the compiler produces.

    The expensive part of GPGPU compilation is the search, and every
    stage of it is a pure function of its inputs: exploration scores,
    verifier verdicts (concrete and parametric), deployment bundles.
    Each used to keep its own hand-rolled single-writer cache; this
    module is the one implementation they all share, safe under many
    concurrent processes — the substrate the compile-service daemon
    serves a fleet from.

    {2 Layout}

    Entries live under a root directory, sharded by digest to keep any
    single directory small (a flat directory degrades on many
    filesystems past a few tens of thousands of entries):

    {v
    <root>/ab/cdef0123456789abcdef0123456789.<kind>
    <root>/.lock
    v}

    The 32-hex-digit name is the MD5 of (format version, kind name,
    codec version, key); the first two digits name the shard. The file
    itself stores a header line, the full key (guarding against digest
    collisions) and the codec-encoded payload, with byte lengths in the
    header so truncation is detected before any payload is decoded.

    {2 Concurrency}

    Entry writes go through a temp file (named with the writer's pid
    plus a random suffix, so a crashed writer can never collide with a
    later one) and an atomic [rename]; readers therefore always see a
    complete entry or none. On top of that, writers hold a {e shared}
    advisory lock on [<root>/.lock] (via [lockf]) while renaming, and
    the garbage collector holds the {e exclusive} lock while sweeping —
    so eviction can never race a rename into losing a fresh entry.
    Because POSIX record locks are per-process, the same protocol is
    mirrored in-process with a readers-writer monitor shared by every
    handle on the same root. Lock waits are counted in
    {!global_lock_contention}.

    {2 Eviction}

    [gc] reclaims three things: temp files older than a threshold
    (crashed writers), entries older than a maximum age, and — when the
    store exceeds a size budget — the least-recently-used entries until
    it fits. Recency is the entry file's mtime: a read hit touches the
    file, so the mtime is the LRU clock. An entry whose mtime is at or
    after the start of the GC pass is never evicted by that pass.

    {2 Versioning}

    The store format version and each kind's codec version participate
    in the digest, so a format or codec change orphans old entries
    rather than misreading them; orphans age out through the size/age
    GC (or [clear]). A file whose header doesn't parse, whose kind or
    version don't match its name, or whose lengths disagree with its
    size is corrupt (killed writer, full disk): it is deleted and
    reported as a miss, so the artifact is simply recomputed. A file
    storing a {e different} key (an MD5 collision) is kept and reported
    as a miss. *)

type t

(** {1 Kinds: typed codecs} *)

(** A kind is a typed namespace of artifacts: a file extension, a codec
    version and an encode/decode pair. *)
type 'a kind

val make_kind :
  name:string ->
  version:string ->
  encode:('a -> string) ->
  decode:(string -> 'a option) ->
  'a kind
(** [name] is the file extension (e.g. ["score"]) and must be non-empty,
    made of letters, digits, ['-'] and ['_']. [decode] returns [None] on
    any payload it cannot parse (the entry is then treated as corrupt:
    deleted and reported as a miss). *)

val kind_name : _ kind -> string

(** {1 Opening} *)

val resolve_root : ?cwd:string -> unit -> string
(** The directory the default store lives in: [$GPCC_CACHE_DIR] when set
    and non-empty; otherwise [_gpcc_cache] under the nearest enclosing
    directory (starting from [cwd], default [Sys.getcwd ()]) containing
    a [dune-project] or [.git] marker; otherwise [_gpcc_cache] under
    [cwd] itself. Anchoring at the project root keeps every invocation
    of the tools — from whatever subdirectory — on one shared cache
    instead of silently forking it per working directory. *)

val default_root : unit -> string
(** [resolve_root ()]. *)

val open_root : ?root:string -> ?auto_gc:bool -> unit -> t
(** Open (creating if needed) the store rooted at [root] (default
    {!default_root}). When [auto_gc] is [true] (the default) and
    [$GPCC_CACHE_MAX_MB] is set, the store is garbage-collected down to
    that budget if it exceeds it. *)

val root : t -> string

(** {1 Reading and writing} *)

val find : t -> 'a kind -> key:string -> 'a option
(** Look an artifact up by its full key. A hit touches the entry's
    mtime (the LRU clock) and counts in {!hits}/{!global_hits}; a miss,
    a digest collision or a corrupt entry (deleted) counts as a miss. *)

val store : t -> 'a kind -> key:string -> 'a -> unit
(** Persist an artifact (atomic tmp+rename under the shared lock).
    Losing a rename race to a concurrent writer is silently accepted:
    artifacts are content-addressed, so the racing value is
    equivalent. *)

(** {1 Inspection} *)

val entries : ?kind:string -> t -> int
(** Entry files on disk, optionally restricted to one kind. *)

type kind_stats = {
  ks_kind : string;
  ks_entries : int;
  ks_bytes : int;
}

type disk_stats = {
  ds_entries : int;
  ds_bytes : int;
  ds_tmp_files : int;
  ds_kinds : kind_stats list;  (** sorted by kind name *)
}

val disk_stats : t -> disk_stats

(** {1 Eviction} *)

type gc_stats = {
  gc_live : int;  (** entries kept *)
  gc_live_bytes : int;
  gc_evicted : int;  (** entries removed by the age or size policy *)
  gc_evicted_bytes : int;
  gc_swept_tmps : int;  (** stale temp files removed *)
}

val gc :
  ?max_bytes:int ->
  ?max_age_s:float ->
  ?tmp_ttl_s:float ->
  ?now:float ->
  t ->
  gc_stats
(** Collect garbage under the exclusive lock. Temp files older than
    [tmp_ttl_s] (default one hour) are always swept. Entries older than
    [max_age_s] (default: no age limit) are evicted; then, if the live
    set still exceeds [max_bytes] (default: [$GPCC_CACHE_MAX_MB], else
    no size limit), least-recently-used entries are evicted until it
    fits. Entries touched at or after the start of the pass ([now],
    default the current time — explicit only for tests) are never
    evicted. *)

val default_max_bytes : unit -> int option
(** [$GPCC_CACHE_MAX_MB] parsed to bytes, when set and positive. *)

val clear : ?kind:string -> t -> unit
(** Delete every entry (of one kind, or of all kinds plus stray temp
    and legacy files when [kind] is omitted). Holds the exclusive
    lock. *)

(** {1 Counters}

    Per-handle counters on [t], and process-global counters aggregated
    across every handle and domain (what the bench JSON reports). *)

val hits : t -> int
val misses : t -> int
val global_hits : unit -> int
val global_misses : unit -> int

val global_evictions : unit -> int
(** Entries evicted by [gc] (age or size policy; tmp sweeps and
    [clear] are not counted). *)

val global_lock_contention : unit -> int
(** Times a lock acquisition (in-process or on-disk) had to wait. *)

lib/passes/partition_camp.pp.mli: Gpcc_ast Gpcc_sim Pass_util

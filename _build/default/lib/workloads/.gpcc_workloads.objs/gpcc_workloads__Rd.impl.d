lib/workloads/rd.ml: Array Printf Workload

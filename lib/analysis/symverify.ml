(** Launch-parametric symbolic verifier.

    Where {!Verify} concretely enumerates a block's lanes per (kernel,
    launch) pair, this module analyzes {e two symbolic threads} s ≠ t of
    one block, with the block dimensions [(bx, by)] and grid dimensions
    [(gx, gy)] kept as symbolic parameters. Race, bounds and
    barrier-uniformity obligations are discharged by affine disequality
    reasoning (equal-stride cancellation, gcd/residue arguments on loop
    strides, modular lane arithmetic, guard-implied pinning) and by
    interval reasoning over {e launch polynomials} — polynomials in the
    four launch dimensions that bound every index expression.

    The verdict is parametric:
    - [Proved]: no error diagnostic at {e any} launch configuration;
    - [Proved_when c]: no error at launches satisfying the constraint
      [c] (a conjunction of monomial bounds such as [bx <= 64] or
      [gx*bx <= 4096]);
    - [Unknown]: the kernel uses a construct outside the symbolic
      fragment — callers fall back to the concrete {!Verify.check}, so
      soundness never regresses.

    Separately, [violations] lists configurations that {e certainly}
    fail (e.g. a modular lane store [s\[lane %% 64\]] races whenever
    [bx*by >= 65]); the design-space exploration prunes those without
    compiling them.

    The soundness contract is directional: whenever {!decide} returns
    [`Clean] for a launch, {!Verify.check} reports no error-severity
    diagnostic at that launch. The reverse direction goes through the
    concrete fallback, so the two tiers always agree. The proof
    over-approximates the concrete verifier's model: guards the
    concrete evaluator cannot decide are ignored rather than assumed,
    loop windows are widened to full iteration spaces, and accesses
    whose indices the concrete evaluator can never compute (opaque
    loads) are skipped exactly as the concrete race check skips them. *)

open Gpcc_ast

(* ------------------------------------------------------------------ *)
(* Constraint language: conjunctions of monomial bounds                 *)
(* ------------------------------------------------------------------ *)

module Constraint = struct
  type dim =
    | Bx
    | By
    | Gx
    | Gy

  let dim_name = function Bx -> "bx" | By -> "by" | Gx -> "gx" | Gy -> "gy"
  let dim_rank = function Bx -> 0 | By -> 1 | Gx -> 2 | Gy -> 3
  let compare_dim a b = compare (dim_rank a) (dim_rank b)

  (** A monomial is a sorted product of launch dimensions; [[]] is 1. *)
  type mono = dim list

  type atom = {
    a_mono : mono;
    a_cmp : [ `Le | `Ge ];
    a_k : int;
  }

  (** A conjunction of atoms. [[]] is the trivial constraint (true at
      every launch). *)
  type t = atom list

  let tt : t = []

  let mono_value (l : Ast.launch) (m : mono) : int =
    List.fold_left
      (fun acc d ->
        acc
        *
        match d with
        | Bx -> l.block_x
        | By -> l.block_y
        | Gx -> l.grid_x
        | Gy -> l.grid_y)
      1 m

  let atom_holds (l : Ast.launch) (a : atom) : bool =
    let v = mono_value l a.a_mono in
    match a.a_cmp with `Le -> v <= a.a_k | `Ge -> v >= a.a_k

  let holds (l : Ast.launch) (c : t) : bool = List.for_all (atom_holds l) c

  (** Keep the strongest atom per (monomial, direction). *)
  let normalize (c : t) : t =
    let keyed = Hashtbl.create 8 in
    List.iter
      (fun a ->
        let key = (a.a_mono, a.a_cmp) in
        match Hashtbl.find_opt keyed key with
        | Some k ->
            let k' =
              match a.a_cmp with `Le -> min k a.a_k | `Ge -> max k a.a_k
            in
            Hashtbl.replace keyed key k'
        | None -> Hashtbl.replace keyed key a.a_k)
      c;
    Hashtbl.fold
      (fun (a_mono, a_cmp) a_k acc -> { a_mono; a_cmp; a_k } :: acc)
      keyed []
    |> List.sort compare

  let conj (a : t) (b : t) : t = normalize (a @ b)

  let atom_to_string (a : atom) =
    let m =
      match a.a_mono with
      | [] -> "1"
      | m -> String.concat "*" (List.map dim_name m)
    in
    Printf.sprintf "%s %s %d" m
      (match a.a_cmp with `Le -> "<=" | `Ge -> ">=")
      a.a_k

  let to_string = function
    | [] -> "true"
    | c -> String.concat " && " (List.map atom_to_string c)

  (** An atom over the block-thread product [bx*by] alone, decidable
      from the thread count without knowing the block shape. *)
  let threads_atom (a : atom) : bool = a.a_mono = [ Bx; By ]

  let holds_at_threads ~(threads : int) (c : t) : bool =
    List.for_all
      (fun a ->
        threads_atom a
        && match a.a_cmp with `Le -> threads <= a.a_k | `Ge -> threads >= a.a_k)
      c
end

(* ------------------------------------------------------------------ *)
(* Launch polynomials: integer polynomials over bx, by, gx, gy          *)
(* ------------------------------------------------------------------ *)

(** Sorted association list from monomial to nonzero coefficient; the
    [[]] monomial carries the constant term. Launch dimensions are
    always >= 1, which is what makes one-sided comparisons decidable:
    a polynomial with nonnegative monomial coefficients is minimized at
    the all-ones launch. *)
type lpoly = (Constraint.mono * int) list

let lp_const (n : int) : lpoly = if n = 0 then [] else [ ([], n) ]
let lp_zero : lpoly = []
let lp_dim (d : Constraint.dim) : lpoly = [ ([ d ], 1) ]

let lp_add (a : lpoly) (b : lpoly) : lpoly =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (m, c) ->
      Hashtbl.replace tbl m (c + Option.value ~default:0 (Hashtbl.find_opt tbl m)))
    (a @ b);
  Hashtbl.fold (fun m c acc -> if c = 0 then acc else (m, c) :: acc) tbl []
  |> List.sort compare

let lp_scale (k : int) (a : lpoly) : lpoly =
  if k = 0 then [] else List.map (fun (m, c) -> (m, k * c)) a

let lp_sub a b = lp_add a (lp_scale (-1) b)

let lp_mul (a : lpoly) (b : lpoly) : lpoly =
  List.concat_map
    (fun (ma, ca) ->
      List.map
        (fun (mb, cb) ->
          (List.sort Constraint.compare_dim (ma @ mb), ca * cb))
        b)
    a
  |> List.fold_left (fun acc t -> lp_add acc [ t ]) []

let lp_is_const (p : lpoly) : int option =
  match p with
  | [] -> Some 0
  | [ ([], c) ] -> Some c
  | _ -> None

(** Exact division of every coefficient by a positive constant. *)
let lp_div_exact (p : lpoly) (c : int) : lpoly option =
  if c <= 0 then None
  else if List.for_all (fun (_, k) -> k mod c = 0) p then
    Some (List.map (fun (m, k) -> (m, k / c)) p)
  else None

(** Is [p >= 0] at every launch? Sufficient condition: every monomial
    coefficient nonnegative and the value at the all-ones launch
    nonnegative (the polynomial is then monotone in every dimension). *)
let lp_nonneg (p : lpoly) : bool =
  List.for_all (fun (m, c) -> m = [] || c >= 0) p
  && List.fold_left (fun acc (_, c) -> acc + c) 0 p >= 0

(** Alternative conditions under which [p <= q] holds at every launch
    satisfying them. Each element of the returned list is an
    independently sufficient conjunction: [[]] inside the list means
    provable outright. Beyond the single-monomial fragment, positive
    monomials are credited with their minimum value (a monomial is
    [>= 1] at every launch), and each launch dimension is tried pinned
    to 1 (an atom [dim <= 1]) since a degenerate grid or block
    dimension linearizes products. *)
let lp_le_alts (p : lpoly) (q : lpoly) : Constraint.t list =
  let solve d =
    if lp_nonneg d then Some []
    else
      match List.filter (fun (m, _) -> m <> []) d with
      | [ (m, c) ] ->
          let k =
            List.fold_left
              (fun acc (m', c') -> if m' = [] then acc + c' else acc)
              0 d
          in
          (* need k + c*v >= 0 for the monomial value v >= 1 *)
          if c > 0 then
            (* v >= ceil(-k/c) *)
            let bound = (-k + c - 1) / c in
            if bound <= 1 then Some []
            else Some [ { Constraint.a_mono = m; a_cmp = `Ge; a_k = bound } ]
          else
            (* v <= floor(k/(-c)) *)
            let bound = if k < 0 then -1 else k / -c in
            if bound < 1 then None
            else Some [ { Constraint.a_mono = m; a_cmp = `Le; a_k = bound } ]
      | ms -> (
          (* several monomials: credit each positive one with its
             minimum value, leaving a single negative monomial to
             bound *)
          match List.partition (fun (_, c) -> c > 0) ms with
          | pos, [ (m, c) ] ->
              let k =
                List.fold_left
                  (fun acc (m', c') -> if m' = [] then acc + c' else acc)
                  0 d
                + List.fold_left (fun acc (_, c') -> acc + c') 0 pos
              in
              let bound = if k < 0 then -1 else k / -c in
              if bound < 1 then None
              else Some [ { Constraint.a_mono = m; a_cmp = `Le; a_k = bound } ]
          | _ -> None)
  in
  let d = lp_sub q p in
  let base = match solve d with Some c -> [ c ] | None -> [] in
  let pinned =
    List.filter_map
      (fun dim ->
        if not (List.exists (fun (m, _) -> List.mem dim m) d) then None
        else
          let d' =
            List.fold_left
              (fun acc (m, c) ->
                lp_add acc [ (List.filter (fun x -> x <> dim) m, c) ])
              [] d
          in
          match solve d' with
          | Some c ->
              Some ({ Constraint.a_mono = [ dim ]; a_cmp = `Le; a_k = 1 } :: c)
          | None -> None)
      [ Constraint.Gx; Constraint.Gy; Constraint.Bx; Constraint.By ]
  in
  base @ pinned

let lp_le_when (p : lpoly) (q : lpoly) : Constraint.t option =
  match lp_le_alts p q with [] -> None | c :: _ -> Some c

(** How many launches over a reference grid of power-of-two
    configurations ([block_x*block_y <= 512], grid dims up to 64)
    satisfy [c] — used to pick, among independently sufficient
    alternatives, the one that stays provable at the most launches. *)
let coverage_tbl : (Constraint.t, int) Hashtbl.t = Hashtbl.create 64

let coverage_count (c : Constraint.t) : int =
  let bpows = [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512 ] in
  let gpows = [ 1; 2; 4; 8; 16; 32; 64 ] in
  List.fold_left
    (fun n block_x ->
      List.fold_left
        (fun n block_y ->
          if block_x * block_y > 512 then n
          else
            List.fold_left
              (fun n grid_x ->
                List.fold_left
                  (fun n grid_y ->
                    if
                      Constraint.holds
                        { Ast.grid_x; grid_y; block_x; block_y }
                        c
                    then n + 1
                    else n)
                  n gpows)
              n gpows)
        n bpows)
    0 bpows

let coverage (c : Constraint.t) : int =
  match Hashtbl.find_opt coverage_tbl c with
  | Some n -> n
  | None ->
      let n = coverage_count c in
      if Hashtbl.length coverage_tbl < 4096 then Hashtbl.add coverage_tbl c n;
      n

(* ------------------------------------------------------------------ *)
(* Symbolic ranges: [lo, hi] launch polynomials plus a stride           *)
(* ------------------------------------------------------------------ *)

(** Values lie in [[lo, hi]] (polynomial bounds, valid at every launch)
    and are congruent modulo [st] to some value (the congruence anchor
    is only tracked when the low bound is constant, mirroring
    {!Verify.si}'s use of [lo] as the anchor). [st = 0] marks a
    singleton-or-unknown stride; treat as 1 for arithmetic. *)
type lrange = {
  rlo : lpoly;
  rhi : lpoly;
  rst : int;
}

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let lr_const n = { rlo = lp_const n; rhi = lp_const n; rst = 0 }

let lr_add a b =
  { rlo = lp_add a.rlo b.rlo; rhi = lp_add a.rhi b.rhi; rst = gcd a.rst b.rst }

let lr_neg a = { rlo = lp_scale (-1) a.rhi; rhi = lp_scale (-1) a.rlo; rst = a.rst }
let lr_sub a b = lr_add a (lr_neg b)

let lr_scale k a =
  if k = 0 then lr_const 0
  else if k > 0 then
    { rlo = lp_scale k a.rlo; rhi = lp_scale k a.rhi; rst = k * a.rst }
  else
    { rlo = lp_scale k a.rhi; rhi = lp_scale k a.rlo; rst = -k * a.rst }

let lr_hull a b =
  (* sound hull needs provable ordering of the bounds; fall back to
     whichever side can be proven to dominate *)
  let lo =
    if lp_nonneg (lp_sub b.rlo a.rlo) then Some a.rlo
    else if lp_nonneg (lp_sub a.rlo b.rlo) then Some b.rlo
    else None
  and hi =
    if lp_nonneg (lp_sub a.rhi b.rhi) then Some a.rhi
    else if lp_nonneg (lp_sub b.rhi a.rhi) then Some b.rhi
    else None
  in
  match (lo, hi) with
  | Some rlo, Some rhi -> Some { rlo; rhi; rst = 1 }
  | _ -> None

(** Range of [v mod c] (mathematical mod) for a constant [c > 0]. *)
let lr_mod (a : lrange) (c : int) : lrange =
  if
    lp_nonneg a.rlo
    && lp_nonneg (lp_sub (lp_const (c - 1)) a.rhi)
  then a
  else
    match (lp_is_const a.rlo, lp_is_const a.rhi) with
    | Some lo, Some hi ->
        (* constant bounds: mirror Verify.si_mod exactly *)
        if lo >= 0 && hi <= c - 1 then a
        else
          let g = max 1 (gcd a.rst c) in
          let lo' = ((lo mod g) + g) mod g in
          {
            rlo = lp_const lo';
            rhi = lp_const (lo' + ((c - 1 - lo') / g * g));
            rst = g;
          }
    | _ -> { rlo = lp_zero; rhi = lp_const (c - 1); rst = 1 }

(** Range of [v / c] (truncating) for a constant [c > 0]; bounds are
    over-approximated when polynomial division is inexact. *)
let lr_div (a : lrange) (c : int) : lrange option =
  if c <= 0 then None
  else
    let lo =
      (* truncating division is monotone, mirroring {!Verify.si_div} *)
      match lp_is_const a.rlo with
      | Some lo -> Some (lp_const (lo / c))
      | None -> if lp_nonneg a.rlo then Some lp_zero else None
    and hi =
      match lp_is_const a.rhi with
      | Some hi -> Some (lp_const (hi / c))
      | None -> (
          match lp_div_exact (lp_add a.rhi (lp_const 1)) c with
          | Some q -> Some (lp_sub q (lp_const 1))
          | None -> if lp_nonneg a.rhi then Some a.rhi else None)
    in
    match (lo, hi) with
    | Some rlo, Some rhi -> Some { rlo; rhi; rst = 1 }
    | _ -> None

(* ------------------------------------------------------------------ *)
(* Symbolic affine forms over one thread's coordinates                  *)
(* ------------------------------------------------------------------ *)

(** Symbolic variables of one thread's view. [Stidx]/[Stidy] are
    thread-private; [Sbidx]/[Sbidy] and frozen loop counters are shared
    by every thread of the block (they cancel in two-thread
    differences); free loop counters and opaque values are
    thread-private and occurrence-private. *)
type svar =
  | Stidx
  | Stidy
  | Sbidx
  | Sbidy
  | Sfree of int  (** free-loop iteration (value delta in ℤ for races) *)
  | Sfrozen of int  (** frozen-loop iteration counter, block-shared *)

let svar_shared = function
  | Sbidx | Sbidy | Sfrozen _ -> true
  | Stidx | Stidy | Sfree _ -> false

(** Affine form [sc + sum coeff_i * var_i] with launch-polynomial
    coefficients. *)
type sform = {
  sc : lpoly;
  sterms : (svar * lpoly) list;  (** sorted by variable, coeffs <> [] *)
}

let sf_const (p : lpoly) : sform = { sc = p; sterms = [] }
let sf_int n = sf_const (lp_const n)

let sf_var ?(coeff = lp_const 1) v : sform =
  { sc = lp_zero; sterms = [ (v, coeff) ] }

let sf_add (a : sform) (b : sform) : sform =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (v, c) ->
      let c' =
        lp_add c (Option.value ~default:lp_zero (Hashtbl.find_opt tbl v))
      in
      Hashtbl.replace tbl v c')
    (a.sterms @ b.sterms);
  {
    sc = lp_add a.sc b.sc;
    sterms =
      Hashtbl.fold (fun v c acc -> if c = [] then acc else (v, c) :: acc) tbl []
      |> List.sort compare;
  }

let sf_scale (k : int) (a : sform) : sform =
  if k = 0 then sf_int 0
  else
    {
      sc = lp_scale k a.sc;
      sterms = List.map (fun (v, c) -> (v, lp_scale k c)) a.sterms;
    }

let sf_scale_poly (p : lpoly) (a : sform) : sform =
  if p = [] then sf_int 0
  else
    {
      sc = lp_mul p a.sc;
      sterms = List.map (fun (v, c) -> (v, lp_mul p c)) a.sterms;
    }

let sf_sub a b = sf_add a (sf_scale (-1) b)

let sf_is_const (a : sform) : lpoly option =
  if a.sterms = [] then Some a.sc else None

(* ------------------------------------------------------------------ *)
(* Walk state and environments                                          *)
(* ------------------------------------------------------------------ *)

(** Lowered value of an integer expression.
    - [Aff f]: exactly the affine form [f];
    - [Modv (f, c)]: exactly [f mod c] (mathematical mod, [c > 0]) —
      kept unreduced for the modular-lane race rule;
    - [Rng r]: unknown value within range [r] ([None] = unbounded),
      but one the concrete evaluator may still compute;
    - [Opq]: a value {!Verify}'s concrete evaluator can never compute
      either (array loads, floats, unbound parameters) — accesses
      through it are invisible to the concrete race and witness checks
      and can be skipped outright. *)
type sval =
  | Aff of sform
  | Modv of sform * int
  | Rng of lrange option
  | Opq

(** A scalar binding recorded by the walk, mirroring {!Verify.binding}:
    the defining expression lowers in the binding-list suffix that was
    live at the definition. *)
type sbind =
  | SBexpr of Ast.expr
  | SBopaque

(** One enclosing loop frame. [fr_value] is the loop variable's value
    for this pass (init + step * counter, plus one step on the
    wrap-around pass); the counter variable's recorded range bounds the
    variable across all iterations (mirroring {!Verify.renv_of_acc}:
    values stay within [init.lo .. limit.hi - 1]). *)
type sframe = {
  fr_var : string;
  fr_frozen : bool;
  fr_tdep : bool;  (** any loop bound is thread-dependent *)
  fr_value : sval;
}

type sguard = {
  sg_cond : Ast.expr;
  sg_binds : (string * sbind) list;
  sg_frames : sframe list;
}

type sacc = {
  x_arr : string;
  x_space : [ `Shared | `Global ];
  x_kind : [ `Sc of Ast.expr list | `Vec of int * Ast.expr ];
  x_store : bool;
  x_interval : int;
  x_frames : sframe list;  (** innermost first *)
  x_guards : sguard list;
  x_binds : (string * sbind) list;
  x_path : string;
}

type senv = {
  s_binds : (string * sbind) list;
  s_frames : sframe list;  (** innermost first *)
  s_guards : sguard list;
  s_div_hard : bool;
      (** under control flow thread-dependent with certainty at every
          launch (no empirical uniform-trip escape applies) *)
  s_div_soft : bool;
      (** under a frozen thread-dependent loop whose divergence verdict
          is launch-dependent ({!Verify.uniform_trip_count}) *)
  s_path : string list;  (** reversed segments *)
  s_frozen_depth : int;
}

(** A violation that certainly reproduces under its constraint: the
    concrete verifier reports [v_rule] at every launch satisfying
    [v_when]. *)
type violation = {
  v_when : Constraint.t;
  v_rule : string;
  v_path : string;
  v_message : string;
}

type sstate = {
  st_kernel : string;
  st_sizes : (string * int) list;
  mutable st_interval : int;
  mutable st_accs : sacc list;
  mutable st_violations : violation list;
  mutable st_unknown : string option;  (** first reason the proof gave up *)
  mutable st_next_id : int;
  mutable st_ranges : (int * lrange) list;  (** Sfree/Sfrozen/Sopaque ids *)
}

let give_up st reason =
  if st.st_unknown = None then st.st_unknown <- Some reason

let fresh_var st (range : lrange option) : int =
  let id = st.st_next_id in
  st.st_next_id <- id + 1;
  (match range with
  | Some r -> st.st_ranges <- (id, r) :: st.st_ranges
  | None -> ());
  id

let rec assoc_split name = function
  | [] -> None
  | (n, b) :: rest ->
      if String.equal n name then Some (b, rest) else assoc_split name rest

(* ------------------------------------------------------------------ *)
(* Lowering expressions to symbolic values                              *)
(* ------------------------------------------------------------------ *)

let bit_range = Some { rlo = lp_zero; rhi = lp_const 1; rst = 1 }

let svar_range (st : sstate) (v : svar) : lrange option =
  let dim d =
    Some { rlo = lp_zero; rhi = lp_sub (lp_dim d) (lp_const 1); rst = 1 }
  in
  match v with
  | Stidx -> dim Constraint.Bx
  | Stidy -> dim Constraint.By
  | Sbidx -> dim Constraint.Gx
  | Sbidy -> dim Constraint.Gy
  | Sfree id | Sfrozen id -> List.assoc_opt id st.st_ranges

(** Over-approximating value range of a lowered value; [None] when no
    bound is derivable. *)
let range_of ?(refine = []) (st : sstate) (v : sval) : lrange option =
  let var_range var =
    match List.assoc_opt var refine with
    | Some r -> Some r
    | None -> svar_range st var
  in
  match v with
  | Opq -> None
  | Rng r -> r
  | Modv (_, c) -> Some { rlo = lp_zero; rhi = lp_const (c - 1); rst = 1 }
  | Aff f ->
      List.fold_left
        (fun acc (var, coeff) ->
          match (acc, lp_is_const coeff, var_range var) with
          | Some r, Some c, Some vr -> Some (lr_add r (lr_scale c vr))
          | Some r, None, Some vr ->
              (* polynomial coefficient: sound only when both the
                 coefficient and the variable are provably nonnegative *)
              if lp_nonneg vr.rlo && lp_nonneg coeff then
                Some
                  (lr_add r
                     {
                       rlo = lp_mul coeff vr.rlo;
                       rhi = lp_mul coeff vr.rhi;
                       rst = 1;
                     })
              else None
          | _ -> None)
        (Some { rlo = f.sc; rhi = f.sc; rst = 0 })
        f.sterms

let const_of (v : sval) : int option =
  match v with
  | Aff f -> ( match sf_is_const f with Some p -> lp_is_const p | None -> None)
  | _ -> None

(** Lower an integer expression under a binding list and loop frames.
    Mirrors the operator semantics of {!Verify.eval_int} (mathematical
    mod, truncating div, min/max calls, short-circuit booleans) so
    every value the concrete evaluator can compute is covered. *)
let rec lower st ~(binds : (string * sbind) list) ~(frames : sframe list)
    (e : Ast.expr) : sval =
  match e with
  | Int_lit n -> Aff (sf_int n)
  | Float_lit _ -> Opq
  | Builtin b -> (
      match b with
      | Tidx -> Aff (sf_var Stidx)
      | Tidy -> Aff (sf_var Stidy)
      | Bidx -> Aff (sf_var Sbidx)
      | Bidy -> Aff (sf_var Sbidy)
      | Bdimx -> Aff (sf_const (lp_dim Constraint.Bx))
      | Bdimy -> Aff (sf_const (lp_dim Constraint.By))
      | Gdimx -> Aff (sf_const (lp_dim Constraint.Gx))
      | Gdimy -> Aff (sf_const (lp_dim Constraint.Gy))
      | Idx ->
          Aff (sf_add (sf_var ~coeff:(lp_dim Constraint.Bx) Sbidx) (sf_var Stidx))
      | Idy ->
          Aff (sf_add (sf_var ~coeff:(lp_dim Constraint.By) Sbidy) (sf_var Stidy)))
  | Var v -> (
      match List.find_opt (fun f -> String.equal f.fr_var v) frames with
      | Some f -> f.fr_value
      | None -> (
          match assoc_split v binds with
          | Some (SBexpr e', rest) -> lower st ~binds:rest ~frames e'
          | Some (SBopaque, _) -> Opq
          | None -> (
              match List.assoc_opt v st.st_sizes with
              | Some n -> Aff (sf_int n)
              | None -> Opq)))
  | Unop (Neg, a) -> (
      match lower st ~binds ~frames a with
      | Aff f -> Aff (sf_scale (-1) f)
      | Opq -> Opq
      | v -> (
          match range_of st v with
          | Some r -> Rng (Some (lr_neg r))
          | None -> Rng None))
  | Unop (Not, a) -> (
      match lower st ~binds ~frames a with Opq -> Opq | _ -> Rng bit_range)
  | Binop (Add, a, b) -> (
      match (lower st ~binds ~frames a, lower st ~binds ~frames b) with
      | Opq, _ | _, Opq -> Opq
      | Aff fa, Aff fb -> Aff (sf_add fa fb)
      | va, vb -> (
          match (range_of st va, range_of st vb) with
          | Some ra, Some rb -> Rng (Some (lr_add ra rb))
          | _ -> Rng None))
  | Binop (Sub, a, b) -> (
      match (lower st ~binds ~frames a, lower st ~binds ~frames b) with
      | Opq, _ | _, Opq -> Opq
      | Aff fa, Aff fb -> Aff (sf_sub fa fb)
      | va, vb -> (
          match (range_of st va, range_of st vb) with
          | Some ra, Some rb -> Rng (Some (lr_sub ra rb))
          | _ -> Rng None))
  | Binop (Mul, a, b) -> (
      let va = lower st ~binds ~frames a and vb = lower st ~binds ~frames b in
      match (va, vb) with
      | Opq, _ | _, Opq -> Opq
      | _ -> (
          let const_poly v =
            match v with Aff f -> sf_is_const f | _ -> None
          in
          match (const_poly va, const_poly vb, va, vb) with
          | Some p, _, _, Aff fb -> Aff (sf_scale_poly p fb)
          | _, Some p, Aff fa, _ -> Aff (sf_scale_poly p fa)
          | _ -> (
              match (range_of st va, range_of st vb) with
              | Some ra, Some rb -> (
                  let const_r r =
                    match (lp_is_const r.rlo, lp_is_const r.rhi) with
                    | Some lo, Some hi when lo = hi -> Some lo
                    | _ -> None
                  in
                  match (const_r ra, const_r rb) with
                  | Some k, _ -> Rng (Some (lr_scale k rb))
                  | _, Some k -> Rng (Some (lr_scale k ra))
                  | None, None -> Rng None)
              | _ -> Rng None)))
  | Binop (Div, a, b) -> (
      match (lower st ~binds ~frames a, lower st ~binds ~frames b) with
      | Opq, _ | _, Opq -> Opq
      | va, vb -> (
          match const_of vb with
          | Some c when c > 0 -> (
              match range_of st va with
              | Some r -> Rng (lr_div r c)
              | None -> Rng None)
          | _ -> Rng None))
  | Binop (Mod, a, b) -> (
      match (lower st ~binds ~frames a, lower st ~binds ~frames b) with
      | Opq, _ | _, Opq -> Opq
      | va, vb -> (
          match const_of vb with
          | Some c when c > 0 -> (
              match va with
              | Aff f -> Modv (f, c)
              | _ -> (
                  match range_of st va with
                  | Some r -> Rng (Some (lr_mod r c))
                  | None ->
                      Rng
                        (Some
                           { rlo = lp_zero; rhi = lp_const (c - 1); rst = 1 })))
          | _ -> Rng None))
  | Binop ((Lt | Le | Gt | Ge | Eq | Ne), a, b) -> (
      match (lower st ~binds ~frames a, lower st ~binds ~frames b) with
      | Opq, _ | _, Opq -> Opq
      | _ -> Rng bit_range)
  | Binop ((And | Or), _, _) ->
      (* short-circuit: the concrete evaluator may succeed even when
         one side is opaque, so never propagate Opq *)
      Rng bit_range
  | Call ("min", [ a; b ]) -> (
      match (lower st ~binds ~frames a, lower st ~binds ~frames b) with
      | Opq, _ | _, Opq -> Opq
      | _ -> min_range st ~binds ~frames a b)
  | Call ("max", [ a; b ]) -> (
      match (lower st ~binds ~frames a, lower st ~binds ~frames b) with
      | Opq, _ | _, Opq -> Opq
      | _ -> max_range st ~binds ~frames a b)
  | Select (_, a, b) -> (
      (* condition first, then exactly one branch: an opaque branch may
         never be reached, so stay merely unknown rather than Opq *)
      match
        ( range_of st (lower st ~binds ~frames a),
          range_of st (lower st ~binds ~frames b) )
      with
      | Some ra, Some rb -> Rng (lr_hull ra rb)
      | _ -> Rng None)
  | Index _ | Vload _ | Field _ | Call _ -> Opq

and min_range st ~binds ~frames a b =
  match
    ( range_of st (lower st ~binds ~frames a),
      range_of st (lower st ~binds ~frames b) )
  with
  | Some ra, Some rb ->
      (* min's upper bound: either side's hi that provably dominates *)
      let hi =
        if lp_nonneg (lp_sub rb.rhi ra.rhi) then Some ra.rhi
        else if lp_nonneg (lp_sub ra.rhi rb.rhi) then Some rb.rhi
        else None
      and lo =
        if lp_nonneg (lp_sub rb.rlo ra.rlo) then Some ra.rlo
        else if lp_nonneg (lp_sub ra.rlo rb.rlo) then Some rb.rlo
        else None
      in
      (match (lo, hi) with
      | Some rlo, Some rhi -> Rng (Some { rlo; rhi; rst = 1 })
      | _ -> Rng None)
  | _ -> Rng None

and max_range st ~binds ~frames a b =
  match
    ( range_of st (lower st ~binds ~frames a),
      range_of st (lower st ~binds ~frames b) )
  with
  | Some ra, Some rb ->
      let hi =
        if lp_nonneg (lp_sub ra.rhi rb.rhi) then Some ra.rhi
        else if lp_nonneg (lp_sub rb.rhi ra.rhi) then Some rb.rhi
        else None
      and lo =
        if lp_nonneg (lp_sub ra.rlo rb.rlo) then Some ra.rlo
        else if lp_nonneg (lp_sub rb.rlo ra.rlo) then Some rb.rlo
        else None
      in
      (match (lo, hi) with
      | Some rlo, Some rhi -> Rng (Some { rlo; rhi; rst = 1 })
      | _ -> Rng None)
  | _ -> Rng None

(* ------------------------------------------------------------------ *)
(* The symbolic walk (mirrors the structure of {!Verify}'s walk)        *)
(* ------------------------------------------------------------------ *)

let truncate_str n s = if String.length s <= n then s else String.sub s 0 n ^ "…"
let path_of env = String.concat "/" (List.rev env.s_path)

(** Syntactic thread dependence, mirroring {!Verify.thread_dep}:
    opaque bindings count, loop variables count when the loop's bounds
    do (recorded per frame at loop entry). *)
let rec sthread_dep (binds : (string * sbind) list) (frames : (string * bool) list)
    (e : Ast.expr) : bool =
  match e with
  | Builtin (Idx | Idy | Tidx | Tidy) -> true
  | Builtin _ | Int_lit _ | Float_lit _ -> false
  | Var v -> (
      match assoc_split v binds with
      | Some (SBexpr e', rest) -> sthread_dep rest frames e'
      | Some (SBopaque, _) -> true
      | None -> (
          match List.assoc_opt v frames with Some d -> d | None -> false))
  | Index _ | Vload _ -> true
  | Unop (_, a) | Field (a, _) -> sthread_dep binds frames a
  | Binop (_, a, b) -> sthread_dep binds frames a || sthread_dep binds frames b
  | Call (_, args) -> List.exists (sthread_dep binds frames) args
  | Select (a, b, c) ->
      sthread_dep binds frames a || sthread_dep binds frames b
      || sthread_dep binds frames c

let rec block_has_sync b = List.exists stmt_has_sync b

and stmt_has_sync = function
  | Ast.Sync | Global_sync -> true
  | If (_, t, f) -> block_has_sync t || block_has_sync f
  | For l -> block_has_sync l.l_body
  | Decl _ | Assign _ | Comment _ -> false

let rec assigned_vars b = List.concat_map assigned_vars_stmt b

and assigned_vars_stmt = function
  | Ast.Decl d -> [ d.d_name ]
  | Assign (Lvar v, _) | Assign (Lfield (Lvar v, _), _) -> [ v ]
  | Assign ((Lindex _ | Lvec _ | Lfield _), _) -> []
  | If (_, t, f) -> assigned_vars t @ assigned_vars f
  | For l -> l.l_var :: assigned_vars l.l_body
  | Sync | Global_sync | Comment _ -> []

let frame_tdeps frames = List.map (fun f -> (f.fr_var, f.fr_tdep)) frames

let forget_svars env vars =
  { env with s_binds = List.map (fun v -> (v, SBopaque)) vars @ env.s_binds }

let violate st ~v_when ~rule ~path message =
  st.st_violations <-
    { v_when; v_rule = rule; v_path = path; v_message = message }
    :: st.st_violations

let srecord_access st env spaces arr kind ~store =
  match List.assoc_opt arr spaces with
  | None -> ()
  | Some space ->
      st.st_accs <-
        {
          x_arr = arr;
          x_space = space;
          x_kind = kind;
          x_store = store;
          x_interval = st.st_interval;
          x_frames = env.s_frames;
          x_guards = env.s_guards;
          x_binds = env.s_binds;
          x_path = path_of env;
        }
        :: st.st_accs

let rec scollect_expr st env spaces (e : Ast.expr) : unit =
  match e with
  | Index (arr, idxs) ->
      srecord_access st env spaces arr (`Sc idxs) ~store:false;
      List.iter (scollect_expr st env spaces) idxs
  | Vload { v_arr; v_width; v_index } ->
      srecord_access st env spaces v_arr (`Vec (v_width, v_index)) ~store:false;
      scollect_expr st env spaces v_index
  | Unop (_, a) | Field (a, _) -> scollect_expr st env spaces a
  | Binop (_, a, b) ->
      scollect_expr st env spaces a;
      scollect_expr st env spaces b
  | Call (_, args) -> List.iter (scollect_expr st env spaces) args
  | Select (a, b, c) ->
      scollect_expr st env spaces a;
      scollect_expr st env spaces b;
      scollect_expr st env spaces c
  | Int_lit _ | Float_lit _ | Var _ | Builtin _ -> ()

(** Build the loop frame for one symbolic pass. The loop variable is
    [init + step * counter] when init lowers to an affine form and the
    step to a positive constant; the counter variable is block-shared
    for frozen loops and iteration-private otherwise. Its recorded
    range over-approximates the trip count (sound for proving: the
    concrete walk never runs an iteration outside it). *)
let make_frame st env (lp : Ast.loop) ~frozen ~tdep ~counter_id ~offset : sframe
    =
  let binds = env.s_binds and frames = env.s_frames in
  let vi = lower st ~binds ~frames lp.l_init in
  let vs = lower st ~binds ~frames lp.l_step in
  let vl = lower st ~binds ~frames lp.l_limit in
  let svar = if frozen then Sfrozen counter_id else Sfree counter_id in
  match (vi, const_of vs) with
  | Aff fi, Some c when c > 0 ->
      (match (range_of st vi, range_of st vl) with
      | Some ri, Some rl ->
          (* counter <= (lim_hi - 1 - init_lo) / c <= lim_hi - 1 - init_lo *)
          let hi = lp_sub (lp_sub rl.rhi ri.rlo) (lp_const 1) in
          let hi =
            match lp_div_exact hi c with
            | Some q -> q
            | None -> (
                (* truncating division of a constant span still bounds
                   the trip count from above (c > 0) *)
                match lp_is_const hi with
                | Some h -> lp_const (h / c)
                | None -> hi)
          in
          st.st_ranges <-
            (counter_id, { rlo = lp_zero; rhi = hi; rst = 1 }) :: st.st_ranges
      | _ -> ());
      let value =
        Aff
          (sf_add fi
             (sf_add
                (sf_var ~coeff:(lp_const c) svar)
                (sf_int (offset * c))))
      in
      { fr_var = lp.l_var; fr_frozen = frozen; fr_tdep = tdep; fr_value = value }
  | _ ->
      let range =
        match (range_of st vi, range_of st vl) with
        | Some ri, Some rl ->
            Some { rlo = ri.rlo; rhi = lp_sub rl.rhi (lp_const 1); rst = 1 }
        | _ -> None
      in
      (match range with
      | Some r -> st.st_ranges <- (counter_id, r) :: st.st_ranges
      | None -> ());
      {
        fr_var = lp.l_var;
        fr_frozen = frozen;
        fr_tdep = tdep;
        fr_value = Aff (sf_var svar);
      }

let rec swalk_block st spaces env (b : Ast.block) : senv =
  List.fold_left (fun e s -> swalk_stmt st spaces e s) env b

and swalk_stmt st spaces env (s : Ast.stmt) : senv =
  match s with
  | Comment _ -> env
  | Decl { d_name; d_ty = Scalar _; d_init } -> (
      match d_init with
      | Some e ->
          scollect_expr st env spaces e;
          { env with s_binds = (d_name, SBexpr e) :: env.s_binds }
      | None -> { env with s_binds = (d_name, SBopaque) :: env.s_binds })
  | Decl _ -> env
  | Assign (lv, e) -> (
      scollect_expr st env spaces e;
      match lv with
      | Lvar v -> { env with s_binds = (v, SBexpr e) :: env.s_binds }
      | Lfield (Lvar v, _) -> forget_svars env [ v ]
      | Lindex (arr, idxs) ->
          srecord_access st env spaces arr (`Sc idxs) ~store:true;
          List.iter (scollect_expr st env spaces) idxs;
          env
      | Lvec { v_arr; v_width; v_index } ->
          srecord_access st env spaces v_arr
            (`Vec (v_width, v_index))
            ~store:true;
          scollect_expr st env spaces v_index;
          env
      | Lfield (Lindex (arr, idxs), _) ->
          srecord_access st env spaces arr (`Sc idxs) ~store:true;
          List.iter (scollect_expr st env spaces) idxs;
          env
      | Lfield _ -> env)
  | Sync ->
      if env.s_div_hard then
        violate st ~v_when:Constraint.tt ~rule:Verify.rule_barrier_divergence
          ~path:(path_of { env with s_path = "__syncthreads()" :: env.s_path })
          "__syncthreads() under thread-dependent control flow: threads \
           that skip the barrier deadlock or desynchronize the block"
      else if env.s_div_soft then
        give_up st
          "barrier under a lane-dependent loop whose uniform-trip escape \
           is launch-dependent";
      if env.s_guards = [] then st.st_interval <- st.st_interval + 1;
      env
  | Global_sync ->
      if env.s_frames <> [] || env.s_guards <> [] then
        violate st ~v_when:Constraint.tt ~rule:Verify.rule_barrier_divergence
          ~path:(path_of { env with s_path = "__global_sync()" :: env.s_path })
          "__global_sync() must appear at kernel top level";
      if env.s_guards = [] then st.st_interval <- st.st_interval + 1;
      env
  | If (cond, t, f) ->
      scollect_expr st env spaces cond;
      let d = sthread_dep env.s_binds (frame_tdeps env.s_frames) cond in
      let seg =
        Printf.sprintf "if(%s)" (truncate_str 28 (Pp.expr_to_string cond))
      in
      let branch cond' =
        {
          env with
          s_guards =
            { sg_cond = cond'; sg_binds = env.s_binds; sg_frames = env.s_frames }
            :: env.s_guards;
          s_div_hard = env.s_div_hard || d;
          s_path = seg :: env.s_path;
        }
      in
      ignore (swalk_block st spaces (branch cond) t);
      ignore (swalk_block st spaces (branch (Unop (Not, cond))) f);
      forget_svars env (assigned_vars t @ assigned_vars f)
  | For ({ l_var; l_init; l_limit; l_step; l_body } as lp) ->
      scollect_expr st env spaces l_init;
      scollect_expr st env spaces l_limit;
      scollect_expr st env spaces l_step;
      let frozen = block_has_sync l_body in
      let tdep =
        let tds = frame_tdeps env.s_frames in
        sthread_dep env.s_binds tds l_init
        || sthread_dep env.s_binds tds l_limit
        || sthread_dep env.s_binds tds l_step
      in
      let counter_id = fresh_var st None in
      let benv offset =
        let fr = make_frame st env lp ~frozen ~tdep ~counter_id ~offset in
        {
          env with
          s_frames = fr :: env.s_frames;
          s_div_hard = env.s_div_hard || (tdep && not frozen);
          s_div_soft = env.s_div_soft || (tdep && frozen);
          s_path = Printf.sprintf "for(%s)" l_var :: env.s_path;
          s_frozen_depth = (env.s_frozen_depth + if frozen then 1 else 0);
        }
      in
      if frozen && env.s_frozen_depth < 2 then begin
        ignore (swalk_block st spaces (benv 0) l_body);
        ignore (swalk_block st spaces (benv 1) l_body)
      end
      else ignore (swalk_block st spaces (benv 0) l_body);
      forget_svars env (l_var :: assigned_vars l_body)

(* ------------------------------------------------------------------ *)
(* Race proving: two-symbolic-thread disequality                        *)
(* ------------------------------------------------------------------ *)

let atom m cmp k = { Constraint.a_mono = m; a_cmp = cmp; a_k = k }
let mono_bx = [ Constraint.Bx ]
let mono_by = [ Constraint.By ]
let mono_threads = [ Constraint.Bx; Constraint.By ]

let lp_provably_nonzero (p : lpoly) : bool =
  lp_nonneg (lp_sub p (lp_const 1)) || lp_nonneg (lp_sub (lp_const (-1)) p)

(** Flattened element offset of one access as a symbolic form. [Oskip]
    marks offsets the concrete evaluator can never compute (the
    concrete race and witness checks skip those instances, so nothing
    needs proving). *)
type off =
  | Oaff of sform
  | Omod of sform * int
  | Ovec of int * sform
  | Oskip
  | Ofail of string

let offset_form st (lay : Layout.t) (acc : sacc) : off =
  match acc.x_kind with
  | `Sc idxs ->
      let strides = Layout.strides lay in
      if List.length idxs <> List.length strides then Oskip
      else
        let vs =
          List.map (lower st ~binds:acc.x_binds ~frames:acc.x_frames) idxs
        in
        if List.exists (fun v -> v = Opq) vs then Oskip
        else (
          match (vs, strides) with
          | [ Modv (f, c) ], [ 1 ] -> Omod (f, c)
          | _ -> (
              let rec go f vs ss =
                match (vs, ss) with
                | [], [] -> Some f
                | Aff g :: vs', s :: ss' -> go (sf_add f (sf_scale s g)) vs' ss'
                | _ -> None
              in
              match go (sf_int 0) vs strides with
              | Some f -> Oaff f
              | None -> Ofail "non-affine index"))
  | `Vec (w, ie) -> (
      match lower st ~binds:acc.x_binds ~frames:acc.x_frames ie with
      | Opq -> Oskip
      | Aff f -> Ovec (w, f)
      | Modv _ | Rng _ -> Ofail "non-affine vector index")

(** Two-thread difference of a pair of affine offsets. Block-shared
    variables cancel when their coefficients agree; mismatched shared
    coefficients and iteration-private variables widen to integer
    deltas (sound: any value the concrete windows enumerate is
    covered). *)
type delta = {
  d_lane : lpoly option;
      (** [Some cl]: the thread part is [cl * (lane_s - lane_t)] *)
  d_dx : int;
  d_dy : int;
  d_zs : int list;  (** coefficients of unconstrained integer deltas *)
  d_dk : lpoly;
}

exception Bad of string

let pair_delta (fa : sform) (fb : sform) : (delta, string) Stdlib.result =
  let coeff v f = Option.value ~default:[] (List.assoc_opt v f.sterms) in
  let vars =
    List.sort_uniq compare (List.map fst fa.sterms @ List.map fst fb.sterms)
  in
  let cx_a = coeff Stidx fa and cx_b = coeff Stidx fb in
  let cy_a = coeff Stidy fa and cy_b = coeff Stidy fb in
  try
    let zs =
      List.fold_left
        (fun zs v ->
          match v with
          | Stidx | Stidy -> zs
          | Sbidx | Sbidy | Sfrozen _ -> (
              let d = lp_sub (coeff v fa) (coeff v fb) in
              if d = [] then zs
              else
                match lp_is_const d with
                | Some c -> c :: zs
                | None -> raise (Bad "block-shared coefficient mismatch"))
          | Sfree _ ->
              List.fold_left
                (fun zs c ->
                  if c = [] then zs
                  else
                    match lp_is_const c with
                    | Some k -> k :: zs
                    | None -> raise (Bad "non-constant loop stride"))
                zs
                [ coeff v fa; coeff v fb ])
        [] vars
    in
    let dk = lp_sub fa.sc fb.sc in
    if
      cx_a = cx_b && cy_a = cy_b && cx_a <> []
      && cy_a = lp_mul cx_a [ ([ Constraint.Bx ], 1) ]
    then Ok { d_lane = Some cx_a; d_dx = 0; d_dy = 0; d_zs = zs; d_dk = dk }
    else if cx_a <> cx_b then Error "thread-x stride mismatch"
    else if cy_a <> cy_b then Error "thread-y stride mismatch"
    else
      match (lp_is_const cx_a, lp_is_const cy_a) with
      | Some dx, Some dy ->
          Ok { d_lane = None; d_dx = dx; d_dy = dy; d_zs = zs; d_dk = dk }
      | _ -> Error "non-constant thread stride"
  with Bad m -> Error m

type clamp = { cl_form : sform; cl_kind : [ `Hi | `Lo ]; cl_poly : lpoly }

(** Range clamps implied by the access's guards. Sound regardless of
    concrete evaluability: the out-of-bounds {e error} requires a
    witness state in which every guard evaluates true, and these are
    consequences of the guards' truth. *)
let guard_clamps st (acc : sacc) : clamp list =
  List.concat_map
    (fun g ->
      let lower_g = lower st ~binds:g.sg_binds ~frames:g.sg_frames in
      let mk a b strict kind =
        match (lower_g a, lower_g b) with
        | Aff fa, Aff fb when fb.sterms = [] -> (
            match kind with
            | `Hi ->
                [ { cl_form = fa; cl_kind = `Hi; cl_poly = lp_sub fb.sc (lp_const strict) } ]
            | `Lo ->
                [ { cl_form = fa; cl_kind = `Lo; cl_poly = lp_add fb.sc (lp_const strict) } ])
        | _ -> []
      in
      let rec of_cond pos c =
        match c with
        | Ast.Unop (Not, c') -> of_cond (not pos) c'
        | Binop (Lt, a, b) -> if pos then mk a b 1 `Hi else mk a b 0 `Lo
        | Binop (Le, a, b) -> if pos then mk a b 0 `Hi else mk a b 1 `Lo
        | Binop (Gt, a, b) -> if pos then mk a b 1 `Lo else mk a b 0 `Hi
        | Binop (Ge, a, b) -> if pos then mk a b 0 `Lo else mk a b 1 `Hi
        | Binop (And, a, b) -> if pos then of_cond pos a @ of_cond pos b else []
        | _ -> []
      in
      of_cond true g.sg_cond)
    acc.x_guards

(* Guard caps for race proving: an inequality guard affine in a single
   thread coordinate with a constant bound caps that coordinate for
   every thread executing the access, so the coordinate delta between
   two executing threads is capped without a launch atom.  Such guards
   are pure affine forms over concretely-computable leaves, so the
   concrete race check evaluates (and enforces) them too -- its lenient
   treatment of unevaluable guards never applies here. *)
let cap_of st (acc : sacc) (v : svar) : int option =
  List.fold_left
    (fun best cl ->
      if cl.cl_kind <> `Hi then best
      else
        match cl.cl_form.sterms with
        | [ (v', cp) ] when v' = v -> (
            match
              ( lp_is_const cp,
                lp_is_const (lp_sub cl.cl_poly cl.cl_form.sc) )
            with
            | Some c, Some d when c > 0 ->
                let q = max 0 (d / c) in
                Some (match best with Some b -> min b q | None -> q)
            | _ -> best)
        | _ -> best)
    None (guard_clamps st acc)

let caps_of st (a : sacc) (b : sacc) : int option * int option =
  let cap v =
    match (cap_of st a v, cap_of st b v) with
    | Some ua, Some ub -> Some (max ua ub)
    | _ -> None
  in
  (cap Stidx, cap Stidy)

(** Emit [dim <= k] unless a guard cap already bounds the coordinate
    delta below [k] at every launch. *)
let dim_atom ~(caps : int option * int option) (dim : Constraint.mono)
    (k : int) : Constraint.t =
  let cx, cy = caps in
  let capped u = match u with Some u -> u < k | None -> false in
  if (dim = mono_bx && capped cx) || (dim = mono_by && capped cy) then []
  else [ atom dim `Le k ]

(** Prove [c*u + dk <> 0] for [u] in [[-(dim-1), dim-1]], [u <> 0]. *)
let one_d ~caps ~(dim : Constraint.mono) (c : int) (dk : lpoly) :
    [ `Ok of Constraint.t | `Fail of string ] =
  if c = 0 then
    match lp_is_const dk with
    | Some 0 -> `Ok (dim_atom ~caps dim 1)
    | Some _ -> `Ok []
    | None ->
        if lp_provably_nonzero dk then `Ok []
        else `Fail "sign of thread offset unknown"
  else
    match lp_is_const dk with
    | Some k ->
        if k mod c <> 0 then `Ok []
        else
          let t0 = abs (k / c) in
          if t0 = 0 then `Ok [] else `Ok (dim_atom ~caps dim t0)
    | None -> (
        (* |dk| must dominate |c|*(dim-1) *)
        let bound =
          lp_add (lp_scale (abs c) (lp_sub [ (dim, 1) ] (lp_const 1))) (lp_const 1)
        in
        match lp_le_when bound dk with
        | Some cs -> `Ok cs
        | None -> (
            match lp_le_when bound (lp_scale (-1) dk) with
            | Some cs -> `Ok cs
            | None -> `Fail "non-constant offset across thread stride"))

let rec prove_delta ~caps ~pinned_tx ~pinned_ty (d : delta) :
    [ `Ok of Constraint.t | `Collide | `Fail of string ] =
  let combine r1 r2 =
    match (r1, r2) with
    | `Ok c1, `Ok c2 -> `Ok (c1 @ c2)
    | (`Fail _ as f), _ | _, (`Fail _ as f) -> f
  in
  let g = List.fold_left gcd 0 d.d_zs in
  if g = 1 then `Fail "unit loop stride swallows every offset"
  else if g > 1 then begin
    (* R1: every loop contribution is a multiple of [g], so the delta is
       zero only if the thread part is too, modulo [g].  Fast path: the
       thread strides vanish mod [g] and the constant offset does not.
       General path: reduce the constant to a centered residue [rk],
       emit window atoms keeping the thread part inside [(-g, g)], and
       delegate exact-zero exclusion of [thread part + rk] to the
       stride reasoning below (an empty [d_zs] recursion). *)
    let reduce k =
      let r = ((k mod g) + g) mod g in
      if 2 * r > g then r - g else r
    in
    let fast_ok =
      (match d.d_lane with
      | Some cl -> (
          match lp_is_const cl with Some c -> c mod g = 0 | None -> false)
      | None ->
          (pinned_tx || d.d_dx mod g = 0) && (pinned_ty || d.d_dy mod g = 0))
      && match lp_is_const d.d_dk with Some k -> k mod g <> 0 | None -> false
    in
    if fast_ok then `Ok []
    else
      match lp_is_const d.d_dk with
      | None -> `Fail "non-constant offset across loop strides"
      | Some k -> (
          let rk = reduce k in
          let budget = g - 1 - abs rk in
          if budget < 0 then `Fail "offset residue swallows the window"
          else
            let window_atom dim c =
              dim_atom ~caps dim ((budget / abs c) + 1)
            in
            let window =
              match d.d_lane with
              | Some cl -> (
                  match lp_is_const cl with
                  | Some c when c <> 0 ->
                      `Ok [ atom mono_threads `Le ((budget / abs c) + 1) ]
                  | Some _ -> `Ok []
                  | None -> `Fail "non-constant lane stride in loop residue")
              | None -> (
                  let ax =
                    if pinned_tx || d.d_dx = 0 then None
                    else Some (mono_bx, d.d_dx)
                  and ay =
                    if pinned_ty || d.d_dy = 0 then None
                    else Some (mono_by, d.d_dy)
                  in
                  match (ax, ay) with
                  | None, None -> `Ok []
                  | Some (dim, c), None | None, Some (dim, c) ->
                      `Ok (window_atom dim c)
                  | Some (dimx, cx), Some (dimy, cy) ->
                      (* split the window between the axes *)
                      let budget = budget / 2 in
                      if budget < abs cx || budget < abs cy then
                        `Fail "thread strides overflow the loop residue"
                      else
                        `Ok
                          (dim_atom ~caps dimx ((budget / abs cx) + 1)
                          @ dim_atom ~caps dimy ((budget / abs cy) + 1)))
            in
            match window with
            | `Fail m -> `Fail m
            | `Ok cw -> (
                match
                  prove_delta ~caps ~pinned_tx ~pinned_ty
                    { d with d_zs = []; d_dk = lp_const rk }
                with
                | `Collide -> `Fail "thread residues coincide"
                | `Fail m -> `Fail m
                | `Ok cs -> `Ok (cw @ cs)))
  end
  else
    match d.d_lane with
    | Some cl ->
        if pinned_tx && pinned_ty then `Ok []
        else if d.d_dk = [] then
          if
            match lp_is_const cl with
            | Some c -> c <> 0
            | None -> lp_provably_nonzero cl
          then `Ok []
          else `Fail "lane stride sign unknown"
        else (
          match (lp_is_const cl, lp_is_const d.d_dk) with
          | Some c, Some k when c <> 0 ->
              if k mod c <> 0 then `Ok []
              else
                let t0 = abs (k / c) in
                if t0 = 0 then `Ok [] else `Ok [ atom mono_threads `Le t0 ]
          | _ -> `Fail "non-constant lane offset")
    | None -> (
        let dx = d.d_dx and dy = d.d_dy and dk = d.d_dk in
        match (pinned_tx, pinned_ty) with
        | true, true -> `Ok []
        | true, false -> (one_d ~caps ~dim:mono_by dy dk :> [ `Ok of Constraint.t | `Collide | `Fail of string ])
        | false, true -> (one_d ~caps ~dim:mono_bx dx dk :> [ `Ok of Constraint.t | `Collide | `Fail of string ])
        | false, false ->
            if dx = 0 && dy = 0 then (
              match lp_is_const dk with
              | Some 0 -> `Collide
              | Some _ -> `Ok []
              | None ->
                  if lp_provably_nonzero dk then `Ok []
                  else `Fail "sign of thread offset unknown")
            else if dy = 0 then
              (* u = 0, v <> 0 leaves delta = dk; u <> 0 is 1-d in bx *)
              let zero_branch =
                match lp_is_const dk with
                | Some 0 -> `Ok (dim_atom ~caps mono_by 1)
                | Some _ -> `Ok []
                | None ->
                    if lp_provably_nonzero dk then `Ok []
                    else `Fail "sign of thread offset unknown"
              in
              combine zero_branch (one_d ~caps ~dim:mono_bx dx dk)
            else if dx = 0 then
              let zero_branch =
                match lp_is_const dk with
                | Some 0 -> `Ok (dim_atom ~caps mono_bx 1)
                | Some _ -> `Ok []
                | None ->
                    if lp_provably_nonzero dk then `Ok []
                    else `Fail "sign of thread offset unknown"
              in
              combine zero_branch (one_d ~caps ~dim:mono_by dy dk)
            else (
              match lp_is_const dk with
              | None -> `Fail "non-constant offset across 2-d thread strides"
              | Some k ->
                  if k mod gcd dx dy <> 0 then `Ok []
                  else
                    (* dominance: one stride swamps the other axis *)
                    let dom ~dim_small small big =
                      let num = abs big - abs k - 1 in
                      if num < 0 then None
                      else Some (atom dim_small `Le ((num / abs small) + 1))
                    in
                    let attempt ~dim_small small big =
                      match dom ~dim_small small big with
                      | Some a -> (
                          match one_d ~caps ~dim:dim_small small dk with
                          | `Ok c -> Some (a, c)
                          | `Fail _ -> None)
                      | None -> None
                    in
                    (* both directions can work; keep the weaker (larger
                       bound) constraint so more launches are covered *)
                    (match
                       ( attempt ~dim_small:mono_bx dx dy,
                         attempt ~dim_small:mono_by dy dx )
                     with
                    | Some (a1, c1), Some (a2, c2) ->
                        if a2.Constraint.a_k > a1.Constraint.a_k then
                          `Ok (dim_atom ~caps a2.a_mono a2.a_k @ c2)
                        else `Ok (dim_atom ~caps a1.a_mono a1.a_k @ c1)
                    | Some (a, c), None | None, Some (a, c) ->
                        `Ok (dim_atom ~caps a.Constraint.a_mono a.a_k @ c)
                    | None, None -> `Fail "no dominant stride")))

(* ------------------------------------------------------------------ *)
(* Guard pinning                                                       *)
(* ------------------------------------------------------------------ *)

(** Equality guards whose lowered form fixes one thread coordinate as a
    function of block-shared values alone. Only forms the concrete
    evaluator can always compute qualify (pure affine lowerings), since
    the concrete race check passes unevaluable guards leniently. *)
let pinning_conds st (acc : sacc) : (Ast.expr * [ `Tx | `Ty ]) list =
  List.filter_map
    (fun g ->
      match g.sg_cond with
      | Ast.Binop (Eq, l, r) -> (
          match
            ( lower st ~binds:g.sg_binds ~frames:g.sg_frames l,
              lower st ~binds:g.sg_binds ~frames:g.sg_frames r )
          with
          | Aff fl, Aff fr -> (
              let f = sf_sub fl fr in
              let nz c =
                match lp_is_const c with
                | Some k -> k <> 0
                | None -> lp_provably_nonzero c
              in
              match List.filter (fun (v, _) -> not (svar_shared v)) f.sterms with
              | [ (Stidx, c) ] when nz c -> Some (g.sg_cond, `Tx)
              | [ (Stidy, c) ] when nz c -> Some (g.sg_cond, `Ty)
              | _ -> None)
          | _ -> None)
      | _ -> None)
    acc.x_guards

let race_rule space =
  if space = `Shared then Verify.rule_race_shared else Verify.rule_race_global

let prove_aff st (a : sacc) (b : sacc) (fa : sform) (fb : sform) :
    [ `Ok of Constraint.t | `Fail of string ] =
  match pair_delta fa fb with
  | Error m -> `Fail m
  | Ok d -> (
      let pins_a = pinning_conds st a and pins_b = pinning_conds st b in
      let pinned w =
        List.exists
          (fun (c, w') -> w' = w && List.exists (fun (c', w'') -> w'' = w && c' = c) pins_b)
          pins_a
      in
      match
        prove_delta ~caps:(caps_of st a b) ~pinned_tx:(pinned `Tx)
          ~pinned_ty:(pinned `Ty) d
      with
      | `Ok c -> `Ok c
      | `Fail m -> `Fail m
      | `Collide ->
          (* every pair of distinct threads lands on one element *)
          if
            (a.x_store || b.x_store)
            && a.x_guards = [] && b.x_guards = []
            && a.x_frames = [] && b.x_frames = []
          then
            violate st
              ~v_when:[ atom mono_threads `Ge 2 ]
              ~rule:(race_rule a.x_space) ~path:a.x_path
              (Printf.sprintf
                 "every pair of distinct threads touches the same element of \
                  %s in one barrier interval"
                 a.x_arr);
          `Ok [ atom mono_threads `Le 1 ])

let prove_pair st lay (a : sacc) (b : sacc) :
    [ `Ok of Constraint.t | `Fail of string ] =
  match (offset_form st lay a, offset_form st lay b) with
  | Oskip, _ | _, Oskip -> `Ok []
  | Ofail m, _ | _, Ofail m -> `Fail m
  | Omod (fa, ca), Omod (fb, cb) ->
      if ca = cb && fa = fb then
        if
          List.filter (fun (v, _) -> not (svar_shared v)) fa.sterms
          = [ (Stidx, lp_const 1); (Stidy, [ ([ Constraint.Bx ], 1) ]) ]
        then begin
          (* [lane mod ca]: injective over the block iff bx*by <= ca *)
          if
            (a.x_store || b.x_store)
            && ca + 1 <= 512
            && a.x_guards = [] && b.x_guards = []
            && a.x_frames = [] && b.x_frames = []
          then
            violate st
              ~v_when:[ atom mono_threads `Ge (ca + 1) ]
              ~rule:(race_rule a.x_space) ~path:a.x_path
              (Printf.sprintf
                 "lanes %d apart collide on %s through the mod-%d store \
                  whenever bx*by >= %d"
                 ca a.x_arr ca (ca + 1));
          `Ok [ atom mono_threads `Le ca ]
        end
        else `Fail "modular index is not a lane bijection"
      else `Fail "mismatched modular indices"
  | Omod _, _ | _, Omod _ -> `Fail "modular index paired with affine index"
  | Ovec (wa, fa), Ovec (wb, fb) ->
      if wa = wb then prove_aff st a b fa fb
      else `Fail "mixed vector widths"
  | Ovec _, Oaff _ | Oaff _, Ovec _ -> `Fail "vector paired with scalar access"
  | Oaff fa, Oaff fb -> prove_aff st a b fa fb

(* ------------------------------------------------------------------ *)
(* Bounds proving                                                      *)
(* ------------------------------------------------------------------ *)

(** Prove one access in bounds for every launch (up to emitted atoms).
    Opaque index dimensions are skipped: the concrete witness hunt
    cannot evaluate them, so no error can arise from them. *)
let prove_bounds st layouts (acc : sacc) : (Constraint.t, string) Stdlib.result
    =
  match Layout.find layouts acc.x_arr with
  | None -> Ok []
  | Some lay -> (
      let dims =
        match acc.x_kind with
        | `Sc idxs ->
            if List.length idxs <> List.length lay.Layout.pitches then []
            else List.map2 (fun e p -> (e, p, 1, 0)) idxs lay.Layout.pitches
        | `Vec (w, ie) -> [ (ie, Layout.size_elems lay, w, w - 1) ]
      in
      let clamps = lazy (guard_clamps st acc) in
      (* a guard whose lowered form is affine in a single symbolic
         variable with constant coefficient refines that variable's
         range for this access: e.g. a tile-prefetch guard
         [i + 16 < n] caps the loop counter of [i], which then bounds
         every index built from it.  Truncating division widens the
         refined interval, which only weakens the refinement. *)
      let refinements =
        lazy
          (List.fold_left
             (fun refs cl ->
               match cl.cl_form.sterms with
               | [ (v, cp) ] -> (
                   match
                     ( lp_is_const cp,
                       lp_is_const (lp_sub cl.cl_poly cl.cl_form.sc) )
                   with
                   | Some c, Some d when c > 0 -> (
                       match svar_range st v with
                       | None -> refs
                       | Some base ->
                           let q = d / c in
                           let cur =
                             Option.value (List.assoc_opt v refs)
                               ~default:{ base with rst = 1 }
                           in
                           let cur =
                             match cl.cl_kind with
                             | `Hi ->
                                 let hi =
                                   match lp_is_const cur.rhi with
                                   | Some b -> min b q
                                   | None -> q
                                 in
                                 { cur with rhi = lp_const hi }
                             | `Lo ->
                                 let lo =
                                   match lp_is_const cur.rlo with
                                   | Some b -> max b q
                                   | None -> q
                                 in
                                 { cur with rlo = lp_const lo }
                           in
                           (v, cur) :: List.remove_assoc v refs)
                   | _ -> refs)
               | _ -> refs)
             []
             (Lazy.force clamps))
      in
      let candidates v kind =
        let pick r = match kind with `Hi -> r.rhi | `Lo -> r.rlo in
        let base =
          match range_of st v with Some r -> [ pick r ] | None -> []
        in
        let base =
          base
          @
          match Lazy.force refinements with
          | [] -> []
          | refine -> (
              match range_of ~refine st v with
              | Some r -> [ pick r ]
              | None -> [])
        in
        match v with
        | Aff f ->
            base
            @ List.filter_map
                (fun cl ->
                  if cl.cl_kind <> kind then None
                  else
                    let d = sf_sub f cl.cl_form in
                    if d.sterms = [] then Some (lp_add cl.cl_poly d.sc)
                    else None)
                (Lazy.force clamps)
        | _ -> base
      in
      let check_dim (e, bound, scale, offs) =
        match lower st ~binds:acc.x_binds ~frames:acc.x_frames e with
        | Opq -> Ok []
        | v ->
            let lo_ok = List.exists lp_nonneg (candidates v `Lo) in
            if not lo_ok then
              Error
                (Printf.sprintf "cannot prove %s >= 0 in %s"
                   (Pp.expr_to_string e) acc.x_arr)
            else
              (* among independently sufficient alternatives prefer the
                 one provable at the most launches: a guard-refined
                 constant bound (empty conjunction) beats any launch
                 atom, and [gx <= 1 && bx <= 16] beats [bx*gx <= 4] *)
              let hi =
                List.concat_map
                  (fun h ->
                    lp_le_alts
                      (lp_add (lp_scale scale h) (lp_const offs))
                      (lp_const (bound - 1)))
                  (candidates v `Hi)
                |> List.sort_uniq compare
                |> function
                | [] -> None
                | [ c ] -> Some c
                | alts ->
                    Some
                      (List.map (fun c -> (coverage c, c)) alts
                      |> List.sort (fun (na, _) (nb, _) -> compare nb na)
                      |> List.hd |> snd)
              in
              (match hi with
              | Some cs -> Ok cs
              | None ->
                  Error
                    (Printf.sprintf "cannot prove %s < %d in %s"
                       (Pp.expr_to_string e) bound acc.x_arr))
      in
      List.fold_left
        (fun acc_r d ->
          match (acc_r, check_dim d) with
          | Ok c1, Ok c2 -> Ok (c1 @ c2)
          | (Error _ as e), _ | _, (Error _ as e) -> e)
        (Ok []) dims)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

type verdict =
  | Proved
  | Proved_when of Constraint.t
  | Unknown of string

type result = {
  res_kernel : string;
  verdict : verdict;
  violations : violation list;
}

let spaces_of (k : Ast.kernel) : (string * [ `Shared | `Global ]) list =
  let from_params =
    List.filter_map
      (fun (p : Ast.param) ->
        match p.p_ty with
        | Ast.Array { space = Global; _ } -> Some (p.p_name, `Global)
        | Array { space = Shared; _ } -> Some (p.p_name, `Shared)
        | _ -> None)
      k.k_params
  in
  let from_decls =
    Rewrite.declared_vars k.k_body
    |> List.filter_map (fun (name, ty) ->
           match ty with
           | Ast.Array { space = Shared; _ } -> Some (name, `Shared)
           | _ -> None)
  in
  from_params @ from_decls

let acc_key (a : sacc) =
  match a.x_kind with
  | `Sc idxs -> Pp.expr_to_string (Ast.Index (a.x_arr, idxs))
  | `Vec (w, ie) ->
      Pp.expr_to_string (Vload { v_arr = a.x_arr; v_width = w; v_index = ie })

let check_exn (k : Ast.kernel) : result =
  let st =
    {
      st_kernel = k.k_name;
      st_sizes = k.k_sizes;
      st_interval = 0;
      st_accs = [];
      st_violations = [];
      st_unknown = None;
      st_next_id = 0;
      st_ranges = [];
    }
  in
  let layouts = Layout.of_kernel k in
  let spaces = spaces_of k in
  let env0 =
    {
      s_binds = [];
      s_frames = [];
      s_guards = [];
      s_div_hard = false;
      s_div_soft = false;
      s_path = [];
      s_frozen_depth = 0;
    }
  in
  ignore (swalk_block st spaces env0 k.k_body);
  let accs = List.rev st.st_accs in
  let atoms = ref Constraint.tt in
  let require c = atoms := Constraint.conj !atoms c in
  let unknown () = st.st_unknown <> None in
  (* bounds first, once per distinct syntactic access: the phase is
     linear and its failures are common on transformed kernels, so
     bailing here skips the quadratic race phase when the verdict is
     already doomed to Unknown (the concrete fallback re-checks
     everything anyway) *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun a ->
      if not (unknown ()) then
        let key = (a.x_path, a.x_arr, a.x_store, acc_key a) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          match prove_bounds st layouts a with
          | Ok c -> require c
          | Error m -> give_up st m
        end)
    accs;
  (* races, interval by interval, array by array *)
  if not (unknown ()) then begin
    let intervals = Hashtbl.create 8 in
    List.iter
      (fun a ->
        Hashtbl.replace intervals a.x_interval
          (a :: (try Hashtbl.find intervals a.x_interval with Not_found -> [])))
      accs;
    Hashtbl.iter
      (fun _ group ->
        let by_arr = Hashtbl.create 8 in
        List.iter
          (fun a ->
            Hashtbl.replace by_arr a.x_arr
              (a :: (try Hashtbl.find by_arr a.x_arr with Not_found -> [])))
          (List.rev group);
        Hashtbl.iter
          (fun arr accs_arr ->
            let accs_arr = List.rev accs_arr in
            if
              (not (unknown ()))
              && List.exists (fun a -> a.x_store) accs_arr
            then
              match Layout.find layouts arr with
              | None -> ()
              | Some lay ->
                  let arr_accs = Array.of_list accs_arr in
                  let n = Array.length arr_accs in
                  let i = ref 0 in
                  while !i < n && not (unknown ()) do
                    let j = ref !i in
                    while !j < n && not (unknown ()) do
                      let a = arr_accs.(!i) and b = arr_accs.(!j) in
                      (if a.x_store || b.x_store then
                         match prove_pair st lay a b with
                         | `Ok c -> require c
                         | `Fail m ->
                             give_up st
                               (Printf.sprintf "%s: %s (%s)" arr m
                                  (if a.x_path = "" then "top level"
                                   else a.x_path)));
                      incr j
                    done;
                    incr i
                  done)
          by_arr)
      intervals
  end;
  let verdict =
    match st.st_unknown with
    | Some r -> Unknown r
    | None -> (
        match Constraint.normalize !atoms with
        | [] -> Proved
        | c -> Proved_when c)
  in
  { res_kernel = k.k_name; verdict; violations = List.rev st.st_violations }

let check (k : Ast.kernel) : result =
  try check_exn k
  with e ->
    {
      res_kernel = k.k_name;
      verdict = Unknown ("internal: " ^ Printexc.to_string e);
      violations = [];
    }

(* ------------------------------------------------------------------ *)
(* Deciding a concrete launch against a parametric result               *)
(* ------------------------------------------------------------------ *)

let decide (r : result) (launch : Ast.launch) :
    [ `Clean | `Errors of Verify.diagnostic list | `Unknown of string ] =
  let fired =
    List.filter (fun v -> Constraint.holds launch v.v_when) r.violations
  in
  if fired <> [] then
    `Errors
      (List.map
         (fun v ->
           {
             Verify.severity = Verify.Error;
             rule = v.v_rule;
             kernel = r.res_kernel;
             path = v.v_path;
             message = v.v_message;
           })
         fired)
  else
    match r.verdict with
    | Proved -> `Clean
    | Proved_when c when Constraint.holds launch c -> `Clean
    | Proved_when c ->
        `Unknown
          (Printf.sprintf "launch outside the proved region (%s)"
             (Constraint.to_string c))
    | Unknown m -> `Unknown m

(** A violation decidable from the block-thread product alone, e.g. for
    pruning explore candidates before any compilation. *)
let excludes_threads (r : result) ~(threads : int) : string option =
  List.find_map
    (fun v ->
      if Constraint.holds_at_threads ~threads v.v_when then Some v.v_rule
      else None)
    r.violations

let verdict_to_string = function
  | Proved -> "proved"
  | Proved_when c -> Printf.sprintf "proved-when(%s)" (Constraint.to_string c)
  | Unknown m -> Printf.sprintf "unknown(%s)" m

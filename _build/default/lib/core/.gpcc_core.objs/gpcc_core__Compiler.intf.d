lib/core/compiler.pp.mli: Gpcc_ast Gpcc_sim

(** Grid-level kernel execution.

    Two modes:
    - [Full] interprets every thread block — used by correctness tests,
      which compare device output arrays against CPU references, and by
      kernels containing [__global_sync] (the grid barrier splits the body
      into phases; every block finishes phase [p] before any block starts
      phase [p+1], with per-block thread state kept alive across phases);
    - [Sampled n] interprets [n] representative blocks of the first
      resident wave and scales their (identical-by-construction) per-block
      statistics to the whole grid. The sampled blocks have consecutive
      linear ids, which is exactly the set whose simultaneous memory
      traffic determines partition camping; their aligned transaction
      streams give the partition-efficiency estimate. *)

open Gpcc_ast
module Pool = Gpcc_util.Pool

type mode =
  | Full
  | Sampled of int

type result = {
  per_block : Stats.t;  (** average statistics of one thread block *)
  total : Stats.t;  (** scaled to the whole grid *)
  timing : Timing.result;
  sampled_blocks : int;
  partition_eff : float;
}

(** Split the kernel body at top-level [__global_sync] barriers
    (both backends agree on the same phase structure). *)
let phases_of_body = Compile.phases_of_body

(** Static memory-level-parallelism estimate: the largest number of global
    load sites inside one innermost loop body (independent loads from one
    warp overlap their latencies). *)
let mlp_estimate (k : Ast.kernel) : float =
  let globals =
    List.filter_map
      (fun (p : Ast.param) ->
        match p.p_ty with
        | Array { space = Global; _ } -> Some p.p_name
        | _ -> None)
      k.k_params
  in
  let count_sites (b : Ast.block) =
    Rewrite.collect_accesses b
    |> List.filter (fun (a, _, st) -> (not st) && List.mem a globals)
    |> List.length
  in
  (* a staging loop's iterations are independent loads: the warp keeps
     several in flight; a compute loop stalls at each load's use *)
  let is_staging_body (b : Ast.block) =
    b <> []
    && List.for_all
         (function Ast.Assign (Lindex _, _) -> true | _ -> false)
         b
  in
  let rec innermost_counts (b : Ast.block) : int list =
    List.concat_map
      (function
        | Ast.For l ->
            let inner = innermost_counts l.l_body in
            if inner <> [] then inner
            else if is_staging_body l.l_body && count_sites l.l_body > 0 then
              [ 8 ]
            else [ count_sites l.l_body ]
        | Ast.If (_, t, f) -> innermost_counts t @ innermost_counts f
        | _ -> [])
      b
  in
  let counts = innermost_counts k.k_body in
  (* straight-line kernels: every load in the body is independent *)
  let counts = if counts = [] then [ count_sites k.k_body ] else counts in
  let m = List.fold_left max 1 counts in
  float_of_int (min m 8)

(** Queue window: how many in-flight transactions per block the memory
    system can reorder across partitions. Sequential streams that cycle
    through partitions within this window reach full bandwidth; true
    camping (whole windows on one partition) does not. *)
let queue_window = 8

(** Partition efficiency from the aligned transaction streams of the
    sampled blocks: at each instant, count how many distinct partitions
    the concurrently executing blocks' next [queue_window] transactions
    cover. *)
let partition_efficiency (cfg : Config.t) (streams : int array list) : float =
  let streams = List.filter (fun s -> Array.length s > 0) streams in
  let s = List.length streams in
  if s <= 1 then 1.0
  else begin
    let len = List.fold_left (fun m a -> min m (Array.length a)) max_int streams in
    let denom = min cfg.num_partitions (s * queue_window) in
    (* keep windows fully inside the streams so tails do not skew *)
    let t_max = max 1 (len - queue_window + 1) in
    let step = max 1 (t_max / 512) in
    (* sliding multiset of the partitions inside the current window:
       [live] is the distinct count the old per-slice rescan computed,
       maintained incrementally so a slide costs O(step · streams)
       instead of O(window · streams) and allocates nothing *)
    let counts = Array.make cfg.num_partitions 0 in
    let live = ref 0 in
    let add p =
      let c = counts.(p) in
      counts.(p) <- c + 1;
      if c = 0 then incr live
    in
    let rm p =
      let c = counts.(p) - 1 in
      counts.(p) <- c;
      if c = 0 then decr live
    in
    let win_end t = min (len - 1) (t + queue_window - 1) in
    List.iter
      (fun st ->
        for u = 0 to win_end 0 do
          add st.(u)
        done)
      streams;
    let slices = ref 0 and acc = ref 0.0 in
    let t = ref 0 in
    let running = ref true in
    while !running do
      acc := !acc +. (float_of_int !live /. float_of_int denom);
      incr slices;
      let t' = !t + step in
      if t' < t_max then begin
        if step < queue_window then
          (* windows overlap: retire the entries sliding out, admit the
             ones sliding in (interior windows are never truncated) *)
          List.iter
            (fun st ->
              for u = !t to t' - 1 do
                rm st.(u)
              done;
              for u = win_end !t + 1 to win_end t' do
                add st.(u)
              done)
            streams
        else begin
          Array.fill counts 0 (Array.length counts) 0;
          live := 0;
          List.iter
            (fun st ->
              for u = t' to win_end t' do
                add st.(u)
              done)
            streams
        end;
        t := t'
      end
      else running := false
    done;
    if !slices = 0 then 1.0 else !acc /. float_of_int !slices
  end

let block_coords (launch : Ast.launch) (linear : int) =
  (linear mod launch.grid_x, linear / launch.grid_x)

(* --- simulator backends --- *)

type backend =
  | Reference  (** tree-walking {!Interp}; supports GPCC_CHECK *)
  | Compiled  (** closure-compiled {!Compile}; falls back to reference *)
  | Vector
      (** warp-vectorized {!Vector} on flat planes; falls back to
          compiled, then reference *)

let backend_name = function
  | Reference -> "reference"
  | Compiled -> "compiled"
  | Vector -> "vector"

(** Backend selected by the environment: [GPCC_BACKEND] is
    [vector]/[vec], [compiled], or [ref]/[reference]; the older
    [GPCC_INTERP=ref] spelling still forces the reference backend.
    Unset (or unrecognized) selects the vector backend. *)
let backend_of_env () =
  match Sys.getenv_opt "GPCC_BACKEND" with
  | Some ("vector" | "vec") -> Vector
  | Some ("compiled" | "compile") -> Compiled
  | Some ("ref" | "reference") -> Reference
  | _ -> (
      match Sys.getenv_opt "GPCC_INTERP" with
      | Some ("ref" | "reference") -> Reference
      | Some _ -> Compiled
      | None -> Vector)

(** Per-block execution state of any backend. *)
type bstate = Bref of Interp.bctx | Bcomp of Compile.rt | Bvec of Vector.vrt

(* --- execution pool ---

   Blocks of one phase are independent (CUDA requires inter-block race
   freedom within a grid phase), so Full and Sampled runs fan blocks out
   over a shared worker-domain pool. The pool is created lazily on first
   parallel run and never shut down. Per-block statistics are merged in
   block-index order at each barrier, so results do not depend on the
   interleaving. *)

let shared_pool = lazy (Pool.create ())

let with_exec_pool ?jobs (f : Pool.t option -> 'a) : 'a =
  match jobs with
  | Some j when j <= 1 -> f None
  | Some j -> Pool.with_pool ~jobs:j (fun p -> f (Some p))
  | None ->
      if Pool.default_jobs () <= 1 then f None
      else f (Some (Lazy.force shared_pool))

(* --- cumulative simulator wall clock --- *)

let sim_mutex = Mutex.create ()
let sim_total = ref 0.0

(** Wall-clock seconds spent inside {!run} since program start,
    cumulative over all calls (reported as [sim_wall_clock_s] in bench
    output). *)
let sim_seconds () =
  Mutex.lock sim_mutex;
  let t = !sim_total in
  Mutex.unlock sim_mutex;
  t

(* --- cumulative accounting-cache counters --- *)

type perf_counters = {
  pc_memo_hits : int;
  pc_memo_misses : int;
  pc_plane_hits : int;
  pc_plane_misses : int;
  pc_closed_form : int;
}

(** One snapshot of every accounting-cache counter: the {!Coalescer}
    request and plane memos (summed across worker domains, including
    exited ones) and the vector backend's closed-form loop replays. *)
let perf_counters () =
  {
    pc_memo_hits = Coalescer.memo_hits ();
    pc_memo_misses = Coalescer.memo_misses ();
    pc_plane_hits = Coalescer.plane_memo_hits ();
    pc_plane_misses = Coalescer.plane_memo_misses ();
    pc_closed_form = Vector.closed_form_credits ();
  }

(** Run a kernel. The caller is responsible for having bound every [int]
    parameter via [k_sizes] and allocated the arrays in [mem].
    [streams] bounds how many resident-wave blocks feed the
    partition-efficiency estimate. [backend] defaults to
    {!backend_of_env}; [jobs] bounds the worker domains ([1] forces
    serial execution). [GPCC_CHECK=1] forces the serial reference
    backend so the dynamic race checker sees every access.

    [block_budget] caps how many blocks are actually interpreted
    (partial simulation with early abort): [Full] runs the prefix of
    [b] linear block ids plus every partition-stream block beyond the
    prefix — the stream set is never thinned (see the NB below) —
    with multi-phase kernels still synchronising all simulated blocks
    at every grid barrier; [Sampled] caps only the spread statistics
    samples and deliberately keeps the full partition-stream set.
    Per-block statistics are averaged over the budgeted prefix (resp.
    the statistics samples) and [total]/[timing] are still scaled to
    the whole grid, so the result remains a whole-grid estimate;
    device memory, however, holds the output of a partial execution
    and must not be checked against a reference. *)
let run ?(mode = Full) ?(streams = 12) ?backend ?jobs ?block_budget
    (cfg : Config.t) (k : Ast.kernel) (launch : Ast.launch) (mem : Devmem.t) :
    result =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Unix.gettimeofday () -. t0 in
      Mutex.lock sim_mutex;
      sim_total := !sim_total +. dt;
      Mutex.unlock sim_mutex)
  @@ fun () ->
  let phases = phases_of_body k.k_body in
  let nblocks = Ast.total_blocks launch in
  let regs = Gpcc_analysis.Regcount.estimate k in
  let shared = Gpcc_analysis.Regcount.shared_bytes k in
  let occ0 =
    Occupancy.calc cfg ~regs_per_thread:regs ~shared_per_block:shared
      ~threads_per_block:(Ast.threads_per_block launch)
  in
  (* partition camping happens among the concurrently resident wave of
     blocks; sample that wave evenly (consecutive blocks alone miss
     schedules like the diagonal reorder, which spreads partitions across
     the wave, not between neighbors) *)
  let wave = min nblocks (cfg.num_sms * occ0.blocks_per_sm) in
  let stream_ids =
    (* [streams <= 1] requests a deliberate single-stream probe (see
       {!run_block}); camping is an inter-block effect, so any real
       estimate needs at least two streams *)
    let s = if streams <= 1 then 1 else max 2 (min streams wave) in
    List.init s (fun i -> i * wave / s) |> List.sort_uniq compare
  in
  let mode = if List.length phases > 1 then Full else mode in
  let budget =
    match block_budget with
    | None -> nblocks
    | Some b -> max 1 (min b nblocks)
  in
  (* NB: the budget must not thin the partition-stream set: those few
     blocks are what keeps the camping estimate unbiased (a prefix of
     linear ids systematically under-covers the partitions), and they
     are a negligible share of the cost being capped *)
  let check = Interp.env_check () in
  let backend =
    if check then Reference
    else match backend with Some b -> b | None -> backend_of_env ()
  in
  let jobs = if check then Some 1 else jobs in
  (* fallback chain: vector -> compiled -> reference; each backend
     notes its own fallback so the counters attribute unsupported
     shapes to the backend that rejected them *)
  let vprep =
    match backend with
    | Reference | Compiled -> None
    | Vector -> (
        match Vector.compile k launch with
        | Ok code -> (
            try Some (Vector.prepare code mem)
            with Vector.Unsupported _ ->
              Vector.note_fallback ();
              None)
        | Error _ ->
            Vector.note_fallback ();
            None)
  in
  let prep =
    if backend = Reference || vprep <> None then None
    else
      match Compile.compile k launch with
      | Ok code -> (
          try Some (Compile.prepare code mem)
          with Compile.Unsupported _ ->
            Compile.note_fallback ();
            None)
      | Error _ ->
          Compile.note_fallback ();
          None
  in
  let phases_arr = Array.of_list phases in
  let nph = Array.length phases_arr in
  let make_block ~record_tx lstats ~bidx ~bidy =
    match (vprep, prep) with
    | Some p, _ -> Bvec (Vector.make_block p cfg lstats ~record_tx ~bidx ~bidy)
    | None, Some p ->
        Bcomp (Compile.make_block p cfg lstats ~record_tx ~bidx ~bidy)
    | None, None ->
        Bref
          (Interp.make_bctx ~record_tx ~check cfg lstats k launch mem ~bidx
             ~bidy)
  in
  let exec_phase b p =
    match b with
    | Bvec rt -> Vector.run_phase (Option.get vprep) rt p
    | Bcomp rt -> Compile.run_phase (Option.get prep) rt p
    | Bref c -> Interp.run_block c phases_arr.(p)
  in
  let tx_stream b =
    let l =
      match b with
      | Bvec rt -> rt.Vector.c.Interp.txparts
      | Bcomp rt -> rt.Compile.c.Interp.txparts
      | Bref c -> c.Interp.txparts
    in
    Array.of_list (List.rev l)
  in
  let per_block, streams, sampled =
    match mode with
    | Full ->
        (* under a block budget the prefix of [budget] blocks runs
           (early abort) plus every partition-stream block beyond the
           prefix — the budget never thins the stream set (see the NB
           above); statistics are averaged over the prefix only, so the
           extra stream blocks cannot skew the whole-grid estimate *)
        let ids =
          Array.of_list
            (List.init budget Fun.id
            @ List.filter (fun i -> i >= budget) stream_ids)
        in
        let nrun = Array.length ids in
        let in_stream = Array.make nblocks false in
        List.iter (fun i -> in_stream.(i) <- true) stream_ids;
        (* per-block statistics merged in block order at the end, so the
           parallel interleaving cannot perturb the totals *)
        let bstats = Array.init nrun (fun _ -> Stats.create ()) in
        let chunks_of pool =
          match pool with
          | None -> [ (0, nrun - 1) ]
          | Some pool ->
              let nw = max 1 (Pool.size pool) in
              let nchunks = min nrun (nw * 4) in
              List.init nchunks (fun ci ->
                  (ci * nrun / nchunks, ((ci + 1) * nrun / nchunks) - 1))
        in
        let streams_arr = Array.make (max 1 nrun) [||] in
        if nph = 1 then
          (* single-phase: block state need not outlive its block, so
             each worker runs its chunk through one backend state,
             re-initialized per block (the vector backend reuses its
             planes in place) *)
          let run_range (lo, hi) =
            let prev = ref None in
            for j = lo to hi do
              let i = ids.(j) in
              let bx, by = block_coords launch i in
              let b =
                match (vprep, !prev) with
                | Some p, Some (Bvec rt) ->
                    Bvec
                      (Vector.remake_block p cfg bstats.(j)
                         ~record_tx:in_stream.(i) ~bidx:bx ~bidy:by rt)
                | _ ->
                    make_block ~record_tx:in_stream.(i) bstats.(j) ~bidx:bx
                      ~bidy:by
              in
              prev := Some b;
              exec_phase b 0;
              if in_stream.(i) then streams_arr.(j) <- tx_stream b
            done;
            (* the chunk's last block state goes back to the reuse pool
               for the next run of the same code *)
            match (vprep, !prev) with
            | Some p, Some (Bvec rt) -> Vector.retire p rt
            | _ -> ()
          in
          with_exec_pool ?jobs (fun pool ->
              (* contiguous chunks in index order ([ids] is ascending):
                 Pool.map re-raises the earliest failing chunk, whose
                 first failure is the globally lowest failing block,
                 like serial *)
              match pool with
              | None -> run_range (0, nrun - 1)
              | Some p -> ignore (Pool.map p run_range (chunks_of pool)))
        else begin
          (* create block state upfront so thread state persists across
             global-sync phases *)
          let blocks =
            Array.init nrun (fun j ->
                let i = ids.(j) in
                let bx, by = block_coords launch i in
                make_block ~record_tx:in_stream.(i) bstats.(j) ~bidx:bx
                  ~bidy:by)
          in
          with_exec_pool ?jobs (fun pool ->
              for p = 0 to nph - 1 do
                (* barrier between phases: every block finishes phase [p]
                   before any block starts phase [p+1] *)
                match pool with
                | None -> Array.iter (fun b -> exec_phase b p) blocks
                | Some pool ->
                    ignore
                      (Pool.map pool
                         (fun (lo, hi) ->
                           for i = lo to hi do
                             exec_phase blocks.(i) p
                           done)
                         (chunks_of (Some pool)))
              done);
          Array.iteri
            (fun j b ->
              if in_stream.(ids.(j)) then streams_arr.(j) <- tx_stream b)
            blocks;
          match vprep with
          | Some p ->
              Array.iter
                (function Bvec rt -> Vector.retire p rt | _ -> ())
                blocks
          | None -> ()
        end;
        let stats = Stats.create () in
        for j = 0 to budget - 1 do
          Stats.add stats bstats.(j)
        done;
        let streams = ref [] in
        for j = nrun - 1 downto 0 do
          if in_stream.(ids.(j)) then streams := streams_arr.(j) :: !streams
        done;
        (Stats.scale (1.0 /. float_of_int budget) stats, !streams, budget)
    | Sampled n ->
        (* two sample sets: statistics come from blocks spread evenly over
           the whole grid (work can vary with the block id, e.g.
           triangular kernels); partition streams come from consecutive
           first-wave blocks, the set whose simultaneous traffic causes
           camping *)
        let s = max 1 (min n budget) in
        let spread =
          List.init s (fun i -> i * nblocks / s) |> List.sort_uniq compare
        in
        let in_spread = Array.make nblocks false in
        List.iter (fun i -> in_spread.(i) <- true) spread;
        let in_consec = Array.make nblocks false in
        List.iter
          (fun i -> if i < nblocks then in_consec.(i) <- true)
          stream_ids;
        let tasks =
          List.map (fun i -> (i, true, in_spread.(i))) stream_ids
          @ (List.filter (fun i -> not in_consec.(i)) spread
            |> List.map (fun i -> (i, false, true)))
        in
        let run_one (i, record, count) =
          let bx, by = block_coords launch i in
          let local = Stats.create () in
          let b = make_block ~record_tx:record local ~bidx:bx ~bidy:by in
          (match
             for p = 0 to nph - 1 do
               exec_phase b p
             done
           with
          | () -> ()
          | exception Interp.Runtime_error m ->
              raise
                (Interp.Runtime_error
                   (Printf.sprintf "%s (block %d,%d)" m bx by)));
          let stream = if record then Some (tx_stream b) else None in
          (match (vprep, b) with
          | Some p, Bvec rt -> Vector.retire p rt
          | _ -> ());
          (local, count, stream)
        in
        let results =
          with_exec_pool ?jobs (fun pool ->
              match pool with
              | None -> List.map run_one tasks
              | Some pool -> Pool.map pool run_one tasks)
        in
        let stats = Stats.create () in
        let stat_runs = ref 0 in
        let streams = ref [] in
        List.iter
          (fun (local, count, stream) ->
            if count then begin
              Stats.add stats local;
              incr stat_runs
            end;
            match stream with
            | Some s -> streams := s :: !streams
            | None -> ())
          results;
        let denom = float_of_int (max 1 !stat_runs) in
        (Stats.scale (1.0 /. denom) stats, List.rev !streams, !stat_runs)
  in
  per_block.Stats.loads_in_flight <- mlp_estimate k;
  let partition_eff = partition_efficiency cfg streams in
  let timing =
    Timing.estimate cfg ~per_block ~launch ~regs_per_thread:regs
      ~shared_per_block:shared ~partition_eff
      ~mlp:per_block.Stats.loads_in_flight
  in
  {
    per_block;
    total = Stats.scale (float_of_int nblocks) per_block;
    timing;
    sampled_blocks = sampled;
    partition_eff;
  }

(** Probe run for the exploration funnel's analytic pre-ranking: a
    single representative block (linear id 0), serially, through every
    phase. With one block there is a single transaction stream, so
    [partition_eff] is always 1.0 — inter-block partition camping is
    invisible to a probe, which is exactly what
    {!Gpcc_analysis.Cost_model.memory_optimism} corrects for. *)
let run_block ?backend (cfg : Config.t) (k : Ast.kernel)
    (launch : Ast.launch) (mem : Devmem.t) : result =
  run ~mode:Full ~streams:1 ?backend ~jobs:1 ~block_budget:1 cfg k launch mem

(** Type and shape checker for kernels: declaration-before-use, array
    ranks, operand types (with C-style int-to-float promotion), vector
    fields, pragma validity, and structural rules such as
    [__global_sync] only at top level. *)

exception Type_error of string

type env = (string * Ast.ty) list

(** Signatures of the supported intrinsics ([sqrtf], [fmaxf],
    [make_float2], ...). *)
val intrinsics : (string * (Ast.scalar list * Ast.scalar)) list

(** Type of an expression under an environment; raises {!Type_error}. *)
val type_of_expr : env -> Ast.expr -> Ast.scalar

(** Check a whole kernel; raises {!Type_error} on the first violation. *)
val check : Ast.kernel -> unit

val check_result : Ast.kernel -> (unit, string) result

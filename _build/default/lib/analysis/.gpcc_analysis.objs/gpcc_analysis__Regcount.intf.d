lib/analysis/regcount.pp.mli: Gpcc_ast

lib/passes/prefetch.pp.ml: Ast Gpcc_analysis Gpcc_ast Gpcc_sim List Pass_util Printf Rewrite

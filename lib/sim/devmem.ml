(** Simulated device (off-chip) memory.

    Arrays live in one virtual address space so that partition behaviour is
    realistic: each array gets a base address aligned to the partition
    width, and element addresses follow the padded layout that the compiler
    and the analysis agree on ({!Gpcc_analysis.Layout}). All global arrays
    hold 32-bit floats (vector types are views of consecutive floats, as in
    CUDA). *)

open Gpcc_analysis

type fmem = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Float64, not float32: OCaml [float] is 64-bit, and a float32 plane
   would round on every store — the backends must stay bit-identical. *)
let falloc (n : int) : fmem =
  let a = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (max 1 n) in
  Bigarray.Array1.fill a 0.0;
  a

type arr = {
  lay : Layout.t;
  base : int;  (** byte address of element 0 *)
  strides : int array;  (** padded strides, precomputed from [lay] *)
  data : fmem;  (** padded storage, row-major over pitches *)
}

type t = {
  mutable next_base : int;
  arrays : (string, arr) Hashtbl.t;
}

let create () = { next_base = 0; arrays = Hashtbl.create 16 }

let align_up n a = (n + a - 1) / a * a

let alloc (t : t) (lay : Layout.t) : arr =
  let base = align_up t.next_base 256 in
  let a =
    {
      lay;
      base;
      strides = Array.of_list (Layout.strides lay);
      data = falloc (Layout.size_elems lay);
    }
  in
  t.next_base <- base + Layout.size_bytes lay;
  Hashtbl.replace t.arrays lay.Layout.name a;
  a

(** Allocate every global array parameter of a kernel (padded layouts). *)
let of_kernel (k : Gpcc_ast.Ast.kernel) : t =
  let t = create () in
  let layouts = Layout.of_kernel k in
  List.iter
    (fun (p : Gpcc_ast.Ast.param) ->
      match p.p_ty with
      | Array { space = Global; _ } ->
          ignore (alloc t (List.assoc p.p_name layouts))
      | _ -> ())
    k.k_params;
  t

let find (t : t) name = Hashtbl.find_opt t.arrays name

let find_exn (t : t) name =
  match find t name with
  | Some a -> a
  | None -> invalid_arg ("Devmem.find_exn: no array " ^ name)

(** Padded flat offset of a logical multi-index. *)
let offset (a : arr) (indices : int list) : int =
  let acc = ref 0 in
  List.iteri (fun d i -> acc := !acc + (i * a.strides.(d))) indices;
  !acc

(* Row-major copy between logical values and padded storage without
   materializing an index list per element: offsets accumulate down the
   dimensions and the innermost loop runs dense (strides of 1 are the
   common unpadded case). [dir] true = values -> storage. *)
let copy_logical (a : arr) (values : float array) ~(dir : bool) : unit =
  let dims = Array.of_list a.lay.Layout.dims in
  let nd = Array.length dims in
  if nd = 0 then begin
    if dir then a.data.{0} <- values.(0) else values.(0) <- a.data.{0}
  end
  else
    let i = ref 0 in
    let rec go d off =
      let s = a.strides.(d) in
      if d = nd - 1 then
        if s = 1 then begin
          let k = !i in
          if dir then
            for j = 0 to dims.(d) - 1 do
              a.data.{off + j} <- values.(k + j)
            done
          else
            for j = 0 to dims.(d) - 1 do
              values.(k + j) <- a.data.{off + j}
            done;
          i := k + dims.(d)
        end
        else
          for j = 0 to dims.(d) - 1 do
            if dir then a.data.{off + (j * s)} <- values.(!i)
            else values.(!i) <- a.data.{off + (j * s)};
            incr i
          done
      else
        for j = 0 to dims.(d) - 1 do
          go (d + 1) (off + (j * s))
        done
    in
    go 0 0

(** Write a logical row-major float array into the padded storage. *)
let write (t : t) name (values : float array) : unit =
  let a = find_exn t name in
  let logical_size = List.fold_left ( * ) 1 a.lay.Layout.dims in
  if Array.length values <> logical_size then
    invalid_arg
      (Printf.sprintf "Devmem.write %s: expected %d values, got %d" name
         logical_size (Array.length values));
  copy_logical a values ~dir:true

(** Read the logical row-major contents out of the padded storage. *)
let read (t : t) name : float array =
  let a = find_exn t name in
  let logical_size = List.fold_left ( * ) 1 a.lay.Layout.dims in
  let out = Array.make logical_size 0.0 in
  copy_logical a out ~dir:false;
  out

let fill (t : t) name (f : int -> float) : unit =
  let a = find_exn t name in
  let logical_size = List.fold_left ( * ) 1 a.lay.Layout.dims in
  write t name (Array.init logical_size f)

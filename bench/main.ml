(** Benchmark harness: regenerates every table and figure of the paper's
    evaluation (Section 6) on the GPU simulator, plus Bechamel
    micro-benchmarks of the compiler itself.

    Usage:
      dune exec bench/main.exe                 (all sections)
      dune exec bench/main.exe -- fig11 fig13  (selected sections)
      GPCC_FAST=1 dune exec bench/main.exe     (reduced sizes)
      dune exec bench/main.exe -- --jobs=4 fig11   (search parallelism;
                                                    GPCC_JOBS=N also works)

    Design-space searches fan out across a pool of worker domains and
    persist measured scores in the on-disk exploration cache (default
    [_gpcc_cache/], override with GPCC_CACHE_DIR), so repeated runs skip
    already-measured points. Each section additionally writes a
    machine-readable [BENCH_<section>.json] next to the working
    directory: per-workload numbers, the empirically chosen
    configurations, cache hit/miss counts and wall-clock — see the
    README for the schema.

    Absolute numbers come from the machine model; the claims reproduced
    are the paper's *shapes*: who wins, by roughly what factor, and where
    the crossovers are. EXPERIMENTS.md records paper-vs-measured. *)

open Gpcc_workloads

let fast = Sys.getenv_opt "GPCC_FAST" <> None
let gtx280 = Gpcc_sim.Config.gtx280
let gtx8800 = Gpcc_sim.Config.gtx8800

(* worker-pool size: --jobs=N > GPCC_JOBS > the machine's domain count
   (Pool.default_jobs). [jobs_requested] keeps what was asked for so the
   JSON can record request and effective value separately. *)
let jobs = ref (Gpcc_core.Pool.default_jobs ())
let jobs_requested = ref None

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let note fmt = Printf.ksprintf (fun s -> Printf.printf "  (%s)\n" s) fmt

(* ------------------------------------------------------------------ *)
(* Machine-readable results: one BENCH_<section>.json per section      *)
(* ------------------------------------------------------------------ *)

module Record = struct
  let rows : Json_out.t list ref = ref []
  let add fields = rows := Json_out.Obj fields :: !rows
  let reset () = rows := []
  let take () = List.rev !rows
end

(* ------------------------------------------------------------------ *)
(* Configuration selection: the paper's empirical search (Section 4)   *)
(* ------------------------------------------------------------------ *)

(* cheap workloads are probed at full size; expensive ones at a smaller
   probe (the paper notes the optimum depends on the input size — the
   probe is the concession that makes simulation affordable) *)
let probe_size (w : Workload.t) n =
  if w.flops n < 5e7 then n else min n (if fast then 256 else 512)

(* measured scores persist across runs in the on-disk cache; the chosen
   configs are additionally memoized per process to skip re-deriving *)
let explore_cache = lazy (Gpcc_core.Explore_cache.open_dir ())
let chosen_configs : (string, int * int) Hashtbl.t = Hashtbl.create 32

(** Best (threads-per-block, merge-degree) for a workload on a GPU, found
    by compiling every Section-4 configuration and running the
    model-guided funnel ({!Gpcc_core.Explore.search_funnel}): analytic
    pre-ranking on single-block probes, successive halving on partial
    simulations, full measurement of the finalists only — fanned out
    across the domain pool, with scores served from the persistent
    exploration cache when available. Selects the same winner as the
    exhaustive sweep (the invariant the test suite and CI enforce). *)
let best_config (cfg : Gpcc_sim.Config.t) (w : Workload.t) (n : int) :
    int * int =
  let pn = probe_size w n in
  let key = Printf.sprintf "%s/%s/%d" cfg.name w.name pn in
  match Hashtbl.find_opt chosen_configs key with
  | Some c -> c
  | None ->
      let k = Workload.parse w pn in
      let cands, failures, _stats =
        Gpcc_core.Explore.search_funnel ~cfg ~jobs:!jobs
          ~cache:(Lazy.force explore_cache)
          ~cache_prefix:("bench/sample1/streams3/" ^ key)
          ~budget_sensitive:(Workload.budget_sensitive w pn) k
          ~predict:(Workload.predict_gflops cfg w pn)
          ~measure:(Workload.measure_gflops_blocks ~sample:1 ~streams:3 cfg w pn)
      in
      let chosen =
        match Gpcc_core.Explore.best_measured cands with
        | Some b when b.score > Float.neg_infinity ->
            (b.target_block_threads, b.merge_degree)
        | _ ->
            (* every candidate failed to compile or measure: make the
               fallback loud instead of silently pretending (256,16) was
               empirically selected *)
            Logs.warn (fun m ->
                m
                  "design-space search for %s: no runnable candidate (%d \
                   candidates, %d failures); falling back to (256,16)"
                  key (List.length cands) (List.length failures));
            List.iter
              (fun (f : Gpcc_core.Explore.failure) ->
                Logs.debug (fun m ->
                    m "  t=%d d=%d %s: %s" f.failed_target f.failed_degree
                      (match f.failed_stage with
                      | `Compile -> "compile"
                      | `Verify -> "verify"
                      | `Predict -> "predict"
                      | `Measure -> "measure")
                      f.reason))
              failures;
            (256, 16)
      in
      Hashtbl.replace chosen_configs key chosen;
      chosen

(** Compile a workload at size [n] with the empirically chosen knobs. *)
let compile_best (cfg : Gpcc_sim.Config.t) (w : Workload.t) (n : int) :
    Gpcc_core.Pipeline.result =
  let target, degree = best_config cfg w n in
  let pipeline =
    Gpcc_core.Pipeline.default ~cfg ~target_block_threads:target
      ~merge_degree:degree ()
  in
  Gpcc_core.Pipeline.run ~pipeline (Workload.parse w n)

let measure_naive ?(sample = 4) cfg (w : Workload.t) n =
  let k = Workload.parse w n in
  let launch = Option.get (Gpcc_passes.Pass_util.naive_launch k) in
  Workload.measure ~sample cfg w n k launch

let measure_opt ?(sample = 4) cfg (w : Workload.t) n =
  let r = compile_best cfg w n in
  Workload.measure ~sample cfg w n r.kernel r.launch

let geomean = function
  | [] -> 0.0
  | xs ->
      exp (List.fold_left (fun a x -> a +. log (Float.max 1e-9 x)) 0.0 xs
           /. float_of_int (List.length xs))

(* ------------------------------------------------------------------ *)
(* Table 1                                                              *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1: algorithms optimized with the compiler";
  Printf.printf "  %-14s %-42s %-22s %s\n" "algorithm" "description"
    "input sizes" "naive LOC";
  List.iter
    (fun (w : Workload.t) ->
      Printf.printf "  %-14s %-42s %-22s %d\n" w.name w.description
        (String.concat "," (List.map string_of_int w.sizes))
        (Workload.naive_loc w))
    Registry.all;
  note "paper LOC: tmv 11, mm 10, mv 11, vv 3, rd 9, strsm 18, conv 12, tp 11, demosaicing 27, imregionmax 26"

(* ------------------------------------------------------------------ *)
(* Figure 10: mm design space on GTX 280                                *)
(* ------------------------------------------------------------------ *)

let fig10 () =
  section "Figure 10: mm performance vs merge configuration (GTX 280)";
  let w = Registry.find_exn "mm" in
  let sizes = if fast then [ 256 ] else [ 512; 1024 ] in
  List.iter
    (fun n ->
      Printf.printf "  n=%d (GFLOPS; rows: threads/block, cols: thread-merge degree)\n" n;
      Printf.printf "  %8s" "";
      List.iter (fun d -> Printf.printf " %8d" d) [ 4; 8; 16; 32 ];
      print_newline ();
      List.iter
        (fun target ->
          Printf.printf "  %8d" target;
          List.iter
            (fun degree ->
              let pipeline =
                Gpcc_core.Pipeline.default ~cfg:gtx280
                  ~target_block_threads:target ~merge_degree:degree ()
              in
              match Gpcc_core.Pipeline.run ~pipeline (Workload.parse w n) with
              | r -> (
                  match
                    Workload.measure ~sample:1 ~streams:4 gtx280 w n r.kernel
                      r.launch
                  with
                  | t -> Printf.printf " %8.1f" t.gflops
                  | exception _ -> Printf.printf " %8s" "-")
              | exception _ -> Printf.printf " %8s" "-")
            [ 4; 8; 16; 32 ];
          print_newline ())
        [ 128; 256; 512 ];
      print_newline ())
    sizes;
  note "paper: optimum at 16 merged blocks along X with 16-way thread merge; ridge along moderate configurations, cliffs at resource limits"

(* ------------------------------------------------------------------ *)
(* Figure 11: optimized vs naive speedups, both GPUs                    *)
(* ------------------------------------------------------------------ *)

let fig11_size (w : Workload.t) =
  let n = if fast then w.test_size * 4 else w.bench_size in
  max n w.test_size

let fig11 () =
  section "Figure 11: kernel speedup of optimized over naive";
  Printf.printf "  %-14s %8s | %10s %10s %8s | %10s %10s %8s\n" "" "size"
    "8800-naive" "8800-opt" "speedup" "280-naive" "280-opt" "speedup";
  let speedups8800 = ref [] and speedups280 = ref [] in
  List.iter
    (fun (w : Workload.t) ->
      let n = fig11_size w in
      (* transpose has no flops: report effective bandwidth instead;
         speedups are always time-based *)
      let metric t =
        if w.flops n > 0.0 then t.Gpcc_sim.Timing.gflops
        else Workload.effective_bandwidth w n t
      in
      let row cfg acc =
        try
          let tn = measure_naive cfg w n in
          let topt = measure_opt cfg w n in
          let s = tn.time_ms /. Float.max 1e-9 topt.time_ms in
          acc := s :: !acc;
          let target, degree = best_config cfg w n in
          Record.add
            [
              ("workload", Json_out.Str w.name);
              ("gpu", Json_out.Str cfg.Gpcc_sim.Config.name);
              ("size", Json_out.Int n);
              ( "metric",
                Json_out.Str (if w.flops n > 0.0 then "gflops" else "gbps") );
              ("naive", Json_out.Float (metric tn));
              ("optimized", Json_out.Float (metric topt));
              ("speedup", Json_out.Float s);
              ( "config",
                Json_out.Obj
                  [
                    ("threads_per_block", Json_out.Int target);
                    ("merge_degree", Json_out.Int degree);
                  ] );
            ];
          Printf.sprintf "%10.2f %10.2f %7.1fx" (metric tn) (metric topt) s
        with e ->
          Record.add
            [
              ("workload", Json_out.Str w.name);
              ("gpu", Json_out.Str cfg.Gpcc_sim.Config.name);
              ("size", Json_out.Int n);
              ("error", Json_out.Str (Printexc.to_string e));
            ];
          Printf.sprintf "error: %s" (Printexc.to_string e)
      in
      let r8800 = row gtx8800 speedups8800 in
      let r280 = row gtx280 speedups280 in
      Printf.printf "  %-14s %8d | %s | %s\n%!" w.name n r8800 r280)
    Registry.all;
  Printf.printf "  %-14s %8s | %22s %7.1fx | %22s %7.1fx\n" "geometric mean"
    "" "" (geomean !speedups8800) "" (geomean !speedups280);
  note "paper: geometric means 15.1x (GTX8800) and 7.9x (GTX280); GTX280 benefits less because relaxed coalescing improves its naive baseline"

(* ------------------------------------------------------------------ *)
(* Figure 12: effect of each optimization step                          *)
(* ------------------------------------------------------------------ *)

let fig12 () =
  section "Figure 12: cumulative effect of each compilation step (geomean over kernels)";
  let stage_labels =
    [
      "naive"; "+vectorization"; "+coalescing"; "+thread/block merge";
      "+prefetching"; "+partition camping elim.";
    ]
  in
  List.iter
    (fun cfg ->
      let per_stage = Array.make (List.length stage_labels) [] in
      List.iter
        (fun (w : Workload.t) ->
          let n = fig11_size w in
          let target, degree = best_config cfg w n in
          try
            let stages =
              Gpcc_core.Pipeline.staged ~cfg ~target_block_threads:target
                ~merge_degree:degree (Workload.parse w n)
            in
            let naive_ms = ref None in
            List.iteri
              (fun i (_, kernel, launch) ->
                match Workload.measure ~sample:2 ~streams:6 cfg w n kernel launch with
                | t ->
                    (match !naive_ms with
                    | None -> naive_ms := Some (Float.max 1e-9 t.time_ms)
                    | Some _ -> ());
                    let base = Option.get !naive_ms in
                    per_stage.(i) <- (base /. Float.max 1e-9 t.time_ms) :: per_stage.(i)
                | exception _ -> ())
              stages
          with _ -> ())
        Registry.all;
      Printf.printf "  %s:\n" cfg.Gpcc_sim.Config.name;
      List.iteri
        (fun i label ->
          Printf.printf "    %-28s %6.2fx\n%!" label (geomean per_stage.(i)))
        stage_labels)
    [ gtx8800; gtx280 ];
  note "paper: thread/thread-block merge has the largest impact; prefetching shows little impact (skipped when registers are exhausted); camping elimination matters more on GTX280"

(* ------------------------------------------------------------------ *)
(* Figure 13: optimized vs CUBLAS 2.2 on GTX 280                        *)
(* ------------------------------------------------------------------ *)

let fig13 () =
  section "Figure 13: optimized kernels vs CUBLAS 2.2 (GTX 280, GFLOPS)";
  let sizes_for (w : Workload.t) =
    match w.name with
    | "rd" -> if fast then [ 262144 ] else [ 1048576; 4194304 ]
    | "vv" -> [ 1024; 4096 ]
    | _ -> if fast then [ 512 ] else [ 1024; 2048 ]
  in
  let ratios = ref [] in
  List.iter
    (fun (w : Workload.t) ->
      if w.in_cublas then
        List.iter
          (fun n ->
            try
              let topt = measure_opt gtx280 w n in
              let c = Option.get (Cublas_sim.find w.name) in
              let kc = Cublas_sim.kernel c n in
              let tc = Workload.measure gtx280 w n kc (c.c_launch n) in
              let ratio = topt.gflops /. Float.max 1e-9 tc.gflops in
              ratios := ratio :: !ratios;
              Record.add
                [
                  ("workload", Json_out.Str w.name);
                  ("gpu", Json_out.Str gtx280.Gpcc_sim.Config.name);
                  ("size", Json_out.Int n);
                  ("metric", Json_out.Str "gflops");
                  ("optimized", Json_out.Float topt.gflops);
                  ("cublas", Json_out.Float tc.gflops);
                  ("ratio", Json_out.Float ratio);
                ];
              Printf.printf "  %-8s n=%-8d ours %8.2f | cublas %8.2f | ratio %5.2fx\n%!"
                w.name n topt.gflops tc.gflops ratio
            with e ->
              Printf.printf "  %-8s n=%-8d error: %s\n%!" w.name n
                (Printexc.to_string e))
          (sizes_for w))
    Registry.all;
  Printf.printf "  geometric-mean ratio over all points: %.2fx\n" (geomean !ratios);
  note "paper: better than CUBLAS on tmv, mv, vv, strsm; within 2%% on mm and rd; 26-33%% average improvement"

(* ------------------------------------------------------------------ *)
(* Figure 14: vectorization of the complex reduction                    *)
(* ------------------------------------------------------------------ *)

let fig14 () =
  section "Figure 14: complex reduction with and without vectorization (GTX 280)";
  let w = Registry.find_exn "rd-complex" in
  let sizes = if fast then [ 262144 ] else [ 1048576; 4194304 ] in
  List.iter
    (fun n ->
      try
        let target, degree = best_config gtx280 w n in
        let pipeline =
          Gpcc_core.Pipeline.default ~cfg:gtx280 ~target_block_threads:target
            ~merge_degree:degree ()
        in
        let with_vec = Gpcc_core.Pipeline.run ~pipeline (Workload.parse w n) in
        let without =
          Gpcc_core.Pipeline.run
            ~pipeline:
              (Gpcc_core.Pipeline.disable [ "vectorize-wide"; "vectorize" ]
                 pipeline)
            (Workload.parse w n)
        in
        let tv = Workload.measure gtx280 w n with_vec.kernel with_vec.launch in
        let tw = Workload.measure gtx280 w n without.kernel without.launch in
        Record.add
          [
            ("workload", Json_out.Str w.name);
            ("gpu", Json_out.Str gtx280.Gpcc_sim.Config.name);
            ("size", Json_out.Int n);
            ("metric", Json_out.Str "gflops");
            ("optimized", Json_out.Float tv.gflops);
            ("optimized_wo_vectorize", Json_out.Float tw.gflops);
            ( "vectorization_gain",
              Json_out.Float (tv.gflops /. Float.max 1e-9 tw.gflops) );
          ];
        Printf.printf
          "  n=%-8d optimized %8.2f GFLOPS | optimized_wo_vec %8.2f GFLOPS | vectorization gain %.2fx\n%!"
          n tv.gflops tw.gflops (tv.gflops /. Float.max 1e-9 tw.gflops)
      with e -> Printf.printf "  n=%d error: %s\n%!" n (Printexc.to_string e))
    sizes;
  note "paper: vectorization significantly better — float2 bandwidth plus direct register loads instead of shared-memory destaging"

(* ------------------------------------------------------------------ *)
(* Figure 15: transpose bandwidth                                       *)
(* ------------------------------------------------------------------ *)

let fig15 () =
  section "Figure 15: transpose effective bandwidth (GTX 280, GB/s)";
  let w = Registry.find_exn "tp" in
  let sizes = if fast then [ 1024 ] else [ 1024; 2048; 4096 ] in
  Printf.printf "  %8s %10s %10s %10s %10s\n" "size" "naive" "SDK-prev"
    "SDK-new" "ours";
  List.iter
    (fun n ->
      try
        let bw t = Workload.effective_bandwidth w n t in
        let tn = measure_naive gtx280 w n in
        let kp, lp = Sdk_transpose.prev n in
        let tp_ = Workload.measure gtx280 w n kp lp in
        let kn, ln = Sdk_transpose.new_ n in
        let tnew = Workload.measure gtx280 w n kn ln in
        let to_ = measure_opt gtx280 w n in
        Record.add
          [
            ("workload", Json_out.Str w.name);
            ("gpu", Json_out.Str gtx280.Gpcc_sim.Config.name);
            ("size", Json_out.Int n);
            ("metric", Json_out.Str "gbps");
            ("naive", Json_out.Float (bw tn));
            ("sdk_prev", Json_out.Float (bw tp_));
            ("sdk_new", Json_out.Float (bw tnew));
            ("optimized", Json_out.Float (bw to_));
          ];
        Printf.printf "  %8d %10.1f %10.1f %10.1f %10.1f\n%!" n (bw tn)
          (bw tp_) (bw tnew) (bw to_)
      with e -> Printf.printf "  %8d error: %s\n%!" n (Printexc.to_string e))
    sizes;
  note "paper: naive << SDK-prev (partition camping) < SDK-new ~ ours (diagonal reordering); ours matches or beats the SDK version"

(* ------------------------------------------------------------------ *)
(* Figure 16: mv and partition camping                                  *)
(* ------------------------------------------------------------------ *)

let fig16 () =
  section "Figure 16: mv — naive / optimized without camping elimination / optimized / CUBLAS (GTX 280, GFLOPS)";
  let w = Registry.find_exn "mv" in
  let sizes = if fast then [ 512; 1024 ] else [ 1024; 2048; 4096 ] in
  Printf.printf "  %8s %10s %12s %10s %10s\n" "size" "naive" "Opti_PC"
    "optimized" "CUBLAS";
  List.iter
    (fun n ->
      try
        let tn = measure_naive gtx280 w n in
        let target, degree = best_config gtx280 w n in
        let pipeline =
          Gpcc_core.Pipeline.default ~cfg:gtx280 ~target_block_threads:target
            ~merge_degree:degree ()
        in
        let nopc =
          Gpcc_core.Pipeline.run
            ~pipeline:
              (Gpcc_core.Pipeline.disable [ "partition-camping" ] pipeline)
            (Workload.parse w n)
        in
        let full = Gpcc_core.Pipeline.run ~pipeline (Workload.parse w n) in
        let tnopc = Workload.measure gtx280 w n nopc.kernel nopc.launch in
        let tfull = Workload.measure gtx280 w n full.kernel full.launch in
        let c = Option.get (Cublas_sim.find "mv") in
        let tc =
          Workload.measure gtx280 w n (Cublas_sim.kernel c n) (c.c_launch n)
        in
        Record.add
          [
            ("workload", Json_out.Str w.name);
            ("gpu", Json_out.Str gtx280.Gpcc_sim.Config.name);
            ("size", Json_out.Int n);
            ("metric", Json_out.Str "gflops");
            ("naive", Json_out.Float tn.gflops);
            ("optimized_no_camping_elim", Json_out.Float tnopc.gflops);
            ("optimized", Json_out.Float tfull.gflops);
            ("cublas", Json_out.Float tc.gflops);
          ];
        Printf.printf "  %8d %10.2f %12.2f %10.2f %10.2f\n%!" n tn.gflops
          tnopc.gflops tfull.gflops tc.gflops
      with e -> Printf.printf "  %8d error: %s\n%!" n (Printexc.to_string e))
    sizes;
  note "paper: Opti_PC already beats CUBLAS; eliminating partition camping improves it further"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the compiler itself                     *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  section "Compiler micro-benchmarks (Bechamel, wall time of gpcc itself)";
  let open Bechamel in
  let open Toolkit in
  let mm_src = (Registry.find_exn "mm").source 1024 in
  let mv_src = (Registry.find_exn "mv").source 1024 in
  let parse_test =
    Test.make ~name:"parse+typecheck mm"
      (Staged.stage (fun () ->
           let k = Gpcc_ast.Parser.kernel_of_string mm_src in
           Gpcc_ast.Typecheck.check k))
  in
  let analyze_test =
    let k = Gpcc_ast.Parser.kernel_of_string mm_src in
    let launch = Option.get (Gpcc_passes.Pass_util.initial_launch k) in
    Test.make ~name:"coalescing analysis mm"
      (Staged.stage (fun () ->
           ignore (Gpcc_analysis.Coalesce_check.analyze_kernel ~launch k)))
  in
  let compile_test name src =
    Test.make ~name:("full pipeline " ^ name)
      (Staged.stage (fun () ->
           ignore
             (Gpcc_core.Pipeline.run (Gpcc_ast.Parser.kernel_of_string src))))
  in
  let tests =
    [ parse_test; analyze_test; compile_test "mm" mm_src; compile_test "mv" mv_src ]
  in
  List.iter
    (fun test ->
      let results =
        Benchmark.all
          (Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ())
          Instance.[ monotonic_clock ]
          test
      in
      Hashtbl.iter
        (fun name raw ->
          match
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              Instance.monotonic_clock raw
          with
          | ols -> (
              match Analyze.OLS.estimates ols with
              | Some [ est ] ->
                  Printf.printf "  %-28s %12.1f us/run\n%!" name (est /. 1e3)
              | _ -> Printf.printf "  %-28s (no estimate)\n" name)
          | exception _ -> Printf.printf "  %-28s (analysis failed)\n" name)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Section 7 case study: FFT                                            *)
(* ------------------------------------------------------------------ *)

let fig17_fft () =
  section "Section 7 case study: 1-D FFT, naive 2-point butterflies vs compiler-merged";
  let w = Registry.find_exn "fft" in
  let sizes = if fast then [ 4096 ] else [ 16384; 65536 ] in
  List.iter
    (fun n ->
      try
        let tn = measure_naive gtx280 w n in
        let topt = measure_opt gtx280 w n in
        let target, degree = best_config gtx280 w n in
        Record.add
          [
            ("workload", Json_out.Str w.name);
            ("gpu", Json_out.Str gtx280.Gpcc_sim.Config.name);
            ("size", Json_out.Int n);
            ("metric", Json_out.Str "gflops");
            ("naive", Json_out.Float tn.gflops);
            ("optimized", Json_out.Float topt.gflops);
            ( "speedup",
              Json_out.Float (tn.time_ms /. Float.max 1e-9 topt.time_ms) );
            ( "config",
              Json_out.Obj
                [
                  ("threads_per_block", Json_out.Int target);
                  ("merge_degree", Json_out.Int degree);
                ] );
          ];
        Printf.printf
          "  n=%-7d naive 2-point %7.2f GFLOPS | optimized (vectorized, %d-way merge, %d-thread blocks) %7.2f GFLOPS | gain %.2fx\n%!"
          n tn.gflops degree target topt.gflops
          (tn.time_ms /. Float.max 1e-9 topt.time_ms)
      with e -> Printf.printf "  n=%d error: %s\n%!" n (Printexc.to_string e))
    sizes;
  note "paper: 24 GFLOPS naive 2-point -> 41 GFLOPS after thread merge (vs CUFFT 2.2's 26); a hand-written 8-point naive kernel (44) then re-optimized (59) beats both — the compiler aids but does not replace algorithm exploration"

(* ------------------------------------------------------------------ *)
(* Ablations of individual design choices                               *)
(* ------------------------------------------------------------------ *)

let ablations () =
  section "Ablations: isolating the design choices the compiler makes";

  (* 1. shared-memory padding: the [16][17] tile vs an unpadded [16][16]
     one — the column reads shared1[tidx][k] hit one bank without the
     padding word (paper Section 3.3 "padding to avoid bank conflicts") *)
  (try
     let w = Registry.find_exn "mv" in
     let n = if fast then 512 else 1024 in
     let r = compile_best gtx280 w n in
     let unpad (k : Gpcc_ast.Ast.kernel) =
       {
         k with
         k_body =
           Gpcc_ast.Rewrite.map_stmts
             (function
               | Gpcc_ast.Ast.Decl
                   ({ d_ty = Array ({ space = Shared; dims; _ } as a); _ } as d)
                 ->
                   let dims' =
                     List.map (fun x -> if x = 17 then 16 else x) dims
                   in
                   [ Gpcc_ast.Ast.Decl { d with d_ty = Array { a with dims = dims' } } ]
               | s -> [ s ])
             k.k_body;
       }
     in
     let padded, _ =
       Workload.execute ~mode:(Gpcc_sim.Launch.Sampled 2) gtx280 w n r.kernel
         r.launch
     in
     let stripped, _ =
       Workload.execute ~mode:(Gpcc_sim.Launch.Sampled 2) gtx280 w n
         (unpad r.kernel) r.launch
     in
     Printf.printf
       "  shared-memory padding (mv tile): padded [16][17] %6.2f GFLOPS (%.0f conflict cycles/block) | unpadded [16][16] %6.2f GFLOPS (%.0f conflict cycles/block)\n"
       padded.timing.gflops padded.per_block.bank_extra
       stripped.timing.gflops stripped.per_block.bank_extra
   with e -> Printf.printf "  padding ablation failed: %s\n" (Printexc.to_string e));

  (* 2. coalescing rules: the same naive mm under the G80 strict rule vs
     the GT200 relaxed rule (all other machine parameters held at GTX280
     values) — why Figure 11's speedups are larger on the older GPU *)
  (try
     let w = Registry.find_exn "mm" in
     let n = if fast then 256 else 512 in
     let k = Workload.parse w n in
     let launch = Option.get (Gpcc_passes.Pass_util.naive_launch k) in
     let strict_cfg =
       { gtx280 with Gpcc_sim.Config.coalesce_rules = Gpcc_sim.Config.Strict_g80;
         name = "GTX280+strict" }
     in
     let relaxed = Workload.measure ~sample:2 gtx280 w n k launch in
     let strict = Workload.measure ~sample:2 strict_cfg w n k launch in
     Printf.printf
       "  coalescing rules (naive mm, same chip otherwise): strict-G80 %6.2f GFLOPS | relaxed-GT200 %6.2f GFLOPS (%.1fx from the rule alone)\n"
       strict.gflops relaxed.gflops (relaxed.gflops /. Float.max 1e-9 strict.gflops)
   with e -> Printf.printf "  rules ablation failed: %s\n" (Printexc.to_string e));

  (* 3. prefetching: a configuration with register headroom where the
     pass actually fires, on vs off *)
  (try
     let w = Registry.find_exn "mm" in
     let n = if fast then 256 else 512 in
     let pipeline =
       Gpcc_core.Pipeline.default ~cfg:gtx280 ~target_block_threads:64
         ~merge_degree:4 ()
     in
     let with_pf = Gpcc_core.Pipeline.run ~pipeline (Workload.parse w n) in
     let without =
       Gpcc_core.Pipeline.run
         ~pipeline:(Gpcc_core.Pipeline.disable [ "prefetch" ] pipeline)
         (Workload.parse w n)
     in
     let fired =
       List.exists
         (fun (s : Gpcc_core.Pipeline.step) ->
           s.step_name = "data prefetching" && s.fired)
         with_pf.steps
     in
     let tp_ = Workload.measure ~sample:2 gtx280 w n with_pf.kernel with_pf.launch in
     let tn = Workload.measure ~sample:2 gtx280 w n without.kernel without.launch in
     Printf.printf
       "  prefetching (mm, 64-thread blocks, 4-way merge; pass fired: %b): with %6.2f GFLOPS | without %6.2f GFLOPS\n"
       fired tp_.gflops tn.gflops
   with e -> Printf.printf "  prefetch ablation failed: %s\n" (Printexc.to_string e));

  (* 4. the empirical search (Section 4): the per-workload selected
     configuration vs the paper's mm-tuned default (256 threads, 16-way
     merge) applied blindly *)
  (try
     List.iter
       (fun name ->
         let w = Registry.find_exn name in
         let n = if fast then 512 else 1024 in
         let fixed =
           Gpcc_core.Pipeline.run
             ~pipeline:
               (Gpcc_core.Pipeline.default ~cfg:gtx280
                  ~target_block_threads:256 ~merge_degree:16 ())
             (Workload.parse w n)
         in
         let tf = Workload.measure ~sample:2 gtx280 w n fixed.kernel fixed.launch in
         let tb = measure_opt ~sample:2 gtx280 w n in
         let target, degree = best_config gtx280 w n in
         Printf.printf
           "  empirical search (%s): fixed (256,16) %6.2f GFLOPS | searched (%d,%d) %6.2f GFLOPS\n"
           name tf.gflops target degree tb.gflops)
       [ "tmv"; "mv" ]
   with e -> Printf.printf "  search ablation failed: %s\n" (Printexc.to_string e));
  note "each row isolates one mechanism: bank-conflict padding, the hardware coalescing rule, prefetch double-buffering, and the Section-4 empirical search"

(* ------------------------------------------------------------------ *)
(* Simulator-backend microbenchmark: vector vs compiled vs reference   *)
(* ------------------------------------------------------------------ *)

(** Blocks simulated per second, per workload, for the warp-vectorized
    plane backend vs the closure-compiled backend vs the tree-walking
    reference interpreter. Naive kernels at [test_size] (plus the fixed
    SDK-transpose and CUBLAS comparator artifacts), full grid, serial
    execution in every backend so the measurement isolates the
    interpreter itself, compile caches warm.

    [GPCC_BENCH_REPS=N] switches from the wall-clock budget to exactly
    [N] timed repetitions per backend — fixed work, so two columns of
    one run are comparable as a ratio in CI. *)
let interp () =
  section
    "Interpreter backends: blocks/s, vector vs compiled vs reference (naive, \
     serial)";
  let module L = Gpcc_sim.Launch in
  let fixed_reps =
    match Sys.getenv_opt "GPCC_BENCH_REPS" with
    | Some s -> (
        match int_of_string_opt s with Some r when r >= 1 -> Some r | _ -> None)
    | None -> None
  in
  Printf.printf "  %-16s %8s | %11s %11s %11s %9s %9s\n" "workload" "blocks"
    "vector" "compiled" "reference" "vec/comp" "comp/ref";
  let bench label (k : Gpcc_ast.Ast.kernel) (launch : Gpcc_ast.Ast.launch)
      (inputs : (string * float array) list) =
    let nblocks = Gpcc_ast.Ast.total_blocks launch in
    let run backend =
      let mem = Gpcc_sim.Devmem.of_kernel k in
      List.iter
        (fun (name, d) ->
          if Gpcc_sim.Devmem.find mem name <> None then
            Gpcc_sim.Devmem.write mem name d)
        inputs;
      ignore (L.run ~mode:L.Full ~backend ~jobs:1 gtx280 k launch mem)
    in
    (* warm every backend (and the plan/compile caches) before timing *)
    run L.Vector;
    run L.Compiled;
    run L.Reference;
    let blocks_per_s backend =
      match fixed_reps with
      | Some r ->
          let t0 = Unix.gettimeofday () in
          for _ = 1 to r do
            run backend
          done;
          float_of_int (r * nblocks) /. (Unix.gettimeofday () -. t0)
      | None ->
          let budget = if fast then 0.2 else 0.5 in
          let reps = ref 0 in
          let t0 = Unix.gettimeofday () in
          while Unix.gettimeofday () -. t0 < budget || !reps = 0 do
            run backend;
            incr reps
          done;
          float_of_int (!reps * nblocks) /. (Unix.gettimeofday () -. t0)
    in
    let bv = blocks_per_s L.Vector in
    let bc = blocks_per_s L.Compiled in
    let br = blocks_per_s L.Reference in
    let speedup = bc /. Float.max 1e-9 br in
    let vec_over_comp = bv /. Float.max 1e-9 bc in
    Record.add
      [
        ("workload", Json_out.Str label);
        ("backend", Json_out.Str (L.backend_name (L.backend_of_env ())));
        ("blocks", Json_out.Int nblocks);
        ("blocks_per_s_vector", Json_out.Float bv);
        ("blocks_per_s_compiled", Json_out.Float bc);
        ("blocks_per_s_reference", Json_out.Float br);
        ("vector_over_compiled", Json_out.Float vec_over_comp);
        ("speedup", Json_out.Float speedup);
      ];
    Printf.printf "  %-16s %8d | %11.0f %11.0f %11.0f %8.2fx %8.2fx\n%!" label
      nblocks bv bc br vec_over_comp speedup
  in
  List.iter
    (fun (w : Workload.t) ->
      let n = w.test_size in
      let k = Workload.parse w n in
      let launch = Option.get (Gpcc_passes.Pass_util.naive_launch k) in
      bench w.name k launch (w.inputs n))
    (Registry.all @ Registry.extras);
  (* the fixed artifacts the paper compares against: the SDK transpose
     pair (barrier-heavy shared-tile kernels) and the CUBLAS comparator
     kernels (register-blocked, loop-heavy) *)
  let tp = Registry.find_exn "tp" in
  let tpn = tp.test_size in
  let kp, lp = Sdk_transpose.prev tpn in
  bench "sdk_tp_prev" kp lp (tp.inputs tpn);
  let kn, ln = Sdk_transpose.new_ tpn in
  bench "sdk_tp_new" kn ln (tp.inputs tpn);
  List.iter
    (fun (c : Cublas_sim.comparator) ->
      let w = Registry.find_exn c.c_for in
      let n = max w.test_size 128 in
      bench
        ("cublas_" ^ c.c_for)
        (Cublas_sim.kernel c n)
        (c.c_launch n) (w.inputs n))
    Cublas_sim.all

(* ------------------------------------------------------------------ *)
(* Beyond the paper's evaluation: the AMD target it sketches in 3.1     *)
(* ------------------------------------------------------------------ *)

let amd_vectors () =
  section "AMD HD 5870: aggressive vectorization (paper Sections 2a/3.1)";
  let amd = Gpcc_sim.Config.hd5870 in
  let w = Registry.find_exn "vv" in
  let n = if fast then 262144 else 1048576 in
  Printf.printf "  element-wise vv over %d floats; effective GB/s by access width:\n" n;
  List.iter
    (fun width ->
      try
        let k = Workload.parse w n in
        let launch0 = Option.get (Gpcc_passes.Pass_util.initial_launch k) in
        let o =
          if width = 1 then Gpcc_passes.Pass_util.unchanged k launch0
          else Gpcc_passes.Vectorize_wide.apply ~width k launch0
        in
        let bm = Gpcc_passes.Merge.block_merge_x o.kernel o.launch 16 in
        let t = Workload.measure ~sample:2 amd w n bm.kernel bm.launch in
        Printf.printf "    float%-2s %7.1f GB/s\n"
          (if width = 1 then "" else string_of_int width)
          (Workload.effective_bandwidth w n t)
      with e -> Printf.printf "    width %d error: %s\n" width (Printexc.to_string e))
    [ 1; 2; 4 ];
  (try
     let k = Workload.parse w n in
     let r =
       Gpcc_core.Pipeline.run
         ~pipeline:(Gpcc_core.Pipeline.default ~cfg:amd ())
         k
     in
     let fired =
       List.exists
         (fun (s : Gpcc_core.Pipeline.step) ->
           s.fired && s.step_name = "wide vectorization (AMD)")
         r.steps
     in
     let t = Workload.measure ~sample:2 amd w n r.kernel r.launch in
     Printf.printf
       "  full pipeline on HD 5870 (wide vectorization fired: %b): %7.1f GB/s\n"
       fired
       (Workload.effective_bandwidth w n t)
   with e -> Printf.printf "  pipeline error: %s\n" (Printexc.to_string e));
  note "paper Section 2a: the HD 5870 sustains 71 / 98 / 101 GB/s for float / float2 / float4 — the measured widths must reproduce that ordering"

(* ------------------------------------------------------------------ *)
(* Exploration funnel: model-guided pruned sweep vs exhaustive          *)
(* ------------------------------------------------------------------ *)

(* throwaway score-cache directories for the cold/warm timings
   (recursive: the artifact store shards entries into subdirectories) *)
let rec remove_cache_dir dir =
  (match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
      Array.iter
        (fun n ->
          let p = Filename.concat dir n in
          if Sys.is_directory p then remove_cache_dir p
          else try Sys.remove p with Sys_error _ -> ())
        names);
  try Sys.rmdir dir with Sys_error _ -> ()

(** Head-to-head of the exhaustive Section-4 sweep and the model-guided
    funnel, per workload at the fig11 probe size: both sweeps run on
    fresh throwaway caches (cold), the funnel a second time on its now
    populated cache (warm). The row records the funnel statistics, the
    prediction-vs-measurement rank correlation, and whether both sweeps
    chose the same configuration — the invariant CI gates on. *)
let explore () =
  section "Design-space exploration: model-guided funnel vs exhaustive sweep";
  let names =
    if fast then [ "mm"; "rd" ]
    else
      List.map
        (fun (w : Workload.t) -> w.name)
        (Registry.all @ Registry.extras)
  in
  let cfg = gtx280 in
  let timed f =
    (* level the heap before each timed sweep: the large device arrays
       of earlier runs otherwise bloat major collections into the next
       measurement and the comparison stops being apples-to-apples *)
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  Printf.printf "  %-14s | %9s %9s %9s | %4s %4s %5s %4s | %8s | %s\n"
    "workload" "exhaust_s" "cold_s" "warm_s" "cand" "dist" "prune" "meas"
    "spearman" "same winner";
  let tot_ex = ref 0.0 and tot_cold = ref 0.0 and tot_warm = ref 0.0 in
  List.iter
    (fun name ->
      let w = Registry.find_exn name in
      try
        let pn = probe_size w (fig11_size w) in
        let k = Workload.parse w pn in
        let measure = Workload.measure_gflops ~sample:1 ~streams:3 cfg w pn in
        let measure_blocks =
          Workload.measure_gflops_blocks ~sample:1 ~streams:3 cfg w pn
        in
        let predict = Workload.predict_gflops cfg w pn in
        let key =
          Printf.sprintf "%s/%s/%d" cfg.Gpcc_sim.Config.name w.name pn
        in
        let tmp tag =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "gpcc-explore-%d-%s-%s" (Unix.getpid ()) w.name tag)
        in
        let ex_dir = tmp "ex" and fu_dir = tmp "funnel" in
        let (ex_cands, _), ex_s =
          timed (fun () ->
              Gpcc_core.Explore.search_with_failures ~cfg ~jobs:!jobs
                ~cache:(Gpcc_core.Explore_cache.open_dir ~dir:ex_dir ())
                ~cache_prefix:key k ~measure)
        in
        let run_funnel () =
          (* a fresh handle each time: warm must hit the disk, not the
             previous handle's in-memory memo *)
          Gpcc_core.Explore.search_funnel ~cfg ~jobs:!jobs
            ~cache:(Gpcc_core.Explore_cache.open_dir ~dir:fu_dir ())
            ~cache_prefix:key
            ~budget_sensitive:(Workload.budget_sensitive w pn)
            k ~predict ~measure:measure_blocks
        in
        let (fu_cands, _, stats), cold_s = timed run_funnel in
        let _, warm_s = timed run_funnel in
        remove_cache_dir ex_dir;
        remove_cache_dir fu_dir;
        let config_of = function
          | Some (c : Gpcc_core.Explore.candidate) ->
              (c.target_block_threads, c.merge_degree, c.score)
          | None -> (0, 0, Float.neg_infinity)
        in
        let et, ed, es = config_of (Gpcc_core.Explore.best ex_cands) in
        let ft, fd, fs = config_of (Gpcc_core.Explore.best_measured fu_cands) in
        let matched = et = ft && ed = fd in
        tot_ex := !tot_ex +. ex_s;
        tot_cold := !tot_cold +. cold_s;
        tot_warm := !tot_warm +. warm_s;
        let config t d =
          Json_out.Obj
            [
              ("threads_per_block", Json_out.Int t);
              ("merge_degree", Json_out.Int d);
            ]
        in
        Record.add
          [
            ("workload", Json_out.Str w.name);
            ("gpu", Json_out.Str cfg.Gpcc_sim.Config.name);
            ("size", Json_out.Int pn);
            ("candidates", Json_out.Int stats.f_configs);
            ("distinct", Json_out.Int stats.f_distinct);
            ("predicted", Json_out.Int stats.f_predicted);
            ("pruned", Json_out.Int stats.f_pruned);
            ("halving_rungs", Json_out.Int stats.f_rungs);
            ("partial_runs", Json_out.Int stats.f_partial_runs);
            ("fully_measured", Json_out.Int stats.f_measured);
            ("spearman", Json_out.Float stats.f_spearman);
            ("exhaustive_wall_s", Json_out.Float ex_s);
            ("funnel_cold_wall_s", Json_out.Float cold_s);
            ("funnel_warm_wall_s", Json_out.Float warm_s);
            ("exhaustive_config", config et ed);
            ("exhaustive_gflops", Json_out.Float es);
            ("funnel_config", config ft fd);
            ("funnel_gflops", Json_out.Float fs);
            ("winner_match", Json_out.Bool matched);
          ];
        Printf.printf
          "  %-14s | %9.2f %9.2f %9.2f | %4d %4d %5d %4d | %8.2f | %s\n%!"
          w.name ex_s cold_s warm_s stats.f_configs stats.f_distinct
          stats.f_pruned stats.f_measured stats.f_spearman
          (if matched then Printf.sprintf "yes (%d,%d)" ft fd
           else Printf.sprintf "NO (%d,%d) vs (%d,%d)" ft fd et ed)
      with e ->
        Record.add
          [
            ("workload", Json_out.Str w.name);
            ("gpu", Json_out.Str cfg.Gpcc_sim.Config.name);
            ("error", Json_out.Str (Printexc.to_string e));
          ];
        Printf.printf "  %-14s | error: %s\n%!" w.name (Printexc.to_string e))
    names;
  Printf.printf
    "  total sweep wall-clock: exhaustive %.2fs | funnel cold %.2fs (%.1fx) | funnel warm %.2fs\n"
    !tot_ex !tot_cold
    (!tot_ex /. Float.max 1e-9 !tot_cold)
    !tot_warm;
  note
    "gate: the funnel must select the exhaustive winner while fully measuring only the stage-1 survivors (single-phase) or the final halving rung (multi-phase)"

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("table1", table1); ("fig10", fig10); ("fig11", fig11); ("fig12", fig12);
    ("fig13", fig13); ("fig14", fig14); ("fig15", fig15); ("fig16", fig16);
    ("fig17_fft", fig17_fft); ("ablations", ablations); ("explore", explore);
    ("interp", interp); ("amd_vectors", amd_vectors); ("bechamel", bechamel);
  ]

(** Write BENCH_<section>.json: rows recorded by the section, the wall
    clock, the worker-pool size and the exploration-cache traffic (hit
    and miss deltas over this section). *)
let emit_json ~name ~wall_s ~sim_s ~hits ~misses ~analysis_hits
    ~analysis_misses ~coalescer_hits ~coalescer_misses ~plane_hits
    ~plane_misses ~closed_form ~store_hits ~store_misses ~store_evictions
    ~verify_wall_s ~sym_proofs ~concrete_fallbacks ~rows =
  let cache_fields =
    (if Lazy.is_val explore_cache then
       let c = Lazy.force explore_cache in
       [
         ("dir", Json_out.Str (Gpcc_core.Explore_cache.dir c));
         ("hits", Json_out.Int hits);
         ("misses", Json_out.Int misses);
         ("entries", Json_out.Int (Gpcc_core.Explore_cache.entries c));
       ]
     else [ ("hits", Json_out.Int 0); ("misses", Json_out.Int 0) ])
    (* the in-process analysis manager (memoized Affine/Sharing/Coalesce/
       Regcount/Verify results), aggregated across worker domains *)
    @ [
        ("analysis_hits", Json_out.Int analysis_hits);
        ("analysis_misses", Json_out.Int analysis_misses);
        (* the simulator's transaction-formation memo (patterns digested
           per half-warp request), aggregated across worker domains *)
        ("coalescer_memo_hits", Json_out.Int coalescer_hits);
        ("coalescer_memo_misses", Json_out.Int coalescer_misses);
        (* plane-granularity accounting: whole access planes resolved
           against the plane-digest memo, and loop iterations credited
           in closed form without touching the memo at all *)
        ("coalescer_plane_hits", Json_out.Int plane_hits);
        ("coalescer_plane_misses", Json_out.Int plane_misses);
        ("closed_form_credits", Json_out.Int closed_form);
        (* the shared artifact store (scores, verdicts, bundles),
           aggregated across every handle and domain *)
        ("store_hits", Json_out.Int store_hits);
        ("store_misses", Json_out.Int store_misses);
        ("store_evictions", Json_out.Int store_evictions);
      ]
  in
  let pass_timings =
    List.map
      (fun (pass, (runs, total_ms)) ->
        Json_out.Obj
          [
            ("pass", Json_out.Str pass);
            ("runs", Json_out.Int runs);
            ("total_ms", Json_out.Float total_ms);
          ])
      (Gpcc_core.Pipeline.pass_timings ())
  in
  Json_out.to_file
    (Printf.sprintf "BENCH_%s.json" name)
    (Json_out.Obj
       [
         ("schema", Json_out.Str "gpcc-bench-v1");
         ("section", Json_out.Str name);
         ("mode", Json_out.Str (if fast then "fast" else "full"));
         ( "jobs_requested",
           Json_out.Int (Option.value ~default:!jobs !jobs_requested) );
         ("jobs", Json_out.Int !jobs);
         ( "interp_backend",
           Json_out.Str
             (Gpcc_sim.Launch.backend_name (Gpcc_sim.Launch.backend_of_env ()))
         );
         ("wall_clock_s", Json_out.Float wall_s);
         ("sim_wall_clock_s", Json_out.Float sim_s);
         (* verifier cost over this section: wall clock inside the
            verify entry points, launches discharged symbolically vs
            handed to the concrete verifier *)
         ("verify_wall_clock_s", Json_out.Float verify_wall_s);
         ("symbolic_proofs", Json_out.Int sym_proofs);
         ("concrete_fallbacks", Json_out.Int concrete_fallbacks);
         ("cache", Json_out.Obj cache_fields);
         ("pass_timings", Json_out.List pass_timings);
         ("workloads", Json_out.List rows);
       ])

let cache_traffic () =
  if Lazy.is_val explore_cache then
    let c = Lazy.force explore_cache in
    (Gpcc_core.Explore_cache.hits c, Gpcc_core.Explore_cache.misses c)
  else (0, 0)

let () =
  Logs.set_reporter (Logs.format_reporter ());
  if Logs.level () = None then Logs.set_level (Some Logs.Warning);
  let args = List.tl (Array.to_list Sys.argv) in
  let requested =
    List.filter
      (fun a ->
        match String.index_opt a '=' with
        | Some i when String.sub a 0 i = "--jobs" -> (
            (match
               int_of_string_opt
                 (String.sub a (i + 1) (String.length a - i - 1))
             with
            | Some n when n >= 1 ->
                jobs_requested := Some n;
                jobs := n
            | _ -> Printf.eprintf "ignoring bad %s (want --jobs=N)\n" a);
            false)
        | _ -> true)
      args
  in
  let requested =
    match requested with [] -> List.map fst sections | names -> names
  in
  Printf.printf "gpcc benchmark harness (%s mode, %d search jobs)\n"
    (if fast then "fast" else "full")
    !jobs;
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> (
          Record.reset ();
          Gpcc_core.Pipeline.reset_pass_timings ();
          let hits0, misses0 = cache_traffic () in
          let ahits0 = Gpcc_analysis.Analysis_cache.global_hits ()
          and amisses0 = Gpcc_analysis.Analysis_cache.global_misses () in
          let pc0 = Gpcc_sim.Launch.perf_counters () in
          let shits0 = Gpcc_util.Store.global_hits ()
          and smisses0 = Gpcc_util.Store.global_misses ()
          and sevict0 = Gpcc_util.Store.global_evictions () in
          let vwall0 =
            Gpcc_analysis.Analysis_cache.global_verify_wall_clock_s ()
          and sym0 = Gpcc_analysis.Analysis_cache.global_symbolic_proofs ()
          and fb0 =
            Gpcc_analysis.Analysis_cache.global_concrete_fallbacks ()
          in
          let sim0 = Gpcc_sim.Launch.sim_seconds () in
          let t0 = Unix.gettimeofday () in
          let finish () =
            let wall_s = Unix.gettimeofday () -. t0 in
            let hits1, misses1 = cache_traffic () in
            let pc1 = Gpcc_sim.Launch.perf_counters () in
            emit_json ~name ~wall_s
              ~sim_s:(Gpcc_sim.Launch.sim_seconds () -. sim0)
              ~hits:(hits1 - hits0)
              ~misses:(misses1 - misses0)
              ~analysis_hits:(Gpcc_analysis.Analysis_cache.global_hits () - ahits0)
              ~analysis_misses:
                (Gpcc_analysis.Analysis_cache.global_misses () - amisses0)
              ~coalescer_hits:
                Gpcc_sim.Launch.(pc1.pc_memo_hits - pc0.pc_memo_hits)
              ~coalescer_misses:
                Gpcc_sim.Launch.(pc1.pc_memo_misses - pc0.pc_memo_misses)
              ~plane_hits:
                Gpcc_sim.Launch.(pc1.pc_plane_hits - pc0.pc_plane_hits)
              ~plane_misses:
                Gpcc_sim.Launch.(pc1.pc_plane_misses - pc0.pc_plane_misses)
              ~closed_form:
                Gpcc_sim.Launch.(pc1.pc_closed_form - pc0.pc_closed_form)
              ~store_hits:(Gpcc_util.Store.global_hits () - shits0)
              ~store_misses:(Gpcc_util.Store.global_misses () - smisses0)
              ~store_evictions:(Gpcc_util.Store.global_evictions () - sevict0)
              ~verify_wall_s:
                (Gpcc_analysis.Analysis_cache.global_verify_wall_clock_s ()
                -. vwall0)
              ~sym_proofs:
                (Gpcc_analysis.Analysis_cache.global_symbolic_proofs () - sym0)
              ~concrete_fallbacks:
                (Gpcc_analysis.Analysis_cache.global_concrete_fallbacks ()
                - fb0)
              ~rows:(Record.take ());
            wall_s
          in
          match f () with
          | () -> Printf.printf "  [section %s: %.1fs]\n%!" name (finish ())
          | exception e ->
              ignore (finish ());
              Printf.printf "  section %s failed: %s\n%!" name
                (Printexc.to_string e))
      | None -> Printf.printf "unknown section %s\n" name)
    requested

(** Inter-thread-block data-sharing analysis (paper Section 3.4).

    After memory coalescing every global load is associated with coalesced
    segments; the compiler detects data sharing by checking whether the
    address ranges touched by *neighboring* thread blocks overlap. With
    affine flattened addresses this has a crisp criterion: a load whose
    address does not depend on [bidx] is accessed identically by every
    block along X (full overlap), and likewise for [bidy] along Y.

    Loads are classified by their target (Section 3.3's two kinds of global
    memory load statements):
    - G2S — global to shared memory: the load is the right-hand side of an
      assignment into a [__shared__] array;
    - G2R — global to register: the load feeds a computation directly.

    The merge-selection rule of Section 3.5.3 keys off this classification:
    G2S sharing prefers thread-block merge, G2R sharing prefers thread
    merge. *)

open Gpcc_ast

type role =
  | G2S
  | G2R
[@@deriving show { with_path = false }, eq]

type direction =
  | Along_x
  | Along_y
[@@deriving show { with_path = false }, eq]

(** Sharing summary for one global array's loads. *)
type array_sharing = {
  arr : string;
  role : role;
  share_x : bool;  (** neighboring blocks along X touch the same data *)
  share_y : bool;
  loads : int;  (** number of load sites *)
}
[@@deriving show { with_path = false }]

(** Global arrays whose elements are loaded directly into a shared array
    (pattern [shared[..] = g[..]]). *)
let g2s_arrays (k : Ast.kernel) : string list =
  let shared =
    Rewrite.declared_vars k.k_body
    |> List.filter_map (fun (n, ty) ->
           match ty with
           | Ast.Array { space = Shared; _ } -> Some n
           | _ -> None)
  in
  let acc = ref [] in
  ignore
    (Rewrite.map_stmts
       (function
         | Assign (Lindex (dst, _), rhs) as s when List.mem dst shared ->
             Rewrite.collect_accesses [ Assign (Lvar "_", rhs) ]
             |> List.iter (fun (a, _, _) -> acc := a :: !acc);
             [ s ]
         | s -> [ s ])
       k.k_body);
  List.sort_uniq String.compare !acc

(** Summarize sharing for every global array that is loaded. *)
let analyze ?(launch : Ast.launch option) (k : Ast.kernel) :
    array_sharing list =
  let accesses = Coalesce_check.analyze_kernel ?launch k in
  let g2s = g2s_arrays k in
  let loads = List.filter (fun a -> not a.Coalesce_check.is_store) accesses in
  let arrays =
    List.sort_uniq String.compare
      (List.map (fun a -> a.Coalesce_check.arr) loads)
  in
  List.map
    (fun arr ->
      let mine =
        List.filter (fun a -> String.equal a.Coalesce_check.arr arr) loads
      in
      (* sharing pays off when a *repeated* (loop-nested) load touches the
         same data in the neighboring block; one-shot loads outside loops
         carry no reuse and do not drive merges *)
      let indep v =
        List.exists
          (fun (a : Coalesce_check.access) ->
            a.enclosing <> []
            &&
            match a.flat with Some f -> Affine.coeff v f = 0 | None -> false)
          mine
      in
      {
        arr;
        role = (if List.mem arr g2s then G2S else G2R);
        share_x = indep Affine.Bidx;
        share_y = indep Affine.Bidy;
        loads = List.length mine;
      })
    arrays

(** Directions in which a merge would pay off, with the role that drives
    the paper's choice between thread-block merge and thread merge. *)
let merge_opportunities (sharing : array_sharing list) :
    (direction * role * string) list =
  List.concat_map
    (fun s ->
      let dirs = [] in
      let dirs = if s.share_x then (Along_x, s.role, s.arr) :: dirs else dirs in
      let dirs = if s.share_y then (Along_y, s.role, s.arr) :: dirs else dirs in
      dirs)
    sharing

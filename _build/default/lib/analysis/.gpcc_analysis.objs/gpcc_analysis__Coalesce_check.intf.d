lib/analysis/coalesce_check.pp.mli: Affine Gpcc_ast

test/test_analysis.ml: Affine Alcotest Ast Coalesce_check Gpcc_analysis Gpcc_ast Gpcc_passes Gpcc_workloads Layout List Option Regcount Sharing Util

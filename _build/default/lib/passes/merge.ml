(** Thread-block merge and thread merge (paper Section 3.5) — the paper's
    novel route to loop tiling and unrolling: aggregating fine-grain work
    items into bigger thread blocks (shared-memory reuse) and bigger
    threads (register reuse).

    {b Thread-block merge along X} ([block_merge_x]) combines [n]
    neighboring blocks into one: the block width grows, and each
    global-to-shared staging statement is treated according to its data:
    - stagings whose address does not depend on [bidx] load data shared by
      all merged sub-blocks, so they are wrapped in [if (tidx < old_width)]
      to remove the now-redundant loads (paper Figure 5);
    - cooperative staging loops striding by the block width (the apron
      pattern) scale naturally: their stride becomes the new width and the
      staged buffer widens.

    {b Thread merge} ([thread_merge]) combines the threads of [n]
    neighboring blocks along X or Y into one thread each: statements that
    depend on the merged direction are replicated [n] times with the
    thread position substituted ([idy -> idy*n + r] along Y), per-thread
    scalars and per-replica shared buffers are renamed per replica, control
    flow and direction-independent statements keep a single copy, and
    direction-independent global loads inside replicated statements are
    hoisted into a register shared by all replicas (paper Figure 7's
    [float r0 = b[(i+k)][idx]]) — the register-reuse payoff that makes the
    compiler prefer thread merge for G2R sharing. *)

open Gpcc_ast
open Ast
open Gpcc_analysis

type direction =
  | X
  | Y

(* --------------------------------------------------------------------- *)
(* Thread-block merge along X                                             *)
(* --------------------------------------------------------------------- *)

(** Classification of a statement that writes a shared array. *)
type staging_class =
  | Guardable  (** bidx-independent: data shared across merged sub-blocks *)
  | Scaling  (** cooperative [for t = tidx; ...; t += width] staging loop *)
  | Private
      (** per-sub-block data (the mv row tile): each merged group of
          [old_width] threads keeps its own copy — the staged array gains a
          leading dimension indexed by [tidx / old_width], and [tidx]
          inside the staging and the uses becomes [tidx %% old_width] *)
  | Blocking of string  (** prevents the merge *)

(** Whether every global load in [body] is bidx-independent. Flattened
    forms come from an analysis of the *whole* kernel ([table]) and are
    matched syntactically — a probe of the statement alone would lose the
    enclosing-loop context and misjudge loads whose bidx-dependence flows
    through a loop variable (e.g. [for i = idx; ...]). *)
let rhs_globals_bidx_free (k : Ast.kernel)
    (table : Coalesce_check.access list) (body : Ast.block) : bool =
  let globals = Pass_util.global_arrays k in
  let loads =
    Rewrite.collect_accesses body
    |> List.filter (fun (a, _, st) -> (not st) && List.mem a globals)
  in
  loads <> []
  && List.for_all
       (fun (arr, idxs, _) ->
         let matches =
           List.filter
             (fun (a : Coalesce_check.access) ->
               String.equal a.arr arr
               && List.length a.indices = List.length idxs
               && List.for_all2 Ast.equal_expr a.indices idxs)
             table
         in
         matches <> []
         && List.for_all
              (fun (a : Coalesce_check.access) ->
                match a.flat with
                | Some f ->
                    Affine.coeff Affine.Bidx f = 0
                    && List.for_all
                         (fun (v, _) ->
                           match v with
                           | Affine.Mod_of (b, _) | Affine.Div_of (b, _) ->
                               not (Affine.equal_var b Affine.Bidx)
                           | _ -> true)
                         f.Affine.terms
                | None -> false)
              matches)
       loads

(** Find and classify every statement that stores into a shared array.
    Returns [(classification, rewrite them in place)] via a statement map. *)
let classify_staging (k : Ast.kernel)
    (table : Coalesce_check.access list) (shared : string list)
    (s : Ast.stmt) : staging_class option =
  let writes_shared b =
    Rewrite.collect_accesses b
    |> List.exists (fun (a, _, st) -> st && List.mem a shared)
  in
  let all_shared_stores b =
    b <> []
    && List.for_all
         (function
           | Assign (Lindex (sh, _), _) -> List.mem sh shared
           | _ -> false)
         b
  in
  match s with
  | Assign (Lindex (sh, _), _) when List.mem sh shared ->
      if rhs_globals_bidx_free k table [ s ] then Some Guardable
      else Some Private
  | For l when all_shared_stores l.l_body ->
      if Ast.equal_expr l.l_init Ast.tidx then Some Scaling
      else if rhs_globals_bidx_free k table l.l_body then Some Guardable
      else Some Private
  | For _ -> None
  | If (_, t, f) when writes_shared t || writes_shared f ->
      (* already-guarded staging from a previous merge *)
      if rhs_globals_bidx_free k table (t @ f) then Some Guardable
      else Some (Blocking "guarded staging depends on bidx")
  | _ -> None

(** Widen an apron-style shared array and its staging loop by
    [extra = old_block_x * (n-1)] columns. *)
let widen_apron (extra : int) (sh_widths : (string, int) Hashtbl.t)
    (s : Ast.stmt) : Ast.stmt =
  match s with
  | For l ->
      let widened_limit =
        match l.l_limit with
        | Int_lit w -> Int_lit (w + extra)
        | e -> Ast.( +: ) e (Int_lit extra)
      in
      For { l with l_limit = widened_limit }
  | s -> ignore sh_widths; s

let block_merge_x (k : Ast.kernel) (launch : Ast.launch) (n : int) :
    Pass_util.outcome =
  if n <= 1 then Pass_util.unchanged k launch
  else if launch.grid_x mod n <> 0 then
    Pass_util.unchanged
      ~notes:
        [ Printf.sprintf "thread-block merge x%d skipped: grid.x=%d not divisible" n launch.grid_x ]
      k launch
  else begin
    let shared = Pass_util.shared_arrays k.k_body in
    let table = Coalesce_check.analyze_kernel ~launch k in
    let old_bx = launch.block_x in
    let extra = old_bx * (n - 1) in
    let blockers = ref [] in
    let guarded = ref 0 and scaled = ref 0 in
    (* first check feasibility: top-down, stopping at classified
       stagings so their inner statements are not re-classified *)
    let rec scan b =
      List.iter
        (fun s ->
          match classify_staging k table shared s with
          | Some (Blocking why) -> blockers := why :: !blockers
          | Some _ -> ()
          | None -> (
              match s with
              | For l -> scan l.l_body
              | If (_, t, f) ->
                  scan t;
                  scan f
              | _ -> ()))
        b
    in
    scan k.k_body;
    if !blockers <> [] then
      Pass_util.unchanged
        ~notes:
          (List.map
             (fun w -> "thread-block merge x" ^ string_of_int n ^ " blocked: " ^ w)
             !blockers)
        k launch
    else begin
      (* resize apron shared decls: arrays staged by Scaling loops *)
      let scaling_arrays = ref [] in
      let rec find_scaling b =
        List.iter
          (fun s ->
            match classify_staging k table shared s with
            | Some Scaling ->
                Rewrite.collect_accesses [ s ]
                |> List.iter (fun (a, _, st) ->
                       if st && List.mem a shared then
                         scaling_arrays := a :: !scaling_arrays)
            | Some _ -> ()
            | None -> (
                match s with
                | For l -> find_scaling l.l_body
                | If (_, t, f) ->
                    find_scaling t;
                    find_scaling f
                | _ -> ()))
          b
      in
      find_scaling k.k_body;
      (* arrays staged by Private loops, with their original rank *)
      let private_arrays = ref [] in
      let decl_rank =
        let ranks = Hashtbl.create 4 in
        List.iter
          (fun (nm, ty) ->
            match ty with
            | Array { Ast.dims; _ } -> Hashtbl.replace ranks nm (List.length dims)
            | _ -> ())
          (Rewrite.declared_vars k.k_body);
        fun nm -> Hashtbl.find_opt ranks nm
      in
      let rec find_private b =
        List.iter
          (fun s ->
            match classify_staging k table shared s with
            | Some Private ->
                Rewrite.collect_accesses [ s ]
                |> List.iter (fun (a, _, st) ->
                       if st && List.mem a shared
                          && not (List.mem a !private_arrays) then
                         private_arrays := a :: !private_arrays)
            | Some _ -> ()
            | None -> (
                match s with
                | For l -> find_private l.l_body
                | If (_, t, f) ->
                    find_private t;
                    find_private f
                | _ -> ()))
          b
      in
      find_private k.k_body;
      let privatized = ref 0 in
      let sub_index = Ast.( /: ) Ast.tidx (Int_lit old_bx) in
      let lane_sub e =
        Rewrite.subst_builtin_expr Ast.Tidx
          (Ast.( %: ) Ast.tidx (Int_lit old_bx))
          e
      in
      let widths = Hashtbl.create 4 in
      let rec rewrite_block b = List.concat_map rewrite_stmt b
      and rewrite_stmt s =
        match classify_staging k table shared s with
        | Some Guardable ->
            incr guarded;
            [ If (Ast.( <: ) Ast.tidx (Int_lit old_bx), [ s ], []) ]
        | Some Scaling -> (
            incr scaled;
            match widen_apron extra widths s with
            | For l -> [ For { l with l_step = Int_lit (old_bx * n) } ]
            | s -> [ s ])
        | Some Private ->
            incr privatized;
            (* every tidx in the staging becomes the lane within the
               sub-block; staged arrays gain the sub-block index *)
            let s =
              match
                Rewrite.map_block_exprs
                  (function
                    | Builtin Ast.Tidx ->
                        Some (Ast.( %: ) Ast.tidx (Int_lit old_bx))
                    | _ -> None)
                  [ s ]
              with
              | [ s ] -> s
              | _ -> s
            in
            let add_sub =
              Rewrite.map_stmts
                (function
                  | Assign (Lindex (a, idxs), e)
                    when List.mem a !private_arrays ->
                      [ Assign (Lindex (a, sub_index :: idxs), e) ]
                  | s -> [ s ])
            in
            (match add_sub [ s ] with [ s ] -> [ s ] | b -> b)
        | Some (Blocking _) | None -> (
            match s with
            | For l -> [ For { l with l_body = rewrite_block l.l_body } ]
            | If (c, t, f) -> [ If (c, rewrite_block t, rewrite_block f) ]
            | s -> [ s ])
      in
      let body = rewrite_block k.k_body in
      (* rewrite the *uses* of privatized arrays (original rank only) and
         widen their declarations *)
      let body =
        if !private_arrays = [] then body
        else
          Rewrite.map_block_exprs
            (fun e ->
              match e with
              | Index (a, idxs)
                when List.mem a !private_arrays
                     && decl_rank a = Some (List.length idxs) ->
                  Some (Index (a, sub_index :: List.map lane_sub idxs))
              | _ -> None)
            body
          |> Rewrite.map_stmts (function
               | Decl ({ d_ty = Array ({ space = Shared; dims; _ } as a); d_name; _ } as d)
                 when List.mem d_name !private_arrays
                      && List.length dims = Option.value (decl_rank d_name) ~default:(-1) ->
                   [ Decl { d with d_ty = Array { a with dims = n :: dims } } ]
               | s -> [ s ])
      in
      (* widen the declarations of scaling-staged arrays *)
      let body =
        Rewrite.map_stmts
          (function
            | Decl ({ d_ty = Array ({ space = Shared; dims = [ w ]; _ } as a); d_name; _ } as d)
              when List.mem d_name !scaling_arrays ->
                [ Decl { d with d_ty = Array { a with dims = [ w + extra ] } } ]
            | s -> [ s ])
          body
      in
      let launch' =
        { launch with block_x = old_bx * n; grid_x = launch.grid_x / n }
      in
      Pass_util.changed
        ~notes:
          [
            Printf.sprintf
              "merged %d thread blocks along X: block (%d,%d), %d staging \
               statement(s) guarded with (tidx < %d), %d cooperative \
               staging loop(s) rescaled"
              n launch'.block_x launch'.block_y !guarded old_bx !scaled;
          ]
        { k with k_body = body }
        launch'
    end
  end

(* --------------------------------------------------------------------- *)
(* Thread merge                                                           *)
(* --------------------------------------------------------------------- *)

type dep_env = {
  dir : direction;
  mutable repl : string list;  (** replica-dependent variables / arrays *)
  mutable names : (string * string array) list;
      (** collision-free replica names for each replicated variable *)
}

let replica_name (env : dep_env) (v : string) (r : int) : string =
  match List.assoc_opt v env.names with
  | Some arr -> arr.(r)
  | None -> Printf.sprintf "%s_%d" v r

let expr_dep (env : dep_env) (e : Ast.expr) : bool =
  let b = match env.dir with X -> Ast.Idx | Y -> Ast.Idy in
  Rewrite.expr_uses_builtin b e
  || (env.dir = Y && Rewrite.expr_uses_builtin Ast.Bidy e)
  || List.exists
       (fun v ->
         Rewrite.expr_uses_var v e
         || Rewrite.exists_expr
              (function Index (a, _) -> String.equal a v | _ -> false)
              e)
       env.repl

let lvalue_dep (env : dep_env) (lv : Ast.lvalue) : bool =
  let rec name = function
    | Lvar v | Lindex (v, _) -> v
    | Lvec vl -> vl.v_arr
    | Lfield (lv, _) -> name lv
  in
  let idx_exprs =
    match lv with
    | Lindex (_, es) -> es
    | Lvar _ -> []
    | Lfield (Lindex (_, es), _) -> es
    | Lvec vl -> [ vl.v_index ]
    | Lfield _ -> []
  in
  List.mem (name lv) env.repl || List.exists (expr_dep env) idx_exprs

(** One fixpoint round: does this statement do replica-dependent work
    directly (not counting nested control-flow bodies)? *)
let rec stmt_dep (env : dep_env) (s : Ast.stmt) : bool =
  match s with
  | Decl { d_name; d_init; _ } ->
      List.mem d_name env.repl
      || (match d_init with Some e -> expr_dep env e | None -> false)
  | Assign (lv, e) -> lvalue_dep env lv || expr_dep env e
  | If (c, t, f) ->
      expr_dep env c || List.exists (stmt_dep env) t || List.exists (stmt_dep env) f
  | For l ->
      expr_dep env l.l_init || expr_dep env l.l_limit || expr_dep env l.l_step
  | Sync | Global_sync | Comment _ -> false

(** Mark every variable written by replica-dependent statements, to a
    fixpoint. Only kernel-local names (register scalars and shared arrays)
    replicate — global arrays are indexed per replica, never renamed. *)
let compute_repl_vars (env : dep_env) (k : Ast.kernel) (body : Ast.block) :
    unit =
  let locals = List.map fst (Rewrite.declared_vars body) in
  let changed = ref true in
  let add v =
    if List.mem v locals && not (List.mem v env.repl) then begin
      env.repl <- v :: env.repl;
      changed := true
    end
  in
  ignore k;
  let lv_name lv =
    let rec go = function
      | Lvar v | Lindex (v, _) -> v
      | Lvec vl -> vl.v_arr
      | Lfield (lv, _) -> go lv
    in
    go lv
  in
  (* a control region whose condition/bounds are replica-dependent is
     replicated wholesale, so every variable it writes but declares
     *outside* it escapes per replica and must be renamed; variables
     declared inside the region are self-contained (each replica carries
     its own declaration) *)
  let mark_escaping (b : Ast.block) =
    let inner = List.map fst (Rewrite.declared_vars b) in
    ignore
      (Rewrite.map_stmts
         (function
           | Assign (lv, _) as s ->
               let v = lv_name lv in
               if not (List.mem v inner) then add v;
               [ s ]
           | s -> [ s ])
         b)
  in
  let rec mark b =
    List.iter
      (fun s ->
        match s with
        | Decl d -> if stmt_dep env s then add d.d_name
        | Assign (lv, _) -> if stmt_dep env s then add (lv_name lv)
        | If (c, t, f) ->
            if expr_dep env c then begin
              mark_escaping t;
              mark_escaping f
            end;
            mark t;
            mark f
        | For l ->
            if
              expr_dep env l.l_init || expr_dep env l.l_limit
              || expr_dep env l.l_step
            then mark_escaping l.l_body;
            mark l.l_body
        | Sync | Global_sync | Comment _ -> ())
      b
  in
  while !changed do
    changed := false;
    mark body
  done

(** Substitute the thread position of replica [r] and rename dependent
    variables. *)
let replica_expr (env : dep_env) ~(n : int) ~(old_bx : int) (r : int)
    (e : Ast.expr) : Ast.expr =
  let rename =
    Rewrite.map_expr (function
      | Var v when List.mem v env.repl ->
          Some (Var (replica_name env v r))
      | Index (a, es) when List.mem a env.repl ->
          Some (Index (replica_name env a r, es))
      | _ -> None)
  in
  let substituted =
    match env.dir with
    | Y ->
        Rewrite.subst_builtin_expr Ast.Idy
          (Ast.( +: ) (Ast.( *: ) Ast.idy (Int_lit n)) (Int_lit r))
          e
    | X ->
        Rewrite.subst_builtin_expr Ast.Idx
          (Ast.( +: )
             (Ast.( +: )
                (Ast.( *: ) (Ast.( -: ) Ast.idx Ast.tidx) (Int_lit n))
                (Int_lit (r * old_bx)))
             Ast.tidx)
          e
  in
  Pass_util.simplify_expr (rename substituted)

let replica_lvalue (env : dep_env) ~n ~old_bx r (lv : Ast.lvalue) : Ast.lvalue
    =
  let rec go = function
    | Lvar v when List.mem v env.repl -> Lvar (replica_name env v r)
    | Lvar v -> Lvar v
    | Lindex (a, es) ->
        let a' = if List.mem a env.repl then replica_name env a r else a in
        Lindex (a', List.map (replica_expr env ~n ~old_bx r) es)
    | Lvec vl ->
        let a' =
          if List.mem vl.v_arr env.repl then replica_name env vl.v_arr r
          else vl.v_arr
        in
        Lvec
          { vl with v_arr = a'; v_index = replica_expr env ~n ~old_bx r vl.v_index }
    | Lfield (lv, f) -> Lfield (go lv, f)
  in
  go lv

(** Hoist direction-invariant global loads out of a replicated statement:
    emit one [float rK = load;] and use [rK] in every replica. *)
let hoist_invariant_loads (env : dep_env) (globals : string list)
    (fresh : string -> string) (e : Ast.expr) :
    Ast.stmt list * Ast.expr =
  let hoisted = ref [] in
  let e' =
    Rewrite.map_expr
      (function
        | (Index (a, _) | Vload { v_arr = a; _ }) as load
          when List.mem a globals && not (expr_dep env load) ->
            (* reuse an already-hoisted identical load *)
            let existing =
              List.find_opt (fun (_, l) -> Ast.equal_expr l load) !hoisted
            in
            let name =
              match existing with
              | Some (nm, _) -> nm
              | None ->
                  let nm = fresh "r" in
                  hoisted := (nm, load) :: !hoisted;
                  nm
            in
            Some (Var name)
        | _ -> None)
      e
  in
  let decls =
    List.rev_map
      (fun (nm, load) ->
        let ty =
          match load with
          | Vload { v_width = 2; _ } -> Scalar Float2
          | Vload _ -> Scalar Float4
          | _ -> Scalar Float
        in
        Decl { d_name = nm; d_ty = ty; d_init = Some load })
      !hoisted
  in
  (decls, e')

(** Merge the threads of [n] neighboring blocks along [dir] into one
    thread each. *)
let thread_merge (dir : direction) (k : Ast.kernel) (launch : Ast.launch)
    (n : int) : Pass_util.outcome =
  if n <= 1 then Pass_util.unchanged k launch
  else begin
    let feasible, why =
      match dir with
      | Y ->
          ( launch.block_y = 1 && launch.grid_y mod n = 0,
            "block.y must be 1 and grid.y divisible" )
      | X -> (launch.grid_x mod n = 0, "grid.x must be divisible")
    in
    if not feasible then
      Pass_util.unchanged
        ~notes:
          [
            Printf.sprintf "thread merge %s x%d skipped: %s"
              (match dir with X -> "X" | Y -> "Y")
              n why;
          ]
        k launch
    else begin
      let env = { dir; repl = []; names = [] } in
      compute_repl_vars env k k.k_body;
      let globals = Pass_util.global_arrays k in
      let used = ref (Pass_util.used_names k) in
      env.names <-
        List.map
          (fun v ->
            let arr =
              Array.init n (fun r ->
                  let nm =
                    Rewrite.fresh_name !used (Printf.sprintf "%s_%d" v r)
                  in
                  used := nm :: !used;
                  nm)
            in
            (v, arr))
          env.repl;
      let fresh base =
        let nm = Rewrite.fresh_name !used base in
        used := nm :: !used;
        nm
      in
      let old_bx = launch.block_x in
      let hoists = ref 0 in
      let replicas f = List.init n f in
      let rec go_block (b : Ast.block) : Ast.block =
        List.concat_map go_stmt b
      and go_stmt (s : Ast.stmt) : Ast.stmt list =
        match s with
        | Comment _ | Sync | Global_sync -> [ s ]
        | Decl d ->
            if List.mem d.d_name env.repl then
              replicas (fun r ->
                  Decl
                    {
                      d with
                      d_name = replica_name env d.d_name r;
                      d_init =
                        Option.map (replica_expr env ~n ~old_bx r) d.d_init;
                    })
            else [ s ]
        | Assign (lv, e) ->
            if stmt_dep env s then begin
              let pre, e' = hoist_invariant_loads env globals fresh e in
              hoists := !hoists + List.length pre;
              pre
              @ replicas (fun r ->
                    Assign
                      ( replica_lvalue env ~n ~old_bx r lv,
                        replica_expr env ~n ~old_bx r e' ))
            end
            else [ s ]
        | If (c, t, f) ->
            if expr_dep env c then begin
              (* hoist direction-invariant global loads out of the guarded
                 bodies so the replicas share one register (speculative but
                 safe: guarded loads in these kernels are in-bounds by
                 construction) *)
              let pre = ref [] in
              let hoist_block (b : Ast.block) : Ast.block =
                List.map
                  (function
                    | Assign (lv, e) ->
                        let decls, e' =
                          hoist_invariant_loads env globals fresh e
                        in
                        pre := !pre @ decls;
                        hoists := !hoists + List.length decls;
                        Assign (lv, e')
                    | s -> s)
                  b
              in
              let t' = hoist_block t and f' = hoist_block f in
              !pre
              @ replicas (fun r ->
                    If
                      ( replica_expr env ~n ~old_bx r c,
                        go_replica_block r t',
                        go_replica_block r f' ))
            end
            else [ If (c, go_block t, go_block f) ]
        | For l ->
            if expr_dep env l.l_init || expr_dep env l.l_limit || expr_dep env l.l_step
            then
              replicas (fun r ->
                  For
                    {
                      l with
                      l_init = replica_expr env ~n ~old_bx r l.l_init;
                      l_limit = replica_expr env ~n ~old_bx r l.l_limit;
                      l_step = replica_expr env ~n ~old_bx r l.l_step;
                      l_body = go_replica_block r l.l_body;
                    })
            else [ For { l with l_body = go_block l.l_body } ]
      (* inside a replicated control statement every nested statement
         belongs to replica [r] *)
      and go_replica_block r (b : Ast.block) : Ast.block =
        List.map
          (fun s ->
            match s with
            | Decl d ->
                Decl
                  {
                    d with
                    d_name =
                      (if List.mem d.d_name env.repl then
                         replica_name env d.d_name r
                       else d.d_name);
                    d_init = Option.map (replica_expr env ~n ~old_bx r) d.d_init;
                  }
            | Assign (lv, e) ->
                Assign
                  ( replica_lvalue env ~n ~old_bx r lv,
                    replica_expr env ~n ~old_bx r e )
            | If (c, t, f) ->
                If
                  ( replica_expr env ~n ~old_bx r c,
                    go_replica_block r t,
                    go_replica_block r f )
            | For l ->
                For
                  {
                    l with
                    l_init = replica_expr env ~n ~old_bx r l.l_init;
                    l_limit = replica_expr env ~n ~old_bx r l.l_limit;
                    l_step = replica_expr env ~n ~old_bx r l.l_step;
                    l_body = go_replica_block r l.l_body;
                  }
            | (Sync | Global_sync | Comment _) as s -> s)
          b
      in
      let body = go_block k.k_body in
      let launch' =
        match dir with
        | Y -> { launch with grid_y = launch.grid_y / n }
        | X -> { launch with grid_x = launch.grid_x / n }
      in
      Pass_util.changed
        ~notes:
          [
            Printf.sprintf
              "merged %d threads from neighboring blocks along %s \
               (replicated %d variable(s): %s); hoisted %d shared \
               register load(s)"
              n
              (match dir with X -> "X" | Y -> "Y")
              (List.length env.repl)
              (String.concat ", " (List.rev env.repl))
              !hoists;
          ]
        { k with k_body = body }
        launch'
    end
  end

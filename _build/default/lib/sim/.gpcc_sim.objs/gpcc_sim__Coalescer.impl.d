lib/sim/coalescer.pp.ml: Config Hashtbl List

(** Per-hardware deployment (paper Section 4.2): one empirically selected
    kernel version per machine description. *)

type entry = {
  gpu : Gpcc_sim.Config.t;
  chosen : Explore.candidate;
  alternatives : int;  (** distinct versions considered for this GPU *)
}

type bundle = {
  kernel_name : string;
  entries : entry list;
}

exception No_version of string

val build :
  ?gpus:Gpcc_sim.Config.t list ->
  measure:
    (Gpcc_sim.Config.t -> Gpcc_ast.Ast.kernel -> Gpcc_ast.Ast.launch -> float) ->
  Gpcc_ast.Ast.kernel ->
  bundle

(** The version selected for a GPU (by config name); raises
    {!No_version}. *)
val pick : bundle -> string -> Compiler.result

val describe : bundle -> string

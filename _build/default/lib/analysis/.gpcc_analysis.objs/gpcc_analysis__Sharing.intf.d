lib/analysis/sharing.pp.mli: Gpcc_ast

(** Loop-invariant code motion for thread-position arithmetic.

    Thread merge replicates statements with substituted positions
    ([idy*16 + r]), so the merged kernels re-evaluate the same integer
    expressions in every loop iteration — address and guard arithmetic
    that nvcc's PTX optimizer would hoist. To keep the simulator's
    instruction counts honest about what would actually run, this pass
    hoists, per loop:

    - maximal integer subexpressions built only from thread-position
      builtins and constants (invariant everywhere by construction), into
      an [int] register declared just before the loop;
    - declarations created that way by an inner loop's pass, further
      outward when the enclosing loop re-executes them.

    The cost is one register per hoisted value — the classic
    registers-versus-occupancy tension of Section 4.1, which the
    design-space exploration arbitrates. *)

open Gpcc_ast
open Ast

(** Maximal non-trivial subexpressions whose leaves are integer literals
    and builtins (guaranteed [int], invariant to every loop). *)
let hoistable_subexprs (b : Ast.block) : Ast.expr list =
  let rec pure = function
    | Int_lit _ | Builtin _ -> true
    | Binop ((Add | Sub | Mul | Div | Mod), a, b) -> pure a && pure b
    | Unop (Neg, a) -> pure a
    | _ -> false
  in
  let has_builtin e = Rewrite.exists_expr (function Builtin _ -> true | _ -> false) e in
  let nontrivial = function Int_lit _ | Builtin _ -> false | _ -> true in
  let acc = ref [] in
  let rec scan_expr e =
    if pure e && has_builtin e && nontrivial e then begin
      if not (List.exists (Ast.equal_expr e) !acc) then acc := e :: !acc
    end
    else
      match e with
      | Int_lit _ | Float_lit _ | Var _ | Builtin _ -> ()
      | Unop (_, a) | Field (a, _) -> scan_expr a
      | Binop (_, a, b) ->
          scan_expr a;
          scan_expr b
      | Index (_, es) | Call (_, es) -> List.iter scan_expr es
      | Vload v -> scan_expr v.v_index
      | Select (c, a, b) ->
          scan_expr c;
          scan_expr a;
          scan_expr b
  in
  (* shallow scan: nested loops were already processed (bottom-up) and own
     their hoists *)
  let rec scan_block b = List.iter scan_stmt b
  and scan_stmt = function
    | Decl { d_init = Some e; _ } -> scan_expr e
    | Decl _ | Sync | Global_sync | Comment _ -> ()
    | Assign (lv, e) ->
        Rewrite.fold_exprs_lvalue (fun () e -> scan_expr e) () lv;
        scan_expr e
    | If (c, t, f) ->
        scan_expr c;
        scan_block t;
        scan_block f
    | For l ->
        scan_expr l.l_limit;
        scan_expr l.l_step;
        scan_expr l.l_init;
        scan_block l.l_body
  in
  scan_block b;
  List.rev !acc

let apply (k : Ast.kernel) (launch : Ast.launch) : Pass_util.outcome =
  let used = ref (Pass_util.used_names k) in
  let fresh () =
    let nm = Rewrite.fresh_name !used "inv" in
    used := nm :: !used;
    nm
  in
  let hoisted = ref 0 in
  let is_pure_decl = function
    | Decl { d_ty = Scalar Int; d_init = Some e; _ } ->
        let rec pure = function
          | Int_lit _ | Builtin _ -> true
          | Var _ -> false
          | Binop ((Add | Sub | Mul | Div | Mod), a, b) -> pure a && pure b
          | Unop (Neg, a) -> pure a
          | _ -> false
        in
        pure e
    | _ -> false
  in
  (* expressions are hoisted only out of *nested* loops (the hot paths
     where re-evaluation costs every iteration); registers spent on
     rarely-executed top-level loop bodies would only hurt occupancy.
     Declarations that are already pure float outward at any depth. *)
  let rec go_block ~depth (b : Ast.block) : Ast.block =
    List.concat_map
      (fun s ->
        match s with
        | For l ->
            let body = go_block ~depth:(depth + 1) l.l_body in
            let floats, stays = List.partition is_pure_decl body in
            let bindings =
              if depth >= 1 then
                List.map (fun e -> (fresh (), e)) (hoistable_subexprs stays)
              else []
            in
            hoisted := !hoisted + List.length floats + List.length bindings;
            let stays =
              List.fold_left
                (fun b (nm, e) -> Pass_util.replace_expr e (Var nm) b)
                stays bindings
            in
            floats
            @ List.map (fun (nm, e) -> Ast.decl_i nm ~init:e) bindings
            @ [ For { l with l_body = stays } ]
        | If (c, t, f) ->
            [ If (c, go_block ~depth t, go_block ~depth f) ]
        | s -> [ s ])
      b
  in
  let body = go_block ~depth:0 k.k_body in
  if !hoisted = 0 then
    Pass_util.unchanged ~notes:[ "no loop-invariant thread arithmetic" ] k
      launch
  else
    Pass_util.changed
      ~notes:
        [
          Printf.sprintf
            "hoisted %d loop-invariant thread-position expression(s) into \
             registers"
            !hoisted;
        ]
      { k with k_body = body }
      launch

lib/passes/licm.pp.mli: Gpcc_ast Pass_util

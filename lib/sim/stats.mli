(** Execution statistics gathered by the interpreter (float-valued so
    sampled-block scaling stays exact). *)

type t = {
  mutable warp_insts : float;  (** dynamic instructions, per warp *)
  mutable flops : float;  (** per-lane floating-point operations *)
  mutable gld_tx : float;  (** global load transactions *)
  mutable gst_tx : float;
  mutable gld_bytes : float;
  mutable gst_bytes : float;
  mutable cost_bytes : float;
      (** bytes derated by width-dependent bandwidth efficiency *)
  mutable gld_requests : float;  (** half-warp load requests *)
  mutable gst_requests : float;
  mutable shared_ops : float;
  mutable bank_extra : float;  (** extra cycles from bank conflicts *)
  mutable syncs : float;
  mutable divergent_branches : float;
  mutable loads_in_flight : float;  (** memory-level-parallelism proxy *)
}

val create : unit -> t
val global_bytes : t -> float
val global_tx : t -> float
val scale : float -> t -> t
val add : t -> t -> unit

val fields : t -> (string * float) list
(** Every counter as a (name, value) pair, in declaration order — the
    canonical enumeration used by differential tests and bench output. *)

val to_string : t -> string

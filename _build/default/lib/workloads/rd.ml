(** Reduction (paper Table 1: "rd", 9 LOC, 1-16 million elements).

    The naive kernel uses the paper's [#pragma] interface to convey the
    input vector length and the actual output, plus the grid-wide
    [__global_sync()] the paper supports for naive kernels that
    synchronize across output elements: a fixed pool of threads computes
    strided partial sums, and after the barrier thread 0 folds them. *)

let threads = 4096

let source n =
  Printf.sprintf
    {|#pragma gpcc dim len %d
#pragma gpcc dim nt %d
#pragma gpcc dim __threads_x %d
#pragma gpcc output out
__kernel void rd(float a[%d], float partial[%d], float out[16], int len, int nt) {
  float sum = 0;
  for (int i = idx; i < len; i += nt)
    sum += a[i];
  partial[idx] = sum;
  __global_sync();
  if (idx == 0) {
    float total = 0;
    for (int j = 0; j < nt; j++)
      total += partial[j];
    out[0] = total;
  }
}
|}
    n threads threads n threads

let inputs n = [ ("a", Workload.gen ~seed:9 n) ]

let reference n input =
  let a = input "a" in
  (* match the device's summation grouping to keep float error small:
     strided partials, then an ordered fold *)
  let partial = Array.make threads 0.0 in
  for t = 0 to threads - 1 do
    let s = ref 0.0 in
    let i = ref t in
    while !i < n do
      s := !s +. a.(!i);
      i := !i + threads
    done;
    partial.(t) <- !s
  done;
  let out = Array.make 16 0.0 in
  out.(0) <- Array.fold_left ( +. ) 0.0 partial;
  [ ("out", out) ]

let workload : Workload.t =
  {
    name = "rd";
    description = "reduction (vector sum)";
    source;
    inputs;
    reference;
    flops = float_of_int;
    moved_bytes = (fun n -> 4.0 *. float_of_int n);
    sizes = [ 1048576; 4194304; 16777216 ];
    test_size = 65536;
    bench_size = 1048576;
    tolerance = 2e-2;
    in_cublas = true;
  }

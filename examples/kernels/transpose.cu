#pragma gpcc output b
__kernel void tp(float a[1024][1024], float b[1024][1024]) {
  b[idx][idy] = a[idy][idx];
}

test/test_rewrite.ml: Alcotest Ast Gpcc_ast Gpcc_passes List Pp QCheck QCheck_alcotest Rewrite Util

test/test_fuzz.ml: Gpcc_ast Gpcc_core Gpcc_passes Gpcc_workloads List Option Printexc Printf QCheck QCheck_alcotest String Util

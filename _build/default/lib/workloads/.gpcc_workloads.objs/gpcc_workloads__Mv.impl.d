lib/workloads/mv.ml: Array Printf Workload

(** Design-space exploration (paper Section 4): generate one kernel
    version per (threads-per-block, thread-merge-degree) configuration and
    select the best by empirically running each — on the simulator here,
    on the GPU in the paper.

    The sweep is embarrassingly parallel, so candidates are fanned out
    across a {!Pool} of worker domains, and measured scores can be
    persisted in an {!Explore_cache} so repeated searches skip
    already-measured points. The outcome is deterministic: for a fixed
    candidate grid the chosen best is byte-identical whatever [jobs] is
    and whether scores came from the cache or fresh measurement.

    Besides the exhaustive sweep ({!search_with_failures}), a
    model-guided funnel ({!search_funnel}) reaches the same winner while
    fully measuring only a handful of candidates: an analytic
    pre-ranking stage ({!Gpcc_analysis.Cost_model} over single-block
    probes) prunes dominated versions, successive halving on growing
    partial-simulation block budgets eliminates the rest, and only the
    final rung pays for full-grid measurement. *)

(** How a candidate's [score] was obtained. Only [`Measured] scores are
    full-grid measurements comparable with the exhaustive sweep; the
    other provenances are funnel-internal estimates. *)
type provenance =
  [ `Measured  (** fully measured (possibly served from the cache) *)
  | `Halved of int
    (** eliminated at this successive-halving rung (1-based); the score
        is the partial-simulation estimate from that rung *)
  | `Pruned
    (** discarded by the stage-1 analytic ranking; the score is the
        model prediction *)
  | `Predicted
    (** the score is a model prediction and no empirical run happened
        (currently only probe failures) *) ]

type candidate = {
  target_block_threads : int;
  merge_degree : int;
  result : Pipeline.result;
  score : float;  (** GFLOPS, higher is better; see [provenance] *)
  provenance : provenance;
}

type failure = {
  failed_target : int;  (** requested threads per block *)
  failed_degree : int;  (** requested thread-merge degree *)
  failed_stage : [ `Compile | `Verify | `Predict | `Measure ];
      (** [`Verify]: the pipeline ran but translation validation rejected
          the result (see {!Pipeline.verifier_rejected}); [`Predict]: the
          funnel's single-block probe raised *)
  reason : string;  (** printed exception *)
}

val default_block_targets : int list
(** [[16; 32; 64; 128; 256; 512]]. The paper sweeps only 128/256/512
    threads per block; the default space is widened downwards because
    the simulated machine models small kernels too (a 64-point FFT fits
    in one 64-thread block) and because thread merge multiplies work per
    thread — at degree 32 a 512-thread target can exceed the
    per-block register file, while 16-thread blocks keep such high-merge
    versions launchable. *)

val default_merge_degrees : int list
(** [[1; 4; 8; 16; 32]]. The paper's 4/8/16/32 plus degree 1 (no thread
    merge), so the unmerged baseline competes in the same sweep instead
    of being assumed. *)

val default_prune_threshold : float
(** Stage-1 pruning threshold of {!search_funnel}: candidates predicted
    below this fraction of the best prediction are discarded. *)

(** Funnel statistics, as reported by {!search_funnel}. *)
type funnel = {
  f_configs : int;  (** (target, degree) points compiled *)
  f_distinct : int;  (** distinct kernel versions (digest groups) *)
  f_predicted : int;  (** stage-1 probes (predictions computed) *)
  f_pruned : int;  (** versions discarded on the prediction alone *)
  f_rungs : int;  (** successive-halving rungs run *)
  f_partial_runs : int;
      (** partial-simulation measurements that actually executed (cache
          hits are not counted, so a warm replay reports 0) *)
  f_measured : int;  (** versions fully measured (the final rung) *)
  f_spearman : float;
      (** Spearman rank correlation of prediction vs best empirical
          score over the stage-1 survivors; 0 when undefined *)
}

(** Compile every configuration (in parallel on [jobs] domains, default
    {!Pool.default_jobs}) and score it with [measure]. Candidates whose
    kernels coincide are measured once and share the score. A candidate
    that raises is isolated, never aborting the sweep: compile failures
    are dropped from the candidate list, measure failures score
    [Float.neg_infinity]; both are reported in the [failure] list.

    When [cache] is given, measured scores are looked up / persisted
    under [cache_prefix] plus a budget tag plus a digest of the compiled
    kernel text, so any compiler change that alters generated code
    invalidates the entry implicitly. [cache_prefix] must identify
    everything else the score depends on (machine, workload, problem
    size). Full measurements share cache entries with
    {!search_funnel}'s final stage. *)
val search_with_failures :
  ?cfg:Gpcc_sim.Config.t ->
  ?block_targets:int list ->
  ?merge_degrees:int list ->
  ?jobs:int ->
  ?cache:Explore_cache.t ->
  ?cache_prefix:string ->
  Gpcc_ast.Ast.kernel ->
  measure:(Gpcc_ast.Ast.kernel -> Gpcc_ast.Ast.launch -> float) ->
  candidate list * failure list

(** [search_with_failures] without the failure report. *)
val search :
  ?cfg:Gpcc_sim.Config.t ->
  ?block_targets:int list ->
  ?merge_degrees:int list ->
  ?jobs:int ->
  ?cache:Explore_cache.t ->
  ?cache_prefix:string ->
  Gpcc_ast.Ast.kernel ->
  measure:(Gpcc_ast.Ast.kernel -> Gpcc_ast.Ast.launch -> float) ->
  candidate list

(** The three-stage pruned sweep: {b rank} every distinct version with
    [predict] (expected: a single-block {!Gpcc_sim.Launch.run_block}
    probe fed through {!Gpcc_analysis.Cost_model.predict}) and discard
    versions predicted below [prune_threshold] of the best prediction
    (default {!default_prune_threshold}; pass [1.0] to keep only ties
    with the best, [0.0] to disable pruning); {b halve} the survivors on
    a growing block-budget schedule, where [measure ~blocks:b] must
    return a whole-grid estimate from simulating only [b] blocks, and
    the bottom half of each rung is eliminated; {b measure} the
    finalists with [measure] (no [blocks]) — a full-grid run, cached
    under the same key as the exhaustive sweep.

    [budget_sensitive] (default [true]) declares whether [measure]'s
    cost actually shrinks with [blocks]. Multi-phase kernels simulate
    in [Full] mode, where a block budget genuinely aborts early;
    single-phase kernels simulate [Sampled], whose cost is a handful of
    blocks no matter the budget (see {!Gpcc_sim.Launch.run}, and
    {!Gpcc_workloads.Workload.budget_sensitive} for the per-workload
    answer). With [~budget_sensitive:false] the halving stage is
    skipped — a rung run would cost as much as the full measurement it
    approximates — and every stage-1 survivor is fully measured.

    Every compiled candidate is returned with the score of its last
    stage and a {!provenance}. Use {!best_measured} to select the
    winner. Ties at every stage are cut in candidate-enumeration order,
    so for a rank-faithful model the funnel's winner is identical to
    the exhaustive sweep's. *)
val search_funnel :
  ?cfg:Gpcc_sim.Config.t ->
  ?block_targets:int list ->
  ?merge_degrees:int list ->
  ?jobs:int ->
  ?cache:Explore_cache.t ->
  ?cache_prefix:string ->
  ?prune_threshold:float ->
  ?budget_sensitive:bool ->
  Gpcc_ast.Ast.kernel ->
  predict:(Gpcc_ast.Ast.kernel -> Gpcc_ast.Ast.launch -> float) ->
  measure:(?blocks:int -> Gpcc_ast.Ast.kernel -> Gpcc_ast.Ast.launch -> float) ->
  candidate list * failure list * funnel

(** Drop candidates whose kernel and launch coincide with an earlier one
    (different knobs often converge to the same version). *)
val distinct : candidate list -> candidate list

val best : candidate list -> candidate option
(** Highest score; earliest in list order on ties (which makes the
    winner independent of [jobs]). *)

val best_measured : candidate list -> candidate option
(** Winner of a funnel sweep: {!best} restricted to [`Measured]
    candidates — estimates from other provenances live on slightly
    different scales and must not outrank an actual measurement. Falls
    back to {!best} over everything when no candidate was successfully
    measured. *)

(** [search] followed by [best]. *)
val pick :
  ?cfg:Gpcc_sim.Config.t ->
  ?block_targets:int list ->
  ?merge_degrees:int list ->
  ?jobs:int ->
  ?cache:Explore_cache.t ->
  ?cache_prefix:string ->
  Gpcc_ast.Ast.kernel ->
  measure:(Gpcc_ast.Ast.kernel -> Gpcc_ast.Ast.launch -> float) ->
  candidate option

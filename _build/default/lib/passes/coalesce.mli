(** Converting non-coalesced accesses into coalesced ones (paper
    Section 3.3) by staging through shared memory:

    - loop staging ([a[idy][i]]): unroll the loop by 16, load the segment
      cooperatively, read [shared[k]] (Figure 3a);
    - row-loop staging ([a[idx][i]]): introduce a row loop filling a
      padded 16x17 tile (Figure 3b);
    - apron staging (misaligned stencil neighborhoods): widened row
      buffers loaded by a cooperative strided loop;
    - strided destaging (interleaved complex layouts when vectorization
      is off);
    - idx/idy exchange for transpose-like stores (block grows to 16x16).

    Accesses under thread-dependent control flow, with unresolved
    indices, or whose staged data would have no reuse are left as is,
    with an explanatory note. *)

val apply : Gpcc_ast.Ast.kernel -> Gpcc_ast.Ast.launch -> Pass_util.outcome

(** Analytic cost model for design-space pre-ranking. See the mli for
    the modelling rationale. *)

type probe = {
  p_gflops : float;
  p_bound : string;
  p_active_warps : int;
  p_blocks_per_sm : int;
  p_reg_spill : bool;
  p_waves : int;
  p_total_blocks : int;
}

type prediction = {
  score : float;
  rationale : string;
}

(* The simulator's spill slowdown is a flat factor on cycles; the local
   -memory traffic a real spill adds is not charged, so probes of
   spilling configurations read high. *)
let spill_derate = 0.5

(* A single block's transaction stream always covers its partitions
   evenly (partition efficiency 1.0), so memory-bound probes are
   optimistic relative to the measured multi-block run. *)
let memory_optimism = 0.9

let predict (p : probe) : prediction =
  let base = Float.max 0.0 p.p_gflops in
  let score, note =
    if p.p_reg_spill then (base *. spill_derate, "register-spill derated")
    else if String.equal p.p_bound "memory" then
      (base *. memory_optimism, "memory-bound, camping-blind probe")
    else (base, p.p_bound ^ "-bound")
  in
  {
    score;
    rationale =
      Printf.sprintf "%s; %d warps, %d blocks/SM, %d blocks in %d wave%s"
        note p.p_active_warps p.p_blocks_per_sm p.p_total_blocks p.p_waves
        (if p.p_waves = 1 then "" else "s");
  }

let keep ~(threshold : float) ~(best : float) (score : float) : bool =
  if best <= 0.0 then true else score >= threshold *. best

(* Stable selection: sort by score only, descending; [List.stable_sort]
   leaves equal scores in input order, so the earlier candidate makes
   the cut on a tie — the same earliest-wins rule [Explore.best] uses. *)
let halve (xs : ('a * float) list) : ('a * float) list =
  match xs with
  | [] | [ _ ] -> xs
  | xs ->
      let ranked =
        List.stable_sort (fun (_, a) (_, b) -> Float.compare b a) xs
      in
      let n_keep = (List.length xs + 1) / 2 in
      let kept = List.filteri (fun i _ -> i < n_keep) ranked in
      (* report survivors in input order, not rank order, so downstream
         tie-breaks stay deterministic whatever the rung scores were *)
      List.filter (fun x -> List.memq x kept) xs

let initial_budget ~(total : int) : int = max 1 (total / 8)
let next_budget ~(total : int) (b : int) : int = min total (max (b * 4) 1)

(* --- Spearman rank correlation ------------------------------------- *)

(* average ranks (1-based) with ties sharing the mean of their span *)
let ranks (xs : float array) : float array =
  let n = Array.length xs in
  let order = Array.init n Fun.id in
  Array.sort (fun i j -> Float.compare xs.(i) xs.(j)) order;
  let r = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && xs.(order.(!j + 1)) = xs.(order.(!i)) do
      incr j
    done;
    (* positions !i..!j hold equal values: average rank *)
    let avg = float_of_int (!i + !j + 2) /. 2.0 in
    for k = !i to !j do
      r.(order.(k)) <- avg
    done;
    i := !j + 1
  done;
  r

let spearman (pairs : (float * float) list) : float =
  let n = List.length pairs in
  if n < 2 then 0.0
  else begin
    let xs = Array.of_list (List.map fst pairs) in
    let ys = Array.of_list (List.map snd pairs) in
    let rx = ranks xs and ry = ranks ys in
    let nf = float_of_int n in
    let mean a = Array.fold_left ( +. ) 0.0 a /. nf in
    let mx = mean rx and my = mean ry in
    let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
    for i = 0 to n - 1 do
      let dx = rx.(i) -. mx and dy = ry.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy)
    done;
    if !sxx <= 0.0 || !syy <= 0.0 then 0.0
    else !sxy /. sqrt (!sxx *. !syy)
  end

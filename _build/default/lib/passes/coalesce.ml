(** Converting non-coalesced accesses into coalesced ones (paper
    Section 3.3).

    Four transformation rules, each staging data through shared memory so
    that the actual off-chip traffic is issued by full half warps:

    - {b loop staging} (paper's [A[m*i+n]] case, as in [a[idy][i]] of mm or
      [b[i]] of mv): the enclosing loop is unrolled 16 times; the 16
      elements the unrolled iterations need form one coalesced segment that
      the half warp loads cooperatively into [shared0[16]]; the unrolled
      body reads [shared0[k]].
    - {b row-loop staging} (the [a[idx][i]] case of mv): each thread walks
      its own row, so the half warp's rows form a 16x16 tile; an introduced
      loop [l] loads row [(idx-tidx)+l] with coalesced column accesses
      [i+tidx] into [shared1[16][17]] (padded against bank conflicts), and
      the body reads [shared1[tidx][k]].
    - {b apron staging} (misaligned neighborhoods, [a[idy+dy][idx+dx]] of
      convolution/stencils): the block's 16 threads need columns
      [16*bidx+lo .. 16*bidx+15+hi]; the enclosing rows are staged from the
      aligned segment boundary into a widened shared buffer by a short
      cooperative loop, and accesses become [sh[tidx + (off - lo')]].
    - {b idx/idy exchange} (the [A[idx][idy]] store of transpose): the
      block is grown to 16x16, values are staged into a padded 16x17 tile,
      and the store is re-issued with [tidx]/[tidy] exchanged so rows
      become columns — both directions coalesced.

    Per the paper's reuse rule (Section 3.4), a conversion whose staged
    data would have no reuse is skipped. *)

open Gpcc_ast
open Ast
open Gpcc_analysis

type note = string

let round_up = Layout.round_up

(* --------------------------------------------------------------------- *)
(* Planning: decide a rule per non-coalesced access                        *)
(* --------------------------------------------------------------------- *)

type plan =
  | Loop_stage of { loop : string }
  | Rowloop_stage of { loop : string }
  | Apron_stage of { loop : string option }
      (** [loop] is the innermost loop appearing in the column offset, if
          any; staging is inserted just outside it *)
  | Strided_stage of { m : int; c : int }
      (** interleaved layouts ([a[2*i]], [a[2*i+1]]): lane stride [m],
          element offset [c]; the half warp destages [16*m] contiguous
          elements through shared memory *)
  | Exchange_store
  | Skip of string

let minor_of indices = List.nth indices (List.length indices - 1)
let rows_of indices = List.filteri (fun i _ -> i < List.length indices - 1) indices

(** Coefficient of [Iter lv] in the affine form of the minor index. *)
let minor_iter_coeff (a : Coalesce_check.access) =
  match Affine.of_expr a.ctx (minor_of a.indices) with
  | None -> None
  | Some f -> (
      match
        List.filter_map
          (function Affine.Iter l, c -> Some (l, c) | _ -> None)
          f.Affine.terms
      with
      | [ (l, c) ] -> Some (l, c, f)
      | _ -> if f.Affine.terms = [] then None else None)

let rows_lane_free (a : Coalesce_check.access) =
  List.for_all
    (fun r ->
      match Affine.of_expr a.ctx r with
      | Some f -> Affine.coeff Affine.Tidx f = 0 && Affine.coeff Affine.Bidx f = 0
      | None -> false)
    (rows_of a.indices)

(** Is the row index exactly the absolute thread position [idx + c]? *)
let row_is_idx (a : Coalesce_check.access) =
  match rows_of a.indices with
  | [ r ] -> (
      match Affine.of_expr a.ctx r with
      | Some f ->
          Affine.coeff Affine.Tidx f = 1
          && Affine.coeff Affine.Tidy f = 0
          && List.for_all
               (function Affine.Iter _, _ -> false | _ -> true)
               f.Affine.terms
      | None -> false)
  | _ -> false

(** Column offset [g] relative to [idx]: minor = idx + g. *)
let minor_minus_idx (a : Coalesce_check.access) : Ast.expr option =
  let minor = minor_of a.indices in
  match Affine.of_expr a.ctx minor with
  | Some f
    when Affine.coeff Affine.Tidx f = 1
         && Affine.coeff Affine.Tidy f = 0 ->
      (* replace idx (and bare tidx) by 0 syntactically to recover g *)
      let g =
        minor
        |> Rewrite.subst_builtin_expr Ast.Idx (Int_lit 0)
        |> Rewrite.subst_builtin_expr Ast.Tidx (Int_lit 0)
      in
      Some (Pass_util.simplify_expr g)
  | _ -> None

(** Range of the column offset [g] over its enclosing loops' full trips. *)
let offset_range (a : Coalesce_check.access) (g : Ast.expr) :
    (int * int * string option) option =
  match Affine.of_expr a.ctx g with
  | None -> None
  | Some f ->
      let base = f.Affine.const in
      List.fold_left
        (fun acc (v, c) ->
          match (acc, v) with
          | None, _ -> None
          | Some (lo, hi, lv), Affine.Iter l -> (
              match List.assoc_opt l a.ctx.Affine.loops with
              | Some { Affine.ld_trips = Some trips; _ } when trips > 0 ->
                  let d = c * (trips - 1) in
                  let lo = min lo (lo + d) and hi = max hi (hi + d) in
                  (* remember the innermost loop involved *)
                  let lv =
                    match lv with
                    | None -> Some l
                    | Some prev ->
                        (* keep the innermost (first in ctx order) *)
                        let pos x =
                          let rec go i = function
                            | [] -> max_int
                            | (n, _) :: r ->
                                if String.equal n x then i else go (i + 1) r
                          in
                          go 0 a.ctx.Affine.loops
                        in
                        if pos l < pos prev then Some l else Some prev
                  in
                  Some (lo, hi, lv)
              | _ -> None)
          | ( Some _,
              ( Affine.Tidx | Affine.Tidy | Affine.Bidx | Affine.Bidy
              | Affine.Param _ | Affine.Mod_of _ | Affine.Div_of _ ) ) ->
              None)
        (Some (base, base, None))
        f.Affine.terms

let plan_access (a : Coalesce_check.access) : plan =
  match a.verdict with
  | Coalesce_check.Coalesced -> Skip "already coalesced"
  | Unknown -> Skip "unresolved index: skipped (paper rule)"
  | Noncoalesced _ when a.vec_width > 1 ->
      Skip "vector access left untouched (NVIDIA rule)"
  | Noncoalesced reason -> (
      if a.is_store then
        (* the A[idx][idy]-style store: exchangeable? *)
        if
          (not a.divergent)
          && List.length a.indices = 2 && row_is_idx a
          &&
          match Affine.of_expr a.ctx (minor_of a.indices) with
          | Some f ->
              Affine.coeff Affine.Tidx f = 0
              && Affine.coeff Affine.Bidy f = a.ctx.Affine.block_y
                 (* minor = idy + c *)
              && Affine.coeff Affine.Tidy f = 1 || (a.ctx.Affine.block_y = 1 && Affine.coeff Affine.Bidy f = 1)
          | None -> false
        then Exchange_store
        else Skip "non-coalesced store with no applicable rule"
      else
        match minor_iter_coeff a with
        | Some (l, 1, f)
          when Affine.coeff Affine.Tidx f = 0
               && rows_lane_free a && List.mem l a.safe_loops ->
            Loop_stage { loop = l }
        | Some (l, 1, f)
          when Affine.coeff Affine.Tidx f = 0
               && row_is_idx a
               && List.length a.indices = 2
               && List.mem l a.safe_loops ->
            Rowloop_stage { loop = l }
        | Some (l, _, f)
          when Affine.coeff Affine.Tidx f = 0
               && not (List.mem l a.safe_loops) ->
            Skip
              (Printf.sprintf
                 "loop %s sits under thread-dependent control flow: staging \
                  would not be cooperative"
                 l)
        | _ when a.divergent ->
            Skip
              "access under thread-dependent control flow: left as is"
        | _ when
            (match a.flat with
            | Some f ->
                let m = Affine.coeff Affine.Tidx f in
                (m = 2 || m = 4)
                && List.length a.indices = 1
                && f.Affine.const >= 0
                && f.Affine.const < m
                && List.for_all
                     (fun (v, cf) ->
                       Affine.equal_var v Affine.Tidx || cf mod 16 = 0)
                     f.Affine.terms
            | None -> false) ->
            let f = Option.get a.flat in
            Strided_stage
              { m = Affine.coeff Affine.Tidx f; c = f.Affine.const }
        | _ -> (
            match reason with
            | Coalesce_check.Misaligned _ -> (
                match minor_minus_idx a with
                | Some g -> (
                    match offset_range a g with
                    | Some (lo, _, lv) when lo >= 0 ->
                        (* the reuse rule is applied per staging group in
                           [apply]: a lone offset has no reuse, but several
                           accesses to the same rows share the buffer *)
                        Apron_stage { loop = lv }
                    | Some _ -> Skip "offset range extends below zero"
                    | None -> Skip "column offset range not compile-time")
                | None -> Skip "misaligned access without idx+offset shape")
            | _ -> Skip "no applicable coalescing rule (left as is)"))

(* --------------------------------------------------------------------- *)
(* Rule bodies                                                            *)
(* --------------------------------------------------------------------- *)

(** Rewrite the loop [lv]: unroll by 16 and stage the planned accesses.
    [members] pairs each access with its plan (Loop_stage or
    Rowloop_stage for this loop). *)
let stage_loop (_k : Ast.kernel) (lv : string)
    (members : (Coalesce_check.access * plan) list) (body : Ast.block)
    ~(fresh : string -> string) : Ast.block * note list =
  let notes = ref [] in
  let rewrite (l : Ast.loop) : Ast.stmt =
    let kvar = fresh "k" in
    let decls = ref [] and stagings = ref [] in
    let inner = ref l.l_body in
    List.iter
      (fun ((a : Coalesce_check.access), plan) ->
        let original = Ast.Index (a.arr, a.indices) in
        let minor = minor_of a.indices in
        match plan with
        | Loop_stage _ ->
            let sh = fresh "shared" in
            decls := Ast.decl_shared sh [ 16 ] :: !decls;
            stagings :=
              Assign
                ( Lindex (sh, [ Ast.tidx ]),
                  Index (a.arr, rows_of a.indices @ [ Ast.( +: ) minor Ast.tidx ]) )
              :: !stagings;
            inner := Pass_util.replace_expr original (Index (sh, [ Var kvar ])) !inner;
            notes :=
              Printf.sprintf
                "%s: unrolled loop %s by 16 and staged through %s[16]"
                (Pp.expr_to_string original) lv sh
              :: !notes
        | Rowloop_stage _ ->
            let sh = fresh "shared" in
            let lrow = fresh "l" in
            decls := Ast.decl_shared sh [ 16; 17 ] :: !decls;
            let row = List.hd (rows_of a.indices) in
            let row' =
              Rewrite.subst_builtin_expr Ast.Idx
                (Ast.( +: ) (Ast.( -: ) Ast.idx Ast.tidx) (Var lrow))
                row
            in
            stagings :=
              Ast.for_ lrow ~from:(Int_lit 0) ~limit:(Int_lit 16)
                ~step:(Int_lit 1)
                [
                  Assign
                    ( Lindex (sh, [ Var lrow; Ast.tidx ]),
                      Index (a.arr, [ row'; Ast.( +: ) minor Ast.tidx ]) );
                ]
              :: !stagings;
            inner :=
              Pass_util.replace_expr original
                (Index (sh, [ Ast.tidx; Var kvar ]))
                !inner;
            notes :=
              Printf.sprintf
                "%s: introduced row loop %s, staged 16x16 tile through %s[16][17]"
                (Pp.expr_to_string original) lrow sh
              :: !notes
        | _ -> ())
      members;
    let inner =
      Rewrite.subst_var lv
        (Ast.( +: ) (Var lv) (Ast.( *: ) (Var kvar) l.l_step))
        !inner
    in
    let new_body =
      List.rev !decls @ List.rev !stagings
      @ [ Ast.Sync ]
      @ [
          Ast.for_ kvar ~from:(Int_lit 0) ~limit:(Int_lit 16)
            ~step:(Int_lit 1) inner;
        ]
      @ [ Ast.Sync ]
    in
    For
      {
        l with
        l_step = Ast.( *: ) l.l_step (Int_lit 16);
        l_body = Pass_util.simplify_block new_body;
      }
  in
  let found = ref false in
  let body' =
    Rewrite.map_stmts
      (function
        | For l when String.equal l.l_var lv && not !found ->
            found := true;
            [ rewrite l ]
        | s -> [ s ])
      body
  in
  (body', !notes)

(** Apron staging for a group of accesses to the same array with the same
    row indices: one widened shared row buffer, loaded cooperatively. *)
let stage_apron (k : Ast.kernel)
    (group : (Coalesce_check.access * Ast.expr (* g *) * int * int) list)
    (insert_loop : string option) (body : Ast.block)
    ~(fresh : string -> string) : (Ast.block * note list) option =
  ignore k;
  match group with
  | [] -> None
  | ((a0 : Coalesce_check.access), _, _, _) :: _ ->
      let lo = List.fold_left (fun m (_, _, l, _) -> min m l) max_int group in
      let hi = List.fold_left (fun m (_, _, _, h) -> max m h) min_int group in
      let lo' = lo / 16 * 16 in
      let width = round_up (16 + hi - lo') 16 in
      let sh = fresh "apron" in
      let tvar = fresh "t" in
      let rows = rows_of a0.indices in
      let staging =
        [
          Ast.decl_shared sh [ width ];
          Ast.for_ tvar ~from:Ast.tidx ~limit:(Int_lit width)
            ~step:(Int_lit 16)
            [
              Assign
                ( Lindex (sh, [ Var tvar ]),
                  Index
                    ( a0.arr,
                      rows
                      @ [
                          Ast.( +: )
                            (Ast.( +: ) (Ast.( -: ) Ast.idx Ast.tidx)
                               (Int_lit lo'))
                            (Var tvar);
                        ] ) );
            ];
          Ast.Sync;
        ]
      in
      let replace_all b =
        List.fold_left
          (fun b ((a : Coalesce_check.access), g, _, _) ->
            let original = Ast.Index (a.arr, a.indices) in
            let repl =
              Ast.Index
                ( sh,
                  [
                    Pass_util.simplify_expr
                      (Ast.( +: ) Ast.tidx (Ast.( -: ) g (Int_lit lo')));
                  ] )
            in
            Pass_util.replace_expr original repl b)
          b group
      in
      let note =
        Printf.sprintf
          "%s: staged %d-column apron (offsets %d..%d) through %s[%d]"
          a0.arr width lo hi sh width
      in
      let result =
        match insert_loop with
        | Some lv ->
            let found = ref false in
            let body' =
              Rewrite.map_stmts
                (function
                  | For l when String.equal l.l_var lv && not !found ->
                      found := true;
                      staging
                      @ [ For { l with l_body = replace_all l.l_body } ]
                      @ [ Ast.Sync ]
                  | s -> [ s ])
                body
            in
            if !found then Some body' else None
        | None -> Some (staging @ replace_all body)
      in
      Option.map (fun b -> (Pass_util.simplify_block b, [ note ])) result

(** Destage an interleaved (lane-strided) access group through shared
    memory: the half warp's [m]-strided accesses cover [16*m] contiguous
    elements, which [m] coalesced loads bring into [sh]; each access
    [a[m*e + c]] becomes [sh[m*tidx + c]]. Used for complex-number layouts
    when vectorization is off (the paper's optimized_wo_vec variant). *)
let stage_strided (group : (Coalesce_check.access * int * int) list)
    (body : Ast.block) ~(fresh : string -> string) :
    (Ast.block * note list) option =
  match group with
  | [] -> None
  | ((a0 : Coalesce_check.access), m, c0) :: _ ->
      let sh = fresh "shared" in
      let minor0 = minor_of a0.indices in
      let base =
        Pass_util.simplify_expr
          (Ast.( -: ) minor0
             (Ast.( +: ) (Ast.( *: ) (Int_lit m) Ast.tidx) (Int_lit c0)))
      in
      let staging =
        Ast.decl_shared sh [ 16 * m ]
        :: List.init m (fun j ->
               Assign
                 ( Lindex (sh, [ Ast.( +: ) Ast.tidx (Int_lit (16 * j)) ]),
                   Index
                     ( a0.arr,
                       [
                         Ast.( +: )
                           (Ast.( +: ) base (Int_lit (16 * j)))
                           Ast.tidx;
                       ] ) ))
        @ [ Ast.Sync ]
      in
      let originals =
        List.map
          (fun ((a : Coalesce_check.access), m, c) ->
            ( Ast.Index (a.arr, a.indices),
              Ast.Index
                ( sh,
                  [ Ast.( +: ) (Ast.( *: ) (Int_lit m) Ast.tidx) (Int_lit c) ]
                ) ))
          group
      in
      let shallow_uses (s : Ast.stmt) =
        let probe =
          match s with
          | If (c, _, _) -> [ Assign (Lvar "_c", c) ]
          | For _ | Sync | Global_sync | Comment _ -> []
          | s -> [ s ]
        in
        List.exists
          (fun (orig, _) ->
            Rewrite.fold_exprs_block
              (fun acc e ->
                acc || Rewrite.exists_expr (Ast.equal_expr orig) e)
              false probe)
          originals
      in
      let replace_stmt s =
        List.fold_left
          (fun s (orig, repl) ->
            match Pass_util.replace_expr orig repl [ s ] with
            | [ s' ] -> s'
            | _ -> s)
          s originals
      in
      let done_ = ref false in
      let rec rewrite_block (b : Ast.block) : Ast.block =
        if !done_ then b
        else if List.exists shallow_uses b then begin
          done_ := true;
          let first =
            List.mapi (fun i s -> (i, shallow_uses s)) b
            |> List.filter (fun (_, u) -> u)
            |> List.map fst
          in
          let lo = List.fold_left min max_int first in
          let hi = List.fold_left max 0 first in
          List.concat
            (List.mapi
               (fun i s ->
                 let s = replace_stmt s in
                 if i = lo && i = hi then staging @ [ s; Ast.Sync ]
                 else if i = lo then staging @ [ s ]
                 else if i = hi then [ s; Ast.Sync ]
                 else [ s ])
               b)
        end
        else
          List.map
            (fun s ->
              match s with
              | For l -> For { l with l_body = rewrite_block l.l_body }
              | If (c, t, f) -> If (c, rewrite_block t, rewrite_block f)
              | s -> s)
            b
      in
      let body' = rewrite_block body in
      if !done_ then
        Some
          ( Pass_util.simplify_block body',
            [
              Printf.sprintf
                "%s: destaged %d-strided accesses through %s[%d] (%d \
                 coalesced loads per half warp)"
                a0.arr m sh (16 * m) m;
            ] )
      else None

(** The idx/idy-exchanged store for transpose-like kernels; grows the
    block to 16x16. *)
let stage_exchange (a : Coalesce_check.access) (body : Ast.block)
    ~(fresh : string -> string) : (Ast.block * note list) option =
  match a.indices with
  | [ e1; e2 ] ->
      let tile = fresh "tile" in
      let found = ref false in
      let body' =
        Rewrite.map_stmts
          (function
            | Assign (Lindex (arr, [ e1'; e2' ]), v)
              when String.equal arr a.arr && Ast.equal_expr e1 e1'
                   && Ast.equal_expr e2 e2' && not !found ->
                found := true;
                [
                  Ast.decl_shared tile [ 16; 17 ];
                  Assign (Lindex (tile, [ Ast.tidy; Ast.tidx ]), v);
                  Ast.Sync;
                  Assign
                    ( Lindex
                        ( arr,
                          [
                            Ast.( +: ) (Ast.( -: ) e1 Ast.tidx) Ast.tidy;
                            Ast.( +: ) (Ast.( -: ) e2 Ast.tidy) Ast.tidx;
                          ] ),
                      Index (tile, [ Ast.tidx; Ast.tidy ]) );
                ]
            | s -> [ s ])
          body
      in
      if !found then
        Some
          ( Pass_util.simplify_block body',
            [
              Printf.sprintf
                "%s: exchanged idx/idy through a padded 16x17 tile (block \
                 grown to 16x16)"
                (Pp.expr_to_string (Ast.Index (a.arr, a.indices)));
            ] )
      else None
  | _ -> None

(* --------------------------------------------------------------------- *)
(* The pass                                                               *)
(* --------------------------------------------------------------------- *)

let apply (k : Ast.kernel) (launch : Ast.launch) : Pass_util.outcome =
  let accesses = Coalesce_check.analyze_kernel ~launch k in
  let planned = List.map (fun a -> (a, plan_access a)) accesses in
  let actionable =
    List.filter
      (fun (_, p) -> match p with Skip _ -> false | _ -> true)
      planned
  in
  if actionable = [] then
    Pass_util.unchanged
      ~notes:
        (List.filter_map
           (fun ((a : Coalesce_check.access), p) ->
             match (a.verdict, p) with
             | Coalesce_check.Noncoalesced _, Skip why ->
                 Some
                   (Printf.sprintf "%s: %s"
                      (Pp.expr_to_string (Index (a.arr, a.indices)))
                      why)
             | _ -> None)
           planned
        @ [ "all global accesses already coalesced" ])
      k launch
  else begin
    let used = ref (Pass_util.used_names k) in
    let fresh base =
      let n = Rewrite.fresh_name !used base in
      used := n :: !used;
      n
    in
    let notes = ref [] in
    let body = ref k.k_body in
    let launch = ref launch in
    (* 1. exchangeable stores (grow block to 16x16 once) *)
    let exchanges =
      List.filter (fun (_, p) -> p = Exchange_store) actionable
    in
    if exchanges <> [] then begin
      if !launch.block_y = 1 && !launch.grid_y mod 16 = 0 then begin
        launch :=
          { !launch with block_y = 16; grid_y = !launch.grid_y / 16 };
        List.iter
          (fun ((a : Coalesce_check.access), _) ->
            match stage_exchange a !body ~fresh with
            | Some (b, ns) ->
                body := b;
                notes := !notes @ ns
            | None ->
                notes :=
                  !notes
                  @ [
                      Printf.sprintf "%s: exchange store rule did not match"
                        a.arr;
                    ])
          exchanges
      end
      else
        notes := !notes @ [ "exchange store skipped: grid not divisible" ]
    end;
    (* 2. apron-staged loads, grouped by (array, row indices, loop).
       Applied before loop staging: loop staging rewrites index
       expressions (i -> i+k), which would defeat the apron's syntactic
       replacement. *)
    let aprons =
      List.filter_map
        (fun ((a : Coalesce_check.access), p) ->
          match p with
          | Apron_stage { loop } -> (
              match minor_minus_idx a with
              | Some g -> (
                  match offset_range a g with
                  | Some (lo, hi, _) -> Some (a, g, lo, hi, loop)
                  | None -> None)
              | None -> None)
          | _ -> None)
        actionable
    in
    let keys =
      List.sort_uniq compare
        (List.map
           (fun ((a : Coalesce_check.access), _, _, _, lp) ->
             ( a.arr,
               List.map Pp.expr_to_string (rows_of a.indices),
               lp ))
           aprons)
    in
    List.iter
      (fun (arr, rows_key, lp) ->
        let group =
          List.filter_map
            (fun ((a : Coalesce_check.access), g, lo, hi, lp') ->
              if
                String.equal a.arr arr
                && List.map Pp.expr_to_string (rows_of a.indices) = rows_key
                && lp' = lp
              then Some (a, g, lo, hi)
              else None)
            aprons
        in
        (* per-group reuse rule (paper Section 3.4): a single offset with
           no sweeping loop means every staged element is read once *)
        let lo = List.fold_left (fun m (_, _, l, _) -> min m l) max_int group in
        let hi = List.fold_left (fun m (_, _, _, h) -> max m h) min_int group in
        if hi = lo && lp = None && List.length group <= 1 then
          notes :=
            !notes
            @ [
                Printf.sprintf
                  "%s: staged data would have no reuse: not converted" arr;
              ]
        else
          match stage_apron k group lp !body ~fresh with
          | Some (b, ns) ->
              body := b;
              notes := !notes @ ns
          | None ->
              notes := !notes @ [ Printf.sprintf "%s: apron staging failed" arr ])
      keys;
    (* 3. lane-strided (interleaved) loads, grouped by segment base *)
    let strided =
      List.filter_map
        (fun ((a : Coalesce_check.access), p) ->
          match (p, a.flat) with
          | Strided_stage { m; c }, Some f ->
              let key = Affine.drop Affine.Tidx { f with Affine.const = f.Affine.const - c } in
              Some (key, (a, m, c))
          | _ -> None)
        actionable
    in
    let strided_keys =
      List.fold_left
        (fun acc (key, _) ->
          if List.exists (Affine.equal key) acc then acc else key :: acc)
        [] strided
      |> List.rev
    in
    List.iter
      (fun key ->
        let group =
          List.filter_map
            (fun (k', m) -> if Affine.equal key k' then Some m else None)
            strided
        in
        match stage_strided group !body ~fresh with
        | Some (b, ns) ->
            body := b;
            notes := !notes @ ns
        | None ->
            notes := !notes @ [ "strided destaging found no insertion point" ])
      strided_keys;
    (* 4. loop-staged loads, grouped per enclosing loop *)
    let loop_members =
      List.filter_map
        (fun (a, p) ->
          match p with
          | Loop_stage { loop } | Rowloop_stage { loop } -> Some (loop, (a, p))
          | _ -> None)
        actionable
    in
    let loops = List.sort_uniq String.compare (List.map fst loop_members) in
    List.iter
      (fun lv ->
        let members =
          List.filter_map
            (fun (l, m) -> if String.equal l lv then Some m else None)
            loop_members
        in
        let b, ns = stage_loop k lv members !body ~fresh in
        body := b;
        notes := !notes @ ns)
      loops;
    (* skipped accesses still worth reporting *)
    List.iter
      (fun ((a : Coalesce_check.access), p) ->
        match (a.verdict, p) with
        | Coalesce_check.Noncoalesced _, Skip why ->
            notes :=
              !notes
              @ [
                  Printf.sprintf "%s: %s"
                    (Pp.expr_to_string (Index (a.arr, a.indices)))
                    why;
                ]
        | _ -> ())
      planned;
    Pass_util.changed ~notes:!notes { k with k_body = !body } !launch
  end

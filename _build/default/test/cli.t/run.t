The gpcc command line lists the paper's Table-1 workloads:

  $ gpcc list | awk '{print $1}'
  tmv
  mm
  mv
  vv
  rd
  strsm
  conv
  tp
  demosaic
  imregionmax
  rd-complex
  fft

Coalescing verdicts for the paper's Figure 2a kernel:

  $ cat > mm.cu <<'SRC'
  > #pragma gpcc dim w 64
  > #pragma gpcc output c
  > __kernel void mm(float a[64][64], float b[64][64], float c[64][64], int w) {
  >   float sum = 0;
  >   for (int i = 0; i < w; i++)
  >     sum += a[idy][i] * b[i][idx];
  >   c[idy][idx] = sum;
  > }
  > SRC
  $ gpcc check mm.cu
  type check: OK
    a[idy][i] load (64*tidy + 64*bidy + iter(i)): (Noncoalesced Uniform)
    b[i][idx] load (tidx + 16*bidx + 64*iter(i)): Coalesced
    c[idy][idx] store (tidx + 64*tidy + 16*bidx + 64*bidy): Coalesced

Compilation produces the paper's Figure 3a/5/7 shape:

  $ gpcc compile -t 64 -m 4 mm.cu | grep -c 'sum_3\|if (tidx < 16)\|__shared__'
  12

Errors are reported with positions:

  $ cat > bad.cu <<'SRC'
  > __kernel void f(float o[16]) {
  >   o[idx] = nope;
  > }
  > SRC
  $ gpcc compile bad.cu
  type error: undeclared variable nope
  [1]

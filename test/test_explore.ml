(** The parallel design-space exploration engine: the domain pool, the
    jobs-invariance of the Section-4 search, per-candidate failure
    isolation, and the persistent exploration cache. *)

let fresh_cache_dir () = Filename.temp_dir "gpcc_test_cache" ""

(* score equality must treat -inf = -inf as equal (a failed measurement
   is a legitimate, shareable score) *)
let score_t =
  Alcotest.testable Fmt.float (fun a b -> a = b || Float.abs (a -. b) <= 1e-9)

(* --- the pool itself --- *)

let test_pool_map_order () =
  let xs = List.init 100 Fun.id in
  List.iter
    (fun jobs ->
      let got = Gpcc_core.Pool.with_pool ~jobs (fun p ->
          Gpcc_core.Pool.map p (fun x -> x * x) xs)
      in
      Alcotest.(check (list int))
        (Printf.sprintf "squares in order (jobs=%d)" jobs)
        (List.map (fun x -> x * x) xs)
        got)
    [ 1; 4 ]

let test_pool_failure_isolation () =
  let xs = [ 1; 2; 3; 4; 5 ] in
  let f x = if x mod 2 = 0 then failwith (string_of_int x) else x * 10 in
  List.iter
    (fun jobs ->
      let results = Gpcc_core.Pool.run ~jobs f xs in
      let show = function
        | Ok y -> Printf.sprintf "ok:%d" y
        | Error e -> "err:" ^ Printexc.to_string e
      in
      Alcotest.(check (list string))
        (Printf.sprintf "per-element results (jobs=%d)" jobs)
        [ "ok:10"; "err:Failure(\"2\")"; "ok:30"; "err:Failure(\"4\")";
          "ok:50" ]
        (List.map show results);
      (* map re-raises the earliest failing element *)
      match
        Gpcc_core.Pool.with_pool ~jobs (fun p -> Gpcc_core.Pool.map p f xs)
      with
      | _ -> Alcotest.fail "map should re-raise"
      | exception Failure m ->
          Alcotest.(check string)
            (Printf.sprintf "earliest error wins (jobs=%d)" jobs)
            "2" m)
    [ 1; 4 ]

let test_pool_reuse_and_shutdown () =
  let p = Gpcc_core.Pool.create ~jobs:3 () in
  Alcotest.(check int) "workers" 3 (Gpcc_core.Pool.size p);
  let a = Gpcc_core.Pool.map p succ [ 1; 2; 3 ] in
  let b = Gpcc_core.Pool.map p succ [ 4; 5 ] in
  Alcotest.(check (list int)) "first batch" [ 2; 3; 4 ] a;
  Alcotest.(check (list int)) "second batch" [ 5; 6 ] b;
  Gpcc_core.Pool.shutdown p;
  Gpcc_core.Pool.shutdown p;
  (* after shutdown the pool degrades to sequential, it does not hang *)
  Alcotest.(check (list int))
    "post-shutdown map" [ 7 ]
    (Gpcc_core.Pool.map p succ [ 6 ])

(* --- jobs-invariance of the search --- *)

let sim_measure cfg w n =
  Gpcc_workloads.Workload.measure_gflops ~sample:1 ~streams:3 cfg w n

let search_best ~jobs ?cache ?cache_prefix name n =
  let w = Gpcc_workloads.Registry.find_exn name in
  let k = Gpcc_workloads.Workload.parse w n in
  let cands =
    Gpcc_core.Explore.search ~cfg:Util.cfg280 ~jobs ?cache ?cache_prefix k
      ~measure:(sim_measure Util.cfg280 w n)
  in
  (cands, Gpcc_core.Explore.best cands)

let test_parallel_matches_sequential () =
  List.iter
    (fun name ->
      let cands1, best1 = search_best ~jobs:1 name 64 in
      let cands4, best4 = search_best ~jobs:4 name 64 in
      Alcotest.(check int)
        (name ^ ": same candidate count")
        (List.length cands1) (List.length cands4);
      List.iter2
        (fun (a : Gpcc_core.Explore.candidate)
             (b : Gpcc_core.Explore.candidate) ->
          Alcotest.(check (pair int int))
            (name ^ ": same candidate order")
            (a.target_block_threads, a.merge_degree)
            (b.target_block_threads, b.merge_degree);
          Alcotest.check score_t (name ^ ": same score") a.score b.score)
        cands1 cands4;
      match (best1, best4) with
      | Some b1, Some b4 ->
          Alcotest.(check (pair int int))
            (name ^ ": same best config")
            (b1.target_block_threads, b1.merge_degree)
            (b4.target_block_threads, b4.merge_degree);
          Alcotest.(check string)
            (name ^ ": byte-identical chosen kernel")
            (Gpcc_ast.Pp.kernel_to_string ~launch:b1.result.launch
               b1.result.kernel)
            (Gpcc_ast.Pp.kernel_to_string ~launch:b4.result.launch
               b4.result.kernel)
      | _ -> Alcotest.failf "%s: search found no best candidate" name)
    [ "mm"; "tp" ]

(* --- failure isolation in the sweep --- *)

let test_raising_candidate_isolated () =
  let w = Gpcc_workloads.Registry.find_exn "mm" in
  let k = Gpcc_workloads.Workload.parse w 64 in
  (* deliberately blow up the measurement of every >=32-thread version
     (at n=64 the compiled blocks are 16..64 threads); the sweep must
     complete and still pick among the surviving ones *)
  let measure kernel launch =
    if Gpcc_ast.Ast.threads_per_block launch >= 32 then
      failwith "injected measurement fault"
    else sim_measure Util.cfg280 w 64 kernel launch
  in
  List.iter
    (fun jobs ->
      let cands, failures =
        Gpcc_core.Explore.search_with_failures ~cfg:Util.cfg280 ~jobs k
          ~measure
      in
      let poisoned, healthy =
        List.partition
          (fun (c : Gpcc_core.Explore.candidate) ->
            c.score = Float.neg_infinity)
          cands
      in
      if List.length poisoned = 0 then
        Alcotest.failf "jobs=%d: fault was never injected" jobs;
      if List.length healthy = 0 then
        Alcotest.failf "jobs=%d: no candidate survived" jobs;
      if
        not
          (List.exists
             (fun (f : Gpcc_core.Explore.failure) ->
               f.failed_stage = `Measure
               && Util.contains ~needle:"injected measurement fault" f.reason)
             failures)
      then Alcotest.failf "jobs=%d: fault not reported in failures" jobs;
      match Gpcc_core.Explore.best cands with
      | Some b ->
          if b.score = Float.neg_infinity then
            Alcotest.failf "jobs=%d: best is a poisoned candidate" jobs
      | None -> Alcotest.failf "jobs=%d: sweep aborted" jobs)
    [ 1; 4 ]

(* --- the persistent cache --- *)

let test_cache_roundtrip () =
  let dir = fresh_cache_dir () in
  let c = Gpcc_core.Explore_cache.open_dir ~dir () in
  Alcotest.(check (option (float 0.))) "empty" None
    (Gpcc_core.Explore_cache.find c "k1");
  Gpcc_core.Explore_cache.store c "k1" 123.456;
  Gpcc_core.Explore_cache.store c "k2" Float.neg_infinity;
  Alcotest.(check (option (float 1e-12)))
    "memo hit" (Some 123.456)
    (Gpcc_core.Explore_cache.find c "k1");
  (* a fresh handle on the same directory reads from disk *)
  let c2 = Gpcc_core.Explore_cache.open_dir ~dir () in
  Alcotest.(check (option (float 1e-12)))
    "disk round-trip" (Some 123.456)
    (Gpcc_core.Explore_cache.find c2 "k1");
  Alcotest.(check bool)
    "-inf survives" true
    (Gpcc_core.Explore_cache.find c2 "k2" = Some Float.neg_infinity);
  Alcotest.(check int) "entries" 2 (Gpcc_core.Explore_cache.entries c2);
  Alcotest.(check int) "hits" 2 (Gpcc_core.Explore_cache.hits c2);
  Alcotest.(check int) "misses" 1 (Gpcc_core.Explore_cache.misses c);
  Gpcc_core.Explore_cache.clear c2;
  Alcotest.(check int) "cleared" 0 (Gpcc_core.Explore_cache.entries c2);
  Alcotest.(check (option (float 0.)))
    "gone after clear" None
    (Gpcc_core.Explore_cache.find c2 "k1")

let test_cached_search_identical () =
  let dir = fresh_cache_dir () in
  let cold = Gpcc_core.Explore_cache.open_dir ~dir () in
  let cands_cold, _ =
    search_best ~jobs:1 ~cache:cold ~cache_prefix:"t/mm/64" "mm" 64
  in
  let measured = Gpcc_core.Explore_cache.entries cold in
  Alcotest.(check bool) "cold run measured something" true (measured > 0);
  (* fresh handle: every distinct version must now come from disk, and
     the scored sweep must be identical — also under a parallel pool *)
  List.iter
    (fun jobs ->
      let warm = Gpcc_core.Explore_cache.open_dir ~dir () in
      let cands_warm, _ =
        search_best ~jobs ~cache:warm ~cache_prefix:"t/mm/64" "mm" 64
      in
      Alcotest.(check int)
        (Printf.sprintf "all hits (jobs=%d)" jobs)
        measured
        (Gpcc_core.Explore_cache.hits warm);
      Alcotest.(check int)
        (Printf.sprintf "no misses (jobs=%d)" jobs)
        0
        (Gpcc_core.Explore_cache.misses warm);
      List.iter2
        (fun (a : Gpcc_core.Explore.candidate)
             (b : Gpcc_core.Explore.candidate) ->
          Alcotest.check score_t
            (Printf.sprintf "identical score t=%d d=%d (jobs=%d)"
               a.target_block_threads a.merge_degree jobs)
            a.score b.score)
        cands_cold cands_warm)
    [ 1; 4 ]

let suite =
  ( "explore",
    [
      Alcotest.test_case "pool: map preserves order" `Quick
        test_pool_map_order;
      Alcotest.test_case "pool: per-task failure isolation" `Quick
        test_pool_failure_isolation;
      Alcotest.test_case "pool: reuse and shutdown" `Quick
        test_pool_reuse_and_shutdown;
      Alcotest.test_case "search: parallel == sequential (mm, tp)" `Slow
        test_parallel_matches_sequential;
      Alcotest.test_case "search: raising candidate is isolated" `Slow
        test_raising_candidate_isolated;
      Alcotest.test_case "cache: round-trip" `Quick test_cache_roundtrip;
      Alcotest.test_case "cache: cached search returns identical scores"
        `Slow test_cached_search_identical;
    ] )

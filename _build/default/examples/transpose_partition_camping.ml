(** Partition camping, demonstrated on matrix transpose (the paper's
    Section 3.7 and Figure 15).

    Power-of-two transposes make concurrently running thread blocks write
    rows exactly (partition width x number of partitions) bytes apart, so
    every block queues on the same memory partition. The compiler detects
    the stride and applies diagonal block reordering. This example shows
    the partition histogram of the resident wave before and after.

    Run with:  dune exec examples/transpose_partition_camping.exe *)

let n = 1024
let cfg = Gpcc_sim.Config.gtx280

let describe label kernel launch =
  let w = Gpcc_workloads.Registry.find_exn "tp" in
  let r, _ =
    Gpcc_workloads.Workload.execute ~mode:(Gpcc_sim.Launch.Sampled 4) cfg w n
      kernel launch
  in
  Printf.printf "  %-28s partition efficiency %.2f -> %6.1f GB/s effective\n"
    label r.partition_eff
    (Gpcc_workloads.Workload.effective_bandwidth w n r.timing);
  r.partition_eff

let () =
  Printf.printf "transposing a %dx%d matrix on a simulated %s (%d partitions x %d B)\n"
    n n cfg.name cfg.num_partitions cfg.partition_bytes;
  let w = Gpcc_workloads.Registry.find_exn "tp" in
  let naive = Gpcc_workloads.Workload.parse w n in

  (* coalesced tile version, no reordering: camps *)
  let launch0 = Option.get (Gpcc_passes.Pass_util.initial_launch naive) in
  let tiled = Gpcc_passes.Coalesce.apply naive launch0 in
  let eff_before = describe "tiled, cartesian blocks" tiled.kernel tiled.launch in

  (* what the compiler detects *)
  let detections = Gpcc_passes.Partition_camp.detect cfg tiled.kernel tiled.launch in
  List.iter
    (fun d ->
      Printf.printf
        "  detector: array %s, block-to-block stride %d bytes — multiple of %d (camping)\n"
        d.Gpcc_passes.Partition_camp.d_arr d.d_stride_bytes
        (cfg.partition_bytes * cfg.num_partitions))
    detections;

  (* diagonal reordering *)
  let fixed = Gpcc_passes.Partition_camp.apply ~cfg tiled.kernel tiled.launch in
  List.iter (Printf.printf "  * %s\n") fixed.notes;
  let eff_after = describe "tiled, diagonal blocks" fixed.kernel fixed.launch in

  print_endline "\nthe remapped kernel header:";
  (match fixed.kernel.k_body with
  | a :: b :: c :: _ ->
      print_string (Gpcc_ast.Pp.block_to_string [ a; b; c ])
  | _ -> ());

  (* the result is still a transpose *)
  Gpcc_workloads.Workload.check cfg w n fixed.kernel fixed.launch;
  Printf.printf
    "\nresult verified; partition efficiency improved %.2f -> %.2f\n"
    eff_before eff_after

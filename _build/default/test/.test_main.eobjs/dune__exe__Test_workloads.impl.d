test/test_workloads.ml: Alcotest Array Gpcc_ast Gpcc_passes Gpcc_workloads List Option Printf Util

lib/workloads/demosaic.ml: Array Printf Workload

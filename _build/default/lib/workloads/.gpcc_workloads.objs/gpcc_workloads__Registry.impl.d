lib/workloads/registry.ml: Conv Demosaic Fft Imregionmax List Mm Mv Rd Rd_complex String Strsm Tmv Tp Vv Workload

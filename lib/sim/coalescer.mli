(** Memory-transaction formation for half-warp requests. *)

type tx = {
  tx_addr : int;  (** byte address of the transaction start *)
  tx_bytes : int;
}

(** Transactions for one half-warp global request. [addrs] are the byte
    addresses of the active lanes as [(lane, addr)] with lane in 0..15;
    [elt_bytes] is the per-lane access width. The strict G80 rule needs
    thread [k] at word [k] of an aligned segment (else every active lane
    pays a [min_tx]-byte transaction); the relaxed GT200 rule issues one
    transaction per distinct aligned segment, shrunk to the smallest
    covering power of two >= 32 B. *)
val global_request :
  Config.coalesce_rules ->
  min_tx:int ->
  elt_bytes:int ->
  (int * int) list ->
  tx list

(** Serialized cost (in conflict-free request units) of one half-warp
    shared-memory request; same-address lanes broadcast for free. *)
val shared_request : banks:int -> int list -> int

(** Memoized (transactions, bytes) of one half-warp request whose
    active lanes are the contiguous run [lane0 .. lane0+cnt-1] (lane0 in
    0..15) with byte addresses [addrs.(0..cnt-1)]. The result is keyed
    by the access pattern digest — addresses modulo the coarsest
    alignment the rules inspect — so identical patterns across blocks
    cost one table lookup. Transaction {e addresses} are not
    shift-invariant: callers recording the partition stream must use
    {!global_request} directly. *)
val request_cost :
  Config.coalesce_rules ->
  min_tx:int ->
  elt_bytes:int ->
  lane0:int ->
  cnt:int ->
  int array ->
  int * int

val memo_hits : unit -> int
(** Pattern-cache hits across every worker domain (bench reporting). *)

val memo_misses : unit -> int

val bump_hits : int -> unit
(** Credit hits taken by a caller-side cache layered over the memo. *)

(** Type and shape checker for kernels.

    Checks performed:
    - every variable is declared before use (params, decls, loop vars,
      builtins);
    - array accesses have exactly the declared rank and [int] indices;
    - operand types of arithmetic/logic agree ([int] promotes to [float]
      in mixed arithmetic, as in C);
    - vector fields ([.x] ...) only on vector values of sufficient width;
    - assignments are type-compatible; shared arrays are not initialized
      inline; [__global_sync] appears only at kernel top level;
    - intrinsic calls match their signatures. *)

open Ast

exception Type_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

type env = (string * ty) list

let intrinsics : (string * (scalar list * scalar)) list =
  [
    ("sqrtf", ([ Float ], Float));
    ("fabsf", ([ Float ], Float));
    ("expf", ([ Float ], Float));
    ("logf", ([ Float ], Float));
    ("sinf", ([ Float ], Float));
    ("cosf", ([ Float ], Float));
    ("fmaxf", ([ Float; Float ], Float));
    ("fminf", ([ Float; Float ], Float));
    ("min", ([ Int; Int ], Int));
    ("max", ([ Int; Int ], Int));
    ("make_float2", ([ Float; Float ], Float2));
    ("make_float4", ([ Float; Float; Float; Float ], Float4));
  ]

let is_numeric = function Int | Float -> true | Float2 | Float4 | Bool -> false

let join_arith a b =
  match (a, b) with
  | Int, Int -> Int
  | (Float | Int), (Float | Int) -> Float
  | Float2, Float2 -> Float2
  | Float4, Float4 -> Float4
  | _ -> err "incompatible operand types %s / %s" (show_scalar a) (show_scalar b)

let rec type_of_expr (env : env) (e : expr) : scalar =
  match e with
  | Int_lit _ -> Int
  | Float_lit _ -> Float
  | Builtin _ -> Int
  | Var v -> (
      match List.assoc_opt v env with
      | Some (Scalar s) -> s
      | Some (Array _) -> err "array %s used as a scalar" v
      | None -> err "undeclared variable %s" v)
  | Unop (Neg, a) ->
      let t = type_of_expr env a in
      if is_numeric t || t = Float2 || t = Float4 then t
      else err "negation of non-numeric value"
  | Unop (Not, a) ->
      let t = type_of_expr env a in
      if t = Bool || t = Int then Bool else err "! applied to non-boolean"
  | Binop (op, a, b) -> (
      let ta = type_of_expr env a and tb = type_of_expr env b in
      match op with
      | Add | Sub | Mul | Div -> join_arith ta tb
      | Mod ->
          if ta = Int && tb = Int then Int else err "%% requires int operands"
      | Lt | Le | Gt | Ge | Eq | Ne ->
          if is_numeric ta && is_numeric tb then Bool
          else err "comparison of non-numeric values"
      | And | Or ->
          if (ta = Bool || ta = Int) && (tb = Bool || tb = Int) then Bool
          else err "&&/|| require boolean operands")
  | Index (a, es) -> (
      match List.assoc_opt a env with
      | Some (Array { elt; dims; _ }) ->
          if List.length es <> List.length dims then
            err "array %s has rank %d but is accessed with %d indices" a
              (List.length dims) (List.length es);
          List.iter
            (fun e ->
              if type_of_expr env e <> Int then
                err "non-integer index into array %s" a)
            es;
          elt
      | Some (Scalar _) -> err "scalar %s indexed as an array" a
      | None -> err "undeclared array %s" a)
  | Vload { v_arr; v_width; v_index } -> (
      match List.assoc_opt v_arr env with
      | Some (Array { elt = Float; _ }) ->
          if type_of_expr env v_index <> Int then
            err "non-integer vector index into %s" v_arr;
          if v_width = 2 then Float2
          else if v_width = 4 then Float4
          else err "vector width must be 2 or 4"
      | Some _ -> err "vector load from non-float array %s" v_arr
      | None -> err "undeclared array %s" v_arr)
  | Field (e, f) -> (
      let t = type_of_expr env e in
      match (t, f) with
      | Float2, (FX | FY) -> Float
      | Float4, _ -> Float
      | _ -> err "field .%s on value of type %s" (field_name f) (show_scalar t))
  | Call (name, args) -> (
      match List.assoc_opt name intrinsics with
      | None -> err "unknown function %s" name
      | Some (params, ret) ->
          if List.length params <> List.length args then
            err "%s expects %d arguments" name (List.length params);
          List.iter2
            (fun want arg ->
              let got = type_of_expr env arg in
              match (want, got) with
              | Float, (Float | Int) | Int, Int -> ()
              | _ when want = got -> ()
              | _ ->
                  err "argument of %s has type %s, expected %s" name
                    (show_scalar got) (show_scalar want))
            params args;
          ret)
  | Select (c, a, b) ->
      let tc = type_of_expr env c in
      if tc <> Bool && tc <> Int then err "condition of ?: must be boolean";
      join_arith (type_of_expr env a) (type_of_expr env b)

let type_of_lvalue (env : env) (lv : lvalue) : scalar =
  let rec go = function
    | Lvar v -> (
        match List.assoc_opt v env with
        | Some (Scalar s) -> s
        | Some (Array _) -> err "cannot assign to whole array %s" v
        | None -> err "undeclared variable %s" v)
    | Lindex (a, es) -> type_of_expr env (Index (a, es))
    | Lfield (lv, f) -> (
        match (go lv, f) with
        | Float2, (FX | FY) -> Float
        | Float4, _ -> Float
        | t, _ -> err "field .%s on lvalue of type %s" (field_name f) (show_scalar t))
    | Lvec vl -> type_of_expr env (Vload vl)
  in
  go lv

let assignable ~(dst : scalar) ~(src : scalar) =
  match (dst, src) with
  | Float, Int -> true
  | Int, Int | Float, Float -> true
  | a, b -> a = b

let rec check_block (env : env) ~(top : bool) (b : block) : unit =
  let _ : env =
    List.fold_left
      (fun env s ->
        check_stmt env ~top s;
        match s with
        | Decl d ->
            if List.mem_assoc d.d_name env then
              err "redeclaration of %s" d.d_name;
            (d.d_name, d.d_ty) :: env
        | _ -> env)
      env b
  in
  ()

and check_stmt (env : env) ~(top : bool) (s : stmt) : unit =
  match s with
  | Comment _ | Sync -> ()
  | Global_sync ->
      if not top then err "__global_sync() only allowed at kernel top level"
  | Decl d -> (
      match (d.d_ty, d.d_init) with
      | Array { space = Shared; _ }, Some _ ->
          err "shared array %s cannot have an initializer" d.d_name
      | Array _, Some _ -> err "array %s cannot have an initializer" d.d_name
      | Scalar dst, Some e ->
          let src = type_of_expr env e in
          if not (assignable ~dst ~src) then
            err "initializer of %s has type %s, expected %s" d.d_name
              (show_scalar src) (show_scalar dst)
      | _, None -> ())
  | Assign (lv, e) ->
      let dst = type_of_lvalue env lv in
      let src = type_of_expr env e in
      if not (assignable ~dst ~src) then
        err "assignment to %s of type %s, expected %s"
          (Pp.lvalue_to_string lv) (show_scalar src) (show_scalar dst)
  | If (c, t, e) ->
      let tc = type_of_expr env c in
      if tc <> Bool && tc <> Int then err "if condition must be boolean";
      check_block env ~top:false t;
      check_block env ~top:false e
  | For l ->
      if List.mem_assoc l.l_var env then
        err "loop variable %s shadows an existing declaration" l.l_var;
      if type_of_expr env l.l_init <> Int then err "loop start must be int";
      let env' = (l.l_var, Scalar Int) :: env in
      if type_of_expr env' l.l_limit <> Int then err "loop limit must be int";
      if type_of_expr env' l.l_step <> Int then err "loop step must be int";
      check_block env' ~top:false l.l_body

(** Check a whole kernel; raises {!Type_error} on failure. *)
let check (k : kernel) : unit =
  let env = List.map (fun p -> (p.p_name, p.p_ty)) k.k_params in
  List.iter
    (fun (n, _) ->
      (* names starting with __ are compiler directives (e.g. __threads_x),
         not parameter bindings *)
      if not (String.length n >= 2 && String.sub n 0 2 = "__") then
        match List.assoc_opt n env with
        | Some (Scalar Int) -> ()
        | Some _ -> err "#pragma gpcc dim %s: parameter is not an int" n
        | None -> err "#pragma gpcc dim %s: no such parameter" n)
    k.k_sizes;
  List.iter
    (fun n ->
      match List.assoc_opt n env with
      | Some (Array { space = Global; _ }) -> ()
      | Some _ -> err "#pragma gpcc output %s: not a global array" n
      | None -> err "#pragma gpcc output %s: no such parameter" n)
    k.k_output;
  check_block env ~top:true k.k_body

let check_result (k : kernel) : (unit, string) result =
  match check k with () -> Ok () | exception Type_error m -> Error m

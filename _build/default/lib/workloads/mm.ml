(** Matrix multiplication (paper Table 1: "mm", 10 LOC, 1k-4k), the
    Section 5 case study. *)

let source n =
  Printf.sprintf
    {|#pragma gpcc dim w %d
#pragma gpcc output c
__kernel void mm(float a[%d][%d], float b[%d][%d], float c[%d][%d], int w) {
  float sum = 0;
  for (int i = 0; i < w; i++)
    sum += a[idy][i] * b[i][idx];
  c[idy][idx] = sum;
}
|}
    n n n n n n n

let inputs n =
  [ ("a", Workload.gen ~seed:1 (n * n)); ("b", Workload.gen ~seed:2 (n * n)) ]

let reference n input =
  let a = input "a" and b = input "b" in
  let c = Array.make (n * n) 0.0 in
  for y = 0 to n - 1 do
    for x = 0 to n - 1 do
      let s = ref 0.0 in
      for i = 0 to n - 1 do
        s := !s +. (a.((y * n) + i) *. b.((i * n) + x))
      done;
      c.((y * n) + x) <- !s
    done
  done;
  [ ("c", c) ]

let workload : Workload.t =
  {
    name = "mm";
    description = "matrix multiplication";
    source;
    inputs;
    reference;
    flops = (fun n -> 2.0 *. (float_of_int n ** 3.0));
    moved_bytes = (fun n -> 3.0 *. 4.0 *. float_of_int (n * n));
    sizes = [ 1024; 2048; 4096 ];
    test_size = 64;
    bench_size = 1024;
    tolerance = 1e-3;
    in_cublas = true;
  }

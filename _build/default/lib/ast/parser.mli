(** Recursive-descent parser for the mini-CUDA kernel language. *)

exception Error of string * int  (** message, 1-based source line *)

(** Parse one kernel (pragmas, signature, body) from source text.
    Raises {!Error} or {!Lexer.Error} on malformed input. *)
val kernel_of_string : string -> Ast.kernel

(** Parse a single expression (used by tests and tools). *)
val expr_of_string : string -> Ast.expr

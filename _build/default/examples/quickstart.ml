(** Quickstart: compile a naive kernel you wrote yourself, read the
    optimized kernel the compiler produces, and run both on the simulator.

    Run with:  dune exec examples/quickstart.exe *)

let naive_source =
  {|#pragma gpcc dim w 256
#pragma gpcc output c
__kernel void my_mm(float a[256][256], float b[256][256], float c[256][256], int w) {
  float sum = 0;
  for (int i = 0; i < w; i++)
    sum += a[idy][i] * b[i][idx];
  c[idy][idx] = sum;
}
|}

let () =
  (* 1. parse and type-check the naive kernel *)
  let naive = Gpcc_ast.Parser.kernel_of_string naive_source in
  Gpcc_ast.Typecheck.check naive;
  print_endline "=== input: naive kernel (one thread per output element) ===";
  print_string naive_source;

  (* 2. run the optimizing pipeline (vectorization, coalescing,
     thread/thread-block merge, prefetching, partition-camping
     elimination) for a GTX 280 *)
  let opts =
    {
      (Gpcc_core.Compiler.default_options ~cfg:Gpcc_sim.Config.gtx280 ()) with
      target_block_threads = 128;
      merge_degree = 8;
    }
  in
  let r = Gpcc_core.Compiler.run ~opts naive in

  print_endline "\n=== what the compiler did ===";
  print_string (Gpcc_core.Compiler.report r);

  print_endline "\n=== output: optimized kernel + launch configuration ===";
  print_string (Gpcc_ast.Pp.kernel_to_string ~launch:r.launch r.kernel);

  (* 3. run both versions on the simulated GTX 280 and compare *)
  let run label kernel launch =
    let mem = Gpcc_sim.Devmem.of_kernel kernel in
    Gpcc_sim.Devmem.fill mem "a" (fun i -> float_of_int (i mod 17) /. 16.0);
    Gpcc_sim.Devmem.fill mem "b" (fun i -> float_of_int (i mod 13) /. 12.0);
    let res =
      Gpcc_sim.Launch.run ~mode:(Gpcc_sim.Launch.Sampled 4)
        Gpcc_sim.Config.gtx280 kernel launch mem
    in
    Printf.printf "%-10s %8.2f GFLOPS  (%s-bound, %d blocks/SM)\n" label
      res.timing.gflops res.timing.bound res.timing.occupancy.blocks_per_sm;
    res.timing.gflops
  in
  print_endline "\n=== simulated performance (GTX 280) ===";
  let naive_launch = Option.get (Gpcc_passes.Pass_util.naive_launch naive) in
  let g0 = run "naive" naive naive_launch in
  let g1 = run "optimized" r.kernel r.launch in
  Printf.printf "speedup: %.1fx\n" (g1 /. g0)

(** Linear (affine) forms over thread-position variables, loop iterators
    and unbound size parameters — the machinery behind the paper's
    Section 3.2 index analysis. [idx]/[idy] are canonicalized to
    [bidx*block_x + tidx] using the current launch configuration, and each
    in-scope loop variable becomes [init + Iter*step]. *)

type var =
  | Tidx
  | Tidy
  | Bidx
  | Bidy
  | Iter of string  (** iteration counter of the named loop *)
  | Param of string  (** unbound scalar [int] parameter *)
  | Mod_of of var * int
      (** [v mod c] — opaque but bounded; introduced by sub-block
          privatization ([tidx %% 16]) *)
  | Div_of of var * int  (** [v / c] *)

val equal_var : var -> var -> bool
val compare_var : var -> var -> int
val show_var : var -> string

(** Does the variable carry the half-warp lane (directly or through a
    mod/div of it)? *)
val lane_derived : var -> bool

type t = {
  const : int;
  terms : (var * int) list;  (** sorted by [compare_var], coefficients <> 0 *)
}

val equal : t -> t -> bool
val show : t -> string
val to_string : t -> string

val const : int -> t
val zero : t
val of_var : var -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : int -> t -> t
val coeff : var -> t -> int

(** Drop the term for a variable (set its coefficient to zero). *)
val drop : var -> t -> t

val vars : t -> var list
val is_const : t -> bool

(** Exact division by a positive constant, when every coefficient and the
    constant are divisible. *)
val div_exact : t -> int -> t option

(** [mod_const f k] when it is compile-time constant (every coefficient
    divisible by [k]). *)
val mod_const : t -> int -> int option

val eval : (var -> int) -> t -> int

(** Analysis context: the compile-time knowledge the compiler has at an
    access site — specialized sizes, the launch configuration, enclosing
    loops, and affine-valued local [int] bindings. *)
type ctx = {
  sizes : (string * int) list;
  block_x : int;
  block_y : int;
  grid_x : int;
  grid_y : int;
  loops : (string * loop_desc) list;  (** innermost first *)
  lets : (string * t) list;
}

and loop_desc = {
  ld_init : t;
  ld_step : int;
  ld_trips : int option;  (** trip count when the bounds are compile-time *)
}

val ctx_of_launch : ?sizes:(string * int) list -> Gpcc_ast.Ast.launch -> ctx

(** Lower an expression to an affine form, or [None] when it is not
    affine (products of variables, comparisons, loads, ...). *)
val of_expr : ctx -> Gpcc_ast.Ast.expr -> t option

(** Evaluate an [int] expression to a compile-time constant under the
    context's bindings. *)
val eval_const : ctx -> Gpcc_ast.Ast.expr -> int option

(** Trip count of a loop, when its bounds are compile-time. *)
val loop_trips : ctx -> Gpcc_ast.Ast.loop -> int option

(** Push a loop onto the context (for analyses descending into bodies);
    [None] when its step is not a positive compile-time constant. *)
val enter_loop : ctx -> Gpcc_ast.Ast.loop -> ctx option

(** Record an affine-valued local [int] binding ([int t = idx * 2;]);
    a non-affine right-hand side clears any previous binding. *)
val enter_let : ctx -> string -> Gpcc_ast.Ast.expr -> ctx

lib/sim/coalescer.pp.mli: Config

lib/passes/merge.pp.ml: Affine Array Ast Coalesce_check Gpcc_analysis Gpcc_ast Hashtbl List Option Pass_util Printf Rewrite String

(** Memory-coalescing analysis (paper Section 3.2): compute each global
    access's half-warp addresses from its flattened affine form and decide
    whether they form one coalesced segment. *)

(** The paper's four index categories. *)
type index_kind =
  | Constant
  | Predefined  (** built from thread-position builtins only *)
  | Loop_index  (** involves an enclosing loop iterator *)
  | Unresolved

val equal_index_kind : index_kind -> index_kind -> bool
val show_index_kind : index_kind -> string

type reason =
  | Uniform  (** all 16 lanes read the same address *)
  | Strided of int  (** lane-to-lane stride in elements, <> 1 *)
  | Misaligned of string  (** base not always a multiple of 16 words *)

val equal_reason : reason -> reason -> bool
val show_reason : reason -> string

type verdict =
  | Coalesced
  | Noncoalesced of reason
  | Unknown  (** unresolved index: the paper's compiler skips these *)

val equal_verdict : verdict -> verdict -> bool
val show_verdict : verdict -> string

(** One global-memory access site with everything later passes need. *)
type access = {
  arr : string;
  indices : Gpcc_ast.Ast.expr list;
  is_store : bool;
  vec_width : int;  (** 1 for scalar, 2/4 for vector loads *)
  flat : Affine.t option;  (** flattened element offset *)
  enclosing : string list;  (** loop variables, innermost first *)
  verdict : verdict;
  ctx : Affine.ctx;  (** analysis context at the access site *)
  divergent : bool;
      (** under thread-dependent control flow: cooperative staging cannot
          be inserted here *)
  safe_loops : string list;
      (** enclosing loops every thread of the block enters — valid
          staging insertion points *)
}

val classify_index : Affine.ctx -> Gpcc_ast.Ast.expr -> index_kind

(** Coalescing decision for a flattened affine element offset. *)
val verdict_of_flat : Affine.t option -> verdict

(** Collect every global-memory access of a kernel with its verdict.
    Defaults to the pipeline's half-warp launch when none is given. *)
val analyze_kernel :
  ?launch:Gpcc_ast.Ast.launch -> Gpcc_ast.Ast.kernel -> access list

val all_coalesced : access list -> bool
val noncoalesced : access list -> access list
val to_string : access -> string

(** The declarative pass pipeline: the paper's Figure 1 as data.

    naive kernel
    -> vectorization of memory accesses          (Section 3.1)
    -> coalescing check & conversion             (Sections 3.2-3.3)
    -> data-sharing analysis                     (Section 3.4)
    -> thread-block merge / thread merge         (Section 3.5)
    -> partition-camping elimination             (Section 3.7)
    -> data prefetching                          (Section 3.6)
    -> optimized kernel + launch configuration

    A {!t} is an ordered list of {!Gpcc_passes.Pass.t} specs plus the
    target machine and the two Section-4 knobs; every driver — the
    library API, [gpcc compile --passes/--disable-pass], the staged
    Figure-12 instrumentation, the design-space exploration and the
    bench harness — consumes the same value instead of re-plumbing
    boolean options. The driver is generic over the pass records: it
    times each sub-step, runs translation validation after every fired
    transform, records a structured {!Remark.t} per step, and carries
    the analyses a pass declares preserved forward in the per-domain
    {!Gpcc_analysis.Analysis_cache}.

    Note on ordering: the paper runs prefetching before partition-camping
    elimination; we run camping elimination first because the 1-D
    address-offset rotation introduces a computed index that prefetching
    must not advance past the array end. Prefetching decisions are
    unaffected (its occupancy rule fires on register pressure, which the
    rotation does not change). {!staged} compensates when deriving the
    paper's cumulative prefixes. *)

open Gpcc_ast
open Gpcc_passes
module Cache = Gpcc_analysis.Analysis_cache

type spec = {
  sp_pass : Pass.t;
  sp_enabled : bool;
}

type t = {
  cfg : Gpcc_sim.Config.t;
  target_block_threads : int;  (** 128 / 256 / 512 (Section 4.1) *)
  merge_degree : int;  (** threads merged into one: 4 / 8 / 16 / 32 *)
  verify : bool;  (** translation validation after every fired pass *)
  specs : spec list;
}

let default ?(cfg = Gpcc_sim.Config.gtx280) ?(target_block_threads = 256)
    ?(merge_degree = 16) ?(verify = true) () : t =
  {
    cfg;
    target_block_threads;
    merge_degree;
    verify;
    specs =
      List.map (fun p -> { sp_pass = p; sp_enabled = true }) Pass.registry;
  }

let pass_names (t : t) : string list =
  List.map (fun s -> s.sp_pass.Pass.name) t.specs

let enabled_names (t : t) : string list =
  List.filter_map
    (fun s -> if s.sp_enabled then Some s.sp_pass.Pass.name else None)
    t.specs

let check_known (names : string list) : unit =
  List.iter
    (fun n ->
      if Pass.find n = None then
        invalid_arg
          (Printf.sprintf "unknown pass %S (known: %s)" n
             (String.concat ", " (Pass.names ()))))
    names

(** Disable the named passes (order unchanged). Unknown names raise
    [Invalid_argument] listing the registry. *)
let disable (names : string list) (t : t) : t =
  check_known names;
  {
    t with
    specs =
      List.map
        (fun s ->
          if List.mem s.sp_pass.Pass.name names then
            { s with sp_enabled = false }
          else s)
        t.specs;
  }

(** Replace the spec list with exactly the named passes, in the given
    order ([gpcc compile --passes]). Unknown names raise
    [Invalid_argument]. *)
let with_passes (names : string list) (t : t) : t =
  check_known names;
  {
    t with
    specs =
      List.map
        (fun n -> { sp_pass = Option.get (Pass.find n); sp_enabled = true })
        names;
  }

let describe (t : t) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "pipeline for %s: %d threads/block target, %d-way thread merge, \
        verify %s\n"
       t.cfg.Gpcc_sim.Config.name t.target_block_threads t.merge_degree
       (if t.verify then "on" else "off"));
  List.iter
    (fun s ->
      let p = s.sp_pass in
      Buffer.add_string buf
        (Printf.sprintf "  [%c] %-18s §%-8s %s\n"
           (if s.sp_enabled then 'x' else ' ')
           p.Pass.name p.Pass.section p.Pass.summary);
      let kinds ks = String.concat "," (List.map Cache.kind_name ks) in
      if p.Pass.uses <> [] || p.Pass.invalidates <> [] then
        Buffer.add_string buf
          (Printf.sprintf "      uses: %-28s invalidates: %s\n"
             (if p.Pass.uses = [] then "-" else kinds p.Pass.uses)
             (if p.Pass.invalidates = [] then "-"
              else kinds p.Pass.invalidates)))
    t.specs;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Results                                                             *)
(* ------------------------------------------------------------------ *)

type step = {
  step_name : string;  (** instance label, e.g. ["thread-block merge X x16"] *)
  pass : string;  (** registry name of the pass that produced it *)
  fired : bool;
  remark : Remark.t;  (** structured remark (reason, metrics, timing) *)
  kernel_after : Ast.kernel;
  launch_after : Ast.launch;
  diagnostics : Gpcc_analysis.Verify.diagnostic list;
}

type result = {
  kernel : Ast.kernel;
  launch : Ast.launch;
  steps : step list;
}

exception Compile_error of string

let diagnostics (r : result) : Gpcc_analysis.Verify.diagnostic list =
  List.concat_map (fun s -> s.diagnostics) r.steps

let notes (s : step) : string list = s.remark.Remark.notes

let remarks (r : result) : Remark.t list =
  List.map (fun s -> s.remark) r.steps

let validation_prefix = "translation validation"

let verifier_rejected = function
  | Compile_error m ->
      String.length m >= String.length validation_prefix
      && String.sub m 0 (String.length validation_prefix) = validation_prefix
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Per-pass wall-clock accounting (process-wide, across domains)       *)
(* ------------------------------------------------------------------ *)

let timing_mutex = Mutex.create ()
let timing_tbl : (string, int * float) Hashtbl.t = Hashtbl.create 16

let note_timing pass ms =
  Mutex.lock timing_mutex;
  let n, total =
    Option.value (Hashtbl.find_opt timing_tbl pass) ~default:(0, 0.0)
  in
  Hashtbl.replace timing_tbl pass (n + 1, total +. ms);
  Mutex.unlock timing_mutex

(** Cumulative (runs, total wall-clock ms) per pass since start or the
    last {!reset_pass_timings}, across every domain. *)
let pass_timings () : (string * (int * float)) list =
  Mutex.lock timing_mutex;
  let xs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) timing_tbl [] in
  Mutex.unlock timing_mutex;
  List.sort (fun (a, _) (b, _) -> String.compare a b) xs

let reset_pass_timings () =
  Mutex.lock timing_mutex;
  Hashtbl.reset timing_tbl;
  Mutex.unlock timing_mutex

(* ------------------------------------------------------------------ *)
(* The driver                                                          *)
(* ------------------------------------------------------------------ *)

(** Validate a kernel; errors blame [name]. Returns the full diagnostic
    list (warnings included) for the step record. Verification is
    symbolic-first: one launch-parametric proof per kernel text covers
    every launch it is consulted at, and anything unproven falls back
    to the concrete verifier. Results are memoized in the per-domain
    analysis cache. *)
let validate ~(verify : bool) (cache : Cache.t) (name : string)
    (k : Ast.kernel) (launch : Ast.launch) :
    Gpcc_analysis.Verify.diagnostic list =
  if not verify then []
  else begin
    let ds = Cache.verify_sym cache ~launch k in
    (match Gpcc_analysis.Verify.errors ds with
    | [] -> ()
    | errs ->
        raise
          (Compile_error
             (Printf.sprintf "%s failed after pass %S: %s" validation_prefix
                name
                (String.concat "; "
                   (List.map Gpcc_analysis.Verify.to_string errs)))));
    ds
  end

let run ?(pipeline = default ()) (naive : Ast.kernel) : result =
  Typecheck.check naive;
  let launch =
    match Pass_util.initial_launch naive with
    | Some l -> l
    | None ->
        raise
          (Compile_error
             "cannot derive the thread domain: give an output array or \
              #pragma gpcc dim __threads_x/__threads_y")
  in
  let cache = Cache.domain () in
  ignore (validate ~verify:pipeline.verify cache "input" naive launch);
  let ctx =
    {
      Pass.cfg = pipeline.cfg;
      target_block_threads = pipeline.target_block_threads;
      merge_degree = pipeline.merge_degree;
      cache;
    }
  in
  let steps = ref [] in
  let record (p : Pass.t) label ~fired ~reason ~notes ~before_m ~after_m
      ~duration_ms ~kernel ~launch ~diagnostics =
    steps :=
      {
        step_name = label;
        pass = p.Pass.name;
        fired;
        remark =
          {
            Remark.pass = p.Pass.name;
            step = label;
            section = p.Pass.section;
            fired;
            reason;
            notes;
            before_m;
            after_m;
            duration_ms;
          };
        kernel_after = kernel;
        launch_after = launch;
        diagnostics;
      }
      :: !steps
  in
  let k = ref naive and l = ref launch in
  List.iter
    (fun spec ->
      if spec.sp_enabled then begin
        let p = spec.sp_pass in
        (* one recorded, timed, validated sub-step; [k0]/[l0] is the
           sub-step's input state (multi-step passes thread their own) *)
        let emit label k0 l0 f =
          let before_m = Remark.metrics cache k0 l0 in
          let t0 = Unix.gettimeofday () in
          let o : Pass_util.outcome = f k0 l0 in
          let duration_ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
          note_timing p.Pass.name duration_ms;
          let diagnostics =
            if o.fired then
              validate ~verify:pipeline.verify cache label o.kernel o.launch
            else []
          in
          if o.fired then
            Cache.preserve cache ~kinds:(Pass.preserved p) ~from_:(k0, l0)
              ~to_:(o.kernel, o.launch);
          let after_m =
            if o.fired then Remark.metrics cache o.kernel o.launch
            else before_m
          in
          let reason =
            match o.notes with
            | n :: _ -> n
            | [] -> if o.fired then "applied" else "nothing to do"
          in
          record p label ~fired:o.fired ~reason ~notes:o.notes ~before_m
            ~after_m ~duration_ms ~kernel:o.kernel ~launch:o.launch
            ~diagnostics;
          o
        in
        match p.Pass.applies ctx !k !l with
        | Pass.Declined reason ->
            let m = Remark.metrics cache !k !l in
            record p p.Pass.label ~fired:false ~reason ~notes:[ reason ]
              ~before_m:m ~after_m:m ~duration_ms:0.0 ~kernel:!k ~launch:!l
              ~diagnostics:[]
        | Pass.Applies ->
            let k', l' = p.Pass.transform ctx emit !k !l in
            k := k';
            l := l'
      end)
    pipeline.specs;
  (match Typecheck.check_result !k with
  | Ok () -> ()
  | Error m ->
      raise (Compile_error ("internal: optimized kernel ill-typed: " ^ m)));
  { kernel = !k; launch = !l; steps = List.rev !steps }

(* ------------------------------------------------------------------ *)
(* Figure 12: cumulative prefixes from one instrumented run            *)
(* ------------------------------------------------------------------ *)

let stage_labels =
  [
    "naive"; "+vectorization"; "+coalescing"; "+thread/block merge";
    "+prefetching"; "+partition camping elim.";
  ]

(** Cumulative pipeline prefixes, for the paper's Figure 12 (the effect
    of each optimization step): [(label, kernel, launch)] per stage,
    starting from the naive kernel with its natural hand-written launch.

    Derived from the step records of a {e single} instrumented pipeline
    run — every prefix boundary is an intermediate state of that run —
    instead of six full recompiles. The one exception is the
    "+prefetching" prefix: the pipeline orders camping elimination
    before prefetching (see the module doc), so that stage is the
    prefetch pass applied once to the recorded pre-camping state — one
    extra pass application, still no recompile. *)
let staged ?(cfg = Gpcc_sim.Config.gtx280) ?(target_block_threads = 256)
    ?(merge_degree = 16) (naive : Ast.kernel) :
    (string * Ast.kernel * Ast.launch) list =
  let pipeline = default ~cfg ~target_block_threads ~merge_degree () in
  let r = run ~pipeline naive in
  let initial = Option.get (Pass_util.initial_launch naive) in
  (* state after the last recorded step of the named pass (every enabled
     pass records at least one step, declined included) *)
  let after pass_name ~(fallback : Ast.kernel * Ast.launch) =
    match
      List.filter (fun s -> String.equal s.pass pass_name) r.steps
      |> List.rev
    with
    | s :: _ -> (s.kernel_after, s.launch_after)
    | [] -> fallback
  in
  let s0 = (naive, initial) in
  let s1 = after "vectorize" ~fallback:s0 in
  let s2 = after "coalesce" ~fallback:s1 in
  let s3 = after "licm" ~fallback:s2 in
  let s4 =
    let k3, l3 = s3 in
    let o = Prefetch.apply ~cfg k3 l3 in
    if o.fired then
      ignore
        (validate ~verify:pipeline.verify (Cache.domain ()) "data prefetching"
           o.kernel o.launch);
    (o.kernel, o.launch)
  in
  let s5 = (r.kernel, r.launch) in
  List.map2
    (fun label (kernel, launch) ->
      (* a stage whose passes all declined leaves the kernel untouched;
         measure it at the hand-written naive launch, not at the
         pipeline's internal half-warp starting shape *)
      let launch =
        if Ast.equal_kernel kernel naive then
          Option.value (Pass_util.naive_launch naive) ~default:launch
        else launch
      in
      (label, kernel, launch))
    stage_labels
    [ s0; s1; s2; s3; s4; s5 ]

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let report (r : result) : string =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "[%s] %s\n" (if s.fired then "*" else " ") s.step_name);
      List.iter
        (fun n -> Buffer.add_string buf (Printf.sprintf "      %s\n" n))
        (notes s))
    r.steps;
  Buffer.add_string buf
    (Printf.sprintf "launch: grid (%d, %d), block (%d, %d)\n" r.launch.grid_x
       r.launch.grid_y r.launch.block_x r.launch.block_y);
  Buffer.contents buf

(** The whole compilation as one JSON document
    ([gpcc compile --remarks-json]). *)
let remarks_json (r : result) : string =
  Printf.sprintf
    {|{"schema":"gpcc-remarks-v1","kernel":"%s","launch":{"grid":[%d,%d],"block":[%d,%d]},"remarks":%s}|}
    (Remark.escape r.kernel.k_name) r.launch.grid_x r.launch.grid_y
    r.launch.block_x r.launch.block_y
    (Remark.json_of_list (remarks r))

(** GPU machine descriptions.

    The paper tunes per hardware generation ("the compiler generates
    different versions of optimized code based on different machine
    descriptions"); these records carry exactly the parameters its
    optimizations react to: register file and shared-memory capacities
    (occupancy), warp/half-warp widths and coalescing rules (Section 2a),
    shared-memory banks (2b), resource limits (2c), and the number and
    width of off-chip memory partitions (2d). *)

type coalesce_rules =
  | Strict_g80  (** base aligned to 16 words, thread k must access word k *)
  | Relaxed_gt200  (** one transaction per distinct aligned segment *)
[@@deriving show { with_path = false }, eq]

type t = {
  name : string;
  num_sms : int;
  sps_per_sm : int;
  registers_per_sm : int;  (** 32-bit registers *)
  shared_bytes_per_sm : int;
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  max_threads_per_block : int;
  warp_size : int;
  shared_banks : int;
  num_partitions : int;
  partition_bytes : int;
  mem_latency_cycles : int;
  core_clock_ghz : float;  (** SP (shader) clock *)
  mem_bandwidth_gbs : float;  (** peak off-chip bandwidth *)
  coalesce_rules : coalesce_rules;
  min_transaction_bytes : int;
      (** smallest off-chip transaction; uncoalesced accesses each pay this *)
  bw_efficiency_8b : float;
      (** sustained-bandwidth ratio of 8-byte (float2) accesses relative to
          4-byte ones (paper Section 2a: 101/98 on GTX 280, 98/71 on the
          HD 5870) *)
  bw_efficiency_16b : float;  (** likewise for 16-byte (float4) accesses *)
  prefer_wide_vectors : bool;
      (** AMD-style target: vectorize aggressively, grouping neighboring
          work items into float2/float4 accesses (paper Section 3.1) *)
}
[@@deriving show { with_path = false }]

(** NVIDIA GeForce 8800 GTX (G80): 16 SMs, 32 kB register file per SM,
    6 memory partitions. *)
let gtx8800 =
  {
    name = "GTX8800";
    num_sms = 16;
    sps_per_sm = 8;
    registers_per_sm = 8192;
    shared_bytes_per_sm = 16 * 1024;
    max_threads_per_sm = 768;
    max_blocks_per_sm = 8;
    max_threads_per_block = 512;
    warp_size = 32;
    shared_banks = 16;
    num_partitions = 6;
    partition_bytes = 256;
    mem_latency_cycles = 500;
    core_clock_ghz = 1.35;
    mem_bandwidth_gbs = 86.4;
    coalesce_rules = Strict_g80;
    min_transaction_bytes = 32;
    bw_efficiency_8b = 1.0;
    bw_efficiency_16b = 0.8;
    prefer_wide_vectors = false;
  }

(** NVIDIA GeForce GTX 280 (GT200): 30 SMs, 64 kB register file per SM,
    8 memory partitions, relaxed coalescing. *)
let gtx280 =
  {
    name = "GTX280";
    num_sms = 30;
    sps_per_sm = 8;
    registers_per_sm = 16384;
    shared_bytes_per_sm = 16 * 1024;
    max_threads_per_sm = 1024;
    max_blocks_per_sm = 8;
    max_threads_per_block = 512;
    warp_size = 32;
    shared_banks = 16;
    num_partitions = 8;
    partition_bytes = 256;
    mem_latency_cycles = 450;
    core_clock_ghz = 1.296;
    mem_bandwidth_gbs = 141.7;
    coalesce_rules = Relaxed_gt200;
    min_transaction_bytes = 32;
    bw_efficiency_8b = 101.0 /. 98.0;
    bw_efficiency_16b = 79.0 /. 98.0;
    prefer_wide_vectors = false;
  }

(** ATI/AMD Radeon HD 5870 (Cypress), the paper's Section 2a example of a
    GPU whose sustained bandwidth rewards wide vector accesses (71, 98 and
    101 GB/s for float, float2, float4). VLIW compute is approximated
    coarsely — this model is used for the bandwidth-shape experiments the
    paper motivates, not for compute-bound kernels. *)
let hd5870 =
  {
    name = "HD5870";
    num_sms = 20;
    sps_per_sm = 16;
    registers_per_sm = 16384;
    shared_bytes_per_sm = 32 * 1024;
    max_threads_per_sm = 1024;
    max_blocks_per_sm = 8;
    max_threads_per_block = 256;
    warp_size = 64;
    shared_banks = 32;
    num_partitions = 8;
    partition_bytes = 256;
    mem_latency_cycles = 500;
    core_clock_ghz = 0.85;
    mem_bandwidth_gbs = 71.0;
    coalesce_rules = Relaxed_gt200;
    min_transaction_bytes = 32;
    bw_efficiency_8b = 98.0 /. 71.0;
    bw_efficiency_16b = 101.0 /. 71.0;
    prefer_wide_vectors = true;
  }

let by_name = function
  | "GTX8800" | "gtx8800" | "8800" -> Some gtx8800
  | "GTX280" | "gtx280" | "280" -> Some gtx280
  | "HD5870" | "hd5870" | "5870" -> Some hd5870
  | _ -> None

let half_warp (t : t) = t.warp_size / 2

(** Peak single-precision GFLOPS counting a multiply-add as two ops. *)
let peak_gflops (t : t) =
  float_of_int (t.num_sms * t.sps_per_sm) *. t.core_clock_ghz *. 2.

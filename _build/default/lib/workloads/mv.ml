(** Matrix-vector multiplication (paper Table 1: "mv", 11 LOC, 1k-4k) —
    the paper's Figure 2b naive kernel and the Figure 16 partition-camping
    study. *)

let source n =
  Printf.sprintf
    {|#pragma gpcc dim w %d
#pragma gpcc output c
__kernel void mv(float a[%d][%d], float b[%d], float c[%d], int w) {
  float sum = 0;
  for (int i = 0; i < w; i++) {
    sum += a[idx][i] * b[i];
  }
  c[idx] = sum;
}
|}
    n n n n n

let inputs n =
  [ ("a", Workload.gen ~seed:3 (n * n)); ("b", Workload.gen ~seed:4 n) ]

let reference n input =
  let a = input "a" and b = input "b" in
  let c = Array.make n 0.0 in
  for r = 0 to n - 1 do
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      s := !s +. (a.((r * n) + i) *. b.(i))
    done;
    c.(r) <- !s
  done;
  [ ("c", c) ]

let workload : Workload.t =
  {
    name = "mv";
    description = "matrix-vector multiplication";
    source;
    inputs;
    reference;
    flops = (fun n -> 2.0 *. float_of_int (n * n));
    moved_bytes = (fun n -> 4.0 *. float_of_int ((n * n) + (2 * n)));
    sizes = [ 1024; 2048; 4096 ];
    test_size = 64;
    bench_size = 2048;
    tolerance = 1e-3;
    in_cublas = true;
  }

(** The declarative pass pipeline: an ordered list of
    {!Gpcc_passes.Pass.t} specs plus the target machine and the
    Section-4 knobs, consumed by one generic driver. Every entry point —
    the library API, [gpcc compile], {!Explore}, the bench harness and
    the staged Figure-12 instrumentation — runs the same {!t} value. *)

open Gpcc_ast

type spec = {
  sp_pass : Gpcc_passes.Pass.t;
  sp_enabled : bool;
}

type t = {
  cfg : Gpcc_sim.Config.t;
  target_block_threads : int;  (** 128 / 256 / 512 (Section 4.1) *)
  merge_degree : int;  (** threads merged into one: 4 / 8 / 16 / 32 *)
  verify : bool;  (** translation validation after every fired pass *)
  specs : spec list;
}

val default :
  ?cfg:Gpcc_sim.Config.t ->
  ?target_block_threads:int ->
  ?merge_degree:int ->
  ?verify:bool ->
  unit ->
  t
(** The full Figure-1 pipeline (every registered pass enabled) for the
    given target. *)

val pass_names : t -> string list
val enabled_names : t -> string list

val disable : string list -> t -> t
(** Disable the named passes, order unchanged. Raises [Invalid_argument]
    on an unknown name, listing the registry. *)

val with_passes : string list -> t -> t
(** Replace the spec list with exactly the named passes, in the given
    order ([gpcc compile --passes]). Raises [Invalid_argument] on an
    unknown name. *)

val describe : t -> string
(** Human-readable pipeline listing ([gpcc compile --print-pipeline]):
    per pass, enablement, paper section, summary and declared analysis
    uses/invalidations. *)

(** One recorded sub-step of a compilation. *)
type step = {
  step_name : string;  (** instance label, e.g. ["thread-block merge X x16"] *)
  pass : string;  (** registry name of the pass that produced it *)
  fired : bool;
  remark : Remark.t;  (** structured remark (reason, metrics, timing) *)
  kernel_after : Ast.kernel;
  launch_after : Ast.launch;
  diagnostics : Gpcc_analysis.Verify.diagnostic list;
}

type result = {
  kernel : Ast.kernel;
  launch : Ast.launch;
  steps : step list;
}

exception Compile_error of string

val validation_prefix : string

val verifier_rejected : exn -> bool
(** Whether an exception is a {!Compile_error} raised by translation
    validation (as opposed to a front-end or internal error). *)

val diagnostics : result -> Gpcc_analysis.Verify.diagnostic list
(** All verifier diagnostics accumulated across the steps. *)

val notes : step -> string list
(** The step's human-readable notes (from its remark). *)

val remarks : result -> Remark.t list

val run : ?pipeline:t -> Ast.kernel -> result
(** Run the pipeline on a parsed naive kernel. Raises {!Compile_error}
    when the thread domain cannot be derived, when translation
    validation rejects a pass result, or when the optimized kernel fails
    the final type check. *)

val stage_labels : string list

val staged :
  ?cfg:Gpcc_sim.Config.t ->
  ?target_block_threads:int ->
  ?merge_degree:int ->
  Ast.kernel ->
  (string * Ast.kernel * Ast.launch) list
(** Cumulative pipeline prefixes for the paper's Figure 12, derived from
    the step records of a single instrumented {!run} (plus one extra
    prefetch application for the "+prefetching" stage — see the
    implementation notes) instead of six recompiles. *)

val report : result -> string
(** Human-readable compilation report (one line per step, notes
    indented, final launch configuration). *)

val remarks_json : result -> string
(** The whole compilation as one JSON document
    ([gpcc compile --remarks-json]). *)

val pass_timings : unit -> (string * (int * float)) list
(** Cumulative (runs, total wall-clock ms) per pass across every domain
    since start or the last {!reset_pass_timings}. *)

val reset_pass_timings : unit -> unit

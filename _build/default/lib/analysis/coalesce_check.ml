(** Memory-coalescing analysis (paper Section 3.2).

    For every global-memory access the checker computes the addresses issued
    by the 16 consecutive threads of a half warp and decides whether they
    form one coalesced segment: the lane coefficient of the flattened
    address must be exactly one element, and the base address must be a
    multiple of 16 words for every possible value of the remaining
    variables — block ids, [tidy], unbound parameters, and the first 16
    iterations of every enclosing loop (alignment behaviour repeats with
    period 16 in the iteration count, the paper's "the same behavior
    repeats for remaining iterations"). *)

open Gpcc_ast

(** The paper's four index categories (Section 3.2). *)
type index_kind =
  | Constant
  | Predefined  (** built from thread-position builtins only *)
  | Loop_index  (** involves an enclosing loop iterator *)
  | Unresolved
[@@deriving show { with_path = false }, eq]

type reason =
  | Uniform  (** all 16 lanes read the same address *)
  | Strided of int  (** lane-to-lane stride in elements, <> 1 *)
  | Misaligned of string  (** base not always a multiple of 16 words *)
[@@deriving show { with_path = false }, eq]

type verdict =
  | Coalesced
  | Noncoalesced of reason
  | Unknown  (** unresolved index: the paper's compiler skips these *)
[@@deriving show { with_path = false }, eq]

(** One global-memory access site, with everything later passes need. *)
type access = {
  arr : string;
  indices : Ast.expr list;
  is_store : bool;
  vec_width : int;  (** 1 for scalar, 2/4 for vector loads *)
  flat : Affine.t option;  (** flattened element offset (in vector elements) *)
  enclosing : string list;  (** loop variables, innermost first *)
  verdict : verdict;
  ctx : Affine.ctx;  (** analysis context at the access site *)
  divergent : bool;
      (** the access sits under thread-dependent control flow, so not all
          threads of the block reach it — cooperative staging cannot be
          inserted here *)
  safe_loops : string list;
      (** enclosing loops that every thread of the block enters (not under
          any divergent guard) — valid insertion points for staging *)
}

let classify_index (ctx : Affine.ctx) (e : Ast.expr) : index_kind =
  match Affine.of_expr ctx e with
  | None -> Unresolved
  | Some f ->
      if Affine.is_const f then Constant
      else if
        List.exists
          (function Affine.Iter _ -> true | _ -> false)
          (Affine.vars f)
      then Loop_index
      else Predefined

(** Decide coalescing from a flattened affine element offset. *)
let verdict_of_flat (flat : Affine.t option) : verdict =
  match flat with
  | None -> Unknown
  | Some f
    when List.exists
           (function
             | (Affine.Mod_of _ | Affine.Div_of _), _ -> true
             | _ -> false)
           f.Affine.terms ->
      (* mod/div lane arithmetic (post-privatization): beyond the lane
         model; these accesses are not retransformed anyway *)
      Unknown
  | Some f ->
      let lane = Affine.coeff Affine.Tidx f in
      if lane = 0 then Noncoalesced Uniform
      else if lane <> 1 then Noncoalesced (Strided lane)
      else begin
        let rest = Affine.drop Affine.Tidx f in
        if rest.Affine.const mod 16 <> 0 then
          Noncoalesced
            (Misaligned (Printf.sprintf "constant offset %d" rest.Affine.const))
        else
          match
            List.find_opt (fun (_, c) -> c mod 16 <> 0) rest.Affine.terms
          with
          | Some (v, c) ->
              Noncoalesced
                (Misaligned
                   (Printf.sprintf "%s contributes stride %d"
                      (Affine.show_var v) c))
          | None -> Coalesced
      end

let flat_of_access (ctx : Affine.ctx) (layouts : Layout.table) arr indices :
    Affine.t option =
  match Layout.find layouts arr with
  | None -> None
  | Some layout -> (
      let forms = List.map (Affine.of_expr ctx) indices in
      if List.exists Option.is_none forms then None
      else
        let forms = List.map Option.get forms in
        match Layout.flatten layout forms with
        | f -> Some f
        | exception Invalid_argument _ -> None)

(** Collect every global-memory access of a kernel with its verdict.
    The walk tracks enclosing loops and affine-valued [int] locals. *)
let analyze_kernel ?(launch : Ast.launch option) (k : Ast.kernel) : access list
    =
  let launch =
    match launch with
    | Some l -> l
    | None -> { grid_x = 1; grid_y = 1; block_x = 16; block_y = 1 }
  in
  let ctx0 = Affine.ctx_of_launch ~sizes:k.k_sizes launch in
  let layouts = Layout.of_kernel k in
  let global_arrays =
    List.filter_map
      (fun (p : Ast.param) ->
        match p.p_ty with
        | Array { space = Global; _ } -> Some p.p_name
        | _ -> None)
      k.k_params
  in
  let is_global a = List.mem a global_arrays in
  let out = ref [] in
  let divergent_cond (c : Ast.expr) =
    List.exists
      (fun b -> Rewrite.expr_uses_builtin b c)
      [ Ast.Idx; Ast.Idy; Ast.Tidx; Ast.Tidy ]
  in
  let emit ctx ~enclosing ~safe ~safe_loops arr indices is_store vec_width =
    if is_global arr then begin
      let flat =
        match flat_of_access ctx layouts arr indices with
        | Some f when vec_width > 1 ->
            (* vector element offset: lane stride is in vector elements *)
            Some f
        | f -> f
      in
      out :=
        {
          arr;
          indices;
          is_store;
          vec_width;
          flat;
          enclosing;
          verdict = verdict_of_flat flat;
          ctx;
          divergent = not safe;
          safe_loops;
        }
        :: !out
    end
  in
  let rec on_expr ctx ~enclosing ~safe ~safe_loops (e : Ast.expr) =
    let go = on_expr ctx ~enclosing ~safe ~safe_loops in
    (match e with
    | Index (a, es) -> emit ctx ~enclosing ~safe ~safe_loops a es false 1
    | Vload { v_arr; v_width; v_index } ->
        emit ctx ~enclosing ~safe ~safe_loops v_arr [ v_index ] false v_width
    | _ -> ());
    match e with
    | Int_lit _ | Float_lit _ | Var _ | Builtin _ -> ()
    | Unop (_, a) | Field (a, _) -> go a
    | Binop (_, a, b) ->
        go a;
        go b
    | Index (_, es) | Call (_, es) -> List.iter go es
    | Vload v -> go v.v_index
    | Select (c, a, b) ->
        go c;
        go a;
        go b
  in
  let assigned_int_vars (b : Ast.block) =
    let acc = ref [] in
    ignore
      (Rewrite.map_stmts
         (function
           | Assign (Lvar v, _) as s ->
               acc := v :: !acc;
               [ s ]
           | s -> [ s ])
         b);
    !acc
  in
  let rec on_block ctx ~enclosing ~safe ~safe_loops (b : Ast.block) =
    ignore
      (List.fold_left
         (fun ctx s -> on_stmt ctx ~enclosing ~safe ~safe_loops s)
         ctx b)
  and on_stmt ctx ~enclosing ~safe ~safe_loops (s : Ast.stmt) : Affine.ctx =
    let go_e = on_expr ctx ~enclosing ~safe ~safe_loops in
    match s with
    | Comment _ | Sync | Global_sync -> ctx
    | Decl { d_name; d_ty = Scalar Int; d_init = Some e } ->
        go_e e;
        Affine.enter_let ctx d_name e
    | Decl { d_init; _ } ->
        Option.iter go_e d_init;
        ctx
    | Assign (lv, e) ->
        (match lv with
        | Lvar _ -> ()
        | Lindex (a, es) ->
            emit ctx ~enclosing ~safe ~safe_loops a es true 1;
            List.iter go_e es
        | Lfield (Lindex (a, es), _) ->
            emit ctx ~enclosing ~safe ~safe_loops a es true 1;
            List.iter go_e es
        | Lvec vl ->
            emit ctx ~enclosing ~safe ~safe_loops vl.v_arr [ vl.v_index ]
              true vl.v_width;
            go_e vl.v_index
        | Lfield _ -> ());
        go_e e;
        (match lv with
        | Lvar v -> Affine.enter_let ctx v e
        | _ -> ctx)
    | If (c, t, f) ->
        go_e c;
        let safe' = safe && not (divergent_cond c) in
        on_block ctx ~enclosing ~safe:safe' ~safe_loops t;
        on_block ctx ~enclosing ~safe:safe' ~safe_loops f;
        ctx
    | For l ->
        go_e l.l_init;
        go_e l.l_limit;
        go_e l.l_step;
        let safe_loops' = if safe then l.l_var :: safe_loops else safe_loops in
        let dirty = assigned_int_vars l.l_body in
        let ctx_clean =
          {
            ctx with
            Affine.lets =
              List.filter
                (fun (v, _) -> not (List.mem v dirty))
                ctx.Affine.lets;
          }
        in
        (match Affine.enter_loop ctx_clean l with
        | Some ctx' ->
            on_block ctx' ~enclosing:(l.l_var :: enclosing) ~safe
              ~safe_loops:safe_loops' l.l_body
        | None ->
            on_block ctx_clean ~enclosing:(l.l_var :: enclosing) ~safe
              ~safe_loops:safe_loops' l.l_body);
        ctx
  in
  on_block ctx0 ~enclosing:[] ~safe:true ~safe_loops:[] k.k_body;
  List.rev !out

let all_coalesced accesses =
  List.for_all
    (fun a -> match a.verdict with Coalesced -> true | _ -> false)
    accesses

let noncoalesced accesses =
  List.filter
    (fun a -> match a.verdict with Noncoalesced _ -> true | _ -> false)
    accesses

let to_string (a : access) =
  Printf.sprintf "%s%s %s (%s): %s" a.arr
    (String.concat ""
       (List.map (fun e -> "[" ^ Pp.expr_to_string e ^ "]") a.indices))
    (if a.is_store then "store" else "load")
    (match a.flat with Some f -> Affine.to_string f | None -> "?")
    (show_verdict a.verdict)

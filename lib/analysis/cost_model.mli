(** Analytic cost model for design-space pre-ranking.

    The Section-4 empirical search measures every generated kernel
    version on the simulator; most of that work is wasted on versions a
    cheap model can already tell apart ("Comprehensive Optimization of
    Parametric Kernels for GPUs" and the kernel-fusion literature both
    prune parametric spaces analytically before timing anything). This
    module turns the scalar summary of a *single-block probe* — one
    representative thread block interpreted under {!Gpcc_sim.Launch} with
    a block budget of 1, summarised by the occupancy and timing models —
    into a predicted whole-grid score, and provides the pruning and
    rank-quality arithmetic the funnel in [Explore] is built on.

    The module deliberately depends on nothing from [gpcc.sim] (the
    simulator already depends on [gpcc.analysis]); callers flatten
    [Occupancy.t] / [Timing.result] into the scalar {!probe} record. *)

type probe = {
  p_gflops : float;
      (** whole-grid GFLOPS estimate of the timing model, fed with the
          probe block's statistics *)
  p_bound : string;
      (** ["compute"] / ["memory"] / ["latency"] / ["register-spill"] *)
  p_active_warps : int;  (** occupancy: warps resident on one SM *)
  p_blocks_per_sm : int;
  p_reg_spill : bool;
  p_waves : int;  (** resident-block waves needed to cover the grid *)
  p_total_blocks : int;
      (** thread blocks in the grid; reported in the rationale so a
          prediction records how much grid one probe block stood for *)
}

type prediction = {
  score : float;  (** predicted GFLOPS, higher is better *)
  rationale : string;  (** one-line explanation for reports *)
}

val predict : probe -> prediction
(** Predicted whole-grid score of a candidate from its probe. The base
    is the timing model's own estimate; on top of it the model derates

    - register-spilling configurations (the simulator's flat spill
      slowdown does not charge the spilled local-memory traffic, so the
      probe flatters them), and
    - memory-bound configurations (one block cannot exhibit inter-block
      partition camping, so the probe's partition efficiency is an
      optimistic 1.0).

    Both derates shift scores {e between} pressure classes only; the
    ranking {e within} a class is exactly the timing model's. *)

val spill_derate : float
(** Multiplier applied to register-spilling probes (< 1). *)

val memory_optimism : float
(** Multiplier applied to memory-bound probes (< 1): the share of peak
    bandwidth a single-block probe tends to overestimate by. *)

val keep : threshold:float -> best:float -> float -> bool
(** [keep ~threshold ~best score]: should a candidate with predicted
    [score] survive stage 1, given the best prediction [best]? True iff
    [score >= threshold *. best]. Degenerate sweeps ([best <= 0], e.g.
    flop-free kernels where every prediction is 0) keep everything —
    the model has no evidence to prune on. *)

val halve : ('a * float) list -> ('a * float) list
(** One successive-halving rung: keep the better-scoring half (ties cut
    in input order, so the earlier candidate survives — matching the
    exhaustive search's earliest-wins tie-break), at least one. The
    result preserves the input order of the survivors. *)

val next_budget : total:int -> int -> int
(** Budget schedule for successive halving: each rung simulates four
    times the blocks of the previous one, clamped to [total]. *)

val initial_budget : total:int -> int
(** First-rung block budget: an eighth of the grid, at least one. *)

val spearman : (float * float) list -> float
(** Spearman rank correlation of (predicted, measured) pairs, with
    average ranks for ties. Returns 0 when fewer than two pairs or when
    either side is constant (no ranking information). *)

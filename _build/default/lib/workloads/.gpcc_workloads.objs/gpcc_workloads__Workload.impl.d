lib/workloads/workload.ml: Array Ast Float Gpcc_ast Gpcc_sim List Parser Printf String Typecheck

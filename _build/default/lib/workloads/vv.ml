(** Vector-vector (element-wise) multiplication (paper Table 1: "vv",
    3 LOC, 1k-4k elements) — pure bandwidth. *)

let source n =
  Printf.sprintf
    {|#pragma gpcc output c
__kernel void vv(float a[%d], float b[%d], float c[%d]) {
  c[idx] = a[idx] * b[idx];
}
|}
    n n n

let inputs n =
  [ ("a", Workload.gen ~seed:7 n); ("b", Workload.gen ~seed:8 n) ]

let reference n input =
  let a = input "a" and b = input "b" in
  [ ("c", Array.init n (fun i -> a.(i) *. b.(i))) ]

let workload : Workload.t =
  {
    name = "vv";
    description = "vector-vector multiplication";
    source;
    inputs;
    reference;
    flops = float_of_int;
    moved_bytes = (fun n -> 12.0 *. float_of_int n);
    sizes = [ 1024; 2048; 4096 ];
    test_size = 1024;
    bench_size = 4096;
    tolerance = 1e-5;
    in_cublas = true;
  }

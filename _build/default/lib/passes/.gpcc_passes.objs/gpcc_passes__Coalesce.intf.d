lib/passes/coalesce.pp.mli: Gpcc_ast Pass_util

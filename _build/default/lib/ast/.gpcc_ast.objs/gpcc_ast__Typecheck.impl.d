lib/ast/typecheck.pp.ml: Ast List Pp Printf String

(** Partition-camping elimination (paper Section 3.7).

    Detection: concurrent thread blocks differ mainly in [bidx] (neighbors
    along X run at the same time), so for every global access the compiler
    computes the address stride between blocks [bidx] and [bidx+1]; when
    the stride is a non-zero multiple of (partition width x number of
    partitions), all those blocks queue on the same memory partition.

    Elimination, per the paper's two cases:
    - {b 1-D grids} (mv): an address offset of one partition width per
      block is inserted — each block starts its reduction sweep at column
      [(i + 64*bidx) mod W], which rotates the (commutative) reduction and
      spreads the simultaneous traffic across all partitions. Applied only
      when the swept loop carries nothing but reductions and staging, so
      the rotation is semantics-preserving.
    - {b 2-D grids} (tp): diagonal block reordering (Ruetsch &
      Micikevicius, adopted by the paper): the block scheduled as
      [(bidx,bidy)] processes tile [((bidx+bidy) mod gridDim.x, bidx)]. *)

open Gpcc_ast
open Ast
open Gpcc_analysis

type detection = {
  d_arr : string;
  d_stride_bytes : int;
  d_outer_loop : string option;  (** outermost loop sweeping the access *)
}

(** Accesses whose block-to-block address stride lands on one partition. *)
let detect (cfg : Gpcc_sim.Config.t) (k : Ast.kernel) (launch : Ast.launch) :
    detection list =
  if launch.grid_x < 2 then []
  else
    Coalesce_check.analyze_kernel ~launch k
    |> List.filter_map (fun (a : Coalesce_check.access) ->
           match a.flat with
           | None -> None
           | Some f ->
               let stride =
                 Affine.coeff Affine.Bidx f * 4 * max 1 a.vec_width
               in
               let span = cfg.partition_bytes * cfg.num_partitions in
               if stride <> 0 && stride mod span = 0 then
                 Some
                   {
                     d_arr = a.arr;
                     d_stride_bytes = stride;
                     d_outer_loop =
                       (match List.rev a.enclosing with
                       | outer :: _ -> Some outer
                       | [] -> None);
                   }
               else None)

(* --- 2-D: diagonal block reordering --- *)

let diagonal_remap (k : Ast.kernel) (launch : Ast.launch) : Pass_util.outcome
    =
  if launch.grid_x <> launch.grid_y then
    Pass_util.unchanged
      ~notes:[ "diagonal reordering needs a square grid; skipped" ]
      k launch
  else begin
    let nbx, nby =
      match Pass_util.fresh_many k [ "bidx_d"; "bidy_d" ] with
      | [ a; b ] -> (a, b)
      | _ -> assert false
    in
    let body =
      k.k_body
      |> Rewrite.subst_builtin Ast.Idx
           (Ast.( +: ) (Ast.( *: ) (Var nbx) Ast.bdimx) Ast.tidx)
      |> Rewrite.subst_builtin Ast.Idy
           (Ast.( +: ) (Ast.( *: ) (Var nby) Ast.bdimy) Ast.tidy)
      |> Rewrite.subst_builtin Ast.Bidx (Var nbx)
      |> Rewrite.subst_builtin Ast.Bidy (Var nby)
    in
    let header =
      [
        Comment "diagonal block reordering eliminates partition camping";
        Ast.decl_i nbx
          ~init:(Ast.( %: ) (Ast.( +: ) Ast.bidx Ast.bidy) (Builtin Gdimx));
        Ast.decl_i nby ~init:Ast.bidx;
      ]
    in
    Pass_util.changed
      ~notes:
        [
          "remapped block ids diagonally: newbidx = (bidx+bidy) mod gridDim.x, \
           newbidy = bidx";
        ]
      { k with k_body = Pass_util.simplify_block (header @ body) }
      launch
  end

(* --- 1-D: address-offset insertion --- *)

(** Is this loop safe to rotate? Its body may only stage into shared
    memory, accumulate into scalars, declare values, sync, or run inner
    loops/guards of the same shape — i.e. the loop is a reduction sweep
    whose iteration order is free. *)
let rec reduction_sweep (shared : string list) (b : Ast.block) : bool =
  List.for_all
    (fun s ->
      match s with
      | Comment _ | Sync -> true
      | Global_sync -> false
      | Decl _ -> true
      | Assign (Lindex (sh, _), _) -> List.mem sh shared
      | Assign (Lvar v, Binop (Add, Var v', _))
      | Assign (Lvar v, Binop (Add, _, Var v')) ->
          String.equal v v'
      | Assign (Lvar _, _) -> false
      | Assign ((Lfield _ | Lvec _), _) -> false
      | If (_, t, f) -> reduction_sweep shared t && reduction_sweep shared f
      | For l -> reduction_sweep shared l.l_body)
    b

let offset_insertion (cfg : Gpcc_sim.Config.t) (k : Ast.kernel)
    (launch : Ast.launch) (loops : string list) : Pass_util.outcome =
  let shared = Pass_util.shared_arrays k.k_body in
  let globals = Pass_util.global_arrays k in
  let offset_elems = cfg.partition_bytes / 4 in
  let rotated = ref [] in
  let skipped = ref [] in
  let rotate_loop (l : Ast.loop) : Ast.stmt =
    if not (reduction_sweep shared l.l_body) then begin
      skipped := (l.l_var ^ ": loop is not a pure reduction sweep") :: !skipped;
      For l
    end
    else begin
      let pc = Pass_util.fresh k (l.l_var ^ "_pc") in
      let width = l.l_limit in
      let rot =
        Ast.decl_i pc
          ~init:
            (Ast.( %: )
               (Ast.( +: ) (Var l.l_var)
                  (Ast.( *: ) (Int_lit offset_elems) Ast.bidx))
               width)
      in
      (* substitute the rotated index inside global-array index
         expressions only *)
      let body =
        Rewrite.map_block_exprs
          (function
            | Index (a, es) when List.mem a globals ->
                Some
                  (Index
                     ( a,
                       List.map
                         (fun e ->
                           Rewrite.map_expr
                             (function
                               | Var v when String.equal v l.l_var ->
                                   Some (Var pc)
                               | _ -> None)
                             e)
                         es ))
            | _ -> None)
          l.l_body
      in
      rotated := l.l_var :: !rotated;
      For
        {
          l with
          l_body = Comment "partition offset: rotate the sweep per block" :: rot :: body;
        }
    end
  in
  let body =
    Rewrite.map_stmts
      (function
        | For l when List.mem l.l_var loops && not (List.mem l.l_var !rotated)
          ->
            [ rotate_loop l ]
        | s -> [ s ])
      k.k_body
  in
  if !rotated = [] then
    Pass_util.unchanged
      ~notes:(List.map (fun s -> "offset insertion skipped: " ^ s) !skipped)
      k launch
  else
    Pass_util.changed
      ~notes:
        ([
           Printf.sprintf
             "inserted per-block address offset (%d elements * bidx) into \
              sweep loop(s) %s"
             offset_elems
             (String.concat ", " !rotated);
         ]
        @ List.map (fun s -> "note: " ^ s) !skipped)
      { k with k_body = body }
      launch

let apply ?(cfg = Gpcc_sim.Config.gtx280) (k : Ast.kernel)
    (launch : Ast.launch) : Pass_util.outcome =
  match detect cfg k launch with
  | [] ->
      Pass_util.unchanged ~notes:[ "no partition camping detected" ] k launch
  | detections ->
      let arrs =
        List.sort_uniq String.compare (List.map (fun d -> d.d_arr) detections)
      in
      let note =
        Printf.sprintf
          "partition camping detected on %s (block-to-block stride multiple \
           of %d bytes)"
          (String.concat ", " arrs)
          (cfg.partition_bytes * cfg.num_partitions)
      in
      let result =
        if launch.grid_y > 1 then diagonal_remap k launch
        else
          let loops =
            List.sort_uniq String.compare
              (List.filter_map (fun d -> d.d_outer_loop) detections)
          in
          if loops = [] then
            Pass_util.unchanged
              ~notes:[ "camping access is not swept by a loop; left as is" ]
              k launch
          else offset_insertion cfg k launch loops
      in
      { result with notes = note :: result.notes }

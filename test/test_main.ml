(** Test-suite entry point: every module contributes one Alcotest suite. *)

let () =
  (* the store's multi-process stress test re-execs this binary as its
     writer children; divert before the test harness takes over *)
  Test_store.maybe_run_child ();
  Alcotest.run "gpcc"
    [
      Test_parser.suite;
      Test_typecheck.suite;
      Test_affine.suite;
      Test_rewrite.suite;
      Test_analysis.suite;
      Test_verify.suite;
      Test_symverify.suite;
      Test_sim.suite;
      Test_backend.suite;
      Test_passes.suite;
      Test_workloads.suite;
      Test_store.suite;
      Test_explore.suite;
      Test_compiler.suite;
      Test_pipeline.suite;
      Test_fuzz.suite;
    ]

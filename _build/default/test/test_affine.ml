(** Affine-form tests: algebraic laws (QCheck), expression lowering, and
    the analysis context (loops, lets, size bindings). *)

open Gpcc_analysis
open Util

let launch16 = { Gpcc_ast.Ast.grid_x = 8; grid_y = 8; block_x = 16; block_y = 1 }
let ctx ?(sizes = []) () = Affine.ctx_of_launch ~sizes launch16

let form e = Affine.of_expr (ctx ()) (expr e)

let check_form msg e want =
  match form e with
  | Some f ->
      Alcotest.(check string) msg want (Affine.to_string f)
  | None -> Alcotest.failf "%s: %s not affine" msg e

let test_lowering () =
  check_form "constant" "5" "5";
  check_form "idx expands" "idx" "tidx + 16*bidx";
  check_form "idy expands" "idy" "tidy + bidy";
  check_form "sum" "idx + 3" "tidx + 16*bidx + 3";
  check_form "scale" "4 * idx" "4*tidx + 64*bidx";
  check_form "cancel" "idx - tidx" "16*bidx";
  check_form "param" "w + 1" "w + 1";
  check_form "bdim constants" "bdimx * bidx + tidx" "tidx + 16*bidx";
  check_form "mod by const" "(idx * 16) % 16" "0";
  check_form "div exact" "(idx * 4) / 4" "tidx + 16*bidx"

let test_lowering_with_sizes () =
  let c = ctx ~sizes:[ ("w", 64) ] () in
  match Affine.of_expr c (expr "w * idy") with
  | Some f ->
      Alcotest.(check int) "coeff of bidy" 64 (Affine.coeff Affine.Bidy f)
  | None -> Alcotest.fail "not affine"

let test_non_affine () =
  Alcotest.(check bool) "product of vars" true (form "idx * idy" = None);
  Alcotest.(check bool) "comparison" true (form "idx < 4" = None);
  Alcotest.(check bool) "non-exact div" true (form "(idx + 1) / 2" = None)

let test_mod_div_opaque () =
  (* tidx %% 16 lowers to an opaque bounded variable *)
  match form "tidx % 5" with
  | Some f -> (
      match f.Affine.terms with
      | [ (Affine.Mod_of (Affine.Tidx, 5), 1) ] -> ()
      | _ -> Alcotest.fail "expected Mod_of term")
  | None -> Alcotest.fail "tidx %% 5 should lower"

let test_loops () =
  let c = ctx ~sizes:[ ("w", 64) ] () in
  let loop =
    {
      Gpcc_ast.Ast.l_var = "i";
      l_init = expr "0";
      l_limit = expr "w";
      l_step = expr "16";
      l_body = [];
    }
  in
  Alcotest.(check (option int)) "trip count" (Some 4) (Affine.loop_trips c loop);
  match Affine.enter_loop c loop with
  | None -> Alcotest.fail "enter_loop failed"
  | Some c' -> (
      match Affine.of_expr c' (expr "i + tidx") with
      | Some f ->
          Alcotest.(check int) "iter coeff includes step" 16
            (Affine.coeff (Affine.Iter "i") f);
          Alcotest.(check int) "lane coeff" 1 (Affine.coeff Affine.Tidx f)
      | None -> Alcotest.fail "loop var not affine")

let test_lets () =
  let c = Affine.enter_let (ctx ()) "t" (expr "idx * 2") in
  match Affine.of_expr c (expr "t + 1") with
  | Some f ->
      Alcotest.(check int) "inlined let coeff" 2 (Affine.coeff Affine.Tidx f);
      Alcotest.(check int) "const" 1 f.Affine.const
  | None -> Alcotest.fail "let not inlined"

(* --- QCheck laws --- *)

let gen_form : Affine.t QCheck.Gen.t =
  let open QCheck.Gen in
  let var =
    oneofl
      [ Affine.Tidx; Tidy; Bidx; Bidy; Iter "i"; Iter "j"; Param "w" ]
  in
  let* const = int_range (-50) 50 in
  let* terms = list_size (int_range 0 5) (pair var (int_range (-9) 9)) in
  return
    (List.fold_left
       (fun acc (v, c) -> Affine.add acc (Affine.scale c (Affine.of_var v)))
       (Affine.const const) terms)

let arb_form = QCheck.make gen_form ~print:Affine.to_string

let assignment v =
  match v with
  | Affine.Tidx -> 3
  | Tidy -> 5
  | Bidx -> 7
  | Bidy -> 11
  | Iter _ -> 13
  | Param _ -> 17
  | Mod_of _ -> 2
  | Div_of _ -> 2

let law_add_comm =
  QCheck.(
    Test.make ~count:300 ~name:"add commutes" (pair arb_form arb_form)
      (fun (a, b) -> Affine.equal (Affine.add a b) (Affine.add b a)))

let law_add_assoc =
  QCheck.(
    Test.make ~count:300 ~name:"add associates" (triple arb_form arb_form arb_form)
      (fun (a, b, c) ->
        Affine.equal
          (Affine.add a (Affine.add b c))
          (Affine.add (Affine.add a b) c)))

let law_eval_homomorphic =
  QCheck.(
    Test.make ~count:300 ~name:"eval is additive" (pair arb_form arb_form)
      (fun (a, b) ->
        Affine.eval assignment (Affine.add a b)
        = Affine.eval assignment a + Affine.eval assignment b))

let law_scale_eval =
  QCheck.(
    Test.make ~count:300 ~name:"eval commutes with scale"
      (pair arb_form small_signed_int)
      (fun (a, k) ->
        Affine.eval assignment (Affine.scale k a) = k * Affine.eval assignment a))

let law_sub_self =
  QCheck.(
    Test.make ~count:300 ~name:"a - a = 0" arb_form (fun a ->
        Affine.equal (Affine.sub a a) Affine.zero))

let law_normalized =
  QCheck.(
    Test.make ~count:300 ~name:"no zero coefficients" (pair arb_form arb_form)
      (fun (a, b) ->
        List.for_all (fun (_, c) -> c <> 0) (Affine.add a b).Affine.terms))

(* evaluating the affine form of an expression matches direct evaluation *)
let gen_int_expr : Gpcc_ast.Ast.expr QCheck.Gen.t =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun n -> Gpcc_ast.Ast.Int_lit n) (int_range 0 20);
        oneofl
          Gpcc_ast.Ast.
            [ Builtin Idx; Builtin Idy; Builtin Tidx; Builtin Tidy; Builtin Bidx ];
      ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        frequency
          [
            (2, leaf);
            ( 3,
              map3
                (fun o a b -> Gpcc_ast.Ast.Binop (o, a, b))
                (oneofl Gpcc_ast.Ast.[ Add; Sub; Mul ])
                (self (depth - 1)) (self (depth - 1)) );
          ])
    4

let eval_expr_direct ~tidx ~tidy ~bidx ~bidy (e : Gpcc_ast.Ast.expr) : int =
  let rec go = function
    | Gpcc_ast.Ast.Int_lit n -> n
    | Builtin Gpcc_ast.Ast.Idx -> (bidx * 16) + tidx
    | Builtin Idy -> (bidy * 1) + tidy
    | Builtin Tidx -> tidx
    | Builtin Tidy -> tidy
    | Builtin Bidx -> bidx
    | Builtin Bidy -> bidy
    | Binop (Add, a, b) -> go a + go b
    | Binop (Sub, a, b) -> go a - go b
    | Binop (Mul, a, b) -> go a * go b
    | _ -> QCheck.assume_fail ()
  in
  go e

let law_of_expr_sound =
  QCheck.(
    Test.make ~count:500 ~name:"of_expr agrees with direct evaluation"
      (make gen_int_expr ~print:Gpcc_ast.Pp.expr_to_string)
      (fun e ->
        match Affine.of_expr (ctx ()) e with
        | None -> true (* products of vars etc.: allowed to give up *)
        | Some f ->
            List.for_all
              (fun (tidx, tidy, bidx, bidy) ->
                let direct = eval_expr_direct ~tidx ~tidy ~bidx ~bidy e in
                let via =
                  Affine.eval
                    (function
                      | Affine.Tidx -> tidx
                      | Tidy -> tidy
                      | Bidx -> bidx
                      | Bidy -> bidy
                      | Iter _ | Param _ | Mod_of _ | Div_of _ -> 0)
                    f
                in
                direct = via)
              [ (0, 0, 0, 0); (3, 1, 2, 5); (15, 0, 7, 7) ]))

let suite =
  let t n f = Alcotest.test_case n `Quick f in
  ( "affine",
    [
      t "expression lowering" test_lowering;
      t "size bindings" test_lowering_with_sizes;
      t "non-affine forms" test_non_affine;
      t "opaque mod/div" test_mod_div_opaque;
      t "loop contexts" test_loops;
      t "let bindings" test_lets;
      QCheck_alcotest.to_alcotest law_add_comm;
      QCheck_alcotest.to_alcotest law_add_assoc;
      QCheck_alcotest.to_alcotest law_eval_homomorphic;
      QCheck_alcotest.to_alcotest law_scale_eval;
      QCheck_alcotest.to_alcotest law_sub_self;
      QCheck_alcotest.to_alcotest law_normalized;
      QCheck_alcotest.to_alcotest law_of_expr_sound;
    ] )

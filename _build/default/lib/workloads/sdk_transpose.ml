(** The CUDA-SDK transpose comparators of the paper's Figure 15:
    - "SDK prev": the classic 16x16 shared-tile transpose (coalesced both
      ways, but partition camping on large power-of-two matrices);
    - "SDK new": the same tile plus the diagonal block reordering of
      Ruetsch & Micikevicius.

    Both are fixed artifacts, parsed and run directly. *)

open Gpcc_ast

let prev_source n =
  Printf.sprintf
    {|#pragma gpcc output b
__kernel void sdk_tp_prev(float a[%d][%d], float b[%d][%d]) {
  __shared__ float tile[16][17];
  tile[tidy][tidx] = a[idy][idx];
  __syncthreads();
  b[idx - tidx + tidy][idy - tidy + tidx] = tile[tidx][tidy];
}
|}
    n n n n

let new_source n =
  Printf.sprintf
    {|#pragma gpcc output b
__kernel void sdk_tp_new(float a[%d][%d], float b[%d][%d]) {
  __shared__ float tile[16][17];
  int nbx = (bidx + bidy) %% gdimx;
  int nby = bidx;
  int x = nbx * 16 + tidx;
  int y = nby * 16 + tidy;
  tile[tidy][tidx] = a[y][x];
  __syncthreads();
  b[x - tidx + tidy][y - tidy + tidx] = tile[tidx][tidy];
}
|}
    n n n n

let launch n =
  { Ast.grid_x = n / 16; grid_y = n / 16; block_x = 16; block_y = 16 }

let prev n =
  let k = Parser.kernel_of_string (prev_source n) in
  Typecheck.check k;
  (k, launch n)

let new_ n =
  let k = Parser.kernel_of_string (new_source n) in
  Typecheck.check k;
  (k, launch n)

lib/ast/typecheck.pp.mli: Ast

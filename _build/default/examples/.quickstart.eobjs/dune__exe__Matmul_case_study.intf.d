examples/matmul_case_study.mli:

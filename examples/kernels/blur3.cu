#pragma gpcc output out
__kernel void blur3(float img[1026][1026], float out[1024][1024]) {
  float s = 0;
  for (int dy = 0; dy < 3; dy++) {
    for (int dx = 0; dx < 3; dx++) {
      s += img[idy + dy][idx + dx];
    }
  }
  out[idy][idx] = s / 9.0;
}

lib/workloads/strsm.ml: Array Printf Workload

(** Re-export of {!Gpcc_util.Pool}.

    The pool lives in [gpcc.util] so that layers below core (notably
    [gpcc.sim], which parallelizes grid execution in {!Gpcc_sim.Launch})
    can share the same worker-domain pool without a dependency cycle.
    This alias keeps the historical [Gpcc_core.Pool] path working; the
    types are equal, so pools can be passed freely across the two
    names. *)

include Gpcc_util.Pool

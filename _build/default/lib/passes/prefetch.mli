(** Data prefetching (paper Section 3.6, Figure 8): double-buffer each
    loop's global-to-shared load through a register, fetching the next
    iteration's value right after the barrier. Skipped when the extra
    registers would reduce SM occupancy (the paper's "registers are used
    up" rule). *)

val apply :
  ?cfg:Gpcc_sim.Config.t ->
  Gpcc_ast.Ast.kernel ->
  Gpcc_ast.Ast.launch ->
  Pass_util.outcome

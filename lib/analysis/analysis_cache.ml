(** Memoized kernel analyses with bounded, LRU-bias eviction.

    Every layer of the compiler keeps re-deriving the same facts about
    the same intermediate kernels: the affine access table ({!Coalesce_check}),
    the coalescing verdict, the data-sharing summary ({!Sharing}), the
    register/shared-memory estimate ({!Regcount}) and the verifier's
    diagnostics ({!Verify}). The design-space exploration makes this
    quadratic — dozens of configurations whose pipelines revisit
    identical intermediate kernels. This cache memoizes all five,
    keyed by a digest of the printed kernel (plus the launch for
    launch-dependent analyses), so any change to the kernel text
    invalidates implicitly.

    Passes additionally *declare* which analyses a fired transform
    invalidates (see {!Gpcc_passes.Pass}); for the analyses a pass
    preserves, {!preserve} carries the cached result forward from the
    pre-transform kernel to the post-transform kernel without
    recomputation. The soundness of each declaration is property-tested
    (the preserved value must equal a fresh recomputation).

    Eviction is bounded and per-entry: when a slot reaches capacity the
    least-recently-used entry is dropped, so hot entries survive a long
    exploration — unlike a blunt [Hashtbl.reset] that wipes the whole
    table mid-sweep.

    Instances are cheap; [domain ()] returns a per-worker-domain
    instance (no locking needed), while the hit/miss counters aggregate
    globally across domains via atomics. *)

open Gpcc_ast

(** The analyses the cache knows about — the invalidation vocabulary
    passes declare against. *)
type kind =
  | Affine  (** the affine access table: {!Coalesce_check.analyze_kernel} *)
  | Sharing  (** inter-block data sharing: {!Sharing.analyze} *)
  | Coalesce  (** the all-accesses-coalesced verdict *)
  | Regcount  (** registers/thread and shared bytes/block: {!Regcount} *)
  | Verify  (** static verifier diagnostics: {!Verify.check} *)

let all_kinds = [ Affine; Sharing; Coalesce; Regcount; Verify ]

let kind_name = function
  | Affine -> "affine"
  | Sharing -> "sharing"
  | Coalesce -> "coalesce"
  | Regcount -> "regcount"
  | Verify -> "verify"

type 'a cell = { v : 'a; mutable tick : int }

type 'a slot = (string, 'a cell) Hashtbl.t

type t = {
  affine : Coalesce_check.access list slot;
  sharing : Sharing.array_sharing list slot;
  coalesce : bool slot;
  regcount : (int * int) slot;  (** (registers/thread, shared bytes/block) *)
  verify : Verify.diagnostic list slot;
  symbolic : Symverify.result slot;  (** parametric verdicts, kernel-keyed *)
  capacity : int;  (** max entries per slot before LRU eviction *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let default_capacity = 512

let create ?(capacity = default_capacity) () =
  {
    affine = Hashtbl.create 64;
    sharing = Hashtbl.create 64;
    coalesce = Hashtbl.create 64;
    regcount = Hashtbl.create 64;
    verify = Hashtbl.create 64;
    symbolic = Hashtbl.create 64;
    capacity = max 1 capacity;
    tick = 0;
    hits = 0;
    misses = 0;
  }

let capacity t = t.capacity
let hits t = t.hits
let misses t = t.misses

let length t =
  Hashtbl.length t.affine + Hashtbl.length t.sharing
  + Hashtbl.length t.coalesce + Hashtbl.length t.regcount
  + Hashtbl.length t.verify + Hashtbl.length t.symbolic

(* hit/miss totals across every domain's instance, for bench reporting *)
let global_hit_count = Atomic.make 0
let global_miss_count = Atomic.make 0
let global_hits () = Atomic.get global_hit_count
let global_misses () = Atomic.get global_miss_count

(* verification-cost counters for bench reporting: launches discharged
   by a symbolic proof vs. handed to the concrete verifier, and total
   wall-clock microseconds spent inside either verifier entry point *)
let sym_proof_count = Atomic.make 0
let concrete_fallback_count = Atomic.make 0
let verify_wall_us = Atomic.make 0
let global_symbolic_proofs () = Atomic.get sym_proof_count
let global_concrete_fallbacks () = Atomic.get concrete_fallback_count
let global_verify_wall_clock_s () =
  float_of_int (Atomic.get verify_wall_us) /. 1e6

let timed (f : unit -> 'a) : 'a =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let us =
        int_of_float (Float.round ((Unix.gettimeofday () -. t0) *. 1e6))
      in
      ignore (Atomic.fetch_and_add verify_wall_us (max 0 us)))
    f

(** Cache key of a kernel at a launch configuration. *)
let key (k : Ast.kernel) (l : Ast.launch) : string =
  Digest.string (Pp.kernel_to_string ~launch:l k)

(** Launch-independent key (register/shared-memory estimation). *)
let kernel_key (k : Ast.kernel) : string = Digest.string (Pp.kernel_to_string k)

(* Drop the least-recently-used entry of a slot (linear scan: slots are
   small and eviction only happens at capacity). *)
let evict_lru (slot : 'a slot) =
  let victim = ref None in
  Hashtbl.iter
    (fun key (cell : _ cell) ->
      match !victim with
      | Some (_, t) when t <= cell.tick -> ()
      | _ -> victim := Some (key, cell.tick))
    slot;
  match !victim with Some (key, _) -> Hashtbl.remove slot key | None -> ()

let find (t : t) (slot : 'a slot) (key : string) (compute : unit -> 'a) : 'a =
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt slot key with
  | Some cell ->
      cell.tick <- t.tick;
      t.hits <- t.hits + 1;
      Atomic.incr global_hit_count;
      cell.v
  | None ->
      t.misses <- t.misses + 1;
      Atomic.incr global_miss_count;
      let v = compute () in
      if Hashtbl.length slot >= t.capacity then evict_lru slot;
      Hashtbl.replace slot key { v; tick = t.tick };
      v

let accesses (t : t) ~(launch : Ast.launch) (k : Ast.kernel) :
    Coalesce_check.access list =
  find t t.affine (key k launch) (fun () ->
      Coalesce_check.analyze_kernel ~launch k)

let coalesced (t : t) ~(launch : Ast.launch) (k : Ast.kernel) : bool =
  find t t.coalesce (key k launch) (fun () ->
      Coalesce_check.all_coalesced (accesses t ~launch k))

let sharing (t : t) ~(launch : Ast.launch) (k : Ast.kernel) :
    Sharing.array_sharing list =
  find t t.sharing (key k launch) (fun () -> Sharing.analyze ~launch k)

let regcount (t : t) (k : Ast.kernel) : int * int =
  find t t.regcount (kernel_key k) (fun () ->
      (Regcount.estimate k, Regcount.shared_bytes k))

(* --- persistent verifier-verdict store ------------------------------ *)
(* Verification dominates warm design-space sweeps: measured scores are
   served from the on-disk exploration cache, but every candidate was
   still re-verified from scratch on every run. A verdict is a pure
   function of the printed kernel (at the launch, for the concrete
   verifier), so it persists across processes exactly like a score —
   through {!Gpcc_util.Store}, as the ["verdict"] and ["pverdict"]
   kinds. The store key is the full kernel text, so the store's key
   guard doubles as the digest-collision guard; corruption recovery,
   atomic writes, locking and eviction all live in the store. The
   per-domain LRU above stays in front as the memory tier. Any store
   failure degrades to recomputation. *)

module Store = Gpcc_util.Store

let marshal_encode (v : 'a) : string = Marshal.to_string v []

(* the store's envelope already rejects truncation by length, but a
   version-skew blob can still fail to unmarshal: treat any exception
   as corrupt (the store then deletes the entry and we recompute) *)
let marshal_decode (payload : string) : 'a option =
  match (Marshal.from_string payload 0 : 'a) with
  | v -> Some v
  | exception _ -> None

(* codec version 3: versions 1–2 were the hand-rolled pre-store
   formats; bumping orphans them and the GC ages them out *)
let verdict_kind : Verify.diagnostic list Store.kind =
  Store.make_kind ~name:"verdict" ~version:"3" ~encode:marshal_encode
    ~decode:marshal_decode

(* one entry per kernel, not per (kernel, launch): the parametric
   result is launch-independent *)
let pverdict_kind : Symverify.result Store.kind =
  Store.make_kind ~name:"pverdict" ~version:"2" ~encode:marshal_encode
    ~decode:marshal_decode

(* one process-wide handle on the default root, shared by every domain
   (the store is domain-safe); lazy so tests that set GPCC_CACHE_DIR
   before first use are honored *)
let store_handle : Store.t Lazy.t = lazy (Store.open_root ())

let verify (t : t) ~(launch : Ast.launch) (k : Ast.kernel) :
    Verify.diagnostic list =
  timed @@ fun () ->
  let full = Pp.kernel_to_string ~launch k in
  find t t.verify (Digest.string full) (fun () ->
      let store = Lazy.force store_handle in
      match Store.find store verdict_kind ~key:full with
      | Some ds -> ds
      | None ->
          let ds = Verify.check ~launch k in
          Store.store store verdict_kind ~key:full ds;
          ds)

let symbolic_result (t : t) (k : Ast.kernel) : Symverify.result =
  let full = Pp.kernel_to_string k in
  find t t.symbolic (Digest.string full) (fun () ->
      let store = Lazy.force store_handle in
      match Store.find store pverdict_kind ~key:full with
      | Some r -> r
      | None ->
          let r = Symverify.check k in
          Store.store store pverdict_kind ~key:full r;
          r)

(* escape hatch for A/B measurement and debugging: GPCC_SYMVERIFY=0
   forces every launch down the concrete path *)
let symverify_enabled =
  lazy (Sys.getenv_opt "GPCC_SYMVERIFY" <> Some "0")

let verify_sym (t : t) ~(launch : Ast.launch) (k : Ast.kernel) :
    Verify.diagnostic list =
  if not (Lazy.force symverify_enabled) then begin
    Atomic.incr concrete_fallback_count;
    verify t ~launch k
  end
  else
    let r = timed (fun () -> symbolic_result t k) in
  match Symverify.decide r launch with
  | `Clean ->
      Atomic.incr sym_proof_count;
      []
  | `Errors _ | `Unknown _ ->
      (* certain violations fall back too: the concrete verifier
         reproduces them with its own paths/messages, keeping the
         diagnostics byte-identical to a non-symbolic run *)
      Atomic.incr concrete_fallback_count;
      verify t ~launch k

(* Copy one slot's cached value from the old key to the new key (no
   hit/miss accounting: this is bookkeeping, not a lookup). *)
let carry (t : t) (slot : 'a slot) ~(from_key : string) ~(to_key : string) :
    unit =
  if not (String.equal from_key to_key) then
    match Hashtbl.find_opt slot from_key with
    | None -> ()
    | Some cell ->
        t.tick <- t.tick + 1;
        if
          (not (Hashtbl.mem slot to_key))
          && Hashtbl.length slot >= t.capacity
        then evict_lru slot;
        Hashtbl.replace slot to_key { v = cell.v; tick = t.tick }

let preserve (t : t) ~(kinds : kind list)
    ~(from_ : Ast.kernel * Ast.launch) ~(to_ : Ast.kernel * Ast.launch) :
    unit =
  let k0, l0 = from_ and k1, l1 = to_ in
  let from_kl = lazy (key k0 l0) and to_kl = lazy (key k1 l1) in
  List.iter
    (fun kind ->
      match kind with
      | Affine ->
          carry t t.affine ~from_key:(Lazy.force from_kl)
            ~to_key:(Lazy.force to_kl)
      | Sharing ->
          carry t t.sharing ~from_key:(Lazy.force from_kl)
            ~to_key:(Lazy.force to_kl)
      | Coalesce ->
          carry t t.coalesce ~from_key:(Lazy.force from_kl)
            ~to_key:(Lazy.force to_kl)
      | Regcount ->
          carry t t.regcount ~from_key:(kernel_key k0)
            ~to_key:(kernel_key k1)
      | Verify ->
          carry t t.verify ~from_key:(Lazy.force from_kl)
            ~to_key:(Lazy.force to_kl))
    kinds

(* One instance per worker domain: the exploration pool fans compiles
   out across domains, and a shared table would need a lock on the hot
   path. *)
let domain_instance : t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> create ())

let domain () : t = Domain.DLS.get domain_instance

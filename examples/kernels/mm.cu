#pragma gpcc dim w 1024
#pragma gpcc output c
__kernel void mm(float a[1024][1024], float b[1024][1024], float c[1024][1024], int w) {
  float sum = 0;
  for (int i = 0; i < w; i++)
    sum += a[idy][i] * b[i][idx];
  c[idy][idx] = sum;
}

(** Memory-transaction formation.

    Global accesses are issued per half warp (16 threads). Under the G80
    strict rule a request coalesces into a single 64-byte (or 128-byte for
    8-byte elements) transaction only when thread [k] accesses word [k] of
    an aligned segment; otherwise every active lane pays a separate
    minimum-size transaction. Under the GT200 relaxed rule the hardware
    issues one transaction per distinct aligned segment touched.

    Shared-memory requests are checked against the 16 banks: the cost of a
    request is the maximum number of distinct addresses mapping to one bank
    (same-address lanes broadcast for free). *)

type tx = {
  tx_addr : int;  (** byte address of the transaction start *)
  tx_bytes : int;
}

(** Transactions for one half-warp global request.
    [addrs] are byte addresses of the *active* lanes (lane, addr) with
    lane in 0..15; [elt_bytes] is the access width per lane. *)
let global_request (rules : Config.coalesce_rules) ~(min_tx : int)
    ~(elt_bytes : int) (addrs : (int * int) list) : tx list =
  if addrs = [] then []
  else
    let seg_bytes = 16 * elt_bytes in
    match rules with
    | Config.Strict_g80 ->
        (* need every active lane k at base + k*elt, base aligned; the
           hardware checks the full half-warp pattern, so any deviation
           serializes all lanes *)
        let base = snd (List.hd addrs) - (fst (List.hd addrs) * elt_bytes) in
        let ok =
          base mod seg_bytes = 0
          && List.for_all
               (fun (lane, a) -> a = base + (lane * elt_bytes))
               addrs
        in
        if ok then [ { tx_addr = base; tx_bytes = seg_bytes } ]
        else
          List.map
            (fun (_, a) ->
              { tx_addr = a / min_tx * min_tx; tx_bytes = min_tx })
            addrs
    | Config.Relaxed_gt200 ->
        (* one transaction per distinct aligned segment; segment size is
           the smallest of 32/64/128 bytes covering the lanes in it. A
           half warp touches at most 16 segments (usually 1 or 2), so a
           small association list in first-touch order — the order the
           lanes issue them — beats hashing *)
        let seg = max 32 seg_bytes in
        let segs = ref [] in
        List.iter
          (fun (_, a) ->
            let s = a / seg * seg in
            match List.find_opt (fun (s', _, _) -> s' = s) !segs with
            | Some (_, lo, hi) ->
                lo := min !lo a;
                hi := max !hi (a + elt_bytes)
            | None -> segs := (s, ref a, ref (a + elt_bytes)) :: !segs)
          addrs;
        List.rev_map
          (fun (_s, lo, hi) ->
            (* shrink to the smallest aligned power-of-two region >= 32B *)
            let lo = !lo and hi' = !hi - 1 in
            let rec shrink size =
              let half = size / 2 in
              if half >= 32 && lo / half = hi' / half then shrink half
              else size
            in
            let size = shrink seg in
            { tx_addr = lo / size * size; tx_bytes = size })
          !segs

(** Cost in serialized cycles of one half-warp shared-memory request.
    [word_addrs] are the 4-byte word indices accessed by active lanes. *)
let shared_request ~(banks : int) (word_addrs : int list) : int =
  if word_addrs = [] then 0
  else begin
    (* at most 16 lanes per request: count distinct words per bank with
       a quadratic dedup scan instead of per-request hash tables *)
    let counts = Array.make banks 0 in
    let rec go seen = function
      | [] -> ()
      | w :: tl ->
          if List.mem w seen then go seen tl
          else begin
            let b = ((w mod banks) + banks) mod banks in
            counts.(b) <- counts.(b) + 1;
            go (w :: seen) tl
          end
    in
    go [] word_addrs;
    Array.fold_left max 1 counts
  end

(* --- memoized transaction counts ---

   Timing only needs (transactions, bytes) per half-warp request, and
   those are invariant under shifting every lane address by a multiple
   of the coarsest alignment the rules inspect: the G80 base-alignment
   check works modulo [16*elt_bytes], the GT200 segment split and
   power-of-two shrink work modulo the segment size (whose halves all
   divide it), and the uncoalesced fallback rounds to [min_tx]. So a
   request digest of (rules, widths, lanes, addresses mod granularity)
   keys a cache that turns the per-block recomputation of identical
   access patterns into one table lookup. Absolute transaction
   addresses are NOT shift-invariant, but their offsets relative to the
   first lane's address ARE, so the plane digests below carry a
   relative layout that recording callers replay against the live base
   address. *)

(** Cost digest for one full access plane (every half-warp of a block's
    lanes at one memory site). [pd_hw] holds (ntx, bytes) per half-warp
    group in ascending order; [pd_layout] holds (offset-from-first-lane-
    address, bytes) per transaction, concatenated in the exact order the
    reference backend emits them, so partition-stream recording can be
    replayed against any live base address. *)
type plane_digest = {
  pd_nhw : int;
  pd_hw : int array;  (** 2*nhw: per-group transactions, bytes *)
  pd_layout : int array;  (** 2*ntx: per-tx offset from lane-0 addr, bytes *)
  pd_ntx : int;  (** total transactions across the plane *)
  pd_bytes : int;  (** total bytes across the plane *)
}

(* Per-domain memo state. Both tables use a two-generation scheme: a
   lookup probes the live generation then the previous one (promoting
   survivors), and filling the live generation retires the previous one
   wholesale instead of wiping everything — steady-state workloads keep
   their hot entries across the flip instead of cold-restarting. *)
type mstate = {
  mutable tbl : (int array, int * int) Hashtbl.t;
  mutable tbl_old : (int array, int * int) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable ptbl : (int array, plane_digest) Hashtbl.t;
  mutable ptbl_old : (int array, plane_digest) Hashtbl.t;
  mutable phits : int;
  mutable pmisses : int;
}

let memo_mutex = Mutex.create ()

(* one state per worker domain (no lock on the hot path); the registry
   is only touched on domain-first-use, on domain exit and by the
   counter readers. Counters of exited domains are folded into the
   retired_* aggregates so the live list stays bounded by the number of
   running domains rather than growing across pool recreations. *)
let memo_states : mstate list ref = ref []
let retired_hits = ref 0
let retired_misses = ref 0
let retired_phits = ref 0
let retired_pmisses = ref 0

let memo_state : mstate Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let s =
        {
          tbl = Hashtbl.create 256;
          tbl_old = Hashtbl.create 16;
          hits = 0;
          misses = 0;
          ptbl = Hashtbl.create 64;
          ptbl_old = Hashtbl.create 16;
          phits = 0;
          pmisses = 0;
        }
      in
      Mutex.lock memo_mutex;
      memo_states := s :: !memo_states;
      Mutex.unlock memo_mutex;
      Domain.at_exit (fun () ->
          Mutex.lock memo_mutex;
          retired_hits := !retired_hits + s.hits;
          retired_misses := !retired_misses + s.misses;
          retired_phits := !retired_phits + s.phits;
          retired_pmisses := !retired_pmisses + s.pmisses;
          memo_states := List.filter (fun s' -> s' != s) !memo_states;
          Mutex.unlock memo_mutex);
      s)

let sum_states retired f =
  Mutex.lock memo_mutex;
  let v = List.fold_left (fun acc s -> acc + f s) !retired !memo_states in
  Mutex.unlock memo_mutex;
  v

let memo_hits () = sum_states retired_hits (fun s -> s.hits)
let memo_misses () = sum_states retired_misses (fun s -> s.misses)
let plane_memo_hits () = sum_states retired_phits (fun s -> s.phits)
let plane_memo_misses () = sum_states retired_pmisses (fun s -> s.pmisses)

(** Credit [n] hits taken by a caller-side cache layered over this memo
    (the vector backend's per-site stride cache). *)
let bump_hits n =
  let st = Domain.DLS.get memo_state in
  st.hits <- st.hits + n

(** Same, for caller-side caches layered over the plane memo (the
    vector backend's per-site digest cache and closed-form replays). *)
let bump_plane_hits n =
  let st = Domain.DLS.get memo_state in
  st.phits <- st.phits + n

(* patterns per launch are few (tens); the caps only guard degenerate
   address soups from e.g. fuzzed kernels. Each table holds up to
   [gen_max] entries per generation, so the steady-state footprint is
   bounded by 2*gen_max while hot entries survive generation flips. *)
let gen_max = 4096
let plane_gen_max = 4096

(* generic two-generation lookup/insert over the pair of tables held by
   [get]/[set] accessors; [compute] runs only on a double miss *)
let two_gen_find st ~live ~old ~flip ~hit ~miss key compute =
  match Hashtbl.find_opt (live st) key with
  | Some r ->
      hit st;
      r
  | None -> (
      match Hashtbl.find_opt (old st) key with
      | Some r ->
          (* survivor: promote into the live generation *)
          hit st;
          flip st;
          Hashtbl.add (live st) key r;
          r
      | None ->
          miss st;
          let r = compute () in
          flip st;
          Hashtbl.add (live st) key r;
          r)

let memo_granularity ~min_tx ~elt_bytes =
  let s = max 32 (16 * elt_bytes) in
  if s mod min_tx = 0 then s else s * min_tx

let request_cost (rules : Config.coalesce_rules) ~(min_tx : int)
    ~(elt_bytes : int) ~(lane0 : int) ~(cnt : int) (addrs : int array) :
    int * int =
  let st = Domain.DLS.get memo_state in
  let g = memo_granularity ~min_tx ~elt_bytes in
  let amin = ref addrs.(0) in
  for t = 1 to cnt - 1 do
    if addrs.(t) < !amin then amin := addrs.(t)
  done;
  let base = !amin / g * g in
  let key = Array.make (5 + cnt) 0 in
  key.(0) <- (match rules with Config.Strict_g80 -> 0 | Config.Relaxed_gt200 -> 1);
  key.(1) <- min_tx;
  key.(2) <- elt_bytes;
  key.(3) <- lane0;
  key.(4) <- cnt;
  for t = 0 to cnt - 1 do
    key.(5 + t) <- addrs.(t) - base
  done;
  two_gen_find st
    ~live:(fun s -> s.tbl)
    ~old:(fun s -> s.tbl_old)
    ~flip:(fun s ->
      if Hashtbl.length s.tbl >= gen_max then begin
        s.tbl_old <- s.tbl;
        s.tbl <- Hashtbl.create 256
      end)
    ~hit:(fun s -> s.hits <- s.hits + 1)
    ~miss:(fun s -> s.misses <- s.misses + 1)
    key
    (fun () ->
      let pairs = List.init cnt (fun t -> (lane0 + t, addrs.(t) - base)) in
      let txs = global_request rules ~min_tx ~elt_bytes pairs in
      let ntx = List.length txs in
      let bytes = List.fold_left (fun a t -> a + t.tx_bytes) 0 txs in
      (ntx, bytes))

(* --- plane-granularity cost digests ---

   A full-mask access plane whose lane addresses are segmented-strided —
   a uniform byte stride [d] between consecutive lanes of a half-warp
   group and a uniform delta [dd] between consecutive group base
   addresses — is fully characterized, up to a shift by a multiple of
   the memo granularity, by (rules, min_tx, elt_bytes, n, a0 mod g, d,
   dd). That shape subsumes flat strides (dd = 16*d) and the dominant
   2-D patterns (a[idy][k] has d = 0, dd = row pitch; b[k][idx] has
   d = elt, dd = 0). The digest computed once per pattern carries both
   per-group totals and the full transaction layout relative to the
   first lane's address, so even partition-recording runs replay it
   without re-forming transactions. *)

let plane_cost (rules : Config.coalesce_rules) ~(min_tx : int)
    ~(elt_bytes : int) ~(n : int) ~(rel0 : int) ~(d : int) ~(dd : int) :
    plane_digest =
  let st = Domain.DLS.get memo_state in
  let key =
    [|
      (match rules with Config.Strict_g80 -> 0 | Config.Relaxed_gt200 -> 1);
      min_tx;
      elt_bytes;
      n;
      rel0;
      d;
      dd;
    |]
  in
  two_gen_find st
    ~live:(fun s -> s.ptbl)
    ~old:(fun s -> s.ptbl_old)
    ~flip:(fun s ->
      if Hashtbl.length s.ptbl >= plane_gen_max then begin
        s.ptbl_old <- s.ptbl;
        s.ptbl <- Hashtbl.create 64
      end)
    ~hit:(fun s -> s.phits <- s.phits + 1)
    ~miss:(fun s -> s.pmisses <- s.pmisses + 1)
    key
    (fun () ->
      let g = memo_granularity ~min_tx ~elt_bytes in
      let nhw = (n + 15) / 16 in
      (* synthesize lane addresses from the pattern; negative strides can
         drive synthetic addresses below zero where integer division no
         longer floors, so lift everything by a multiple of g first (cost
         and relative layout are invariant under that shift) *)
      let amin = ref rel0 in
      for q = 0 to nhw - 1 do
        let cnt = min 16 (n - (16 * q)) in
        let b = rel0 + (q * dd) in
        let last = b + ((cnt - 1) * d) in
        if b < !amin then amin := b;
        if last < !amin then amin := last
      done;
      let lift = if !amin < 0 then (g - 1 - !amin) / g * g else 0 in
      let a0 = rel0 + lift in
      let hw = Array.make (2 * nhw) 0 in
      let lay = ref [] in
      let tot_tx = ref 0 and tot_bytes = ref 0 in
      for q = 0 to nhw - 1 do
        let cnt = min 16 (n - (16 * q)) in
        let b = a0 + (q * dd) in
        let pairs = List.init cnt (fun t -> (t, b + (t * d))) in
        let txs = global_request rules ~min_tx ~elt_bytes pairs in
        let ntx = List.length txs in
        let bytes = List.fold_left (fun a t -> a + t.tx_bytes) 0 txs in
        hw.(2 * q) <- ntx;
        hw.((2 * q) + 1) <- bytes;
        tot_tx := !tot_tx + ntx;
        tot_bytes := !tot_bytes + bytes;
        List.iter
          (fun t -> lay := t.tx_bytes :: (t.tx_addr - a0) :: !lay)
          txs
      done;
      {
        pd_nhw = nhw;
        pd_hw = hw;
        pd_layout = Array.of_list (List.rev !lay);
        pd_ntx = !tot_tx;
        pd_bytes = !tot_bytes;
      })

(** Sentinel digest for unfilled per-site caches. *)
let empty_digest =
  { pd_nhw = 0; pd_hw = [||]; pd_layout = [||]; pd_ntx = 0; pd_bytes = 0 }

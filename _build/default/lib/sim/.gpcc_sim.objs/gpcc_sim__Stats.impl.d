lib/sim/stats.pp.ml: Float Printf

(** Backend equivalence: the closure-compiled and warp-vectorized
    simulator backends must be bit-identical to the tree-walking
    reference interpreter — output arrays, every {!Gpcc_sim.Stats}
    field, and the derived {!Gpcc_sim.Timing} estimate — on every
    registry workload, naive and optimized, in Full and Sampled modes,
    and on a seeded corpus of random fuzz kernels; parallel grid
    execution must reproduce serial execution exactly. *)

open Util
module W = Gpcc_workloads.Workload
module L = Gpcc_sim.Launch
module S = Gpcc_sim.Stats

let stats_fields = S.fields

let timing_fields (t : Gpcc_sim.Timing.result) =
  [
    ("cycles", t.cycles);
    ("time_ms", t.time_ms);
    ("gflops", t.gflops);
    ("bandwidth_gbs", t.bandwidth_gbs);
    ("timing_partition_eff", t.partition_eff);
  ]

let global_arrays (k : Gpcc_ast.Ast.kernel) =
  List.filter_map
    (fun (p : Gpcc_ast.Ast.param) ->
      match p.p_ty with
      | Array { space = Global; _ } -> Some p.p_name
      | _ -> None)
    k.k_params

(** Run [k] on fresh memory and return the simulator result plus the
    final contents of every global array. *)
let exec ~backend ?jobs ~mode (w : W.t) n (k : Gpcc_ast.Ast.kernel) launch =
  let mem = Gpcc_sim.Devmem.of_kernel k in
  List.iter
    (fun (name, d) -> Gpcc_sim.Devmem.write mem name d)
    (w.W.inputs n);
  let r = L.run ~mode ~backend ?jobs cfg280 k launch mem in
  (r, List.map (fun a -> (a, Gpcc_sim.Devmem.read mem a)) (global_arrays k))

(** Bitwise comparison ([compare] treats nan = nan, unlike [=]). *)
let bit_identical label ((ra : L.result), oa) ((rb : L.result), ob) =
  List.iter2
    (fun (n1, a) (n2, b) ->
      Alcotest.(check string) (label ^ " array order") n1 n2;
      if compare a b <> 0 then
        Alcotest.failf "%s: array %s differs between backends" label n1)
    oa ob;
  List.iter2
    (fun (f, x) (_, y) ->
      if compare x y <> 0 then
        Alcotest.failf "%s: stats field %s: %.17g <> %.17g" label f x y)
    (stats_fields ra.L.per_block)
    (stats_fields rb.L.per_block);
  if compare ra.L.partition_eff rb.L.partition_eff <> 0 then
    Alcotest.failf "%s: partition_eff %.17g <> %.17g" label ra.L.partition_eff
      rb.L.partition_eff;
  List.iter2
    (fun (f, x) (_, y) ->
      if compare x y <> 0 then
        Alcotest.failf "%s: timing field %s: %.17g <> %.17g" label f x y)
    (timing_fields ra.L.timing) (timing_fields rb.L.timing);
  Alcotest.(check string) (label ^ " timing bound") ra.L.timing.bound
    rb.L.timing.bound;
  Alcotest.(check int) (label ^ " timing waves") ra.L.timing.waves
    rb.L.timing.waves;
  Alcotest.(check int) (label ^ " sampled_blocks") ra.L.sampled_blocks
    rb.L.sampled_blocks

(** Naive and pipeline-optimized variants of one workload. *)
let kernels_of (w : W.t) n =
  let k = W.parse w n in
  let launch = Option.get (Gpcc_passes.Pass_util.naive_launch k) in
  let r = compile k in
  [ (w.W.name ^ "/naive", k, launch); (w.W.name ^ "/opt", r.kernel, r.launch) ]

let test_compiled_matches_reference () =
  List.iter
    (fun (w : W.t) ->
      let n = w.W.test_size in
      List.iter
        (fun (label, k, launch) ->
          List.iter
            (fun (mname, mode) ->
              let fb0 = Gpcc_sim.Compile.fallback_count () in
              let rr = exec ~backend:L.Reference ~jobs:1 ~mode w n k launch in
              let rc = exec ~backend:L.Compiled ~jobs:1 ~mode w n k launch in
              Alcotest.(check int)
                (label ^ "/" ^ mname ^ " compiled without fallback")
                fb0
                (Gpcc_sim.Compile.fallback_count ());
              bit_identical (label ^ "/" ^ mname) rr rc)
            [ ("full", L.Full); ("sampled", L.Sampled 4) ])
        (kernels_of w n))
    Gpcc_workloads.Registry.all

let test_vector_matches_reference () =
  List.iter
    (fun (w : W.t) ->
      let n = w.W.test_size in
      List.iter
        (fun (label, k, launch) ->
          List.iter
            (fun (mname, mode) ->
              let fb0 = Gpcc_sim.Vector.fallback_count () in
              let rr = exec ~backend:L.Reference ~jobs:1 ~mode w n k launch in
              let rv = exec ~backend:L.Vector ~jobs:1 ~mode w n k launch in
              Alcotest.(check int)
                (label ^ "/" ^ mname ^ " vector without fallback")
                fb0
                (Gpcc_sim.Vector.fallback_count ());
              bit_identical (label ^ "/" ^ mname ^ " vector") rr rv)
            [ ("full", L.Full); ("sampled", L.Sampled 4) ])
        (kernels_of w n))
    Gpcc_workloads.Registry.all

(** Seeded random-kernel corpus: the vector backend must agree with the
    reference bit-for-bit on generated kernels too (reduction loops,
    guards, stencils — shapes the registry does not cover), both naive
    and after the optimization pipeline. *)
let test_vector_fuzz_corpus () =
  let exec_kernel ~backend k launch =
    let mem = Gpcc_sim.Devmem.of_kernel k in
    List.iter
      (fun (name, d) -> Gpcc_sim.Devmem.write mem name d)
      Test_fuzz.inputs;
    let r = L.run ~mode:L.Full ~backend ~jobs:1 cfg280 k launch mem in
    (r, List.map (fun a -> (a, Gpcc_sim.Devmem.read mem a)) (global_arrays k))
  in
  for i = 0 to 19 do
    let rand = Random.State.make [| 0x5eed; i |] in
    let spec = QCheck.Gen.generate1 ~rand Test_fuzz.gen_spec in
    let src = Test_fuzz.source_of_spec spec in
    let k = parse_kernel src in
    let launch = Option.get (Gpcc_passes.Pass_util.initial_launch k) in
    let label = Printf.sprintf "fuzz[%d]" i in
    let rr = exec_kernel ~backend:L.Reference k launch in
    let rv = exec_kernel ~backend:L.Vector k launch in
    bit_identical label rr rv;
    if i < 6 then begin
      (* a few optimized variants: tiled/merged/unrolled shapes *)
      let r = compile ~verify:false k in
      let ro = exec_kernel ~backend:L.Reference r.kernel r.launch in
      let vo = exec_kernel ~backend:L.Vector r.kernel r.launch in
      bit_identical (label ^ "/opt") ro vo
    end
  done

(** Strided, offset and uniform-loop global accesses: the shapes the
    plane-granularity accounting resolves without per-half-warp work.
    Each must stay bit-identical to the reference, and the perf
    counters must show the fast paths actually firing — the plane memo
    on strided planes, the closed-form credit on block-uniform loops. *)
let test_vector_plane_accounting () =
  let run_pair label src grid block =
    let exec ~backend =
      let k = parse_kernel src in
      let launch =
        { Gpcc_ast.Ast.grid_x = grid; grid_y = 1; block_x = block; block_y = 1 }
      in
      let mem = Gpcc_sim.Devmem.of_kernel k in
      let r = L.run ~mode:L.Full ~backend ~jobs:1 cfg280 k launch mem in
      (r, List.map (fun a -> (a, Gpcc_sim.Devmem.read mem a)) (global_arrays k))
    in
    let rr = exec ~backend:L.Reference in
    let pc0 = L.perf_counters () in
    let rv = exec ~backend:L.Vector in
    let pc1 = L.perf_counters () in
    bit_identical label rr rv;
    (pc0, pc1)
  in
  (* strided: within-group byte stride 8, four blocks shifting the plane
     uniformly, so the first block misses the plane memo and the rest
     resolve without a per-half-warp walk *)
  let pc0, pc1 =
    run_pair "strided plane"
      {|__kernel void s(float a[512], float o[256]) {
  o[idx] = a[idx * 2];
}|}
      4 64
  in
  Alcotest.(check bool)
    "strided: plane memo exercised" true
    L.(pc1.pc_plane_misses > pc0.pc_plane_misses);
  (* offset: base misaligned from the memo granularity, still segmented *)
  let _, _ =
    run_pair "offset plane"
      {|__kernel void f(float a[512], float o[256]) {
  o[idx] = a[idx + 3];
}|}
      4 64
  in
  (* block-uniform loop over a stable tid-plane site: every iteration
     after the first replays the cached digest in closed form *)
  let pc0, pc1 =
    run_pair "uniform loop credit"
      {|#pragma gpcc dim w 64
__kernel void t(float a[64][64], float b[64], float c[64], int w) {
  float sum = 0;
  for (int i = 0; i < w; i++)
    sum += a[i][idx] * b[i];
  c[idx] = sum;
}|}
      1 64
  in
  Alcotest.(check bool)
    "uniform loop: closed-form credits advance" true
    L.(pc1.pc_closed_form > pc0.pc_closed_form)

(** Wide-vectorized kernels (float2/float4 accesses, the AMD target's
    shape) exercise the vector backend's multi-component planes, which
    the registry's optimized GTX kernels do not. *)
let test_vector_wide_vectors () =
  let w = Gpcc_workloads.Registry.find_exn "vv" in
  let n = w.W.test_size in
  let k = W.parse w n in
  List.iter
    (fun width ->
      let launch = Option.get (Gpcc_passes.Pass_util.initial_launch k) in
      let o = Gpcc_passes.Vectorize_wide.apply ~width k launch in
      Alcotest.(check bool) "wide vectorize fired" true o.fired;
      let label = Printf.sprintf "vv/float%d" width in
      let rr =
        exec ~backend:L.Reference ~jobs:1 ~mode:L.Full w n o.kernel o.launch
      in
      let rv =
        exec ~backend:L.Vector ~jobs:1 ~mode:L.Full w n o.kernel o.launch
      in
      bit_identical label rr rv)
    [ 2; 4 ]

(** [GPCC_CHECK=1] must win over the vector backend selection: the
    dynamic race checker only sees accesses made by the serial reference
    interpreter, so a checked run of a barrier-heavy shared-memory
    kernel must fall through to it (and come back clean) even when the
    environment asks for the vector backend. *)
let test_vector_check_run () =
  let tp = Gpcc_workloads.Registry.find_exn "tp" in
  let n = tp.W.test_size in
  let k, launch = Gpcc_workloads.Sdk_transpose.new_ n in
  let plain = exec ~backend:L.Reference ~jobs:1 ~mode:L.Full tp n k launch in
  Unix.putenv "GPCC_BACKEND" "vector";
  Unix.putenv "GPCC_CHECK" "1";
  let checked =
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv "GPCC_CHECK" "0";
        Unix.putenv "GPCC_BACKEND" "vector")
      (fun () ->
        let mem = Gpcc_sim.Devmem.of_kernel k in
        List.iter
          (fun (name, d) -> Gpcc_sim.Devmem.write mem name d)
          (tp.W.inputs n);
        let r = L.run ~mode:L.Full cfg280 k launch mem in
        (r, List.map (fun a -> (a, Gpcc_sim.Devmem.read mem a)) (global_arrays k)))
  in
  bit_identical "sdk_transpose GPCC_CHECK" plain checked

let test_parallel_matches_serial () =
  List.iter
    (fun (w : W.t) ->
      let n = w.W.test_size in
      List.iter
        (fun (label, k, launch) ->
          let serial =
            exec ~backend:L.Compiled ~jobs:1 ~mode:L.Full w n k launch
          in
          let par =
            exec ~backend:L.Compiled ~jobs:4 ~mode:L.Full w n k launch
          in
          bit_identical (label ^ " parallel==serial") serial par)
        (kernels_of w n))
    Gpcc_workloads.Registry.all

let test_parallel_reference_matches_serial () =
  (* the parallel grid executor is backend-independent *)
  let w = Gpcc_workloads.Registry.find_exn "mm" in
  let n = w.W.test_size in
  List.iter
    (fun (label, k, launch) ->
      let serial =
        exec ~backend:L.Reference ~jobs:1 ~mode:L.Full w n k launch
      in
      let par = exec ~backend:L.Reference ~jobs:4 ~mode:L.Full w n k launch in
      bit_identical (label ^ " ref parallel==serial") serial par)
    (kernels_of w n)

let test_backend_of_env () =
  let bset v = Unix.putenv "GPCC_BACKEND" v in
  let iset v = Unix.putenv "GPCC_INTERP" v in
  let got () = L.backend_name (L.backend_of_env ()) in
  (* the unset-everything default is [vector]; [putenv] cannot unset, so
     only observable when the process environment left both unset *)
  if
    Sys.getenv_opt "GPCC_BACKEND" = None
    && Sys.getenv_opt "GPCC_INTERP" = None
  then Alcotest.(check string) "default" "vector" (got ());
  List.iter
    (fun (v, want) ->
      bset v;
      Alcotest.(check string) ("GPCC_BACKEND=" ^ v) want (got ()))
    [
      ("vector", "vector");
      ("vec", "vector");
      ("compiled", "compiled");
      ("compile", "compiled");
      ("ref", "reference");
      ("reference", "reference");
    ];
  (* the legacy GPCC_INTERP spelling still applies when GPCC_BACKEND is
     unset or unrecognized *)
  bset "";
  List.iter
    (fun (v, want) ->
      iset v;
      Alcotest.(check string) ("GPCC_INTERP=" ^ v) want (got ()))
    [
      ("ref", "reference");
      ("reference", "reference");
      ("compiled", "compiled");
      ("", "compiled");
    ];
  (* leave the suite on the default backend *)
  bset "vector"

let test_unsupported_falls_back () =
  (* a float scalar parameter is outside the compiled subset: the run
     must fall back to the reference interpreter and still fail with the
     reference's runtime error *)
  let k =
    Gpcc_ast.Parser.kernel_of_string
      {|__kernel void f(float s, float a[64]) {
  a[idx] = s;
}|}
  in
  let launch =
    { Gpcc_ast.Ast.grid_x = 1; grid_y = 1; block_x = 64; block_y = 1 }
  in
  let mem = Gpcc_sim.Devmem.of_kernel k in
  let fb0 = Gpcc_sim.Compile.fallback_count () in
  (match L.run ~backend:L.Compiled ~jobs:1 cfg280 k launch mem with
  | _ -> Alcotest.fail "expected a runtime error"
  | exception Gpcc_sim.Interp.Runtime_error m ->
      assert_contains "reference error surfaces" m
        "unsupported scalar parameter type");
  Alcotest.(check bool) "fallback recorded" true
    (Gpcc_sim.Compile.fallback_count () > fb0)

let suite =
  let q n f = Alcotest.test_case n `Quick f in
  let s n f = Alcotest.test_case n `Slow f in
  ( "backend",
    [
      s "compiled == reference (bit-identical)" test_compiled_matches_reference;
      s "vector == reference (bit-identical)" test_vector_matches_reference;
      s "vector == reference on fuzz corpus" test_vector_fuzz_corpus;
      q "plane accounting: strided/offset/loop" test_vector_plane_accounting;
      q "vector == reference on float2/float4" test_vector_wide_vectors;
      q "GPCC_CHECK wins over vector selection" test_vector_check_run;
      s "parallel Full == serial Full" test_parallel_matches_serial;
      s "reference parallel == serial" test_parallel_reference_matches_serial;
      q "GPCC_BACKEND/GPCC_INTERP selection" test_backend_of_env;
      q "unsupported kernels fall back" test_unsupported_falls_back;
    ] )

lib/ast/pp.pp.ml: Ast Buffer Float List Printf String

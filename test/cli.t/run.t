The gpcc command line lists the paper's Table-1 workloads:

  $ gpcc list | awk '{print $1}'
  tmv
  mm
  mv
  vv
  rd
  strsm
  conv
  tp
  demosaic
  imregionmax
  rd-complex
  fft

Coalescing verdicts for the paper's Figure 2a kernel:

  $ cat > mm.cu <<'SRC'
  > #pragma gpcc dim w 64
  > #pragma gpcc output c
  > __kernel void mm(float a[64][64], float b[64][64], float c[64][64], int w) {
  >   float sum = 0;
  >   for (int i = 0; i < w; i++)
  >     sum += a[idy][i] * b[i][idx];
  >   c[idy][idx] = sum;
  > }
  > SRC
  $ gpcc check mm.cu
  type check: OK
    a[idy][i] load (64*tidy + 64*bidy + iter(i)): (Noncoalesced Uniform)
    b[i][idx] load (tidx + 16*bidx + 64*iter(i)): Coalesced
    c[idy][idx] store (tidx + 64*tidy + 16*bidx + 64*bidy): Coalesced

Compilation produces the paper's Figure 3a/5/7 shape:

  $ gpcc compile -t 64 -m 4 mm.cu | grep -c 'sum_3\|if (tidx < 16)\|__shared__'
  12

Errors are reported with positions:

  $ cat > bad.cu <<'SRC'
  > __kernel void f(float o[16]) {
  >   o[idx] = nope;
  > }
  > SRC
  $ gpcc compile bad.cu
  type error: undeclared variable nope
  [1]

The static verifier lints kernels; the paper's mm kernel is clean apart
from its known uncoalesced load:

  $ gpcc lint mm.cu
  mm (naive) at (4,4)x(16,16): 0 error(s), 1 warning(s)
    warning[noncoalesced] mm: global access a[idy][i] is not coalesced (all 16 lanes of a half-warp read one address)
  lint: 0 error(s), 1 warning(s)

After the full pipeline the load is staged through shared memory:

  $ gpcc lint -O mm.cu
  mm (optimized) at (4,4)x(16,1): clean
  lint: 0 error(s), 0 warning(s)

A missing barrier is an error and a non-zero exit:

  $ cat > racy.cu <<'SRC'
  > #pragma gpcc dim n 64
  > #pragma gpcc output c
  > __kernel void racy(float a[64], float c[64], int n) {
  >   __shared__ float s[16];
  >   s[tidx] = a[idx];
  >   c[idx] = s[(tidx + 1) % 16];
  > }
  > SRC
  $ gpcc lint racy.cu
  racy (naive) at (4,1)x(16,1): 1 error(s), 0 warning(s)
    error[race-shared] racy: threads 0 and 1 of block (0,0) touch s element 1 in the same barrier interval (read at top level, write at top level): insert __syncthreads() between the accesses
  lint: 1 error(s), 0 warning(s)
  [1]

  $ gpcc lint --json racy.cu | head -c 64
  {"schema":"gpcc-lint-v1","errors":1,"warnings":0,"results":[{"ke

The pass manager is introspectable: --print-pipeline lists every
registered pass with its paper section and declared analysis
dependencies, without compiling anything:

  $ gpcc compile --print-pipeline -t 64 -m 4 mm.cu | head -3
  pipeline for GTX280: 64 threads/block target, 4-way thread merge, verify on
    [x] vectorize-wide     §3.1      absorb neighboring work items into float2/float4 accesses (AMD-style aggressive vectorization)
        uses: -                            invalidates: affine,sharing,coalesce,regcount,verify

Structured per-pass remarks as one JSON document (timings vary, so only
the stable fields are checked):

  $ gpcc compile --remarks-json -t 64 -m 4 mm.cu | grep -o '"pass":"[a-z-]*"' | sort | uniq -c | sed 's/^ *//'
  1 "pass":"coalesce"
  1 "pass":"licm"
  2 "pass":"merge"
  1 "pass":"partition-camping"
  1 "pass":"prefetch"
  1 "pass":"vectorize"
  1 "pass":"vectorize-wide"
  $ gpcc compile --remarks-json -t 64 -m 4 mm.cu | grep -c '"schema":"gpcc-remarks-v1"'
  1

The pipeline can be cut down per run; unknown pass names are rejected
with the registry listed:

  $ gpcc compile --passes coalesce -t 64 -m 4 mm.cu | head -3
  #pragma gpcc dim w 64
  #pragma gpcc output c
  /* launch: grid (4, 64), block (16, 1) */
  $ gpcc compile --disable-pass nope mm.cu
  error: unknown pass "nope" (known: vectorize-wide, vectorize, coalesce, merge, licm, partition-camping, prefetch)
  [1]

lib/passes/pass_util.pp.ml: Ast Gpcc_ast List Rewrite

(** A fixed pool of worker domains pulling tasks off a shared work
    queue, built on OCaml 5 [Domain]s.

    The design-space exploration of Section 4 runs one compile+simulate
    job per (threads-per-block, merge-degree) candidate; the candidates
    are independent, so the sweep is embarrassingly parallel. [Pool]
    provides the order-preserving parallel map that {!Explore} fans
    candidates out with.

    Workers are plain domains blocked on a condition variable; tasks are
    closures on a shared queue. A task that raises never kills a worker:
    the exception is captured per task and surfaced to the caller of
    {!map} after the whole batch has drained. *)

type t

val default_jobs : unit -> int
(** Worker count used when [?jobs] is omitted: the [GPCC_JOBS]
    environment variable if set to a positive integer, otherwise
    [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> t
(** Spawn a pool of [jobs] worker domains (default {!default_jobs}).
    [jobs <= 1] creates a pool with no workers: every [map] runs
    sequentially in the calling domain. *)

val size : t -> int
(** Number of worker domains ([0] for a sequential pool). *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element of [xs] on the pool's
    workers and returns the results in input order. If one or more
    applications raise, the whole batch still drains, then the exception
    of the earliest (by input order) failing element is re-raised in the
    caller. *)

val map_result : t -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** Like {!map} but with per-element failure isolation: each element
    maps to [Ok y] or [Error exn], in input order. Never raises from
    task exceptions. *)

val shutdown : t -> unit
(** Signal workers to exit and join them. Idempotent; after shutdown the
    pool runs maps sequentially in the caller. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] creates a pool, runs [f], and shuts the pool down even
    if [f] raises. *)

val run : ?jobs:int -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** One-shot convenience: [with_pool ~jobs (fun p -> map_result p f xs)]. *)
